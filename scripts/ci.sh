#!/bin/sh
# ci.sh — the verify gauntlet for every PR.
#
# The race job matters here: the experiment Runner fans simulations out to
# a worker pool, and the exp test suite (determinism, singleflight and
# progress-atomicity tests) exercises that concurrency, so `go test -race`
# actually probes the paths a data race would hide in.
set -eux

cd "$(dirname "$0")/.."

# gofmt is a hard gate: a non-empty file list is a diff the author forgot
# to format.
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
# simlint enforces the simulator's own invariants (determinism, hot-path
# alloc-freedom, pool discipline, engine contracts, byte attribution,
# event-time monotonicity, stats census) before the expensive race gate
# runs; see ARCHITECTURE.md "Enforced invariants". -cache keys the run on a
# hash of every non-test .go file, so an unchanged tree replays instantly.
go run ./cmd/simlint -cache ./...
# The analyzer is held to its own determinism standard: lint the lint
# package explicitly, so a narrowing of the main gate can never silently
# exempt it.
go run ./cmd/simlint ./internal/lint
# Archive the machine-readable finding set next to the BENCH_<n>.json
# snapshots (same tree hash as the gate run above, so this replays from the
# cache rather than re-type-checking).
go run ./cmd/simlint -cache -json ./... >LINT.json
# Informational: the audit trail of every //bear:nolint suppression and its
# reason. Not a gate — the reviewer reads it, the build does not.
go run ./cmd/simlint -nolint-report
go build ./...
# -shuffle=on randomises test order within each package, flushing out
# tests that silently depend on a predecessor's side effects.
go test -race -shuffle=on ./...

# bench-smoke: compile and run every benchmark exactly once. This keeps the
# perf harness (simbench_test.go and friends) from bit-rotting without
# adding meaningful CI time; timed runs go through scripts/bench.sh.
go test -run='^$' -bench=. -benchtime=1x ./...

# fault-injection smoke: re-run the robustness suite (panic isolation,
# watchdog trips, -check epochs, store corruption/resume) under the race
# detector by name. These all ran in the main gate above; naming them here
# keeps the stage meaningful if the main gate ever narrows, and makes a
# robustness regression point at itself in the CI log.
go test -race -run 'Panic|Watchdog|Check|Store|Fingerprint|Fault|Invariant' \
	./internal/exp ./internal/hier ./internal/fault

# resume round-trip: a real bearbench sweep, interrupted only in the sense
# that it runs twice against the same store. The second run must restore
# every unit (zero simulations) and produce byte-identical artifacts.
# Timing lines ("[tab4 done in ...]") legitimately differ run to run and
# are filtered out of the comparison.
store=$(mktemp -d)
run1=$(mktemp)
run2=$(mktemp)
err2=$(mktemp)
trap 'rm -rf "$store" "$run1" "$run2" "$err2"' EXIT
resume_args="-run tab4 -scale 1024 -warm 20000 -meas 50000 -mixes 1 -resume $store"
go run ./cmd/bearbench $resume_args | grep -v '^\[' >"$run1"
go run ./cmd/bearbench $resume_args 2>"$err2" | grep -v '^\[' >"$run2"
cmp "$run1" "$run2"
grep -q 'result(s) restored' "$err2"

# chaos smoke: the bearserve supervision tree survives a worker killed
# mid-unit. A fault plan deterministically hangs the worker inside its one
# unit (so "mid-unit" is a fact, not a race), kill -9 takes the worker
# down from outside, and the server must retry and finish with results
# byte-identical to an uninjected run. A third instance checks the drain
# ladder: with a unit in flight, SIGTERM flips /readyz to 503 while
# /healthz stays 200, and the unfinished unit lands in the checkpoint
# manifest. (The in-process chaos matrix is TestChaosSweepByteIdentical
# in internal/serve; this stage proves the shipped binaries.)
bindir=$(mktemp -d)
cstore=$(mktemp -d)
fstore=$(mktemp -d)
dstore=$(mktemp -d)
srv=
trap 'kill "$srv" 2>/dev/null || true; rm -rf "$store" "$run1" "$run2" "$err2" "$bindir" "$cstore" "$fstore" "$dstore"' EXIT
go build -buildvcs=false -o "$bindir" ./cmd/bearbench ./cmd/bearserve
addr=127.0.0.1:18431
unit='{"units":[{"design":"Alloy","workload":"soplex"}]}'
# Fault plans address units by store key; derive it, never hand-write it.
key=$("$bindir/bearbench" -unitkey Alloy/soplex)

serve_wait_ready() {
	for _ in $(seq 1 100); do
		if curl -fsS "http://$addr/readyz" >/dev/null 2>&1; then return 0; fi
		sleep 0.1
	done
	echo "bearserve never became ready" >&2
	return 1
}
progress_wait() { # $1: substring of /progress to wait for
	for _ in $(seq 1 300); do
		if curl -fsS "http://$addr/progress" | grep -q "$1"; then return 0; fi
		sleep 0.2
	done
	echo "bearserve progress never showed: $1" >&2
	curl -fsS "http://$addr/progress" >&2 || true
	return 1
}

# Reference sweep, no faults.
"$bindir/bearserve" -addr "$addr" -store "$cstore" -workers 1 -quick &
srv=$!
serve_wait_ready
curl -fsS -XPOST "http://$addr/sweep" -d "$unit" >/dev/null
progress_wait '"done": 1'
curl -fsS "http://$addr/result?design=Alloy&workload=soplex" >"$run1"
kill -TERM $srv
wait $srv

# Chaos sweep: the worker hangs inside the unit; kill -9 it mid-unit.
"$bindir/bearserve" -addr "$addr" -store "$fstore" -workers 1 -quick \
	-worker-faultplan "hang@worker.run/$key" &
srv=$!
serve_wait_ready
curl -fsS -XPOST "http://$addr/sweep" -d "$unit" >/dev/null
progress_wait '"running": 1'
sleep 1 # let the dispatched worker reach its injected hang
workerpid=$(pgrep -n -f "$bindir/bearbench -worker")
kill -9 "$workerpid"
progress_wait '"done": 1'
curl -fsS "http://$addr/progress" >"$run2"
grep -q '"retries": 1' "$run2"     # the kill was retried...
grep -q 'worker exited' "$run2"    # ...and classified as a worker death
curl -fsS "http://$addr/result?design=Alloy&workload=soplex" >"$run2"
kill -TERM $srv
wait $srv
cmp "$run1" "$run2" # recovery must not perturb results

# Drain ladder: SIGTERM with a hung unit in flight.
"$bindir/bearserve" -addr "$addr" -store "$dstore" -workers 1 -quick \
	-deadline 5s -worker-faultplan "hang@worker.run/$key" &
srv=$!
serve_wait_ready
curl -fsS -XPOST "http://$addr/sweep" -d "$unit" >/dev/null
progress_wait '"running": 1'
kill -TERM $srv
sleep 0.5
test "$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/readyz")" = 503
test "$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/healthz")" = 200
wait $srv
test -f "$dstore/pending.json" # the unfinished unit was checkpointed
