#!/bin/sh
# ci.sh — the verify gauntlet for every PR.
#
# The race job matters here: the experiment Runner fans simulations out to
# a worker pool, and the exp test suite (determinism, singleflight and
# progress-atomicity tests) exercises that concurrency, so `go test -race`
# actually probes the paths a data race would hide in.
set -eux

cd "$(dirname "$0")/.."

# gofmt is a hard gate: a non-empty file list is a diff the author forgot
# to format.
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

go vet ./...
# simlint enforces the simulator's own invariants (determinism, hot-path
# alloc-freedom, pool discipline, engine contracts) before the expensive
# race gate runs; see ARCHITECTURE.md "Enforced invariants".
go run ./cmd/simlint ./...
go build ./...
# -shuffle=on randomises test order within each package, flushing out
# tests that silently depend on a predecessor's side effects.
go test -race -shuffle=on ./...

# bench-smoke: compile and run every benchmark exactly once. This keeps the
# perf harness (simbench_test.go and friends) from bit-rotting without
# adding meaningful CI time; timed runs go through scripts/bench.sh.
go test -run='^$' -bench=. -benchtime=1x ./...
