#!/bin/sh
# bench_compare.sh — diff the two newest BENCH_<n>.json snapshots at the
# repository root, printing per-benchmark ns/instr and allocs/instr deltas.
# Positive percentages are regressions (the newer snapshot is slower).
#
# Snapshots record the per-name minimum over bench.sh's COUNT samples, so
# this diff compares minima against minima — the noise-robust statistic on
# a shared box — never a single unlucky run against a lucky one.
#
#   make bench-compare
#   scripts/bench_compare.sh BENCH_1.json BENCH_3.json   # explicit pair
set -eu

cd "$(dirname "$0")/.."

if [ $# -eq 2 ]; then
	old=$1
	new=$2
else
	old=""
	new=""
	n=1
	while [ -e "BENCH_${n}.json" ]; do
		old=$new
		new="BENCH_${n}.json"
		n=$((n + 1))
	done
	if [ -z "$old" ]; then
		echo "bench_compare.sh: need at least two BENCH_<n>.json snapshots" >&2
		exit 1
	fi
fi

echo "comparing $old -> $new"

# The snapshots are one-benchmark-per-line JSON written by bench.sh, so a
# line-oriented parse is reliable without a JSON tool in the image.
parse() {
	sed -n 's/.*"name": *"\([^"]*\)", *"ns_per_instr": *\([0-9.eE+-]*\), *"allocs_per_instr": *\([0-9.eE+-]*\).*/\1 \2 \3/p' "$1"
}

parse "$old" >/tmp/bench_old.$$
parse "$new" >/tmp/bench_new.$$
trap 'rm -f /tmp/bench_old.$$ /tmp/bench_new.$$' EXIT

awk 'NR == FNR { ns[$1] = $2; al[$1] = $3; next }
{
	if (!($1 in ns)) { printf "%-12s only in newer snapshot\n", $1; next }
	dns = ($2 - ns[$1]) / ns[$1] * 100
	printf "%-12s ns/instr %8.1f -> %8.1f  (%+6.1f%%)   allocs/instr %.2e -> %.2e\n", \
		$1, ns[$1], $2, dns, al[$1], $3
	if (dns > 5) bad = 1
}
END { exit bad }' /tmp/bench_old.$$ /tmp/bench_new.$$
