#!/bin/sh
# bench.sh — run the end-to-end simulator benchmarks and snapshot the numbers
# into the next free BENCH_<n>.json at the repository root.
#
# Successive snapshots (BENCH_1.json, BENCH_2.json, ...) record the perf
# trajectory across PRs: each file carries per-design ns/instr and
# allocs/instr for the steady-state hot path of every composition the
# experiments run — NoL4, Alloy, BEAR, BW-Opt, LH, MC, Incl-Alloy, TIS and
# SC (see simbench_test.go).
#
# Each benchmark runs COUNT times (default 5) and the snapshot keeps the
# per-name minimum: on a shared box the minimum estimates the true cost —
# noise from neighbours only ever adds time — so snapshots taken under
# different load remain comparable, and bench_compare.sh diffs the same
# statistic. One sample (COUNT=1) is only for quick smoke readings.
#
#   scripts/bench.sh              # five samples; the snapshot keeps the best
#   COUNT=9 scripts/bench.sh      # more samples for a noisier box
set -eu

cd "$(dirname "$0")/.."

n=1
while [ -e "BENCH_${n}.json" ]; do n=$((n + 1)); done
out="BENCH_${n}.json"

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

go test -run '^$' -bench 'BenchmarkSim' -benchtime "${BENCHTIME:-1x}" \
	-count "${COUNT:-5}" . | tee "$tmp"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v gover="$(go version | { read -r _ _ v _; echo "$v"; })" '
/^BenchmarkSim/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	sub(/^Benchmark/, "", name)
	if (!(name in seen)) { seen[name] = 1; names[++count] = name }
	for (i = 2; i < NF; i++) {
		if ($(i + 1) == "ns/instr" && (!(name in ns) || $i + 0 < ns[name] + 0))
			ns[name] = $i
		if ($(i + 1) == "allocs/instr" && (!(name in al) || $i + 0 < al[name] + 0))
			al[name] = $i
	}
}
END {
	if (count == 0) { print "bench.sh: no benchmark output parsed" > "/dev/stderr"; exit 1 }
	printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"benchmarks\": [\n", date, gover
	for (i = 1; i <= count; i++) {
		printf "    {\"name\": \"%s\", \"ns_per_instr\": %s, \"allocs_per_instr\": %s}%s\n", \
			names[i], ns[names[i]] + 0, al[names[i]] + 0, (i < count ? "," : "")
	}
	printf "  ]\n}\n"
}' "$tmp" > "$out"

echo "wrote $out"
cat "$out"
