#!/bin/sh
# profile.sh — capture a CPU profile of one full simulation and render the
# top-20 hottest functions as a text artifact.
#
# Runs bearsim with -cpuprofile over a single design/workload (defaults:
# Alloy / mcf, the headline benchmark configuration) and leaves both the raw
# pprof profile and a human-readable summary under profiles/:
#
#   profiles/cpu_<design>_<workload>.pprof    # raw; open with `go tool pprof`
#   profiles/cpu_<design>_<workload>.txt      # `pprof -top -nodecount=20`
#
#   make profile                              # Alloy / mcf
#   DESIGN=BEAR WORKLOAD=lbm scripts/profile.sh
#
# WARM/MEAS default to a longer run than the unit benchmarks so the profile
# has enough samples for stable line-level attribution.
set -eu

cd "$(dirname "$0")/.."

design=${DESIGN:-Alloy}
workload=${WORKLOAD:-mcf}
scale=${SCALE:-256}
warm=${WARM:-150000}
meas=${MEAS:-2000000}

mkdir -p profiles
slug=$(echo "${design}_${workload}" | tr 'A-Z' 'a-z' | tr -c 'a-z0-9_' '_' | sed 's/_*$//')
raw="profiles/cpu_${slug}.pprof"
txt="profiles/cpu_${slug}.txt"

go run ./cmd/bearsim -design "$design" -workload "$workload" \
	-scale "$scale" -warm "$warm" -meas "$meas" -cpuprofile "$raw"

go tool pprof -top -nodecount=20 "$raw" > "$txt"

echo "wrote $raw"
echo "wrote $txt"
cat "$txt"
