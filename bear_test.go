package bear_test

import (
	"strings"
	"testing"

	"bear"
)

// quickCfg returns a configuration small enough for unit testing.
func quickCfg(d bear.Design) bear.Config {
	cfg := bear.DefaultConfig()
	cfg.Scale = 512
	cfg.Design = d
	cfg.WarmInstr = 20_000
	cfg.MeasInstr = 60_000
	return cfg
}

func TestRunRate(t *testing.T) {
	r, err := bear.RunRate(quickCfg(bear.Alloy), "omnetpp")
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles == 0 || r.IPC <= 0 {
		t.Fatalf("result = %+v", r)
	}
	if r.L4HitRate <= 0 || r.L4HitRate > 1 {
		t.Fatalf("hit rate = %v", r.L4HitRate)
	}
	if r.BloatFactor < 1 {
		t.Fatalf("bloat = %v", r.BloatFactor)
	}
	if r.Workload != "omnetpp" || r.Design != "Alloy" {
		t.Fatalf("labels = %s/%s", r.Workload, r.Design)
	}
}

func TestRunRateUnknown(t *testing.T) {
	if _, err := bear.RunRate(quickCfg(bear.Alloy), "nope"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestRunMix(t *testing.T) {
	r, err := bear.RunMix(quickCfg(bear.Alloy), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.CoreIPC) != 8 {
		t.Fatalf("core IPCs = %d", len(r.CoreIPC))
	}
	if !strings.HasPrefix(r.Workload, "MIX") {
		t.Fatalf("workload label = %s", r.Workload)
	}
}

func TestRunSingle(t *testing.T) {
	r, err := bear.RunSingle(quickCfg(bear.Alloy), "wrf")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.CoreIPC) != 1 {
		t.Fatalf("single run has %d cores", len(r.CoreIPC))
	}
}

func TestDeterminism(t *testing.T) {
	a, err := bear.RunRate(quickCfg(bear.BEAR), "milc")
	if err != nil {
		t.Fatal(err)
	}
	b, err := bear.RunRate(quickCfg(bear.BEAR), "milc")
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.BloatFactor != b.BloatFactor {
		t.Fatalf("non-deterministic: %d vs %d cycles", a.Cycles, b.Cycles)
	}
}

func TestHeadlineShape(t *testing.T) {
	// The paper's headline ordering on a writeback-heavy workload:
	// BW-Opt >= BEAR >= Alloy in performance, and BEAR reduces bloat.
	base, err := bear.RunRate(quickCfg(bear.Alloy), "omnetpp")
	if err != nil {
		t.Fatal(err)
	}
	opt, err := bear.RunRate(quickCfg(bear.BWOpt), "omnetpp")
	if err != nil {
		t.Fatal(err)
	}
	prop, err := bear.RunRate(quickCfg(bear.BEAR), "omnetpp")
	if err != nil {
		t.Fatal(err)
	}
	if s := bear.Speedup(prop, base); s < 1.0 {
		t.Errorf("BEAR speedup over Alloy = %.3f, want >= 1", s)
	}
	if s := bear.Speedup(opt, base); s < 1.0 {
		t.Errorf("BW-Opt speedup over Alloy = %.3f, want >= 1", s)
	}
	if prop.BloatFactor >= base.BloatFactor {
		t.Errorf("BEAR bloat %.2f >= Alloy %.2f", prop.BloatFactor, base.BloatFactor)
	}
	if opt.BloatFactor != 1.0 {
		t.Errorf("BW-Opt bloat = %.2f", opt.BloatFactor)
	}
}

func TestBreakdownConsistency(t *testing.T) {
	r, err := bear.RunRate(quickCfg(bear.Alloy), "soplex")
	if err != nil {
		t.Fatal(err)
	}
	if diff := r.Breakdown.Total() - r.BloatFactor; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("breakdown total %.4f != bloat %.4f", r.Breakdown.Total(), r.BloatFactor)
	}
	if r.Breakdown.Hit < 1.24 || r.Breakdown.Hit > 1.26 {
		t.Fatalf("Alloy hit factor = %.3f, want 1.25 (80/64)", r.Breakdown.Hit)
	}
}

func TestSensitivityKnobs(t *testing.T) {
	cfg := quickCfg(bear.Alloy)
	cfg.L4Channels = 2
	lo, err := bear.RunRate(cfg, "libq")
	if err != nil {
		t.Fatal(err)
	}
	cfg.L4Channels = 8
	hi, err := bear.RunRate(cfg, "libq")
	if err != nil {
		t.Fatal(err)
	}
	if hi.Cycles > lo.Cycles {
		t.Errorf("more L4 bandwidth made libq slower: %d vs %d", hi.Cycles, lo.Cycles)
	}
}

func TestWeightedSpeedup(t *testing.T) {
	r := &bear.Result{CoreIPC: []float64{1, 1}}
	if ws := bear.WeightedSpeedup(r, []float64{2, 2}); ws != 1.0 {
		t.Fatalf("ws = %v", ws)
	}
}

func TestGeoMean(t *testing.T) {
	if g := bear.GeoMean([]float64{1, 4}); g < 1.99 || g > 2.01 {
		t.Fatalf("geomean = %v", g)
	}
}

func TestBenchmarksList(t *testing.T) {
	if got := bear.Benchmarks(); len(got) != 16 {
		t.Fatalf("%d benchmarks", len(got))
	}
}

func TestStorageOverhead(t *testing.T) {
	s := bear.StorageOverhead()
	for _, want := range []string{"Bandwidth-Aware Bypass", "DRAM Cache Presence", "Neighboring Tag Cache", "Total"} {
		if !strings.Contains(s, want) {
			t.Errorf("overhead table missing %q", want)
		}
	}
}

func TestDesignNames(t *testing.T) {
	for _, d := range bear.Designs() {
		if d.String() == "" {
			t.Errorf("design %d has no name", d)
		}
	}
}

func TestDescribe(t *testing.T) {
	r, err := bear.RunRate(quickCfg(bear.Alloy), "sphinx3")
	if err != nil {
		t.Fatal(err)
	}
	if s := bear.Describe(r); !strings.Contains(s, "sphinx3") {
		t.Errorf("Describe = %q", s)
	}
}
