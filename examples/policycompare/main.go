// Policycompare: evaluate every DRAM-cache design on a mixed workload.
//
// Runs one of the paper's Table 3 mixes (eight different SPEC-like programs
// sharing the memory system) across all implemented designs — no-L4,
// Loh-Hill, Mostly-Clean, Alloy, inclusive Alloy, BEAR, Tags-In-SRAM,
// Sector Cache and the Bandwidth-Optimized ideal — and reports weighted
// speedup (Equation 2) normalized to the Alloy baseline.
//
//	go run ./examples/policycompare [-mix 3]
package main

import (
	"flag"
	"fmt"
	"log"

	"bear"
)

func main() {
	mix := flag.Int("mix", 1, "Table 3 mix index (1-8) or generated mix (9-38)")
	flag.Parse()

	cfg := bear.DefaultConfig()
	cfg.Scale = 128
	cfg.WarmInstr = 300_000
	cfg.MeasInstr = 600_000

	designs := []bear.Design{
		bear.NoL4, bear.LohHill, bear.MostlyClean, bear.Alloy,
		bear.InclAlloy, bear.BEAR, bear.TagsInSRAM, bear.SectorCache, bear.BWOpt,
	}

	var baseline *bear.Result
	type row struct {
		r  *bear.Result
		ws float64
	}
	rows := map[bear.Design]row{}
	for _, d := range designs {
		c := cfg
		c.Design = d
		r, err := bear.RunMix(c, *mix)
		if err != nil {
			log.Fatal(err)
		}
		// Weighted speedup needs each benchmark's alone-on-the-machine IPC
		// under the same memory system (Equation 2 of the paper).
		// For a compact example we approximate the single-program IPC by
		// the benchmark's rate-mode per-core IPC on the same design.
		singles := make([]float64, len(r.CoreIPC))
		seen := map[string]float64{}
		wlBenchNames := bear.MixComposition(*mix, cfg.Cores)
		for i, name := range wlBenchNames {
			if ipc, ok := seen[name]; ok {
				singles[i] = ipc
				continue
			}
			single, err := bear.RunSingle(c, name)
			if err != nil {
				log.Fatal(err)
			}
			seen[name] = single.CoreIPC[0]
			singles[i] = single.CoreIPC[0]
		}
		ws := bear.WeightedSpeedup(r, singles)
		rows[d] = row{r: r, ws: ws}
		if d == bear.Alloy {
			baseline = r
		}
	}
	baseWS := rows[bear.Alloy].ws

	fmt.Printf("MIX%d across all designs (normalized weighted speedup, Alloy = 1.0)\n\n", *mix)
	fmt.Printf("%-11s %9s %9s %9s %8s\n", "design", "normWS", "hit-rate", "bloat", "hit-lat")
	for _, d := range designs {
		rw := rows[d]
		fmt.Printf("%-11s %9.3f %8.1f%% %8.2fx %7.0f\n",
			d, rw.ws/baseWS, 100*rw.r.L4HitRate, rw.r.BloatFactor, rw.r.L4HitLatency)
	}
	_ = baseline
	fmt.Println("\nExpected shape (paper Fig 17): BEAR > Incl-Alloy > Alloy > MC > LH > NoL4,")
	fmt.Println("with TIS near BEAR and SC behind Alloy (dirty sector replacements).")
}
