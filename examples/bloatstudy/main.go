// Bloatstudy: measure where DRAM-cache bandwidth goes (Section 2.3).
//
// Reproduces the paper's motivating analysis on a workload of your choice:
// the six-way breakdown of DRAM-cache bus traffic — Hit Probe, Miss Probe,
// Miss Fill, Writeback Probe, Writeback Update, Writeback Fill — for the
// Alloy baseline and for each BEAR component added one at a time.
//
//	go run ./examples/bloatstudy [-workload lbm]
package main

import (
	"flag"
	"fmt"
	"log"

	"bear"
)

func main() {
	workload := flag.String("workload", "lbm", "rate-mode benchmark to analyse")
	flag.Parse()

	cfg := bear.DefaultConfig()
	cfg.Scale = 128
	cfg.WarmInstr = 400_000
	cfg.MeasInstr = 800_000

	steps := []struct {
		name   string
		adjust func(*bear.Config)
	}{
		{"Alloy", func(c *bear.Config) { c.Design = bear.Alloy }},
		{"+BAB", func(c *bear.Config) { c.Design = bear.Alloy; c.Bypass = bear.BandwidthAware }},
		{"+DCP", func(c *bear.Config) {
			c.Design = bear.Alloy
			c.Bypass = bear.BandwidthAware
			c.UseDCP = true
		}},
		{"+NTC=BEAR", func(c *bear.Config) { c.Design = bear.BEAR }},
		{"BW-Opt", func(c *bear.Config) { c.Design = bear.BWOpt }},
	}

	fmt.Printf("bandwidth breakdown for %q (bloat factor per category)\n\n", *workload)
	fmt.Printf("%-10s %6s %10s %9s %8s %9s %7s %7s\n",
		"scheme", "hit", "missProbe", "missFill", "wbProbe", "wbUpdate", "wbFill", "TOTAL")

	var baseline *bear.Result
	for _, s := range steps {
		c := cfg
		s.adjust(&c)
		r, err := bear.RunRate(c, *workload)
		if err != nil {
			log.Fatal(err)
		}
		if baseline == nil {
			baseline = r
		}
		b := r.Breakdown
		fmt.Printf("%-10s %6.2f %10.2f %9.2f %8.2f %9.2f %7.2f %7.2f   (speedup %.3f)\n",
			s.name, b.Hit, b.MissProbe, b.MissFill, b.WBProbe, b.WBUpdate, b.WBFill,
			r.BloatFactor, bear.Speedup(r, baseline))
	}

	fmt.Println("\nReading the table: only 'hit' traffic is useful; everything else is")
	fmt.Println("bandwidth bloat. BAB shrinks missFill, DCP removes wbProbe, the NTC")
	fmt.Println("removes missProbe; BW-Opt is the idealised lower bound of 1.0.")
}
