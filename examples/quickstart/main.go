// Quickstart: run the paper's headline comparison on one workload.
//
// Simulates the omnetpp rate-mode workload on the Alloy-cache baseline,
// on BEAR, and on the idealised Bandwidth-Optimized cache, and prints the
// bandwidth-bloat and performance picture in a few seconds.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bear"
)

func main() {
	cfg := bear.DefaultConfig()
	cfg.Scale = 128 // 8 MB L4: quick, same shapes
	cfg.WarmInstr = 400_000
	cfg.MeasInstr = 800_000

	const workload = "omnetpp"

	cfg.Design = bear.Alloy
	baseline, err := bear.RunRate(cfg, workload)
	if err != nil {
		log.Fatal(err)
	}

	cfg.Design = bear.BEAR
	proposal, err := bear.RunRate(cfg, workload)
	if err != nil {
		log.Fatal(err)
	}

	cfg.Design = bear.BWOpt
	ideal, err := bear.RunRate(cfg, workload)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s (rate mode, 8 cores)\n\n", workload)
	fmt.Printf("%-8s %12s %12s %12s %10s\n", "design", "bloat", "hit-latency", "hit-rate", "speedup")
	for _, r := range []*bear.Result{baseline, proposal, ideal} {
		fmt.Printf("%-8s %11.2fx %9.0f cyc %11.1f%% %9.3fx\n",
			r.Design, r.BloatFactor, r.L4HitLatency, 100*r.L4HitRate,
			bear.Speedup(r, baseline))
	}

	fmt.Printf("\nBEAR components on this run: %d fills bypassed, %d writeback probes\n",
		proposal.Bypasses, proposal.DCPProbesSaved)
	fmt.Printf("saved by DCP, %d miss probes saved by the NTC.\n", proposal.NTCProbesSaved)
	fmt.Printf("\nBloat breakdown (Alloy):  hit=%.2f missProbe=%.2f missFill=%.2f wbProbe=%.2f wbUpdate=%.2f\n",
		baseline.Breakdown.Hit, baseline.Breakdown.MissProbe, baseline.Breakdown.MissFill,
		baseline.Breakdown.WBProbe, baseline.Breakdown.WBUpdate)
	fmt.Printf("Bloat breakdown (BEAR):   hit=%.2f missProbe=%.2f missFill=%.2f wbProbe=%.2f wbUpdate=%.2f\n",
		proposal.Breakdown.Hit, proposal.Breakdown.MissProbe, proposal.Breakdown.MissFill,
		proposal.Breakdown.WBProbe, proposal.Breakdown.WBUpdate)
	fmt.Println("\n" + bear.StorageOverhead())
}
