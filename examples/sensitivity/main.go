// Sensitivity: sweep DRAM-cache bandwidth, capacity, and bank count.
//
// Reproduces the shape of the paper's Figures 14 and 15 on a single
// workload: BEAR's advantage over the Alloy baseline holds as the stacked
// DRAM's bandwidth ratio moves between 4x and 16x of DDR, as capacity
// halves and doubles, and it shrinks (but stays positive) as banks multiply
// and row-buffer conflicts fade.
//
//	go run ./examples/sensitivity [-workload omnetpp]
package main

import (
	"flag"
	"fmt"
	"log"

	"bear"
)

func speedupAt(cfg bear.Config, workload string) float64 {
	base := cfg
	base.Design = bear.Alloy
	b, err := bear.RunRate(base, workload)
	if err != nil {
		log.Fatal(err)
	}
	prop := cfg
	prop.Design = bear.BEAR
	p, err := bear.RunRate(prop, workload)
	if err != nil {
		log.Fatal(err)
	}
	return bear.Speedup(p, b)
}

func main() {
	workload := flag.String("workload", "omnetpp", "rate-mode benchmark to sweep")
	flag.Parse()

	cfg := bear.DefaultConfig()
	cfg.Scale = 128
	cfg.WarmInstr = 300_000
	cfg.MeasInstr = 600_000

	fmt.Printf("BEAR vs Alloy on %q (single workload: expect noise at small scale)\n", *workload)

	fmt.Println("\n(a) DRAM-cache bandwidth (channels -> DDR ratio)")
	for _, ch := range []int{2, 4, 8} {
		c := cfg
		c.L4Channels = ch
		fmt.Printf("  %2dx bandwidth: speedup %.3f\n", ch*2, speedupAt(c, *workload))
	}

	fmt.Println("\n(b) DRAM-cache capacity")
	for _, mb := range []int64{512, 1024, 2048} {
		c := cfg
		c.CapacityMB = mb
		fmt.Printf("  %4d MB (full-scale): speedup %.3f\n", mb, speedupAt(c, *workload))
	}

	fmt.Println("\n(c) DRAM-cache banks (total across 4 channels)")
	for _, per := range []int{16, 64, 256} {
		c := cfg
		c.L4Banks = per
		fmt.Printf("  %4d banks: speedup %.3f\n", per*4, speedupAt(c, *workload))
	}

	fmt.Println("\nPaper shape: >1.10 for all bandwidth/capacity points; the bank sweep")
	fmt.Println("decays toward the pure bus-contention component as conflicts vanish.")
}
