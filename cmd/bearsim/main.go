// Command bearsim runs a single DRAM-cache simulation and prints its
// statistics.
//
// Usage:
//
//	bearsim -workload mcf -design BEAR -scale 128 -meas 2000000
//	bearsim -workload MIX3 -design Alloy
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"bear"
)

var designByName = map[string]bear.Design{
	"nol4": bear.NoL4, "alloy": bear.Alloy, "bear": bear.BEAR,
	"bwopt": bear.BWOpt, "bw-opt": bear.BWOpt, "lh": bear.LohHill,
	"lohhill": bear.LohHill, "mc": bear.MostlyClean, "incl-alloy": bear.InclAlloy,
	"incl": bear.InclAlloy, "tis": bear.TagsInSRAM, "sc": bear.SectorCache,
}

func main() {
	var (
		workload = flag.String("workload", "mcf", "benchmark name (rate mode) or MIXn")
		design   = flag.String("design", "Alloy", "L4 design: NoL4|Alloy|BEAR|BWOpt|LH|MC|Incl-Alloy|TIS|SC")
		scale    = flag.Int("scale", 64, "capacity divisor vs the paper's 1 GB machine")
		warm     = flag.Uint64("warm", 1_000_000, "warm-up instructions per core")
		meas     = flag.Uint64("meas", 2_000_000, "measured instructions per core")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		channels = flag.Int("l4channels", 0, "override L4 channel count (bandwidth study)")
		banks    = flag.Int("l4banks", 0, "override L4 banks per channel")
		capMB    = flag.Int64("capacity", 0, "override full-scale capacity in MB")
		traces   = flag.String("trace", "", "glob of per-core trace files (see beartrace); replaces -workload")
		asJSON   = flag.Bool("json", false, "emit the result as JSON")
	)
	flag.Parse()

	cfg := bear.DefaultConfig()
	cfg.Scale = *scale
	cfg.WarmInstr = *warm
	cfg.MeasInstr = *meas
	cfg.Seed = *seed
	cfg.L4Channels = *channels
	cfg.L4Banks = *banks
	cfg.CapacityMB = *capMB

	d, ok := designByName[strings.ToLower(*design)]
	if !ok {
		fmt.Fprintf(os.Stderr, "bearsim: unknown design %q\n", *design)
		os.Exit(2)
	}
	cfg.Design = d

	var (
		res *bear.Result
		err error
	)
	switch {
	case *traces != "":
		var paths []string
		paths, err = filepath.Glob(*traces)
		if err == nil {
			res, err = bear.RunTraceFiles(cfg, *traces, paths)
		}
	default:
		if n, isMix := mixIndex(*workload); isMix {
			res, err = bear.RunMix(cfg, n)
		} else {
			res, err = bear.RunRate(cfg, *workload)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bearsim: %v\n", err)
		os.Exit(1)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintf(os.Stderr, "bearsim: %v\n", err)
			os.Exit(1)
		}
		return
	}
	print(res)
}

func mixIndex(name string) (int, bool) {
	if !strings.HasPrefix(strings.ToUpper(name), "MIX") {
		return 0, false
	}
	n, err := strconv.Atoi(name[3:])
	if err != nil {
		return 0, false
	}
	return n, true
}

func print(r *bear.Result) {
	fmt.Printf("workload       %s\n", r.Workload)
	fmt.Printf("design         %s\n", r.Design)
	fmt.Printf("cycles         %d\n", r.Cycles)
	fmt.Printf("instructions   %d\n", r.Instructions)
	fmt.Printf("IPC            %.3f\n", r.IPC)
	fmt.Printf("L3 MPKI        %.2f\n", r.L3MPKI)
	fmt.Printf("L3 writebacks  %d\n", r.L3Writebacks)
	fmt.Printf("L4 hit rate    %.1f%%\n", 100*r.L4HitRate)
	fmt.Printf("L4 hit lat     %.0f cycles\n", r.L4HitLatency)
	fmt.Printf("L4 miss lat    %.0f cycles\n", r.L4MissLatency)
	fmt.Printf("L4 avg lat     %.0f cycles\n", r.L4AvgLatency)
	fmt.Printf("bloat factor   %.2fx\n", r.BloatFactor)
	b := r.Breakdown
	fmt.Printf("  hit=%.2f missProbe=%.2f missFill=%.2f wbProbe=%.2f wbUpdate=%.2f wbFill=%.2f victim=%.2f repl=%.2f\n",
		b.Hit, b.MissProbe, b.MissFill, b.WBProbe, b.WBUpdate, b.WBFill, b.VictimRead, b.ReplUpdate)
	if r.Bypasses+r.DCPProbesSaved+r.NTCProbesSaved > 0 {
		fmt.Printf("BEAR           bypasses=%d dcpSaved=%d ntcSaved=%d ntcSquash=%d\n",
			r.Bypasses, r.DCPProbesSaved, r.NTCProbesSaved, r.NTCParallelSq)
	}
	fmt.Printf("mem traffic    read=%.1f MB write=%.1f MB\n",
		float64(r.MemReadBytes)/(1<<20), float64(r.MemWriteBytes)/(1<<20))
}
