// Command bearsim runs DRAM-cache simulations and prints their statistics.
//
// -workload and -design accept comma-separated lists; bearsim simulates the
// full cross product, fanning out across -parallel workers (default
// GOMAXPROCS) and printing results in a deterministic order regardless of
// which finishes first. A unit that fails (including by panic) does not
// stop the sweep: the remaining units run, the failures are summarised on
// stderr, and the exit code is non-zero. -check enables the engine
// invariant watchdog (identical results, unsound runs fail loudly).
//
// Usage:
//
//	bearsim -workload mcf -design BEAR -scale 128 -meas 2000000
//	bearsim -workload MIX3 -design Alloy
//	bearsim -workload mcf,lbm,libq -design Alloy,BEAR -parallel 8
//
// -resume DIR keeps an on-disk result store (checksummed, atomically
// written); completed units are restored instead of re-simulated on the
// next run. SIGINT/SIGTERM interrupt a sweep cleanly: in-flight units
// finish and (with -resume) persist, queued units never start, completed
// results print, and the exit code is 3 — "interrupted but checkpointed"
// — so re-running the same command resumes where the sweep stopped.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"

	"bear"
)

// exitInterrupted distinguishes an operator interrupt with checkpointed
// progress from a failed sweep (1) or a usage error (2).
const exitInterrupted = 3

var designByName = map[string]bear.Design{
	"nol4": bear.NoL4, "alloy": bear.Alloy, "bear": bear.BEAR,
	"bwopt": bear.BWOpt, "bw-opt": bear.BWOpt, "lh": bear.LohHill,
	"lohhill": bear.LohHill, "mc": bear.MostlyClean, "incl-alloy": bear.InclAlloy,
	"incl": bear.InclAlloy, "tis": bear.TagsInSRAM, "sc": bear.SectorCache,
	"banshee": bear.Banshee, "tictoc": bear.TicToc,
}

func main() {
	var (
		workload = flag.String("workload", "mcf", "benchmark names (rate mode) or MIXn, comma-separated")
		design   = flag.String("design", "Alloy", "L4 designs, comma-separated: NoL4|Alloy|BEAR|BWOpt|LH|MC|Incl-Alloy|TIS|SC|Banshee|TicToc")
		scale    = flag.Int("scale", 64, "capacity divisor vs the paper's 1 GB machine")
		warm     = flag.Uint64("warm", 1_000_000, "warm-up instructions per core")
		meas     = flag.Uint64("meas", 2_000_000, "measured instructions per core")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		channels = flag.Int("l4channels", 0, "override L4 channel count (bandwidth study)")
		banks    = flag.Int("l4banks", 0, "override L4 banks per channel")
		capMB    = flag.Int64("capacity", 0, "override full-scale capacity in MB")
		traces   = flag.String("trace", "", "glob of per-core trace files (see beartrace); replaces -workload")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "max concurrent simulations across the workload x design sweep")
		check    = flag.Bool("check", false, "run engine invariant checks each epoch and verify quiescence after the run")
		resume   = flag.String("resume", "", "directory of an on-disk result store; completed units are restored instead of re-simulated")
		asJSON   = flag.Bool("json", false, "emit the result as JSON (an array when sweeping)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			runtime.GC() // only reachable allocations: the structural floor
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fail(err)
			}
		}()
	}

	cfg := bear.DefaultConfig()
	cfg.Scale = *scale
	cfg.WarmInstr = *warm
	cfg.MeasInstr = *meas
	cfg.Seed = *seed
	cfg.L4Channels = *channels
	cfg.L4Banks = *banks
	cfg.CapacityMB = *capMB
	cfg.Check = *check

	if *traces != "" {
		paths, err := filepath.Glob(*traces)
		var res *bear.Result
		if err == nil {
			d, derr := oneDesign(*design)
			if derr != nil {
				fail(derr)
			}
			cfg.Design = d
			res, err = bear.RunTraceFiles(cfg, *traces, paths)
		}
		if err != nil {
			fail(err)
		}
		emit([]*bear.Result{res}, *asJSON)
		return
	}

	// The sweep: every workload under every design, executed by a bounded
	// worker pool. Each simulation is independent and deterministic, so
	// results land in their preassigned slots and printing order never
	// depends on completion order.
	type job struct {
		cfg      bear.Config
		workload string
	}
	var jobs []job
	for _, d := range strings.Split(*design, ",") {
		dv, err := oneDesign(d)
		if err != nil {
			fail(err)
		}
		c := cfg
		c.Design = dv
		for _, w := range strings.Split(*workload, ",") {
			w = strings.TrimSpace(w)
			if w == "" {
				continue
			}
			jobs = append(jobs, job{cfg: c, workload: w})
		}
	}
	if len(jobs) == 0 {
		fail(fmt.Errorf("no workloads given"))
	}

	var store *resultStore
	if *resume != "" {
		st, err := openResultStore(*resume)
		if err != nil {
			fail(err)
		}
		store = st
	}

	// Interrupt handling: the first SIGINT/SIGTERM drains the sweep —
	// units already running finish (and persist to -resume), units still
	// queued never start — and the run exits with code 3.
	var interrupted atomic.Bool
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "bearsim: interrupted — finishing in-flight units, checkpointing completed ones")
		interrupted.Store(true)
	}()

	workers := *parallel
	if workers < 1 {
		workers = 1
	}
	results := make([]*bear.Result, len(jobs))
	errs := make([]error, len(jobs))
	skipped := make([]bool, len(jobs))
	sem := make(chan struct{}, workers)
	done := make(chan int, len(jobs))
	for i, j := range jobs {
		i, j := i, j
		go func() {
			sem <- struct{}{}
			defer func() { <-sem }()
			if interrupted.Load() {
				skipped[i] = true
				done <- i
				return
			}
			// Fault isolation: a panic in one unit fails that unit, not
			// the sweep. The remaining units still run and print.
			defer func() {
				if v := recover(); v != nil {
					errs[i] = fmt.Errorf("panic: %v\n%s", v, debug.Stack())
				}
				done <- i
			}()
			key := unitKey(j.cfg, j.workload)
			if store != nil {
				if res, ok := store.load(key); ok {
					results[i] = res
					return
				}
			}
			if n, isMix := mixIndex(j.workload); isMix {
				results[i], errs[i] = bear.RunMix(j.cfg, n)
			} else {
				results[i], errs[i] = bear.RunRate(j.cfg, j.workload)
			}
			if store != nil && errs[i] == nil {
				store.save(key, results[i])
			}
		}()
	}
	for range jobs {
		<-done
	}

	// Print the units that succeeded (in sweep order), then summarise the
	// failures. The exit code reports sweep health: 0 only when every unit
	// completed, 3 when an interrupt left the sweep checkpointed.
	var completed []*bear.Result
	failed := 0
	for i := range jobs {
		if skipped[i] || errs[i] != nil {
			if errs[i] != nil {
				failed++
			}
			continue
		}
		completed = append(completed, results[i])
	}
	emit(completed, *asJSON)
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "\nbearsim: %d of %d units failed:\n", failed, len(jobs))
		for i, j := range jobs {
			if errs[i] != nil {
				fmt.Fprintf(os.Stderr, "  FAIL %-10s %-10s %v\n", j.cfg.Design, j.workload, errs[i])
			}
		}
	}
	if interrupted.Load() {
		where := *resume
		if where == "" {
			where = "nowhere (-resume not set; completed units were not persisted)"
		}
		fmt.Fprintf(os.Stderr, "bearsim: interrupted; completed units checkpointed to %s — re-run the same command to resume\n", where)
		os.Exit(exitInterrupted)
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func oneDesign(name string) (bear.Design, error) {
	d, ok := designByName[strings.ToLower(strings.TrimSpace(name))]
	if !ok {
		return 0, fmt.Errorf("unknown design %q", name)
	}
	return d, nil
}

func fail(err error) {
	pprof.StopCPUProfile() // flush any in-progress profile; os.Exit skips defers
	fmt.Fprintf(os.Stderr, "bearsim: %v\n", err)
	if strings.Contains(err.Error(), "unknown design") {
		os.Exit(2)
	}
	os.Exit(1)
}

func emit(results []*bear.Result, asJSON bool) {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		var err error
		if len(results) == 1 {
			err = enc.Encode(results[0])
		} else {
			err = enc.Encode(results)
		}
		if err != nil {
			fail(err)
		}
		return
	}
	for i, r := range results {
		if i > 0 {
			fmt.Println()
		}
		print(r)
	}
}

func mixIndex(name string) (int, bool) {
	if !strings.HasPrefix(strings.ToUpper(name), "MIX") {
		return 0, false
	}
	n, err := strconv.Atoi(name[3:])
	if err != nil {
		return 0, false
	}
	return n, true
}

func print(r *bear.Result) {
	fmt.Printf("workload       %s\n", r.Workload)
	fmt.Printf("design         %s\n", r.Design)
	fmt.Printf("cycles         %d\n", r.Cycles)
	fmt.Printf("instructions   %d\n", r.Instructions)
	fmt.Printf("IPC            %.3f\n", r.IPC)
	fmt.Printf("L3 MPKI        %.2f (miss rate %.1f%%)\n", r.L3MPKI, 100*r.L3MissRate)
	fmt.Printf("L3 writebacks  %d\n", r.L3Writebacks)
	fmt.Printf("L4 hit rate    %.1f%%\n", 100*r.L4HitRate)
	fmt.Printf("L4 hit lat     %.0f cycles\n", r.L4HitLatency)
	fmt.Printf("L4 miss lat    %.0f cycles\n", r.L4MissLatency)
	fmt.Printf("L4 avg lat     %.0f cycles\n", r.L4AvgLatency)
	fmt.Printf("bloat factor   %.2fx\n", r.BloatFactor)
	b := r.Breakdown
	fmt.Printf("  hit=%.2f missProbe=%.2f missFill=%.2f wbProbe=%.2f wbUpdate=%.2f wbFill=%.2f victim=%.2f repl=%.2f\n",
		b.Hit, b.MissProbe, b.MissFill, b.WBProbe, b.WBUpdate, b.WBFill, b.VictimRead, b.ReplUpdate)
	if r.Bypasses+r.DCPProbesSaved+r.NTCProbesSaved > 0 {
		fmt.Printf("BEAR           bypasses=%d dcpSaved=%d ntcSaved=%d ntcSquash=%d\n",
			r.Bypasses, r.DCPProbesSaved, r.NTCProbesSaved, r.NTCParallelSq)
	}
	if r.PredHits+r.PredMisses > 0 {
		fmt.Printf("MAP-I          accuracy=%.1f%% (%d/%d)\n",
			100*float64(r.PredHits)/float64(r.PredHits+r.PredMisses),
			r.PredHits, r.PredHits+r.PredMisses)
	}
	fmt.Printf("mem traffic    read=%.1f MB write=%.1f MB\n",
		float64(r.MemReadBytes)/(1<<20), float64(r.MemWriteBytes)/(1<<20))
}
