package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"

	"bear"
)

// resultStore is bearsim's -resume cache: one checksummed JSON file per
// completed sweep unit, installed atomically (write a sibling temp file,
// then rename) so an interrupted or crashed sweep leaves only whole
// entries behind. It follows exp.Store's discipline — fingerprint over
// build identity, checksum over the payload, structural damage treated as
// a miss — but stores bearsim's public bear.Result, keyed by the full
// Config so any flag change (design, scale, geometry overrides) is a
// different unit.
type resultStore struct {
	dir         string
	fingerprint string
}

const resumeVersion = 1

type resumeEnvelope struct {
	Version     int             `json:"version"`
	Fingerprint string          `json:"fingerprint"`
	Key         string          `json:"key"`
	Checksum    string          `json:"checksum"` // sha256 of Result
	Result      json.RawMessage `json:"result"`
}

func openResultStore(dir string) (*resultStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("opening result store: %w", err)
	}
	return &resultStore{dir: dir, fingerprint: simFingerprint()}, nil
}

// unitKey renders the unit identity: every result-affecting Config field
// plus the workload. Check is scrubbed first — the watchdog never changes
// results, so it must not split the store.
func unitKey(cfg bear.Config, workload string) string {
	cfg.Check = false
	return fmt.Sprintf("%+v|%s", cfg, workload)
}

func (st *resultStore) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(st.dir, hex.EncodeToString(sum[:8])+".json")
}

func resumeChecksum(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// load returns the stored result for key, or ok=false. Any damage —
// corrupt JSON, wrong key, stale fingerprint, checksum mismatch — is a
// miss: the unit re-simulates rather than trusting a doubtful entry.
func (st *resultStore) load(key string) (*bear.Result, bool) {
	raw, err := os.ReadFile(st.path(key))
	if err != nil {
		return nil, false
	}
	var env resumeEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return nil, false
	}
	if env.Version != resumeVersion || env.Fingerprint != st.fingerprint ||
		env.Key != key || env.Checksum != resumeChecksum(env.Result) {
		return nil, false
	}
	var res bear.Result
	if err := json.Unmarshal(env.Result, &res); err != nil {
		return nil, false
	}
	return &res, true
}

// save persists a completed unit (best-effort: a failed save costs a
// future resume, not this run's output).
func (st *resultStore) save(key string, res *bear.Result) {
	resJSON, err := json.Marshal(res)
	if err != nil {
		return
	}
	raw, err := json.Marshal(&resumeEnvelope{
		Version:     resumeVersion,
		Fingerprint: st.fingerprint,
		Key:         key,
		Checksum:    resumeChecksum(resJSON),
		Result:      resJSON,
	})
	if err != nil {
		return
	}
	final := st.path(key)
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
	}
}

// simFingerprint is the build identity guarding the store (results from a
// different code revision must not be trusted); same derivation as
// bearbench's buildFingerprint.
func simFingerprint() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev, modified string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				modified = s.Value
			}
		}
		if rev != "" {
			if modified == "true" {
				return rev + "+dirty"
			}
			return rev
		}
	}
	return "dev"
}
