// Command simlint is the repository's static analyzer: it enforces the
// determinism, hot-path alloc-freedom, pool-discipline and engine-contract
// invariants described in ARCHITECTURE.md ("Enforced invariants"), using
// only the Go standard library.
//
// Usage:
//
//	simlint [./...]
//	simlint ./internal/dram ./internal/event
//
// With "./..." (the default) every package under the module is analyzed.
// Diagnostics print as file:line:col: rule: message; the exit status is 1
// when any diagnostic is reported. Suppress a finding with a trailing
// `//bear:nolint <rule> — reason` comment.
package main

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"bear/internal/lint"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
}

func run(args []string) error {
	root, module, err := findModule()
	if err != nil {
		return err
	}

	if len(args) == 0 {
		args = []string{"./..."}
	}
	var dirs []string
	for _, arg := range args {
		if strings.HasSuffix(arg, "...") {
			base := filepath.Join(root, strings.TrimSuffix(strings.TrimSuffix(arg, "..."), "/"))
			sub, err := lint.FindPackageDirs(base)
			if err != nil {
				return err
			}
			dirs = append(dirs, sub...)
			continue
		}
		dirs = append(dirs, filepath.Join(root, arg))
	}

	prog, err := lint.Load(module, root, dirs)
	if err != nil {
		return err
	}
	diags := prog.Run(repoConfig(module))
	for _, d := range diags {
		rel, err := filepath.Rel(root, d.Pos.Filename)
		if err == nil {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
	return nil
}

// repoConfig scopes the rule families for this repository:
//
//   - determinism rules cover every internal/ simulation package; the lint
//     package itself is infrastructure, and cmd/examples are drivers that
//     legitimately read wall-clock time for progress reporting;
//   - goroutines are allowed only in internal/exp (the worker-pool layer);
//   - the map-iteration rule applies everywhere, because map-ordered output
//     from a driver is as nondeterministic as from a model;
//   - the typed-invariant rule (no bare string panics) covers the engine
//     packages whose panics cross the fault-isolation recover in
//     internal/exp and must arrive classifiable.
func repoConfig(module string) lint.Config {
	internal := module + "/internal/"
	engine := map[string]bool{
		internal + "dram": true, internal + "sram": true,
		internal + "cpu": true, internal + "hier": true,
		internal + "dramcache": true,
	}
	return lint.Config{
		Determinism: func(path string) bool {
			return strings.HasPrefix(path, internal) && path != internal+"lint"
		},
		AllowGo: func(path string) bool {
			return path == internal+"exp"
		},
		MapRange:       func(path string) bool { return true },
		InvariantPanic: func(path string) bool { return engine[path] },
	}
}

// findModule locates go.mod upward from the working directory and returns
// the module root and path.
func findModule() (root, module string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		gomod := filepath.Join(dir, "go.mod")
		if f, err := os.Open(gomod); err == nil {
			defer f.Close()
			sc := bufio.NewScanner(f)
			for sc.Scan() {
				if m, ok := strings.CutPrefix(strings.TrimSpace(sc.Text()), "module "); ok {
					return dir, strings.TrimSpace(m), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s", gomod)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("go.mod not found above %s", dir)
		}
		dir = parent
	}
}
