// Command simlint is the repository's static analyzer: it enforces the
// determinism, hot-path alloc-freedom, pool-discipline, engine-contract,
// byte-attribution, event-time and stats-census invariants described in
// ARCHITECTURE.md ("Enforced invariants"), using only the Go standard
// library.
//
// Usage:
//
//	simlint [flags] [./...]
//	simlint ./internal/dram ./internal/event
//
// With "./..." (the default) every package under the module is analyzed.
// Diagnostics print as file:line:col: rule: message; the exit status is 1
// when any diagnostic is reported. Suppress a finding with a trailing
// `//bear:nolint <rule> — reason` comment.
//
// Flags:
//
//	-json           print diagnostics as JSON objects, one per line
//	-cache          key the whole run on a hash of every non-test .go file;
//	                replay the stored diagnostics when nothing changed
//	-nolint-report  list every //bear:nolint suppression with its reason
//	                (parse-only; no analysis runs)
package main

import (
	"bufio"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"bear/internal/lint"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
}

// finding is the JSON shape of one diagnostic (and the cache entry format).
type finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "print diagnostics as JSON, one object per line")
	useCache := fs.Bool("cache", false, "reuse the previous run's result when no .go file changed")
	nolintReport := fs.Bool("nolint-report", false, "list every //bear:nolint suppression with its reason")
	if err := fs.Parse(args); err != nil {
		return err
	}
	args = fs.Args()

	root, module, err := findModule()
	if err != nil {
		return err
	}

	if *nolintReport {
		return reportNolints(os.Stdout, root)
	}

	if len(args) == 0 {
		args = []string{"./..."}
	}
	full := false
	var dirs []string
	for _, arg := range args {
		if strings.HasSuffix(arg, "...") {
			if arg == "./..." || arg == "..." {
				full = true
			}
			base := filepath.Join(root, strings.TrimSuffix(strings.TrimSuffix(arg, "..."), "/"))
			sub, err := lint.FindPackageDirs(base)
			if err != nil {
				return err
			}
			dirs = append(dirs, sub...)
			continue
		}
		dirs = append(dirs, filepath.Join(root, arg))
	}

	var cacheKey string
	if *useCache {
		cacheKey, err = treeHash(root, module, args)
		if err != nil {
			return err
		}
		if found, ok := readCache(root, cacheKey); ok {
			emit(found, *jsonOut)
			if len(found) > 0 {
				fmt.Fprintf(os.Stderr, "simlint: %d diagnostic(s) (cached)\n", len(found))
				os.Exit(1)
			}
			return nil
		}
	}

	prog, err := lint.Load(module, root, dirs)
	if err != nil {
		return err
	}
	diags := prog.Run(repoConfig(module, full))
	var found []finding
	for _, d := range diags {
		rel, err := filepath.Rel(root, d.Pos.Filename)
		if err != nil {
			rel = d.Pos.Filename
		}
		found = append(found, finding{
			File: rel, Line: d.Pos.Line, Col: d.Pos.Column,
			Rule: d.Rule, Message: d.Message,
		})
	}
	if *useCache {
		writeCache(root, cacheKey, found)
	}
	emit(found, *jsonOut)
	if len(found) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d diagnostic(s)\n", len(found))
		os.Exit(1)
	}
	return nil
}

func emit(found []finding, jsonOut bool) {
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if jsonOut {
		enc := json.NewEncoder(w)
		for _, f := range found {
			enc.Encode(f)
		}
		return
	}
	for _, f := range found {
		fmt.Fprintf(w, "%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Rule, f.Message)
	}
}

// repoConfig scopes the rule families for this repository:
//
//   - determinism rules cover every internal/ simulation package, including
//     internal/lint itself (the analyzer must be as deterministic as the
//     models it audits); cmd/examples are drivers that legitimately read
//     wall-clock time for progress reporting, and internal/serve is the
//     bearserve control plane — deadlines, backoff and circuit breakers are
//     wall-clock machinery by design, and nothing under internal/serve is
//     on a simulation path (workers are separate processes whose simulation
//     code stays fully covered);
//   - goroutines are allowed only in internal/exp (the worker-pool layer)
//     and internal/serve (the supervision tree);
//   - the map-iteration rule applies everywhere, because map-ordered output
//     from a driver is as nondeterministic as from a model;
//   - the typed-invariant rule (no bare string panics) covers the engine
//     packages whose panics cross the fault-isolation recover in
//     internal/exp and must arrive classifiable;
//   - the bytes rule guards the DRAM-cache engine, the only package that
//     enqueues DRAM-cache bus transfers;
//   - the timeflow rule covers every package that schedules events;
//   - the stats census needs the whole program to see both producers and
//     consumers, so it runs only on full ./... invocations.
func repoConfig(module string, full bool) lint.Config {
	internal := module + "/internal/"
	engine := map[string]bool{
		internal + "dram": true, internal + "sram": true,
		internal + "cpu": true, internal + "hier": true,
		internal + "dramcache": true,
	}
	timed := map[string]bool{
		internal + "event": true, internal + "dram": true,
		internal + "cpu": true, internal + "hier": true,
		internal + "dramcache": true,
	}
	return lint.Config{
		Determinism: func(path string) bool {
			return strings.HasPrefix(path, internal) && path != internal+"serve"
		},
		AllowGo: func(path string) bool {
			return path == internal+"exp" || path == internal+"serve"
		},
		MapRange:       func(path string) bool { return true },
		InvariantPanic: func(path string) bool { return engine[path] },
		Bytes:          func(path string) bool { return path == internal+"dramcache" },
		Timeflow:       func(path string) bool { return timed[path] },
		StatsFields: func(path string) bool {
			return full && path == internal+"stats"
		},
	}
}

// --- Result cache. ---

// cacheFile sits at the module root; .gitignore excludes it.
const cacheFile = ".simlint.cache"

type cacheEntry struct {
	Key      string    `json:"key"`
	Findings []finding `json:"findings"`
}

// treeHash fingerprints everything a run's outcome depends on: the module
// path, the argument list, and the content of every non-test .go file plus
// go.mod. Rule changes invalidate the cache automatically because the rules
// live in internal/lint's own .go files.
func treeHash(root, module string, args []string) (string, error) {
	h := sha256.New()
	fmt.Fprintf(h, "module %s\nargs %q\n", module, args)
	var files []string
	err := filepath.Walk(root, func(path string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if fi.IsDir() {
			name := fi.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return "", err
	}
	sort.Strings(files)
	for _, path := range files {
		rel, err := filepath.Rel(root, path)
		if err != nil {
			rel = path
		}
		f, err := os.Open(path)
		if err != nil {
			return "", err
		}
		fh := sha256.New()
		_, err = io.Copy(fh, f)
		f.Close()
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "%s %x\n", filepath.ToSlash(rel), fh.Sum(nil))
	}
	if b, err := os.ReadFile(filepath.Join(root, "go.mod")); err == nil {
		h.Write(b)
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}

func readCache(root, key string) ([]finding, bool) {
	b, err := os.ReadFile(filepath.Join(root, cacheFile))
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if json.Unmarshal(b, &e) != nil || e.Key != key {
		return nil, false
	}
	return e.Findings, true
}

func writeCache(root, key string, found []finding) {
	b, err := json.Marshal(cacheEntry{Key: key, Findings: found})
	if err != nil {
		return
	}
	os.WriteFile(filepath.Join(root, cacheFile), b, 0o644)
}

// --- Suppression report. ---

// reportNolints lists every //bear:nolint comment in the tree with its rules
// and reason: the audit trail for what the analyzer has been told to ignore.
// Files are parsed, not grepped, so string literals and prose mentions of the
// marker do not count.
func reportNolints(w io.Writer, root string) error {
	type supp struct {
		file string
		line int
		body string
	}
	var supps []supp
	fset := token.NewFileSet()
	err := filepath.Walk(root, func(path string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if fi.IsDir() {
			name := fi.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if f == nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			rel = path
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				body, ok := strings.CutPrefix(c.Text, "//bear:nolint")
				if !ok || (body != "" && body[0] != ' ' && body[0] != '\t') {
					continue
				}
				supps = append(supps, supp{
					file: filepath.ToSlash(rel),
					line: fset.Position(c.Pos()).Line,
					body: strings.TrimSpace(body),
				})
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	sort.Slice(supps, func(i, j int) bool {
		if supps[i].file != supps[j].file {
			return supps[i].file < supps[j].file
		}
		return supps[i].line < supps[j].line
	})
	for _, s := range supps {
		fmt.Fprintf(w, "%s:%d: %s\n", s.file, s.line, s.body)
	}
	fmt.Fprintf(w, "%d suppression(s)\n", len(supps))
	return nil
}

// findModule locates go.mod upward from the working directory and returns
// the module root and path.
func findModule() (root, module string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		gomod := filepath.Join(dir, "go.mod")
		if f, err := os.Open(gomod); err == nil {
			defer f.Close()
			sc := bufio.NewScanner(f)
			for sc.Scan() {
				if m, ok := strings.CutPrefix(strings.TrimSpace(sc.Text()), "module "); ok {
					return dir, strings.TrimSpace(m), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s", gomod)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("go.mod not found above %s", dir)
		}
		dir = parent
	}
}
