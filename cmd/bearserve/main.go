// Command bearserve is the sweep daemon: a long-running HTTP control
// plane that schedules simulation units onto a supervised pool of
// bearbench -worker subprocesses. A simulator crash, watchdog trip or
// OOM kills one unit's worker process; the server retries the unit with
// backoff, sheds load through per-design circuit breakers, and keeps
// serving memoized results throughout.
//
// Usage:
//
//	bearserve -addr :8080 -store results/ -workers 4 -quick
//	curl -XPOST localhost:8080/sweep -d '{"units":[{"design":"Alloy","workload":"soplex"}]}'
//	curl localhost:8080/progress
//	curl localhost:8080/result?design=Alloy&workload=soplex
//
// Endpoints: POST /sweep, GET /progress, /result, /healthz, /readyz.
// SIGTERM (or SIGINT) drains: /readyz flips to 503, in-flight units
// finish and persist, queued units are checkpointed into the store's
// pending.json, and the process exits. On startup an existing
// pending.json is resubmitted automatically, so drain + restart resumes
// the sweep. Simulation parameters (-quick, -scale, -warm, -meas,
// -mixes, -seed) are forwarded to every worker; the store fingerprint
// covers them, so server and workers always agree on what a result
// means.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime/debug"
	"strconv"
	"syscall"
	"time"

	"bear/internal/exp"
	"bear/internal/faultpoint"
	"bear/internal/serve"
)

func main() {
	var (
		addr            = flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
		storeDir        = flag.String("store", "", "result store directory (required)")
		workers         = flag.Int("workers", 2, "worker subprocess pool size")
		workerBin       = flag.String("worker-bin", "", "worker binary (default: bearbench next to this executable, or on PATH)")
		quick           = flag.Bool("quick", false, "use small quick-check parameters")
		scale           = flag.Int("scale", 0, "override capacity divisor")
		warm            = flag.Uint64("warm", 0, "override warm-up instructions per core")
		meas            = flag.Uint64("meas", 0, "override measured instructions per core")
		mixes           = flag.Int("mixes", 0, "override number of MIX workloads")
		seed            = flag.Uint64("seed", 0, "override simulation seed")
		attempts        = flag.Int("max-attempts", 3, "tries per unit before it fails terminally")
		deadline        = flag.Duration("deadline", 0, "per-unit wall-clock deadline (default: derived from instruction budgets)")
		faultplan       = flag.String("faultplan", "", "arm the server-side fault-injection plan (chaos testing)")
		workerFaultplan = flag.String("worker-faultplan", "", "fault-injection plan forwarded to every worker (chaos testing)")
	)
	flag.Parse()
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "bearserve: -store is required")
		os.Exit(2)
	}

	p := exp.Default()
	workerArgs := []string{"-worker"}
	if *quick {
		p = exp.Quick()
		workerArgs = append(workerArgs, "-quick")
	}
	if *scale > 0 {
		p.Scale = *scale
		workerArgs = append(workerArgs, "-scale", strconv.Itoa(*scale))
	}
	if *warm > 0 {
		p.Warm = *warm
		workerArgs = append(workerArgs, "-warm", strconv.FormatUint(*warm, 10))
	}
	if *meas > 0 {
		p.Meas = *meas
		workerArgs = append(workerArgs, "-meas", strconv.FormatUint(*meas, 10))
	}
	if *mixes > 0 {
		p.Mixes = *mixes
		workerArgs = append(workerArgs, "-mixes", strconv.Itoa(*mixes))
	}
	if *seed > 0 {
		p.Seed = *seed
		workerArgs = append(workerArgs, "-seed", strconv.FormatUint(*seed, 10))
	}

	if *faultplan != "" {
		plan, err := faultpoint.ParsePlan(*faultplan)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bearserve:", err)
			os.Exit(2)
		}
		faultpoint.Arm(plan)
	}
	if *workerFaultplan != "" {
		// Validated here so a typo fails the daemon at startup, not every
		// worker handshake; workers arm it themselves via their own flag.
		if _, err := faultpoint.ParsePlan(*workerFaultplan); err != nil {
			fmt.Fprintln(os.Stderr, "bearserve: -worker-faultplan:", err)
			os.Exit(2)
		}
		workerArgs = append(workerArgs, "-faultplan", *workerFaultplan)
	}

	fingerprint := p.Fingerprint(buildFingerprint())
	store, err := exp.OpenStore(*storeDir, fingerprint)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bearserve:", err)
		os.Exit(1)
	}

	bin := *workerBin
	if bin == "" {
		bin = siblingBearbench()
	}
	s := serve.New(serve.Config{
		WorkerCmd:    append([]string{bin}, workerArgs...),
		Workers:      *workers,
		Store:        store,
		StoreDir:     *storeDir,
		Fingerprint:  fingerprint,
		MaxAttempts:  *attempts,
		UnitDeadline: *deadline,
		Params:       p,
		Seed:         p.Seed,
	})
	s.Start()

	// A drain manifest from a previous SIGTERM resumes automatically.
	if left, err := serve.ReadCheckpoint(*storeDir); err != nil {
		fmt.Fprintln(os.Stderr, "bearserve:", err)
	} else if len(left) > 0 {
		if n, err := s.Submit(left); err != nil {
			fmt.Fprintln(os.Stderr, "bearserve: resuming checkpoint:", err)
		} else {
			fmt.Fprintf(os.Stderr, "bearserve: resumed %d checkpointed unit(s)\n", n)
		}
	}

	hs := &http.Server{Addr: *addr, Handler: s.Handler()}
	go func() {
		if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "bearserve:", err)
			os.Exit(1)
		}
	}()
	fmt.Fprintf(os.Stderr, "bearserve: listening on %s (fingerprint %s, %d workers)\n",
		*addr, fingerprint, *workers)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "bearserve: draining (readyz now 503; in-flight units finishing)")
	if err := s.Drain(); err != nil {
		fmt.Fprintln(os.Stderr, "bearserve: checkpoint:", err)
	}
	// The HTTP surface stays up during the drain so /healthz and
	// /progress remain observable; shut it down last.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	hs.Shutdown(shutdownCtx)
	pr := s.Progress()
	fmt.Fprintf(os.Stderr, "bearserve: drained: %d done, %d failed, %d checkpointed\n",
		pr.Done, pr.Failed, pr.Interrupted)
}

// siblingBearbench prefers the bearbench binary sitting next to this
// executable (the layout `go build ./...` and the CI scripts produce),
// falling back to whatever PATH resolves.
func siblingBearbench() string {
	if self, err := os.Executable(); err == nil {
		cand := self[:len(self)-len("bearserve")] + "bearbench"
		if fi, err := os.Stat(cand); err == nil && !fi.IsDir() {
			return cand
		}
	}
	return "bearbench"
}

// buildFingerprint mirrors bearbench's build identity (see cmd/bearbench):
// the two binaries must derive identical fingerprints when built from the
// same tree, or the handshake refuses every worker.
func buildFingerprint() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev, modified string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				modified = s.Value
			}
		}
		if rev != "" {
			if modified == "true" {
				return rev + "+dirty"
			}
			return rev
		}
	}
	return "dev"
}
