// Command bearbench regenerates the paper's tables and figures from live
// simulations.
//
// Usage:
//
//	bearbench -list
//	bearbench -run fig12
//	bearbench -run all -quick
//	bearbench -run fig13 -scale 64 -meas 1200000 -mixes 8
//	bearbench -run all -parallel 32 -v
//
// Simulations fan out across -parallel workers (default GOMAXPROCS).
// Every simulation is deterministic and results are collected in a fixed
// order, so the output is byte-identical at any parallelism level.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"bear/internal/exp"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list experiments and exit")
		run      = flag.String("run", "", "experiment id to run, or 'all'")
		quick    = flag.Bool("quick", false, "use small quick-check parameters")
		scale    = flag.Int("scale", 0, "override capacity divisor")
		warm     = flag.Uint64("warm", 0, "override warm-up instructions per core")
		meas     = flag.Uint64("meas", 0, "override measured instructions per core")
		mixes    = flag.Int("mixes", 0, "override number of MIX workloads")
		seed     = flag.Uint64("seed", 0, "override simulation seed")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "max concurrent simulations (1 = serial; output is identical either way)")
		verbose  = flag.Bool("v", false, "log every simulation as it completes")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("Experiments (one per paper table/figure):")
		for _, e := range exp.All() {
			fmt.Printf("  %-6s %-9s %s\n", e.ID, e.Artifact, e.Title)
			fmt.Printf("         %s\n", e.About)
		}
		if *run == "" && !*list {
			fmt.Println("\nrun one with: bearbench -run <id>   (or -run all)")
		}
		return
	}

	p := exp.Default()
	if *quick {
		p = exp.Quick()
	}
	if *scale > 0 {
		p.Scale = *scale
	}
	if *warm > 0 {
		p.Warm = *warm
	}
	if *meas > 0 {
		p.Meas = *meas
	}
	if *mixes > 0 {
		p.Mixes = *mixes
	}
	if *seed > 0 {
		p.Seed = *seed
	}

	runner := exp.NewRunner(p)
	if *parallel > 0 {
		runner.Parallel = *parallel
	}
	if *verbose {
		runner.Log = os.Stderr
	}

	var todo []exp.Experiment
	if *run == "all" {
		todo = exp.All()
	} else {
		e, err := exp.ByID(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		todo = []exp.Experiment{e}
	}

	for _, e := range todo {
		start := time.Now()
		fmt.Printf("\n### %s — %s\n### %s\n", e.Artifact, e.Title, e.About)
		if err := e.Run(p, os.Stdout, runner); err != nil {
			fmt.Fprintf(os.Stderr, "bearbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("\n[%s done in %v, %d simulations so far]\n", e.ID, time.Since(start).Round(time.Millisecond), runner.Count())
	}
}
