// Command bearbench regenerates the paper's tables and figures from live
// simulations.
//
// Usage:
//
//	bearbench -list
//	bearbench -run fig12
//	bearbench -run all -quick
//	bearbench -run fig13 -scale 64 -meas 1200000 -mixes 8
//	bearbench -run all -parallel 32 -v
//
// Simulations fan out across -parallel workers (default GOMAXPROCS).
// Every simulation is deterministic and results are collected in a fixed
// order, so the output is byte-identical at any parallelism level.
//
// -resume DIR keeps an on-disk result store: completed simulations are
// written there (atomically, checksummed) and restored on the next run,
// so an interrupted sweep resumes where it crashed. -check enables the
// engine invariant watchdog. Failed simulations do not stop a sweep; the
// run summarises them on stderr and exits non-zero.
//
// SIGINT/SIGTERM interrupt a sweep cleanly: in-flight simulations finish
// and (with -resume) persist to the store, nothing new starts, and the
// process exits with code 3 — "interrupted but checkpointed" — so a
// wrapper can distinguish an operator stop from a failed sweep and simply
// re-run the same command to resume.
//
// -worker turns the process into a bearserve pool worker: it reads unit
// specs as line-delimited JSON on stdin and writes result-store envelopes
// on stdout (see internal/serve). -faultplan arms the deterministic
// fault-injection registry for chaos testing (see internal/faultpoint).
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"strings"
	"syscall"
	"time"

	"bear/internal/exp"
	"bear/internal/faultpoint"
	"bear/internal/serve"
)

// Exit codes: 0 success, 1 unit/experiment failures, 2 usage errors,
// 3 interrupted by SIGINT/SIGTERM with completed work checkpointed.
const exitInterrupted = 3

func main() {
	var (
		list      = flag.Bool("list", false, "list experiments and exit")
		run       = flag.String("run", "", "experiment id to run, or 'all'")
		quick     = flag.Bool("quick", false, "use small quick-check parameters")
		scale     = flag.Int("scale", 0, "override capacity divisor")
		warm      = flag.Uint64("warm", 0, "override warm-up instructions per core")
		meas      = flag.Uint64("meas", 0, "override measured instructions per core")
		mixes     = flag.Int("mixes", 0, "override number of MIX workloads")
		seed      = flag.Uint64("seed", 0, "override simulation seed")
		parallel  = flag.Int("parallel", runtime.GOMAXPROCS(0), "max concurrent simulations (1 = serial; output is identical either way)")
		verbose   = flag.Bool("v", false, "log every simulation as it completes")
		resume    = flag.String("resume", "", "directory of an on-disk result store; completed units are restored instead of re-simulated")
		check     = flag.Bool("check", false, "run engine invariant checks each epoch and verify quiescence after every simulation")
		worker    = flag.Bool("worker", false, "run as a bearserve pool worker: unit specs on stdin, result envelopes on stdout")
		faultplan = flag.String("faultplan", "", "arm the deterministic fault-injection plan (chaos testing)")
		unitkey   = flag.String("unitkey", "", "print the result-store key for a design/workload unit and exit (for fault-plan scripting)")
	)
	flag.Parse()

	if *faultplan != "" {
		plan, err := faultpoint.ParsePlan(*faultplan)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bearbench:", err)
			os.Exit(2)
		}
		faultpoint.Arm(plan)
	}

	if *unitkey != "" {
		// Store keys are the coordinates of keyed fault-plan entries;
		// scripts must never hand-write them (the rendering tracks the
		// internal spec struct), so print the canonical derivation.
		design, workload, ok := strings.Cut(*unitkey, "/")
		if !ok {
			fmt.Fprintln(os.Stderr, "bearbench: -unitkey wants design/workload (e.g. Alloy/soplex)")
			os.Exit(2)
		}
		key, err := exp.UnitSpec{Design: design, Workload: workload}.Key()
		if err != nil {
			fmt.Fprintln(os.Stderr, "bearbench:", err)
			os.Exit(2)
		}
		fmt.Println(key)
		return
	}

	if !*worker && (*list || *run == "") {
		fmt.Println("Experiments (one per paper table/figure):")
		for _, e := range exp.All() {
			fmt.Printf("  %-6s %-9s %s\n", e.ID, e.Artifact, e.Title)
			fmt.Printf("         %s\n", e.About)
		}
		if *run == "" && !*list {
			fmt.Println("\nrun one with: bearbench -run <id>   (or -run all)")
		}
		return
	}

	p := exp.Default()
	if *quick {
		p = exp.Quick()
	}
	if *scale > 0 {
		p.Scale = *scale
	}
	if *warm > 0 {
		p.Warm = *warm
	}
	if *meas > 0 {
		p.Meas = *meas
	}
	if *mixes > 0 {
		p.Mixes = *mixes
	}
	if *seed > 0 {
		p.Seed = *seed
	}
	p.Watchdog.Check = *check

	runner := exp.NewRunner(p)
	if *parallel > 0 {
		runner.Parallel = *parallel
	}
	if *verbose {
		runner.Log = os.Stderr
	}

	if *worker {
		// Pool-worker mode: serve bearserve's unit protocol until stdin
		// closes. Stdout belongs to the protocol, so progress logging (-v)
		// stays on stderr; units run serially — the server owns parallelism.
		runner.Parallel = 1
		err := serve.WorkerLoop(runner, p.Fingerprint(buildFingerprint()), os.Stdin, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bearbench: worker:", err)
			os.Exit(1)
		}
		return
	}

	// Interrupt handling: first SIGINT/SIGTERM puts the runner into drain
	// mode — in-flight simulations finish (and persist to -resume), queued
	// ones fail fast with ErrInterrupted — and the run exits with code 3.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "bearbench: interrupted — finishing in-flight simulations, checkpointing completed units")
		runner.Interrupt()
	}()
	if *resume != "" {
		store, err := exp.OpenStore(*resume, p.Fingerprint(buildFingerprint()))
		if err != nil {
			fmt.Fprintln(os.Stderr, "bearbench:", err)
			os.Exit(1)
		}
		runner.Store = store
	}

	var todo []exp.Experiment
	if *run == "all" {
		todo = exp.All()
	} else {
		e, err := exp.ByID(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		todo = []exp.Experiment{e}
	}

	// Experiments run to completion even when one fails: a failed
	// experiment is recorded, the rest still regenerate their artifacts,
	// and the run exits non-zero with a failure summary.
	var failedExps []string
	for _, e := range todo {
		start := time.Now()
		fmt.Printf("\n### %s — %s\n### %s\n", e.Artifact, e.Title, e.About)
		if err := e.Run(p, os.Stdout, runner); err != nil {
			fmt.Fprintf(os.Stderr, "bearbench: %s: %v\n", e.ID, err)
			failedExps = append(failedExps, e.ID)
			continue
		}
		fmt.Printf("\n[%s done in %v, %d simulations so far]\n", e.ID, time.Since(start).Round(time.Millisecond), runner.Count())
	}
	if n := runner.Restored(); n > 0 {
		fmt.Fprintf(os.Stderr, "bearbench: %d result(s) restored from %s\n", n, *resume)
	}
	runner.WriteFailureTable(os.Stderr)
	if runner.Interrupted() {
		where := *resume
		if where == "" {
			where = "nowhere (-resume not set; completed units were not persisted)"
		}
		fmt.Fprintf(os.Stderr, "bearbench: interrupted; completed units checkpointed to %s — re-run the same command to resume\n", where)
		os.Exit(exitInterrupted)
	}
	if len(failedExps) > 0 {
		fmt.Fprintf(os.Stderr, "bearbench: %d experiment(s) failed: %s\n", len(failedExps), strings.Join(failedExps, ", "))
		os.Exit(1)
	}
}

// buildFingerprint identifies the simulator build for the result store:
// results cached by a different code version must not be trusted. Binaries
// built inside the git checkout carry the VCS revision; anything else
// (e.g. `go run` of a modified tree without VCS stamping) degrades to a
// shared "dev" fingerprint.
func buildFingerprint() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev, modified string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				modified = s.Value
			}
		}
		if rev != "" {
			if modified == "true" {
				return rev + "+dirty"
			}
			return rev
		}
	}
	return "dev"
}
