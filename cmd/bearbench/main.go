// Command bearbench regenerates the paper's tables and figures from live
// simulations.
//
// Usage:
//
//	bearbench -list
//	bearbench -run fig12
//	bearbench -run all -quick
//	bearbench -run fig13 -scale 64 -meas 1200000 -mixes 8
//	bearbench -run all -parallel 32 -v
//
// Simulations fan out across -parallel workers (default GOMAXPROCS).
// Every simulation is deterministic and results are collected in a fixed
// order, so the output is byte-identical at any parallelism level.
//
// -resume DIR keeps an on-disk result store: completed simulations are
// written there (atomically, checksummed) and restored on the next run,
// so an interrupted sweep resumes where it crashed. -check enables the
// engine invariant watchdog. Failed simulations do not stop a sweep; the
// run summarises them on stderr and exits non-zero.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"bear/internal/exp"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list experiments and exit")
		run      = flag.String("run", "", "experiment id to run, or 'all'")
		quick    = flag.Bool("quick", false, "use small quick-check parameters")
		scale    = flag.Int("scale", 0, "override capacity divisor")
		warm     = flag.Uint64("warm", 0, "override warm-up instructions per core")
		meas     = flag.Uint64("meas", 0, "override measured instructions per core")
		mixes    = flag.Int("mixes", 0, "override number of MIX workloads")
		seed     = flag.Uint64("seed", 0, "override simulation seed")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "max concurrent simulations (1 = serial; output is identical either way)")
		verbose  = flag.Bool("v", false, "log every simulation as it completes")
		resume   = flag.String("resume", "", "directory of an on-disk result store; completed units are restored instead of re-simulated")
		check    = flag.Bool("check", false, "run engine invariant checks each epoch and verify quiescence after every simulation")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("Experiments (one per paper table/figure):")
		for _, e := range exp.All() {
			fmt.Printf("  %-6s %-9s %s\n", e.ID, e.Artifact, e.Title)
			fmt.Printf("         %s\n", e.About)
		}
		if *run == "" && !*list {
			fmt.Println("\nrun one with: bearbench -run <id>   (or -run all)")
		}
		return
	}

	p := exp.Default()
	if *quick {
		p = exp.Quick()
	}
	if *scale > 0 {
		p.Scale = *scale
	}
	if *warm > 0 {
		p.Warm = *warm
	}
	if *meas > 0 {
		p.Meas = *meas
	}
	if *mixes > 0 {
		p.Mixes = *mixes
	}
	if *seed > 0 {
		p.Seed = *seed
	}
	p.Watchdog.Check = *check

	runner := exp.NewRunner(p)
	if *parallel > 0 {
		runner.Parallel = *parallel
	}
	if *verbose {
		runner.Log = os.Stderr
	}
	if *resume != "" {
		store, err := exp.OpenStore(*resume, p.Fingerprint(buildFingerprint()))
		if err != nil {
			fmt.Fprintln(os.Stderr, "bearbench:", err)
			os.Exit(1)
		}
		runner.Store = store
	}

	var todo []exp.Experiment
	if *run == "all" {
		todo = exp.All()
	} else {
		e, err := exp.ByID(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		todo = []exp.Experiment{e}
	}

	// Experiments run to completion even when one fails: a failed
	// experiment is recorded, the rest still regenerate their artifacts,
	// and the run exits non-zero with a failure summary.
	var failedExps []string
	for _, e := range todo {
		start := time.Now()
		fmt.Printf("\n### %s — %s\n### %s\n", e.Artifact, e.Title, e.About)
		if err := e.Run(p, os.Stdout, runner); err != nil {
			fmt.Fprintf(os.Stderr, "bearbench: %s: %v\n", e.ID, err)
			failedExps = append(failedExps, e.ID)
			continue
		}
		fmt.Printf("\n[%s done in %v, %d simulations so far]\n", e.ID, time.Since(start).Round(time.Millisecond), runner.Count())
	}
	if n := runner.Restored(); n > 0 {
		fmt.Fprintf(os.Stderr, "bearbench: %d result(s) restored from %s\n", n, *resume)
	}
	runner.WriteFailureTable(os.Stderr)
	if len(failedExps) > 0 {
		fmt.Fprintf(os.Stderr, "bearbench: %d experiment(s) failed: %s\n", len(failedExps), strings.Join(failedExps, ", "))
		os.Exit(1)
	}
}

// buildFingerprint identifies the simulator build for the result store:
// results cached by a different code version must not be trusted. Binaries
// built inside the git checkout carry the VCS revision; anything else
// (e.g. `go run` of a modified tree without VCS stamping) degrades to a
// shared "dev" fingerprint.
func buildFingerprint() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev, modified string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				modified = s.Value
			}
		}
		if rev != "" {
			if modified == "true" {
				return rev + "+dirty"
			}
			return rev
		}
	}
	return "dev"
}
