// Command beartrace records synthetic benchmark traces to disk and
// inspects trace files. Recorded traces replay through bearsim's -trace
// flag, and external traces converted to the same format can drive the
// simulator in place of the built-in generators.
//
// Usage:
//
//	beartrace record -workload mcf -ops 1000000 -scale 64 -out traces/
//	beartrace info traces/mcf.0.trc
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"bear/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "info":
		info(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: beartrace record|info [flags]")
	os.Exit(2)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	workload := fs.String("workload", "mcf", "benchmark to record")
	ops := fs.Uint64("ops", 1_000_000, "memory operations per core")
	scale := fs.Int("scale", 64, "capacity divisor (footprint scaling)")
	cores := fs.Int("cores", 8, "number of per-core traces")
	seed := fs.Uint64("seed", 1, "generator seed")
	out := fs.String("out", ".", "output directory")
	fs.Parse(args)

	b, err := trace.ByName(*workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, "beartrace:", err)
		os.Exit(1)
	}
	for c := 0; c < *cores; c++ {
		gen := trace.NewGen(b, c, *scale, *seed)
		path := filepath.Join(*out, fmt.Sprintf("%s.%d.trc", *workload, c))
		if err := trace.SaveTraceFile(path, gen, *ops); err != nil {
			fmt.Fprintln(os.Stderr, "beartrace:", err)
			os.Exit(1)
		}
		st, _ := os.Stat(path)
		fmt.Printf("wrote %s (%d ops, %.1f MB)\n", path, *ops, float64(st.Size())/(1<<20))
	}
}

func info(args []string) {
	if len(args) == 0 {
		usage()
	}
	for _, path := range args {
		ft, err := trace.LoadTraceFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "beartrace:", err)
			os.Exit(1)
		}
		var op trace.Op
		var instr, stores uint64
		lines := map[uint64]struct{}{}
		n := ft.Ops()
		for i := 0; i < n; i++ {
			ft.Next(&op)
			instr += uint64(op.NonMem) + 1
			if op.Store {
				stores++
			}
			lines[op.Line] = struct{}{}
		}
		fmt.Printf("%s:\n", path)
		fmt.Printf("  ops            %d\n", n)
		fmt.Printf("  instructions   %d\n", instr)
		fmt.Printf("  distinct lines %d (%.1f MB footprint)\n",
			len(lines), float64(len(lines))*64/(1<<20))
		fmt.Printf("  store fraction %.1f%%\n", 100*float64(stores)/float64(n))
		fmt.Printf("  APKI           %.0f\n", 1000*float64(n)/float64(instr))
	}
}
