# Standard targets; `make ci` is what a PR must pass.

GO ?= go

.PHONY: all build test race vet bench ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector. The parallel experiment
# Runner is exercised by internal/exp's determinism and singleflight tests,
# so this catches races in the sweep engine, not just in library code.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchtime=1x ./...

ci: vet build race
