# Standard targets; `make ci` is what a PR must pass.

GO ?= go

.PHONY: all build test race vet lint bench bench-smoke bench-snapshot bench-compare profile ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector. The parallel experiment
# Runner is exercised by internal/exp's determinism and singleflight tests,
# so this catches races in the sweep engine, not just in library code.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint runs simlint, the repository's own static analyzer: determinism
# (wall clock / math/rand / os.Getenv / map-order folds / stray goroutines),
# //bear:hotpath alloc-freedom, pool discipline, engine contracts, byte
# attribution, event-time monotonicity and the stats census. See
# ARCHITECTURE.md "Enforced invariants" for the rule catalogue. -cache keys
# the result on a hash of every non-test .go file (.simlint.cache), so a
# clean re-run replays without re-type-checking the module.
lint:
	$(GO) run ./cmd/simlint -cache ./...

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# bench-smoke compiles and runs every benchmark once (no timing fidelity);
# it guards against benchmark bit-rot without slowing CI down.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# bench-snapshot records a timed run into the next free BENCH_<n>.json
# (see README "Performance").
bench-snapshot:
	scripts/bench.sh

# bench-compare diffs the two newest BENCH_<n>.json snapshots (ns/instr and
# allocs/instr per benchmark); it exits non-zero on a >5% ns/instr
# regression.
bench-compare:
	scripts/bench_compare.sh

# profile captures a CPU profile of one full simulation run (default
# Alloy/mcf; override with DESIGN=/WORKLOAD=) and renders the top-20 hottest
# functions into profiles/cpu_<design>_<workload>.txt.
profile:
	scripts/profile.sh

ci: vet lint build race bench-smoke
