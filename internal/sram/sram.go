// Package sram models on-chip SRAM caches: set-associative, true-LRU,
// write-back/write-allocate, with a per-line auxiliary byte used by the
// hierarchy for architectural state such as the BEAR DCP bit. Unlike the
// DRAM cache, SRAM caches have dedicated ports, so this model is purely
// functional; lookup latency is charged by the hierarchy.
//
// The line state is stored struct-of-arrays: parallel tags/meta/aux/lru
// slabs instead of a []Line array-of-structs. Set scans — the per-access
// inner loop of every simulated cache level — become branch-light linear
// sweeps over contiguous uint64 tag words: invalid ways hold a sentinel tag
// that can never match a real line address, so the match loop tests one
// word per way and touches meta/aux/lru only on the way it selects.
//
// On top of the layout, a hint table keyed by the address's low set bits
// records the slab index that last hit or filled there. Accesses check the
// hinted tag word before the sweep, so the common repeat-hit case (an L1
// hit streaming over the same few lines) touches exactly one tag word, and
// the probe is small enough to inline into every access path. The hint is
// purely an accelerator: it is verified by tag comparison before use — a
// line address can only ever match in the one set it maps to, so a hint
// aliased by another set (non-power-of-two geometries share low-bit keys)
// or gone stale merely falls through to the full sweep. It can never
// change which way an operation selects.
//
// The same structure also backs the Tags-In-SRAM and Sector-Cache tag
// stores and the Loh-Hill MissMap in internal/dramcache.
package sram

import (
	"math/bits"

	"bear/internal/fault"
)

// Line is one cache line's metadata. Addr is the full line address (byte
// address >> 6) so evictions can be routed without tag reconstruction.
type Line struct {
	Addr  uint64
	Valid bool
	Dirty bool
	Aux   uint8
}

// Eviction describes a line displaced by a fill.
type Eviction struct {
	Addr  uint64
	Valid bool
	Dirty bool
	Aux   uint8
}

// tagInvalid marks an empty way in the tags slab. Line addresses are byte
// addresses >> 6, so the all-ones word can never collide with a real line;
// Fill and Install enforce that.
const tagInvalid = ^uint64(0)

// meta slab bits.
const (
	metaValid = 1 << 0
	metaDirty = 1 << 1
)

// Cache is a set-associative cache keyed by line address. The zero value is
// not usable; call New.
type Cache struct {
	sets     uint64
	setMask  uint64 // sets-1 when sets is a power of two
	pow2     bool
	ways     int
	waysU    uint64   // ways as uint64: saves a conversion inside find's budget
	tags     []uint64 // sets*ways, row-major; tagInvalid when the way is empty
	meta     []uint8  // valid/dirty bits
	aux      []uint8  // caller-owned auxiliary byte
	lru      []uint32 // per-line recency stamps
	hint     []uint32 // slab index of the last hit or fill, keyed by addr&hintMask
	hintMask uint64   // low set bits: sets-1 rounded down to a power of two, minus aliasing
	clock    uint32
}

// New creates a cache with the given geometry. sets must be > 0 and ways in
// [1, 64].
func New(sets uint64, ways int) *Cache {
	if sets == 0 || ways <= 0 || ways > 64 {
		panic(fault.Invariantf("sram", "invalid geometry sets=%d ways=%d", sets, ways))
	}
	n := sets * uint64(ways)
	c := &Cache{
		sets:    sets,
		setMask: sets - 1,
		pow2:    sets&(sets-1) == 0,
		ways:    ways,
		waysU:   uint64(ways),
		tags:    make([]uint64, n),
		meta:    make([]uint8, n),
		aux:     make([]uint8, n),
		lru:     make([]uint32, n),
	}
	c.hintMask = 1<<(bits.Len64(sets)-1) - 1
	c.hint = make([]uint32, c.hintMask+1)
	for i := range c.tags {
		c.tags[i] = tagInvalid
	}
	return c
}

// Sets returns the number of sets.
func (c *Cache) Sets() uint64 { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// SetIndex returns the set an address maps to. Power-of-two set counts (the
// overwhelmingly common geometry) index with a mask instead of a 64-bit
// modulo — base sits inside every set sweep.
//
//bear:hotpath
func (c *Cache) SetIndex(addr uint64) uint64 {
	if c.pow2 {
		return addr & c.setMask
	}
	return addr % c.sets
}

func (c *Cache) base(addr uint64) uint64 { return c.SetIndex(addr) * uint64(c.ways) }

// find returns the slab index of addr's way, or (0, false). The hint table
// is probed first: a repeat hit to the hinted slab index touches one tag
// word, and find is small enough to inline into every access path. find
// does not train the hint itself (the store would burst the inlining
// budget); hit paths that learned a new location store it back.
//
//bear:hotpath
func (c *Cache) find(addr uint64) (uint64, bool) {
	if h := uint64(c.hint[addr&c.hintMask]); c.tags[h] == addr {
		return h, true
	}
	set := addr & c.setMask
	if !c.pow2 {
		set = addr % c.sets
	}
	// The sweep is store-free — hit paths train the hint themselves —
	// which keeps find inside the inlining budget. One bounds check for
	// the subslice; the range sweep is check-free.
	i := set * c.waysU
	tags := c.tags[i : i+c.waysU]
	for w := range tags {
		if tags[w] == addr {
			return i + uint64(w), true
		}
	}
	return 0, false
}

func (c *Cache) touch(i uint64) {
	if c.clock == ^uint32(0) {
		c.rescale()
	}
	c.clock++
	c.lru[i] = c.clock
}

// lineAt materialises the AoS view of slab index i (valid ways only).
func (c *Cache) lineAt(i uint64) Line {
	return Line{Addr: c.tags[i], Valid: true, Dirty: c.meta[i]&metaDirty != 0, Aux: c.aux[i]}
}

// sortWays insertion-sorts the ways of the set at base by stamp (ways is
// small) and returns them in ascending recency order.
func (c *Cache) sortWays(base uint64) (order [64]int) {
	n := c.ways
	for w := 0; w < n; w++ {
		order[w] = w
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && c.lru[base+uint64(order[j])] < c.lru[base+uint64(order[j-1])]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}

// rescale compacts recency stamps when the clock is about to overflow,
// renumbering each set's ways by their relative order so LRU decisions are
// unchanged.
func (c *Cache) rescale() {
	for s := uint64(0); s < c.sets; s++ {
		base := s * uint64(c.ways)
		order := c.sortWays(base)
		for rank := 0; rank < c.ways; rank++ {
			c.lru[base+uint64(order[rank])] = uint32(rank)
		}
	}
	c.clock = uint32(c.ways)
}

// Lookup checks for addr without changing replacement state. It returns the
// line's metadata and whether it was present. A hit still retrains the way
// hint — the hint is not replacement state, and probe-only flows (tag-store
// presence checks) are exactly where a trained hint pays for itself.
//
//bear:hotpath
func (c *Cache) Lookup(addr uint64) (Line, bool) {
	if i, ok := c.find(addr); ok {
		c.hint[addr&c.hintMask] = uint32(i)
		return c.lineAt(i), true
	}
	return Line{}, false
}

// Access performs a demand access: on hit it refreshes LRU state, marks the
// line dirty if write is set, and returns true.
//
//bear:hotpath
func (c *Cache) Access(addr uint64, write bool) bool {
	i, ok := c.find(addr)
	if !ok {
		return false
	}
	c.hint[addr&c.hintMask] = uint32(i)
	if write {
		c.meta[i] |= metaDirty
	}
	c.touch(i)
	return true
}

// AccessAux is Access plus the line's aux byte: one set sweep where the
// hierarchy would otherwise pay a Lookup scan followed by an Access scan.
//
//bear:hotpath
func (c *Cache) AccessAux(addr uint64, write bool) (uint8, bool) {
	i, ok := c.find(addr)
	if !ok {
		return 0, false
	}
	c.hint[addr&c.hintMask] = uint32(i)
	if write {
		c.meta[i] |= metaDirty
	}
	c.touch(i)
	return c.aux[i], true
}

// FillLRU installs addr like Fill but places it at the LRU position, so it
// is the set's next victim unless promoted by a hit (bimodal/LIP insertion
// policies).
//
//bear:hotpath
func (c *Cache) FillLRU(addr uint64, dirty bool, aux uint8) Eviction {
	ev := c.Fill(addr, dirty, aux)
	base := c.base(addr)
	// Demote the just-filled line below every other stamp in its set.
	var minStamp uint32 = ^uint32(0)
	var idx uint64
	for w := 0; w < c.ways; w++ {
		i := base + uint64(w)
		if c.tags[i] == addr {
			idx = i
			continue
		}
		if c.meta[i]&metaValid != 0 && c.lru[i] < minStamp {
			minStamp = c.lru[i]
		}
	}
	switch {
	case minStamp == ^uint32(0):
		// No other valid line in the set.
		c.lru[idx] = 0
	case minStamp == 0:
		// Stamp space below the current minimum is exhausted (a previous
		// LRU-insert already sits at 0). Renumber the set to open a slot:
		// every other way keeps its relative order at ranks 1..n-1 and the
		// inserted line takes 0, preserving strict LRU ordering. Clamping to
		// 0 instead would tie the two lines and let the victim scan resolve
		// by way index, evicting the older insert first.
		order := c.sortWays(base)
		rank := uint32(1)
		for w := 0; w < c.ways; w++ {
			i := base + uint64(order[w])
			if i == idx {
				continue
			}
			c.lru[i] = rank
			rank++
		}
		c.lru[idx] = 0
	default:
		c.lru[idx] = minStamp - 1
	}
	return ev
}

// Fill installs addr (which must not already be present), returning the
// eviction it displaced. The filled line is made MRU.
//
//bear:hotpath
func (c *Cache) Fill(addr uint64, dirty bool, aux uint8) Eviction {
	if addr == tagInvalid {
		panic(fault.Invariantf("sram", "fill of the sentinel line address"))
	}
	base := c.base(addr)
	victim := base
	var victimStamp uint32 = ^uint32(0)
	// Sweep tags and lru only: a way is invalid iff its tag is the sentinel
	// (New/Invalidate maintain that), so the meta slab stays untouched until
	// the victim is chosen.
	tags := c.tags[base : base+uint64(c.ways)]
	lru := c.lru[base : base+uint64(c.ways)]
	for w, t := range tags {
		if t == tagInvalid {
			victim = base + uint64(w)
			victimStamp = 0
			break
		}
		if t == addr {
			panic(fault.Invariantf("sram", "fill of already-present line %#x", addr))
		}
		if lru[w] < victimStamp {
			victim, victimStamp = base+uint64(w), lru[w]
		}
	}
	return c.install(victim, addr, dirty, aux)
}

// FillIfAbsent installs addr unless it is already present, in one set
// sweep — where callers would otherwise pay a Lookup scan to guard a Fill
// scan. Present lines are left untouched (no LRU update); the bool reports
// whether a fill happened. The victim choice is identical to Fill's: the
// first invalid way, else the minimum stamp in way order.
//
//bear:hotpath
func (c *Cache) FillIfAbsent(addr uint64, dirty bool, aux uint8) (Eviction, bool) {
	if addr == tagInvalid {
		panic(fault.Invariantf("sram", "fill of the sentinel line address"))
	}
	base := c.base(addr)
	if c.tags[c.hint[addr&c.hintMask]] == addr {
		return Eviction{}, false
	}
	victim := base
	var victimStamp uint32 = ^uint32(0)
	haveInvalid := false
	tags := c.tags[base : base+uint64(c.ways)]
	lru := c.lru[base : base+uint64(c.ways)]
	for w, t := range tags {
		if t == addr {
			c.hint[addr&c.hintMask] = uint32(base + uint64(w))
			return Eviction{}, false
		}
		if haveInvalid {
			continue
		}
		if t == tagInvalid {
			victim, victimStamp, haveInvalid = base+uint64(w), 0, true
			continue
		}
		if lru[w] < victimStamp {
			victim, victimStamp = base+uint64(w), lru[w]
		}
	}
	return c.install(victim, addr, dirty, aux), true
}

// FillOrDirty absorbs a dirty victim from an upper level: if addr is present
// it is marked dirty (replacement state untouched, matching SetDirty);
// otherwise it is installed dirty. One sweep where callers would pay
// SetDirty followed by Fill.
//
//bear:hotpath
func (c *Cache) FillOrDirty(addr uint64, aux uint8) (Eviction, bool) {
	if addr == tagInvalid {
		panic(fault.Invariantf("sram", "fill of the sentinel line address"))
	}
	base := c.base(addr)
	if h := uint64(c.hint[addr&c.hintMask]); c.tags[h] == addr {
		c.meta[h] |= metaDirty
		return Eviction{}, false
	}
	victim := base
	var victimStamp uint32 = ^uint32(0)
	haveInvalid := false
	tags := c.tags[base : base+uint64(c.ways)]
	lru := c.lru[base : base+uint64(c.ways)]
	for w, t := range tags {
		if t == addr {
			c.hint[addr&c.hintMask] = uint32(base + uint64(w))
			c.meta[base+uint64(w)] |= metaDirty
			return Eviction{}, false
		}
		if haveInvalid {
			continue
		}
		if t == tagInvalid {
			victim, victimStamp, haveInvalid = base+uint64(w), 0, true
			continue
		}
		if lru[w] < victimStamp {
			victim, victimStamp = base+uint64(w), lru[w]
		}
	}
	return c.install(victim, addr, true, aux), true
}

// install evicts slab index victim and installs addr there, made MRU and
// hinted (the filled line is the set's most likely next hit).
func (c *Cache) install(victim, addr uint64, dirty bool, aux uint8) Eviction {
	var ev Eviction
	if c.tags[victim] != tagInvalid {
		ev = Eviction{Addr: c.tags[victim], Valid: true, Dirty: c.meta[victim]&metaDirty != 0, Aux: c.aux[victim]}
	}
	c.hint[addr&c.hintMask] = uint32(victim)
	c.tags[victim] = addr
	m := uint8(metaValid)
	if dirty {
		m |= metaDirty
	}
	c.meta[victim] = m
	c.aux[victim] = aux
	c.touch(victim)
	return ev
}

// Invalidate removes addr if present, returning its metadata (e.g. so a
// dirty back-invalidated line can be written back).
func (c *Cache) Invalidate(addr uint64) (Line, bool) {
	i, ok := c.find(addr)
	if !ok {
		return Line{}, false
	}
	ln := c.lineAt(i)
	c.tags[i] = tagInvalid
	c.meta[i] = 0
	c.aux[i] = 0
	c.lru[i] = 0
	return ln, true
}

// SetAux stores aux metadata on addr's line if present.
//
//bear:hotpath
func (c *Cache) SetAux(addr uint64, aux uint8) bool {
	i, ok := c.find(addr)
	if !ok {
		return false
	}
	c.aux[i] = aux
	return true
}

// SetDirty marks addr's line dirty if present.
//
//bear:hotpath
func (c *Cache) SetDirty(addr uint64) bool {
	i, ok := c.find(addr)
	if !ok {
		return false
	}
	c.hint[addr&c.hintMask] = uint32(i)
	c.meta[i] |= metaDirty
	return true
}

// WayOf returns the way within its set where addr resides, used by
// tags-in-SRAM designs to locate the corresponding data-store frame.
//
//bear:hotpath
func (c *Cache) WayOf(addr uint64) (int, bool) {
	i, ok := c.find(addr)
	if !ok {
		return 0, false
	}
	return int(i - c.base(addr)), true
}

// VictimWay returns the way the next fill into addr's set would use.
//
//bear:hotpath
func (c *Cache) VictimWay(addr uint64) int {
	base := c.base(addr)
	victim := 0
	var victimStamp uint32 = ^uint32(0)
	for w := 0; w < c.ways; w++ {
		i := base + uint64(w)
		if c.tags[i] == tagInvalid {
			return w
		}
		if c.lru[i] < victimStamp {
			victim, victimStamp = w, c.lru[i]
		}
	}
	return victim
}

// Victim returns the line that the next fill into addr's set would displace,
// without modifying any state.
func (c *Cache) Victim(addr uint64) Eviction {
	base := c.base(addr)
	victim := base
	var victimStamp uint32 = ^uint32(0)
	for w := 0; w < c.ways; w++ {
		i := base + uint64(w)
		if c.tags[i] == tagInvalid {
			return Eviction{}
		}
		if c.lru[i] < victimStamp {
			victim, victimStamp = i, c.lru[i]
		}
	}
	return Eviction{Addr: c.tags[victim], Valid: true, Dirty: c.meta[victim]&metaDirty != 0, Aux: c.aux[victim]}
}

// Range calls fn for every valid line; fn returning false stops iteration.
func (c *Cache) Range(fn func(Line) bool) {
	for i := range c.tags {
		if c.meta[i]&metaValid != 0 {
			if !fn(c.lineAt(uint64(i))) {
				return
			}
		}
	}
}

// Count returns the number of valid lines (for tests).
func (c *Cache) Count() int {
	n := 0
	for i := range c.meta {
		if c.meta[i]&metaValid != 0 {
			n++
		}
	}
	return n
}
