// Package sram models on-chip SRAM caches: set-associative, true-LRU,
// write-back/write-allocate, with a per-line auxiliary byte used by the
// hierarchy for architectural state such as the BEAR DCP bit. Unlike the
// DRAM cache, SRAM caches have dedicated ports, so this model is purely
// functional; lookup latency is charged by the hierarchy.
//
// The same structure also backs the Tags-In-SRAM and Sector-Cache tag
// stores and the Loh-Hill MissMap in internal/dramcache.
package sram

import "bear/internal/fault"

// Line is one cache line's metadata. Addr is the full line address (byte
// address >> 6) so evictions can be routed without tag reconstruction.
type Line struct {
	Addr  uint64
	Valid bool
	Dirty bool
	Aux   uint8
}

// Eviction describes a line displaced by a fill.
type Eviction struct {
	Addr  uint64
	Valid bool
	Dirty bool
	Aux   uint8
}

// Cache is a set-associative cache keyed by line address. The zero value is
// not usable; call New.
type Cache struct {
	sets  uint64
	ways  int
	lines []Line   // sets*ways, row-major
	lru   []uint32 // per-line recency stamps
	clock uint32
}

// New creates a cache with the given geometry. sets must be > 0 and ways in
// [1, 64].
func New(sets uint64, ways int) *Cache {
	if sets == 0 || ways <= 0 || ways > 64 {
		panic(fault.Invariantf("sram", "invalid geometry sets=%d ways=%d", sets, ways))
	}
	return &Cache{
		sets:  sets,
		ways:  ways,
		lines: make([]Line, sets*uint64(ways)),
		lru:   make([]uint32, sets*uint64(ways)),
	}
}

// Sets returns the number of sets.
func (c *Cache) Sets() uint64 { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// SetIndex returns the set an address maps to.
func (c *Cache) SetIndex(addr uint64) uint64 { return addr % c.sets }

func (c *Cache) base(addr uint64) uint64 { return (addr % c.sets) * uint64(c.ways) }

func (c *Cache) touch(i uint64) {
	if c.clock == ^uint32(0) {
		c.rescale()
	}
	c.clock++
	c.lru[i] = c.clock
}

// sortWays insertion-sorts the ways of the set at base by stamp (ways is
// small) and returns them in ascending recency order.
func (c *Cache) sortWays(base uint64) (order [64]int) {
	n := c.ways
	for w := 0; w < n; w++ {
		order[w] = w
	}
	for i := 1; i < n; i++ {
		for j := i; j > 0 && c.lru[base+uint64(order[j])] < c.lru[base+uint64(order[j-1])]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}

// rescale compacts recency stamps when the clock is about to overflow,
// renumbering each set's ways by their relative order so LRU decisions are
// unchanged.
func (c *Cache) rescale() {
	for s := uint64(0); s < c.sets; s++ {
		base := s * uint64(c.ways)
		order := c.sortWays(base)
		for rank := 0; rank < c.ways; rank++ {
			c.lru[base+uint64(order[rank])] = uint32(rank)
		}
	}
	c.clock = uint32(c.ways)
}

// Lookup checks for addr without changing replacement state. It returns the
// line's metadata and whether it was present.
//
//bear:hotpath
func (c *Cache) Lookup(addr uint64) (Line, bool) {
	base := c.base(addr)
	for w := 0; w < c.ways; w++ {
		ln := c.lines[base+uint64(w)]
		if ln.Valid && ln.Addr == addr {
			return ln, true
		}
	}
	return Line{}, false
}

// Access performs a demand access: on hit it refreshes LRU state, marks the
// line dirty if write is set, and returns true.
//
//bear:hotpath
func (c *Cache) Access(addr uint64, write bool) bool {
	base := c.base(addr)
	for w := 0; w < c.ways; w++ {
		i := base + uint64(w)
		if c.lines[i].Valid && c.lines[i].Addr == addr {
			if write {
				c.lines[i].Dirty = true
			}
			c.touch(i)
			return true
		}
	}
	return false
}

// FillLRU installs addr like Fill but places it at the LRU position, so it
// is the set's next victim unless promoted by a hit (bimodal/LIP insertion
// policies).
//
//bear:hotpath
func (c *Cache) FillLRU(addr uint64, dirty bool, aux uint8) Eviction {
	ev := c.Fill(addr, dirty, aux)
	base := c.base(addr)
	// Demote the just-filled line below every other stamp in its set.
	var minStamp uint32 = ^uint32(0)
	var idx uint64
	for w := 0; w < c.ways; w++ {
		i := base + uint64(w)
		if c.lines[i].Addr == addr && c.lines[i].Valid {
			idx = i
			continue
		}
		if c.lines[i].Valid && c.lru[i] < minStamp {
			minStamp = c.lru[i]
		}
	}
	switch {
	case minStamp == ^uint32(0):
		// No other valid line in the set.
		c.lru[idx] = 0
	case minStamp == 0:
		// Stamp space below the current minimum is exhausted (a previous
		// LRU-insert already sits at 0). Renumber the set to open a slot:
		// every other way keeps its relative order at ranks 1..n-1 and the
		// inserted line takes 0, preserving strict LRU ordering. Clamping to
		// 0 instead would tie the two lines and let the victim scan resolve
		// by way index, evicting the older insert first.
		order := c.sortWays(base)
		rank := uint32(1)
		for w := 0; w < c.ways; w++ {
			i := base + uint64(order[w])
			if i == idx {
				continue
			}
			c.lru[i] = rank
			rank++
		}
		c.lru[idx] = 0
	default:
		c.lru[idx] = minStamp - 1
	}
	return ev
}

// Fill installs addr (which must not already be present), returning the
// eviction it displaced. The filled line is made MRU.
//
//bear:hotpath
func (c *Cache) Fill(addr uint64, dirty bool, aux uint8) Eviction {
	base := c.base(addr)
	victim := base
	var victimStamp uint32 = ^uint32(0)
	for w := 0; w < c.ways; w++ {
		i := base + uint64(w)
		if !c.lines[i].Valid {
			victim = i
			victimStamp = 0
			break
		}
		if c.lines[i].Addr == addr {
			panic(fault.Invariantf("sram", "fill of already-present line %#x", addr))
		}
		if c.lru[i] < victimStamp {
			victim, victimStamp = i, c.lru[i]
		}
	}
	old := c.lines[victim]
	c.lines[victim] = Line{Addr: addr, Valid: true, Dirty: dirty, Aux: aux}
	c.touch(victim)
	return Eviction{Addr: old.Addr, Valid: old.Valid, Dirty: old.Dirty, Aux: old.Aux}
}

// Invalidate removes addr if present, returning its metadata (e.g. so a
// dirty back-invalidated line can be written back).
func (c *Cache) Invalidate(addr uint64) (Line, bool) {
	base := c.base(addr)
	for w := 0; w < c.ways; w++ {
		i := base + uint64(w)
		if c.lines[i].Valid && c.lines[i].Addr == addr {
			ln := c.lines[i]
			c.lines[i] = Line{}
			c.lru[i] = 0
			return ln, true
		}
	}
	return Line{}, false
}

// SetAux stores aux metadata on addr's line if present.
func (c *Cache) SetAux(addr uint64, aux uint8) bool {
	base := c.base(addr)
	for w := 0; w < c.ways; w++ {
		i := base + uint64(w)
		if c.lines[i].Valid && c.lines[i].Addr == addr {
			c.lines[i].Aux = aux
			return true
		}
	}
	return false
}

// SetDirty marks addr's line dirty if present.
func (c *Cache) SetDirty(addr uint64) bool {
	base := c.base(addr)
	for w := 0; w < c.ways; w++ {
		i := base + uint64(w)
		if c.lines[i].Valid && c.lines[i].Addr == addr {
			c.lines[i].Dirty = true
			return true
		}
	}
	return false
}

// WayOf returns the way within its set where addr resides, used by
// tags-in-SRAM designs to locate the corresponding data-store frame.
func (c *Cache) WayOf(addr uint64) (int, bool) {
	base := c.base(addr)
	for w := 0; w < c.ways; w++ {
		i := base + uint64(w)
		if c.lines[i].Valid && c.lines[i].Addr == addr {
			return w, true
		}
	}
	return 0, false
}

// VictimWay returns the way the next fill into addr's set would use.
func (c *Cache) VictimWay(addr uint64) int {
	base := c.base(addr)
	victim := 0
	var victimStamp uint32 = ^uint32(0)
	for w := 0; w < c.ways; w++ {
		i := base + uint64(w)
		if !c.lines[i].Valid {
			return w
		}
		if c.lru[i] < victimStamp {
			victim, victimStamp = w, c.lru[i]
		}
	}
	return victim
}

// Victim returns the line that the next fill into addr's set would displace,
// without modifying any state.
func (c *Cache) Victim(addr uint64) Eviction {
	base := c.base(addr)
	victim := base
	var victimStamp uint32 = ^uint32(0)
	for w := 0; w < c.ways; w++ {
		i := base + uint64(w)
		if !c.lines[i].Valid {
			return Eviction{}
		}
		if c.lru[i] < victimStamp {
			victim, victimStamp = i, c.lru[i]
		}
	}
	old := c.lines[victim]
	return Eviction{Addr: old.Addr, Valid: true, Dirty: old.Dirty, Aux: old.Aux}
}

// Range calls fn for every valid line; fn returning false stops iteration.
func (c *Cache) Range(fn func(Line) bool) {
	for i := range c.lines {
		if c.lines[i].Valid {
			if !fn(c.lines[i]) {
				return
			}
		}
	}
}

// Count returns the number of valid lines (for tests).
func (c *Cache) Count() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].Valid {
			n++
		}
	}
	return n
}
