package sram

import (
	"testing"
	"testing/quick"
)

func TestFillLookup(t *testing.T) {
	c := New(4, 2)
	if _, ok := c.Lookup(5); ok {
		t.Fatal("empty cache reported a hit")
	}
	ev := c.Fill(5, false, 7)
	if ev.Valid {
		t.Fatal("fill into empty set evicted something")
	}
	ln, ok := c.Lookup(5)
	if !ok || ln.Addr != 5 || ln.Dirty || ln.Aux != 7 {
		t.Fatalf("lookup after fill = %+v, %v", ln, ok)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(1, 2)
	c.Fill(10, false, 0)
	c.Fill(20, false, 0)
	// Touch 10 so 20 becomes LRU.
	if !c.Access(10, false) {
		t.Fatal("lost line 10")
	}
	ev := c.Fill(30, false, 0)
	if !ev.Valid || ev.Addr != 20 {
		t.Fatalf("evicted %+v, want line 20", ev)
	}
	if _, ok := c.Lookup(10); !ok {
		t.Fatal("MRU line 10 was evicted")
	}
}

func TestDirtyPropagation(t *testing.T) {
	c := New(1, 1)
	c.Fill(1, false, 0)
	if !c.Access(1, true) {
		t.Fatal("access miss")
	}
	ev := c.Fill(2, false, 0)
	if !ev.Valid || !ev.Dirty || ev.Addr != 1 {
		t.Fatalf("dirty eviction = %+v", ev)
	}
}

func TestFillDirty(t *testing.T) {
	c := New(2, 1)
	c.Fill(4, true, 0)
	ln, _ := c.Lookup(4)
	if !ln.Dirty {
		t.Fatal("fill with dirty=true lost the dirty bit")
	}
}

func TestSetIndexMapping(t *testing.T) {
	c := New(8, 1)
	// Addresses 8 apart collide; others don't.
	c.Fill(3, false, 0)
	c.Fill(11, false, 0) // same set, 1 way -> evicts 3
	if _, ok := c.Lookup(3); ok {
		t.Fatal("conflicting line survived in a direct-mapped set")
	}
	if _, ok := c.Lookup(11); !ok {
		t.Fatal("newly filled line missing")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(4, 2)
	c.Fill(9, false, 0)
	c.Access(9, true)
	ln, ok := c.Invalidate(9)
	if !ok || !ln.Dirty || ln.Addr != 9 {
		t.Fatalf("invalidate = %+v, %v", ln, ok)
	}
	if _, ok := c.Lookup(9); ok {
		t.Fatal("line still present after invalidate")
	}
	if _, ok := c.Invalidate(9); ok {
		t.Fatal("double invalidate reported a line")
	}
}

func TestAux(t *testing.T) {
	c := New(4, 2)
	c.Fill(6, false, 0)
	if !c.SetAux(6, 3) {
		t.Fatal("SetAux missed present line")
	}
	ln, _ := c.Lookup(6)
	if ln.Aux != 3 {
		t.Fatalf("aux = %d, want 3", ln.Aux)
	}
	if c.SetAux(999, 1) {
		t.Fatal("SetAux on absent line returned true")
	}
}

func TestSetDirty(t *testing.T) {
	c := New(4, 2)
	c.Fill(6, false, 0)
	if !c.SetDirty(6) {
		t.Fatal("SetDirty missed present line")
	}
	ln, _ := c.Lookup(6)
	if !ln.Dirty {
		t.Fatal("dirty bit not set")
	}
	if c.SetDirty(999) {
		t.Fatal("SetDirty on absent line returned true")
	}
}

func TestWayOfAndVictimWay(t *testing.T) {
	c := New(2, 4)
	addrs := []uint64{0, 2, 4, 6} // all set 0
	for _, a := range addrs {
		// VictimWay must predict where Fill lands.
		want := c.VictimWay(a)
		c.Fill(a, false, 0)
		got, ok := c.WayOf(a)
		if !ok || got != want {
			t.Fatalf("fill of %d landed in way %d, VictimWay predicted %d", a, got, want)
		}
	}
	// Set full: victim is LRU (addr 0), and VictimWay must match Fill.
	c.Access(0, false) // make 0 MRU; LRU is now 2
	want := c.VictimWay(8)
	ev := c.Fill(8, false, 0)
	got, _ := c.WayOf(8)
	if got != want {
		t.Fatalf("full-set fill landed in way %d, VictimWay said %d", got, want)
	}
	if ev.Addr != 2 {
		t.Fatalf("evicted %d, want LRU line 2", ev.Addr)
	}
}

func TestVictimPreview(t *testing.T) {
	c := New(1, 2)
	if v := c.Victim(0); v.Valid {
		t.Fatal("victim in empty set should be invalid")
	}
	c.Fill(1, false, 0)
	c.Fill(2, true, 0)
	c.Access(1, false)
	v := c.Victim(3)
	if !v.Valid || v.Addr != 2 || !v.Dirty {
		t.Fatalf("victim preview = %+v, want dirty line 2", v)
	}
	// Preview must not modify state.
	if _, ok := c.Lookup(2); !ok {
		t.Fatal("Victim() modified the cache")
	}
}

func TestDoubleFillPanics(t *testing.T) {
	c := New(2, 2)
	c.Fill(4, false, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate fill did not panic")
		}
	}()
	c.Fill(4, false, 0)
}

func TestRangeAndCount(t *testing.T) {
	c := New(8, 2)
	for i := uint64(0); i < 10; i++ {
		c.Fill(i, false, 0)
	}
	if c.Count() != 10 {
		t.Fatalf("count = %d", c.Count())
	}
	n := 0
	c.Range(func(Line) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("Range early exit broke: %d", n)
	}
}

func TestRescale(t *testing.T) {
	c := New(1, 2)
	c.Fill(1, false, 0)
	c.Fill(2, false, 0)
	c.clock = ^uint32(0) - 1 // force stamp overflow soon
	c.Access(1, false)       // uses last stamp
	c.Access(2, false)       // triggers rescale
	// Order must survive: 1 older than 2.
	ev := c.Fill(3, false, 0)
	if ev.Addr != 1 {
		t.Fatalf("after rescale evicted %d, want 1", ev.Addr)
	}
}

// TestRescaleWraparound drives the stamp clock to its wraparound point mid-
// scan and asserts that every set's full LRU order — established by touches
// issued both before and after the rescale — is preserved exactly. The
// renumbering must be invisible: eviction order afterwards equals the touch
// order, across all sets, including sets the overflow-triggering touch never
// visited.
func TestRescaleWraparound(t *testing.T) {
	const sets, ways = 4, 8
	c := New(sets, ways)
	// Fill every set; touch order within set s is addr s, s+sets, s+2*sets...
	for w := 0; w < ways; w++ {
		for s := uint64(0); s < sets; s++ {
			c.Fill(s+uint64(w)*sets, false, 0)
		}
	}
	// Establish a distinctive recency order per set: promote odd ways, so
	// LRU order becomes even ways in fill order, then odd ways.
	for w := 1; w < ways; w += 2 {
		for s := uint64(0); s < sets; s++ {
			c.Access(s+uint64(w)*sets, false)
		}
	}
	// Park the clock so the very next touch hits the wraparound guard.
	c.clock = ^uint32(0)
	c.Access(0, false) // triggers rescale, then re-touches line 0 (set 0)
	if c.clock == ^uint32(0) || c.clock < uint32(ways) {
		t.Fatalf("clock = %d after rescale, want compacted stamps", c.clock)
	}
	// Touches after the rescale must compose with the preserved order.
	c.Access(1+2*sets, false) // set 1, way 2 (an even way) becomes MRU
	wantOrder := map[uint64][]uint64{
		0: {2 * sets, 4 * sets, 6 * sets, sets, 3 * sets, 5 * sets, 7 * sets, 0},
		1: {1, 1 + 4*sets, 1 + 6*sets, 1 + sets, 1 + 3*sets, 1 + 5*sets, 1 + 7*sets, 1 + 2*sets},
		2: {2, 2 + 2*sets, 2 + 4*sets, 2 + 6*sets, 2 + sets, 2 + 3*sets, 2 + 5*sets, 2 + 7*sets},
		3: {3, 3 + 2*sets, 3 + 4*sets, 3 + 6*sets, 3 + sets, 3 + 3*sets, 3 + 5*sets, 3 + 7*sets},
	}
	for s := uint64(0); s < sets; s++ {
		for i, want := range wantOrder[s] {
			ev := c.Fill(s+uint64(ways+i)*sets, false, 0)
			if !ev.Valid || ev.Addr != want {
				t.Fatalf("set %d eviction %d: got %#x want %#x", s, i, ev.Addr, want)
			}
		}
	}
}

// Model-based property test: the cache agrees with a reference map +
// recency list under random operations.
func TestModelEquivalence(t *testing.T) {
	type modelSet struct {
		order []uint64 // LRU order, front = LRU
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(func(ops []uint16, seed uint8) bool {
		const sets, ways = 4, 3
		c := New(sets, ways)
		model := make([]modelSet, sets)

		touch := func(m *modelSet, addr uint64) {
			for i, a := range m.order {
				if a == addr {
					m.order = append(append(m.order[:i], m.order[i+1:]...), addr)
					return
				}
			}
		}
		for _, op := range ops {
			addr := uint64(op % 64)
			m := &model[addr%sets]
			present := false
			for _, a := range m.order {
				if a == addr {
					present = true
				}
			}
			if _, ok := c.Lookup(addr); ok != present {
				return false
			}
			if present {
				c.Access(addr, false)
				touch(m, addr)
				continue
			}
			ev := c.Fill(addr, false, 0)
			if len(m.order) == ways {
				want := m.order[0]
				if !ev.Valid || ev.Addr != want {
					return false
				}
				m.order = m.order[1:]
			} else if ev.Valid {
				return false
			}
			m.order = append(m.order, addr)
		}
		return true
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0,0) did not panic")
		}
	}()
	New(0, 0)
}

func TestFillLRU(t *testing.T) {
	c := New(1, 3)
	c.Fill(1, false, 0)
	c.Fill(2, false, 0)
	// LRU-inserted line is the next victim even though it arrived last.
	c.FillLRU(3, false, 0)
	ev := c.Fill(4, false, 0)
	if ev.Addr != 3 {
		t.Fatalf("evicted %d, want the LRU-inserted 3", ev.Addr)
	}
	// A hit promotes an LRU-inserted line like any other.
	c2 := New(1, 2)
	c2.Fill(1, false, 0)
	c2.FillLRU(2, false, 0)
	c2.Access(2, false) // promote
	ev = c2.Fill(3, false, 0)
	if ev.Addr != 1 {
		t.Fatalf("evicted %d, want 1 after promotion of 2", ev.Addr)
	}
}

func TestFillLRUIntoEmptySet(t *testing.T) {
	c := New(1, 2)
	c.FillLRU(7, true, 3)
	ln, ok := c.Lookup(7)
	if !ok || !ln.Dirty || ln.Aux != 3 {
		t.Fatalf("FillLRU into empty set lost metadata: %+v %v", ln, ok)
	}
}

func TestFillLRUStampCollision(t *testing.T) {
	// Two successive LRU-inserts without intervening promotions drive the
	// set's minimum stamp to 0; the second insert must still land strictly
	// below the first (clamping both to 0 would tie them and evict the
	// older insert by way-index accident).
	c := New(1, 4)
	c.Fill(1, false, 0)
	c.Fill(2, false, 0)
	c.FillLRU(3, false, 0) // stamp 0
	c.FillLRU(4, false, 0) // min other stamp is already 0: renumber
	if ev := c.Victim(4); ev.Addr != 4 {
		t.Fatalf("next victim is %d, want the most recent LRU-insert 4", ev.Addr)
	}
	ev := c.Fill(5, false, 0)
	if ev.Addr != 4 {
		t.Fatalf("evicted %d, want 4", ev.Addr)
	}
	// Strict ordering must survive the renumbering for the rest of the set:
	// 3 (older LRU-insert) goes next, then 1 and 2 in fill order.
	for _, want := range []uint64{3, 1, 2} {
		if ev := c.Fill(want+100, false, 0); ev.Addr != want {
			t.Fatalf("evicted %d, want %d", ev.Addr, want)
		}
	}
}

// TestWayHint pins the way-hint contract: the hint is only an accelerator.
// A stale hint may cost a full sweep but can never change which way an
// operation selects or fabricate a hit; Access hits and fills retrain it.
// (With one set, hint entries — slab indices keyed by the address's low
// set bits — coincide with way numbers.)
func TestWayHint(t *testing.T) {
	c := New(1, 4)
	c.Fill(10, false, 0)
	c.Fill(20, false, 0)
	c.Fill(30, false, 0)
	if got := c.hint[0]; got != 2 {
		t.Fatalf("hint after third fill = %d, want 2", got)
	}
	if !c.Access(10, false) {
		t.Fatal("lost line 10")
	}
	if got := c.hint[0]; got != 0 {
		t.Fatalf("hint after re-hit on way 0 = %d, want 0", got)
	}
	// Invalidate the hinted line: the stale hint must neither resurrect it
	// nor misdirect lookups for the set's other lines.
	c.Invalidate(10)
	if _, ok := c.Lookup(10); ok {
		t.Fatal("invalidated line still hits through the hint")
	}
	if !c.Access(30, false) {
		t.Fatal("stale hint broke an unrelated lookup")
	}
	// A fill hints the way it installed into.
	c.Fill(40, false, 0)
	w, ok := c.WayOf(40)
	if !ok {
		t.Fatal("lost line 40")
	}
	if got := int(c.hint[0]); got != w {
		t.Fatalf("hint = %d after install into way %d", got, w)
	}
	// FillIfAbsent / FillOrDirty on a present line served via the hint must
	// not install, and FillOrDirty must still set the dirty bit.
	if _, filled := c.FillIfAbsent(40, false, 0); filled {
		t.Fatal("FillIfAbsent re-installed a hinted present line")
	}
	if _, filled := c.FillOrDirty(40, 0); filled {
		t.Fatal("FillOrDirty re-installed a hinted present line")
	}
	if ln, _ := c.Lookup(40); !ln.Dirty {
		t.Fatal("FillOrDirty through the hint lost the dirty bit")
	}
	// Lookup hits train the hint too: a probe miss followed by a sweep hit
	// records the located way for the next probe.
	if _, ok := c.Lookup(20); !ok {
		t.Fatal("lost line 20")
	}
	if w, _ := c.WayOf(20); int(c.hint[0]) != w {
		t.Fatalf("hint = %d after Lookup hit on way %d", c.hint[0], w)
	}
}

// BenchmarkAccessRepeatHit is the path the way-hint serves: back-to-back
// hits on one line touch a single tag word instead of sweeping the set.
func BenchmarkAccessRepeatHit(b *testing.B) {
	c := New(1024, 8)
	for i := uint64(0); i < 8*1024; i++ {
		c.Fill(i, false, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !c.Access(5, false) {
			b.Fatal("miss")
		}
	}
}

// BenchmarkAccessWaySweep defeats the hint on every access (round-robin
// over a set's ways), timing the full-sweep fallback for contrast.
func BenchmarkAccessWaySweep(b *testing.B) {
	c := New(1024, 8)
	for i := uint64(0); i < 8*1024; i++ {
		c.Fill(i, false, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !c.Access(uint64(i%8)*1024+5, false) {
			b.Fatal("miss")
		}
	}
}

// TestWayHintAliasing pins the masked-hint invariant: hint entries are
// keyed by the address's low set bits, so non-power-of-two geometries
// alias — a hint trained by one set is consulted by another. Tag
// verification must turn every alias into a clean sweep fall-through,
// never a wrong-way hit or a fabricated one.
func TestWayHintAliasing(t *testing.T) {
	c := New(3, 2)      // hintMask = 1: sets 0 and 2 share a hint entry
	c.Fill(6, false, 0) // set 0
	c.Fill(2, false, 0) // set 2; retrains the shared entry
	if !c.Access(6, false) {
		t.Fatal("aliased hint broke a set-0 access")
	}
	if !c.Access(2, false) {
		t.Fatal("retraining ping-pong lost the set-2 line")
	}
	if _, ok := c.Lookup(8); ok { // set 2, never filled
		t.Fatal("aliased hint fabricated a hit")
	}
}
