package sram

import (
	"math/bits"

	"bear/internal/fault"
)

// Mapper splits line addresses into (block, sub-block) coordinates for tag
// stores keyed at a coarser granularity than one 64 B line: the sector
// cache's 4 KB sectors and the page-grained Banshee/TicToc designs. The
// block address is what a Cache is keyed by — SetIndex, the way-hint table
// and the LRU slabs all operate on block addresses unchanged, so one SoA
// implementation serves line- and page-grained tags alike — and the
// sub-block index selects a bit in the caller's per-frame valid/dirty
// bitsets (hence the 64-line ceiling).
//
// Power-of-two block sizes (every real geometry) split with a shift and
// mask; the division fallback keeps odd test geometries correct.
type Mapper struct {
	lines uint64 // sub-blocks (lines) per block, in [1, 64]
	shift uint   // log2(lines) when pow2
	mask  uint64 // lines-1 when pow2
	pow2  bool
}

// NewMapper returns a Mapper for blocks of blockLines lines. blockLines
// must be in [1, 64]: sub-block state lives in uint64 bitsets.
func NewMapper(blockLines uint64) Mapper {
	if blockLines == 0 || blockLines > 64 {
		panic(fault.Invariantf("sram", "invalid mapper block size %d lines", blockLines))
	}
	m := Mapper{lines: blockLines}
	if blockLines&(blockLines-1) == 0 {
		m.pow2 = true
		m.shift = uint(bits.TrailingZeros64(blockLines))
		m.mask = blockLines - 1
	}
	return m
}

// BlockLines returns the number of lines per block.
func (m Mapper) BlockLines() uint64 { return m.lines }

// Block returns the block address line belongs to.
//
//bear:hotpath
func (m Mapper) Block(line uint64) uint64 {
	if m.pow2 {
		return line >> m.shift
	}
	return line / m.lines
}

// Sub returns line's sub-block index within its block, in [0, BlockLines).
//
//bear:hotpath
func (m Mapper) Sub(line uint64) uint64 {
	if m.pow2 {
		return line & m.mask
	}
	return line % m.lines
}

// Split returns both coordinates in one call.
//
//bear:hotpath
func (m Mapper) Split(line uint64) (block, sub uint64) {
	if m.pow2 {
		return line >> m.shift, line & m.mask
	}
	return line / m.lines, line % m.lines
}

// Line reconstructs the line address of sub-block sub within block — the
// inverse of Split.
//
//bear:hotpath
func (m Mapper) Line(block, sub uint64) uint64 {
	if m.pow2 {
		return block<<m.shift | sub
	}
	return block*m.lines + sub
}
