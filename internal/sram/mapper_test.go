package sram

import (
	"testing"

	"bear/internal/rng"
)

// TestMapperRoundTrip drives randomized line addresses through every mapper
// geometry the designs use (line-grained, sectored, paged) plus non-power-
// of-two sizes that exercise the division fallback, and checks the
// line → (block, sub) → line round trip plus the coordinate invariants.
func TestMapperRoundTrip(t *testing.T) {
	geometries := []uint64{1, 2, 4, 8, 16, 32, 64, 3, 7, 28, 63}
	src := rng.New(0xb10c)
	for _, lines := range geometries {
		m := NewMapper(lines)
		if got := m.BlockLines(); got != lines {
			t.Fatalf("BlockLines() = %d, want %d", got, lines)
		}
		for i := 0; i < 4096; i++ {
			line := src.Uint64() >> 1 // keep block*lines+sub overflow-free
			block, sub := m.Split(line)
			if block != m.Block(line) || sub != m.Sub(line) {
				t.Fatalf("lines=%d line=%#x: Split (%d,%d) disagrees with Block/Sub (%d,%d)",
					lines, line, block, sub, m.Block(line), m.Sub(line))
			}
			if sub >= lines {
				t.Fatalf("lines=%d line=%#x: sub %d out of range", lines, line, sub)
			}
			if got := m.Line(block, sub); got != line {
				t.Fatalf("lines=%d: Line(%d, %d) = %#x, want %#x", lines, block, sub, got, line)
			}
		}
	}
}

// TestMapperSetTagRoundTrip checks the full address → (set, tag, sub-block)
// decomposition used by page-grained tag stores: every line of one block
// lands in the same set of a block-keyed Cache, blocks that differ map to
// distinct (set, tag) pairs, and the hint/sweep machinery resolves block
// keys exactly like line keys.
func TestMapperSetTagRoundTrip(t *testing.T) {
	type geom struct {
		sets       uint64
		ways       int
		blockLines uint64
	}
	geometries := []geom{
		{64, 4, 64}, // paged, pow2 sets
		{56, 8, 64}, // paged, non-pow2 sets (Alloy-style row geometry)
		{128, 2, 8}, // sectored
		{16, 29, 1}, // line-grained, Loh-Hill associativity
		{32, 4, 28}, // non-pow2 block size
	}
	src := rng.New(0x5e7)
	for _, g := range geometries {
		m := NewMapper(g.blockLines)
		c := New(g.sets, g.ways)
		for i := 0; i < 2048; i++ {
			line := src.Uint64() >> 1
			block, sub := m.Split(line)
			set := c.SetIndex(block)
			if set >= g.sets {
				t.Fatalf("geom %+v: set %d out of range", g, set)
			}
			// Every line of the block shares the block's set.
			if other := c.SetIndex(m.Block(m.Line(block, (sub+1)%g.blockLines))); other != set {
				t.Fatalf("geom %+v: sibling line of block %#x maps to set %d, want %d",
					g, block, other, set)
			}
			// The Cache resolves block keys through fill/lookup/invalidate
			// exactly like line keys: install, find in the same set, remove.
			if _, ok := c.Lookup(block); !ok {
				c.Fill(block, false, uint8(sub))
			}
			ln, ok := c.Lookup(block)
			if !ok || ln.Addr != block {
				t.Fatalf("geom %+v: block %#x not found after fill", g, block)
			}
			if w, ok := c.WayOf(block); !ok || w < 0 || w >= g.ways {
				t.Fatalf("geom %+v: WayOf(%#x) = (%d, %v)", g, block, w, ok)
			}
		}
	}
}
