package fault

import (
	"errors"
	"strings"
	"testing"
)

func TestInvariantfFormats(t *testing.T) {
	err := Invariantf("dram", "bank %d out of range", 7)
	if err.Component != "dram" {
		t.Errorf("Component = %q", err.Component)
	}
	if got := err.Error(); got != "dram: invariant violated: bank 7 out of range" {
		t.Errorf("Error() = %q", got)
	}
}

// TestInvariantClassifiableThroughRecover pins the intended use: a panic
// raised with Invariantf is recovered as a classifiable *Invariant.
func TestInvariantClassifiableThroughRecover(t *testing.T) {
	caught := func() (v any) {
		defer func() { v = recover() }()
		panic(Invariantf("sram", "fill of already-present line %#x", 0x40))
	}()
	inv, ok := caught.(*Invariant)
	if !ok {
		t.Fatalf("recovered %T, want *Invariant", caught)
	}
	if inv.Component != "sram" || !strings.Contains(inv.Message, "0x40") {
		t.Errorf("recovered %+v", inv)
	}
	// And it is an error, so errors.As works on wrapped forms.
	var target *Invariant
	if !errors.As(error(inv), &target) {
		t.Error("errors.As failed on *Invariant")
	}
}

func TestWatchdogErrorMessages(t *testing.T) {
	cases := []struct {
		err  *WatchdogError
		want []string
	}{
		{&WatchdogError{Kind: WatchdogStall, Workload: "mcf", Design: "Alloy", Cycle: 9000, Retired: 42, Limit: 4096},
			[]string{"livelocked", "mcf/Alloy", "4096", "9000", "42"}},
		{&WatchdogError{Kind: WatchdogCycleBudget, Workload: "lbm", Design: "BEAR", Cycle: 1 << 20, Limit: 1 << 19},
			[]string{"cycle budget", "lbm/BEAR"}},
		{&WatchdogError{Kind: WatchdogDeadlock, Workload: "wrf", Design: "LH", Limit: 3},
			[]string{"deadlocked", "3 cores unfinished"}},
		{&WatchdogError{Kind: WatchdogDrain, Workload: "wrf", Design: "TIS", Limit: 1 << 24},
			[]string{"drain", "did not terminate"}},
	}
	for _, c := range cases {
		msg := c.err.Error()
		for _, w := range c.want {
			if !strings.Contains(msg, w) {
				t.Errorf("%v message %q missing %q", c.err.Kind, msg, w)
			}
		}
	}
}

func TestWatchdogKindString(t *testing.T) {
	for k, want := range map[WatchdogKind]string{
		WatchdogStall: "stall", WatchdogCycleBudget: "cycle-budget",
		WatchdogDeadlock: "deadlock", WatchdogDrain: "drain",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
}
