// Package fault defines the simulator's typed failure vocabulary. Every
// layer that can detect a broken invariant or a wedged simulation reports
// it through these types, so the recovery layers above — the experiment
// Runner's panic isolation, the watchdog in hier.Sim, and the cmd/ binaries'
// failure tables — can classify failures instead of pattern-matching panic
// strings.
//
// Two kinds of failure exist:
//
//   - Invariant: a structural contract was violated (a DRAM request outside
//     the configured geometry, a double fill, a leaked transaction). These
//     are programming errors; model code raises them with
//     panic(Invariantf(...)) so the compiler still sees a terminating
//     statement, and the Runner's recover boundary converts them into
//     structured per-unit errors.
//   - WatchdogError: the simulation stopped making forward progress (a
//     livelocked event queue, a stalled retire stream, a blown cycle
//     budget). The watchdog in hier.Sim detects these deterministically
//     and returns them as ordinary errors.
//
// The package deliberately depends on nothing but the standard library's
// fmt, so every simulation package can import it.
package fault

import "fmt"

// Invariant is a typed invariant violation. Model code panics with an
// *Invariant (via Invariantf); the experiment Runner's recover boundary and
// the cmd/ binaries classify it by Component.
type Invariant struct {
	// Component names the layer that detected the violation ("dram",
	// "sram", "dramcache", "cpu", "hier").
	Component string
	// Message describes the violated contract.
	Message string
}

func (e *Invariant) Error() string {
	return e.Component + ": invariant violated: " + e.Message
}

// Invariantf builds a typed invariant violation. Use it as the panic
// argument — panic(fault.Invariantf("dram", "bank %d out of range", b)) —
// so control-flow analysis still sees the panic and the recovery layer
// receives a classifiable value instead of a bare string.
func Invariantf(component, format string, args ...any) *Invariant {
	return &Invariant{Component: component, Message: fmt.Sprintf(format, args...)}
}

// WatchdogKind classifies what the simulation watchdog detected.
type WatchdogKind int

const (
	// WatchdogStall: the event queue kept running but no core retired an
	// instruction for longer than the stall threshold (livelock).
	WatchdogStall WatchdogKind = iota
	// WatchdogCycleBudget: simulated time exceeded the cycle budget.
	WatchdogCycleBudget
	// WatchdogDeadlock: the event queue drained with cores unfinished.
	WatchdogDeadlock
	// WatchdogDrain: the post-run event-queue drain failed to terminate
	// within its event budget.
	WatchdogDrain
	// WatchdogDeadline: a supervised worker process blew through the
	// wall-clock deadline its supervisor derived from the unit's
	// instruction budget. Raised by bearserve's pool, not by hier.Sim —
	// it is the one watchdog kind observed from outside the simulation —
	// but it shares this vocabulary so failure tables classify uniformly.
	WatchdogDeadline
)

var watchdogKindNames = [...]string{
	WatchdogStall:       "stall",
	WatchdogCycleBudget: "cycle-budget",
	WatchdogDeadlock:    "deadlock",
	WatchdogDrain:       "drain",
	WatchdogDeadline:    "deadline",
}

func (k WatchdogKind) String() string {
	if int(k) < len(watchdogKindNames) {
		return watchdogKindNames[k]
	}
	return fmt.Sprintf("WatchdogKind(%d)", int(k))
}

// WatchdogError reports a simulation that stopped making forward progress.
// All fields are deterministic: the watchdog samples at fixed event-count
// epochs, so the same configuration fails at the same cycle every run.
type WatchdogError struct {
	Kind     WatchdogKind
	Workload string
	Design   string
	// Cycle is the simulated time at detection.
	Cycle uint64
	// Retired is the total instructions retired across cores at detection.
	Retired uint64
	// Limit is the threshold that tripped (cycles for stall/budget, events
	// for drain, unfinished cores for deadlock).
	Limit uint64
}

func (e *WatchdogError) Error() string {
	switch e.Kind {
	case WatchdogStall:
		return fmt.Sprintf("watchdog: %s/%s livelocked: no instruction retired for %d cycles (cycle %d, %d retired)",
			e.Workload, e.Design, e.Limit, e.Cycle, e.Retired)
	case WatchdogCycleBudget:
		return fmt.Sprintf("watchdog: %s/%s exceeded the cycle budget of %d (cycle %d, %d retired)",
			e.Workload, e.Design, e.Limit, e.Cycle, e.Retired)
	case WatchdogDeadlock:
		return fmt.Sprintf("watchdog: %s/%s deadlocked: event queue drained with %d cores unfinished (cycle %d, %d retired)",
			e.Workload, e.Design, e.Limit, e.Cycle, e.Retired)
	case WatchdogDrain:
		return fmt.Sprintf("watchdog: %s/%s post-run drain did not terminate within %d events (cycle %d)",
			e.Workload, e.Design, e.Limit, e.Cycle)
	case WatchdogDeadline:
		return fmt.Sprintf("watchdog: %s/%s worker exceeded its %d ms deadline",
			e.Workload, e.Design, e.Limit)
	}
	return fmt.Sprintf("watchdog: %s/%s failed (%v)", e.Workload, e.Design, e.Kind)
}
