package lint

import (
	"go/ast"
	"go/types"
)

// checkInvariantPanics enforces the typed-failure contract in engine
// packages: a panic that raises a bare string — a literal, a fmt.Sprintf
// result, anything of string type — is opaque to the fault-isolation
// layer, which recovers panics and wants to classify them (is this an
// engine invariant violation, or arbitrary corruption?). Engine packages
// must raise typed values instead: panic(fault.Invariantf(component,
// format, ...)), which still terminates control flow at the panic site
// but arrives at recover as a classifiable error.
//
// The rule is gated by Config.InvariantPanic and applies only to the
// packages it opts in (the engine: dram, sram, cpu, hier, dramcache).
// Infrastructure and drivers may panic however they like.
func (p *Program) checkInvariantPanics(pkg *Package, cfg Config, report reporter) {
	if !cfg.invariantPanic(pkg.Path) {
		return
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || builtinName(pkg.Info, call) != "panic" || len(call.Args) != 1 {
				return true
			}
			t := pkg.Info.TypeOf(call.Args[0])
			if t == nil {
				return true
			}
			if basic, ok := t.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
				report(pkg, RuleInvariant, call.Pos(),
					"panic with a bare string in an engine package; raise a typed error — panic(fault.Invariantf(component, ...)) — so recover layers can classify the failure")
			}
			return true
		})
	}
}
