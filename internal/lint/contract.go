package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// Engine-contract checks:
//
//   - dupid: every experiment registered via register(Experiment{ID: ...})
//     must carry a unique string-literal id. The registry panics on
//     duplicates at init time, but only for experiments that actually get
//     linked in; the static check catches the collision at analysis time,
//     before any binary runs.
//   - layout: a Controller composition that installs a TagStore must also
//     set a Layout. A zero Layout silently accounts zero bytes for every
//     bus transfer, which invalidates every bandwidth result the design
//     reports (the NoL4 pass-through, which has no tag store, is the one
//     sanctioned zero-Layout composition).
//   - gran: every keyed Layout literal (of a Layout type carrying a Gran
//     field) must declare its granularity — GranLine for line-grained
//     designs, a non-zero Granularity for sub-blocked ones. A zero Gran
//     (BlockLines == 0) is indistinguishable from "forgot to think about
//     granularity": the engine treats it as legacy line-grained, which
//     silently mis-accounts fills and victim recovery for a page design.
func (p *Program) checkContracts(pkg *Package, report reporter) {
	p.checkExperimentIDs(pkg, report)
	p.checkLayouts(pkg, report)
	p.checkGranularities(pkg, report)
}

func (p *Program) checkExperimentIDs(pkg *Package, report reporter) {
	seen := map[string]ast.Node{}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := funcFor(pkg.Info, call)
			if fn == nil || fn.Name() != "register" || fn.Pkg() != pkg.Types || len(call.Args) != 1 {
				return true
			}
			lit, ok := ast.Unparen(call.Args[0]).(*ast.CompositeLit)
			if !ok {
				return true
			}
			for _, elt := range lit.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok || key.Name != "ID" {
					continue
				}
				basic, ok := ast.Unparen(kv.Value).(*ast.BasicLit)
				if !ok {
					report(pkg, RuleDupID, kv.Value.Pos(),
						"experiment id must be a string literal so ids stay statically unique")
					continue
				}
				id, err := strconv.Unquote(basic.Value)
				if err != nil {
					continue
				}
				if prev, dup := seen[id]; dup {
					report(pkg, RuleDupID, basic.Pos(),
						"duplicate experiment id %q (first registered at %s)", id, p.Fset.Position(prev.Pos()))
				} else {
					seen[id] = basic
				}
			}
			return true
		})
	}
}

// checkLayouts inspects every function that builds a Controller composite
// literal (a struct type named Controller with `tags` and `lay` fields):
// if the function installs a tag store — in the literal or via a later
// `<c>.tags = ...` assignment — it must also set `lay`.
func (p *Program) checkLayouts(pkg *Package, report reporter) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLayoutFn(pkg, fd, report)
		}
	}
}

func isControllerType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Controller" {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	hasTags, hasLay := false, false
	for i := 0; i < st.NumFields(); i++ {
		switch st.Field(i).Name() {
		case "tags":
			hasTags = true
		case "lay":
			hasLay = true
		}
	}
	return hasTags && hasLay
}

func checkLayoutFn(pkg *Package, fd *ast.FuncDecl, report reporter) {
	var lit *ast.CompositeLit
	litTags, litLay := false, false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok || lit != nil {
			return true
		}
		t := pkg.Info.TypeOf(cl)
		if t == nil || !isControllerType(t) {
			return true
		}
		lit = cl
		for _, elt := range cl.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if key, ok := kv.Key.(*ast.Ident); ok {
				switch key.Name {
				case "tags":
					litTags = true
				case "lay":
					litLay = true
				}
			}
		}
		return true
	})
	if lit == nil {
		return
	}

	// Scan the whole function for `<controller expr>.tags = ...` and
	// `.lay = ...` assignments (not path-sensitive; setting either
	// anywhere counts).
	setTags, setLay := litTags, litLay
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range asg.Lhs {
			sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			base := pkg.Info.TypeOf(sel.X)
			if base == nil || !isControllerType(base) {
				continue
			}
			switch sel.Sel.Name {
			case "tags":
				setTags = true
			case "lay":
				setLay = true
			}
		}
		return true
	})

	if setTags && !setLay {
		report(pkg, RuleLayout, lit.Pos(),
			"Controller composition in %s installs a tag store but never sets lay; a zero Layout accounts zero bus bytes for every transfer", fd.Name.Name)
	}
}

// isGranLayoutType reports whether t is a struct type named Layout that
// carries a Gran field — the granularity-bearing Layout shape the gran rule
// applies to (older Layout shapes without the field are exempt).
func isGranLayoutType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Layout" {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == "Gran" {
			return true
		}
	}
	return false
}

// checkGranularities enforces the gran rule on every keyed, non-empty
// composite literal of a granularity-bearing Layout type: the literal must
// name Gran, and the value must not be a zero Granularity{} literal.
// Fully-positional literals necessarily spell out every field, including
// Gran, so only keyed literals can silently omit it; empty Layout{}
// literals are zero values (placeholders, not compositions) and are the
// layout rule's concern.
func (p *Program) checkGranularities(pkg *Package, report reporter) {
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok || len(cl.Elts) == 0 {
				return true
			}
			t := pkg.Info.TypeOf(cl)
			if t == nil || !isGranLayoutType(t) {
				return true
			}
			var granVal ast.Expr
			keyed := false
			for _, elt := range cl.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				keyed = true
				if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Gran" {
					granVal = kv.Value
				}
			}
			if !keyed {
				return true
			}
			if granVal == nil {
				report(pkg, RuleGran, cl.Pos(),
					"Layout literal omits Gran; declare the design's granularity (GranLine for line-grained designs)")
				return true
			}
			if inner, ok := ast.Unparen(granVal).(*ast.CompositeLit); ok && len(inner.Elts) == 0 {
				report(pkg, RuleGran, granVal.Pos(),
					"Layout sets an empty Granularity (BlockLines == 0); the engine would treat the design as legacy line-grained")
			}
			return true
		})
	}
}
