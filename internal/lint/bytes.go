package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// The bytes rule statically proves the invariant Fig 12/13's bloat
// decomposition rests on: every DRAM transfer the engine enqueues lands in
// exactly one bloat category. A call to a //bear:enqueue function (the
// engine's l4Read/l4Write wrappers) must, on every path through the
// enclosing function, pair with exactly one //bear:bytes attribution call
// carrying the same byte expression — or carry a //bear:deferred <Category>
// annotation when the bytes are attributed at completion time inside the
// transaction callback (the engine's convention for reads: writes attribute
// at enqueue, reads at completion).
//
// Matching is by normalized byte-expression text per path, with counters
// merged across branches: pend (enqueued-but-unattributed, max over
// branches — a site pending on any path is pending) and surplus
// (attributed-but-not-yet-enqueued, min over branches — an attribution must
// precede the enqueue on every path to count). An attribution first
// consumes pend, else banks surplus; an enqueue first consumes surplus,
// else goes pending. Left-over pend at a non-panic exit is an unattributed
// transfer, reported at the enqueue site; left-over surplus that ever
// matched an enqueue is a double attribution, reported at the extra
// attribution site. Surplus that never matched is silent: it is the
// completion-side half of a //bear:deferred pair, executing in a different
// function than its enqueue.

// pendCap bounds the pend counter so unbalanced loops converge; any
// unattributed path has pend >= 1 long before the cap.
const pendCap = 8

type byteSite struct {
	pos  token.Pos
	kind string // "read" or "write"
}

// byteCount is the per-key lattice element.
type byteCount struct {
	pend      int
	surplus   int
	matched   bool
	sites     []byteSite  // pending enqueue sites, FIFO
	attrSites []token.Pos // surplus attribution sites, FIFO
}

// bytesEnv maps normalized byte expressions to their counters.
type bytesEnv = map[string]*byteCount

type bytesFlow struct {
	pkg      *Package
	fset     *token.FileSet
	sums     map[string]*fnSummary
	report   reporter
	fn       *ast.FuncDecl
	attrCats map[string]bool // categories attributed anywhere in the package
	reported map[token.Pos]bool
}

// checkBytes runs the byte-attribution rule over every function in pkg that
// calls an enqueue wrapper. Functions annotated //bear:enqueue are exempt:
// they are the boundary the rule checks callers against.
func (p *Program) checkBytes(pkg *Package, sums map[string]*fnSummary, report reporter) {
	attrCats := p.attrCategories(pkg, sums)
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			s := p.summaryFor(pkg, fd, sums)
			if s == nil || s.enqueue != nil || !callsEnqueue(s, sums) {
				continue
			}
			bf := &bytesFlow{pkg: pkg, fset: p.Fset, sums: sums, report: report,
				fn: fd, attrCats: attrCats, reported: map[token.Pos]bool{}}
			c := buildCFG(fd, pkg.Info)
			in := solve[bytesEnv](c, bf)
			for _, exit := range replay[bytesEnv](c, bf, in) {
				bf.atExit(exit.s)
			}
		}
	}
}

func (p *Program) summaryFor(pkg *Package, fd *ast.FuncDecl, sums map[string]*fnSummary) *fnSummary {
	obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	return sums[obj.FullName()]
}

func callsEnqueue(s *fnSummary, sums map[string]*fnSummary) bool {
	for _, e := range s.calls {
		if t := sums[e.target]; t != nil && t.enqueue != nil {
			return true
		}
	}
	return false
}

// attrCategories collects every category name attributed in pkg, for
// validating //bear:deferred annotations against.
func (p *Program) attrCategories(pkg *Package, sums map[string]*fnSummary) map[string]bool {
	cats := map[string]bool{}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := funcFor(pkg.Info, call)
			if fn == nil {
				return true
			}
			if s := sums[fn.FullName()]; s != nil && s.attr != nil {
				if cat := attrCategoryName(pkg.Info, call, s.attr); cat != "" {
					cats[cat] = true
				}
			}
			return true
		})
	}
	return cats
}

// attrCategoryName resolves the category an attribution call names: the
// spec's fixed category, or the named constant passed as the category
// argument ("" when it is not a named constant — every byte must land in a
// statically known category for the decomposition to be auditable).
func attrCategoryName(info *types.Info, call *ast.CallExpr, spec *attrSpec) string {
	if spec.catArg < 0 {
		return spec.category
	}
	if spec.catArg >= len(call.Args) {
		return ""
	}
	var id *ast.Ident
	switch e := ast.Unparen(call.Args[spec.catArg]).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return ""
	}
	if _, ok := info.Uses[id].(*types.Const); !ok {
		return ""
	}
	return id.Name
}

func (bf *bytesFlow) entry() bytesEnv { return bytesEnv{} }

func (bf *bytesFlow) clone(e bytesEnv) bytesEnv {
	out := make(bytesEnv, len(e))
	for k, v := range e {
		c := *v
		c.sites = append([]byteSite(nil), v.sites...)
		c.attrSites = append([]token.Pos(nil), v.attrSites...)
		out[k] = &c
	}
	return out
}

// merge folds src into dst: pend maxes (pending on any path is pending),
// surplus mins (an attribution counts only if it happened on every path),
// matched ORs, and site lists union so reports name every contributing
// site. A key absent from one side is the zero count.
func (bf *bytesFlow) merge(dst, src bytesEnv) bool {
	changed := false
	for k, sv := range src {
		dv, ok := dst[k]
		if !ok {
			dv = &byteCount{}
			dst[k] = dv
			// A key src tracks and dst does not: dst's side is all zeroes,
			// so surplus mins to zero and pend maxes to src's.
			sv = &byteCount{pend: sv.pend, matched: sv.matched,
				sites: sv.sites, attrSites: nil}
		}
		if sv.pend > dv.pend {
			dv.pend = sv.pend
			changed = true //bear:nolint maprange — monotone max per independent key
		}
		if sv.surplus < dv.surplus {
			dv.surplus = sv.surplus
			changed = true //bear:nolint maprange — monotone min per independent key
		}
		if sv.matched && !dv.matched {
			dv.matched = true
			changed = true //bear:nolint maprange — monotone OR per independent key
		}
		if unionSites(&dv.sites, sv.sites) {
			changed = true //bear:nolint maprange — set union per independent key
		}
		if unionPos(&dv.attrSites, sv.attrSites) {
			changed = true //bear:nolint maprange — set union per independent key
		}
	}
	for k, dv := range dst {
		if _, ok := src[k]; !ok && dv.surplus > 0 {
			// src's side never attributed this key: surplus mins to zero.
			dv.surplus = 0
			changed = true //bear:nolint maprange — monotone min per independent key
		}
	}
	return changed
}

func unionSites(dst *[]byteSite, src []byteSite) bool {
	changed := false
	for _, s := range src {
		found := false
		for _, d := range *dst {
			if d.pos == s.pos {
				found = true
				break
			}
		}
		if !found {
			*dst = append(*dst, s)
			changed = true
		}
	}
	if changed {
		sort.Slice(*dst, func(i, j int) bool { return (*dst)[i].pos < (*dst)[j].pos })
	}
	return changed
}

func unionPos(dst *[]token.Pos, src []token.Pos) bool {
	changed := false
	for _, s := range src {
		found := false
		for _, d := range *dst {
			if d == s {
				found = true
				break
			}
		}
		if !found {
			*dst = append(*dst, s)
			changed = true
		}
	}
	if changed {
		sort.Slice(*dst, func(i, j int) bool { return (*dst)[i] < (*dst)[j] })
	}
	return changed
}

func (bf *bytesFlow) refine(bytesEnv, ast.Expr, bool) {}

func (bf *bytesFlow) transfer(e bytesEnv, n ast.Node, report bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			// A literal's body runs later, on its own path; its enqueues are
			// not part of this one.
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if spec := bf.pkgAttrSpec(call); spec != nil {
			bf.attribute(e, call, spec, report)
		} else if spec := bf.pkgEnqueueSpec(call); spec != nil {
			bf.enqueue(e, call, spec, report)
		}
		return true
	})
}

func (bf *bytesFlow) pkgAttrSpec(call *ast.CallExpr) *attrSpec {
	fn := funcFor(bf.pkg.Info, call)
	if fn == nil {
		return nil
	}
	if s := bf.sums[fn.FullName()]; s != nil {
		return s.attr
	}
	return nil
}

func (bf *bytesFlow) pkgEnqueueSpec(call *ast.CallExpr) *enqueueSpec {
	fn := funcFor(bf.pkg.Info, call)
	if fn == nil {
		return nil
	}
	if s := bf.sums[fn.FullName()]; s != nil {
		return s.enqueue
	}
	return nil
}

func (bf *bytesFlow) attribute(e bytesEnv, call *ast.CallExpr, spec *attrSpec, report bool) {
	if spec.bytesArg >= len(call.Args) {
		return
	}
	if spec.catArg >= 0 && attrCategoryName(bf.pkg.Info, call, spec) == "" && report && !bf.reported[call.Pos()] {
		bf.reported[call.Pos()] = true
		bf.report(bf.pkg, RuleBytes, call.Args[spec.catArg].Pos(),
			"attribution category must be a named stats category constant")
	}
	key := types.ExprString(call.Args[spec.bytesArg])
	c := envCount(e, key)
	if c.pend > 0 {
		c.pend--
		if len(c.sites) > 0 {
			c.sites = c.sites[1:]
		}
		c.matched = true
		return
	}
	c.surplus++
	c.attrSites = append(c.attrSites, call.Pos())
}

func (bf *bytesFlow) enqueue(e bytesEnv, call *ast.CallExpr, spec *enqueueSpec, report bool) {
	if spec.bytesArg >= len(call.Args) {
		return
	}
	pos := bf.fset.Position(call.Pos())
	if cat, ok := bf.pkg.deferred[pos.Filename][pos.Line]; ok {
		if report && !bf.attrCats[cat] && !bf.reported[call.Pos()] {
			bf.reported[call.Pos()] = true
			bf.report(bf.pkg, RuleBytes, call.Pos(),
				"//bear:deferred names category %s, which no attribution call in this package ever uses", cat)
		}
		return
	}
	key := types.ExprString(call.Args[spec.bytesArg])
	c := envCount(e, key)
	if c.surplus > 0 {
		c.surplus--
		if len(c.attrSites) > 0 {
			c.attrSites = c.attrSites[1:]
		}
		c.matched = true
		return
	}
	if c.pend < pendCap {
		c.pend++
	}
	c.sites = append(c.sites, byteSite{pos: call.Pos(), kind: spec.kind})
}

func envCount(e bytesEnv, key string) *byteCount {
	c, ok := e[key]
	if !ok {
		c = &byteCount{}
		e[key] = c
	}
	return c
}

// atExit reports the leftovers of one non-panic exit path.
func (bf *bytesFlow) atExit(e bytesEnv) {
	keys := make([]string, 0, len(e))
	for k := range e {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		c := e[k]
		if c.pend > 0 {
			for _, s := range c.sites {
				if bf.reported[s.pos] {
					continue
				}
				bf.reported[s.pos] = true
				bf.report(bf.pkg, RuleBytes, s.pos,
					"DRAM %s of %s bytes reaches a return without attributing them to a bloat category; add a //bear:bytes attribution on every path or mark the site //bear:deferred <Category>",
					s.kind, k)
			}
		}
		if c.surplus > 0 && c.matched {
			for _, p := range c.attrSites {
				if bf.reported[p] {
					continue
				}
				bf.reported[p] = true
				bf.report(bf.pkg, RuleBytes, p,
					"bytes %s are attributed more than once on a path through %s", k, bf.fn.Name.Name)
			}
		}
	}
}
