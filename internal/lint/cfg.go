package lint

import (
	"go/ast"
	"go/types"
)

// An intraprocedural control-flow graph over the syntax tree, shared by the
// path-sensitive rule families (pool, bytes, timeflow). Each basic block
// carries the AST nodes that execute in it, in order; clients interpret the
// nodes with their own transfer functions (see dataflow.go).
//
// Node conventions, chosen so one builder serves every client:
//
//   - plain statements (assignments, expression statements, sends, defers,
//     go statements, declarations, inc/dec) appear as themselves;
//   - an if/for condition, a switch tag, a range operand and a case-clause
//     expression appear as bare ast.Expr nodes at their evaluation point;
//   - a *ast.RangeStmt reappears at the head of its body block so clients
//     can model the per-iteration key/value binding;
//   - return statements appear as nodes (so returned expressions flow) and
//     additionally terminate their block with exitReturn;
//   - panic(...) expression statements terminate their block with
//     exitPanic. Crash paths are silent for every current client: a leak or
//     an unattributed byte on a path that ends the process is not a bug the
//     rules exist to catch;
//   - branch statements (break/continue/goto/fallthrough) contribute edges
//     only.
//
// Edges out of a condition carry (cond, taken) so dataflow clients can
// refine state on branch direction (the timeflow rule's `x > now` guards).

type exitKind int

const (
	exitNone   exitKind = iota // has successors
	exitReturn                 // explicit return
	exitFall                   // fell off the end of the function
	exitPanic                  // panic(...): silent for all clients
)

type edge struct {
	to    *block
	cond  ast.Expr // branch condition this edge evaluates, or nil
	taken bool     // direction of cond along this edge
}

type block struct {
	index int
	nodes []ast.Node
	succs []edge
	kind  exitKind
	ret   *ast.ReturnStmt // set for exitReturn
}

type cfg struct {
	fn     *ast.FuncDecl
	entry  *block
	blocks []*block
}

// reachable returns the blocks reachable from entry, in index order (which
// is construction order, i.e. deterministic source order).
func (c *cfg) reachable() []*block {
	seen := make([]bool, len(c.blocks))
	var visit func(b *block)
	visit = func(b *block) {
		if seen[b.index] {
			return
		}
		seen[b.index] = true
		for _, e := range b.succs {
			visit(e.to)
		}
	}
	visit(c.entry)
	var out []*block
	for _, b := range c.blocks {
		if seen[b.index] {
			out = append(out, b)
		}
	}
	return out
}

// cfgBuilder builds a cfg one statement at a time. cur is the block under
// construction; it becomes nil after a terminator (the next statement, if
// any, starts a fresh unreachable block, except label targets which may be
// reached by goto).
type cfgBuilder struct {
	c      *cfg
	info   *types.Info
	cur    *block
	loops  []loopCtx
	labels map[string]*block // goto/label targets
}

// loopCtx is one enclosing breakable construct. continueTo is nil for
// switch/select (break-only targets).
type loopCtx struct {
	label      string
	breakTo    *block
	continueTo *block
}

func buildCFG(fd *ast.FuncDecl, info *types.Info) *cfg {
	c := &cfg{fn: fd}
	b := &cfgBuilder{c: c, info: info, labels: map[string]*block{}}
	c.entry = b.newBlock()
	b.cur = c.entry
	b.stmts(fd.Body.List)
	if b.cur != nil {
		b.cur.kind = exitFall
	}
	return c
}

func (b *cfgBuilder) newBlock() *block {
	blk := &block{index: len(b.c.blocks)}
	b.c.blocks = append(b.c.blocks, blk)
	return blk
}

// use returns the current block, starting a fresh (unreachable) one after a
// terminator so subsequent dead statements still have somewhere to live.
func (b *cfgBuilder) use() *block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *cfgBuilder) emit(n ast.Node) {
	if n != nil {
		blk := b.use()
		blk.nodes = append(blk.nodes, n)
	}
}

// jump links cur to target unconditionally and ends cur.
func (b *cfgBuilder) jump(target *block) {
	if b.cur != nil {
		b.cur.succs = append(b.cur.succs, edge{to: target})
	}
	b.cur = nil
}

// branch links cur to target along one direction of cond without ending cur.
func (b *cfgBuilder) branch(target *block, cond ast.Expr, taken bool) {
	if b.cur != nil {
		b.cur.succs = append(b.cur.succs, edge{to: target, cond: cond, taken: taken})
	}
}

func (b *cfgBuilder) labelBlock(name string) *block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

// findLoop resolves a break/continue target; label "" means innermost.
// wantContinue restricts to constructs that accept continue.
func (b *cfgBuilder) findLoop(label string, wantContinue bool) *loopCtx {
	for i := len(b.loops) - 1; i >= 0; i-- {
		l := &b.loops[i]
		if wantContinue && l.continueTo == nil {
			continue
		}
		if label == "" || l.label == label {
			return l
		}
	}
	return nil
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

func (b *cfgBuilder) stmt(stmt ast.Stmt, label string) {
	switch s := stmt.(type) {
	case nil:
	case *ast.BlockStmt:
		b.stmts(s.List)
	case *ast.IfStmt:
		b.stmt(s.Init, "")
		b.emit(s.Cond)
		head := b.cur // non-nil: emit materialised it
		thenB := b.newBlock()
		join := b.newBlock()
		b.branch(thenB, s.Cond, true)
		b.cur = thenB
		b.stmts(s.Body.List)
		b.jump(join)
		if s.Else != nil {
			elseB := b.newBlock()
			head.succs = append(head.succs, edge{to: elseB, cond: s.Cond, taken: false})
			b.cur = elseB
			b.stmt(s.Else, "")
			b.jump(join)
		} else {
			head.succs = append(head.succs, edge{to: join, cond: s.Cond, taken: false})
		}
		b.cur = join
	case *ast.ForStmt:
		b.stmt(s.Init, "")
		head := b.newBlock()
		body := b.newBlock()
		post := b.newBlock()
		exit := b.newBlock()
		b.jump(head)
		b.cur = head
		if s.Cond != nil {
			b.emit(s.Cond)
			b.branch(body, s.Cond, true)
			b.branch(exit, s.Cond, false)
			b.cur = nil
		} else {
			b.jump(body)
		}
		b.loops = append(b.loops, loopCtx{label: label, breakTo: exit, continueTo: post})
		b.cur = body
		b.stmts(s.Body.List)
		b.jump(post)
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = post
		b.stmt(s.Post, "")
		b.jump(head)
		b.cur = exit
	case *ast.RangeStmt:
		b.emit(s.X)
		head := b.newBlock()
		body := b.newBlock()
		exit := b.newBlock()
		b.jump(head)
		head.succs = append(head.succs,
			edge{to: body}, edge{to: exit})
		b.loops = append(b.loops, loopCtx{label: label, breakTo: exit, continueTo: head})
		b.cur = body
		b.emit(s) // per-iteration key/value binding
		b.stmts(s.Body.List)
		b.jump(head)
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = exit
	case *ast.SwitchStmt:
		b.switchStmt(label, s.Init, s.Tag, nil, s.Body)
	case *ast.TypeSwitchStmt:
		b.switchStmt(label, s.Init, nil, s.Assign, s.Body)
	case *ast.SelectStmt:
		join := b.newBlock()
		head := b.use()
		b.loops = append(b.loops, loopCtx{label: label, breakTo: join})
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CommClause)
			cb := b.newBlock()
			head.succs = append(head.succs, edge{to: cb})
			b.cur = cb
			b.stmt(cc.Comm, "")
			b.stmts(cc.Body)
			b.jump(join)
		}
		b.loops = b.loops[:len(b.loops)-1]
		if len(s.Body.List) == 0 {
			head.succs = append(head.succs, edge{to: join})
		}
		b.cur = join
	case *ast.LabeledStmt:
		target := b.labelBlock(s.Label.Name)
		b.jump(target)
		b.cur = target
		b.stmt(s.Stmt, s.Label.Name)
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.ReturnStmt:
		blk := b.use()
		blk.nodes = append(blk.nodes, s)
		blk.kind = exitReturn
		blk.ret = s
		b.cur = nil
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && builtinName(b.info, call) == "panic" {
			blk := b.use()
			blk.nodes = append(blk.nodes, s)
			blk.kind = exitPanic
			b.cur = nil
			return
		}
		b.emit(s)
	default:
		// AssignStmt, DeclStmt, IncDecStmt, SendStmt, DeferStmt, GoStmt,
		// EmptyStmt: straight-line nodes.
		if _, ok := stmt.(*ast.EmptyStmt); !ok {
			b.emit(stmt)
		}
	}
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok.String() {
	case "break":
		if l := b.findLoop(label, false); l != nil {
			b.jump(l.breakTo)
		} else {
			b.cur = nil
		}
	case "continue":
		if l := b.findLoop(label, true); l != nil {
			b.jump(l.continueTo)
		} else {
			b.cur = nil
		}
	case "goto":
		b.jump(b.labelBlock(label))
	case "fallthrough":
		// handled structurally in switchStmt; a stray one just ends the block
		b.cur = nil
	}
}

// switchStmt lowers expression and type switches. Each clause gets its own
// block whose head holds the case expressions (or the type-switch assign);
// fallthrough chains a clause's end into the next clause's body.
func (b *cfgBuilder) switchStmt(label string, init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt) {
	b.stmt(init, "")
	if tag != nil {
		b.emit(tag)
	}
	if assign != nil {
		b.emit(assign)
	}
	head := b.use()
	join := b.newBlock()

	clauses := make([]*block, len(body.List))
	for i := range body.List {
		clauses[i] = b.newBlock()
	}
	hasDefault := false
	for i, clause := range body.List {
		cc := clause.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		head.succs = append(head.succs, edge{to: clauses[i]})
		b.cur = clauses[i]
		for _, e := range cc.List {
			b.emit(e)
		}
		b.loops = append(b.loops, loopCtx{label: label, breakTo: join})
		fellThrough := false
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
				if i+1 < len(clauses) {
					b.jump(clauses[i+1])
				} else {
					b.cur = nil
				}
				fellThrough = true
				break
			}
			b.stmt(st, "")
		}
		b.loops = b.loops[:len(b.loops)-1]
		if !fellThrough {
			b.jump(join)
		}
	}
	if !hasDefault {
		// Some value matches no case: the switch falls straight through.
		head.succs = append(head.succs, edge{to: join})
	}
	b.cur = join
}
