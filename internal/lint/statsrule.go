package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The stats rule audits the counters themselves: every field of the structs
// in the gated stats packages must be written by some simulation path AND
// read by some experiment or report, across the whole analyzed program. A
// counter nobody writes reports zero forever; a counter nobody reads is
// collected but invisible — both are the silent kind of rot that makes a
// paper figure lie. The census is program-wide, so the rule only means
// something on whole-module runs; cmd/simlint enables it for `./...` only.
//
// Classification: an assignment or ++/-- through a selector is a write
// (compound assignments count as writes only — `s.X += n` accumulates, it
// does not consume); a keyed composite-literal field is a write; taking a
// field's address is both (the pointer can do either); every other selector
// occurrence is a read. Object identity does not survive the source
// importer's per-package re-imports, so fields are keyed by the string
// "pkgpath.Struct.Field".

type statsField struct {
	pkg     *Package
	pos     token.Pos
	label   string // Struct.Field, for messages
	written bool
	read    bool
}

func (p *Program) checkStatsFields(cfg Config, report reporter) {
	fields := map[string]*statsField{}
	var order []string
	for _, pkg := range p.Pkgs {
		if !cfg.statsFields(pkg.Path) {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, f := range st.Fields.List {
						for _, name := range f.Names {
							key := pkg.Path + "." + ts.Name.Name + "." + name.Name
							fields[key] = &statsField{pkg: pkg, pos: name.Pos(),
								label: ts.Name.Name + "." + name.Name}
							order = append(order, key)
						}
					}
				}
			}
		}
	}
	if len(fields) == 0 {
		return
	}

	for _, pkg := range p.Pkgs {
		for _, file := range pkg.Files {
			censusFile(pkg, file, fields)
		}
	}

	for _, key := range order {
		f := fields[key]
		switch {
		case !f.written && !f.read:
			report(f.pkg, RuleStats, f.pos,
				"stats field %s is never written and never consumed; delete it or wire it up", f.label)
		case !f.written:
			report(f.pkg, RuleStats, f.pos,
				"stats field %s is never written by any simulation path; it reports zero forever", f.label)
		case !f.read:
			report(f.pkg, RuleStats, f.pos,
				"stats field %s is never consumed by any experiment or report; the counter is collected but invisible", f.label)
		}
	}
}

// censusFile classifies every tracked-field occurrence in file as read,
// write or both.
func censusFile(pkg *Package, file *ast.File, fields map[string]*statsField) {
	// writeOnly holds the exact selector nodes that are pure write contexts,
	// so the read pass can skip them.
	writeOnly := map[*ast.SelectorExpr]bool{}

	mark := func(sel *ast.SelectorExpr, write, read bool) {
		// Writing x.a.b mutates a as well as b: mark the whole selector
		// chain, so a struct field only ever reached through its members
		// still counts as written.
		for sel != nil {
			if f := fields[selectorFieldKey(pkg, sel)]; f != nil {
				if write {
					f.written = true
				}
				if read {
					f.read = true
				}
				if write && !read {
					writeOnly[sel] = true
				}
			}
			sel = coreSelector(sel.X)
		}
	}

	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// A pointer-receiver method invoked on a field can mutate it:
			// s.HitHist.Add(lat) writes HitHist, l4.HitHist.Percentile(p)
			// reads it. The signature cannot tell the two apart, so a
			// pointer-method call counts as both.
			msel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection, ok := pkg.Info.Selections[msel]
			if !ok || selection.Kind() != types.MethodVal {
				return true
			}
			fn, ok := selection.Obj().(*types.Func)
			if !ok {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				return true
			}
			if _, ptr := sig.Recv().Type().(*types.Pointer); !ptr {
				return true
			}
			if sel := coreSelector(msel.X); sel != nil {
				mark(sel, true, true)
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if sel := coreSelector(lhs); sel != nil {
					mark(sel, true, false)
				}
			}
		case *ast.IncDecStmt:
			if sel := coreSelector(n.X); sel != nil {
				mark(sel, true, false)
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if sel := coreSelector(n.X); sel != nil {
					mark(sel, true, true)
				}
			}
		case *ast.CompositeLit:
			named := namedOf(pkg.Info.TypeOf(n))
			if named == nil || named.Obj().Pkg() == nil {
				return true
			}
			prefix := named.Obj().Pkg().Path() + "." + named.Obj().Name() + "."
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); ok {
					if f := fields[prefix+key.Name]; f != nil {
						f.written = true
					}
				}
			}
		}
		return true
	})

	// Read pass: every selector occurrence that was not a pure write.
	ast.Inspect(file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || writeOnly[sel] {
			return true
		}
		if f := fields[selectorFieldKey(pkg, sel)]; f != nil {
			f.read = true
		}
		return true
	})
}

// coreSelector strips parens, indexes and stars off an assignable
// expression down to the field selector being written, if any:
// coreSelector(s.Bytes[c]) == s.Bytes.
func coreSelector(e ast.Expr) *ast.SelectorExpr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			return x
		default:
			return nil
		}
	}
}

// selectorFieldKey resolves sel to its "pkgpath.Struct.Field" key, or "".
func selectorFieldKey(pkg *Package, sel *ast.SelectorExpr) string {
	selection, ok := pkg.Info.Selections[sel]
	if !ok {
		return ""
	}
	f, ok := selection.Obj().(*types.Var)
	if !ok || !f.IsField() || f.Pkg() == nil {
		return ""
	}
	named := namedOf(selection.Recv())
	if named == nil {
		return ""
	}
	return f.Pkg().Path() + "." + named.Obj().Name() + "." + f.Name()
}

func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}
