package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// The pool rule closes the leak class Cache.OutstandingTxns() only detects
// at test time: a function that obtains an object from (*sync.Pool).Get or
// from one of the repository's freelist getters (annotated //bear:acquire —
// dram.Memory.get, cpu.Core.getToken, hier.Hierarchy.getMiss,
// dramcache.Controller.getTxn) must, on every return path, either release
// the object back or hand it off — pass it (or one of its pre-bound method
// values) to a call, store it into a field, map, slice or queue, send it on
// a channel, or return it to the caller. A path that simply drops the
// object leaks it from the pool.
//
// The analysis runs on the shared CFG/dataflow framework (cfg.go,
// dataflow.go): per tracked variable the lattice is
// {untracked, consumed, unconsumed}, branches merge with AND (consumed only
// if consumed on every incoming path), a loop that may run zero times does
// not satisfy the paths around it, reassigning the tracked variable
// forfeits tracking, and paths that end in panic are silent. Reads of the
// object's fields and writes into the object are not hand-offs.

// poolEnv maps tracked objects to "consumed on this path".
type poolEnv = map[*types.Var]bool

// poolFlow is the dataflow client; one instance analyses one function.
type poolFlow struct {
	pkg      *Package
	sums     map[string]*fnSummary
	report   reporter
	acquired map[*types.Var]*acquisition
}

type acquisition struct {
	v      *types.Var
	origin string // display name of the acquire call
}

// checkPools runs the pool-discipline check over every function in pkg.
func (p *Program) checkPools(pkg *Package, sums map[string]*fnSummary, report reporter) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			pf := &poolFlow{pkg: pkg, sums: sums, report: report,
				acquired: map[*types.Var]*acquisition{}}
			c := buildCFG(fd, pkg.Info)
			in := solve[poolEnv](c, pf)
			for _, exit := range replay[poolEnv](c, pf, in) {
				pos := fd.Body.End() - 1
				where := "end of function"
				if exit.b.kind == exitReturn {
					pos = exit.b.ret.Pos()
					where = "this return"
				}
				pf.atExit(pos, exit.s, where)
			}
		}
	}
}

func (pf *poolFlow) entry() poolEnv { return poolEnv{} }

func (pf *poolFlow) clone(e poolEnv) poolEnv {
	out := make(poolEnv, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

// merge folds src into dst: tracked-unconsumed dominates tracked-consumed
// dominates untracked, so a variable is consumed only where every incoming
// path consumed it, and a branch-local acquisition stays tracked after the
// join.
func (pf *poolFlow) merge(dst, src poolEnv) bool {
	changed := false
	for v, consumed := range src {
		prev, tracked := dst[v]
		if !tracked {
			dst[v] = consumed
			changed = true //bear:nolint maprange — monotone OR flag; order-independent
			continue
		}
		if prev && !consumed {
			dst[v] = false
			changed = true //bear:nolint maprange — monotone OR flag; order-independent
		}
	}
	return changed
}

func (pf *poolFlow) refine(poolEnv, ast.Expr, bool) {}

func (pf *poolFlow) transfer(e poolEnv, n ast.Node, report bool) {
	switch s := n.(type) {
	case *ast.AssignStmt:
		// Track `x := acquire()` / `x, _ := pool.Get().(*T)` bindings.
		if len(s.Rhs) == 1 {
			if call, origin, ok := pf.acquireIn(s.Rhs[0]); ok {
				pf.consumeIn(s.Rhs[0], e) // args may consume earlier objects
				if id, ok := ast.Unparen(s.Lhs[0]).(*ast.Ident); ok && id.Name != "_" {
					if v, ok := obj(pf.pkg.Info, id).(*types.Var); ok {
						pf.acquired[v] = &acquisition{v: v, origin: origin}
						e[v] = false
						return
					}
				}
				// Bound to something un-trackable (field, index): treat the
				// store itself as the hand-off.
				_ = call
				return
			}
		}
		pf.consumeAssign(s, e)
	case *ast.ExprStmt:
		if call, origin, ok := pf.acquireIn(s.X); ok {
			if report {
				pf.report(pf.pkg, RulePool, call.Pos(),
					"result of %s is dropped; the pooled object leaks immediately", origin)
			}
			return
		}
		pf.consumeIn(s.X, e)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			pf.consumeIn(r, e)
		}
	case *ast.SendStmt:
		pf.consumeIn(s.Value, e)
	case *ast.DeferStmt:
		pf.consumeIn(s.Call, e)
	case *ast.GoStmt:
		pf.consumeIn(s.Call, e)
	case *ast.IncDecStmt, *ast.DeclStmt, *ast.RangeStmt:
		// pure mutation / declarations / the per-iteration range binding:
		// never a hand-off
	case ast.Expr:
		// conditions, switch tags, case expressions, range operands
		pf.consumeIn(s, e)
	}
}

// isAcquire reports whether call obtains a pooled object: sync.Pool.Get or
// a project function annotated //bear:acquire.
func (pf *poolFlow) isAcquire(call *ast.CallExpr) (string, bool) {
	fn := funcFor(pf.pkg.Info, call)
	if fn == nil {
		return "", false
	}
	full := fn.FullName()
	if full == "(*sync.Pool).Get" {
		return "sync.Pool.Get", true
	}
	if s := pf.sums[full]; s != nil && s.acquire {
		return displayName(fn), true
	}
	return "", false
}

// acquireIn unwraps expr (through parens and type assertions) to an acquire
// call, if it is one.
func (pf *poolFlow) acquireIn(expr ast.Expr) (*ast.CallExpr, string, bool) {
	e := ast.Unparen(expr)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil, "", false
	}
	origin, ok := pf.isAcquire(call)
	return call, origin, ok
}

// atExit reports every tracked object not consumed on this path.
func (pf *poolFlow) atExit(pos token.Pos, e poolEnv, where string) {
	var leaked []*acquisition
	for v, consumed := range e {
		if !consumed {
			leaked = append(leaked, pf.acquired[v])
		}
	}
	sort.Slice(leaked, func(i, j int) bool { return leaked[i].v.Pos() < leaked[j].v.Pos() })
	for _, a := range leaked {
		pf.report(pf.pkg, RulePool, pos,
			"pooled object %s (from %s) is dropped on %s; release it or hand it off on every path",
			a.v.Name(), a.origin, where)
	}
}

// consumeAssign handles an assignment that is not an acquire binding:
// objects appearing on the RHS (or in index expressions of the LHS) are
// consumed unless the LHS is rooted at the object itself (updating the
// pooled object's own fields is not a hand-off). Reassigning a tracked
// variable forfeits tracking.
func (pf *poolFlow) consumeAssign(s *ast.AssignStmt, e poolEnv) {
	for i, lhs := range s.Lhs {
		root := rootIdent(lhs)
		var rootVar *types.Var
		if root != nil {
			rootVar, _ = obj(pf.pkg.Info, root).(*types.Var)
		}
		if rootVar != nil {
			if _, tracked := e[rootVar]; tracked {
				if _, bare := ast.Unparen(lhs).(*ast.Ident); bare {
					e[rootVar] = true // reassigned: stop tracking
					continue
				}
				// x.f = rhs / x.f[i] = rhs: self-update; RHS mentions of x
				// itself are not hand-offs either.
				if i < len(s.Rhs) {
					pf.consumeExcept(s.Rhs[i], e, rootVar)
				}
				continue
			}
		}
		// Storing into an index (m[k] = x) can consume via the key too.
		if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			pf.consumeIn(idx.Index, e)
		}
		if i < len(s.Rhs) {
			pf.consumeIn(s.Rhs[i], e)
		}
	}
	if len(s.Lhs) != len(s.Rhs) {
		for _, rhs := range s.Rhs {
			pf.consumeIn(rhs, e)
		}
	}
}

// consumeIn marks every tracked object mentioned in expr as consumed.
func (pf *poolFlow) consumeIn(expr ast.Expr, e poolEnv) {
	pf.consumeExcept(expr, e, nil)
}

func (pf *poolFlow) consumeExcept(expr ast.Expr, e poolEnv, except *types.Var) {
	if expr == nil {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := obj(pf.pkg.Info, id).(*types.Var)
		if !ok || v == except {
			return true
		}
		if _, tracked := e[v]; tracked {
			e[v] = true
		}
		return true
	})
}
