package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// The pool rule closes the leak class Cache.OutstandingTxns() only detects
// at test time: a function that obtains an object from (*sync.Pool).Get or
// from one of the repository's freelist getters (annotated //bear:acquire —
// dram.Memory.get, cpu.Core.getToken, hier.Hierarchy.getMiss,
// dramcache.Controller.getTxn) must, on every return path, either release
// the object back or hand it off — pass it (or one of its pre-bound method
// values) to a call, store it into a field, map, slice or queue, send it on
// a channel, or return it to the caller. A path that simply drops the
// object leaks it from the pool.
//
// The analysis is a conservative intraprocedural dataflow over the syntax
// tree: branches merge with AND (consumed only if consumed on every arm),
// loop bodies do not count toward the paths around them, and reassigning
// the tracked variable forfeits tracking. Reads of the object's fields and
// writes into the object are not hand-offs.

// poolState tracks acquired objects within one function.
type poolState struct {
	pkg      *Package
	sums     map[string]*fnSummary
	report   reporter
	acquired map[*types.Var]*acquisition
}

type acquisition struct {
	v      *types.Var
	origin string // display name of the acquire call
}

// env maps tracked objects to "consumed on this path".
type env map[*types.Var]bool

func (e env) clone() env {
	out := make(env, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

// checkPools runs the pool-discipline check over every function in pkg.
func (p *Program) checkPools(pkg *Package, sums map[string]*fnSummary, report reporter) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ps := &poolState{pkg: pkg, sums: sums, report: report, acquired: map[*types.Var]*acquisition{}}
			e := env{}
			terminated := ps.walkStmts(fd.Body.List, e)
			if !terminated {
				ps.atReturn(fd.Body.End()-1, e, "end of function")
			}
		}
	}
}

// isAcquire reports whether call obtains a pooled object: sync.Pool.Get or
// a project function annotated //bear:acquire.
func (ps *poolState) isAcquire(call *ast.CallExpr) (string, bool) {
	fn := funcFor(ps.pkg.Info, call)
	if fn == nil {
		return "", false
	}
	full := fn.FullName()
	if full == "(*sync.Pool).Get" {
		return "sync.Pool.Get", true
	}
	if s := ps.sums[full]; s != nil && s.acquire {
		return displayName(fn), true
	}
	return "", false
}

// acquireIn unwraps expr (through parens and type assertions) to an acquire
// call, if it is one.
func (ps *poolState) acquireIn(expr ast.Expr) (*ast.CallExpr, string, bool) {
	e := ast.Unparen(expr)
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ast.Unparen(ta.X)
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil, "", false
	}
	origin, ok := ps.isAcquire(call)
	return call, origin, ok
}

// walkStmts interprets a statement list, updating e and reporting drops at
// return points. It returns true when the list always terminates (every
// path ends in return or panic) so callers exclude it from merges.
func (ps *poolState) walkStmts(stmts []ast.Stmt, e env) bool {
	for _, stmt := range stmts {
		if ps.walkStmt(stmt, e) {
			return true
		}
	}
	return false
}

func (ps *poolState) walkStmt(stmt ast.Stmt, e env) bool {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		// Track `x := acquire()` / `x, _ := pool.Get().(*T)` bindings.
		if len(s.Rhs) == 1 {
			if call, origin, ok := ps.acquireIn(s.Rhs[0]); ok {
				ps.consumeIn(s.Rhs[0], e) // args may consume earlier objects
				if id, ok := ast.Unparen(s.Lhs[0]).(*ast.Ident); ok && id.Name != "_" {
					if v, ok := obj(ps.pkg.Info, id).(*types.Var); ok {
						ps.acquired[v] = &acquisition{v: v, origin: origin}
						e[v] = false
						return false
					}
				}
				// Bound to something un-trackable (field, index): treat the
				// store itself as the hand-off.
				_ = call
				return false
			}
		}
		ps.consumeAssign(s, e)
	case *ast.ExprStmt:
		if call, origin, ok := ps.acquireIn(s.X); ok {
			ps.report(ps.pkg, RulePool, call.Pos(),
				"result of %s is dropped; the pooled object leaks immediately", origin)
			return false
		}
		ps.consumeIn(s.X, e)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			ps.consumeIn(r, e)
		}
		ps.atReturn(s.Pos(), e, "this return")
		return true
	case *ast.IfStmt:
		if s.Init != nil {
			ps.walkStmt(s.Init, e)
		}
		ps.consumeIn(s.Cond, e)
		thenEnv := e.clone()
		thenTerm := ps.walkStmts(s.Body.List, thenEnv)
		elseEnv := e.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = ps.walkStmt(s.Else, elseEnv)
		}
		mergeBranches(e, []env{thenEnv, elseEnv}, []bool{thenTerm, elseTerm})
		return thenTerm && elseTerm
	case *ast.BlockStmt:
		return ps.walkStmts(s.List, e)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		return ps.walkSwitch(s, e)
	case *ast.ForStmt:
		if s.Init != nil {
			ps.walkStmt(s.Init, e)
		}
		if s.Cond != nil {
			ps.consumeIn(s.Cond, e)
		}
		body := e.clone()
		ps.walkStmts(s.Body.List, body)
		// Conservative: the loop may run zero times, so consumption inside
		// it does not satisfy the paths after it. A condition-free for loop
		// only exits via return/break inside the body.
		return s.Cond == nil && !hasBreak(s.Body)
	case *ast.RangeStmt:
		ps.consumeIn(s.X, e)
		body := e.clone()
		ps.walkStmts(s.Body.List, body)
	case *ast.DeferStmt:
		ps.consumeIn(s.Call, e)
	case *ast.GoStmt:
		ps.consumeIn(s.Call, e)
	case *ast.SendStmt:
		ps.consumeIn(s.Value, e)
	case *ast.IncDecStmt:
		// pure mutation, never a hand-off
	case *ast.DeclStmt, *ast.LabeledStmt, *ast.BranchStmt, *ast.EmptyStmt:
		if ls, ok := stmt.(*ast.LabeledStmt); ok {
			return ps.walkStmt(ls.Stmt, e)
		}
	case *ast.SelectStmt:
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CommClause)
			branch := e.clone()
			if cc.Comm != nil {
				ps.walkStmt(cc.Comm, branch)
			}
			ps.walkStmts(cc.Body, branch)
		}
	}
	return false
}

func (ps *poolState) walkSwitch(stmt ast.Stmt, e env) bool {
	var body *ast.BlockStmt
	var init ast.Stmt
	var tag ast.Expr
	switch s := stmt.(type) {
	case *ast.SwitchStmt:
		body, init, tag = s.Body, s.Init, s.Tag
	case *ast.TypeSwitchStmt:
		body, init = s.Body, s.Init
	}
	if init != nil {
		ps.walkStmt(init, e)
	}
	if tag != nil {
		ps.consumeIn(tag, e)
	}
	var envs []env
	var terms []bool
	hasDefault := false
	for _, clause := range body.List {
		cc := clause.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		for _, c := range cc.List {
			ps.consumeIn(c, e)
		}
		branch := e.clone()
		envs = append(envs, branch)
		terms = append(terms, ps.walkStmts(cc.Body, branch))
	}
	if !hasDefault {
		// A path skips every case: fall back to the incoming env.
		envs = append(envs, e.clone())
		terms = append(terms, false)
	}
	mergeBranches(e, envs, terms)
	allTerm := true
	for _, t := range terms {
		allTerm = allTerm && t
	}
	return allTerm
}

// mergeBranches folds branch envs back into e: consumed only where every
// non-terminated branch consumed. Terminated branches already reported
// their own paths.
func mergeBranches(e env, branches []env, terminated []bool) {
	for v := range e {
		all := true
		any := false
		for i, b := range branches {
			if terminated[i] {
				continue
			}
			any = true
			all = all && b[v]
		}
		if any {
			e[v] = all
		}
		// All branches terminated: unreachable after the statement; the
		// caller's terminated flag covers it.
	}
}

// atReturn reports every tracked object not consumed on this path.
func (ps *poolState) atReturn(pos token.Pos, e env, where string) {
	var leaked []*acquisition
	for v, consumed := range e {
		if !consumed {
			leaked = append(leaked, ps.acquired[v])
		}
	}
	sort.Slice(leaked, func(i, j int) bool { return leaked[i].v.Pos() < leaked[j].v.Pos() })
	for _, a := range leaked {
		ps.report(ps.pkg, RulePool, pos,
			"pooled object %s (from %s) is dropped on %s; release it or hand it off on every path",
			a.v.Name(), a.origin, where)
	}
}

// consumeAssign handles an assignment that is not an acquire binding:
// objects appearing on the RHS (or in index expressions of the LHS) are
// consumed unless the LHS is rooted at the object itself (updating the
// pooled object's own fields is not a hand-off). Reassigning a tracked
// variable forfeits tracking.
func (ps *poolState) consumeAssign(s *ast.AssignStmt, e env) {
	for i, lhs := range s.Lhs {
		root := rootIdent(lhs)
		var rootVar *types.Var
		if root != nil {
			rootVar, _ = obj(ps.pkg.Info, root).(*types.Var)
		}
		if rootVar != nil {
			if _, tracked := e[rootVar]; tracked {
				if _, bare := ast.Unparen(lhs).(*ast.Ident); bare {
					e[rootVar] = true // reassigned: stop tracking
					continue
				}
				// x.f = rhs / x.f[i] = rhs: self-update; RHS mentions of x
				// itself are not hand-offs either.
				if i < len(s.Rhs) {
					ps.consumeExcept(s.Rhs[i], e, rootVar)
				}
				continue
			}
		}
		// Storing into an index (m[k] = x) can consume via the key too.
		if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			ps.consumeIn(idx.Index, e)
		}
		if i < len(s.Rhs) {
			ps.consumeIn(s.Rhs[i], e)
		}
	}
	if len(s.Lhs) != len(s.Rhs) {
		for _, rhs := range s.Rhs {
			ps.consumeIn(rhs, e)
		}
	}
}

// consumeIn marks every tracked object mentioned in expr as consumed.
func (ps *poolState) consumeIn(expr ast.Expr, e env) {
	ps.consumeExcept(expr, e, nil)
}

func (ps *poolState) consumeExcept(expr ast.Expr, e env, except *types.Var) {
	if expr == nil {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := obj(ps.pkg.Info, id).(*types.Var)
		if !ok || v == except {
			return true
		}
		if _, tracked := e[v]; tracked {
			e[v] = true
		}
		return true
	})
}

// hasBreak reports whether body contains a break that exits the loop it
// belongs to (unlabeled, not nested inside an inner loop or switch).
func hasBreak(body *ast.BlockStmt) bool {
	found := false
	var walk func(s ast.Stmt)
	walk = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.BranchStmt:
			if s.Tok == token.BREAK {
				found = true
			}
		case *ast.BlockStmt:
			for _, st := range s.List {
				walk(st)
			}
		case *ast.IfStmt:
			walk(s.Body)
			if s.Else != nil {
				walk(s.Else)
			}
		case *ast.LabeledStmt:
			walk(s.Stmt)
		}
		// For/Range/Switch/Select re-bind break; stop descending.
	}
	for _, st := range body.List {
		walk(st)
	}
	return found
}
