package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// checkDeterminism enforces the reproducible-timing contract:
//
//   - no wall-clock reads (time.Now / time.Since), ambient randomness
//     (math/rand) or environment reads (os.Getenv) in simulation packages —
//     seeds come from internal/config and randomness from internal/rng;
//   - no goroutines outside the sanctioned concurrency layer;
//   - no map iteration whose body feeds an order-sensitive sink (an outer
//     accumulator, an outer slice append, or a print/format call) unless
//     the loop only collects keys that are subsequently sorted. This is the
//     exact bug class PR 1 fixed in allGeomean: folding map values in
//     random iteration order made the reported geomean fluctuate between
//     byte-identical simulations.
func (p *Program) checkDeterminism(pkg *Package, cfg Config, report reporter) {
	det := cfg.determinism(pkg.Path)
	for _, file := range pkg.Files {
		if det {
			for _, imp := range file.Imports {
				switch imp.Path.Value {
				case `"math/rand"`, `"math/rand/v2"`:
					report(pkg, RuleDeterminism, imp.Pos(),
						"import of %s in a simulation package; derive randomness from internal/rng so runs are reproducible", imp.Path.Value)
				}
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if det && !cfg.allowGo(pkg.Path) {
					report(pkg, RuleGoroutine, n.Pos(),
						"go statement in a simulation package; internal/exp is the only sanctioned concurrency layer")
				}
			case *ast.SelectorExpr:
				if det {
					checkForbiddenRef(pkg, n, report)
				}
			case *ast.RangeStmt:
				if cfg.mapRange(pkg.Path) {
					p.checkMapRange(pkg, n, file, report)
				}
			}
			return true
		})
	}
}

// forbiddenRefs maps (package, name) to the sanctioned replacement.
var forbiddenRefs = map[[2]string]string{
	{"time", "Now"}:   "simulated cycles come from the event queue",
	{"time", "Since"}: "simulated cycles come from the event queue",
	{"os", "Getenv"}:  "configuration must flow through internal/config",
}

func checkForbiddenRef(pkg *Package, sel *ast.SelectorExpr, report reporter) {
	obj, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return
	}
	if why, bad := forbiddenRefs[[2]string{obj.Pkg().Path(), obj.Name()}]; bad {
		report(pkg, RuleDeterminism, sel.Pos(),
			"%s.%s in a simulation package; %s", obj.Pkg().Name(), obj.Name(), why)
	}
}

// checkMapRange flags `range m` over a map whose body reaches an
// order-sensitive sink. The sanctioned escape is collecting the keys (or
// values) into a slice that is later sorted in the same function.
func (p *Program) checkMapRange(pkg *Package, rng *ast.RangeStmt, file *ast.File, report reporter) {
	t := pkg.Info.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	if p.isSortedCollection(pkg, rng, file) {
		return
	}

	outer := func(id *ast.Ident) bool {
		obj := pkg.Info.Uses[id]
		if obj == nil {
			obj = pkg.Info.Defs[id]
		}
		v, ok := obj.(*types.Var)
		if !ok || v.Pos() == token.NoPos {
			return false
		}
		return v.Pos() < rng.Pos() || v.Pos() > rng.End()
	}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				root := rootIdent(lhs)
				if root == nil || !outer(root) {
					continue
				}
				if _, isIdent := ast.Unparen(lhs).(*ast.Ident); !isIdent {
					// Keyed stores (m2[k] = v, s.field through an outer
					// struct) are order-independent per element; only bare
					// variable accumulation is order-sensitive.
					if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
						continue
					}
					report(pkg, RuleMapRange, n.Pos(),
						"map iteration accumulates into %s with %s; fold in a fixed order (sort the keys first)", root.Name, n.Tok)
					continue
				}
				switch {
				case n.Tok != token.ASSIGN && n.Tok != token.DEFINE:
					report(pkg, RuleMapRange, n.Pos(),
						"map iteration accumulates into %s with %s; fold in a fixed order (sort the keys first)", root.Name, n.Tok)
				case i < len(n.Rhs) && isAppendTo(pkg.Info, n.Rhs[i], root):
					report(pkg, RuleMapRange, n.Pos(),
						"map iteration appends to %s in map order; collect and sort the keys first", root.Name)
				case n.Tok == token.ASSIGN:
					report(pkg, RuleMapRange, n.Pos(),
						"map iteration assigns %s in map order; the surviving value depends on iteration order", root.Name)
				}
			}
		case *ast.IncDecStmt:
			if root := rootIdent(n.X); root != nil && outer(root) {
				if _, isIdent := ast.Unparen(n.X).(*ast.Ident); isIdent {
					report(pkg, RuleMapRange, n.Pos(),
						"map iteration accumulates into %s with %s; fold in a fixed order (sort the keys first)", root.Name, n.Tok)
				}
			}
		case *ast.CallExpr:
			if isPrintCall(pkg.Info, n) {
				report(pkg, RuleMapRange, n.Pos(),
					"map iteration formats output in map order; collect and sort the keys first")
			}
		}
		return true
	})
}

// isAppendTo reports whether expr is append(dst, ...) for the same dst.
func isAppendTo(info *types.Info, expr ast.Expr, dst *ast.Ident) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok || builtinName(info, call) != "append" || len(call.Args) == 0 {
		return false
	}
	root := rootIdent(call.Args[0])
	return root != nil && info.Uses[root] != nil && info.Uses[root] == info.Uses[dst]
}

// isPrintCall reports whether call formats or prints (fmt.*, builtin
// print/println): the classic way map order escapes into output.
func isPrintCall(info *types.Info, call *ast.CallExpr) bool {
	if b := builtinName(info, call); b == "print" || b == "println" {
		return true
	}
	fn := funcFor(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt"
}

// isSortedCollection reports whether rng only collects values into outer
// slices — directly or under if conditions — each of which is sorted (a
// call into sort or slices mentioning it) after the loop in the same
// enclosing function.
func (p *Program) isSortedCollection(pkg *Package, rng *ast.RangeStmt, file *ast.File) bool {
	var collected []*ast.Ident
	var collectOnly func(stmts []ast.Stmt) bool
	collectOnly = func(stmts []ast.Stmt) bool {
		for _, stmt := range stmts {
			switch s := stmt.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
					return false
				}
				dst, ok := ast.Unparen(s.Lhs[0]).(*ast.Ident)
				if !ok || !isAppendTo(pkg.Info, s.Rhs[0], dst) {
					return false
				}
				collected = append(collected, dst)
			case *ast.IfStmt:
				if s.Init != nil || !collectOnly(s.Body.List) {
					return false
				}
				switch e := s.Else.(type) {
				case nil:
				case *ast.BlockStmt:
					if !collectOnly(e.List) {
						return false
					}
				default:
					return false
				}
			default:
				return false
			}
		}
		return true
	}
	if !collectOnly(rng.Body.List) {
		return false
	}
	if len(collected) == 0 {
		return false
	}

	// Find the enclosing function body to scan for a later sort call.
	var body *ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		var b *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			b = fn.Body
		case *ast.FuncLit:
			b = fn.Body
		}
		if b != nil && b.Pos() <= rng.Pos() && rng.End() <= b.End() {
			body = b // keep innermost
		}
		return true
	})
	if body == nil {
		return false
	}

	for _, dst := range collected {
		obj := pkg.Info.Uses[dst]
		sorted := false
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || call.Pos() < rng.End() {
				return true
			}
			fn := funcFor(pkg.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if path := fn.Pkg().Path(); path != "sort" && path != "slices" {
				return true
			}
			for _, arg := range call.Args {
				if root := rootIdent(arg); root != nil && pkg.Info.Uses[root] == obj {
					sorted = true
				}
			}
			return true
		})
		if !sorted {
			return false
		}
	}
	return true
}
