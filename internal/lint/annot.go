package lint

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// Annotation grammar for the semantic rule families (bytes, timeflow).
// All annotations are doc comments on function declarations, except
// //bear:clock on a struct field (a trailing line comment) and
// //bear:deferred (a line comment at an enqueue call site).
//
//	//bear:enqueue read|write bytes=<i>
//	    marks a function that enqueues a DRAM transfer; argument <i> is the
//	    byte count. Callers must attribute those bytes (bytes rule); the
//	    annotated wrapper itself is exempt — it IS the boundary.
//
//	//bear:bytes <Category> bytes=<i>
//	//bear:bytes arg=<j>     bytes=<i>
//	    marks an attribution helper: argument <i> carries the byte count,
//	    landing in the named bloat category (or the category constant
//	    passed as argument <j>).
//
//	//bear:clock <param>[,<param>...] [result[=<k>]]
//	    on a function: the named parameters are trusted simulated-time
//	    values inside the body and are checked at every call site
//	    (timeflow rule); `result` marks return value <k> (default 0) as a
//	    trusted clock. On a struct field (trailing comment): reads of the
//	    field — and of its elements, if indexable — are trusted.
//
//	//bear:deferred <Category>
//	    at an enqueue call site: the bytes are attributed at completion
//	    time (inside the transaction callback), not on this path; the named
//	    category documents where they land and must be attributed somewhere
//	    in the same package.

type enqueueSpec struct {
	kind     string // "read" or "write"
	bytesArg int
}

type attrSpec struct {
	category string // fixed category name, "" when catArg >= 0
	catArg   int    // index of the category argument, -1 when fixed
	bytesArg int
}

type clockSpec struct {
	params  map[string]bool
	results map[int]bool
}

// annotErr is a malformed annotation, reported under the rule it belongs to.
type annotErr struct {
	pos  token.Pos
	rule string
	msg  string
}

// parseAnnotations extracts the semantic annotations from a function's doc
// comment into s, recording malformed ones as errors.
func parseAnnotations(fd *ast.FuncDecl, s *fnSummary) {
	if fd.Doc == nil {
		return
	}
	for _, c := range fd.Doc.List {
		switch {
		case strings.HasPrefix(c.Text, "//bear:enqueue"):
			s.enqueue = parseEnqueue(strings.TrimPrefix(c.Text, "//bear:enqueue"), c.Pos(), s)
		case strings.HasPrefix(c.Text, "//bear:bytes"):
			s.attr = parseAttr(strings.TrimPrefix(c.Text, "//bear:bytes"), c.Pos(), s)
		case strings.HasPrefix(c.Text, "//bear:clock"):
			s.clock = parseClock(strings.TrimPrefix(c.Text, "//bear:clock"), c.Pos(), s)
		}
	}
}

func annotFields(text string) []string {
	return strings.FieldsFunc(text, func(r rune) bool {
		return r == ' ' || r == '\t' || r == ','
	})
}

func parseEnqueue(text string, pos token.Pos, s *fnSummary) *enqueueSpec {
	fields := annotFields(text)
	spec := &enqueueSpec{bytesArg: -1}
	for _, f := range fields {
		switch {
		case f == "read" || f == "write":
			spec.kind = f
		case strings.HasPrefix(f, "bytes="):
			n, err := strconv.Atoi(f[len("bytes="):])
			if err != nil || n < 0 {
				s.annotErrs = append(s.annotErrs, annotErr{pos, RuleBytes,
					"malformed //bear:enqueue: bad bytes= index " + strconv.Quote(f)})
				return nil
			}
			spec.bytesArg = n
		default:
			s.annotErrs = append(s.annotErrs, annotErr{pos, RuleBytes,
				"malformed //bear:enqueue: unknown token " + strconv.Quote(f)})
			return nil
		}
	}
	if spec.kind == "" || spec.bytesArg < 0 {
		s.annotErrs = append(s.annotErrs, annotErr{pos, RuleBytes,
			"malformed //bear:enqueue: want `//bear:enqueue read|write bytes=<i>`"})
		return nil
	}
	return spec
}

func parseAttr(text string, pos token.Pos, s *fnSummary) *attrSpec {
	fields := annotFields(text)
	spec := &attrSpec{catArg: -1, bytesArg: -1}
	for _, f := range fields {
		switch {
		case strings.HasPrefix(f, "arg="):
			n, err := strconv.Atoi(f[len("arg="):])
			if err != nil || n < 0 {
				s.annotErrs = append(s.annotErrs, annotErr{pos, RuleBytes,
					"malformed //bear:bytes: bad arg= index " + strconv.Quote(f)})
				return nil
			}
			spec.catArg = n
		case strings.HasPrefix(f, "bytes="):
			n, err := strconv.Atoi(f[len("bytes="):])
			if err != nil || n < 0 {
				s.annotErrs = append(s.annotErrs, annotErr{pos, RuleBytes,
					"malformed //bear:bytes: bad bytes= index " + strconv.Quote(f)})
				return nil
			}
			spec.bytesArg = n
		default:
			if spec.category != "" {
				s.annotErrs = append(s.annotErrs, annotErr{pos, RuleBytes,
					"malformed //bear:bytes: two categories named"})
				return nil
			}
			spec.category = f
		}
	}
	if spec.bytesArg < 0 || (spec.category == "") == (spec.catArg < 0) {
		s.annotErrs = append(s.annotErrs, annotErr{pos, RuleBytes,
			"malformed //bear:bytes: want `//bear:bytes <Category>|arg=<j> bytes=<i>`"})
		return nil
	}
	return spec
}

func parseClock(text string, pos token.Pos, s *fnSummary) *clockSpec {
	fields := annotFields(text)
	spec := &clockSpec{params: map[string]bool{}, results: map[int]bool{}}
	for _, f := range fields {
		switch {
		case f == "result":
			spec.results[0] = true
		case strings.HasPrefix(f, "result="):
			n, err := strconv.Atoi(f[len("result="):])
			if err != nil || n < 0 {
				s.annotErrs = append(s.annotErrs, annotErr{pos, RuleTimeflow,
					"malformed //bear:clock: bad result index " + strconv.Quote(f)})
				return nil
			}
			spec.results[n] = true
		default:
			spec.params[f] = true
		}
	}
	if len(spec.params) == 0 && len(spec.results) == 0 {
		s.annotErrs = append(s.annotErrs, annotErr{pos, RuleTimeflow,
			"malformed //bear:clock: name at least one parameter or result"})
		return nil
	}
	return spec
}

// collectDeferred gathers //bear:deferred line comments: file -> line ->
// category. Like //bear:nolint, a comment covers its own line and the line
// below, so it can trail the enqueue call or sit on its own line above it.
func collectDeferred(fset *token.FileSet, files []*ast.File) map[string]map[int]string {
	out := map[string]map[int]string{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//bear:deferred")
				if !ok {
					continue
				}
				for _, sep := range []string{"—", "--"} {
					if i := strings.Index(text, sep); i >= 0 {
						text = text[:i]
					}
				}
				cat := strings.TrimSpace(text)
				pos := fset.Position(c.Pos())
				byLine := out[pos.Filename]
				if byLine == nil {
					byLine = map[int]string{}
					out[pos.Filename] = byLine
				}
				byLine[pos.Line] = cat
				byLine[pos.Line+1] = cat
			}
		}
	}
	return out
}

// collectClockFields gathers struct fields carrying a trailing //bear:clock
// comment, keyed "pkgpath.Struct.Field" (string keys, because the source
// importer materialises distinct type objects per importing package).
func collectClockFields(pkg *Package) map[string]bool {
	out := map[string]bool{}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, f := range st.Fields.List {
					if !fieldHasClock(f) {
						continue
					}
					for _, name := range f.Names {
						out[pkg.Path+"."+ts.Name.Name+"."+name.Name] = true
					}
				}
			}
		}
	}
	return out
}

func fieldHasClock(f *ast.Field) bool {
	for _, cg := range []*ast.CommentGroup{f.Comment, f.Doc} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if c.Text == "//bear:clock" || strings.HasPrefix(c.Text, "//bear:clock ") {
				return true
			}
		}
	}
	return false
}
