package lint

import (
	"bufio"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

// The fixture harness: every file under testdata/src carries
// `// want "regex"` comments naming the diagnostics the analyzer must
// produce on that line (matched against "rule: message"). Diagnostics
// without a want, and wants without a diagnostic, both fail the test.

// testConfig mirrors the repository config's shape: fix/exempt stands in
// for driver packages (cmd/, examples/), fix/gook for the sanctioned
// concurrency layer (internal/exp).
func testConfig() Config {
	return Config{
		Determinism:    func(p string) bool { return p != "fix/exempt" },
		AllowGo:        func(p string) bool { return p == "fix/gook" },
		MapRange:       func(p string) bool { return p != "fix/exempt" },
		InvariantPanic: func(p string) bool { return p == "fix/inv" },
		Bytes:          func(p string) bool { return p == "fix/bytes" },
		Timeflow:       func(p string) bool { return p == "fix/timeflow" },
		StatsFields:    func(p string) bool { return p == "fix/statsrule" },
	}
}

type expectation struct {
	file string // base name
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

var wantArgRe = regexp.MustCompile(`// want "([^"]+)"`)

func TestFixtures(t *testing.T) {
	root := filepath.Join("testdata", "src")
	dirs, err := FindPackageDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Load("fix", root, dirs)
	if err != nil {
		t.Fatal(err)
	}
	diags := prog.Run(testConfig())
	wants := collectWants(t, dirs)

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.hit || w.file != filepath.Base(d.Pos.Filename) || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Rule + ": " + d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

func collectWants(t *testing.T, dirs []string) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, dir := range dirs {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
				continue
			}
			path := filepath.Join(dir, e.Name())
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			sc := bufio.NewScanner(f)
			for line := 1; sc.Scan(); line++ {
				for _, m := range wantArgRe.FindAllStringSubmatch(sc.Text(), -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regex %q: %v", path, line, m[1], err)
					}
					wants = append(wants, &expectation{
						file: e.Name(), line: line, re: re, raw: m[1],
					})
				}
			}
			if err := sc.Err(); err != nil {
				t.Fatal(err)
			}
			f.Close()
		}
	}
	if len(wants) == 0 {
		t.Fatal("no want expectations found under testdata/src")
	}
	return wants
}

// TestNolintUnknownRuleStillSuppressesOnlyNamed pins the suppression
// granularity: a nolint naming one rule must not swallow another family's
// diagnostic on the same line. (The fixtures cover the positive direction.)
func TestSuppressionIsRuleScoped(t *testing.T) {
	pkg := &Package{nolint: collectT{
		"f.go": {10: {"maprange": true}},
	}}
	pos := token.Position{Filename: "f.go", Line: 10}
	if !pkg.suppressed(pos, "maprange") {
		t.Error("maprange should be suppressed on f.go:10")
	}
	if pkg.suppressed(pos, "hotpath") {
		t.Error("hotpath must not be suppressed by a maprange nolint")
	}
	if pkg.suppressed(token.Position{Filename: "f.go", Line: 11}, "maprange") {
		t.Error("line 11 has no suppression entry of its own in this fixture")
	}
}
