package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMutationCatchesDroppedAttribution is the smoke test for the bytes
// rule's end-to-end value: delete one real byte attribution from a throwaway
// copy of internal/dramcache/engine.go and assert simlint notices. A
// pristine copy is analyzed the same way as a control, proving the signal
// comes from the mutation and not from the harness.
//
// The copies live under testdata (inside the module), because the source
// importer resolves their `bear/...` imports through go list, which must
// find the enclosing module. testdata directories are invisible to the
// repository lint run itself.
func TestMutationCatchesDroppedAttribution(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks internal/dramcache twice; skipped in -short")
	}

	const dropped = "AddBytes(stats.MissFill"
	pristine := copyDramcache(t, "pristine", "")
	mutated := copyDramcache(t, "mutated", dropped)

	for _, tc := range []struct {
		name, dir string
		wantLeak  bool
	}{
		{"pristine", pristine, false},
		{"mutated", mutated, true},
	} {
		path := "bear/internal/lint/" + tc.dir // unique per copy
		prog, err := LoadSpecs([]PackageSpec{
			{Dir: filepath.Join("..", "stats"), Path: "bear/internal/stats"},
			{Dir: tc.dir, Path: path},
		})
		if err != nil {
			t.Fatalf("%s: load: %v", tc.name, err)
		}
		cfg := Config{Bytes: func(p string) bool { return p == path }}
		var leaks []string
		for _, d := range prog.Run(cfg) {
			if d.Rule == RuleBytes {
				leaks = append(leaks, d.String())
			}
		}
		if tc.wantLeak {
			found := false
			for _, l := range leaks {
				if strings.Contains(l, "engine.go") && strings.Contains(l, "without attributing") {
					found = true
				}
			}
			if !found {
				t.Errorf("mutated copy (dropped %q): want an unattributed-transfer diagnostic in engine.go, got %q", dropped, leaks)
			}
		} else if len(leaks) > 0 {
			t.Errorf("pristine copy: unexpected bytes diagnostics: %q", leaks)
		}
	}
}

// copyDramcache copies internal/dramcache's non-test sources into a fresh
// directory under testdata, deleting any line containing drop (when
// non-empty) from engine.go. It returns the directory, cleaned up with the
// test.
func copyDramcache(t *testing.T, label, drop string) string {
	t.Helper()
	dir, err := os.MkdirTemp("testdata", "mutation-"+label+"-*")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })

	src := filepath.Join("..", "dramcache")
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	droppedAny := false
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(src, name))
		if err != nil {
			t.Fatal(err)
		}
		if drop != "" && name == "engine.go" {
			var kept []string
			for _, line := range strings.Split(string(b), "\n") {
				if strings.Contains(line, drop) {
					droppedAny = true
					continue
				}
				kept = append(kept, line)
			}
			b = []byte(strings.Join(kept, "\n"))
		}
		if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if drop != "" && !droppedAny {
		t.Fatalf("mutation target %q not found in engine.go; update the test", drop)
	}
	return dir
}
