// Package lint implements simlint, the repository's static analyzer. It
// enforces, at analysis time, the invariants the simulator's correctness
// rests on and that earlier work established by hand:
//
//   - determinism: simulation packages must not read wall-clock time,
//     ambient randomness or the environment, must not iterate maps into
//     order-sensitive sinks, and must not spawn goroutines outside the
//     sanctioned concurrency layer (internal/exp).
//   - hot-path alloc-freedom: functions annotated //bear:hotpath must not
//     contain allocating constructs (capturing closures, fmt/errors
//     formatting, map literals, appends to function-local slices) and must
//     not call project functions that transitively do.
//   - pool discipline: objects obtained from sync.Pool.Get or from a
//     //bear:acquire freelist getter must be released or handed off on
//     every return path.
//   - engine contracts: experiment registrations use unique string-literal
//     ids, and Controller compositions that set a tag store also set a
//     Layout.
//   - typed invariants: engine packages must not panic with bare strings;
//     they raise typed errors (fault.Invariantf) that the fault-isolation
//     recover in internal/exp can classify.
//   - byte attribution: every DRAM transfer enqueued through a
//     //bear:enqueue wrapper flows, on every path, into exactly one bloat
//     category via a //bear:bytes attribution (or //bear:deferred for
//     completion-time attribution).
//   - event-time monotonicity: arguments reaching //bear:clock parameters
//     (event scheduling sites) are provably >= the current simulated time.
//   - stats census: every field of the stats structs is both written by a
//     simulation path and consumed by an experiment or report.
//
// The path-sensitive rules (pool, bytes, timeflow) run on a shared
// intraprocedural CFG (cfg.go) and branch-merging worklist solver
// (dataflow.go).
//
// The analyzer is built on the standard library only (go/parser, go/ast,
// go/types with go/importer's source mode); see cmd/simlint for the CLI and
// ARCHITECTURE.md ("Enforced invariants") for the rule catalogue, the
// annotation grammar and the //bear:nolint escape hatch.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Rule names, used in diagnostics and matched by //bear:nolint comments.
const (
	RuleDeterminism = "determinism" // wall clock, ambient randomness, environment
	RuleMapRange    = "maprange"    // map iteration into an order-sensitive sink
	RuleGoroutine   = "goroutine"   // go statement outside the sanctioned layer
	RuleHotPath     = "hotpath"     // allocation in a //bear:hotpath function
	RulePool        = "pool"        // pooled object dropped on a return path
	RuleDupID       = "dupid"       // duplicate or non-literal experiment id
	RuleLayout      = "layout"      // Controller composition without a Layout
	RuleGran        = "gran"        // Layout literal without a declared Granularity
	RuleInvariant   = "invariant"   // bare string panic in an engine package
	RuleBytes       = "bytes"       // enqueued DRAM bytes not attributed to a bloat category
	RuleTimeflow    = "timeflow"    // event scheduled at a time not provably >= now
	RuleStats       = "stats"       // stats field never written or never consumed
)

// Diagnostic is one finding, positioned for file:line reporting.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// Config selects which rule families apply to which packages, keyed by
// import path. The zero value applies every rule everywhere.
type Config struct {
	// Determinism gates the wall-clock/randomness/environment rules and the
	// goroutine rule. Nil means every package.
	Determinism func(pkgPath string) bool
	// AllowGo exempts a package from the goroutine rule even when
	// Determinism selects it (internal/exp, the worker-pool layer).
	AllowGo func(pkgPath string) bool
	// MapRange gates the map-iteration rule. Nil means every package.
	MapRange func(pkgPath string) bool
	// InvariantPanic gates the bare-string-panic rule. Unlike the other
	// gates, nil disables the rule entirely: it is an engine-package
	// contract (typed invariant errors that recover layers can classify),
	// not a repository-wide one, so it applies only where the caller
	// opts packages in.
	InvariantPanic func(pkgPath string) bool
	// Bytes gates the byte-attribution rule (every enqueued DRAM transfer
	// lands in exactly one bloat category). Nil disables: it is an
	// engine-package contract, opt-in like InvariantPanic.
	Bytes func(pkgPath string) bool
	// Timeflow gates the event-time monotonicity rule (arguments reaching
	// annotated schedule sites must be provably >= now). Nil disables.
	Timeflow func(pkgPath string) bool
	// StatsFields selects the packages whose struct fields the stats rule
	// censuses: every field must be written somewhere and read somewhere in
	// the analyzed program. Nil disables; callers should enable it only on
	// whole-module runs, where "nowhere" means something.
	StatsFields func(pkgPath string) bool
}

func (c Config) determinism(path string) bool {
	return c.Determinism == nil || c.Determinism(path)
}

func (c Config) allowGo(path string) bool {
	return c.AllowGo != nil && c.AllowGo(path)
}

func (c Config) mapRange(path string) bool {
	return c.MapRange == nil || c.MapRange(path)
}

func (c Config) invariantPanic(path string) bool {
	return c.InvariantPanic != nil && c.InvariantPanic(path)
}

func (c Config) bytes(path string) bool {
	return c.Bytes != nil && c.Bytes(path)
}

func (c Config) timeflow(path string) bool {
	return c.Timeflow != nil && c.Timeflow(path)
}

func (c Config) statsFields(path string) bool {
	return c.StatsFields != nil && c.StatsFields(path)
}

// Package is one parsed and type-checked package under analysis.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// nolint maps file -> line -> suppressed rule set ("" suppresses all).
	nolint map[string]map[int]map[string]bool
	// deferred maps file -> line -> bloat category for //bear:deferred
	// enqueue sites (bytes attributed at completion time; see bytes.go).
	deferred map[string]map[int]string
}

// Program is the full set of packages under analysis, sharing one FileSet
// so cross-package positions compare and print uniformly.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package
}

// Load parses and type-checks the packages in dirs. module is the import
// path of root (the directory containing go.mod, or the fixture root);
// each dir's import path is derived from its location under root.
// Dependencies — standard library and project packages alike — are resolved
// from source via go/importer, so nothing needs to be pre-compiled.
func Load(module, root string, dirs []string) (*Program, error) {
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	prog := &Program{Fset: fset}

	for _, dir := range dirs {
		pkg, err := loadPackage(fset, imp, module, root, dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			prog.Pkgs = append(prog.Pkgs, pkg)
		}
	}
	return prog, nil
}

// PackageSpec names one package to load: the directory holding its sources
// and the import path to check it under. Used by LoadSpecs when the path
// cannot be derived from a module root — e.g. the mutation smoke test,
// which loads a throwaway copy of a real package next to the original.
type PackageSpec struct {
	Dir  string
	Path string
}

// LoadSpecs parses and type-checks exactly the named packages into one
// Program (one shared FileSet, one source importer).
func LoadSpecs(specs []PackageSpec) (*Program, error) {
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	prog := &Program{Fset: fset}
	for _, sp := range specs {
		pkg, err := loadPackageAt(fset, imp, sp.Path, sp.Dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			prog.Pkgs = append(prog.Pkgs, pkg)
		}
	}
	return prog, nil
}

func loadPackage(fset *token.FileSet, imp types.Importer, module, root, dir string) (*Package, error) {
	path, err := importPath(module, root, dir)
	if err != nil {
		return nil, err
	}
	return loadPackageAt(fset, imp, path, dir)
}

func loadPackageAt(fset *token.FileSet, imp types.Importer, path, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var hard []error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if te, ok := err.(types.Error); ok && te.Soft {
				return // e.g. "declared and not used" in fixtures
			}
			hard = append(hard, err)
		},
	}
	tpkg, _ := conf.Check(path, fset, files, info)
	if len(hard) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, hard[0])
	}

	return &Package{
		Path:     path,
		Dir:      dir,
		Files:    files,
		Types:    tpkg,
		Info:     info,
		nolint:   collectNolint(fset, files),
		deferred: collectDeferred(fset, files),
	}, nil
}

func importPath(module, root, dir string) (string, error) {
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return module, nil
	}
	return module + "/" + filepath.ToSlash(rel), nil
}

// FindPackageDirs walks root collecting directories that contain non-test
// Go files, skipping testdata, VCS metadata and hidden/underscore dirs.
func FindPackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.Walk(root, func(path string, fi os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if fi.IsDir() {
			name := fi.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	sort.Strings(dirs)
	return dirs, err
}

// Run applies every check family and returns the surviving diagnostics in
// position order.
func (p *Program) Run(cfg Config) []Diagnostic {
	var diags []Diagnostic
	report := func(pkg *Package, rule string, pos token.Pos, format string, args ...any) {
		position := p.Fset.Position(pos)
		if pkg.suppressed(position, rule) {
			return
		}
		diags = append(diags, Diagnostic{Pos: position, Rule: rule, Message: fmt.Sprintf(format, args...)})
	}

	sums := p.summarize()
	clockFields := map[string]bool{}
	for _, pkg := range p.Pkgs {
		for k := range collectClockFields(pkg) {
			clockFields[k] = true
		}
	}
	for _, pkg := range p.Pkgs {
		p.checkDeterminism(pkg, cfg, report)
		p.checkContracts(pkg, report)
		p.checkPools(pkg, sums, report)
		p.checkInvariantPanics(pkg, cfg, report)
		if cfg.bytes(pkg.Path) {
			p.checkBytes(pkg, sums, report)
		}
		if cfg.timeflow(pkg.Path) {
			p.checkTimeflow(pkg, sums, clockFields, report)
		}
	}
	p.checkHotPaths(sums, report)
	p.checkStatsFields(cfg, report)
	for _, s := range sums {
		for _, e := range s.annotErrs {
			report(s.pkg, e.rule, e.pos, "%s", e.msg)
		}
	}

	// Sort by (file, line, column, rule, message) so output is byte-stable
	// across the source importer's package-walk order.
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if diags[i].Rule != diags[j].Rule {
			return diags[i].Rule < diags[j].Rule
		}
		return diags[i].Message < diags[j].Message
	})
	return diags
}

// collectNolint gathers //bear:nolint comments. A comment suppresses the
// named rules (comma-separated) on its own line and the line below, so it
// can trail the flagged statement or sit on its own line above it:
//
//	//bear:nolint maprange — keys feed an order-insensitive set
type collectT = map[string]map[int]map[string]bool

func collectNolint(fset *token.FileSet, files []*ast.File) collectT {
	out := collectT{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//bear:nolint")
				if !ok {
					continue
				}
				// Everything after an em/double dash is rationale.
				for _, sep := range []string{"—", "--"} {
					if i := strings.Index(text, sep); i >= 0 {
						text = text[:i]
					}
				}
				rules := map[string]bool{}
				for _, r := range strings.FieldsFunc(text, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
					rules[r] = true
				}
				pos := fset.Position(c.Pos())
				byLine := out[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					out[pos.Filename] = byLine
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					if byLine[line] == nil {
						byLine[line] = map[string]bool{}
					}
					for r := range rules {
						byLine[line][r] = true
					}
				}
			}
		}
	}
	return out
}

func (pkg *Package) suppressed(pos token.Position, rule string) bool {
	byLine := pkg.nolint[pos.Filename]
	if byLine == nil {
		return false
	}
	return byLine[pos.Line][rule]
}

// reporter is the shared diagnostic sink passed to check families.
type reporter func(pkg *Package, rule string, pos token.Pos, format string, args ...any)

// funcFor returns the *types.Func a call expression statically resolves to,
// or nil for builtins, conversions, function values and interface methods.
func funcFor(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
		return nil // dynamic dispatch: unresolvable statically
	}
	return fn
}

// builtinName returns the name of the builtin a call invokes ("append",
// "make", "panic", ...), or "".
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// rootIdent returns the base identifier of expr after stripping selectors,
// indexes, stars and parens: rootIdent(a.b[i].c) == a.
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}
