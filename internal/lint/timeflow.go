package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The timeflow rule proves event-time monotonicity: an argument reaching a
// //bear:clock-checked parameter of a schedule function (event.Queue.At,
// the dram enqueue path) must be provably >= the current simulated time.
// The calendar queue silently misfiles events scheduled in the past — the
// bug corrupts results instead of crashing, which is exactly why it gets a
// static rule.
//
// The analysis is a must-dataflow over the shared CFG: the state is the set
// of expressions known to be clock-safe on every path (merged by
// intersection), seeded from the function's trusted parameters (explicit
// //bear:clock names, plus any unsigned parameter named `now` or `t` — the
// repository-wide convention for the current cycle). Safety composes
// structurally:
//
//   - a trusted parameter, or a local the analysis saw assigned from a safe
//     expression (reassignment from an unsafe one revokes it);
//   - a read of a //bear:clock struct field (event.Queue.now), including
//     elements of an indexable annotated field;
//   - a call whose //bear:clock annotation marks the result, or any
//     zero-argument method named Now;
//   - safe + unsigned (time only moves forward), max/max64 with at least
//     one safe operand, parenthesization and conversions;
//   - branch refinement: on the taken edge of `x > safe` / `x >= safe`
//     (and the not-taken edge of the mirrored comparisons), x becomes safe.
//
// Everything else is tainted — in particular clock subtractions and raw
// integer literals, the two historical ways to schedule into the past.
// Function literals are not followed: their bodies execute under a
// different clock than the point of creation.

// tfEnv is the set of clock-safe expression keys (types.ExprString form).
type tfEnv = map[string]bool

type timeFlow struct {
	pkg         *Package
	sums        map[string]*fnSummary
	clockFields map[string]bool
	report      reporter
	fd          *ast.FuncDecl
	reported    map[token.Pos]bool
}

func (p *Program) checkTimeflow(pkg *Package, sums map[string]*fnSummary, clockFields map[string]bool, report reporter) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			s := p.summaryFor(pkg, fd, sums)
			if s == nil {
				continue
			}
			tf := &timeFlow{pkg: pkg, sums: sums, clockFields: clockFields,
				report: report, fd: fd, reported: map[token.Pos]bool{}}
			c := buildCFG(fd, pkg.Info)
			in := solve[tfEnv](c, tf)
			replay[tfEnv](c, tf, in)
		}
	}
}

// entry seeds the state with the function's trusted clock parameters.
func (tf *timeFlow) entry() tfEnv {
	e := tfEnv{}
	s := tf.sums[tf.fullName()]
	var spec *clockSpec
	if s != nil {
		spec = s.clock
	}
	if tf.fd.Type.Params == nil {
		return e
	}
	for _, field := range tf.fd.Type.Params.List {
		for _, name := range field.Names {
			explicit := spec != nil && spec.params[name.Name]
			implicit := (name.Name == "now" || name.Name == "t") && tf.unsignedIdent(name)
			if explicit || implicit {
				e[name.Name] = true
			}
		}
	}
	return e
}

func (tf *timeFlow) fullName() string {
	if obj, ok := tf.pkg.Info.Defs[tf.fd.Name].(*types.Func); ok {
		return obj.FullName()
	}
	return ""
}

func (tf *timeFlow) unsignedIdent(id *ast.Ident) bool {
	v, ok := tf.pkg.Info.Defs[id].(*types.Var)
	if !ok {
		return false
	}
	return isUnsigned(v.Type())
}

func isUnsigned(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsUnsigned != 0
}

func (tf *timeFlow) clone(e tfEnv) tfEnv {
	out := make(tfEnv, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

// merge intersects: a key is safe only if safe on every incoming path.
func (tf *timeFlow) merge(dst, src tfEnv) bool {
	changed := false
	for k := range dst {
		if !src[k] {
			delete(dst, k)
			changed = true //bear:nolint maprange — set intersection per independent key
		}
	}
	return changed
}

// refine adds keys proven safe by the branch condition along this edge.
func (tf *timeFlow) refine(e tfEnv, cond ast.Expr, taken bool) {
	switch c := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			if taken {
				tf.refine(e, c.X, true)
				tf.refine(e, c.Y, true)
			}
		case token.LOR:
			if !taken {
				tf.refine(e, c.X, false)
				tf.refine(e, c.Y, false)
			}
		case token.GTR, token.GEQ: // x > safe (taken) / x >= safe (taken)
			if taken {
				tf.refineCmp(e, c.X, c.Y)
			} else { // !(x > safe): safe >= x proves nothing about x
				tf.refineCmp(e, c.Y, c.X)
			}
		case token.LSS, token.LEQ: // safe < x (taken) proves x
			if taken {
				tf.refineCmp(e, c.Y, c.X)
			} else {
				tf.refineCmp(e, c.X, c.Y)
			}
		case token.EQL:
			if taken {
				tf.refineCmp(e, c.X, c.Y)
				tf.refineCmp(e, c.Y, c.X)
			}
		}
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			tf.refine(e, c.X, !taken)
		}
	}
}

// refineCmp marks x safe when it is proven >= a safe bound.
func (tf *timeFlow) refineCmp(e tfEnv, x, bound ast.Expr) {
	if !tf.safe(bound, e) {
		return
	}
	if k, ok := tf.keyFor(x); ok {
		e[k] = true
	}
}

// keyFor returns the state key for an assignable expression (identifier or
// field selector chain).
func (tf *timeFlow) keyFor(x ast.Expr) (string, bool) {
	switch e := ast.Unparen(x).(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		return types.ExprString(e), true
	}
	return "", false
}

func (tf *timeFlow) transfer(e tfEnv, n ast.Node, report bool) {
	// Check every schedule call in the node before modelling assignments
	// (arguments evaluate under the pre-assignment state, and Go evaluates
	// RHS before LHS writes).
	tf.checkCalls(n, e, report)

	switch s := n.(type) {
	case *ast.AssignStmt:
		tf.assign(s, e)
	case *ast.IncDecStmt:
		if k, ok := tf.keyFor(s.X); ok && s.Tok == token.DEC {
			delete(e, k)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) && tf.safe(vs.Values[i], e) {
						e[name.Name] = true
					} else {
						delete(e, name.Name)
					}
				}
			}
		}
	case *ast.RangeStmt:
		// per-iteration bindings hold arbitrary values
		for _, x := range []ast.Expr{s.Key, s.Value} {
			if x != nil {
				if k, ok := tf.keyFor(x); ok {
					delete(e, k)
				}
			}
		}
	}
}

func (tf *timeFlow) assign(s *ast.AssignStmt, e tfEnv) {
	// Tuple form: a, b := f() with //bear:clock result=<k> on f.
	if len(s.Lhs) > 1 && len(s.Rhs) == 1 {
		var results map[int]bool
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			if cs := tf.clockSpecOf(call); cs != nil {
				results = cs.results
			}
		}
		for i, lhs := range s.Lhs {
			k, ok := tf.keyFor(lhs)
			if !ok {
				continue
			}
			if results[i] {
				e[k] = true
			} else {
				delete(e, k)
			}
		}
		return
	}
	for i, lhs := range s.Lhs {
		k, ok := tf.keyFor(lhs)
		if !ok {
			continue
		}
		switch s.Tok {
		case token.ASSIGN, token.DEFINE:
			if i < len(s.Rhs) && tf.safe(s.Rhs[i], e) {
				e[k] = true
			} else {
				delete(e, k)
			}
		case token.ADD_ASSIGN:
			// x += unsigned keeps x >= its old value; anything else revokes.
			if !(e[k] && i < len(s.Rhs) && isUnsigned(tf.pkg.Info.TypeOf(s.Rhs[i]))) {
				delete(e, k)
			}
		default:
			delete(e, k)
		}
	}
}

// checkCalls verifies every //bear:clock-checked argument of calls inside
// n, without descending into function literals.
func (tf *timeFlow) checkCalls(n ast.Node, e tfEnv, report bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		spec := tf.clockSpecOf(call)
		if spec == nil || len(spec.params) == 0 {
			return true
		}
		fn := funcFor(tf.pkg.Info, call)
		callee := tf.sums[fn.FullName()]
		if callee == nil || callee.decl.Type.Params == nil {
			return true
		}
		idx := 0
		for _, field := range callee.decl.Type.Params.List {
			for _, name := range field.Names {
				if spec.params[name.Name] && idx < len(call.Args) {
					tf.checkArg(call.Args[idx], name.Name, displayName(fn), e, report)
				}
				idx++
			}
		}
		return true
	})
}

func (tf *timeFlow) clockSpecOf(call *ast.CallExpr) *clockSpec {
	fn := funcFor(tf.pkg.Info, call)
	if fn == nil {
		return nil
	}
	if s := tf.sums[fn.FullName()]; s != nil {
		return s.clock
	}
	return nil
}

func (tf *timeFlow) checkArg(arg ast.Expr, param, callee string, e tfEnv, report bool) {
	if tf.safe(arg, e) {
		return
	}
	if !report || tf.reported[arg.Pos()] {
		return
	}
	tf.reported[arg.Pos()] = true
	why := "is not provably >= the current simulated time"
	if containsSub(arg) {
		why = "subtracts from a clock value; schedule with a non-negative delay instead"
	} else if isIntLiteral(arg) {
		why = "is a raw literal, not a simulated time derived from now"
	}
	tf.report(tf.pkg, RuleTimeflow, arg.Pos(),
		"argument %s to clock parameter %s of %s %s (events scheduled in the past are silently misfiled)",
		types.ExprString(arg), param, callee, why)
}

// safe reports whether expr is provably >= now given the current state.
func (tf *timeFlow) safe(expr ast.Expr, e tfEnv) bool {
	switch x := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return e[x.Name]
	case *ast.SelectorExpr:
		if e[types.ExprString(x)] {
			return true
		}
		return tf.clockField(x)
	case *ast.IndexExpr:
		// h[i] is safe when h itself is a trusted clock container.
		if sel, ok := ast.Unparen(x.X).(*ast.SelectorExpr); ok && tf.clockField(sel) {
			return true
		}
		if id, ok := ast.Unparen(x.X).(*ast.Ident); ok && e[id.Name] {
			return true
		}
		return false
	case *ast.BinaryExpr:
		if x.Op != token.ADD {
			return false
		}
		// safe + unsigned or unsigned + safe: unsigned addition cannot move
		// a clock backwards.
		if tf.safe(x.X, e) && isUnsigned(tf.pkg.Info.TypeOf(x.Y)) {
			return true
		}
		return tf.safe(x.Y, e) && isUnsigned(tf.pkg.Info.TypeOf(x.X))
	case *ast.CallExpr:
		return tf.safeCall(x, e)
	}
	return false
}

func (tf *timeFlow) safeCall(call *ast.CallExpr, e tfEnv) bool {
	// Conversion: uint64(x) is as safe as x.
	if tv, ok := tf.pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return tf.safe(call.Args[0], e)
	}
	// max(a, b, ...) is >= every operand: one safe operand suffices. The
	// project's max64 helper gets the same structural treatment as the
	// builtin.
	if builtinName(tf.pkg.Info, call) == "max" {
		for _, a := range call.Args {
			if tf.safe(a, e) {
				return true
			}
		}
		return false
	}
	fn := funcFor(tf.pkg.Info, call)
	if fn == nil {
		return false
	}
	if fn.Name() == "max64" && len(call.Args) >= 1 {
		for _, a := range call.Args {
			if tf.safe(a, e) {
				return true
			}
		}
		return false
	}
	// A zero-argument method named Now reads the current simulated time.
	if fn.Name() == "Now" && len(call.Args) == 0 {
		return true
	}
	if s := tf.sums[fn.FullName()]; s != nil && s.clock != nil && s.clock.results[0] {
		return true
	}
	return false
}

// clockField reports whether sel resolves to a struct field annotated
// //bear:clock (keyed "pkgpath.Struct.Field"; see collectClockFields).
func (tf *timeFlow) clockField(sel *ast.SelectorExpr) bool {
	selection, ok := tf.pkg.Info.Selections[sel]
	if !ok {
		return false
	}
	f, ok := selection.Obj().(*types.Var)
	if !ok || !f.IsField() || f.Pkg() == nil {
		return false
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	return tf.clockFields[f.Pkg().Path()+"."+named.Obj().Name()+"."+f.Name()]
}

func containsSub(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok && b.Op == token.SUB {
			found = true
		}
		return !found
	})
	return found
}

func isIntLiteral(expr ast.Expr) bool {
	e := ast.Unparen(expr)
	if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
		e = ast.Unparen(call.Args[0])
	}
	lit, ok := e.(*ast.BasicLit)
	return ok && lit.Kind == token.INT
}
