// Package inv exercises the invariant family: engine packages must panic
// with typed errors, not bare strings, so the fault-isolation layer can
// classify recovered panics.
package inv

import "fmt"

// typedErr stands in for fault.Invariant: any non-string panic value is
// acceptable to the rule; classification happens at recover.
type typedErr struct{ msg string }

func (e *typedErr) Error() string { return e.msg }

func typedErrf(format string, args ...any) *typedErr {
	return &typedErr{msg: fmt.Sprintf(format, args...)}
}

func literal(v int) {
	if v < 0 {
		panic("negative input") // want "invariant: panic with a bare string"
	}
}

func formatted(v int) {
	if v < 0 {
		panic(fmt.Sprintf("negative input: %d", v)) // want "invariant: panic with a bare string"
	}
}

type stringy string

func namedString(v int) {
	if v < 0 {
		panic(stringy("negative")) // want "invariant: panic with a bare string"
	}
}

func typed(v int) {
	if v < 0 {
		panic(typedErrf("negative input: %d", v))
	}
}

func plainError(v int) {
	if v < 0 {
		panic(fmt.Errorf("negative input: %d", v))
	}
}

func suppressed(v int) {
	if v < 0 {
		panic("fixture") //bear:nolint invariant — exercising the escape hatch
	}
}

// watchdogErr stands in for fault.WatchdogError: supervision layers
// (bearserve's worker pool, the engine watchdog) wrap blown deadlines in
// it, so a recovered panic classifies as a timeout rather than arbitrary
// corruption. Wrapping keeps the cause chain intact for errors.As.
type watchdogErr struct {
	limitMS uint64
	err     error
}

func (e *watchdogErr) Error() string { return fmt.Sprintf("watchdog: %d ms: %v", e.limitMS, e.err) }
func (e *watchdogErr) Unwrap() error { return e.err }

func deadlineTyped(ok bool) {
	if !ok {
		panic(&watchdogErr{limitMS: 500, err: fmt.Errorf("worker stopped making progress")})
	}
}

func deadlineBare(ok bool) {
	if !ok {
		panic("worker exceeded its 500 ms deadline") // want "invariant: panic with a bare string"
	}
}
