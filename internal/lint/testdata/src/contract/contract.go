// Package contract exercises the engine-contract family: unique
// string-literal experiment ids and the tags-implies-layout rule for
// Controller compositions.
package contract

type spec struct {
	ID   string
	Name string
}

var registry = map[string]spec{}

func register(s spec) {
	registry[s.ID] = s
}

func init() {
	register(spec{ID: "fig12", Name: "first"})
	register(spec{ID: "fig13", Name: "second"})
	register(spec{ID: "fig12", Name: "dup"})          // want "dupid: duplicate experiment id .fig12."
	register(spec{ID: dynamicID(), Name: "computed"}) // want "dupid: experiment id must be a string literal"
}

func dynamicID() string { return "tab4" }

type TagStore interface{ Lookup(line uint64) bool }

type Granularity struct {
	BlockLines uint64
	SubBlocked bool
}

var GranLine = Granularity{BlockLines: 1}

type Layout struct {
	Gran      Granularity
	LineBytes int
}

type Controller struct {
	tags TagStore
	lay  Layout
	name string
}

type fakeTags struct{}

func (fakeTags) Lookup(uint64) bool { return false }

// newComplete sets both tags and lay in the literal, with a declared
// granularity.
func newComplete() *Controller {
	return &Controller{
		tags: fakeTags{},
		lay:  Layout{Gran: GranLine, LineBytes: 64},
	}
}

func newMissing() *Controller {
	return &Controller{ // want "layout: Controller composition in newMissing installs a tag store but never sets lay"
		tags: fakeTags{},
	}
}

// newPassThrough has no tag store: the sanctioned zero-Layout composition.
func newPassThrough() *Controller {
	return &Controller{name: "nol4"}
}

// newLateBound wires both fields by assignment after the literal.
func newLateBound() *Controller {
	c := &Controller{name: "late"}
	c.tags = fakeTags{}
	c.lay = Layout{Gran: Granularity{BlockLines: 64, SubBlocked: true}, LineBytes: 64}
	return c
}

func newLateMissing() *Controller {
	c := &Controller{name: "late"} // want "layout: Controller composition in newLateMissing installs a tag store but never sets lay"
	c.tags = fakeTags{}
	return c
}

// Granularity-declaration cases for the gran rule.

// granOmitted is a keyed Layout literal that never names Gran.
var granOmitted = Layout{LineBytes: 64} // want "gran: Layout literal omits Gran"

// granZero names Gran but with the zero Granularity.
var granZero = Layout{Gran: Granularity{}, LineBytes: 64} // want "gran: Layout sets an empty Granularity"

// granPositional spells out every field, Gran included: exempt.
var granPositional = Layout{Granularity{BlockLines: 1}, 64}

// granEmpty is a zero-value placeholder, not a composition: exempt.
var granEmpty = Layout{}

// granExplicit declares a sub-blocked granularity inline: clean.
var granExplicit = Layout{Gran: Granularity{BlockLines: 64, SubBlocked: true}, LineBytes: 64}

var _ = []Layout{granOmitted, granZero, granPositional, granEmpty, granExplicit}
