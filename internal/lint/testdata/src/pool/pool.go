// Package pool exercises the pool-discipline family: objects from
// sync.Pool.Get or a //bear:acquire freelist getter must be released or
// handed off on every return path.
package pool

import "sync"

type obj struct {
	next *obj
	val  int
}

type mgr struct {
	free  *obj
	pool  sync.Pool
	queue []*obj
}

// get pops the freelist, mirroring the repository's linked-list getters.
//
//bear:acquire
func (m *mgr) get() *obj {
	if m.free != nil {
		o := m.free
		m.free = o.next
		return o
	}
	return &obj{}
}

func (m *mgr) put(o *obj) {
	o.next = m.free
	m.free = o
}

// release: passing the object to a call is a hand-off.
func (m *mgr) release(v int) {
	o := m.get()
	o.val = v
	m.put(o)
}

// enqueue: appending the object to a queue is a hand-off.
func (m *mgr) enqueue(v int) {
	o := m.get()
	o.val = v
	m.queue = append(m.queue, o)
}

// send: a channel send is a hand-off.
func (m *mgr) send(ch chan *obj) {
	o := m.get()
	ch <- o
}

// deferred: a deferred release covers every path.
func (m *mgr) deferred(v int) int {
	o := m.get()
	defer m.put(o)
	return v * 2
}

// fromPool: returning the object hands it to the caller.
func (m *mgr) fromPool() *obj {
	o := m.pool.Get().(*obj)
	return o
}

func (m *mgr) leak(v int) {
	o := m.get()
	o.val = v
} // want "pool: pooled object o .from mgr.get. is dropped on end of function"

func (m *mgr) condLeak(v int) {
	o := m.get()
	if v > 0 {
		m.put(o)
	}
} // want "pool: pooled object o .from mgr.get. is dropped on end of function"

func (m *mgr) earlyReturnLeak(v int) int {
	o := m.get()
	if v == 0 {
		return -1 // want "pool: pooled object o .from mgr.get. is dropped on this return"
	}
	m.put(o)
	return o.val
}

func (m *mgr) poolLeak() {
	o := m.pool.Get().(*obj)
	o.val++
} // want "pool: pooled object o .from sync.Pool.Get. is dropped on end of function"

func (m *mgr) dropped() {
	m.get() // want "pool: result of mgr.get is dropped"
}
