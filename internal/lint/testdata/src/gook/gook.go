// Package gook stands in for the sanctioned concurrency layer
// (internal/exp): the test config's AllowGo selects it, so the go statement
// is not flagged even though the determinism family applies.
package gook

func work(ch chan int) { ch <- 1 }

func fan() int {
	ch := make(chan int)
	go work(ch)
	return <-ch
}
