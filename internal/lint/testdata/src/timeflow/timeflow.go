// Package timeflow exercises the event-time monotonicity family: arguments
// reaching a //bear:clock-checked parameter must be provably >= now.
package timeflow

type queue struct {
	now uint64 //bear:clock
}

// At mirrors event.Queue.At: `at` is a trusted clock inside the body and
// checked at every call site.
//
//bear:clock at
func (q *queue) At(at uint64, fn func()) { q.now = at }

func (q *queue) Now() uint64 { return q.now }

// nextTick returns a trusted clock value.
//
//bear:clock result
func (q *queue) nextTick() uint64 { return q.now + 1 }

// split returns (index, start): only result 1 is a clock.
//
//bear:clock result=1
func (q *queue) split() (int, uint64) { return 0, q.now }

type core struct {
	q    *queue
	wake uint64
}

// delayOK: trusted implicit `now` parameter plus unsigned addition.
func (c *core) delayOK(now, delay uint64) {
	c.q.At(now+delay, nil)
}

// fieldOK: reading a //bear:clock struct field is safe.
func (c *core) fieldOK() {
	c.q.At(c.q.now, nil)
}

// callOK: a Now() read and an annotated-result call are safe.
func (c *core) callOK() {
	c.q.At(c.q.Now()+4, nil)
	c.q.At(c.q.nextTick(), nil)
}

// tupleOK: the annotated result of a multi-value call is safe.
func (c *core) tupleOK() {
	_, start := c.q.split()
	c.q.At(start, nil)
}

// maxOK: max with one safe operand is safe.
func (c *core) maxOK(now uint64) {
	c.q.At(max(now, c.wake), nil)
}

// guardOK: branch refinement — inside `c.wake > now`, c.wake is proven.
func (c *core) guardOK(now uint64) {
	if c.wake > now {
		c.q.At(c.wake, nil)
	}
}

// localOK: safety propagates through local assignment.
func (c *core) localOK(now uint64) {
	t2 := now + 2
	c.q.At(t2, nil)
}

func (c *core) literalBad() {
	c.q.At(1000, nil) // want "timeflow: argument 1000 to clock parameter at of queue.At is a raw literal"
}

func (c *core) subBad(now uint64) {
	c.q.At(now-1, nil) // want "timeflow: argument now - 1 to clock parameter at of queue.At subtracts from a clock value"
}

func (c *core) unprovenBad(now uint64) {
	c.q.At(c.wake, nil) // want "timeflow: argument c.wake to clock parameter at of queue.At is not provably"
}

// revokedBad: reassignment from an unsafe source revokes safety.
func (c *core) revokedBad(now uint64) {
	t2 := now + 2
	c.q.At(t2, nil)
	t2 = c.wake
	c.q.At(t2, nil) // want "timeflow: argument t2 to clock parameter at of queue.At is not provably"
}

// halfGuardBad: proven on one branch only is not proven.
func (c *core) halfGuardBad(now uint64) {
	if c.wake > now {
		c.wake++
	}
	c.q.At(c.wake, nil) // want "timeflow: argument c.wake to clock parameter at of queue.At is not provably"
}
