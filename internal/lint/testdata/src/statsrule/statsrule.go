// Package statsrule exercises the stats field census: every field of the
// gated package's structs must be written by some simulation path and read
// by some experiment or report.
package statsrule

type counters struct {
	hits   uint64    // written and read: clean
	misses uint64    // want "stats: stats field counters.misses is never consumed by any experiment or report"
	stale  uint64    // want "stats: stats field counters.stale is never written by any simulation path"
	dead   uint64    // want "stats: stats field counters.dead is never written and never consumed"
	bytes  [4]uint64 // written through an index, read: clean
}

type engine struct {
	st counters // mutated through members and read back: clean
}

func (e *engine) step(hit bool) {
	e.st.hits++
	e.st.misses++
	e.st.bytes[0] += 64
	if hit {
		e.st.bytes[1] = e.st.bytes[0]
	}
}

func (e *engine) report() (uint64, uint64, uint64) {
	return e.st.hits, e.st.stale, e.st.bytes[1]
}
