// Package exempt stands in for a driver package (cmd/, examples/): the test
// config deselects it from the determinism and map-range families, so none
// of these constructs are flagged.
package exempt

import (
	"fmt"
	"time"
)

func report(m map[string]int) {
	start := time.Now()
	for k, v := range m {
		fmt.Println(k, v)
	}
	fmt.Println(time.Since(start))
}
