package hot

// This file mirrors the shapes PR 7 added to the hot path — the DRAM
// scheduler's incremental per-bank memo maintenance and the SRAM way-hint
// probe — and pins that simlint keeps them honest: the sanctioned patterns
// (appends into long-lived per-bank backing arrays, bitmask iteration,
// hint probes, typed invariant guards) pass clean, while the tempting
// regressions (scratch slices in a memo rebuild, per-pick logging,
// capturing completion closures) are flagged, including through
// unannotated helpers.

import "fmt"

type sched struct {
	fifos    [][]int  // per-bank FIFOs (long-lived backing arrays)
	first    []int32  // memoized first-of-class position per bank
	occ      uint64   // bank occupancy bitmask
	hint     []uint32 // last-hit slab index, keyed by addr&hintMask
	hintMask uint64
	tags     []uint64
}

// enqueue: appending into a per-bank FIFO owned by the long-lived sched is
// the sanctioned pattern — the destination is a field element, so its
// capacity is retained across calls.
//
//bear:hotpath
func (s *sched) enqueue(b, v int) {
	s.fifos[b] = append(s.fifos[b], v)
	s.occ |= 1 << uint(b)
	if s.first[b] < 0 {
		s.first[b] = int32(len(s.fifos[b]) - 1)
	}
}

// trailingBank: an unannotated pure-arithmetic helper; hot callers may use
// it freely.
func trailingBank(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// pickBank: min-over-banks via bitmask iteration and memo reads — pure
// arithmetic over cached state, the whole point of the incremental form.
//
//bear:hotpath
func (s *sched) pickBank() int {
	best := -1
	for occ := s.occ; occ != 0; occ &= occ - 1 {
		b := trailingBank(occ)
		if best < 0 || s.first[b] < s.first[best] {
			best = b
		}
	}
	return best
}

// rebuildWrong: collecting candidates into a scratch slice during a memo
// rebuild allocates on every invalidation.
//
//bear:hotpath
func (s *sched) rebuildWrong(b int) int {
	var cand []int32
	for i := range s.fifos[b] {
		cand = append(cand, int32(i)) // want "hotpath: append to function-local slice cand"
	}
	if len(cand) == 0 {
		return -1
	}
	return int(cand[0])
}

// checkedRemove: raising a typed invariant fault from memo maintenance is
// cold by definition and stays sanctioned.
//
//bear:hotpath
func (s *sched) checkedRemove(b, idx int) int {
	if idx < 0 || idx >= len(s.fifos[b]) {
		panic(invErrf("bank %d: index %d out of range", b, idx))
	}
	v := s.fifos[b][idx]
	s.fifos[b] = s.fifos[b][:len(s.fifos[b])-1]
	return v
}

// find: the way-hint probe — one tag word on a repeat hit, fall through to
// a store-free subslice sweep otherwise (one bounds check, then a
// check-free range; hit paths retrain the hint, keeping the probe inside
// the inlining budget). Pure loads.
//
//bear:hotpath
func (s *sched) find(set uint64, ways int, addr uint64) int {
	if h := uint64(s.hint[addr&s.hintMask]); s.tags[h] == addr {
		return int(h)
	}
	base := set * uint64(ways)
	tags := s.tags[base : base+uint64(ways)]
	for w := range tags {
		if tags[w] == addr {
			return int(base) + w
		}
	}
	return -1
}

// access: a hit retrains the hint — a store into long-lived state, still
// allocation-free.
//
//bear:hotpath
func (s *sched) access(set uint64, ways int, addr uint64) bool {
	i := s.find(set, ways, addr)
	if i < 0 {
		return false
	}
	s.hint[addr&s.hintMask] = uint32(i)
	return true
}

// describePick: an unannotated helper that formats; annotated callers get
// the transitive diagnostic naming the path.
func describePick(b int) string {
	return fmt.Sprintf("bank %d", b)
}

//bear:hotpath
func (s *sched) pickLogged() {
	_ = describePick(s.pickBank()) // want "hotpath: //bear:hotpath function pickLogged calls describePick, which allocates"
}

// onComplete: a per-pick completion closure capturing scheduler state is
// exactly the per-access garbage the annotation exists to keep out.
//
//bear:hotpath
func (s *sched) onComplete(b int) func() {
	return func() { s.occ &^= 1 << uint(b) } // want "hotpath: function literal capturing"
}
