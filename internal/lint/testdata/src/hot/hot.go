// Package hot exercises the //bear:hotpath alloc-freedom family: direct
// allocating constructs, the panic exemption, the receiver-field append
// allowance, non-capturing literals, and transitive reach through
// unannotated project functions.
package hot

import (
	"errors"
	"fmt"
)

type ring struct {
	buf []int
	n   int
}

// push shows the sanctioned append pattern: appending into a long-lived
// object's field retains its capacity across calls.
//
//bear:hotpath
func (r *ring) push(v int) {
	r.buf = append(r.buf, v)
	r.n++
}

//bear:hotpath
func (r *ring) bad(v int) {
	local := []int{}
	local = append(local, v)   // want "hotpath: append to function-local slice local"
	_ = fmt.Sprintf("v=%d", v) // want "hotpath: fmt.Sprintf"
	_ = errors.New("boom")     // want "hotpath: errors.New"
	m := map[int]bool{v: true} // want "hotpath: map literal"
	_ = m
	mm := make(map[int]int) // want "hotpath: make.map."
	_ = mm
	_ = local
}

//bear:hotpath
func capture(v int) func() int {
	return func() int { return v } // want "hotpath: function literal capturing v"
}

// nocapture: a literal that closes over nothing compiles to a static func.
//
//bear:hotpath
func nocapture() func(int) int {
	return func(x int) int { return x * 2 }
}

// guard: panic arguments are cold by definition.
//
//bear:hotpath
func guard(v int) {
	if v < 0 {
		panic(fmt.Sprintf("negative: %d", v))
	}
}

type invErr struct{ msg string }

func (e *invErr) Error() string { return e.msg }

// invErrf stands in for a typed invariant constructor (fault.Invariantf):
// it allocates and formats, which is fine inside a panic argument.
func invErrf(format string, args ...any) *invErr {
	return &invErr{msg: fmt.Sprintf(format, args...)}
}

// typedGuard: calls made only to build a panic value are not chased
// through the call graph — raising a typed invariant error from a hot
// path is sanctioned.
//
//bear:hotpath
func typedGuard(v int) {
	if v < 0 {
		panic(invErrf("negative: %d", v))
	}
}

func slowHelper(v int) string {
	return fmt.Sprintf("%d", v)
}

//bear:hotpath
func callsSlow(v int) {
	_ = slowHelper(v) // want "hotpath: //bear:hotpath function callsSlow calls slowHelper, which allocates"
}

func mid(v int) string  { return deep(v) }
func deep(v int) string { return fmt.Sprint(v) }

//bear:hotpath
func entry(v int) {
	_ = mid(v) // want "hotpath: //bear:hotpath function entry calls mid -> deep, which allocates"
}

//bear:hotpath
func fastHelper(v int) int { return v + 1 }

// callsFast: annotated callees are trusted here and checked at their own
// declaration.
//
//bear:hotpath
func callsFast(v int) int {
	return fastHelper(v)
}

// cleanHelper is unannotated but allocation-free; calling it is fine.
func cleanHelper(v int) int { return v << 1 }

//bear:hotpath
func callsClean(v int) int {
	return cleanHelper(v)
}
