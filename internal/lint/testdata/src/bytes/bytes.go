// Package bytes exercises the byte-attribution family: every call to a
// //bear:enqueue wrapper must pair, on every path, with exactly one
// //bear:bytes attribution of the same byte expression (or carry a
// //bear:deferred <Category> for completion-time attribution).
package bytes

type category int

const (
	missFill category = iota
	hitProbe
	wbUpdate
)

type stats struct{ bytes [8]uint64 }

// addBytes mirrors stats.L4.AddBytes: the category is argument 0, the byte
// count argument 1.
//
//bear:bytes arg=0 bytes=1
func (s *stats) addBytes(c category, n int) { s.bytes[c] += uint64(n) }

// addFill is a fixed-category helper.
//
//bear:bytes missFill bytes=0
func (s *stats) addFill(n int) { s.bytes[missFill] += uint64(n) }

type ctl struct{ st stats }

// dramRead mirrors the engine's l4Read enqueue wrapper.
//
//bear:enqueue read bytes=1
func (c *ctl) dramRead(at uint64, n int) {}

// dramWrite mirrors l4Write.
//
//bear:enqueue write bytes=1
func (c *ctl) dramWrite(at uint64, n int) {}

// attrThenEnqueue: the engine's write convention — attribute, then enqueue.
func (c *ctl) attrThenEnqueue(now uint64, n int) {
	c.st.addBytes(missFill, n)
	c.dramWrite(now, n)
}

// enqueueThenAttr: order within the path does not matter.
func (c *ctl) enqueueThenAttr(now uint64, n int) {
	c.dramWrite(now, n)
	c.st.addBytes(wbUpdate, n)
}

// fixedCategory: a fixed-category helper attributes too.
func (c *ctl) fixedCategory(now uint64, n int) {
	c.st.addFill(n)
	c.dramWrite(now, n)
}

// branchJoin: each branch enqueues once; one attribution after the join
// covers whichever executed.
func (c *ctl) branchJoin(now uint64, n int, cond bool) {
	if cond {
		c.dramRead(now, n)
	} else {
		c.dramWrite(now, n)
	}
	c.st.addBytes(missFill, n)
}

// loopBalanced: attribution and enqueue stay balanced per iteration.
func (c *ctl) loopBalanced(now uint64, n int) {
	for i := 0; i < 4; i++ {
		c.st.addBytes(missFill, n)
		c.dramWrite(now, n)
	}
}

// deferredRead: the engine's read convention — bytes land in a category at
// completion time, inside the transaction callback.
func (c *ctl) deferredRead(now uint64, n int) {
	c.dramRead(now, n) //bear:deferred hitProbe
}

// panicPath: a crash path is silent; the surviving path attributes.
func (c *ctl) panicPath(now uint64, n int, bad bool) {
	c.dramWrite(now, n)
	if bad {
		panic("invariant")
	}
	c.st.addBytes(missFill, n)
}

func (c *ctl) leak(now uint64, n int) {
	c.dramWrite(now, n) // want "bytes: DRAM write of n bytes reaches a return without attributing them"
}

func (c *ctl) branchLeak(now uint64, n int, cond bool) {
	c.dramRead(now, n) // want "bytes: DRAM read of n bytes reaches a return without attributing them"
	if cond {
		c.st.addBytes(missFill, n)
	}
}

func (c *ctl) doubleAttr(now uint64, n int) {
	c.st.addBytes(missFill, n)
	c.st.addBytes(hitProbe, n) // want "bytes: bytes n are attributed more than once on a path through doubleAttr"
	c.dramWrite(now, n)
}

func (c *ctl) deferredUnknown(now uint64, n int) {
	//bear:deferred bogus
	c.dramRead(now, n) // want "bytes: //bear:deferred names category bogus, which no attribution call in this package ever uses"
}

func (c *ctl) mismatchedExpr(now uint64, n int) {
	c.st.addBytes(missFill, n+1)
	c.dramWrite(now, n) // want "bytes: DRAM write of n bytes reaches a return without attributing them"
}

func (c *ctl) variableCategory(now uint64, n int, k category) {
	c.st.addBytes(k, n) // want "bytes: attribution category must be a named stats category constant"
	c.dramWrite(now, n)
}

//bear:bytes bytes=oops // want "bytes: malformed //bear:bytes"
func (s *stats) badAnnot(n int) {}
