// Package det exercises the determinism family: wall-clock reads, ambient
// randomness, environment reads, goroutines and order-sensitive map
// iteration, plus the sanctioned escapes and //bear:nolint suppression.
package det

import (
	"fmt"
	"math/rand" // want "determinism: import of .math/rand."
	"os"
	"sort"
	"time"
)

func clock() int64 {
	t := time.Now()       // want "determinism: time.Now in a simulation package"
	_ = time.Since(t)     // want "determinism: time.Since in a simulation package"
	_ = os.Getenv("SEED") // want "determinism: os.Getenv in a simulation package"
	return rand.Int63()
}

func spawn() {
	go clock() // want "goroutine: go statement in a simulation package"
}

func foldFloat(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v // want "maprange: map iteration accumulates into sum"
	}
	return sum
}

func countItems(m map[string]int) int {
	n := 0
	for range m {
		n++ // want "maprange: map iteration accumulates into n"
	}
	return n
}

func lastValue(m map[string]int) int {
	last := 0
	for _, v := range m {
		last = v // want "maprange: map iteration assigns last in map order"
	}
	return last
}

func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "maprange: map iteration appends to keys in map order"
	}
	return keys
}

func printAll(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "maprange: map iteration formats output in map order"
	}
}

// collectSorted is the sanctioned escape: collect, then sort.
func collectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// collectSortedCond shows conditional collection still qualifies when the
// slice is sorted afterwards.
func collectSortedCond(m map[string]int) []string {
	var keys []string
	for k, v := range m {
		if v > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// invert shows keyed stores are order-independent per element.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// suppressedTrailing uses a trailing nolint comment.
func suppressedTrailing(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v //bear:nolint maprange — commutative fold, asserted by the author
	}
	return sum
}

// suppressedAbove uses a nolint comment on the line above the finding.
func suppressedAbove(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		//bear:nolint maprange — commutative fold, asserted by the author
		sum += v
	}
	return sum
}
