package lint

import "go/ast"

// A generic forward dataflow solver over the cfg. A client supplies the
// lattice operations; the solver iterates transfer functions to a fixpoint
// and hands back the converged block-entry states, which the client replays
// once (in deterministic block order) to emit diagnostics. Splitting
// "solve" from "report" keeps diagnostics single-shot even when the
// worklist visits a block many times.
//
// State values are mutated in place by transfer/refine; the solver clones
// before every mutation, so clients never see aliasing between blocks.
type flowClient[S any] interface {
	// entry returns the state on function entry.
	entry() S
	// clone returns an independent copy of s.
	clone(s S) S
	// merge folds src into dst, reporting whether dst changed. It must be
	// monotone and bounded for the solver to terminate.
	merge(dst, src S) bool
	// transfer applies one cfg node to s in place. report is false during
	// fixpoint iteration and true during the final replay; node-anchored
	// diagnostics must only fire when it is true.
	transfer(s S, n ast.Node, report bool)
	// refine narrows s along a conditional edge (cond evaluated as taken).
	// Optional: a no-op implementation is fine.
	refine(s S, cond ast.Expr, taken bool)
}

// solve runs the fixpoint and returns the entry state of every reachable
// block (indexed by block index; unreachable blocks stay absent).
func solve[S any](c *cfg, fc flowClient[S]) map[int]S {
	in := map[int]S{c.entry.index: fc.entry()}
	worklist := []*block{c.entry}
	queued := map[int]bool{c.entry.index: true}

	// Safety valve: with monotone bounded lattices this never triggers; it
	// bounds the damage of a client bug to "analysis silently incomplete"
	// rather than a hung linter.
	budget := (len(c.blocks) + 1) * 256

	for len(worklist) > 0 && budget > 0 {
		budget--
		b := worklist[0]
		worklist = worklist[1:]
		queued[b.index] = false

		s := fc.clone(in[b.index])
		for _, n := range b.nodes {
			fc.transfer(s, n, false)
		}
		for _, e := range b.succs {
			out := fc.clone(s)
			if e.cond != nil {
				fc.refine(out, e.cond, e.taken)
			}
			prev, ok := in[e.to.index]
			changed := false
			if !ok {
				in[e.to.index] = out
				changed = true
			} else {
				changed = fc.merge(prev, out)
			}
			if changed && !queued[e.to.index] {
				queued[e.to.index] = true
				worklist = append(worklist, e.to)
			}
		}
	}
	return in
}

// exitState is one terminating block's final state, produced by replay.
type exitState[S any] struct {
	b *block
	s S
}

// replay re-runs the converged states through every reachable block in
// deterministic order with reporting enabled, and returns the final state
// of each return/fall-off exit (panic exits are silent by convention).
func replay[S any](c *cfg, fc flowClient[S], in map[int]S) []exitState[S] {
	var exits []exitState[S]
	for _, b := range c.reachable() {
		s, ok := in[b.index]
		if !ok {
			continue
		}
		s = fc.clone(s)
		for _, n := range b.nodes {
			fc.transfer(s, n, true)
		}
		if b.kind == exitReturn || b.kind == exitFall {
			exits = append(exits, exitState[S]{b: b, s: s})
		}
	}
	return exits
}
