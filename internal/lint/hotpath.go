package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The hot-path rule makes the alloc-freedom PR 2/3 established by hand a
// machine-checked property: a function annotated //bear:hotpath (the
// per-access entry points of the event kernel, the DRAM model, the SRAM
// caches, the core retire loop, the hierarchy miss path and the DRAM-cache
// engine) must be steady-state allocation-free. Flagged constructs:
//
//   - capturing function literals (the per-access closures PR 2 removed;
//     non-capturing literals compile to static funcs and are fine);
//   - fmt.Sprintf/Sprint/Sprintln/Errorf and errors.New outside panic
//     arguments (panics are cold by definition);
//   - append whose destination is a function-local slice (appends into
//     fields of pooled/long-lived objects retain their capacity and are
//     the sanctioned pattern — e.waiters, q.h, t.h);
//   - map composite literals and make(map...);
//   - calls to unannotated project functions that transitively contain any
//     of the above, resolved over the go/types call graph. Calls to other
//     //bear:hotpath functions are trusted (they are checked at their own
//     declaration); dynamic calls (interface methods, function values)
//     cannot be resolved statically and are not followed.

// construct is one allocating construct found in a function body.
type construct struct {
	pos  token.Pos
	what string
}

// callEdge is one statically resolvable call out of a function.
type callEdge struct {
	target string // types.Func.FullName of the callee
	pos    token.Pos
	name   string // display name
}

// fnSummary is the per-function result of pass 1, keyed by FullName so the
// transitive pass can cross package boundaries.
type fnSummary struct {
	pkg        *Package
	decl       *ast.FuncDecl
	hotpath    bool
	acquire    bool
	enqueue    *enqueueSpec // //bear:enqueue — DRAM transfer boundary (bytes rule)
	attr       *attrSpec    // //bear:bytes — byte-attribution helper (bytes rule)
	clock      *clockSpec   // //bear:clock — trusted/checked clock params (timeflow rule)
	annotErrs  []annotErr
	constructs []construct
	calls      []callEdge

	dirtyState int // 0 unknown, 1 in progress/clean, 2 dirty
	dirtyVia   *construct
	dirtyPath  string
}

// summarize runs pass 1 over every package: one summary per declared
// function, recording its allocating constructs and outgoing static calls.
func (p *Program) summarize() map[string]*fnSummary {
	sums := map[string]*fnSummary{}
	for _, pkg := range p.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				s := &fnSummary{
					pkg:     pkg,
					decl:    fd,
					hotpath: hasAnnotation(fd, "//bear:hotpath"),
					acquire: hasAnnotation(fd, "//bear:acquire"),
				}
				parseAnnotations(fd, s)
				p.scanBody(pkg, fd, s)
				sums[obj.FullName()] = s
			}
		}
	}
	return sums
}

// hasAnnotation reports whether the function's doc comment carries the
// given //bear: marker.
func hasAnnotation(fd *ast.FuncDecl, marker string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == marker || strings.HasPrefix(c.Text, marker+" ") {
			return true
		}
	}
	return false
}

// scanBody fills s.constructs and s.calls for fd. inPanic tracks descent
// into panic arguments, which are exempt from the formatting rules.
func (p *Program) scanBody(pkg *Package, fd *ast.FuncDecl, s *fnSummary) {
	var walk func(n ast.Node, inPanic bool)
	walk = func(n ast.Node, inPanic bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			if caps := captures(pkg.Info, fd, n); len(caps) > 0 {
				s.constructs = append(s.constructs, construct{n.Pos(),
					"function literal capturing " + strings.Join(caps, ", ")})
			}
			// Walk the literal body too: its constructs execute (and
			// allocate) when the closure runs.
			for _, stmt := range n.Body.List {
				walk(stmt, inPanic)
			}
			return
		case *ast.CompositeLit:
			if t := pkg.Info.TypeOf(n); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					s.constructs = append(s.constructs, construct{n.Pos(), "map literal"})
				}
			}
		case *ast.CallExpr:
			p.scanCall(pkg, n, s, inPanic)
			if builtinName(pkg.Info, n) == "panic" {
				for _, arg := range n.Args {
					walk(arg, true)
				}
				return
			}
		}
		// Default traversal.
		for _, child := range childNodes(n) {
			walk(child, inPanic)
		}
	}
	for _, stmt := range fd.Body.List {
		walk(stmt, false)
	}
}

// childNodes collects the direct children of n in source order.
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(m ast.Node) bool {
		if first { // n itself
			first = false
			return true
		}
		if m == nil {
			return false
		}
		out = append(out, m)
		return false
	})
	return out
}

// allocFormatters are stdlib calls that always allocate their result.
var allocFormatters = map[[2]string]bool{
	{"fmt", "Sprintf"}:  true,
	{"fmt", "Sprint"}:   true,
	{"fmt", "Sprintln"}: true,
	{"fmt", "Errorf"}:   true,
	{"errors", "New"}:   true,
}

func (p *Program) scanCall(pkg *Package, call *ast.CallExpr, s *fnSummary, inPanic bool) {
	switch builtinName(pkg.Info, call) {
	case "append":
		if len(call.Args) > 0 {
			if dst, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
				if v, ok := obj(pkg.Info, dst).(*types.Var); ok && !v.IsField() && v.Parent() != pkg.Types.Scope() && v.Parent() != types.Universe {
					s.constructs = append(s.constructs, construct{call.Pos(),
						"append to function-local slice " + dst.Name + " (allocates per call; append into a pooled object's field instead)"})
				}
			}
		}
		return
	case "make":
		if len(call.Args) > 0 {
			if tv, ok := pkg.Info.Types[call.Args[0]]; ok && tv.IsType() {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					s.constructs = append(s.constructs, construct{call.Pos(), "make(map)"})
				}
			}
		}
		return
	case "":
		// not a builtin; fall through
	default:
		return
	}

	fn := funcFor(pkg.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if allocFormatters[[2]string{fn.Pkg().Path(), fn.Name()}] {
		if !inPanic {
			s.constructs = append(s.constructs, construct{call.Pos(),
				fn.Pkg().Name() + "." + fn.Name() + " (allocates; pre-format off the hot path)"})
		}
		return
	}
	if inPanic {
		// Panic arguments are cold by definition, so calls made only to
		// build them — typed invariant constructors like fault.Invariantf —
		// are not chased through the call graph.
		return
	}
	s.calls = append(s.calls, callEdge{target: fn.FullName(), pos: call.Pos(), name: displayName(fn)})
}

func displayName(fn *types.Func) string {
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

func obj(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// captures returns the names of variables a function literal closes over:
// identifiers resolving to objects declared inside the enclosing function
// but outside the literal. Package-level state is not a capture.
func captures(info *types.Info, encl *ast.FuncDecl, lit *ast.FuncLit) []string {
	seen := map[string]bool{}
	var out []string
	ast.Inspect(lit, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Pos() == token.NoPos {
			return true
		}
		if v.Pos() >= encl.Pos() && v.Pos() < encl.End() && (v.Pos() < lit.Pos() || v.Pos() > lit.End()) {
			if !seen[id.Name] {
				seen[id.Name] = true
				out = append(out, id.Name)
			}
		}
		return true
	})
	return out
}

// checkHotPaths runs pass 2: report every construct in an annotated
// function, then chase unannotated callees through the call graph.
func (p *Program) checkHotPaths(sums map[string]*fnSummary, report reporter) {
	for _, s := range sums {
		if !s.hotpath {
			continue
		}
		for _, c := range s.constructs {
			report(s.pkg, RuleHotPath, c.pos, "%s in //bear:hotpath function %s", c.what, s.decl.Name.Name)
		}
		for _, e := range s.calls {
			t := sums[e.target]
			if t == nil || t.hotpath {
				continue
			}
			if via, path := dirty(sums, e.target); via != nil {
				report(s.pkg, RuleHotPath, e.pos,
					"//bear:hotpath function %s calls %s, which allocates: %s at %s (annotate the callee //bear:hotpath or move the allocation off the hot path)",
					s.decl.Name.Name, path, via.what, p.Fset.Position(via.pos))
			}
		}
	}
}

// dirty reports whether the function behind key transitively contains an
// allocating construct, returning the construct and the call path to it.
// Cycles resolve to clean (a cycle with no construct allocates nothing).
func dirty(sums map[string]*fnSummary, key string) (*construct, string) {
	s := sums[key]
	if s == nil || s.hotpath {
		return nil, ""
	}
	switch s.dirtyState {
	case 1:
		return nil, "" // in progress (cycle) or known clean
	case 2:
		return s.dirtyVia, s.dirtyPath
	}
	s.dirtyState = 1
	name := s.decl.Name.Name
	if len(s.constructs) > 0 {
		s.dirtyState = 2
		s.dirtyVia = &s.constructs[0]
		s.dirtyPath = name
		return s.dirtyVia, s.dirtyPath
	}
	for _, e := range s.calls {
		if via, path := dirty(sums, e.target); via != nil {
			s.dirtyState = 2
			s.dirtyVia = via
			s.dirtyPath = name + " -> " + path
			return via, s.dirtyPath
		}
	}
	return nil, ""
}
