package core

// NTC is the Neighboring Tag Cache (Section 6). The Alloy cache lays
// consecutive sets in the same 2 KB row and its 80 B bursts carry the tag
// of the next set for free (the bus moves 16 B granules but a TAD is 72 B).
// The NTC banks an 8-entry fully-associative buffer per DRAM-cache bank
// that records those neighbour tags. On an LLC miss:
//
//   - set-index match + tag match   -> line guaranteed present
//   - set-index match + tag mismatch -> line guaranteed absent (the Miss
//     Probe can be skipped unless the resident line is dirty, in which case
//     the probe is still needed to recover the victim's data)
//   - no set-index match            -> no guarantee; probe as usual
//
// Entries are kept coherent: fills and evictions update any entry tracking
// the affected set.
type NTC struct {
	entriesPerBank int
	banks          []ntcBank

	// Diagnostics.
	Lookups   uint64
	HitsKnown uint64 // lookups answered (present or absent)
}

type ntcBank struct {
	entries []ntcEntry
	clock   uint64
}

type ntcEntry struct {
	inUse     bool
	set       uint64
	lineValid bool   // the tracked set holds a valid line
	line      uint64 // the resident line's address (when lineValid)
	lineDirty bool
	used      uint64 // LRU stamp
}

// Answer is the NTC's response to a presence query.
type Answer struct {
	Known     bool
	Present   bool // valid when Known
	LineDirty bool // resident line's dirty state (valid when Known && !Present && a line is resident)
	HasLine   bool // a valid (different) line is resident in the set
}

// NewNTC builds an NTC covering totalBanks DRAM-cache banks with
// entriesPerBank entries each (8 in the paper).
func NewNTC(totalBanks, entriesPerBank int) *NTC {
	n := &NTC{entriesPerBank: entriesPerBank, banks: make([]ntcBank, totalBanks)}
	for i := range n.banks {
		n.banks[i].entries = make([]ntcEntry, entriesPerBank)
	}
	return n
}

// Lookup queries bank's NTC for the given set and demand line.
func (n *NTC) Lookup(bank int, set, line uint64) Answer {
	n.Lookups++
	b := &n.banks[bank]
	for i := range b.entries {
		e := &b.entries[i]
		if e.inUse && e.set == set {
			b.clock++
			e.used = b.clock
			n.HitsKnown++
			if e.lineValid && e.line == line {
				return Answer{Known: true, Present: true}
			}
			return Answer{Known: true, Present: false, HasLine: e.lineValid, LineDirty: e.lineValid && e.lineDirty}
		}
	}
	return Answer{}
}

// Deposit records (or refreshes) the contents of a set observed on the bus:
// the set currently holds line (lineValid=false for an empty set).
func (n *NTC) Deposit(bank int, set uint64, lineValid bool, line uint64, dirty bool) {
	b := &n.banks[bank]
	b.clock++
	for i := range b.entries {
		e := &b.entries[i]
		if e.inUse && e.set == set {
			e.lineValid, e.line, e.lineDirty, e.used = lineValid, line, dirty, b.clock
			return
		}
	}
	var victim *ntcEntry
	for i := range b.entries {
		e := &b.entries[i]
		if !e.inUse {
			victim = e
			break
		}
		if victim == nil || e.used < victim.used {
			victim = e
		}
	}
	*victim = ntcEntry{inUse: true, set: set, lineValid: lineValid, line: line, lineDirty: dirty, used: b.clock}
}

// Sync updates an existing entry for set without allocating a new one. It
// is the coherence path invoked on fills, writeback updates and evictions so
// stale NTC entries never mis-answer.
func (n *NTC) Sync(bank int, set uint64, lineValid bool, line uint64, dirty bool) {
	b := &n.banks[bank]
	for i := range b.entries {
		e := &b.entries[i]
		if e.inUse && e.set == set {
			e.lineValid, e.line, e.lineDirty = lineValid, line, dirty
			return
		}
	}
}

// StorageBytes returns the SRAM cost per Table 5: 44 bytes per bank.
func (n *NTC) StorageBytes() int64 { return int64(44 * len(n.banks)) }
