package core

import "bear/internal/rng"

// BAB implements Bandwidth-Aware Bypass (Section 4.2). The DRAM cache's
// sets are partitioned into two sampling monitors and a follower majority:
// sets in the PB monitor always apply probabilistic bypass, sets in the
// baseline monitor always fill, and follower sets obey a single global mode
// bit. Per-monitor access/miss counters are compared whenever an access
// counter saturates: bypassing stays enabled as long as the PB monitor's
// hit rate is at least (1 - Delta) of the baseline monitor's hit rate, with
// Delta = 1/16 as the paper's sensitivity study selected.
//
// Hardware cost: two counter pairs (8 bytes per thread in the paper's
// accounting, 64 B total) plus the mode bit.
type BAB struct {
	// Prob is the bypass probability P of the underlying PB policy
	// (0.9 in the paper).
	Prob float64
	// Naive turns the policy into the plain Probabilistic Bypass of
	// Section 4.1: every set flips the P-coin and the duelling monitors
	// only observe (the mode bit is ignored).
	Naive bool

	r *rng.Source

	// Saturating sample counters.
	accPB, missPB     uint32
	accBase, missBase uint32
	satLimit          uint32

	modeBypass bool
	onStreak   int

	// Diagnostics.
	ModeFlips  uint64
	Decisions  uint64
	BypassedN  uint64
	SampledPB  uint64
	SampledBas uint64
}

// Constituency size: 1 of every 32 sets belongs to each monitor, matching
// the paper's 512K-of-16M sampling ratio.
const duelConstituency = 32

// NewBAB creates the policy. satLimit is the access-counter saturation
// threshold (65535 in the paper; smaller values adapt faster on scaled
// runs). prob is the PB bypass probability.
func NewBAB(prob float64, satLimit uint32, seed uint64) *BAB {
	if satLimit == 0 {
		satLimit = 1 << 16
	}
	return &BAB{Prob: prob, r: rng.New(seed), satLimit: satLimit}
}

// setClass returns 0 for PB-monitor sets, 1 for baseline-monitor sets, 2
// for followers.
func setClass(set uint64) int {
	switch set % duelConstituency {
	case 0:
		return 0
	case 1:
		return 1
	default:
		return 2
	}
}

// RecordAccess feeds the duelling monitors with the outcome of a demand
// access to the given set (miss=true if the DRAM cache missed).
func (b *BAB) RecordAccess(set uint64, miss bool) {
	switch setClass(set) {
	case 0:
		b.SampledPB++
		b.accPB++
		if miss {
			b.missPB++
		}
	case 1:
		b.SampledBas++
		b.accBase++
		if miss {
			b.missBase++
		}
	default:
		return
	}
	if b.accPB >= b.satLimit || b.accBase >= b.satLimit {
		b.recompute()
		b.accPB >>= 1
		b.missPB >>= 1
		b.accBase >>= 1
		b.missBase >>= 1
	}
}

// enableStreak is how many consecutive passing windows are required before
// bypassing turns on. The paper's 16-bit windows are long enough to average
// over program phases; scaled runs use shorter windows, so enabling is made
// conservative (a failing window disables immediately) to preserve the
// paper's property that BAB never degrades a workload.
const enableStreak = 5

// recompute re-evaluates the mode bit: keep bypassing while the PB monitor
// retains at least 15/16 of the baseline monitor's hit rate.
func (b *BAB) recompute() {
	if b.accPB == 0 || b.accBase == 0 {
		return
	}
	hitPB := 1 - float64(b.missPB)/float64(b.accPB)
	hitBase := 1 - float64(b.missBase)/float64(b.accBase)
	pass := hitPB >= hitBase*15/16
	next := b.modeBypass
	if !pass {
		b.onStreak = 0
		next = false
	} else {
		b.onStreak++
		if b.onStreak >= enableStreak {
			next = true
		}
	}
	if next != b.modeBypass {
		b.ModeFlips++
	}
	b.modeBypass = next
}

// ModeBypass reports the current global mode bit.
func (b *BAB) ModeBypass() bool {
	if b.Naive {
		return true
	}
	return b.modeBypass
}

// ShouldBypass decides whether the Miss Fill for a miss in the given set
// should be skipped. Sample sets always follow their own policy so the
// monitors keep measuring both alternatives.
func (b *BAB) ShouldBypass(set uint64) bool {
	b.Decisions++
	var usePB bool
	switch {
	case b.Naive:
		usePB = true
	case setClass(set) == 0:
		usePB = true
	case setClass(set) == 1:
		usePB = false
	default:
		usePB = b.ModeBypass()
	}
	if !usePB {
		return false
	}
	if b.r.Bool(b.Prob) {
		b.BypassedN++
		return true
	}
	return false
}

// StorageBytes returns the SRAM cost of the policy as accounted by Table 5:
// 8 bytes of counters per thread.
func (b *BAB) StorageBytes(threads int) int64 { return int64(8 * threads) }

// MonitorPBMissRate reports the PB monitor's current miss rate (diagnostics).
func (b *BAB) MonitorPBMissRate() float64 {
	if b.accPB == 0 {
		return 0
	}
	return float64(b.missPB) / float64(b.accPB)
}

// MonitorBaseMissRate reports the baseline monitor's current miss rate.
func (b *BAB) MonitorBaseMissRate() float64 {
	if b.accBase == 0 {
		return 0
	}
	return float64(b.missBase) / float64(b.accBase)
}

// ResetMonitors clears the duelling counters (the simulator calls this at
// the warm-up boundary so mode decisions reflect steady-state behaviour).
// The mode bit itself is preserved.
func (b *BAB) ResetMonitors() {
	b.accPB, b.missPB, b.accBase, b.missBase = 0, 0, 0, 0
}
