package core

// DeadBlock is a sampling-dead-block-style bypass predictor (Khan et al.,
// MICRO 2010), the class of prior work Section 9.2 of the BEAR paper
// compares BAB against. Fills are tagged with a signature of the missing
// instruction's PC; when a line is evicted, the predictor learns whether it
// was ever reused. Fills whose signature is predicted dead are bypassed.
//
// Unlike BAB, the scheme optimises hit rate rather than bandwidth, and in a
// DRAM cache it needs a reuse-status update in the in-DRAM tag on the first
// hit to a line — an extra DRAM write the paper calls out as a hidden cost.
// The abl-deadblock experiment quantifies both properties.
type DeadBlock struct {
	table     []uint8 // 2-bit saturating dead counters, indexed by signature
	threshold uint8

	// Diagnostics.
	Trainings uint64
	DeadPred  uint64
}

// NewDeadBlock builds a predictor with the given table size (entries must
// be a power of two) and deadness threshold (counter >= threshold predicts
// dead; 2 is the usual midpoint of a 2-bit counter).
func NewDeadBlock(entries int, threshold uint8) *DeadBlock {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("core: dead-block table size must be a power of two")
	}
	return &DeadBlock{table: make([]uint8, entries), threshold: threshold}
}

// Signature hashes a PC into a table index.
func (d *DeadBlock) Signature(pc uint64) uint16 {
	x := pc * 0x9e3779b97f4a7c15
	return uint16((x >> 48) & uint64(len(d.table)-1))
}

// PredictDead reports whether fills from this signature should be bypassed.
func (d *DeadBlock) PredictDead(sig uint16) bool {
	dead := d.table[sig] >= d.threshold
	if dead {
		d.DeadPred++
	}
	return dead
}

// Train records the fate of an evicted line filled under sig.
func (d *DeadBlock) Train(sig uint16, reused bool) {
	d.Trainings++
	c := &d.table[sig]
	if reused {
		if *c > 0 {
			*c--
		}
	} else if *c < 3 {
		*c++
	}
}
