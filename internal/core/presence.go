// Package core implements the three BEAR components from the paper:
//
//   - BAB, Bandwidth-Aware Bypass (Section 4): set-dueling between a
//     probabilistic bypass policy and conventional always-fill, bounded so
//     bypassing may cost at most 1/16 of the baseline hit rate.
//   - DCP, DRAM-Cache Presence (Section 5): a one-bit-per-LLC-line tracker
//     that tells writebacks whether their line is resident in the DRAM
//     cache, eliminating Writeback Probes.
//   - NTC, Neighboring Tag Cache (Section 6): a small per-bank buffer of
//     the neighbour tags that every Alloy-cache burst carries for free,
//     answering presence queries and eliminating Miss Probes.
//
// The components are policy objects: they hold no bus or DRAM state and are
// driven by the DRAM-cache design in internal/dramcache.
package core

// Presence is the answer DCP (or any other residency tracker) gives about a
// line's membership in the DRAM cache.
type Presence uint8

const (
	// PresUnknown means no residency information is available; correctness
	// requires a probe.
	PresUnknown Presence = iota
	// PresPresent guarantees the line is in the DRAM cache.
	PresPresent
	// PresAbsent guarantees the line is not in the DRAM cache.
	PresAbsent
)

func (p Presence) String() string {
	switch p {
	case PresPresent:
		return "present"
	case PresAbsent:
		return "absent"
	default:
		return "unknown"
	}
}

// DCPBit encodes the DRAM-Cache Presence bit in an SRAM line's aux byte.
const DCPBit uint8 = 1 << 0

// PresenceFromAux converts an LLC line's aux byte to a Presence answer,
// given that the DCP mechanism is enabled and the aux byte is maintained.
func PresenceFromAux(aux uint8) Presence {
	if aux&DCPBit != 0 {
		return PresPresent
	}
	return PresAbsent
}
