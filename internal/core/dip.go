package core

// DIP implements Dynamic Insertion Policy (Qureshi, Jaleel, Patt, Steely,
// Emer — ISCA 2007, the paper's reference [13], and the origin of the
// set-dueling machinery BAB reuses). Two sampled set groups duel: one
// always inserts at MRU (conventional LRU insertion), the other uses
// Bimodal Insertion (inserts at LRU except for 1-in-32 fills). A policy
// selector counter, bumped by sample-set misses, steers the follower sets
// toward whichever policy misses less. Thrashing workloads keep their
// working set resident under BIP; recency-friendly ones stay on LRU.
type DIP struct {
	psel    int32
	pselMax int32
	bipCtr  uint32

	// Diagnostics.
	LRUSampleMisses uint64
	BIPSampleMisses uint64
}

// bipEpsilon is the 1-in-N rate at which BIP still inserts at MRU.
const bipEpsilon = 32

// NewDIP builds the policy; pselMax bounds the selector (1024 in the
// original paper).
func NewDIP(pselMax int32) *DIP {
	if pselMax <= 0 {
		pselMax = 1024
	}
	return &DIP{pselMax: pselMax}
}

// dipClass returns 0 for LRU-sample sets, 1 for BIP-sample sets, 2 for
// followers (1/32 of sets per monitor, like BAB's duel).
func dipClass(set uint64) int {
	switch set % 32 {
	case 2: // distinct from BAB's monitors (0 and 1) so the duels never overlap
		return 0
	case 3:
		return 1
	default:
		return 2
	}
}

// RecordMiss feeds the selector with a demand miss to the given set.
func (d *DIP) RecordMiss(set uint64) {
	switch dipClass(set) {
	case 0: // LRU sample missed: BIP looks better
		d.LRUSampleMisses++
		if d.psel < d.pselMax {
			d.psel++
		}
	case 1: // BIP sample missed: LRU looks better
		d.BIPSampleMisses++
		if d.psel > -d.pselMax {
			d.psel--
		}
	}
}

// InsertAtMRU decides the insertion position for a fill into the set.
func (d *DIP) InsertAtMRU(set uint64) bool {
	useBIP := false
	switch dipClass(set) {
	case 0:
		useBIP = false
	case 1:
		useBIP = true
	default:
		useBIP = d.psel > 0
	}
	if !useBIP {
		return true
	}
	d.bipCtr++
	return d.bipCtr%bipEpsilon == 0
}

// PreferringBIP reports the followers' current policy (diagnostics).
func (d *DIP) PreferringBIP() bool { return d.psel > 0 }
