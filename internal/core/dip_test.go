package core

import "testing"

func TestDIPClassesDisjointFromBAB(t *testing.T) {
	// The DIP monitors must not overlap BAB's (sets 0 and 1 mod 32).
	if dipClass(0) != 2 || dipClass(1) != 2 {
		t.Fatal("DIP monitors collide with BAB monitors")
	}
	if dipClass(2) != 0 || dipClass(34) != 0 {
		t.Fatal("LRU sample sets wrong")
	}
	if dipClass(3) != 1 || dipClass(35) != 1 {
		t.Fatal("BIP sample sets wrong")
	}
}

func TestDIPSelectsBIPUnderThrash(t *testing.T) {
	d := NewDIP(64)
	// LRU sample sets miss constantly, BIP samples don't: followers
	// should switch to BIP insertion.
	for i := 0; i < 200; i++ {
		d.RecordMiss(2) // LRU sample miss
	}
	if !d.PreferringBIP() {
		t.Fatal("selector did not move toward BIP")
	}
	// Followers now mostly insert at LRU (BIP), except the 1/32 epsilon.
	mru := 0
	for i := 0; i < 320; i++ {
		if d.InsertAtMRU(10) {
			mru++
		}
	}
	if mru == 0 || mru > 320/16 {
		t.Fatalf("BIP epsilon rate = %d/320", mru)
	}
}

func TestDIPSelectsLRUForRecencyFriendly(t *testing.T) {
	d := NewDIP(64)
	for i := 0; i < 200; i++ {
		d.RecordMiss(3) // BIP sample miss
	}
	if d.PreferringBIP() {
		t.Fatal("selector moved to BIP despite BIP sample misses")
	}
	if !d.InsertAtMRU(10) {
		t.Fatal("followers should insert at MRU under LRU preference")
	}
}

func TestDIPSampleSetsPinned(t *testing.T) {
	d := NewDIP(64)
	// Regardless of the selector, sample sets follow their own policy.
	for i := 0; i < 100; i++ {
		d.RecordMiss(2)
	}
	if !d.InsertAtMRU(2) {
		t.Fatal("LRU sample set did not insert at MRU")
	}
	bipMRU := 0
	for i := 0; i < 64; i++ {
		if d.InsertAtMRU(3) {
			bipMRU++
		}
	}
	if bipMRU > 4 {
		t.Fatalf("BIP sample set inserted at MRU %d/64 times", bipMRU)
	}
}

func TestDIPSelectorSaturates(t *testing.T) {
	d := NewDIP(8)
	for i := 0; i < 100; i++ {
		d.RecordMiss(2)
	}
	if d.psel != 8 {
		t.Fatalf("psel = %d, want saturated at 8", d.psel)
	}
	for i := 0; i < 100; i++ {
		d.RecordMiss(3)
	}
	if d.psel != -8 {
		t.Fatalf("psel = %d, want saturated at -8", d.psel)
	}
}
