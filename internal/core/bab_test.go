package core

import "testing"

func TestSetClasses(t *testing.T) {
	if setClass(0) != 0 || setClass(32) != 0 {
		t.Error("sets 0 mod 32 should be PB monitors")
	}
	if setClass(1) != 1 || setClass(33) != 1 {
		t.Error("sets 1 mod 32 should be baseline monitors")
	}
	if setClass(2) != 2 || setClass(31) != 2 {
		t.Error("other sets should be followers")
	}
}

func TestMonitorSetsAlwaysFollowOwnPolicy(t *testing.T) {
	b := NewBAB(1.0, 1024, 1) // P = 1: PB sets always bypass
	// Baseline monitor set never bypasses regardless of mode.
	for i := 0; i < 100; i++ {
		if b.ShouldBypass(1) {
			t.Fatal("baseline monitor set bypassed")
		}
	}
	// PB monitor set always bypasses with P=1.
	for i := 0; i < 100; i++ {
		if !b.ShouldBypass(0) {
			t.Fatal("PB monitor set did not bypass with P=1")
		}
	}
}

func TestFollowersObeyModeBit(t *testing.T) {
	b := NewBAB(1.0, 1024, 1)
	// Initially the mode bit is off: followers fill.
	if b.ShouldBypass(5) {
		t.Fatal("follower bypassed with mode off")
	}
	b.modeBypass = true
	if !b.ShouldBypass(5) {
		t.Fatal("follower did not bypass with mode on and P=1")
	}
}

func TestDuelEnablesBypassWhenHitRatesMatch(t *testing.T) {
	b := NewBAB(0.9, 256, 1)
	// Both monitors observe the same 50% miss rate: PB retains the full
	// baseline hit rate, so bypassing should turn on.
	for i := 0; i < 2000; i++ {
		b.RecordAccess(0, i%2 == 0)
		b.RecordAccess(1, i%2 == 0)
	}
	if !b.ModeBypass() {
		t.Fatal("duel did not enable bypass despite equal hit rates")
	}
}

func TestDuelDisablesBypassOnHitRateLoss(t *testing.T) {
	b := NewBAB(0.9, 256, 1)
	// PB monitor misses 60%, baseline 30%: PB hit rate 40% < (15/16)*70%.
	i := 0
	for ; i < 4000; i++ {
		b.RecordAccess(0, i%5 < 3)  // 60% misses
		b.RecordAccess(1, i%10 < 3) // 30% misses
	}
	if b.ModeBypass() {
		t.Fatal("duel kept bypassing despite a large hit-rate loss")
	}
}

func TestDuelToleratesSmallLoss(t *testing.T) {
	b := NewBAB(0.9, 512, 1)
	// Baseline hit rate 64%, PB hit rate 62%: within 15/16 bound
	// (0.62 >= 0.64*0.9375 = 0.60) so bypassing continues. This is the
	// core BAB idea: trade a bounded hit-rate loss for bandwidth.
	for i := 0; i < 6000; i++ {
		b.RecordAccess(0, i%100 < 38) // 38% misses
		b.RecordAccess(1, i%100 < 36) // 36% misses
	}
	if !b.ModeBypass() {
		t.Fatal("BAB disabled bypass for a within-bound hit-rate loss")
	}
}

func TestCounterShiftOnSaturation(t *testing.T) {
	b := NewBAB(0.9, 64, 1)
	for i := 0; i < 200; i++ {
		b.RecordAccess(0, true)
		b.RecordAccess(1, false)
	}
	if b.accPB >= 64 || b.accBase >= 64 {
		t.Fatalf("counters not shifted: accPB=%d accBase=%d", b.accPB, b.accBase)
	}
}

func TestNaiveMode(t *testing.T) {
	b := NewBAB(1.0, 1024, 1)
	b.Naive = true
	// Naive PB bypasses everywhere (P=1), including the baseline monitor.
	for _, set := range []uint64{0, 1, 2, 17} {
		if !b.ShouldBypass(set) {
			t.Fatalf("naive PB did not bypass set %d", set)
		}
	}
}

func TestBypassProbability(t *testing.T) {
	b := NewBAB(0.9, 1024, 1)
	b.Naive = true
	n, byp := 20000, 0
	for i := 0; i < n; i++ {
		if b.ShouldBypass(7) {
			byp++
		}
	}
	got := float64(byp) / float64(n)
	if got < 0.88 || got > 0.92 {
		t.Fatalf("bypass rate = %.3f, want about 0.9", got)
	}
}

func TestStorageBytes(t *testing.T) {
	b := NewBAB(0.9, 0, 1)
	if got := b.StorageBytes(8); got != 64 {
		t.Fatalf("BAB storage = %d bytes, want 64 (Table 5)", got)
	}
}
