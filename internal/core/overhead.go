package core

import "fmt"

// Overhead itemises BEAR's SRAM storage cost as in Table 5 of the paper.
type Overhead struct {
	BABBytes int64 // duelling counters: 8 B per thread
	DCPBytes int64 // one bit per LLC line
	NTCBytes int64 // 44 B per DRAM-cache bank
}

// ComputeOverhead evaluates Table 5 for a machine with the given number of
// hardware threads, LLC lines and DRAM-cache banks.
func ComputeOverhead(threads int, llcLines int64, l4Banks int) Overhead {
	return Overhead{
		BABBytes: int64(8 * threads),
		DCPBytes: (llcLines + 7) / 8,
		NTCBytes: int64(44 * l4Banks),
	}
}

// Total returns the summed overhead in bytes.
func (o Overhead) Total() int64 { return o.BABBytes + o.DCPBytes + o.NTCBytes }

// String renders the Table 5 rows.
func (o Overhead) String() string {
	return fmt.Sprintf(
		"Bandwidth-Aware Bypass    %6d bytes\n"+
			"DRAM Cache Presence       %6d bytes\n"+
			"Neighboring Tag Cache     %6d bytes\n"+
			"Total                     %6d bytes (%.1f KB)",
		o.BABBytes, o.DCPBytes, o.NTCBytes, o.Total(), float64(o.Total())/1024)
}
