package core

import "testing"

func TestNTCUnknownWhenEmpty(t *testing.T) {
	n := NewNTC(4, 8)
	if ans := n.Lookup(0, 100, 1); ans.Known {
		t.Fatal("empty NTC returned a known answer")
	}
}

func TestNTCPresent(t *testing.T) {
	n := NewNTC(4, 8)
	n.Deposit(2, 100, true, 777, false)
	ans := n.Lookup(2, 100, 777)
	if !ans.Known || !ans.Present {
		t.Fatalf("lookup = %+v, want known present", ans)
	}
}

func TestNTCAbsent(t *testing.T) {
	n := NewNTC(4, 8)
	n.Deposit(2, 100, true, 777, false)
	ans := n.Lookup(2, 100, 888)
	if !ans.Known || ans.Present {
		t.Fatalf("lookup = %+v, want known absent", ans)
	}
	if !ans.HasLine || ans.LineDirty {
		t.Fatalf("resident-line info wrong: %+v", ans)
	}
}

func TestNTCAbsentDirtyResident(t *testing.T) {
	n := NewNTC(4, 8)
	n.Deposit(0, 50, true, 123, true)
	ans := n.Lookup(0, 50, 456)
	if !ans.Known || ans.Present || !ans.LineDirty {
		t.Fatalf("lookup = %+v, want known-absent with dirty resident", ans)
	}
}

func TestNTCEmptySetAnswer(t *testing.T) {
	n := NewNTC(4, 8)
	n.Deposit(0, 60, false, 0, false) // tracked set is empty
	ans := n.Lookup(0, 60, 9)
	if !ans.Known || ans.Present || ans.HasLine {
		t.Fatalf("lookup = %+v, want known-absent with no resident line", ans)
	}
}

func TestNTCBankIsolation(t *testing.T) {
	n := NewNTC(4, 8)
	n.Deposit(1, 100, true, 777, false)
	if ans := n.Lookup(0, 100, 777); ans.Known {
		t.Fatal("NTC answered from the wrong bank")
	}
}

func TestNTCLRUEviction(t *testing.T) {
	n := NewNTC(1, 2)
	n.Deposit(0, 1, true, 11, false)
	n.Deposit(0, 2, true, 22, false)
	n.Lookup(0, 1, 11) // refresh set 1
	n.Deposit(0, 3, true, 33, false)
	if ans := n.Lookup(0, 2, 22); ans.Known {
		t.Fatal("LRU entry (set 2) survived")
	}
	if ans := n.Lookup(0, 1, 11); !ans.Known {
		t.Fatal("MRU entry (set 1) was evicted")
	}
}

func TestNTCDepositUpdatesExisting(t *testing.T) {
	n := NewNTC(1, 8)
	n.Deposit(0, 5, true, 10, false)
	n.Deposit(0, 5, true, 20, true)
	ans := n.Lookup(0, 5, 20)
	if !ans.Known || !ans.Present {
		t.Fatalf("updated entry lookup = %+v", ans)
	}
	// Only one entry should track set 5: depositing twice then evicting
	// via other sets should not resurrect the old tag.
	ans = n.Lookup(0, 5, 10)
	if ans.Present {
		t.Fatal("stale tag still answers present")
	}
}

func TestNTCSync(t *testing.T) {
	n := NewNTC(1, 8)
	n.Sync(0, 5, true, 10, false) // no entry: no-op
	if ans := n.Lookup(0, 5, 10); ans.Known {
		t.Fatal("Sync allocated an entry")
	}
	n.Deposit(0, 5, true, 10, false)
	n.Sync(0, 5, true, 99, true)
	ans := n.Lookup(0, 5, 99)
	if !ans.Known || !ans.Present {
		t.Fatalf("post-sync lookup = %+v", ans)
	}
}

func TestNTCStorage(t *testing.T) {
	n := NewNTC(64, 8)
	if got := n.StorageBytes(); got != 64*44 {
		t.Fatalf("NTC storage = %d, want %d (Table 5: 44 B/bank)", got, 64*44)
	}
}

func TestPresence(t *testing.T) {
	if PresenceFromAux(DCPBit) != PresPresent {
		t.Error("set DCP bit should mean present")
	}
	if PresenceFromAux(0) != PresAbsent {
		t.Error("clear DCP bit should mean absent")
	}
	for _, p := range []Presence{PresUnknown, PresPresent, PresAbsent} {
		if p.String() == "" {
			t.Error("empty presence name")
		}
	}
}

func TestOverheadTable5(t *testing.T) {
	// Full-scale machine: 8 threads, 8MB/64B LLC lines, 64 banks.
	o := ComputeOverhead(8, (8<<20)/64, 64)
	if o.BABBytes != 64 {
		t.Errorf("BAB = %d, want 64 B", o.BABBytes)
	}
	if o.DCPBytes != 16<<10 {
		t.Errorf("DCP = %d, want 16 KB", o.DCPBytes)
	}
	if o.NTCBytes != 64*44 {
		t.Errorf("NTC = %d, want %d", o.NTCBytes, 64*44)
	}
	// Paper: "19.2K bytes" (decimal K): 64 + 16384 + 2816 = 19264.
	if total := o.Total(); total != 19264 {
		t.Errorf("total = %d, want 19264 (the paper's 19.2K bytes)", total)
	}
	if o.String() == "" {
		t.Error("empty overhead string")
	}
}
