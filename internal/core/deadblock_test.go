package core

import "testing"

func TestDeadBlockLearning(t *testing.T) {
	d := NewDeadBlock(256, 2)
	sig := d.Signature(0x1234)
	if d.PredictDead(sig) {
		t.Fatal("untrained predictor predicts dead")
	}
	d.Train(sig, false)
	d.Train(sig, false)
	if !d.PredictDead(sig) {
		t.Fatal("two dead evictions did not cross the threshold")
	}
	d.Train(sig, true)
	if d.PredictDead(sig) {
		t.Fatal("a reuse did not pull the counter back")
	}
}

func TestDeadBlockSaturation(t *testing.T) {
	d := NewDeadBlock(256, 2)
	sig := d.Signature(0x42)
	for i := 0; i < 10; i++ {
		d.Train(sig, false)
	}
	if d.table[sig] != 3 {
		t.Fatalf("counter = %d, want saturated at 3", d.table[sig])
	}
	for i := 0; i < 10; i++ {
		d.Train(sig, true)
	}
	if d.table[sig] != 0 {
		t.Fatalf("counter = %d, want 0", d.table[sig])
	}
}

func TestDeadBlockSignatureStable(t *testing.T) {
	d := NewDeadBlock(4096, 2)
	if d.Signature(100) != d.Signature(100) {
		t.Fatal("signature not deterministic")
	}
	// Different PCs should mostly map to different entries.
	seen := map[uint16]bool{}
	for pc := uint64(0); pc < 64; pc++ {
		seen[d.Signature(0x1000+pc*4)] = true
	}
	if len(seen) < 32 {
		t.Fatalf("only %d distinct signatures for 64 PCs", len(seen))
	}
}

func TestDeadBlockBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two size did not panic")
		}
	}()
	NewDeadBlock(100, 2)
}
