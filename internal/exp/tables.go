package exp

import (
	"fmt"
	"io"

	"bear/internal/config"
	"bear/internal/trace"
)

func init() {
	register(Experiment{
		ID:       "tab1",
		Artifact: "Table 1",
		Title:    "Baseline system configuration",
		About:    "The simulated machine (config.Default) at full scale and at the run scale",
		Run: func(p Params, w io.Writer, r *Runner) error {
			for _, sc := range []struct {
				label string
				scale int
			}{{"full scale (paper)", 1}, {fmt.Sprintf("run scale (1/%d)", p.Scale), p.Scale}} {
				sys := config.Default(sc.scale)
				section(w, sc.label)
				fmt.Fprintf(w, "cores            %d x %d-wide, window %d, %d MSHRs\n",
					sys.Core.Count, sys.Core.Width, sys.Core.Window, sys.Core.MSHRs)
				fmt.Fprintf(w, "L1 / L2          %d KB / %d KB per core\n",
					sys.L1.Bytes>>10, sys.L2.Bytes>>10)
				fmt.Fprintf(w, "L3 (LLC)         %d KB, %d-way, %d cycles\n",
					sys.L3.Bytes>>10, sys.L3.Ways, sys.L3.Latency)
				fmt.Fprintf(w, "DRAM cache       %d MB, %d ch x %d banks, %d B/cycle/ch\n",
					sys.CacheBytes>>20, sys.L4.Channels, sys.L4.Banks, sys.L4.BytesPerCycle)
				fmt.Fprintf(w, "main memory      %d ch x %d banks, %d B/cycle/ch (1/%dx L4 bandwidth)\n",
					sys.Mem.Channels, sys.Mem.Banks, sys.Mem.BytesPerCycle,
					sys.L4.TotalBandwidth()/sys.Mem.TotalBandwidth())
				fmt.Fprintf(w, "timings          tCAS/tRCD/tRP=%d, tRAS=%d, tFAW=%d, tREFI/tRFC=%d/%d cycles\n",
					sys.L4.TCAS, sys.L4.TRAS, sys.L4.TFAW, sys.L4.TREFI, sys.L4.TRFC)
			}
			return nil
		},
	})

	register(Experiment{
		ID:       "tab3",
		Artifact: "Table 3",
		Title:    "Mixed-workload compositions and intensity classes",
		About:    "The 8 detailed mixes plus the generated ones used for MIX aggregates",
		Run: func(p Params, w io.Writer, r *Runner) error {
			t := newTable("Mix", "Class", "Workloads")
			n := p.Mixes
			if n < 8 {
				n = 8
			}
			for m := 1; m <= n; m++ {
				wl, err := trace.Mix(m, 8, p.Scale, p.Seed)
				if err != nil {
					return err
				}
				names := ""
				for i, b := range wl.Benchs {
					if i > 0 {
						names += "-"
					}
					names += b.Name
				}
				t.row(wl.Name, trace.MixClass(wl), names)
			}
			t.write(w)
			return nil
		},
	})
}
