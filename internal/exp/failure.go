package exp

import (
	"fmt"
	"io"
	"sort"
)

// SimError is a structured record of one failed simulation unit: the
// design, workload and seed identify (and reproduce) the unit, and for
// recovered panics Stack preserves the worker goroutine's stack trace.
// Workers convert panics into SimErrors so one faulty unit cannot take
// down a sweep; callers see the failure through Future.Wait like any
// other error.
type SimError struct {
	Design   string
	Workload string
	Seed     uint64
	Value    any    // recovered panic value, or the underlying error
	Stack    string // worker stack trace for recovered panics; empty otherwise
}

func (e *SimError) Error() string {
	return fmt.Sprintf("sim %s/%s (seed %d): %v", e.Design, e.Workload, e.Seed, e.Value)
}

// Unwrap exposes the underlying error (when the failure carried one) to
// errors.Is / errors.As, so callers can still classify *fault.Invariant
// and *fault.WatchdogError failures through the isolation layer.
func (e *SimError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Failure is one failed unit of a sweep, as reported by Failures.
type Failure struct {
	Design   string
	Workload string
	Err      error
}

// Failures returns every failed simulation unit so far, sorted by design
// then workload so the failure table is deterministic regardless of which
// worker hit the failure first.
func (r *Runner) Failures() []Failure {
	r.mu.Lock()
	var out []Failure
	for _, f := range r.failures {
		out = append(out, f)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Design != out[j].Design {
			return out[i].Design < out[j].Design
		}
		if out[i].Workload != out[j].Workload {
			return out[i].Workload < out[j].Workload
		}
		return out[i].Err.Error() < out[j].Err.Error()
	})
	return out
}

// WriteFailureTable prints the failure summary for a degraded sweep, one
// line per failed unit. It writes nothing when every unit succeeded.
func (r *Runner) WriteFailureTable(w io.Writer) {
	fs := r.Failures()
	if len(fs) == 0 {
		return
	}
	fmt.Fprintf(w, "\n%d simulation unit(s) failed:\n", len(fs))
	for _, f := range fs {
		fmt.Fprintf(w, "  FAIL %-10s %-10s %v\n", f.Design, f.Workload, f.Err)
	}
}
