package exp

// Cross-paper experiments: the granularity axis. BEAR's designs are all
// line-grained (64 B allocation units); Banshee (Yu et al.) and TicToc
// (Young et al.) attack the same tag- and fill-bandwidth bloat by moving to
// page-grained (4 KB) allocation with on-chip tags. The xgran experiment
// puts the four designs side by side on BEAR's own bandwidth-bloat
// decomposition, which makes the trade visible in one table: page tags
// erase the probe categories but Banshee's whole-page fills re-inflate
// Miss-Fill (throttled by FBR admission), while TicToc's demand fills keep
// Miss-Fill line-grained and pay a residual tag-check probe instead.

import (
	"fmt"
	"io"

	"bear/internal/stats"
	"bear/internal/trace"
)

func init() {
	register(Experiment{
		ID:       "xgran",
		Artifact: "Cross-paper",
		Title:    "Granularity axis: line-grained Alloy/BEAR vs page-grained Banshee/TicToc",
		About:    "16 rate workloads; dramcache/{alloy,page,banshee,tictoc}; bloat decomposition plus speedup over Alloy",
		Run: func(p Params, w io.Writer, r *Runner) error {
			designs := []struct {
				name string
				s    spec
			}{
				{"Alloy", specAlloy},
				{"BEAR", specBEAR},
				{"Banshee", specBanshee},
				{"TicToc", specTicToc},
			}
			all := make([]spec, len(designs))
			for i, d := range designs {
				all[i] = d.s
			}
			r.PrefetchRate(all, trace.RateNames())
			t := newTable("Design", "HitRate", "Hit", "MissProbe", "MissFill", "VictimRd", "WBProbe", "WBUpdate", "Total", "Speedup-vs-Alloy")
			for _, d := range designs {
				a, err := aggRate(r, d.s)
				if err != nil {
					return err
				}
				_, g, err := r.rateSpeedups(d.s, specAlloy)
				if err != nil {
					return err
				}
				l := &a.l4
				t.row(d.name, pct(l.HitRate()),
					f2(l.CategoryFactor(stats.HitProbe)), f2(l.CategoryFactor(stats.MissProbe)),
					f2(l.CategoryFactor(stats.MissFill)), f2(l.CategoryFactor(stats.VictimRead)),
					f2(l.CategoryFactor(stats.WBProbe)), f2(l.CategoryFactor(stats.WBUpdate)),
					f2(l.BloatFactor()), f3(g))
			}
			t.write(w)
			fmt.Fprintln(w, "\nReading: page tags empty the probe columns; Banshee trades them for")
			fmt.Fprintln(w, "FBR-throttled page fills (Miss-Fill), TicToc for a residual tag-check")
			fmt.Fprintln(w, "probe on uncached mappings. Victim-Rd scales with each page's dirty mask.")
			return nil
		},
	})
}
