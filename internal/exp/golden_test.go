package exp

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden outputs under testdata/")

// goldenIDs are the experiments pinned byte-for-byte. They cover every L4
// design flow the refactors touch: fig12 (Alloy/BEAR/BW-Opt speedups over
// rate + mix workloads), fig13 (the six-way bloat breakdown for five
// schemes), tab4 (hit-rate and latency aggregates), and xgran (the
// page-grained Banshee/TicToc designs on the granularity axis).
var goldenIDs = []string{"fig12", "fig13", "tab4", "xgran"}

// TestGoldenOutputs diffs experiment output byte-for-byte against the
// committed goldens. Any change to simulation behaviour — even a reordering
// of two same-cycle DRAM commands — shows up here. Regenerate deliberately
// with:
//
//	go test ./internal/exp -run TestGoldenOutputs -update
//
// The run executes with the robustness features enabled — an attached
// result store and the invariant watchdog (-check) — so byte-identity
// against the committed goldens also proves those features never perturb
// results. A second, store-backed pass then regenerates every artifact
// without executing a single simulation, pinning the resume path.
func TestGoldenOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("golden runs take ~a minute; skipped with -short")
	}
	p := Quick()
	p.Watchdog.Check = true
	store, err := OpenStore(t.TempDir(), p.Fingerprint("golden"))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(p)
	r.Store = store
	for _, id := range goldenIDs {
		e, err := ByID(id)
		if err != nil {
			t.Fatalf("ByID(%q): %v", id, err)
		}
		var buf bytes.Buffer
		if err := e.Run(p, &buf, r); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		path := filepath.Join("testdata", id+".golden")
		if *updateGolden {
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				t.Fatalf("write %s: %v", path, err)
			}
			t.Logf("wrote %s (%d bytes)", path, buf.Len())
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read %s (regenerate with -update): %v", path, err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("%s: output differs from %s\n%s", id, path, firstDiff(want, buf.Bytes()))
		}
	}
	if fs := r.Failures(); len(fs) != 0 {
		t.Fatalf("golden run recorded failures: %+v", fs)
	}
	if *updateGolden {
		return
	}

	// Resume pass: a fresh runner over the populated store must regenerate
	// every artifact byte-identically with zero simulations executed.
	r2 := NewRunner(p)
	r2.Store = store
	for _, id := range goldenIDs {
		e, _ := ByID(id)
		var buf bytes.Buffer
		if err := e.Run(p, &buf, r2); err != nil {
			t.Fatalf("%s (restored): %v", id, err)
		}
		want, err := os.ReadFile(filepath.Join("testdata", id+".golden"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("%s: store-restored output differs from golden\n%s", id, firstDiff(want, buf.Bytes()))
		}
	}
	if n := r2.Count(); n != 0 {
		t.Errorf("store-backed rerun executed %d simulations, want 0", n)
	}
	if r2.Restored() == 0 {
		t.Error("store-backed rerun restored nothing")
	}
}

// firstDiff renders the first differing line of got vs want for a readable
// failure message.
func firstDiff(want, got []byte) string {
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return fmt.Sprintf("first difference at line %d:\n  want: %s\n  got:  %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line counts differ: want %d, got %d", len(wl), len(gl))
}
