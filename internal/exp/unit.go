package exp

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"bear/internal/config"
	"bear/internal/stats"
)

// UnitSpec is the wire form of one sweep unit: a paper-default design by
// name plus a workload. It is the unit of fault isolation in bearserve —
// the server serializes UnitSpecs to worker subprocesses (bearbench
// -worker) and each worker simulates exactly one before reporting back —
// and the unit of resume in bearbench, whose store entries the server's
// share keys with (see Key).
//
// Workload naming follows the Runner's memo vocabulary: a rate benchmark
// name ("soplex"), "MIX<n>" for mixed workload n, or "<bench>@single" for
// a single-program run.
type UnitSpec struct {
	Design   string `json:"design"`
	Workload string `json:"workload"`
}

func (u UnitSpec) String() string { return u.Design + "/" + u.Workload }

// unitDesigns maps UnitSpec design names (case-insensitively) to the
// paper-default spec for that design.
var unitDesigns = map[string]config.Design{
	"nol4": config.NoL4, "alloy": config.Alloy, "bear": config.BEAR,
	"bw-opt": config.BWOpt, "lh": config.LohHill, "mc": config.MostlyClean,
	"incl-alloy": config.InclAlloy, "tis": config.TIS, "sc": config.Sector,
	"banshee": config.Banshee, "tictoc": config.TicToc,
}

// UnitDesignNames lists the design names UnitSpec accepts, sorted, in
// their canonical (Design.String) casing.
func UnitDesignNames() []string {
	var names []string
	for _, d := range unitDesigns {
		names = append(names, d.String())
	}
	sort.Strings(names)
	return names
}

// resolve maps the unit onto the Runner's memo coordinates: the
// paper-default spec for its design and the workload name exactly as the
// memo (and therefore the result store) keys it.
func (u UnitSpec) resolve() (spec, error) {
	d, ok := unitDesigns[strings.ToLower(strings.TrimSpace(u.Design))]
	if !ok {
		return spec{}, fmt.Errorf("exp: unknown design %q (have %s)",
			u.Design, strings.Join(UnitDesignNames(), ", "))
	}
	if strings.TrimSpace(u.Workload) == "" {
		return spec{}, fmt.Errorf("exp: unit %s: empty workload", u)
	}
	return baseSpec(d), nil
}

// Validate reports whether the unit names a known design and a non-empty
// workload (workload existence is checked at run time, when the trace
// catalog is consulted).
func (u UnitSpec) Validate() error {
	_, err := u.resolve()
	return err
}

// Key returns the unit's result-store key — identical to the key the
// Runner uses when it simulates the same (design, workload) itself, so a
// store populated by bearserve workers resumes a bearbench sweep and vice
// versa.
func (u UnitSpec) Key() (string, error) {
	s, err := u.resolve()
	if err != nil {
		return "", err
	}
	return storeKey(memoKey{s: s, wl: u.Workload}), nil
}

// UnitAsync starts (or joins) the unit's simulation and returns a future,
// dispatching on the workload naming convention: "MIX<n>", "<b>@single",
// or a rate benchmark name.
func (r *Runner) UnitAsync(u UnitSpec) (Future, error) {
	s, err := u.resolve()
	if err != nil {
		return Future{}, err
	}
	if rest, ok := strings.CutPrefix(u.Workload, "MIX"); ok {
		n, err := strconv.Atoi(rest)
		if err != nil || n < 1 {
			return Future{}, fmt.Errorf("exp: unit %s: bad mix number %q", u, rest)
		}
		return r.MixAsync(s, n), nil
	}
	if bench, ok := strings.CutSuffix(u.Workload, "@single"); ok {
		return r.SingleAsync(s, bench), nil
	}
	return r.RateAsync(s, u.Workload), nil
}

// RunUnit simulates the unit to completion on the calling goroutine's
// behalf — the whole job of a bearbench -worker process.
func (r *Runner) RunUnit(u UnitSpec) (*stats.Run, error) {
	f, err := r.UnitAsync(u)
	if err != nil {
		return nil, err
	}
	return f.Wait()
}

// ErrInterrupted is returned by units refused because the Runner was
// interrupted. It marks orderly shutdown, not a simulation fault, so it
// never enters the failure table.
var ErrInterrupted = errors.New("exp: runner interrupted")

// Interrupt puts the Runner into drain mode: units already executing run
// to completion (and, with a Store attached, persist their results as
// usual), while any unit not yet started fails fast with ErrInterrupted.
// This is the SIGINT/SIGTERM path — everything finished is checkpointed,
// nothing new begins — and it is safe to call more than once.
func (r *Runner) Interrupt() {
	r.mu.Lock()
	r.interrupted = true
	r.mu.Unlock()
}

// Interrupted reports whether Interrupt has been called.
func (r *Runner) Interrupted() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.interrupted
}
