package exp

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"bear/internal/faultpoint"
	"bear/internal/stats"
)

// runForUnit derives a distinguishable result per key so cross-unit mixups
// would be caught, not just corruption.
func runForUnit(i int) *stats.Run {
	r := sampleRun()
	r.Cycles = uint64(1_000_000 + i)
	r.Workload = fmt.Sprintf("wl%d", i)
	return r
}

// TestStoreConcurrentWriters hammers one store from many goroutines —
// including two writers racing on the same key — and then verifies every
// load returns an intact, correctly attributed result. The store's
// write-to-temp-then-rename discipline must make racing writers
// last-writer-wins at whole-entry granularity, never a spliced file.
func TestStoreConcurrentWriters(t *testing.T) {
	st, err := OpenStore(t.TempDir(), "fp1")
	if err != nil {
		t.Fatal(err)
	}
	const units = 32
	var wg sync.WaitGroup
	for i := 0; i < units; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := fmt.Sprintf("unit-%d", i%16) // i>=16 re-writes a key
			st.Save(key, runForUnit(i%16))
		}()
	}
	wg.Wait()
	if st.SaveErrors() != 0 {
		t.Fatalf("SaveErrors = %d", st.SaveErrors())
	}
	for i := 0; i < 16; i++ {
		key := fmt.Sprintf("unit-%d", i)
		got, ok := st.Load(key)
		if !ok {
			t.Fatalf("%s not loadable after concurrent writes", key)
		}
		if want := runForUnit(i); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s corrupted by concurrent writers:\n  want %+v\n  got  %+v", key, want, got)
		}
	}
}

// TestStoreInjectedWriteFaults arms each write-path fault in turn and pins
// the containment contract: the fault lands in the deterministic fired
// table, and a subsequent Load either serves the intact pre-fault entry or
// reports a miss — never corrupt data.
func TestStoreInjectedWriteFaults(t *testing.T) {
	cases := []struct {
		plan string
		// saveErr: the faulted Save must count a save error (the write
		// itself failed); otherwise the damage is latent until Load.
		saveErr bool
	}{
		{"enospc@store.save/unit-a", true},
		{"torn-write@store.save/unit-a", false},
		{"corrupt-checksum@store.save/unit-a", false},
		{"kill-worker@store.rename/unit-a", true},
	}
	for _, c := range cases {
		t.Run(c.plan, func(t *testing.T) {
			defer faultpoint.Disarm()
			st, err := OpenStore(t.TempDir(), "fp1")
			if err != nil {
				t.Fatal(err)
			}
			plan, err := faultpoint.ParsePlan(c.plan)
			if err != nil {
				t.Fatal(err)
			}
			faultpoint.Arm(plan)
			st.Save("unit-a", sampleRun())
			fired := faultpoint.Fired()
			if len(fired) != 1 || fired[0].String() != c.plan+"#1" {
				t.Fatalf("fired table = %v, want exactly %s#1", fired, c.plan)
			}
			if gotErr := st.SaveErrors() > 0; gotErr != c.saveErr {
				t.Errorf("SaveErrors = %d, want >0: %v", st.SaveErrors(), c.saveErr)
			}
			if res, ok := st.Load("unit-a"); ok {
				// Only a structurally intact entry may load; verify bytes.
				if !reflect.DeepEqual(res, sampleRun()) {
					t.Fatalf("Load served damaged data: %+v", res)
				}
			}
			// The retry (the fault fires exactly once) must repair the
			// entry and resume byte-identically.
			st.Save("unit-a", sampleRun())
			res, ok := st.Load("unit-a")
			if !ok || !reflect.DeepEqual(res, sampleRun()) {
				t.Fatalf("retry after %s did not restore the entry (ok=%v)", c.plan, ok)
			}
		})
	}
}

// TestStoreCrashMidRename proves the crash-window story end to end: a
// write that dies between the temp write and the rename leaves a .tmp
// stray and no entry; a resume neither trusts the stray nor trips over it,
// and after the re-run the store is byte-identical to one that never
// crashed.
func TestStoreCrashMidRename(t *testing.T) {
	defer faultpoint.Disarm()
	cleanDir, crashDir := t.TempDir(), t.TempDir()

	clean, err := OpenStore(cleanDir, "fp1")
	if err != nil {
		t.Fatal(err)
	}
	clean.Save("unit-a", sampleRun())

	crashed, err := OpenStore(crashDir, "fp1")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := faultpoint.ParsePlan("kill-worker@store.rename/unit-a")
	if err != nil {
		t.Fatal(err)
	}
	faultpoint.Arm(plan)
	crashed.Save("unit-a", sampleRun())
	faultpoint.Disarm()

	if _, ok := crashed.Load("unit-a"); ok {
		t.Fatal("entry visible despite crash before rename")
	}
	tmps, err := filepath.Glob(filepath.Join(crashDir, "*.tmp"))
	if err != nil || len(tmps) != 1 {
		t.Fatalf("crash left %d stray temp files (err=%v), want 1", len(tmps), err)
	}

	// The resume path: a fresh store over the same dir re-runs the unit.
	resumed, err := OpenStore(crashDir, "fp1")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := resumed.Load("unit-a"); ok {
		t.Fatal("fresh store trusted the stray temp file")
	}
	resumed.Save("unit-a", sampleRun())

	// Byte-identical to the never-crashed store, stray temp aside.
	wantRaw, err := os.ReadFile(clean.path("unit-a"))
	if err != nil {
		t.Fatal(err)
	}
	gotRaw, err := os.ReadFile(resumed.path("unit-a"))
	if err != nil {
		t.Fatal(err)
	}
	if string(gotRaw) != string(wantRaw) {
		t.Fatal("resumed entry differs from the uninjected run's bytes")
	}
}

// TestStoreIngest covers the worker-envelope path bearserve relies on:
// a frame produced by EncodeEnvelope round-trips through Ingest into a
// loadable entry, while damaged, foreign-fingerprint, or garbage frames
// are refused with nothing persisted.
func TestStoreIngest(t *testing.T) {
	st, err := OpenStore(t.TempDir(), "fp1")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := EncodeEnvelope("fp1", "unit-a", sampleRun())
	if err != nil {
		t.Fatal(err)
	}
	key, err := st.Ingest(raw)
	if err != nil || key != "unit-a" {
		t.Fatalf("Ingest = (%q, %v)", key, err)
	}
	got, ok := st.Load("unit-a")
	if !ok || !reflect.DeepEqual(got, sampleRun()) {
		t.Fatalf("ingested entry not loadable intact (ok=%v)", ok)
	}

	bad := [][]byte{
		[]byte("garbage"),
		raw[:len(raw)/2],
	}
	if foreign, err := EncodeEnvelope("fp-other", "unit-b", sampleRun()); err == nil {
		bad = append(bad, foreign)
	}
	mangled := append([]byte(nil), raw...)
	for i := range mangled {
		// Flip a byte inside the result payload, not the envelope framing.
		if i > len(mangled)/2 && mangled[i] >= '1' && mangled[i] <= '8' {
			mangled[i]++
			break
		}
	}
	bad = append(bad, mangled)
	for i, frame := range bad {
		if key, err := st.Ingest(frame); err == nil {
			t.Errorf("bad frame %d ingested as %q", i, key)
		}
	}
	if _, ok := st.Load("unit-b"); ok {
		t.Error("refused frame persisted an entry")
	}
}

// TestUnitSpecKeysMatchRunner pins the interoperability contract: the key
// a UnitSpec computes is the key the Runner's own store writes, so a
// bearserve-populated store resumes a bearbench sweep.
func TestUnitSpecKeysMatchRunner(t *testing.T) {
	for _, u := range []UnitSpec{
		{Design: "Alloy", Workload: "soplex"},
		{Design: "bear", Workload: "MIX3"},
		{Design: "BEAR", Workload: "soplex@single"},
	} {
		key, err := u.Key()
		if err != nil {
			t.Fatalf("%s: %v", u, err)
		}
		s, err := u.resolve()
		if err != nil {
			t.Fatal(err)
		}
		if want := storeKey(memoKey{s: s, wl: u.Workload}); key != want {
			t.Errorf("%s: Key=%q, runner uses %q", u, key, want)
		}
	}
	if _, err := (UnitSpec{Design: "nope", Workload: "x"}).Key(); err == nil {
		t.Error("unknown design accepted")
	}
	if err := (UnitSpec{Design: "Alloy"}).Validate(); err == nil {
		t.Error("empty workload accepted")
	}
}

// TestRunnerInterrupt: in-flight and completed units persist; units
// requested after Interrupt fail fast with ErrInterrupted and stay out of
// the failure table.
func TestRunnerInterrupt(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real simulation; skipped with -short")
	}
	p := tinyParams()
	st, err := OpenStore(t.TempDir(), p.Fingerprint("test-build"))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(p)
	r.Store = st
	if _, err := r.Rate(specAlloy, "soplex"); err != nil {
		t.Fatal(err)
	}
	r.Interrupt()
	if !r.Interrupted() {
		t.Fatal("Interrupted() false after Interrupt")
	}
	if _, err := r.Rate(specAlloy, "libq"); err != ErrInterrupted {
		t.Fatalf("post-interrupt unit error = %v, want ErrInterrupted", err)
	}
	// The pre-interrupt unit is already memoised and still served.
	if _, err := r.Rate(specAlloy, "soplex"); err != nil {
		t.Fatalf("memoised unit unavailable after interrupt: %v", err)
	}
	if n := len(r.Failures()); n != 0 {
		t.Fatalf("interrupt polluted the failure table: %v", r.Failures())
	}
	// And it was checkpointed: a fresh runner restores it from the store.
	r2 := NewRunner(p)
	r2.Store = st
	if _, err := r2.Rate(specAlloy, "soplex"); err != nil {
		t.Fatal(err)
	}
	if r2.Restored() != 1 || r2.Count() != 0 {
		t.Fatalf("resume after interrupt: Restored=%d Count=%d, want 1/0", r2.Restored(), r2.Count())
	}
}
