package exp

import (
	"fmt"
	"io"
	"strings"
)

// table renders aligned text tables for experiment output.
type table struct {
	header []string
	rows   [][]string
}

func newTable(cols ...string) *table { return &table{header: cols} }

func (t *table) row(cells ...any) {
	out := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			out[i] = v
		case float64:
			out[i] = fmt.Sprintf("%.2f", v)
		case int:
			out[i] = fmt.Sprintf("%d", v)
		case uint64:
			out[i] = fmt.Sprintf("%d", v)
		default:
			out[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, out)
}

func (t *table) write(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i == 0 {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = fmt.Sprintf("%*s", widths[i], c)
			}
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.header)
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, r := range t.rows {
		line(r)
	}
}

func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }
func f2(x float64) string  { return fmt.Sprintf("%.2f", x) }
func f3(x float64) string  { return fmt.Sprintf("%.3f", x) }
func cyc(x float64) string { return fmt.Sprintf("%.0f", x) }
func section(w io.Writer, title string) {
	fmt.Fprintf(w, "\n%s\n%s\n", title, strings.Repeat("=", len(title)))
}
