package exp

import (
	"fmt"
	"io"

	"bear/internal/config"
	"bear/internal/core"
	"bear/internal/stats"
	"bear/internal/trace"
)

// Named system specs used across experiments.
var (
	specNoL4  = baseSpec(config.NoL4)
	specAlloy = baseSpec(config.Alloy)
	specBEAR  = baseSpec(config.BEAR)
	specBWOpt = baseSpec(config.BWOpt)
	specLH    = baseSpec(config.LohHill)
	specMC    = baseSpec(config.MostlyClean)
	specIncl  = baseSpec(config.InclAlloy)
	specTIS   = baseSpec(config.TIS)
	specSC    = baseSpec(config.Sector)

	// Page-grained cross-paper designs (see crosspaper.go).
	specBanshee = baseSpec(config.Banshee)
	specTicToc  = baseSpec(config.TicToc)
)

func specPB(p float64) spec {
	s := baseSpec(config.Alloy)
	s.bypass = config.ProbBypass
	s.prob = p
	return s
}

func specBAB() spec {
	s := baseSpec(config.Alloy)
	s.bypass = config.BandwidthAware
	return s
}

func specBABDCP() spec {
	s := specBAB()
	s.dcp = true
	return s
}

// aggRate byte-weight-aggregates the 16 rate workloads under one spec.
// All 16 simulations run concurrently; the fold happens in catalog order.
func aggRate(r *Runner, s spec) (*aggregate, error) {
	names := trace.RateNames()
	futs := make([]Future, len(names))
	for i, name := range names {
		futs[i] = r.RateAsync(s, name)
	}
	var a aggregate
	for _, f := range futs {
		run, err := f.Wait()
		if err != nil {
			return nil, err
		}
		a.add(run)
	}
	return &a, nil
}

// aggMix aggregates the first n mixes.
func aggMix(r *Runner, s spec, n int) (*aggregate, error) {
	futs := make([]Future, n)
	for m := 1; m <= n; m++ {
		futs[m-1] = r.MixAsync(s, m)
	}
	var a aggregate
	for _, f := range futs {
		run, err := f.Wait()
		if err != nil {
			return nil, err
		}
		a.add(run)
	}
	return &a, nil
}

func init() {
	register(Experiment{
		ID:       "fig3",
		Artifact: "Figure 3",
		Title:    "Loh-Hill vs Alloy vs BW-Opt: Bloat Factor, hit latency, speedup over no-DRAM-cache",
		About:    "16 rate workloads; dramcache/{lohhill,alloy} with Ideal knob; paper: bloat 7.3x/3.8x/1.0x",
		Run: func(p Params, w io.Writer, r *Runner) error {
			r.PrefetchRate([]spec{specLH, specAlloy, specBWOpt, specNoL4}, trace.RateNames())
			t := newTable("Design", "BloatFactor", "HitLatency", "Speedup-vs-NoL4")
			for _, d := range []struct {
				name string
				s    spec
			}{{"LH", specLH}, {"Alloy", specAlloy}, {"BW-Opt", specBWOpt}} {
				a, err := aggRate(r, d.s)
				if err != nil {
					return err
				}
				_, g, err := r.rateSpeedups(d.s, specNoL4)
				if err != nil {
					return err
				}
				t.row(d.name, f2(a.l4.BloatFactor()), cyc(a.l4.AvgHitLatency()), f3(g))
			}
			t.write(w)
			return nil
		},
	})

	register(Experiment{
		ID:       "fig4",
		Artifact: "Figure 4",
		Title:    "Alloy bandwidth breakdown vs BW-Opt, and potential performance",
		About:    "16 rate workloads; stats six-way breakdown; paper: Alloy 3.8x total (Hit 1.25), +22% potential",
		Run: func(p Params, w io.Writer, r *Runner) error {
			r.PrefetchRate([]spec{specAlloy, specBWOpt}, trace.RateNames())
			t := newTable("Design", "Hit", "MissProbe", "MissFill", "WBProbe", "WBUpdate", "WBFill", "Total")
			for _, d := range []struct {
				name string
				s    spec
			}{{"Alloy", specAlloy}, {"BW-Opt", specBWOpt}} {
				a, err := aggRate(r, d.s)
				if err != nil {
					return err
				}
				l := &a.l4
				t.row(d.name,
					f2(l.CategoryFactor(stats.HitProbe)), f2(l.CategoryFactor(stats.MissProbe)),
					f2(l.CategoryFactor(stats.MissFill)), f2(l.CategoryFactor(stats.WBProbe)),
					f2(l.CategoryFactor(stats.WBUpdate)), f2(l.CategoryFactor(stats.WBFill)),
					f2(l.BloatFactor()))
			}
			t.write(w)
			_, g, err := r.rateSpeedups(specBWOpt, specAlloy)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "\nPotential performance (BW-Opt over Alloy, geomean): %.3f (paper: ~1.22)\n", g)
			return nil
		},
	})

	register(Experiment{
		ID:       "fig5",
		Artifact: "Figure 5",
		Title:    "Naive Probabilistic Bypass (P=50%, P=90%): hit latency, hit rate, speedup",
		About:    "16 rate workloads; core/bab in naive mode; paper: -12% latency at P=90 but hit-rate losses (Gems, zeusmp) erase the gains",
		Run: func(p Params, w io.Writer, r *Runner) error {
			r.PrefetchRate([]spec{specAlloy, specPB(0.5), specPB(0.9)}, trace.RateNames())
			t := newTable("Workload", "dHitLat50", "dHitLat90", "dHitRate50", "dHitRate90", "Speedup50", "Speedup90")
			var s50s, s90s []float64
			for _, name := range trace.RateNames() {
				base, err := r.Rate(specAlloy, name)
				if err != nil {
					return err
				}
				p50, err := r.Rate(specPB(0.5), name)
				if err != nil {
					return err
				}
				p90, err := r.Rate(specPB(0.9), name)
				if err != nil {
					return err
				}
				latRed := func(x *stats.Run) string {
					if base.L4.AvgHitLatency() == 0 {
						return "-"
					}
					return pct(1 - x.L4.AvgHitLatency()/base.L4.AvgHitLatency())
				}
				hrDelta := func(x *stats.Run) string {
					return fmt.Sprintf("%+.1fpp", 100*(x.L4.HitRate()-base.L4.HitRate()))
				}
				s50 := p50.Speedup(base)
				s90 := p90.Speedup(base)
				s50s, s90s = append(s50s, s50), append(s90s, s90)
				t.row(name, latRed(p50), latRed(p90), hrDelta(p50), hrDelta(p90), f3(s50), f3(s90))
			}
			t.row("GEOMEAN", "", "", "", "", f3(stats.GeoMean(s50s)), f3(stats.GeoMean(s90s)))
			t.write(w)
			return nil
		},
	})

	register(Experiment{
		ID:       "fig7",
		Artifact: "Figure 7",
		Title:    "Bandwidth-Aware Bypass: speedup over Alloy",
		About:    "16 rate workloads; core/bab set-dueling; paper: +5.1% average, up to +15%, no workload degraded",
		Run: func(p Params, w io.Writer, r *Runner) error {
			r.PrefetchRate([]spec{specAlloy, specBAB()}, trace.RateNames())
			t := newTable("Workload", "Speedup", "HitRate-Alloy", "HitRate-BAB")
			var sp []float64
			for _, name := range trace.RateNames() {
				base, err := r.Rate(specAlloy, name)
				if err != nil {
					return err
				}
				bab, err := r.Rate(specBAB(), name)
				if err != nil {
					return err
				}
				s := bab.Speedup(base)
				sp = append(sp, s)
				t.row(name, f3(s), pct(base.L4.HitRate()), pct(bab.L4.HitRate()))
			}
			t.row("GEOMEAN", f3(stats.GeoMean(sp)), "", "")
			t.write(w)
			return nil
		},
	})

	register(Experiment{
		ID:       "fig9",
		Artifact: "Figure 9",
		Title:    "DRAM Cache Presence on top of BAB: speedup over Alloy",
		About:    "16 rate workloads; core DCP bit in L3; paper: +4% over BAB (max +12.8% omnetpp, +11.3% gcc)",
		Run: func(p Params, w io.Writer, r *Runner) error {
			r.PrefetchRate([]spec{specAlloy, specBAB(), specBABDCP()}, trace.RateNames())
			t := newTable("Workload", "BAB", "BAB+DCP")
			var a, b []float64
			for _, name := range trace.RateNames() {
				base, err := r.Rate(specAlloy, name)
				if err != nil {
					return err
				}
				bab, err := r.Rate(specBAB(), name)
				if err != nil {
					return err
				}
				dcp, err := r.Rate(specBABDCP(), name)
				if err != nil {
					return err
				}
				sa, sb := bab.Speedup(base), dcp.Speedup(base)
				a, b = append(a, sa), append(b, sb)
				t.row(name, f3(sa), f3(sb))
			}
			t.row("GEOMEAN", f3(stats.GeoMean(a)), f3(stats.GeoMean(b)))
			t.write(w)
			return nil
		},
	})

	register(Experiment{
		ID:       "fig11",
		Artifact: "Figure 11",
		Title:    "Neighboring Tag Cache on top of BAB+DCP: speedup over Alloy",
		About:    "16 rate workloads; core/ntc; paper: +2% over BAB+DCP, plus miss-latency reduction via squashed parallel accesses",
		Run: func(p Params, w io.Writer, r *Runner) error {
			r.PrefetchRate([]spec{specAlloy, specBAB(), specBABDCP(), specBEAR}, trace.RateNames())
			t := newTable("Workload", "BAB", "BAB+DCP", "BAB+DCP+NTC")
			var a, b, c []float64
			for _, name := range trace.RateNames() {
				base, err := r.Rate(specAlloy, name)
				if err != nil {
					return err
				}
				bab, err := r.Rate(specBAB(), name)
				if err != nil {
					return err
				}
				dcp, err := r.Rate(specBABDCP(), name)
				if err != nil {
					return err
				}
				ntc, err := r.Rate(specBEAR, name)
				if err != nil {
					return err
				}
				sa, sb, sc := bab.Speedup(base), dcp.Speedup(base), ntc.Speedup(base)
				a, b, c = append(a, sa), append(b, sb), append(c, sc)
				t.row(name, f3(sa), f3(sb), f3(sc))
			}
			t.row("GEOMEAN", f3(stats.GeoMean(a)), f3(stats.GeoMean(b)), f3(stats.GeoMean(c)))
			t.write(w)
			return nil
		},
	})

	register(Experiment{
		ID:       "fig12",
		Artifact: "Figure 12",
		Title:    "Alloy vs BEAR vs BW-Opt across all workloads (RATE / MIX / ALL)",
		About:    "16 rate + MIX workloads; all modules; paper: BEAR +10.1%, BW-Opt +22% over Alloy",
		Run: func(p Params, w io.Writer, r *Runner) error {
			r.PrefetchRate([]spec{specAlloy, specBEAR, specBWOpt}, trace.RateNames())
			r.PrefetchMixWS([]spec{specAlloy, specBEAR, specBWOpt}, p.Mixes)
			t := newTable("Workload", "Alloy", "BEAR", "BW-Opt")
			perBear, _, err := r.rateSpeedups(specBEAR, specAlloy)
			if err != nil {
				return err
			}
			perOpt, _, err := r.rateSpeedups(specBWOpt, specAlloy)
			if err != nil {
				return err
			}
			for _, name := range trace.RateNames() {
				t.row(name, "1.000", f3(perBear[name]), f3(perOpt[name]))
			}
			mixBear, _, err := r.mixNormWS(specBEAR, specAlloy, p.Mixes)
			if err != nil {
				return err
			}
			mixOpt, _, err := r.mixNormWS(specBWOpt, specAlloy, p.Mixes)
			if err != nil {
				return err
			}
			for m := 1; m <= p.Mixes; m++ {
				name := fmt.Sprintf("MIX%d", m)
				t.row(name, "1.000", f3(mixBear[name]), f3(mixOpt[name]))
			}
			rateB, mixB, allB, err := r.allGeomean(specBEAR, specAlloy)
			if err != nil {
				return err
			}
			rateO, mixO, allO, err := r.allGeomean(specBWOpt, specAlloy)
			if err != nil {
				return err
			}
			t.row("RATE", "1.000", f3(rateB), f3(rateO))
			t.row("MIX", "1.000", f3(mixB), f3(mixO))
			t.row("ALL", "1.000", f3(allB), f3(allO))
			t.write(w)
			fmt.Fprintf(w, "\nPaper: BEAR ALL54 = 1.101, BW-Opt = ~1.22\n")
			return nil
		},
	})

	register(Experiment{
		ID:       "tab4",
		Artifact: "Table 4",
		Title:    "DRAM-cache hit rate and latencies: Alloy vs BEAR",
		About:    "16 rate workloads aggregate; paper: 63.2%->61.0% hit rate, 239->182 hit latency, 391->356 miss latency",
		Run: func(p Params, w io.Writer, r *Runner) error {
			r.PrefetchRate([]spec{specAlloy, specBEAR}, trace.RateNames())
			t := newTable("Design", "HitRate", "HitLat", "MissLat", "AvgLat")
			for _, d := range []struct {
				name string
				s    spec
			}{{"Alloy", specAlloy}, {"BEAR", specBEAR}} {
				a, err := aggRate(r, d.s)
				if err != nil {
					return err
				}
				l := &a.l4
				t.row(d.name, pct(l.HitRate()), cyc(l.AvgHitLatency()), cyc(l.AvgMissLatency()), cyc(l.AvgLatency()))
			}
			t.write(w)
			return nil
		},
	})

	register(Experiment{
		ID:       "fig13",
		Artifact: "Figure 13",
		Title:    "Bloat-factor breakdown: Alloy / BAB / BAB+DCP / BEAR / BW-Opt x RATE, MIX, ALL",
		About:    "Byte-weighted aggregate per scheme; paper: 3.8x baseline reduced 32% by BEAR",
		Run: func(p Params, w io.Writer, r *Runner) error {
			schemes := []struct {
				name string
				s    spec
			}{
				{"(a) Alloy", specAlloy},
				{"(b) BAB", specBAB()},
				{"(c) BAB+DCP", specBABDCP()},
				{"(d) BEAR", specBEAR},
				{"(e) BW-Opt", specBWOpt},
			}
			all := make([]spec, len(schemes))
			for i, sch := range schemes {
				all[i] = sch.s
			}
			r.PrefetchRate(all, trace.RateNames())
			r.PrefetchMix(all, p.Mixes)
			for _, group := range []string{"RATE", "MIX", "ALL"} {
				section(w, group)
				t := newTable("Scheme", "Hit", "MissProbe", "MissFill", "WBProbe", "WBUpdate", "WBFill", "Total")
				for _, sch := range schemes {
					var a aggregate
					if group == "RATE" || group == "ALL" {
						ar, err := aggRate(r, sch.s)
						if err != nil {
							return err
						}
						a.l4 = ar.l4
					}
					if group == "MIX" || group == "ALL" {
						am, err := aggMix(r, sch.s, p.Mixes)
						if err != nil {
							return err
						}
						if group == "MIX" {
							a.l4 = am.l4
						} else {
							for i := range a.l4.Bytes {
								a.l4.Bytes[i] += am.l4.Bytes[i]
							}
							a.l4.ReadHits += am.l4.ReadHits
							a.l4.ReadMisses += am.l4.ReadMisses
						}
					}
					l := &a.l4
					t.row(sch.name,
						f2(l.CategoryFactor(stats.HitProbe)), f2(l.CategoryFactor(stats.MissProbe)),
						f2(l.CategoryFactor(stats.MissFill)), f2(l.CategoryFactor(stats.WBProbe)),
						f2(l.CategoryFactor(stats.WBUpdate)), f2(l.CategoryFactor(stats.WBFill)),
						f2(l.BloatFactor()))
				}
				t.write(w)
			}
			return nil
		},
	})

	register(Experiment{
		ID:       "fig14",
		Artifact: "Figure 14",
		Title:    "Sensitivity to DRAM-cache bandwidth (4x/8x/16x) and capacity (0.5/1/2 GB)",
		About:    "16 rate workloads per point; BEAR normalized to Alloy at each configuration; paper: >10% everywhere",
		Run: func(p Params, w io.Writer, r *Runner) error {
			var variants []spec
			for _, ch := range []int{2, 4, 8} {
				al, be := specAlloy, specBEAR
				al.channels, be.channels = ch, ch
				variants = append(variants, al, be)
			}
			for _, mb := range []int64{512, 1024, 2048} {
				al, be := specAlloy, specBEAR
				al.capacityMB, be.capacityMB = mb, mb
				variants = append(variants, al, be)
			}
			r.PrefetchRate(variants, trace.RateNames())
			section(w, "(a) Bandwidth")
			ta := newTable("L4-Bandwidth", "Channels", "BEAR-vs-Alloy")
			for _, ch := range []int{2, 4, 8} {
				al, be := specAlloy, specBEAR
				al.channels, be.channels = ch, ch
				_, g, err := r.rateSpeedups(be, al)
				if err != nil {
					return err
				}
				ta.row(fmt.Sprintf("%dx", ch*2), ch, f3(g))
			}
			ta.write(w)

			section(w, "(b) Capacity")
			tb := newTable("Capacity", "BEAR-vs-Alloy")
			for _, mb := range []int64{512, 1024, 2048} {
				al, be := specAlloy, specBEAR
				al.capacityMB, be.capacityMB = mb, mb
				_, g, err := r.rateSpeedups(be, al)
				if err != nil {
					return err
				}
				tb.row(fmt.Sprintf("%.1fGB", float64(mb)/1024), f3(g))
			}
			tb.write(w)
			return nil
		},
	})

	register(Experiment{
		ID:       "fig15",
		Artifact: "Figure 15",
		Title:    "Sensitivity to DRAM banks (64..2048 total)",
		About:    "16 rate workloads per point; paper: +11% at 64 banks flattening to +6% at >=512 (bus contention component)",
		Run: func(p Params, w io.Writer, r *Runner) error {
			var variants []spec
			for _, per := range []int{16, 32, 64, 128, 256, 512} {
				al, be := specAlloy, specBEAR
				al.banks, be.banks = per, per
				variants = append(variants, al, be)
			}
			r.PrefetchRate(variants, trace.RateNames())
			t := newTable("TotalBanks", "PerChannel", "BEAR-vs-Alloy")
			for _, per := range []int{16, 32, 64, 128, 256, 512} {
				al, be := specAlloy, specBEAR
				al.banks, be.banks = per, per
				_, g, err := r.rateSpeedups(be, al)
				if err != nil {
					return err
				}
				t.row(per*4, per, f3(g))
			}
			t.write(w)
			return nil
		},
	})

	register(Experiment{
		ID:       "fig16",
		Artifact: "Figure 16",
		Title:    "Tags-In-SRAM (64MB) and Sector Cache (6MB) vs Alloy and BEAR",
		About:    "16 rate workloads; dramcache/{tis,sector}; paper: BEAR +10.1% > TIS +7.5% > Alloy > SC -18%",
		Run: func(p Params, w io.Writer, r *Runner) error {
			r.PrefetchRate([]spec{specAlloy, specBEAR, specTIS, specSC}, trace.RateNames())
			t := newTable("Design", "HitRate", "HitLat", "MissLat", "BloatFactor", "Speedup-vs-Alloy")
			for _, d := range []struct {
				name string
				s    spec
			}{{"Alloy", specAlloy}, {"BEAR", specBEAR}, {"TIS", specTIS}, {"SC", specSC}} {
				a, err := aggRate(r, d.s)
				if err != nil {
					return err
				}
				_, g, err := r.rateSpeedups(d.s, specAlloy)
				if err != nil {
					return err
				}
				l := &a.l4
				t.row(d.name, pct(l.HitRate()), cyc(l.AvgHitLatency()), cyc(l.AvgMissLatency()),
					f2(l.BloatFactor()), f3(g))
			}
			t.write(w)
			return nil
		},
	})

	register(Experiment{
		ID:       "fig17",
		Artifact: "Figure 17",
		Title:    "DRAM-cache designs vs no-DRAM-cache: LH, MC, Alloy, Incl-Alloy, BEAR",
		About:    "RATE/MIX/ALL geomeans over no-L4 baseline; paper: 1.27 / 1.30 / 1.46 / 1.55 / 1.66",
		Run: func(p Params, w io.Writer, r *Runner) error {
			designs := []spec{specNoL4, specLH, specMC, specAlloy, specIncl, specBEAR}
			r.PrefetchRate(designs, trace.RateNames())
			r.PrefetchMixWS(designs, p.Mixes)
			t := newTable("Design", "RATE", "MIX", "ALL")
			for _, d := range []struct {
				name string
				s    spec
			}{
				{"LH", specLH}, {"MC", specMC}, {"Alloy", specAlloy},
				{"Incl-Alloy", specIncl}, {"BEAR", specBEAR},
			} {
				rate, mix, all, err := r.allGeomean(d.s, specNoL4)
				if err != nil {
					return err
				}
				t.row(d.name, f3(rate), f3(mix), f3(all))
			}
			t.write(w)
			return nil
		},
	})

	register(Experiment{
		ID:       "tab2",
		Artifact: "Table 2",
		Title:    "Workload characteristics: target vs measured L3 MPKI",
		About:    "Validates the synthetic SPEC substitutes against Table 2",
		Run: func(p Params, w io.Writer, r *Runner) error {
			r.PrefetchRate([]spec{specAlloy}, trace.RateNames())
			t := newTable("Workload", "TargetMPKI", "MeasuredMPKI", "Footprint", "Class", "L4HitRate")
			for _, b := range trace.Catalog {
				run, err := r.Rate(specAlloy, b.Name)
				if err != nil {
					return err
				}
				class := "Medium"
				if b.HighIntensive() {
					class = "High"
				}
				t.row(b.Name, fmt.Sprintf("%.1f", b.MPKI), fmt.Sprintf("%.1f", run.MPKI()),
					fmt.Sprintf("%dMB", b.FootprintMB), class, pct(run.L4.HitRate()))
			}
			t.write(w)
			return nil
		},
	})

	register(Experiment{
		ID:       "tab5",
		Artifact: "Table 5",
		Title:    "Storage overhead of BEAR",
		About:    "Computed from the full-scale Table 1 geometry; paper: 19.2K bytes total",
		Run: func(p Params, w io.Writer, r *Runner) error {
			sys := config.Default(1)
			o := core.ComputeOverhead(sys.Core.Count,
				int64(sys.L3.Bytes/sys.L3.LineBytes), sys.L4.Channels*sys.L4.Banks)
			fmt.Fprintln(w, o.String())
			return nil
		},
	})
}
