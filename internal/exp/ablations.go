package exp

// Ablation experiments for the design choices DESIGN.md calls out. These
// go beyond the paper's figures: they probe the sensitivity studies the
// paper reports only as conclusions ("we conduct a sensitivity study using
// 90% probability...", "we found Delta = 1/16 gave the best overall
// performance") and the policy alternatives it discusses in prose
// (writeback-allocate, predictor quality).

import (
	"fmt"
	"io"

	"bear/internal/config"
	"bear/internal/stats"
	"bear/internal/trace"
)

// ablationWorkloads is a representative subset spanning the behaviours the
// policies react to: bypass-friendly (mcf), streaming (lbm, libq),
// reuse-heavy where bypass hurts (Gems, zeusmp), writeback-heavy (omnetpp).
var ablationWorkloads = []string{"mcf", "lbm", "libq", "omnetpp", "Gems", "zeusmp"}

func ablSpeedups(r *Runner, s, base spec) (float64, error) {
	bases := make([]Future, len(ablationWorkloads))
	vs := make([]Future, len(ablationWorkloads))
	for i, name := range ablationWorkloads {
		bases[i] = r.RateAsync(base, name)
		vs[i] = r.RateAsync(s, name)
	}
	var xs []float64
	for i := range ablationWorkloads {
		b, err := bases[i].Wait()
		if err != nil {
			return 0, err
		}
		v, err := vs[i].Wait()
		if err != nil {
			return 0, err
		}
		xs = append(xs, v.Speedup(b))
	}
	return stats.GeoMean(xs), nil
}

func init() {
	register(Experiment{
		ID:       "abl-bab",
		Artifact: "Ablation",
		Title:    "BAB bypass-probability sweep (the paper selects P=90%)",
		About:    "Section 4.2's sensitivity: speedup and hit-rate loss vs P on representative workloads",
		Run: func(p Params, w io.Writer, r *Runner) error {
			variants := []spec{specAlloy}
			for _, prob := range []float64{0.5, 0.75, 0.9, 0.95} {
				s := specBAB()
				s.prob = prob
				variants = append(variants, s)
			}
			r.PrefetchRate(variants, ablationWorkloads)
			t := newTable("P", "Speedup-vs-Alloy", "HitRate", "FillBytes/Read")
			base, err := ablAgg(r, specAlloy)
			if err != nil {
				return err
			}
			t.row("fill-always", "1.000", pct(base.l4.HitRate()), f2(fillPerRead(&base.l4)))
			for _, prob := range []float64{0.5, 0.75, 0.9, 0.95} {
				s := specBAB()
				s.prob = prob
				g, err := ablSpeedups(r, s, specAlloy)
				if err != nil {
					return err
				}
				a, err := ablAgg(r, s)
				if err != nil {
					return err
				}
				t.row(fmt.Sprintf("%.0f%%", 100*prob), f3(g), pct(a.l4.HitRate()), f2(fillPerRead(&a.l4)))
			}
			t.write(w)
			fmt.Fprintln(w, "\nExpected: speedup grows with P while the duel bounds the hit-rate loss;")
			fmt.Fprintln(w, "the paper picked P=90% on the same grounds.")
			return nil
		},
	})

	register(Experiment{
		ID:       "abl-ntc",
		Artifact: "Ablation",
		Title:    "Neighboring Tag Cache capacity sweep (the paper uses 8 entries/bank)",
		About:    "Probes saved and speedup as the per-bank NTC grows",
		Run: func(p Params, w io.Writer, r *Runner) error {
			variants := []spec{specAlloy}
			for _, n := range []int{2, 4, 8, 16, 32} {
				s := specBEAR
				s.ntcEntries = n
				variants = append(variants, s)
			}
			r.PrefetchRate(variants, ablationWorkloads)
			t := newTable("Entries/bank", "Speedup-vs-Alloy", "ProbesSaved", "ParallelSquashed")
			for _, n := range []int{2, 4, 8, 16, 32} {
				s := specBEAR
				s.ntcEntries = n
				g, err := ablSpeedups(r, s, specAlloy)
				if err != nil {
					return err
				}
				var saved, squashed uint64
				for _, name := range ablationWorkloads {
					run, err := r.Rate(s, name)
					if err != nil {
						return err
					}
					saved += run.L4.NTCProbesSaved
					squashed += run.L4.NTCParallelSqsh
				}
				t.row(n, f3(g), saved, squashed)
			}
			t.write(w)
			return nil
		},
	})

	register(Experiment{
		ID:       "abl-pred",
		Artifact: "Ablation",
		Title:    "Miss-predictor quality: always-hit vs MAP-I vs perfect oracle",
		About:    "Serialisation penalty of mispredictions on the Alloy baseline (MAP-I is the paper's choice)",
		Run: func(p Params, w io.Writer, r *Runner) error {
			variants := []spec{specAlloy}
			for _, mode := range []config.PredMode{config.PredAlwaysHit, config.PredMAPI, config.PredPerfect} {
				s := specAlloy
				s.pred = mode
				variants = append(variants, s)
			}
			r.PrefetchRate(variants, ablationWorkloads)
			t := newTable("Predictor", "Speedup-vs-MAP-I", "MissLat", "MemWastedReads")
			base := specAlloy
			for _, mode := range []config.PredMode{config.PredAlwaysHit, config.PredMAPI, config.PredPerfect} {
				s := specAlloy
				s.pred = mode
				g, err := ablSpeedups(r, s, base)
				if err != nil {
					return err
				}
				a, err := ablAgg(r, s)
				if err != nil {
					return err
				}
				t.row(mode.String(), f3(g), cyc(a.l4.AvgMissLatency()), "-")
			}
			t.write(w)
			fmt.Fprintln(w, "\nExpected: always-hit pays full probe-then-memory serialisation on misses;")
			fmt.Fprintln(w, "perfect bounds what MAP-I can recover.")
			return nil
		},
	})

	register(Experiment{
		ID:       "abl-wballoc",
		Artifact: "Ablation",
		Title:    "Writeback-allocate vs no-allocate (Section 2.3's sixth bloat source)",
		About:    "Switching the baseline to writeback-allocate activates the WB Fill category",
		Run: func(p Params, w io.Writer, r *Runner) error {
			wbAlloc := specAlloy
			wbAlloc.wbAllocate = true
			r.PrefetchRate([]spec{specAlloy, wbAlloc}, ablationWorkloads)
			t := newTable("Policy", "WBProbe", "WBUpdate", "WBFill", "Total", "Speedup")
			for _, alloc := range []bool{false, true} {
				s := specAlloy
				s.wbAllocate = alloc
				a, err := ablAgg(r, s)
				if err != nil {
					return err
				}
				g, err := ablSpeedups(r, s, specAlloy)
				if err != nil {
					return err
				}
				name := "no-allocate"
				if alloc {
					name = "allocate"
				}
				l := &a.l4
				t.row(name, f2(l.CategoryFactor(stats.WBProbe)), f2(l.CategoryFactor(stats.WBUpdate)),
					f2(l.CategoryFactor(stats.WBFill)), f2(l.BloatFactor()), f3(g))
			}
			t.write(w)
			return nil
		},
	})
}

// ablAgg aggregates the ablation workload subset under one spec.
func ablAgg(r *Runner, s spec) (aggregate, error) {
	futs := make([]Future, len(ablationWorkloads))
	for i, name := range ablationWorkloads {
		futs[i] = r.RateAsync(s, name)
	}
	var a aggregate
	for _, f := range futs {
		run, err := f.Wait()
		if err != nil {
			return a, err
		}
		a.add(run)
	}
	return a, nil
}

// fillPerRead reports Miss-Fill bytes per L4 read, the bandwidth BAB frees.
func fillPerRead(l *stats.L4) float64 {
	if l.Reads() == 0 {
		return 0
	}
	return float64(l.Bytes[stats.MissFill]) / float64(l.Reads())
}

var _ = trace.RateNames // keep the import pattern consistent with experiments.go

func init() {
	register(Experiment{
		ID:       "abl-deadblock",
		Artifact: "Ablation",
		Title:    "BAB vs a dead-block-predictor bypass (Section 9.2's prior work)",
		About:    "Dead-block bypassing optimises hit rate but pays in-DRAM reuse-status updates; BAB optimises bandwidth directly",
		Run: func(p Params, w io.Writer, r *Runner) error {
			t := newTable("Policy", "Speedup-vs-Alloy", "HitRate", "Bloat", "StatusUpd")
			configs := []struct {
				name string
				s    spec
			}{
				{"fill-always", specAlloy},
				{"BAB", specBAB()},
				{"dead-block", func() spec {
					s := baseSpec(config.Alloy)
					s.bypass = config.DeadBlockBypass
					return s
				}()},
			}
			variants := make([]spec, len(configs))
			for i, c := range configs {
				variants[i] = c.s
			}
			r.PrefetchRate(variants, ablationWorkloads)
			for _, c := range configs {
				g, err := ablSpeedups(r, c.s, specAlloy)
				if err != nil {
					return err
				}
				a, err := ablAgg(r, c.s)
				if err != nil {
					return err
				}
				l := &a.l4
				t.row(c.name, f3(g), pct(l.HitRate()), f2(l.BloatFactor()),
					f2(l.CategoryFactor(stats.ReplUpdate)))
			}
			t.write(w)
			fmt.Fprintln(w, "\nExpected: dead-block bypassing buys little bandwidth and pays the")
			fmt.Fprintln(w, "status-update column; BAB frees fill bandwidth without it.")
			return nil
		},
	})

	register(Experiment{
		ID:       "abl-tagcache",
		Artifact: "Ablation",
		Title:    "Spatial (NTC) vs temporal (TTC) tag caching, and both combined (Section 9.4)",
		About:    "The paper notes the two exploit different locality and are orthogonal",
		Run: func(p Params, w io.Writer, r *Runner) error {
			t := newTable("TagCache", "Speedup-vs-Alloy", "ProbesSaved", "ParallelSquashed")
			configs := []struct {
				name     string
				ntc, ttc bool
			}{
				{"none", false, false},
				{"NTC", true, false},
				{"TTC", false, true},
				{"NTC+TTC", true, true},
			}
			variants := []spec{specAlloy}
			for _, c := range configs {
				s := baseSpec(config.Alloy)
				s.ntc, s.ttc = c.ntc, c.ttc
				variants = append(variants, s)
			}
			r.PrefetchRate(variants, ablationWorkloads)
			for _, c := range configs {
				s := baseSpec(config.Alloy)
				s.ntc, s.ttc = c.ntc, c.ttc
				g, err := ablSpeedups(r, s, specAlloy)
				if err != nil {
					return err
				}
				var saved, squashed uint64
				for _, name := range ablationWorkloads {
					run, err := r.Rate(s, name)
					if err != nil {
						return err
					}
					saved += run.L4.NTCProbesSaved
					squashed += run.L4.NTCParallelSqsh
				}
				t.row(c.name, f3(g), saved, squashed)
			}
			t.write(w)
			return nil
		},
	})
}

func init() {
	register(Experiment{
		ID:       "abl-dip",
		Artifact: "Ablation",
		Title:    "Insertion policy: LRU vs DIP over Loh-Hill and TIS (paper footnote 3)",
		About:    "DIP is a standalone FillPolicy since the granularity refactor, so the same dipFill composes over both the in-DRAM (LH) and in-SRAM (TIS) tag stores; speedups are vs each design's own LRU base",
		Run: func(p Params, w io.Writer, r *Runner) error {
			lhDIP := specLH
			lhDIP.lhDIP = true
			tisDIP := specTIS
			tisDIP.tisDIP = true
			r.PrefetchRate([]spec{specLH, lhDIP, specTIS, tisDIP}, ablationWorkloads)
			t := newTable("Policy", "Speedup-vs-LRU", "HitRate", "Bloat")
			for _, d := range []struct {
				name    string
				s, base spec
			}{
				{"LH-LRU", specLH, specLH},
				{"LH-DIP", lhDIP, specLH},
				{"TIS-LRU", specTIS, specTIS},
				{"TIS-DIP", tisDIP, specTIS},
			} {
				g, err := ablSpeedups(r, d.s, d.base)
				if err != nil {
					return err
				}
				a, err := ablAgg(r, d.s)
				if err != nil {
					return err
				}
				t.row(d.name, f3(g), pct(a.l4.HitRate()), f2(a.l4.BloatFactor()))
			}
			t.write(w)
			return nil
		},
	})

	register(Experiment{
		ID:       "abl-upd",
		Artifact: "Ablation",
		Title:    "Update-bypass of replacement state (Young & Qureshi-style sampling)",
		About:    "Dead-block bypassing pays an in-DRAM reuse-bit write per first reuse; sampling the updates to 1-in-64 sets keeps the bypass decision while shrinking the StatusUpd bandwidth category",
		Run: func(p Params, w io.Writer, r *Runner) error {
			t := newTable("Policy", "Speedup-vs-Alloy", "HitRate", "Bloat", "StatusUpd")
			configs := []struct {
				name   string
				bypass config.BypassPolicy
			}{
				{"fill-always", config.FillAlways},
				{"dead-block", config.DeadBlockBypass},
				{"update-bypass", config.UpdateBypass},
			}
			variants := make([]spec, len(configs))
			for i, c := range configs {
				s := baseSpec(config.Alloy)
				s.bypass = c.bypass
				variants[i] = s
			}
			r.PrefetchRate(variants, ablationWorkloads)
			for i, c := range configs {
				g, err := ablSpeedups(r, variants[i], specAlloy)
				if err != nil {
					return err
				}
				a, err := ablAgg(r, variants[i])
				if err != nil {
					return err
				}
				l := &a.l4
				t.row(c.name, f3(g), pct(l.HitRate()), f2(l.BloatFactor()),
					f2(l.CategoryFactor(stats.ReplUpdate)))
			}
			t.write(w)
			fmt.Fprintln(w, "\nExpected: update-bypass keeps dead-block's fill filtering but pays")
			fmt.Fprintln(w, "the reuse-status write only in sampled sets, shrinking StatusUpd ~64x.")
			return nil
		},
	})
}
