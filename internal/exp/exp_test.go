package exp

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// Every artifact from the paper's evaluation must be registered.
	want := []string{
		"fig3", "fig4", "fig5", "fig7", "fig9", "fig11", "fig12",
		"fig13", "fig14", "fig15", "fig16", "fig17", "tab2", "tab4", "tab5",
	}
	have := map[string]bool{}
	for _, e := range All() {
		have[e.ID] = true
		if e.Title == "" || e.Artifact == "" || e.About == "" || e.Run == nil {
			t.Errorf("experiment %s is missing metadata", e.ID)
		}
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("fig3"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestMemoisation(t *testing.T) {
	p := tinyParams()
	r := NewRunner(p)
	if _, err := r.Rate(specAlloy, "wrf"); err != nil {
		t.Fatal(err)
	}
	n := r.Count()
	if _, err := r.Rate(specAlloy, "wrf"); err != nil {
		t.Fatal(err)
	}
	if r.Count() != n {
		t.Fatal("identical run not memoised")
	}
	// A different spec is a different run.
	if _, err := r.Rate(specBEAR, "wrf"); err != nil {
		t.Fatal(err)
	}
	if r.Count() != n+1 {
		t.Fatal("different spec hit the memo")
	}
}

func tinyParams() Params {
	return Params{Scale: 1024, Warm: 20_000, Meas: 50_000, Mixes: 1, Seed: 1}
}

func TestTab5Runs(t *testing.T) {
	e, _ := ByID("tab5")
	var buf bytes.Buffer
	if err := e.Run(tinyParams(), &buf, NewRunner(tinyParams())); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "19264") {
		t.Errorf("tab5 output missing total: %s", buf.String())
	}
}

func TestFig3RunsTiny(t *testing.T) {
	e, _ := ByID("fig3")
	var buf bytes.Buffer
	p := tinyParams()
	if err := e.Run(p, &buf, NewRunner(p)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"LH", "Alloy", "BW-Opt", "BloatFactor"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig3 output missing %q:\n%s", want, out)
		}
	}
}

func TestTab4RunsTiny(t *testing.T) {
	e, _ := ByID("tab4")
	var buf bytes.Buffer
	p := tinyParams()
	if err := e.Run(p, &buf, NewRunner(p)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "BEAR") {
		t.Errorf("tab4 output:\n%s", buf.String())
	}
}

func TestSpecBuild(t *testing.T) {
	s := specBEAR
	s.channels = 8
	s.banks = 32
	s.capacityMB = 2048
	sys := s.build(Default())
	if sys.L4.Channels != 8 || sys.L4.Banks != 32 {
		t.Fatalf("overrides lost: %+v", sys.L4)
	}
	if sys.CacheBytes != 2048<<20/64 {
		t.Fatalf("capacity = %d", sys.CacheBytes)
	}
	if !sys.UseDCP || !sys.UseNTC {
		t.Fatal("BEAR spec lost components")
	}
}

func TestSpecKeysDistinct(t *testing.T) {
	// The memo cache keys on the spec struct itself; every named spec must
	// therefore differ in at least one field or two configurations would
	// share one simulation.
	keys := map[memoKey]bool{}
	for _, s := range []spec{specAlloy, specBEAR, specBWOpt, specLH, specPB(0.5), specPB(0.9), specBAB(), specBABDCP()} {
		k := memoKey{s: s, wl: "x"}
		if keys[k] {
			t.Fatalf("duplicate spec key %+v", k)
		}
		keys[k] = true
	}
}

func TestTableRendering(t *testing.T) {
	var buf bytes.Buffer
	tb := newTable("A", "LongHeader")
	tb.row("x", 1.5)
	tb.row("longer-label", 2)
	tb.write(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), buf.String())
	}
}

func TestAggregateCombines(t *testing.T) {
	p := tinyParams()
	r := NewRunner(p)
	a, err := aggRate(r, specAlloy)
	if err != nil {
		t.Fatal(err)
	}
	if a.l4.Reads() == 0 || a.l4.TotalBytes() == 0 {
		t.Fatal("aggregate empty")
	}
	if bf := a.l4.BloatFactor(); bf < 1 {
		t.Fatalf("aggregate bloat %v < 1", bf)
	}
}
