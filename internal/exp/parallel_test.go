package exp

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"

	"bear/internal/stats"
)

// runExperiment executes one experiment on a fresh runner with the given
// parallelism and returns the artifact bytes, the runner, and any error.
func runExperiment(t *testing.T, id string, p Params, parallel int) (string, *Runner) {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(p)
	r.Parallel = parallel
	var buf bytes.Buffer
	if err := e.Run(p, &buf, r); err != nil {
		t.Fatalf("%s (parallel=%d): %v", id, parallel, err)
	}
	return buf.String(), r
}

// TestDeterminismSerialVsParallel proves the core property of the sweep
// engine: a serial runner and a heavily parallel runner produce
// byte-identical artifact output, execute the same number of simulations,
// and memoise identical stats. Each simulation is deterministic (seeded
// RNG, totally ordered event queue) and results are folded in a fixed
// order, so parallelism must be unobservable in the output.
func TestDeterminismSerialVsParallel(t *testing.T) {
	p := tinyParams()
	for _, id := range []string{"tab4", "fig3"} {
		serialOut, serialR := runExperiment(t, id, p, 1)
		parallelOut, parallelR := runExperiment(t, id, p, 16)
		if serialOut != parallelOut {
			t.Errorf("%s: parallel output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
				id, serialOut, parallelOut)
		}
		if s, par := serialR.Count(), parallelR.Count(); s != par {
			t.Errorf("%s: simulation count differs: serial=%d parallel=%d", id, s, par)
		}
		// The memoised runs themselves must match value for value, not
		// just the formatted digits.
		s1, err := serialR.Rate(specAlloy, "mcf")
		if err != nil {
			t.Fatal(err)
		}
		s2, err := parallelR.Rate(specAlloy, "mcf")
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(s1, s2) {
			t.Errorf("%s: stats.Run for Alloy/mcf differs between serial and parallel runners", id)
		}
	}
}

// TestDeterminismMixWS covers the mix + single-program path (Equation 2):
// weighted speedups computed by a serial and a parallel runner must agree
// exactly, including the single-IPC denominators.
func TestDeterminismMixWS(t *testing.T) {
	p := tinyParams()
	var per [2]map[string]float64
	var geo [2]float64
	for i, parallel := range []int{1, 8} {
		r := NewRunner(p)
		r.Parallel = parallel
		m, g, err := r.mixNormWS(specBEAR, specAlloy, p.Mixes)
		if err != nil {
			t.Fatal(err)
		}
		per[i], geo[i] = m, g
	}
	if !reflect.DeepEqual(per[0], per[1]) || geo[0] != geo[1] {
		t.Errorf("mixNormWS differs: serial=%v/%v parallel=%v/%v", per[0], geo[0], per[1], geo[1])
	}
}

// TestSingleflightDedup hammers one (spec, workload) pair from many
// goroutines: every caller must get the same memoised result and the
// simulation must execute exactly once.
func TestSingleflightDedup(t *testing.T) {
	p := tinyParams()
	r := NewRunner(p)
	const callers = 16
	results := make([]*stats.Run, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := r.Rate(specAlloy, "wrf")
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}()
	}
	wg.Wait()
	if n := r.Count(); n != 1 {
		t.Fatalf("16 concurrent identical requests ran %d simulations, want 1", n)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatal("concurrent callers received different result pointers")
		}
	}
}

// TestProgressLineAtomic runs a parallel sweep with logging enabled and
// checks every progress line arrived whole (mutex-guarded single write).
func TestProgressLineAtomic(t *testing.T) {
	p := tinyParams()
	r := NewRunner(p)
	r.Parallel = 8
	var buf safeBuffer
	r.Log = &buf
	if _, err := aggRate(r, specAlloy); err != nil {
		t.Fatal(err)
	}
	out := strings.TrimSuffix(buf.String(), "\n")
	if out == "" {
		t.Fatal("no progress output")
	}
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "  [") || !strings.Contains(line, "bloat=") {
			t.Errorf("malformed progress line %q", line)
		}
	}
	if got := len(strings.Split(out, "\n")); got != r.Count() {
		t.Errorf("progress lines = %d, simulations = %d", got, r.Count())
	}
}

// safeBuffer serialises writes, standing in for a line-buffered stderr.
type safeBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *safeBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *safeBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRegisterDuplicatePanics guards the registry against two experiments
// claiming one id.
func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate register did not panic")
		}
	}()
	register(Experiment{ID: "fig3"})
}
