package exp

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"bear/internal/faultpoint"
	"bear/internal/stats"
)

// Store is a crash-safe on-disk result cache consulted before simulating.
// Each completed unit is written to its own file atomically (write to a
// temporary file, then rename), so a run killed mid-sweep leaves behind
// only whole entries; re-running with the same store resumes from where
// the crash left off and re-simulates only the missing units.
//
// Every entry embeds the store fingerprint (result-affecting Params plus
// the caller's build identity — see Params.Fingerprint) and a checksum of
// the result payload. Load treats any structural damage — corrupted JSON,
// wrong key, bad checksum — as a miss and deletes the entry, so torn or
// edited files can degrade a resume into extra work but never into wrong
// results. Entries whose fingerprint merely mismatches are misses too but
// stay on disk: they are valid results of another era, which LoadStale
// serves (labelled) when bearserve degrades under a broken worker pool.
type Store struct {
	dir         string
	fingerprint string

	mu        sync.Mutex
	hits      int
	discarded int
	saveErrs  int
}

const storeVersion = 1

// envelope is the on-disk entry format.
type envelope struct {
	Version     int             `json:"version"`
	Fingerprint string          `json:"fingerprint"`
	Key         string          `json:"key"`
	Checksum    string          `json:"checksum"` // sha256 of Result
	Result      json.RawMessage `json:"result"`
}

// OpenStore opens (creating if needed) a result store rooted at dir whose
// entries are valid only under the given fingerprint.
func OpenStore(dir, fingerprint string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("exp: opening result store: %w", err)
	}
	return &Store{dir: dir, fingerprint: fingerprint}, nil
}

// path maps a unit key to its entry file. Keys are hashed so file names
// stay short and filesystem-safe regardless of what the key contains.
func (st *Store) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(st.dir, hex.EncodeToString(sum[:8])+".json")
}

func checksum(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Load returns the stored result for key, or ok=false on a miss. Invalid
// entries (corruption, stale fingerprint, checksum mismatch) are deleted
// and reported as misses.
func (st *Store) Load(key string) (*stats.Run, bool) {
	res, fp, ok := st.load(key)
	if !ok || fp != st.fingerprint {
		return nil, false
	}
	st.mu.Lock()
	st.hits++
	st.mu.Unlock()
	return res, true
}

// LoadStale returns a structurally valid entry for key even when its
// fingerprint does not match the store's — the graceful-degradation escape
// bearserve uses to serve memoized results while its worker pool is
// saturated or broken. The payload is still checksum-verified against the
// entry's own fingerprint era, so a stale result is old, never corrupt.
// The entry's fingerprint is returned so callers can label the staleness.
func (st *Store) LoadStale(key string) (*stats.Run, string, bool) {
	return st.load(key)
}

// load reads and structurally validates the entry for key: parseable
// envelope, current version, matching key, checksum over the payload.
// Fingerprint policy is the caller's. Structurally invalid entries are
// deleted and reported as misses; fingerprint-mismatched ones are kept
// (LoadStale serves them, and a later run under their fingerprint still
// can).
func (st *Store) load(key string) (*stats.Run, string, bool) {
	p := st.path(key)
	raw, err := os.ReadFile(p)
	if err != nil {
		return nil, "", false
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		st.discard(p)
		return nil, "", false
	}
	// The checksum covers the compact payload, so canonicalise before
	// comparing: an entry that was pretty-printed in transit is still
	// valid, while any semantic edit is not.
	var compact bytes.Buffer
	if err := json.Compact(&compact, env.Result); err != nil {
		st.discard(p)
		return nil, "", false
	}
	if env.Version != storeVersion || env.Key != key ||
		env.Checksum != checksum(compact.Bytes()) {
		st.discard(p)
		return nil, "", false
	}
	var res stats.Run
	if err := json.Unmarshal(env.Result, &res); err != nil {
		st.discard(p)
		return nil, "", false
	}
	return &res, env.Fingerprint, true
}

func (st *Store) discard(path string) {
	os.Remove(path)
	st.mu.Lock()
	st.discarded++
	st.mu.Unlock()
}

// encodeEnvelope renders the checksummed on-disk entry for (key, res)
// under the given fingerprint.
func encodeEnvelope(fingerprint, key string, res *stats.Run) ([]byte, error) {
	resJSON, err := json.Marshal(res)
	if err != nil {
		return nil, err
	}
	env := envelope{
		Version:     storeVersion,
		Fingerprint: fingerprint,
		Key:         key,
		Checksum:    checksum(resJSON),
		Result:      resJSON,
	}
	return json.Marshal(&env)
}

// EncodeEnvelope renders the store's wire/disk entry format for a result.
// Worker subprocesses (bearbench -worker) use it to hand completed units
// back to bearserve in exactly the bytes the server's Store would persist,
// so the supervisor can checksum-verify the frame before trusting it.
func EncodeEnvelope(fingerprint, key string, res *stats.Run) ([]byte, error) {
	return encodeEnvelope(fingerprint, key, res)
}

// Save persists a completed result. Failures are best-effort: a store
// that cannot be written costs future resumes, not current results, so
// errors are counted (SaveErrors) rather than propagated.
func (st *Store) Save(key string, res *stats.Run) {
	raw, err := encodeEnvelope(st.fingerprint, key, res)
	if err != nil {
		st.saveFailed()
		return
	}
	if err := st.writeEntry(key, raw); err != nil {
		st.saveFailed()
	}
}

// Ingest verifies an externally produced envelope (a worker's stdout
// frame) and persists it. Unlike Save it propagates errors: the caller is
// a supervisor deciding whether the unit succeeded, and a frame that does
// not verify — garbage bytes, a foreign fingerprint, a checksum mismatch —
// means it did not. Returns the unit key the envelope carries.
func (st *Store) Ingest(raw []byte) (string, error) {
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return "", fmt.Errorf("exp: ingest: undecodable envelope: %w", err)
	}
	if env.Version != storeVersion {
		return "", fmt.Errorf("exp: ingest: envelope version %d, want %d", env.Version, storeVersion)
	}
	if env.Fingerprint != st.fingerprint {
		return "", fmt.Errorf("exp: ingest: fingerprint %q does not match the store's", env.Fingerprint)
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, env.Result); err != nil {
		return "", fmt.Errorf("exp: ingest: unparseable payload: %w", err)
	}
	if env.Checksum != checksum(compact.Bytes()) {
		return "", fmt.Errorf("exp: ingest: checksum mismatch for %q", env.Key)
	}
	if err := st.writeEntry(env.Key, raw); err != nil {
		st.saveFailed()
		return "", fmt.Errorf("exp: ingest: persisting %q: %w", env.Key, err)
	}
	return env.Key, nil
}

// writeEntry atomically installs an encoded envelope: write a sibling
// temporary file, then rename into place, so a crash at any point leaves
// either the old entry or the new one, never a prefix.
//
// The faultpoint sites model the crash cases the atomic dance defends
// against, so the chaos suite can prove Load's rejection paths against
// real files: "store.save" can tear or corrupt the payload or fail the
// write like a full disk; "store.rename" can crash before the rename,
// stranding the temporary file.
func (st *Store) writeEntry(key string, raw []byte) error {
	switch faultpoint.Hit("store.save", key) {
	case faultpoint.ENOSPC:
		return fmt.Errorf("exp: injected ENOSPC writing %q", key)
	case faultpoint.TornWrite:
		raw = raw[:len(raw)/2]
	case faultpoint.CorruptChecksum:
		mangled := append([]byte(nil), raw...)
		mangled[len(mangled)/2] ^= 0x01
		raw = mangled
	}
	final := st.path(key)
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	if faultpoint.Hit("store.rename", key) == faultpoint.KillWorker {
		// Crash mid-rename: the entry never lands, the tmp file stays.
		return fmt.Errorf("exp: injected crash before renaming %q", key)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

func (st *Store) saveFailed() {
	st.mu.Lock()
	st.saveErrs++
	st.mu.Unlock()
}

// Hits reports how many units were restored from the store.
func (st *Store) Hits() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.hits
}

// Discarded reports how many invalid entries were deleted.
func (st *Store) Discarded() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.discarded
}

// SaveErrors reports how many results could not be persisted.
func (st *Store) SaveErrors() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.saveErrs
}
