package exp

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"bear/internal/stats"
)

// Store is a crash-safe on-disk result cache consulted before simulating.
// Each completed unit is written to its own file atomically (write to a
// temporary file, then rename), so a run killed mid-sweep leaves behind
// only whole entries; re-running with the same store resumes from where
// the crash left off and re-simulates only the missing units.
//
// Every entry embeds the store fingerprint (result-affecting Params plus
// the caller's build identity — see Params.Fingerprint) and a checksum of
// the result payload. Load treats any mismatch — corrupted JSON, stale
// fingerprint, wrong key, bad checksum — as a miss and deletes the entry,
// so stale or torn files can degrade a resume into extra work but never
// into wrong results.
type Store struct {
	dir         string
	fingerprint string

	mu        sync.Mutex
	hits      int
	discarded int
	saveErrs  int
}

const storeVersion = 1

// envelope is the on-disk entry format.
type envelope struct {
	Version     int             `json:"version"`
	Fingerprint string          `json:"fingerprint"`
	Key         string          `json:"key"`
	Checksum    string          `json:"checksum"` // sha256 of Result
	Result      json.RawMessage `json:"result"`
}

// OpenStore opens (creating if needed) a result store rooted at dir whose
// entries are valid only under the given fingerprint.
func OpenStore(dir, fingerprint string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("exp: opening result store: %w", err)
	}
	return &Store{dir: dir, fingerprint: fingerprint}, nil
}

// path maps a unit key to its entry file. Keys are hashed so file names
// stay short and filesystem-safe regardless of what the key contains.
func (st *Store) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(st.dir, hex.EncodeToString(sum[:8])+".json")
}

func checksum(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Load returns the stored result for key, or ok=false on a miss. Invalid
// entries (corruption, stale fingerprint, checksum mismatch) are deleted
// and reported as misses.
func (st *Store) Load(key string) (*stats.Run, bool) {
	p := st.path(key)
	raw, err := os.ReadFile(p)
	if err != nil {
		return nil, false
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		st.discard(p)
		return nil, false
	}
	// The checksum covers the compact payload, so canonicalise before
	// comparing: an entry that was pretty-printed in transit is still
	// valid, while any semantic edit is not.
	var compact bytes.Buffer
	if err := json.Compact(&compact, env.Result); err != nil {
		st.discard(p)
		return nil, false
	}
	if env.Version != storeVersion || env.Fingerprint != st.fingerprint ||
		env.Key != key || env.Checksum != checksum(compact.Bytes()) {
		st.discard(p)
		return nil, false
	}
	var res stats.Run
	if err := json.Unmarshal(env.Result, &res); err != nil {
		st.discard(p)
		return nil, false
	}
	st.mu.Lock()
	st.hits++
	st.mu.Unlock()
	return &res, true
}

func (st *Store) discard(path string) {
	os.Remove(path)
	st.mu.Lock()
	st.discarded++
	st.mu.Unlock()
}

// Save persists a completed result. Failures are best-effort: a store
// that cannot be written costs future resumes, not current results, so
// errors are counted (SaveErrors) rather than propagated.
func (st *Store) Save(key string, res *stats.Run) {
	resJSON, err := json.Marshal(res)
	if err != nil {
		st.saveFailed()
		return
	}
	env := envelope{
		Version:     storeVersion,
		Fingerprint: st.fingerprint,
		Key:         key,
		Checksum:    checksum(resJSON),
		Result:      resJSON,
	}
	raw, err := json.Marshal(&env)
	if err != nil {
		st.saveFailed()
		return
	}
	final := st.path(key)
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		st.saveFailed()
		return
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		st.saveFailed()
	}
}

func (st *Store) saveFailed() {
	st.mu.Lock()
	st.saveErrs++
	st.mu.Unlock()
}

// Hits reports how many units were restored from the store.
func (st *Store) Hits() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.hits
}

// Discarded reports how many invalid entries were deleted.
func (st *Store) Discarded() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.discarded
}

// SaveErrors reports how many results could not be persisted.
func (st *Store) SaveErrors() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.saveErrs
}
