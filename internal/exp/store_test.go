package exp

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"bear/internal/stats"
)

func sampleRun() *stats.Run {
	r := &stats.Run{
		Design:       "Alloy",
		Workload:     "soplex",
		Cycles:       123456789,
		Instructions: 400000,
		CoreInstr:    []uint64{50000, 50000},
		CoreIPC:      []float64{0.5179104, 1.25},
		L3Accesses:   9999,
		L3Misses:     1234,
		MemReadBytes: 1 << 30,
	}
	r.L4.ReadHits = 777
	r.L4.Bytes[0] = 4242
	return r
}

func TestStoreRoundTrip(t *testing.T) {
	st, err := OpenStore(t.TempDir(), "fp1")
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRun()
	st.Save("unit-a", want)
	got, ok := st.Load("unit-a")
	if !ok {
		t.Fatal("stored entry not loadable")
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip changed the result:\n  want %+v\n  got  %+v", want, got)
	}
	if _, ok := st.Load("unit-b"); ok {
		t.Error("missing key reported as a hit")
	}
}

// TestStoreRejectsCorruption pins the safety property: a torn or edited
// entry is detected, deleted and treated as a miss — never served.
func TestStoreRejectsCorruption(t *testing.T) {
	corruptions := []struct {
		name    string
		mangle  func(raw []byte) []byte
		deleted bool
	}{
		{"truncated", func(raw []byte) []byte { return raw[:len(raw)/2] }, true},
		{"not json", func(raw []byte) []byte { return []byte("garbage") }, true},
		{"payload edited", func(raw []byte) []byte {
			return bytes.Replace(raw, []byte("123456789"), []byte("123456780"), 1)
		}, true},
	}
	for _, c := range corruptions {
		t.Run(c.name, func(t *testing.T) {
			dir := t.TempDir()
			st, err := OpenStore(dir, "fp1")
			if err != nil {
				t.Fatal(err)
			}
			st.Save("unit-a", sampleRun())
			path := st.path("unit-a")
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, c.mangle(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := st.Load("unit-a"); ok {
				t.Fatal("corrupted entry served as valid")
			}
			if st.Discarded() != 1 {
				t.Errorf("Discarded() = %d, want 1", st.Discarded())
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Error("corrupted entry not deleted")
			}
		})
	}
}

// TestStoreRejectsStaleFingerprint: entries written under a different
// code version or parameter set must not be trusted by Load — but they
// stay on disk, checksum-guarded, so LoadStale can serve them as labelled
// stale results when bearserve degrades.
func TestStoreRejectsStaleFingerprint(t *testing.T) {
	dir := t.TempDir()
	st1, err := OpenStore(dir, "fp-old")
	if err != nil {
		t.Fatal(err)
	}
	st1.Save("unit-a", sampleRun())
	st2, err := OpenStore(dir, "fp-new")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st2.Load("unit-a"); ok {
		t.Fatal("stale-fingerprint entry served as valid")
	}
	if st2.Discarded() != 0 {
		t.Errorf("Discarded() = %d, want 0: stale entries are kept for LoadStale", st2.Discarded())
	}
	res, fp, ok := st2.LoadStale("unit-a")
	if !ok || res == nil {
		t.Fatal("LoadStale refused a structurally valid stale entry")
	}
	if fp != "fp-old" {
		t.Errorf("LoadStale fingerprint = %q, want fp-old", fp)
	}
	// Corruption is still corruption in stale mode: flip a payload byte.
	raw, err := os.ReadFile(st2.path("unit-a"))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(st2.path("unit-a"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := st2.LoadStale("unit-a"); ok {
		t.Fatal("LoadStale served a corrupt entry")
	}
}

func TestParamsFingerprint(t *testing.T) {
	p := tinyParams()
	base := p.Fingerprint("rev1")
	if base != p.Fingerprint("rev1") {
		t.Error("fingerprint not stable")
	}
	q := p
	q.Seed = 2
	if p.Fingerprint("rev1") == q.Fingerprint("rev1") {
		t.Error("seed change not reflected in fingerprint")
	}
	if p.Fingerprint("rev1") == p.Fingerprint("rev2") {
		t.Error("build identity not reflected in fingerprint")
	}
	// The watchdog never changes results, so it must not split the store.
	w := p
	w.Watchdog.Check = true
	if p.Fingerprint("rev1") != w.Fingerprint("rev1") {
		t.Error("watchdog settings must not change the fingerprint")
	}
}

// TestStoreResume is the crash-resume scenario end to end: a sweep
// populates the store, half the entries are deleted (simulating a crash
// part-way through), and the re-run must produce byte-identical output
// while re-simulating only the missing units.
func TestStoreResume(t *testing.T) {
	if testing.Short() {
		t.Skip("resume round trip runs 4 simulations; skipped with -short")
	}
	p := tinyParams()
	dir := t.TempDir()
	fp := p.Fingerprint("test-build")

	sweep := func() (string, *Runner) {
		st, err := OpenStore(dir, fp)
		if err != nil {
			t.Fatal(err)
		}
		r := NewRunner(p)
		r.Store = st
		var buf bytes.Buffer
		for _, s := range []spec{specAlloy, specBEAR} {
			for _, name := range []string{"soplex", "libq"} {
				res, err := r.Rate(s, name)
				if err != nil {
					t.Fatal(err)
				}
				fmt.Fprintf(&buf, "%s/%s cycles=%d ipc=%.6f bloat=%.6f\n",
					res.Design, res.Workload, res.Cycles, res.IPC(), res.L4.BloatFactor())
			}
		}
		return buf.String(), r
	}

	out1, r1 := sweep()
	if r1.Count() != 4 || r1.Restored() != 0 {
		t.Fatalf("first sweep: Count=%d Restored=%d, want 4/0", r1.Count(), r1.Restored())
	}

	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) != 4 {
		t.Fatalf("store holds %d entries (err=%v), want 4", len(files), err)
	}
	sort.Strings(files)
	for i := 0; i < len(files); i += 2 {
		if err := os.Remove(files[i]); err != nil {
			t.Fatal(err)
		}
	}

	out2, r2 := sweep()
	if out2 != out1 {
		t.Errorf("resumed sweep output differs:\n--- full ---\n%s--- resumed ---\n%s", out1, out2)
	}
	if r2.Count() != 2 || r2.Restored() != 2 {
		t.Errorf("resumed sweep: Count=%d Restored=%d, want 2 re-simulated + 2 restored",
			r2.Count(), r2.Restored())
	}

	out3, r3 := sweep()
	if out3 != out1 {
		t.Errorf("fully-restored sweep output differs")
	}
	if r3.Count() != 0 || r3.Restored() != 4 {
		t.Errorf("fully-restored sweep: Count=%d Restored=%d, want 0 re-simulated + 4 restored",
			r3.Count(), r3.Restored())
	}
}
