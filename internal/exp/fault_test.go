package exp

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"bear/internal/config"
	"bear/internal/fault"
	"bear/internal/hier"
	"bear/internal/trace"
)

// panicSource is a workload stub whose very first op panics, injecting a
// fault deep inside a worker's simulation.
type panicSource struct{}

func (panicSource) Next(op *trace.Op) {
	panic(fault.Invariantf("trace", "injected fault"))
}

func boomWorkload(cores int) func() (trace.Workload, error) {
	return func() (trace.Workload, error) {
		srcs := make([]trace.Source, cores)
		for i := range srcs {
			srcs[i] = panicSource{}
		}
		return trace.Workload{Name: "boom", Sources: srcs}, nil
	}
}

// TestRunnerSurvivesPanic pins the fault-isolation contract: a panicking
// unit fails its own future with a structured *SimError (unit identity +
// stack), the sweep's other units complete normally, and the failure is
// recorded for the failure table.
func TestRunnerSurvivesPanic(t *testing.T) {
	p := tinyParams()
	r := NewRunner(p)
	cores := config.Default(p.Scale).Core.Count

	good := r.RateAsync(specAlloy, "soplex")
	bad := Future{r.start(specAlloy, "boom", boomWorkload(cores))}

	if _, err := good.Wait(); err != nil {
		t.Fatalf("healthy unit failed alongside the faulty one: %v", err)
	}
	_, err := bad.Wait()
	var se *SimError
	if !errors.As(err, &se) {
		t.Fatalf("faulty unit returned %v, want *SimError", err)
	}
	if se.Workload != "boom" || se.Design != "Alloy" || se.Seed != p.Seed {
		t.Errorf("SimError identity wrong: %+v", se)
	}
	if !strings.Contains(se.Stack, "panicSource") {
		t.Errorf("SimError.Stack does not reach the panic site:\n%s", se.Stack)
	}
	// The typed panic value must stay classifiable through the recover.
	var inv *fault.Invariant
	if !errors.As(err, &inv) || inv.Component != "trace" {
		t.Errorf("cannot classify recovered panic as *fault.Invariant: %v", err)
	}

	fs := r.Failures()
	if len(fs) != 1 || fs[0].Workload != "boom" || fs[0].Design != "Alloy" {
		t.Fatalf("Failures() = %+v, want one entry for Alloy/boom", fs)
	}
	var buf bytes.Buffer
	r.WriteFailureTable(&buf)
	if !strings.Contains(buf.String(), "FAIL") || !strings.Contains(buf.String(), "boom") {
		t.Errorf("failure table missing the failed unit:\n%s", buf.String())
	}
}

// TestRunnerWatchdogFailure drives a watchdog trip through the Runner: the
// error must surface from Future.Wait still typed, and land in the failure
// table like any other unit failure.
func TestRunnerWatchdogFailure(t *testing.T) {
	p := tinyParams()
	p.Watchdog = hier.Watchdog{MaxCycles: 1000, CheckEvery: 64}
	r := NewRunner(p)
	_, err := r.Rate(specAlloy, "soplex")
	var wd *fault.WatchdogError
	if !errors.As(err, &wd) {
		t.Fatalf("Rate = %v, want *fault.WatchdogError", err)
	}
	if wd.Kind != fault.WatchdogCycleBudget {
		t.Errorf("Kind = %v, want %v", wd.Kind, fault.WatchdogCycleBudget)
	}
	if fs := r.Failures(); len(fs) != 1 {
		t.Errorf("Failures() = %+v, want the watchdog trip recorded", fs)
	}
}

// TestCheckThroughRunner runs a unit with the invariant epochs enabled via
// Params and compares against a plain run: results must be identical.
func TestCheckThroughRunner(t *testing.T) {
	p := tinyParams()
	plain, err := NewRunner(p).Rate(specBEAR, "soplex")
	if err != nil {
		t.Fatal(err)
	}
	p.Watchdog.Check = true
	checked, err := NewRunner(p).Rate(specBEAR, "soplex")
	if err != nil {
		t.Fatalf("healthy run tripped -check: %v", err)
	}
	if plain.Cycles != checked.Cycles || plain.Instructions != checked.Instructions {
		t.Errorf("-check changed results: %d/%d cycles, %d/%d instructions",
			plain.Cycles, checked.Cycles, plain.Instructions, checked.Instructions)
	}
}
