// Package exp implements the paper's evaluation: one registered experiment
// per table and figure, each regenerating the corresponding rows from live
// simulations. cmd/bearbench and the repository's bench harness drive this
// registry.
package exp

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"bear/internal/config"
	"bear/internal/hier"
	"bear/internal/stats"
	"bear/internal/trace"
)

// Params controls simulation sizes for every experiment.
type Params struct {
	// Scale divides the paper's machine and footprints (see config).
	Scale int
	// Warm and Meas are per-core instruction budgets.
	Warm, Meas uint64
	// Mixes is how many MIX workloads aggregate into MIX/ALL results
	// (the paper uses 38; 8 keeps runs short).
	Mixes int
	Seed  uint64
}

// Default returns parameters that reproduce the paper's shapes in a few
// minutes per experiment.
func Default() Params {
	return Params{Scale: 64, Warm: 600_000, Meas: 1_200_000, Mixes: 8, Seed: 1}
}

// Quick returns parameters for smoke-testing experiments in seconds.
func Quick() Params {
	return Params{Scale: 256, Warm: 100_000, Meas: 250_000, Mixes: 2, Seed: 1}
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	ID       string
	Title    string
	Artifact string // "Figure 3", "Table 4", ...
	About    string // workloads, parameters and modules exercised
	Run      func(p Params, w io.Writer, r *Runner) error
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns the registered experiments in paper order.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
}

// IDs lists all experiment ids.
func IDs() []string {
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	return ids
}

// spec identifies a system configuration for the memo cache.
type spec struct {
	design     config.Design
	bypass     config.BypassPolicy
	prob       float64
	dcp, ntc   bool
	channels   int
	banks      int
	capacityMB int64
	ntcEntries int // 0 = paper default (8)
	pred       config.PredMode
	wbAllocate bool
	ttc        bool
	lhDIP      bool
}

// baseSpec returns the paper-default system for a design (BEAR expands to
// its three components).
func baseSpec(d config.Design) spec {
	s := spec{design: d, prob: 0.9}
	if d == config.BEAR {
		s.bypass = config.BandwidthAware
		s.dcp, s.ntc = true, true
	}
	return s
}

func (s spec) build(p Params) config.System {
	sys := config.Default(p.Scale)
	sys.Design = s.design
	sys.Bypass = s.bypass
	sys.BypassProb = s.prob
	sys.UseDCP = s.dcp
	sys.UseNTC = s.ntc
	if s.channels > 0 {
		sys.L4.Channels = s.channels
	}
	if s.banks > 0 {
		sys.L4.Banks = s.banks
	}
	if s.capacityMB > 0 {
		sys.CacheBytes = s.capacityMB << 20 / int64(p.Scale)
	}
	if s.ntcEntries > 0 {
		sys.NTCEntriesPerBank = s.ntcEntries
	}
	sys.Pred = s.pred
	sys.WBAllocate = s.wbAllocate
	sys.UseTTC = s.ttc
	sys.LHUseDIP = s.lhDIP
	sys.Seed = p.Seed
	return sys
}

func (s spec) key(workload string, p Params) string {
	return fmt.Sprintf("%v|%v|%.2f|%v|%v|%v|%v|%d|%d|%d|%d|%v|%v|%s|%d|%d|%d|%d",
		s.design, s.bypass, s.prob, s.dcp, s.ntc, s.ttc, s.lhDIP, s.channels,
		s.banks, s.capacityMB, s.ntcEntries, s.pred, s.wbAllocate,
		workload, p.Scale, p.Warm, p.Meas, p.Seed)
}

// Runner executes simulations with memoisation, so experiments sharing a
// configuration (every figure reuses the Alloy baseline) run it once.
type Runner struct {
	p     Params
	memo  map[string]*stats.Run
	Log   io.Writer // optional progress sink
	Count int       // simulations actually executed
}

// NewRunner builds a runner for the given parameters.
func NewRunner(p Params) *Runner {
	return &Runner{p: p, memo: make(map[string]*stats.Run)}
}

func (r *Runner) progress(format string, args ...interface{}) {
	if r.Log != nil {
		fmt.Fprintf(r.Log, format, args...)
	}
}

func (r *Runner) run(s spec, wlName string, mk func() (trace.Workload, error)) (*stats.Run, error) {
	key := s.key(wlName, r.p)
	if res, ok := r.memo[key]; ok {
		return res, nil
	}
	wl, err := mk()
	if err != nil {
		return nil, err
	}
	sys := s.build(r.p)
	sim, err := hier.NewSim(sys, wl, r.p.Warm, r.p.Meas)
	if err != nil {
		return nil, err
	}
	res, err := sim.Run()
	if err != nil {
		return nil, err
	}
	r.Count++
	r.progress("  [%3d] %-10s %-10s bloat=%5.2f hit=%4.1f%% hitlat=%4.0f ipc=%5.2f\n",
		r.Count, wlName, sys.Design, res.L4.BloatFactor(), 100*res.L4.HitRate(),
		res.L4.AvgHitLatency(), res.IPC())
	r.memo[key] = res
	return res, nil
}

// Rate runs (or recalls) the rate-mode workload for a benchmark.
func (r *Runner) Rate(s spec, bench string) (*stats.Run, error) {
	cores := config.Default(r.p.Scale).Core.Count
	return r.run(s, bench, func() (trace.Workload, error) {
		return trace.Rate(bench, cores, r.p.Scale, r.p.Seed)
	})
}

// Mix runs (or recalls) mixed workload n.
func (r *Runner) Mix(s spec, n int) (*stats.Run, error) {
	cores := config.Default(r.p.Scale).Core.Count
	return r.run(s, fmt.Sprintf("MIX%d", n), func() (trace.Workload, error) {
		return trace.Mix(n, cores, r.p.Scale, r.p.Seed)
	})
}

// Single runs (or recalls) a benchmark alone on one core, for Equation 2's
// single-program IPC denominators.
func (r *Runner) Single(s spec, bench string) (*stats.Run, error) {
	cores := config.Default(r.p.Scale).Core.Count
	return r.run(s, bench+"@single", func() (trace.Workload, error) {
		return trace.Single(bench, cores, r.p.Scale, r.p.Seed)
	})
}

// aggregate combines runs byte-weighted for bandwidth metrics.
type aggregate struct {
	l4 stats.L4
}

func (a *aggregate) add(r *stats.Run) {
	src := &r.L4
	for i := range a.l4.Bytes {
		a.l4.Bytes[i] += src.Bytes[i]
	}
	a.l4.ReadHits += src.ReadHits
	a.l4.ReadMisses += src.ReadMisses
	a.l4.WBHits += src.WBHits
	a.l4.WBMisses += src.WBMisses
	a.l4.HitLatSum += src.HitLatSum
	a.l4.MissLatSum += src.MissLatSum
	a.l4.Fills += src.Fills
	a.l4.Bypasses += src.Bypasses
}

// rateSpeedups returns per-benchmark speedups of s over base, in catalog
// order, plus the geometric mean.
func (r *Runner) rateSpeedups(s, base spec) (map[string]float64, float64, error) {
	per := map[string]float64{}
	var all []float64
	for _, name := range trace.RateNames() {
		b, err := r.Rate(base, name)
		if err != nil {
			return nil, 0, err
		}
		v, err := r.Rate(s, name)
		if err != nil {
			return nil, 0, err
		}
		sp := v.Speedup(b)
		per[name] = sp
		all = append(all, sp)
	}
	return per, stats.GeoMean(all), nil
}

// mixNormWS returns normalized weighted speedups of s over base for the
// first n mixes, plus the geometric mean. Weighted speedup uses Equation 2
// with single-program IPCs measured per design.
func (r *Runner) mixNormWS(s, base spec, n int) (map[string]float64, float64, error) {
	singles := func(sp spec, benchs []trace.Benchmark) ([]float64, error) {
		out := make([]float64, len(benchs))
		for i, b := range benchs {
			run, err := r.Single(sp, b.Name)
			if err != nil {
				return nil, err
			}
			out[i] = run.CoreIPC[0]
		}
		return out, nil
	}
	cores := config.Default(r.p.Scale).Core.Count
	per := map[string]float64{}
	var all []float64
	for m := 1; m <= n; m++ {
		wl, err := trace.Mix(m, cores, r.p.Scale, r.p.Seed)
		if err != nil {
			return nil, 0, err
		}
		bRun, err := r.Mix(base, m)
		if err != nil {
			return nil, 0, err
		}
		vRun, err := r.Mix(s, m)
		if err != nil {
			return nil, 0, err
		}
		bSingles, err := singles(base, wl.Benchs)
		if err != nil {
			return nil, 0, err
		}
		vSingles, err := singles(s, wl.Benchs)
		if err != nil {
			return nil, 0, err
		}
		bWS := bRun.WeightedSpeedup(bSingles)
		vWS := vRun.WeightedSpeedup(vSingles)
		if bWS <= 0 {
			continue
		}
		norm := vWS / bWS
		per[wl.Name] = norm
		all = append(all, norm)
	}
	return per, stats.GeoMean(all), nil
}

// allGeomean merges rate and mix relative performance into the paper's
// RATE / MIX / ALL triple.
func (r *Runner) allGeomean(s, base spec) (rate, mix, all float64, err error) {
	perRate, rateG, err := r.rateSpeedups(s, base)
	if err != nil {
		return 0, 0, 0, err
	}
	perMix, mixG, err := r.mixNormWS(s, base, r.p.Mixes)
	if err != nil {
		return 0, 0, 0, err
	}
	var xs []float64
	for _, v := range perRate {
		xs = append(xs, v)
	}
	for _, v := range perMix {
		xs = append(xs, v)
	}
	return rateG, mixG, stats.GeoMean(xs), nil
}
