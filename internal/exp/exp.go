// Package exp implements the paper's evaluation: one registered experiment
// per table and figure, each regenerating the corresponding rows from live
// simulations. cmd/bearbench and the repository's bench harness drive this
// registry.
//
// Every simulation is independent and deterministic (seeded RNG, totally
// ordered event queue), so the Runner executes them on a bounded worker
// pool: experiments launch futures for the (spec, workload) pairs they
// need and collect results in a fixed order, which makes parallel and
// serial sweeps byte-identical.
package exp

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"

	"bear/internal/config"
	"bear/internal/event"
	"bear/internal/hier"
	"bear/internal/stats"
	"bear/internal/trace"
)

// Params controls simulation sizes for every experiment.
type Params struct {
	// Scale divides the paper's machine and footprints (see config).
	Scale int
	// Warm and Meas are per-core instruction budgets.
	Warm, Meas uint64
	// Mixes is how many MIX workloads aggregate into MIX/ALL results
	// (the paper uses 38; 8 keeps runs short).
	Mixes int
	Seed  uint64
	// Watchdog bounds every simulation the Runner executes (see
	// hier.Watchdog). The zero value applies the default thresholds; it
	// is not part of the result-store fingerprint because the monitors
	// never change results, only whether a wedged run dies cleanly.
	Watchdog hier.Watchdog
}

// Fingerprint identifies the result-affecting parameters plus a caller
// context string (typically the build's VCS revision). Stored results are
// reused only when fingerprints match exactly, so a store populated by a
// different code version or parameter set is discarded, not trusted.
func (p Params) Fingerprint(extra string) string {
	return fmt.Sprintf("v1|scale=%d|warm=%d|meas=%d|mixes=%d|seed=%d|%s",
		p.Scale, p.Warm, p.Meas, p.Mixes, p.Seed, extra)
}

// Default returns parameters that reproduce the paper's shapes in a few
// minutes per experiment.
func Default() Params {
	return Params{Scale: 64, Warm: 600_000, Meas: 1_200_000, Mixes: 8, Seed: 1}
}

// Quick returns parameters for smoke-testing experiments in seconds.
func Quick() Params {
	return Params{Scale: 256, Warm: 100_000, Meas: 250_000, Mixes: 2, Seed: 1}
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	ID       string
	Title    string
	Artifact string // "Figure 3", "Table 4", ...
	About    string // workloads, parameters and modules exercised
	Run      func(p Params, w io.Writer, r *Runner) error
}

var (
	registry []Experiment
	byID     = map[string]Experiment{}
)

func register(e Experiment) {
	if _, dup := byID[e.ID]; dup {
		panic("exp: duplicate experiment id " + e.ID)
	}
	byID[e.ID] = e
	registry = append(registry, e)
}

// All returns the registered experiments in paper order.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	if e, ok := byID[id]; ok {
		return e, nil
	}
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
}

// IDs lists all experiment ids.
func IDs() []string {
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	return ids
}

// spec identifies a system configuration for the memo cache.
type spec struct {
	design     config.Design
	bypass     config.BypassPolicy
	prob       float64
	dcp, ntc   bool
	channels   int
	banks      int
	capacityMB int64
	ntcEntries int // 0 = paper default (8)
	pred       config.PredMode
	wbAllocate bool
	ttc        bool
	lhDIP      bool
	tisDIP     bool
}

// baseSpec returns the paper-default system for a design (BEAR expands to
// its three components).
func baseSpec(d config.Design) spec {
	s := spec{design: d, prob: 0.9}
	if d == config.BEAR {
		s.bypass = config.BandwidthAware
		s.dcp, s.ntc = true, true
	}
	return s
}

func (s spec) build(p Params) config.System {
	sys := config.Default(p.Scale)
	sys.Design = s.design
	sys.Bypass = s.bypass
	sys.BypassProb = s.prob
	sys.UseDCP = s.dcp
	sys.UseNTC = s.ntc
	if s.channels > 0 {
		sys.L4.Channels = s.channels
	}
	if s.banks > 0 {
		sys.L4.Banks = s.banks
	}
	if s.capacityMB > 0 {
		sys.CacheBytes = s.capacityMB << 20 / int64(p.Scale)
	}
	if s.ntcEntries > 0 {
		sys.NTCEntriesPerBank = s.ntcEntries
	}
	sys.Pred = s.pred
	sys.WBAllocate = s.wbAllocate
	sys.UseTTC = s.ttc
	sys.LHUseDIP = s.lhDIP
	sys.TISUseDIP = s.tisDIP
	sys.Seed = p.Seed
	return sys
}

// memoKey is the memo-cache key: the spec struct itself plus the workload
// name. Specs are small comparable structs, so keys need no per-call
// formatting — the Runner was previously building a ~100-byte fmt string
// for every lookup, hit or miss. Params are fixed per Runner and so are
// not part of the key.
type memoKey struct {
	s  spec
	wl string
}

// task is one memoised simulation: created exactly once per memoKey
// (singleflight), executed on the worker pool, awaited by any number of
// futures.
type task struct {
	res  *stats.Run
	err  error
	done chan struct{}
}

// Future is a handle to an in-flight (or completed) simulation.
type Future struct{ t *task }

// Wait blocks until the simulation completes and returns its result.
func (f Future) Wait() (*stats.Run, error) {
	<-f.t.done
	return f.t.res, f.t.err
}

// Runner executes simulations with memoisation, so experiments sharing a
// configuration (every figure reuses the Alloy baseline) run it once — and
// with a bounded worker pool, so independent simulations run concurrently.
//
// Requesting the same (spec, workload) twice — even from two goroutines at
// once — shares one in-flight simulation (singleflight). Results are
// collected by callers in a deterministic order, and each simulation is
// itself deterministic, so runs at any Parallel setting are byte-identical.
type Runner struct {
	p Params

	// Parallel bounds concurrently executing simulations. NewRunner sets
	// it to runtime.GOMAXPROCS(0); set it to 1 (before the first request)
	// for a strictly serial sweep.
	Parallel int

	// Log, when non-nil, receives one line per completed simulation.
	// Lines are written atomically (single Write under a mutex), so
	// worker output never interleaves mid-line.
	Log io.Writer

	// Store, when non-nil, is consulted before simulating and updated
	// after: completed units are restored instead of re-simulated, which
	// makes interrupted sweeps resumable. Set before the first request.
	Store *Store

	mu          sync.Mutex
	memo        map[memoKey]*task
	sem         chan struct{} // worker slots, sized from Parallel on first use
	count       int
	restored    int
	interrupted bool
	failures    map[memoKey]Failure

	logMu  sync.Mutex
	queues sync.Pool // *event.Queue, reused across simulations per worker
}

// NewRunner builds a runner for the given parameters, parallel across
// runtime.GOMAXPROCS(0) workers by default.
func NewRunner(p Params) *Runner {
	return &Runner{
		p:        p,
		Parallel: runtime.GOMAXPROCS(0),
		memo:     make(map[memoKey]*task),
		failures: make(map[memoKey]Failure),
	}
}

// Count reports how many simulations have actually executed (memo hits,
// deduplicated in-flight requests and store-restored results do not run).
func (r *Runner) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Restored reports how many results were served from the Store instead of
// being simulated.
func (r *Runner) Restored() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.restored
}

func (r *Runner) progress(format string, args ...any) {
	if r.Log == nil {
		return
	}
	r.logMu.Lock()
	defer r.logMu.Unlock()
	fmt.Fprintf(r.Log, format, args...)
}

// start returns the task for (s, wlName), launching it on the worker pool
// if this is the first request for that key.
func (r *Runner) start(s spec, wlName string, mk func() (trace.Workload, error)) *task {
	key := memoKey{s: s, wl: wlName}
	r.mu.Lock()
	if t, ok := r.memo[key]; ok {
		r.mu.Unlock()
		return t
	}
	if r.interrupted {
		// Drain mode: refuse to start anything new, without memoising the
		// refusal — a later sweep over the same store must re-request it.
		r.mu.Unlock()
		t := &task{err: ErrInterrupted, done: make(chan struct{})}
		close(t.done)
		return t
	}
	if r.sem == nil {
		workers := r.Parallel
		if workers < 1 {
			workers = 1
		}
		r.sem = make(chan struct{}, workers)
	}
	t := &task{done: make(chan struct{})}
	r.memo[key] = t
	sem := r.sem
	r.mu.Unlock()

	go func() {
		sem <- struct{}{}
		defer func() { <-sem }()
		t.res, t.err = r.runUnit(key, s, wlName, mk)
		close(t.done)
	}()
	return t
}

// storeKey renders a memoKey for the result store. specs are flat structs
// of value fields, so %+v is a stable, collision-free rendering.
func storeKey(key memoKey) string {
	return fmt.Sprintf("%+v|%s", key.s, key.wl)
}

// runUnit executes one simulation unit with fault isolation: a panic
// anywhere in the simulation stack is recovered into a *SimError carrying
// the unit's identity and the worker's stack trace, so a faulty design or
// workload fails its own futures instead of crashing the whole sweep.
// With a Store attached, completed units are restored instead of re-run,
// and fresh results are persisted for future resumes. Every failure is
// recorded for the sweep-level failure table.
func (r *Runner) runUnit(key memoKey, s spec, wlName string, mk func() (trace.Workload, error)) (res *stats.Run, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &SimError{
				Design:   s.design.String(),
				Workload: wlName,
				Seed:     r.p.Seed,
				Value:    v,
				Stack:    string(debug.Stack()),
			}
			res = nil
		}
		if err != nil && !errors.Is(err, ErrInterrupted) {
			r.mu.Lock()
			r.failures[key] = Failure{Design: s.design.String(), Workload: key.wl, Err: err}
			r.mu.Unlock()
		}
	}()
	if r.Store != nil {
		if cached, ok := r.Store.Load(storeKey(key)); ok {
			r.mu.Lock()
			r.restored++
			r.mu.Unlock()
			return cached, nil
		}
	}
	res, err = r.simulate(s, wlName, mk)
	if err != nil {
		return nil, err
	}
	if r.Store != nil {
		r.Store.Save(storeKey(key), res)
	}
	return res, nil
}

// simulate builds and runs one simulation on the calling worker goroutine.
func (r *Runner) simulate(s spec, wlName string, mk func() (trace.Workload, error)) (*stats.Run, error) {
	wl, err := mk()
	if err != nil {
		return nil, err
	}
	sys := s.build(r.p)
	q, _ := r.queues.Get().(*event.Queue)
	if q == nil {
		q = new(event.Queue)
	}
	sim, err := hier.NewSimQueue(sys, wl, r.p.Warm, r.p.Meas, q)
	if err != nil {
		return nil, err
	}
	sim.Watchdog = r.p.Watchdog
	res, err := sim.Run()
	if err != nil {
		return nil, err
	}
	r.queues.Put(q)

	r.mu.Lock()
	r.count++
	n := r.count
	r.mu.Unlock()
	r.progress("  [%3d] %-10s %-10s bloat=%5.2f hit=%4.1f%% hitlat=%4.0f ipc=%5.2f\n",
		n, wlName, sys.Design, res.L4.BloatFactor(), 100*res.L4.HitRate(),
		res.L4.AvgHitLatency(), res.IPC())
	return res, nil
}

// RateAsync starts (or joins) the rate-mode simulation of a benchmark and
// returns a future for its result.
func (r *Runner) RateAsync(s spec, bench string) Future {
	cores := config.Default(r.p.Scale).Core.Count
	return Future{r.start(s, bench, func() (trace.Workload, error) {
		return trace.Rate(bench, cores, r.p.Scale, r.p.Seed)
	})}
}

// MixAsync starts (or joins) mixed workload n and returns a future.
func (r *Runner) MixAsync(s spec, n int) Future {
	cores := config.Default(r.p.Scale).Core.Count
	return Future{r.start(s, fmt.Sprintf("MIX%d", n), func() (trace.Workload, error) {
		return trace.Mix(n, cores, r.p.Scale, r.p.Seed)
	})}
}

// SingleAsync starts (or joins) a benchmark alone on one core, for
// Equation 2's single-program IPC denominators.
func (r *Runner) SingleAsync(s spec, bench string) Future {
	cores := config.Default(r.p.Scale).Core.Count
	return Future{r.start(s, bench+"@single", func() (trace.Workload, error) {
		return trace.Single(bench, cores, r.p.Scale, r.p.Seed)
	})}
}

// Rate runs (or recalls) the rate-mode workload for a benchmark.
func (r *Runner) Rate(s spec, bench string) (*stats.Run, error) {
	return r.RateAsync(s, bench).Wait()
}

// Mix runs (or recalls) mixed workload n.
func (r *Runner) Mix(s spec, n int) (*stats.Run, error) {
	return r.MixAsync(s, n).Wait()
}

// Single runs (or recalls) a benchmark alone on one core.
func (r *Runner) Single(s spec, bench string) (*stats.Run, error) {
	return r.SingleAsync(s, bench).Wait()
}

// PrefetchRate fans the full (spec, workload) cross product out to the
// worker pool without waiting. Experiments call it up front so that the
// sequential result-collection loops that follow find every simulation
// already running (or memoised).
func (r *Runner) PrefetchRate(specs []spec, names []string) {
	for _, s := range specs {
		for _, name := range names {
			r.RateAsync(s, name)
		}
	}
}

// PrefetchMix fans the first n mixed workloads out for each spec.
func (r *Runner) PrefetchMix(specs []spec, n int) {
	for _, s := range specs {
		for m := 1; m <= n; m++ {
			r.MixAsync(s, m)
		}
	}
}

// PrefetchMixWS additionally starts the single-program runs Equation 2
// needs for weighted speedups of the first n mixes.
func (r *Runner) PrefetchMixWS(specs []spec, n int) {
	r.PrefetchMix(specs, n)
	cores := config.Default(r.p.Scale).Core.Count
	for m := 1; m <= n; m++ {
		wl, err := trace.Mix(m, cores, r.p.Scale, r.p.Seed)
		if err != nil {
			continue // surfaced by the collection phase
		}
		for _, s := range specs {
			for _, b := range wl.Benchs {
				r.SingleAsync(s, b.Name)
			}
		}
	}
}

// aggregate combines runs byte-weighted for bandwidth metrics.
type aggregate struct {
	l4 stats.L4
}

func (a *aggregate) add(r *stats.Run) {
	src := &r.L4
	for i := range a.l4.Bytes {
		a.l4.Bytes[i] += src.Bytes[i]
	}
	a.l4.ReadHits += src.ReadHits
	a.l4.ReadMisses += src.ReadMisses
	a.l4.WBHits += src.WBHits
	a.l4.WBMisses += src.WBMisses
	a.l4.HitLatSum += src.HitLatSum
	a.l4.MissLatSum += src.MissLatSum
	a.l4.Fills += src.Fills
	a.l4.Bypasses += src.Bypasses
}

// rateSpeedups returns per-benchmark speedups of s over base, in catalog
// order, plus the geometric mean. Both sweeps run concurrently; results
// are folded in catalog order so the output is independent of Parallel.
func (r *Runner) rateSpeedups(s, base spec) (map[string]float64, float64, error) {
	names := trace.RateNames()
	bases := make([]Future, len(names))
	vs := make([]Future, len(names))
	for i, name := range names {
		bases[i] = r.RateAsync(base, name)
		vs[i] = r.RateAsync(s, name)
	}
	per := map[string]float64{}
	var all []float64
	for i, name := range names {
		b, err := bases[i].Wait()
		if err != nil {
			return nil, 0, err
		}
		v, err := vs[i].Wait()
		if err != nil {
			return nil, 0, err
		}
		sp := v.Speedup(b)
		per[name] = sp
		all = append(all, sp)
	}
	return per, stats.GeoMean(all), nil
}

// mixNormWS returns normalized weighted speedups of s over base for the
// first n mixes, plus the geometric mean. Weighted speedup uses Equation 2
// with single-program IPCs measured per design.
func (r *Runner) mixNormWS(s, base spec, n int) (map[string]float64, float64, error) {
	r.PrefetchMixWS([]spec{base, s}, n)
	cores := config.Default(r.p.Scale).Core.Count
	singles := func(sp spec, benchs []trace.Benchmark) ([]float64, error) {
		out := make([]float64, len(benchs))
		for i, b := range benchs {
			run, err := r.Single(sp, b.Name)
			if err != nil {
				return nil, err
			}
			out[i] = run.CoreIPC[0]
		}
		return out, nil
	}
	per := map[string]float64{}
	var all []float64
	for m := 1; m <= n; m++ {
		wl, err := trace.Mix(m, cores, r.p.Scale, r.p.Seed)
		if err != nil {
			return nil, 0, err
		}
		bRun, err := r.Mix(base, m)
		if err != nil {
			return nil, 0, err
		}
		vRun, err := r.Mix(s, m)
		if err != nil {
			return nil, 0, err
		}
		bSingles, err := singles(base, wl.Benchs)
		if err != nil {
			return nil, 0, err
		}
		vSingles, err := singles(s, wl.Benchs)
		if err != nil {
			return nil, 0, err
		}
		bWS := bRun.WeightedSpeedup(bSingles)
		vWS := vRun.WeightedSpeedup(vSingles)
		if bWS <= 0 {
			continue
		}
		norm := vWS / bWS
		per[wl.Name] = norm
		all = append(all, norm)
	}
	return per, stats.GeoMean(all), nil
}

// allGeomean merges rate and mix relative performance into the paper's
// RATE / MIX / ALL triple.
func (r *Runner) allGeomean(s, base spec) (rate, mix, all float64, err error) {
	// Start the mix/single sweep before blocking on the rate sweep.
	r.PrefetchMixWS([]spec{base, s}, r.p.Mixes)
	perRate, rateG, err := r.rateSpeedups(s, base)
	if err != nil {
		return 0, 0, 0, err
	}
	perMix, mixG, err := r.mixNormWS(s, base, r.p.Mixes)
	if err != nil {
		return 0, 0, 0, err
	}
	// Fold in a fixed order (not map order): GeoMean sums logs, and
	// float addition order must not depend on map iteration for runs to
	// be byte-identical.
	var xs []float64
	for _, name := range trace.RateNames() {
		if v, ok := perRate[name]; ok {
			xs = append(xs, v)
		}
	}
	for m := 1; m <= r.p.Mixes; m++ {
		if v, ok := perMix[fmt.Sprintf("MIX%d", m)]; ok {
			xs = append(xs, v)
		}
	}
	return rateG, mixG, stats.GeoMean(xs), nil
}
