// Package faultpoint is the repository's deterministic fault-injection
// registry. Production code is instrumented with named injection sites —
// store I/O, worker execution, the bearserve scheduler — that ask the
// registry whether an armed plan wants a fault injected at that point.
// Unarmed (the default), every site is a single atomic load and the
// instrumented code runs exactly as shipped.
//
// Determinism is the design center, in the spirit of the repository's
// byte-identical-replay contracts: a plan entry names an exact
// (kind, site, key, occurrence) coordinate, sites key their hits by a
// stable unit identity (a result-store key, a design/workload pair), and
// an entry fires exactly once, when its coordinate is hit. Concurrency
// cannot reorder which unit receives a fault — only *when* it happens —
// so a chaos run with the same plan and seed replays byte-identically.
//
// The registry decides; the site acts. faultpoint itself never sleeps,
// kills a process, or corrupts bytes — it returns the planned Kind and the
// instrumented site implements the fault (truncate the write, exit the
// process, stall past the deadline). That keeps the package free of clocks
// and ambient randomness, so it passes the same determinism lint as the
// simulation packages it tests.
//
// Plan syntax (one entry, or several separated by ';'):
//
//	kind@site            fire on the site's 1st hit, any key
//	kind@site#3          fire on the site's 3rd hit, any key
//	kind@site/key        fire on the 1st hit for that exact key
//	kind@site/key#2      fire on the 2nd hit for that exact key
//
// Keyless entries count hits process-wide and are deterministic only for
// serial sites; keyed entries are deterministic under any concurrency.
// Sites whose occurrence index is externally meaningful (a retry attempt
// number) call HitAt with the index instead of using internal counters, so
// the coordinate survives process restarts — a killed worker's replacement
// sees attempt 2 and does not re-fire an attempt-1 fault.
package faultpoint

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind identifies what fault a site should inject.
type Kind string

// The fault vocabulary. Sites document which kinds they honour.
const (
	// TornWrite: persist only a prefix of the payload (a crash mid-write).
	TornWrite Kind = "torn-write"
	// CorruptChecksum: flip a payload byte so the checksum no longer holds.
	CorruptChecksum Kind = "corrupt-checksum"
	// ENOSPC: fail the write as if the filesystem were full.
	ENOSPC Kind = "enospc"
	// KillWorker: die abruptly mid-unit, as if OOM-killed (no output, no
	// cleanup).
	KillWorker Kind = "kill-worker"
	// Hang: stop making progress until the supervisor's deadline trips.
	Hang Kind = "hang"
	// GarbageStdout: emit bytes that are not a valid protocol frame.
	GarbageStdout Kind = "garbage-stdout"
	// SchedDrop: the scheduler loses a dispatched unit (it must retry).
	SchedDrop Kind = "sched-drop"
)

// None is returned by Hit when no fault fires.
const None Kind = ""

// Record is one fired injection, for the deterministic fault table.
type Record struct {
	Kind Kind
	Site string
	Key  string
	N    int // the occurrence that fired (1-based)
}

func (r Record) String() string {
	s := string(r.Kind) + "@" + r.Site
	if r.Key != "" {
		s += "/" + r.Key
	}
	return fmt.Sprintf("%s#%d", s, r.N)
}

// entry is one planned injection.
type entry struct {
	kind Kind
	site string
	key  string // "" matches any key (process-wide site counter)
	n    int    // 1-based occurrence that fires
}

func (e entry) String() string {
	s := string(e.kind) + "@" + e.site
	if e.key != "" {
		s += "/" + e.key
	}
	if e.n != 1 {
		s += "#" + strconv.Itoa(e.n)
	}
	return s
}

// Plan is a parsed set of planned injections.
type Plan struct {
	entries []entry
}

// ParsePlan parses the ';'-separated plan syntax. An empty spec yields an
// empty (armed but inert) plan.
func ParsePlan(spec string) (*Plan, error) {
	p := &Plan{}
	for _, raw := range strings.Split(spec, ";") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		kindStr, rest, ok := strings.Cut(raw, "@")
		if !ok || kindStr == "" || rest == "" {
			return nil, fmt.Errorf("faultpoint: entry %q: want kind@site[/key][#n]", raw)
		}
		e := entry{kind: Kind(kindStr), n: 1}
		if i := strings.LastIndex(rest, "#"); i >= 0 {
			n, err := strconv.Atoi(rest[i+1:])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("faultpoint: entry %q: occurrence %q is not a positive integer", raw, rest[i+1:])
			}
			e.n = n
			rest = rest[:i]
		}
		e.site, e.key, _ = strings.Cut(rest, "/")
		if e.site == "" {
			return nil, fmt.Errorf("faultpoint: entry %q: empty site", raw)
		}
		p.entries = append(p.entries, e)
	}
	return p, nil
}

// String renders the plan back into parseable spec syntax (the form a
// supervisor passes to worker subprocesses).
func (p *Plan) String() string {
	parts := make([]string, len(p.entries))
	for i, e := range p.entries {
		parts[i] = e.String()
	}
	return strings.Join(parts, ";")
}

// registry is the process-wide armed state.
type registry struct {
	mu     sync.Mutex
	fired  []bool // parallel to plan.entries
	plan   *Plan
	counts map[string]int // per (site \x00 key) and per site hit counters
	log    []Record
}

var (
	armed atomic.Bool
	reg   registry
)

// Arm installs plan process-wide, resetting all counters and the fired
// log. A nil plan disarms.
func Arm(p *Plan) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if p == nil {
		reg.plan = nil
		reg.fired, reg.counts, reg.log = nil, nil, nil
		armed.Store(false)
		return
	}
	reg.plan = p
	reg.fired = make([]bool, len(p.entries))
	reg.counts = map[string]int{}
	reg.log = nil
	armed.Store(true)
}

// Disarm removes any armed plan; every site becomes a no-op again.
func Disarm() { Arm(nil) }

// Armed reports whether a plan is installed. Sites use it as the fast
// path: one atomic load when chaos testing is off.
func Armed() bool { return armed.Load() }

// Hit asks whether a fault fires at site for key, counting this occurrence
// against the registry's internal per-(site,key) and per-site counters.
// Returns None (and is nearly free) when no plan is armed.
func Hit(site, key string) Kind {
	if !armed.Load() {
		return None
	}
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if reg.plan == nil {
		return None
	}
	reg.counts[site]++
	ns := reg.counts[site]
	nk := ns
	if key != "" {
		reg.counts[site+"\x00"+key]++
		nk = reg.counts[site+"\x00"+key]
	}
	return reg.match(site, key, nk, ns)
}

// HitAt is Hit with the occurrence index supplied by the caller — for
// sites whose index is externally meaningful (a retry attempt) and must
// survive process restarts. Only exact-key entries can match.
func HitAt(site, key string, n int) Kind {
	if !armed.Load() {
		return None
	}
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if reg.plan == nil {
		return None
	}
	return reg.match(site, key, n, -1)
}

// match fires the first unfired entry matching the coordinates: keyed
// entries against (site, key, nk), keyless ones against (site, ns).
func (r *registry) match(site, key string, nk, ns int) Kind {
	for i, e := range r.plan.entries {
		if r.fired[i] || e.site != site {
			continue
		}
		if e.key != "" {
			if e.key != key || e.n != nk {
				continue
			}
		} else if ns < 0 || e.n != ns {
			continue
		}
		r.fired[i] = true
		r.log = append(r.log, Record{Kind: e.kind, Site: site, Key: key, N: nk})
		return e.kind
	}
	return None
}

// Fired returns every injection fired so far, sorted by (site, key, kind,
// occurrence) — a deterministic fault table independent of the schedule
// that hit the sites.
func Fired() []Record {
	reg.mu.Lock()
	out := append([]Record(nil), reg.log...)
	reg.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Site != out[j].Site {
			return out[i].Site < out[j].Site
		}
		if out[i].Key != out[j].Key {
			return out[i].Key < out[j].Key
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].N < out[j].N
	})
	return out
}
