package faultpoint

import (
	"sync"
	"testing"
)

func TestUnarmedIsInert(t *testing.T) {
	Disarm()
	if Armed() {
		t.Fatal("armed with no plan")
	}
	if k := Hit("store.save", "k"); k != None {
		t.Fatalf("unarmed Hit fired %q", k)
	}
	if got := Fired(); len(got) != 0 {
		t.Fatalf("unarmed Fired = %v", got)
	}
}

func TestParseRoundTrip(t *testing.T) {
	spec := "torn-write@store.save/Alloy:mcf;kill-worker@worker.run/BEAR:lbm#2;enospc@store.save#3"
	p, err := ParsePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.String(); got != spec {
		t.Fatalf("round trip: %q != %q", got, spec)
	}
	for _, bad := range []string{"tornwrite", "@site", "kind@", "k@s#0", "k@s#x"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Fatalf("ParsePlan(%q) accepted", bad)
		}
	}
}

func TestKeyedEntryFiresOnExactCoordinate(t *testing.T) {
	p, _ := ParsePlan("torn-write@store.save/unitB#2")
	Arm(p)
	defer Disarm()

	if k := Hit("store.save", "unitA"); k != None {
		t.Fatalf("wrong key fired %q", k)
	}
	if k := Hit("store.save", "unitB"); k != None {
		t.Fatalf("occurrence 1 fired %q", k)
	}
	if k := Hit("store.save", "unitB"); k != TornWrite {
		t.Fatalf("occurrence 2 = %q, want torn-write", k)
	}
	if k := Hit("store.save", "unitB"); k != None {
		t.Fatalf("entry fired twice: %q", k)
	}
	got := Fired()
	if len(got) != 1 || got[0].Kind != TornWrite || got[0].Key != "unitB" || got[0].N != 2 {
		t.Fatalf("Fired = %v", got)
	}
}

func TestKeylessEntryCountsSiteWide(t *testing.T) {
	p, _ := ParsePlan("enospc@store.save#3")
	Arm(p)
	defer Disarm()
	keys := []string{"a", "b", "c", "d"}
	fired := 0
	for i, key := range keys {
		if k := Hit("store.save", key); k == ENOSPC {
			fired++
			if i != 2 {
				t.Fatalf("fired on hit %d, want 3rd", i+1)
			}
		}
	}
	if fired != 1 {
		t.Fatalf("fired %d times", fired)
	}
}

// HitAt carries an external occurrence index (a retry attempt), so a
// restarted process does not re-fire an earlier attempt's fault.
func TestHitAtUsesExternalIndex(t *testing.T) {
	p, _ := ParsePlan("kill-worker@worker.run/u1")
	Arm(p)
	defer Disarm()
	if k := HitAt("worker.run", "u1", 2); k != None {
		t.Fatalf("attempt 2 fired %q", k)
	}
	if k := HitAt("worker.run", "u1", 1); k != KillWorker {
		t.Fatalf("attempt 1 = %q", k)
	}
	// A fresh process would re-arm the same plan; simulate by re-arming and
	// asking for attempt 2 — the attempt-1 entry must not fire.
	Arm(p)
	if k := HitAt("worker.run", "u1", 2); k != None {
		t.Fatalf("re-armed attempt 2 fired %q", k)
	}
}

// The fired table must be independent of which goroutine hits first:
// keyed entries pin faults to units, so concurrency only changes timing.
func TestConcurrentHitsDeterministicTable(t *testing.T) {
	run := func() []Record {
		p, _ := ParsePlan("torn-write@s/u3;enospc@s/u7")
		Arm(p)
		defer Disarm()
		var wg sync.WaitGroup
		for i := 0; i < 16; i++ {
			key := "u" + string(rune('0'+i%10))
			wg.Add(1)
			go func() {
				defer wg.Done()
				Hit("s", key)
			}()
		}
		wg.Wait()
		return Fired()
	}
	a, b := run(), run()
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("fired %d and %d injections, want 2", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tables diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
