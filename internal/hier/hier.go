// Package hier wires the full memory hierarchy: per-core L1/L2 SRAM caches,
// the shared L3 (the paper's LLC), the L4 DRAM cache, and main memory. It
// implements the cpu.MemPort contract, routes dirty evictions down the
// hierarchy, maintains the BEAR DCP bit on L3 lines, merges concurrent
// misses to the same line (MSHR behaviour), and services the inclusive
// design's back-invalidations.
package hier

import (
	"bear/internal/config"
	"bear/internal/core"
	"bear/internal/cpu"
	"bear/internal/dramcache"
	"bear/internal/event"
	"bear/internal/fault"
	"bear/internal/sram"
)

// L3 aux-byte encoding for the DCP mechanism: bit 0 is the presence bit,
// bit 1 marks the bit as valid (lines that re-enter the L3 as victims from
// the private levels have unknown presence and must probe).
const (
	auxPresent = core.DCPBit
	auxKnown   = 1 << 1
)

// Counters aggregates hierarchy-level statistics.
type Counters struct {
	L1Accesses, L1Misses uint64
	L2Accesses, L2Misses uint64
	L3Accesses, L3Misses uint64
	L3Writebacks         uint64
	MSHRMerges           uint64
	BackInvalidates      uint64
}

// missEntry tracks one in-flight L3 miss and the requests merged into it.
// Entries are pooled on the Hierarchy with a pre-bound fill callback, so an
// L3 miss allocates nothing once the pool is warm (the waiters slice keeps
// its grown capacity across reuses).
type missEntry struct {
	h       *Hierarchy
	line    uint64
	core    int // core that issued the first (L4-visible) request
	waiters []waiter
	store   bool // at least one merged request was a store

	fill func(uint64, dramcache.ReadResult) // pre-bound e.onFill
	next *missEntry
}

type waiter struct {
	done  event.Func
	store bool
	core  int
}

// onFill is the L4 read-completion callback: it installs the line, services
// every merged waiter, and recycles the entry.
//
//bear:hotpath
func (e *missEntry) onFill(t uint64, res dramcache.ReadResult) {
	h := e.h
	h.pending.del(e.line)
	h.fillL3(t, e.core, e.line, res)
	aux := auxFor(res.InL4)
	for _, w := range e.waiters {
		h.fillL2(t, w.core, e.line, aux)
		h.fillL1(w.core, e.line, w.store, aux)
		if w.done != nil {
			w.done(t)
		}
	}
	h.putMiss(e)
}

// Hierarchy is the on-chip cache stack in front of an L4 design.
type Hierarchy struct {
	cfg config.System
	q   *event.Queue

	l1 []*sram.Cache
	l2 []*sram.Cache
	l3 *sram.Cache
	l4 dramcache.Cache

	pending  missTable
	missFree *missEntry // recycled missEntry freelist

	Counters Counters
}

// getMiss returns a pooled miss entry for line, allocating (and binding its
// fill callback) only when the freelist is empty.
//
//bear:acquire
func (h *Hierarchy) getMiss(line uint64, coreID int, store bool) *missEntry {
	e := h.missFree
	if e == nil {
		e = &missEntry{h: h}
		e.fill = e.onFill
	} else {
		h.missFree = e.next
		e.next = nil
	}
	e.line, e.core, e.store = line, coreID, store
	return e
}

// putMiss recycles a miss entry, keeping the waiters slice's capacity.
func (h *Hierarchy) putMiss(e *missEntry) {
	for i := range e.waiters {
		e.waiters[i] = waiter{}
	}
	e.waiters = e.waiters[:0]
	e.next = h.missFree
	h.missFree = e
}

// New builds the hierarchy for cfg with cores private cache pairs. The L4
// design is attached afterwards with AttachL4 (the dramcache hooks need the
// hierarchy to exist first).
func New(cfg config.System, q *event.Queue, cores int) *Hierarchy {
	h := &Hierarchy{
		cfg:     cfg,
		q:       q,
		l3:      sram.New(uint64(cfg.L3.Sets()), cfg.L3.Ways),
		pending: newMissTable(),
	}
	for i := 0; i < cores; i++ {
		h.l1 = append(h.l1, sram.New(uint64(cfg.L1.Sets()), cfg.L1.Ways))
		h.l2 = append(h.l2, sram.New(uint64(cfg.L2.Sets()), cfg.L2.Ways))
	}
	return h
}

// AttachL4 connects the DRAM-cache design.
func (h *Hierarchy) AttachL4(l4 dramcache.Cache) { h.l4 = l4 }

// Hooks returns the dramcache upcalls bound to this hierarchy.
func (h *Hierarchy) Hooks() dramcache.Hooks {
	return dramcache.Hooks{
		OnEvict:          h.onL4Evict,
		OnBackInvalidate: h.onBackInvalidate,
	}
}

// L3 exposes the shared cache (tests and invariant checks).
func (h *Hierarchy) L3() *sram.Cache { return h.l3 }

// CheckPending verifies the MSHR merge table, for the watchdog's -check
// mode: every in-flight miss entry must be keyed by its own line and carry
// at least one waiter (an entry with no waiters would complete into
// nothing, silently losing a load).
func (h *Hierarchy) CheckPending() error {
	return h.pending.each(func(line uint64, e *missEntry) error {
		if e.line != line {
			return fault.Invariantf("hier", "miss entry for line %#x filed under %#x", e.line, line)
		}
		if len(e.waiters) == 0 {
			return fault.Invariantf("hier", "miss entry for line %#x has no waiters", line)
		}
		return nil
	})
}

// onL4Evict updates the DCP state when a line leaves the DRAM cache: the
// line's presence bit is cleared (known-absent) at every on-chip level,
// never invalidated. Keeping the bit in the private levels too means a
// dirty line that migrates L2 -> L3 retains its presence knowledge.
func (h *Hierarchy) onL4Evict(line uint64) {
	h.l3.SetAux(line, auxKnown) // known, not present
	for i := range h.l1 {
		h.l1[i].SetAux(line, auxKnown)
		h.l2[i].SetAux(line, auxKnown)
	}
}

// onBackInvalidate enforces inclusion: every on-chip copy is invalidated
// and the caller learns whether one of them was dirty.
func (h *Hierarchy) onBackInvalidate(line uint64) bool {
	h.Counters.BackInvalidates++
	dirty := false
	for i := range h.l1 {
		if ln, ok := h.l1[i].Invalidate(line); ok && ln.Dirty {
			dirty = true
		}
		if ln, ok := h.l2[i].Invalidate(line); ok && ln.Dirty {
			dirty = true
		}
	}
	if ln, ok := h.l3.Invalidate(line); ok && ln.Dirty {
		dirty = true
	}
	return dirty
}

// Load implements cpu.MemPort.
//
//bear:hotpath
func (h *Hierarchy) Load(now uint64, coreID int, line, pc uint64, done event.Func) (uint64, bool) {
	h.Counters.L1Accesses++
	if h.l1[coreID].Access(line, false) {
		return now + h.cfg.L1.Latency, true
	}
	h.Counters.L1Misses++
	h.Counters.L2Accesses++
	if aux, ok := h.l2[coreID].AccessAux(line, false); ok {
		h.fillL1Miss(coreID, line, false, aux)
		return now + h.cfg.L2.Latency, true
	}
	h.Counters.L2Misses++
	h.Counters.L3Accesses++
	if aux, ok := h.l3.AccessAux(line, false); ok {
		h.fillL2(now, coreID, line, aux)
		h.fillL1Miss(coreID, line, false, aux)
		return now + h.cfg.L3.Latency, true
	}
	h.miss(now, coreID, line, pc, false, done)
	return 0, false
}

// Store implements cpu.MemPort. Stores are posted: they allocate through
// the hierarchy (write-allocate) and mark the L1 copy dirty, but never
// block the core.
//
//bear:hotpath
func (h *Hierarchy) Store(now uint64, coreID int, line, pc uint64) {
	h.Counters.L1Accesses++
	if h.l1[coreID].Access(line, true) {
		return
	}
	h.Counters.L1Misses++
	h.Counters.L2Accesses++
	if aux, ok := h.l2[coreID].AccessAux(line, false); ok {
		h.fillL1Miss(coreID, line, true, aux)
		return
	}
	h.Counters.L2Misses++
	h.Counters.L3Accesses++
	if aux, ok := h.l3.AccessAux(line, false); ok {
		h.fillL2(now, coreID, line, aux)
		h.fillL1Miss(coreID, line, true, aux)
		return
	}
	h.miss(now, coreID, line, pc, true, nil)
}

// miss handles an L3 miss with MSHR merging: concurrent requests for the
// same line share one L4 access.
//
//bear:hotpath
func (h *Hierarchy) miss(now uint64, coreID int, line, pc uint64, store bool, done event.Func) {
	if e := h.pending.get(line); e != nil {
		h.Counters.MSHRMerges++
		e.waiters = append(e.waiters, waiter{done: done, store: store, core: coreID})
		if store {
			e.store = true
		}
		return
	}
	h.Counters.L3Misses++
	e := h.getMiss(line, coreID, store)
	e.waiters = append(e.waiters, waiter{done: done, store: store, core: coreID})
	h.pending.put(line, e)

	issue := now + h.cfg.L3.Latency // tag lookup discovered the miss
	h.l4.Read(issue, coreID, line, pc, e.fill)
}

// fillL3 installs a line arriving from the L4/memory, recording the DCP
// presence bit from the read result, and routes the displaced victim.
func (h *Hierarchy) fillL3(now uint64, coreID int, line uint64, res dramcache.ReadResult) {
	ev, ok := h.l3.FillIfAbsent(line, false, auxFor(res.InL4))
	if !ok {
		// Possible when a back-invalidated line raced a fill; refresh aux.
		h.l3.SetAux(line, auxFor(res.InL4))
		return
	}
	h.routeL3Victim(now, coreID, ev)
}

func auxFor(inL4 bool) uint8 {
	if inL4 {
		return auxKnown | auxPresent
	}
	return auxKnown
}

// routeL3Victim sends a displaced L3 line to the L4: dirty lines become
// writebacks (with a DCP answer when enabled); clean lines are dropped
// (non-inclusive hierarchy, no clean-eviction notification).
func (h *Hierarchy) routeL3Victim(now uint64, coreID int, ev sram.Eviction) {
	if !ev.Valid || !ev.Dirty {
		return
	}
	h.Counters.L3Writebacks++
	pres := core.PresUnknown
	if h.cfg.UseDCP && ev.Aux&auxKnown != 0 {
		if ev.Aux&auxPresent != 0 {
			pres = core.PresPresent
		} else {
			pres = core.PresAbsent
		}
	}
	h.l4.Writeback(now, coreID, ev.Addr, pres)
}

// fillL1 installs a line in a private L1, cascading its victim into the L2.
// The aux byte carries the DCP presence state down the private levels.
// Asynchronous fill paths use it because the line may have arrived through
// another path while the miss was in flight; the synchronous hit paths in
// Load/Store call fillL1Miss, which skips the presence guard.
func (h *Hierarchy) fillL1(coreID int, line uint64, dirty bool, aux uint8) {
	if dirty {
		if h.l1[coreID].Access(line, true) {
			return
		}
		h.fillL1Miss(coreID, line, true, aux)
		return
	}
	if ev, ok := h.l1[coreID].FillIfAbsent(line, false, aux); ok && ev.Valid && ev.Dirty {
		h.absorbIntoL2(coreID, ev.Addr, ev.Aux)
	}
}

// fillL1Miss installs a line known absent from the L1 — the caller observed
// the miss in the same event, with nothing in between that could have filled
// it — so the set is swept exactly once.
//
//bear:hotpath
func (h *Hierarchy) fillL1Miss(coreID int, line uint64, dirty bool, aux uint8) {
	ev := h.l1[coreID].Fill(line, dirty, aux)
	if ev.Valid && ev.Dirty {
		h.absorbIntoL2(coreID, ev.Addr, ev.Aux)
	}
}

// fillL2 installs a line in a private L2, cascading its victim into the L3.
//
//bear:hotpath
func (h *Hierarchy) fillL2(now uint64, coreID int, line uint64, aux uint8) {
	if ev, ok := h.l2[coreID].FillIfAbsent(line, false, aux); ok && ev.Valid && ev.Dirty {
		h.absorbIntoL3(now, coreID, ev.Addr, ev.Aux)
	}
}

// absorbIntoL2 receives a dirty L1 victim.
//
//bear:hotpath
func (h *Hierarchy) absorbIntoL2(coreID int, line uint64, aux uint8) {
	ev, filled := h.l2[coreID].FillOrDirty(line, aux)
	if filled && ev.Valid && ev.Dirty {
		h.absorbIntoL3(h.q.Now(), coreID, ev.Addr, ev.Aux)
	}
}

// absorbIntoL3 receives a dirty L2 victim, preserving the presence state it
// carried in the private levels so its eventual writeback keeps the DCP
// guarantee.
//
//bear:hotpath
func (h *Hierarchy) absorbIntoL3(now uint64, coreID int, line uint64, aux uint8) {
	ev, filled := h.l3.FillOrDirty(line, aux)
	if filled {
		h.routeL3Victim(now, coreID, ev)
	}
}

var _ cpu.MemPort = (*Hierarchy)(nil)
