package hier

import (
	"testing"

	"bear/internal/config"
	"bear/internal/stats"
	"bear/internal/trace"
)

// assertNoTxnLeak checks the transaction-pool leak invariant: once a sim's
// event queue has drained, the shared engine must have recovered every
// outstanding transaction (catches lost txns on bypass/squash paths).
// Run stops at the last core's retirement with events still in flight — and
// cores keep issuing forever to sustain load — so every core is halted first
// and the queue then drained to empty (results were already snapshotted by
// Run).
func assertNoTxnLeak(t *testing.T, sim *Sim, label any) {
	t.Helper()
	for _, c := range sim.Cores {
		c.Halt()
	}
	sim.Q.Run(func() bool { return false })
	if n := sim.Bundle.Cache.OutstandingTxns(); n != 0 {
		t.Errorf("%v: %d transactions leaked from the pool", label, n)
	}
}

// TestCrossDesignInvariants runs every design over the same small workload
// and asserts the structural relations the paper's analysis relies on.
func TestCrossDesignInvariants(t *testing.T) {
	type outcome struct {
		run *stats.Run
	}
	results := map[config.Design]outcome{}
	designs := []config.Design{
		config.NoL4, config.Alloy, config.BEAR, config.BWOpt,
		config.LohHill, config.MostlyClean, config.InclAlloy,
		config.TIS, config.Sector,
	}
	for _, d := range designs {
		cfg := config.Default(512).WithDesign(d)
		wl, err := trace.Rate("soplex", cfg.Core.Count, 512, 1)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := NewSim(cfg, wl, 20000, 50000)
		if err != nil {
			t.Fatal(err)
		}
		r, err := sim.Run()
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		assertNoTxnLeak(t, sim, d)
		results[d] = outcome{run: r}
	}

	// 1. Every design retires the same instructions.
	want := results[config.Alloy].run.Instructions
	for d, o := range results {
		if o.run.Instructions != want {
			t.Errorf("%v retired %d instructions, want %d", d, o.run.Instructions, want)
		}
	}
	// 2. BW-Opt's bloat factor is exactly 1; everyone else with hits is >= 1.
	for d, o := range results {
		bf := o.run.L4.BloatFactor()
		if d == config.BWOpt && bf != 1.0 {
			t.Errorf("BW-Opt bloat = %v", bf)
		}
		if o.run.L4.ReadHits > 0 && bf < 1.0 {
			t.Errorf("%v bloat %v < 1", d, bf)
		}
	}
	// 3. BW-Opt is at least as fast as the Alloy baseline, and any cache
	// design beats no cache on this cache-friendly workload.
	if results[config.BWOpt].run.Cycles > results[config.Alloy].run.Cycles {
		t.Error("BW-Opt slower than Alloy")
	}
	noL4 := results[config.NoL4].run.Cycles
	for _, d := range []config.Design{config.Alloy, config.BEAR, config.BWOpt, config.TIS} {
		if results[d].run.Cycles > noL4 {
			t.Errorf("%v (%d cycles) slower than no cache (%d)", d, results[d].run.Cycles, noL4)
		}
	}
	// 4. Designs without in-DRAM tags never issue probe traffic.
	for _, d := range []config.Design{config.TIS, config.Sector} {
		l4 := &results[d].run.L4
		if l4.Bytes[stats.MissProbe] != 0 || l4.Bytes[stats.WBProbe] != 0 {
			t.Errorf("%v issued probe bytes: %v", d, l4.Bytes)
		}
	}
	// 5. The inclusive design never bypasses.
	if results[config.InclAlloy].run.L4.Bypasses != 0 {
		t.Error("inclusive design bypassed fills")
	}
	// 6. Loh-Hill's associativity gives it at least the direct-mapped
	// design's hit rate.
	if hrLH, hrAL := results[config.LohHill].run.L4.HitRate(), results[config.Alloy].run.L4.HitRate(); hrLH+0.02 < hrAL {
		t.Errorf("29-way LH hit rate %.3f below direct-mapped %.3f", hrLH, hrAL)
	}
}

// TestWarmBoundaryResetsStats verifies that warm-phase traffic does not
// leak into measured statistics.
func TestWarmBoundaryResetsStats(t *testing.T) {
	cfg := config.Default(512).WithDesign(config.Alloy)
	wl, _ := trace.Rate("wrf", cfg.Core.Count, 512, 1)
	sim, err := NewSim(cfg, wl, 40000, 10000)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	// With warm 4x the measurement, the measured miss count must be far
	// below the total the run would produce unreset.
	if r.Instructions != 8*10000 {
		t.Fatalf("measured instructions = %d", r.Instructions)
	}
	if sim.MarkTime == 0 {
		t.Fatal("warm boundary never fired")
	}
	assertNoTxnLeak(t, sim, "warm-boundary")
	if r.Cycles == 0 {
		t.Fatal("no measured cycles")
	}
}

// TestStoreOnlyWorkload exercises the posted-store path end to end.
func TestStoreOnlyWorkload(t *testing.T) {
	cfg := config.Default(512).WithDesign(config.BEAR)
	wl, _ := trace.Rate("lbm", cfg.Core.Count, 512, 3) // store-heavy
	sim, err := NewSim(cfg, wl, 5000, 20000)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.L3Writebacks == 0 {
		t.Fatal("store-heavy run produced no L3 writebacks")
	}
	if r.L4.WBHits+r.L4.WBMisses == 0 {
		t.Fatal("no writebacks reached the L4")
	}
	assertNoTxnLeak(t, sim, "store-only")
}
