package hier

import (
	"fmt"

	"bear/internal/config"
	"bear/internal/cpu"
	"bear/internal/dram"
	"bear/internal/dramcache"
	"bear/internal/event"
	"bear/internal/stats"
	"bear/internal/trace"
)

// Sim assembles and runs one complete simulation: cores driving a hierarchy
// over an L4 design, with a warm-up phase before measurement.
type Sim struct {
	Cfg      config.System
	Workload trace.Workload

	Q      *event.Queue
	Hier   *Hierarchy
	Bundle *dramcache.Bundle
	Cores  []*cpu.Core

	warmLeft   int
	finishLeft int
	started    bool
	MarkTime   uint64
}

// NewSim builds a simulation of cfg running workload, where each core
// executes warm instructions before measurement and meas instructions
// during it.
func NewSim(cfg config.System, wl trace.Workload, warm, meas uint64) (*Sim, error) {
	return NewSimQueue(cfg, wl, warm, meas, &event.Queue{})
}

// NewSimQueue is NewSim with a caller-supplied event queue, which it Resets
// before use. Worker pools running many simulations back to back pass a
// pooled queue so its grown backing array is reused instead of reallocated
// per simulation.
func NewSimQueue(cfg config.System, wl trace.Workload, warm, meas uint64, q *event.Queue) (*Sim, error) {
	if len(wl.Sources) == 0 {
		return nil, fmt.Errorf("hier: workload %q has no sources", wl.Name)
	}
	q.Reset()
	s := &Sim{Cfg: cfg, Workload: wl, Q: q}
	cores := len(wl.Sources)
	s.Hier = New(cfg, s.Q, cores)
	bundle, err := dramcache.Build(cfg, s.Q, s.Hier.Hooks())
	if err != nil {
		return nil, err
	}
	s.Bundle = bundle
	s.Hier.AttachL4(bundle.Cache)

	s.warmLeft = cores
	s.finishLeft = cores
	for i := 0; i < cores; i++ {
		c := cpu.New(i, cfg.Core, s.Q, wl.Sources[i], s.Hier, warm, meas,
			s.onWarm, s.onFinish)
		s.Cores = append(s.Cores, c)
	}
	s.prewarm()
	return s, nil
}

// prewarm functionally installs each workload's steady-state residency into
// the L4 before any timed instruction executes. Cores interleave so that
// conflict evictions in the direct-mapped designs are shared fairly, as they
// would be in steady state.
func (s *Sim) prewarm() {
	cores := len(s.Workload.Sources)
	fair := uint64(s.Cfg.CacheBytes) / config.TADBytes / uint64(cores)
	lists := make([][]uint64, cores)
	for i, src := range s.Workload.Sources {
		p, ok := src.(trace.Prewarmer)
		if !ok {
			continue
		}
		p.Prewarm(fair, func(line uint64) { lists[i] = append(lists[i], line) })
	}
	for pos := 0; ; pos++ {
		any := false
		for i := range lists {
			if pos < len(lists[i]) {
				s.Bundle.Cache.Install(lists[i][pos])
				any = true
			}
		}
		if !any {
			return
		}
	}
}

func (s *Sim) onWarm(coreID int) {
	s.warmLeft--
	if s.warmLeft == 0 {
		s.MarkTime = s.Q.Now()
		s.resetStats()
	}
}

func (s *Sim) onFinish(coreID int, now uint64) { s.finishLeft-- }

// resetStats zeroes all measured counters at the warm boundary, and clears
// the BAB duelling monitors so mode decisions reflect steady-state rather
// than cold-cache behaviour.
func (s *Sim) resetStats() {
	s.Bundle.Cache.Stats().Reset()
	s.Bundle.MemDRAM.Stats = dram.Stats{}
	if s.Bundle.L4DRAM != nil {
		s.Bundle.L4DRAM.Stats = dram.Stats{}
	}
	s.Hier.Counters = Counters{}
	if s.Bundle.BAB != nil {
		s.Bundle.BAB.ResetMonitors()
	}
}

// start schedules every core's first execution slice exactly once.
func (s *Sim) start() {
	if s.started {
		return
	}
	s.started = true
	for _, c := range s.Cores {
		c.Start()
	}
}

// RunWarm executes events until every core has crossed its warm-up boundary,
// then returns with the simulation ready to continue via Run. Benchmarks use
// this split to measure the steady-state (measured) phase in isolation: by
// the warm boundary the event queue, request freelists and transaction pools
// have grown to their working sizes, so allocations observed across the
// remaining Run are true steady-state allocations.
func (s *Sim) RunWarm() {
	s.start()
	s.Q.Run(func() bool { return s.warmLeft == 0 })
}

// Run executes the simulation to completion and returns the results.
func (s *Sim) Run() (*stats.Run, error) {
	s.start()
	s.Q.Run(func() bool { return s.finishLeft == 0 })
	if s.finishLeft != 0 {
		return nil, fmt.Errorf("hier: deadlock — %d cores unfinished with empty event queue (workload %s)", s.finishLeft, s.Workload.Name)
	}

	r := &stats.Run{
		Design:   s.Bundle.Cache.Name(),
		Workload: s.Workload.Name,
		L4:       *s.Bundle.Cache.Stats(),
	}
	var maxFinish uint64
	for _, c := range s.Cores {
		if c.FinishAt > maxFinish {
			maxFinish = c.FinishAt
		}
		r.CoreInstr = append(r.CoreInstr, c.MeasuredInstructions())
		r.CoreIPC = append(r.CoreIPC, c.IPC())
		r.Instructions += c.MeasuredInstructions()
	}
	if maxFinish > s.MarkTime {
		r.Cycles = maxFinish - s.MarkTime
	}
	r.L3Accesses = s.Hier.Counters.L3Accesses
	r.L3Misses = s.Hier.Counters.L3Misses
	r.L3Writebacks = s.Hier.Counters.L3Writebacks
	r.MemReadBytes = s.Bundle.MemDRAM.Stats.ReadBytes
	r.MemWriteBytes = s.Bundle.MemDRAM.Stats.WriteBytes
	return r, nil
}
