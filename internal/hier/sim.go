package hier

import (
	"fmt"

	"bear/internal/config"
	"bear/internal/cpu"
	"bear/internal/dram"
	"bear/internal/dramcache"
	"bear/internal/event"
	"bear/internal/fault"
	"bear/internal/stats"
	"bear/internal/trace"
)

// Sim assembles and runs one complete simulation: cores driving a hierarchy
// over an L4 design, with a warm-up phase before measurement.
type Sim struct {
	Cfg      config.System
	Workload trace.Workload

	Q      *event.Queue
	Hier   *Hierarchy
	Bundle *dramcache.Bundle
	Cores  []*cpu.Core

	// Watchdog bounds the run; zero fields take defaults (see Watchdog).
	// Set between construction and Run.
	Watchdog Watchdog

	warm, meas uint64
	warmLeft   int
	finishLeft int
	started    bool
	MarkTime   uint64
}

// Watchdog configures the forward-progress and invariant monitors Run
// applies. The monitors are pure observers sampling at fixed event-count
// epochs: they never schedule events or mutate simulation state, so
// enabling them (at any threshold) leaves results byte-identical, and a
// wedged simulation trips them at the same cycle on every run.
type Watchdog struct {
	// MaxCycles aborts the run when simulated time exceeds it. Zero
	// derives a generous bound from the instruction budget.
	MaxCycles uint64
	// StallCycles aborts when no core retires an instruction for this
	// many simulated cycles while events keep firing (livelock). Zero
	// defaults to 1<<22 — orders of magnitude above any legitimate stall
	// (a DRAM refresh window or write drain is thousands of cycles).
	StallCycles uint64
	// CheckEvery is the monitor epoch in executed events (default 1<<16).
	CheckEvery uint64
	// Check additionally runs cheap engine invariant checks every epoch
	// (transaction accounting, DRAM queue occupancy and scheduler-memo
	// cross-checks, MSHR accounting), verifies every DRAM scheduling
	// decision against the naive reference picker, and performs a post-run
	// drain + transaction-pool leak check (the -check flag).
	Check bool
	// MaxQueued bounds per-memory DRAM request occupancy under Check
	// (default 1<<16).
	MaxQueued int
	// DrainEvents bounds the post-run queue drain under Check
	// (default 1<<24).
	DrainEvents uint64
}

// withDefaults resolves zero fields against the instruction budget.
func (w Watchdog) withDefaults(warm, meas uint64) Watchdog {
	if w.CheckEvery == 0 {
		w.CheckEvery = 1 << 16
	}
	if w.StallCycles == 0 {
		w.StallCycles = 1 << 22
	}
	if w.MaxCycles == 0 {
		// Even a fully serialised core retires one instruction per memory
		// round trip (hundreds of cycles); 1024 cycles per instruction plus
		// fixed slack is far beyond any legitimate configuration.
		w.MaxCycles = (warm+meas)*1024 + 1<<24
	}
	if w.MaxQueued == 0 {
		w.MaxQueued = 1 << 16
	}
	if w.DrainEvents == 0 {
		w.DrainEvents = 1 << 24
	}
	return w
}

// NewSim builds a simulation of cfg running workload, where each core
// executes warm instructions before measurement and meas instructions
// during it.
func NewSim(cfg config.System, wl trace.Workload, warm, meas uint64) (*Sim, error) {
	return NewSimQueue(cfg, wl, warm, meas, &event.Queue{})
}

// NewSimQueue is NewSim with a caller-supplied event queue, which it Resets
// before use. Worker pools running many simulations back to back pass a
// pooled queue so its grown backing array is reused instead of reallocated
// per simulation.
func NewSimQueue(cfg config.System, wl trace.Workload, warm, meas uint64, q *event.Queue) (*Sim, error) {
	if len(wl.Sources) == 0 {
		return nil, fmt.Errorf("hier: workload %q has no sources", wl.Name)
	}
	q.Reset()
	s := &Sim{Cfg: cfg, Workload: wl, Q: q, warm: warm, meas: meas}
	cores := len(wl.Sources)
	s.Hier = New(cfg, s.Q, cores)
	bundle, err := dramcache.Build(cfg, s.Q, s.Hier.Hooks())
	if err != nil {
		return nil, err
	}
	s.Bundle = bundle
	s.Hier.AttachL4(bundle.Cache)

	s.warmLeft = cores
	s.finishLeft = cores
	for i := 0; i < cores; i++ {
		c := cpu.New(i, cfg.Core, s.Q, wl.Sources[i], s.Hier, warm, meas,
			s.onWarm, s.onFinish)
		s.Cores = append(s.Cores, c)
	}
	s.prewarm()
	return s, nil
}

// prewarm functionally installs each workload's steady-state residency into
// the L4 before any timed instruction executes. Cores interleave so that
// conflict evictions in the direct-mapped designs are shared fairly, as they
// would be in steady state.
func (s *Sim) prewarm() {
	cores := len(s.Workload.Sources)
	fair := uint64(s.Cfg.CacheBytes) / config.TADBytes / uint64(cores)
	lists := make([][]uint64, cores)
	for i, src := range s.Workload.Sources {
		p, ok := src.(trace.Prewarmer)
		if !ok {
			continue
		}
		p.Prewarm(fair, func(line uint64) { lists[i] = append(lists[i], line) })
	}
	for pos := 0; ; pos++ {
		any := false
		for i := range lists {
			if pos < len(lists[i]) {
				s.Bundle.Cache.Install(lists[i][pos])
				any = true
			}
		}
		if !any {
			return
		}
	}
}

func (s *Sim) onWarm(coreID int) {
	s.warmLeft--
	if s.warmLeft == 0 {
		s.MarkTime = s.Q.Now()
		s.resetStats()
	}
}

func (s *Sim) onFinish(coreID int, now uint64) { s.finishLeft-- }

// resetStats zeroes all measured counters at the warm boundary, and clears
// the BAB duelling monitors so mode decisions reflect steady-state rather
// than cold-cache behaviour.
func (s *Sim) resetStats() {
	s.Bundle.Cache.Stats().Reset()
	s.Bundle.MemDRAM.Stats = dram.Stats{}
	if s.Bundle.L4DRAM != nil {
		s.Bundle.L4DRAM.Stats = dram.Stats{}
	}
	s.Hier.Counters = Counters{}
	if s.Bundle.BAB != nil {
		s.Bundle.BAB.ResetMonitors()
	}
}

// start schedules every core's first execution slice exactly once.
func (s *Sim) start() {
	if s.started {
		return
	}
	s.started = true
	for _, c := range s.Cores {
		c.Start()
	}
}

// RunWarm executes events until every core has crossed its warm-up boundary,
// then returns with the simulation ready to continue via Run. Benchmarks use
// this split to measure the steady-state (measured) phase in isolation: by
// the warm boundary the event queue, request freelists and transaction pools
// have grown to their working sizes, so allocations observed across the
// remaining Run are true steady-state allocations.
func (s *Sim) RunWarm() {
	s.start()
	s.Q.Run(func() bool { return s.warmLeft == 0 })
}

// totalRetired sums retired instructions over all cores: the watchdog's
// forward-progress signal.
func (s *Sim) totalRetired() uint64 {
	var n uint64
	for _, c := range s.Cores {
		n += c.Retired()
	}
	return n
}

// watchdogErr builds a deterministic diagnosis for a tripped monitor.
func (s *Sim) watchdogErr(kind fault.WatchdogKind, limit uint64) *fault.WatchdogError {
	return &fault.WatchdogError{
		Kind:     kind,
		Workload: s.Workload.Name,
		Design:   s.Bundle.Cache.Name(),
		Cycle:    s.Q.Now(),
		Retired:  s.totalRetired(),
		Limit:    limit,
	}
}

// checkInvariants runs the cheap per-epoch engine checks enabled by
// Watchdog.Check: transaction accounting, DRAM queue occupancy, MSHR
// accounting and miss-table consistency.
func (s *Sim) checkInvariants(maxQueued int) error {
	if n := s.Bundle.Cache.OutstandingTxns(); n < 0 {
		return fault.Invariantf("dramcache", "%s: %d outstanding transactions (double release)", s.Bundle.Cache.Name(), n)
	}
	if err := s.Bundle.MemDRAM.CheckInvariants(maxQueued); err != nil {
		return err
	}
	if s.Bundle.L4DRAM != nil {
		if err := s.Bundle.L4DRAM.CheckInvariants(maxQueued); err != nil {
			return err
		}
	}
	for _, c := range s.Cores {
		if err := c.CheckMSHRs(); err != nil {
			return err
		}
	}
	return s.Hier.CheckPending()
}

// drainAndCheck halts every core, drains the event queue (bounded by
// DrainEvents) and verifies that quiescence really is quiescent: no leaked
// transactions in the pool and no requests still queued in any DRAM channel.
// Only called under Watchdog.Check, after results have been snapshotted.
func (s *Sim) drainAndCheck(wd Watchdog) error {
	for _, c := range s.Cores {
		c.Halt()
	}
	var steps uint64
	for s.Q.Step() {
		steps++
		if steps > wd.DrainEvents {
			return s.watchdogErr(fault.WatchdogDrain, wd.DrainEvents)
		}
	}
	if n := s.Bundle.Cache.OutstandingTxns(); n != 0 {
		return fault.Invariantf("dramcache", "%s: %d transactions leaked from the pool after drain", s.Bundle.Cache.Name(), n)
	}
	if p := s.Bundle.MemDRAM.Pending(); p != 0 {
		return fault.Invariantf("dram", "%s: %d requests still queued after drain", s.Bundle.MemDRAM.Name, p)
	}
	if s.Bundle.L4DRAM != nil {
		if p := s.Bundle.L4DRAM.Pending(); p != 0 {
			return fault.Invariantf("dram", "%s: %d requests still queued after drain", s.Bundle.L4DRAM.Name, p)
		}
	}
	return nil
}

// Run executes the simulation to completion and returns the results.
//
// Run steps the queue itself (rather than delegating to Queue.Run) so the
// watchdog can observe the simulation at fixed event-count epochs without
// scheduling events of its own — the event sequence, and therefore every
// result, is byte-identical with the watchdog at any setting. A tripped
// monitor converts a livelock, runaway or deadlock into a typed
// *fault.WatchdogError naming the workload, design and cycle.
func (s *Sim) Run() (*stats.Run, error) {
	s.start()
	wd := s.Watchdog.withDefaults(s.warm, s.meas)
	if wd.Check {
		// Every DRAM scheduling decision re-derives itself through the
		// naive reference picker (dram/reference.go). Like the epoch
		// checks, it observes without scheduling: results stay identical.
		s.Bundle.MemDRAM.SelfCheck = true
		if s.Bundle.L4DRAM != nil {
			s.Bundle.L4DRAM.SelfCheck = true
		}
	}
	var steps uint64
	lastRetired := s.totalRetired()
	progressAt := s.Q.Now()
	for s.finishLeft > 0 {
		if !s.Q.Step() {
			break
		}
		steps++
		if steps%wd.CheckEvery != 0 {
			continue
		}
		now := s.Q.Now()
		if now > wd.MaxCycles {
			return nil, s.watchdogErr(fault.WatchdogCycleBudget, wd.MaxCycles)
		}
		if r := s.totalRetired(); r != lastRetired {
			lastRetired, progressAt = r, now
		} else if now-progressAt > wd.StallCycles {
			return nil, s.watchdogErr(fault.WatchdogStall, wd.StallCycles)
		}
		if wd.Check {
			if err := s.checkInvariants(wd.MaxQueued); err != nil {
				return nil, err
			}
		}
	}
	if s.finishLeft != 0 {
		return nil, s.watchdogErr(fault.WatchdogDeadlock, uint64(s.finishLeft))
	}

	r := &stats.Run{
		Design:   s.Bundle.Cache.Name(),
		Workload: s.Workload.Name,
		L4:       *s.Bundle.Cache.Stats(),
	}
	var maxFinish uint64
	for _, c := range s.Cores {
		if c.FinishAt > maxFinish {
			maxFinish = c.FinishAt
		}
		r.CoreInstr = append(r.CoreInstr, c.MeasuredInstructions())
		r.CoreIPC = append(r.CoreIPC, c.IPC())
		r.Instructions += c.MeasuredInstructions()
	}
	if maxFinish > s.MarkTime {
		r.Cycles = maxFinish - s.MarkTime
	}
	r.L3Accesses = s.Hier.Counters.L3Accesses
	r.L3Misses = s.Hier.Counters.L3Misses
	r.L3Writebacks = s.Hier.Counters.L3Writebacks
	r.MemReadBytes = s.Bundle.MemDRAM.Stats.ReadBytes
	r.MemWriteBytes = s.Bundle.MemDRAM.Stats.WriteBytes

	// Under -check, prove quiescence after the results are snapshotted so
	// the epilogue cannot perturb them: drain the queue and verify nothing
	// leaked. An error here means the run's accounting was unsound even if
	// its numbers looked plausible.
	if wd.Check {
		if err := s.drainAndCheck(wd); err != nil {
			return nil, err
		}
	}
	return r, nil
}
