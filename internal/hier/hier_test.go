package hier

import (
	"testing"

	"bear/internal/config"
	"bear/internal/sram"
	"bear/internal/trace"
)

func smallCfg(d config.Design) config.System {
	cfg := config.Default(512).WithDesign(d)
	return cfg
}

func runSmall(t *testing.T, d config.Design, workload string, warm, meas uint64) (*Sim, func()) {
	t.Helper()
	cfg := smallCfg(d)
	wl, err := trace.Rate(workload, cfg.Core.Count, 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(cfg, wl, warm, meas)
	if err != nil {
		t.Fatal(err)
	}
	return sim, func() {}
}

func TestEndToEndAlloy(t *testing.T) {
	sim, _ := runSmall(t, config.Alloy, "omnetpp", 20000, 50000)
	r, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles == 0 || r.Instructions != 8*50000 {
		t.Fatalf("run = cycles %d, instr %d", r.Cycles, r.Instructions)
	}
	if r.L3Misses == 0 {
		t.Fatal("no L3 misses simulated")
	}
	if r.L4.Reads() == 0 {
		t.Fatal("L4 never accessed")
	}
	if bf := r.L4.BloatFactor(); bf < 1.0 {
		t.Fatalf("bloat factor %v < 1 — accounting broken", bf)
	}
	if r.L4.AvgHitLatency() <= 0 {
		t.Fatal("hit latency not measured")
	}
}

func TestDCPBitMatchesL4State(t *testing.T) {
	sim, _ := runSmall(t, config.BEAR, "gcc", 10000, 30000)
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// Invariant: every L3 line with a known DCP bit must agree with the
	// L4's functional state — this is exactly the guarantee that lets
	// BEAR skip writeback probes without losing correctness.
	l4 := sim.Bundle.Cache
	checked, violations := 0, 0
	sim.Hier.L3().Range(func(ln sram.Line) bool {
		if ln.Aux&auxKnown == 0 {
			return true
		}
		checked++
		present := ln.Aux&auxPresent != 0
		if present != l4.Contains(ln.Addr) {
			violations++
		}
		return true
	})
	if checked == 0 {
		t.Fatal("no L3 lines carried DCP state")
	}
	if violations != 0 {
		t.Fatalf("DCP bit wrong for %d/%d lines", violations, checked)
	}
}

func TestInclusionInvariant(t *testing.T) {
	sim, _ := runSmall(t, config.InclAlloy, "wrf", 10000, 30000)
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	// Every valid L3 line must be present in the inclusive L4 (modulo
	// lines filled after a racing back-invalidate, which the design
	// handles with a conservative probe; those should be rare).
	l4 := sim.Bundle.Cache
	total, missing := 0, 0
	sim.Hier.L3().Range(func(ln sram.Line) bool {
		total++
		if !l4.Contains(ln.Addr) {
			missing++
		}
		return true
	})
	if total == 0 {
		t.Fatal("empty L3 after run")
	}
	if float64(missing) > 0.02*float64(total) {
		t.Fatalf("inclusion violated for %d/%d L3 lines", missing, total)
	}
}

func TestNoL4StillWorks(t *testing.T) {
	sim, _ := runSmall(t, config.NoL4, "leslie", 5000, 20000)
	r, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.L4.ReadHits != 0 {
		t.Fatal("NoL4 reported L4 hits")
	}
	if r.MemReadBytes == 0 {
		t.Fatal("no memory traffic")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() uint64 {
		sim, _ := runSmall(t, config.BEAR, "milc", 5000, 20000)
		r, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r.Cycles
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("identical configs produced %d and %d cycles", a, b)
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	run := func(seed uint64) uint64 {
		cfg := smallCfg(config.Alloy)
		cfg.Seed = seed
		wl, _ := trace.Rate("milc", cfg.Core.Count, 512, seed)
		sim, err := NewSim(cfg, wl, 5000, 20000)
		if err != nil {
			t.Fatal(err)
		}
		r, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r.Cycles
	}
	if run(1) == run(2) {
		t.Fatal("different seeds produced identical cycle counts (suspicious)")
	}
}

func TestWritebacksFlow(t *testing.T) {
	// A store-heavy workload must produce L3 writebacks and L4 writeback
	// traffic.
	sim, _ := runSmall(t, config.Alloy, "lbm", 10000, 40000)
	r, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.L3Writebacks == 0 {
		t.Fatal("no L3 writebacks")
	}
	if r.L4.WBHits+r.L4.WBMisses == 0 {
		t.Fatal("no L4 writeback handling")
	}
}

func TestBEARReducesBloat(t *testing.T) {
	bloat := func(d config.Design) float64 {
		sim, _ := runSmall(t, d, "mcf", 20000, 60000)
		r, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return r.L4.BloatFactor()
	}
	alloy, bear := bloat(config.Alloy), bloat(config.BEAR)
	if bear >= alloy {
		t.Fatalf("BEAR bloat %.2f not lower than Alloy %.2f", bear, alloy)
	}
}

func TestBWOptIsIdeal(t *testing.T) {
	sim, _ := runSmall(t, config.BWOpt, "soplex", 10000, 30000)
	r, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.L4.ReadHits > 0 && r.L4.BloatFactor() != 1.0 {
		t.Fatalf("BW-Opt bloat = %v, want 1", r.L4.BloatFactor())
	}
}

func TestMixWorkload(t *testing.T) {
	cfg := smallCfg(config.Alloy)
	wl, err := trace.Mix(1, cfg.Core.Count, 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(cfg, wl, 5000, 20000)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.CoreIPC) != 8 {
		t.Fatalf("mix run has %d core IPCs", len(r.CoreIPC))
	}
	for i, ipc := range r.CoreIPC {
		if ipc <= 0 || ipc > 2.0 {
			t.Fatalf("core %d IPC = %v out of range", i, ipc)
		}
	}
}

func TestEmptyWorkloadRejected(t *testing.T) {
	cfg := smallCfg(config.Alloy)
	if _, err := NewSim(cfg, trace.Workload{Name: "empty"}, 10, 10); err == nil {
		t.Fatal("empty workload accepted")
	}
}
