package hier

import (
	"errors"
	"reflect"
	"testing"

	"bear/internal/config"
	"bear/internal/core"
	"bear/internal/dramcache"
	"bear/internal/event"
	"bear/internal/fault"
	"bear/internal/stats"
	"bear/internal/trace"
)

// blackHole is an L4 that accepts reads and never answers them: every
// core's loads hang forever, modelling a wedged engine. With events still
// flowing it is a livelock; with the queue empty it is a deadlock.
type blackHole struct{ st stats.L4 }

func (b *blackHole) Name() string { return "blackhole" }
func (b *blackHole) Read(now uint64, coreID int, line, pc uint64, done func(uint64, dramcache.ReadResult)) {
}
func (b *blackHole) Writeback(now uint64, coreID int, line uint64, pres core.Presence) {}
func (b *blackHole) Contains(line uint64) bool                                         { return false }
func (b *blackHole) Install(line uint64)                                               {}
func (b *blackHole) Stats() *stats.L4                                                  { return &b.st }
func (b *blackHole) OutstandingTxns() int                                              { return 0 }

// wedgedSim builds a real simulation, then swaps its L4 for a blackHole.
// With heartbeat set, a self-rescheduling event keeps the queue non-empty
// forever, so the wedge presents as a livelock rather than a deadlock.
func wedgedSim(t *testing.T, heartbeat bool) *Sim {
	t.Helper()
	cfg := config.Default(512)
	wl, err := trace.Rate("soplex", cfg.Core.Count, 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(cfg, wl, 20000, 50000)
	if err != nil {
		t.Fatal(err)
	}
	hole := &blackHole{}
	sim.Hier.AttachL4(hole)
	sim.Bundle.Cache = hole
	if heartbeat {
		var tick event.Func
		tick = func(now uint64) { sim.Q.After(100, tick) }
		sim.Q.After(100, tick)
	}
	return sim
}

// TestWatchdogStall pins the livelock monitor: events keep firing but no
// instruction retires, so Run must fail with a deterministic stall
// diagnosis instead of spinning forever.
func TestWatchdogStall(t *testing.T) {
	run := func() error {
		sim := wedgedSim(t, true)
		sim.Watchdog = Watchdog{StallCycles: 50_000, CheckEvery: 64}
		_, err := sim.Run()
		return err
	}
	err := run()
	var wd *fault.WatchdogError
	if !errors.As(err, &wd) {
		t.Fatalf("Run = %v, want *fault.WatchdogError", err)
	}
	if wd.Kind != fault.WatchdogStall {
		t.Errorf("Kind = %v, want %v", wd.Kind, fault.WatchdogStall)
	}
	if wd.Workload == "" || wd.Design != "blackhole" {
		t.Errorf("diagnosis missing identity: %+v", wd)
	}
	// The monitor samples at fixed event-count epochs, so the wedge must
	// trip at the same cycle with the same message on every run.
	if err2 := run(); err2.Error() != err.Error() {
		t.Errorf("stall diagnosis not deterministic:\n  first:  %v\n  second: %v", err, err2)
	}
}

// TestWatchdogDeadlock pins the empty-queue case: cores still unfinished
// with nothing scheduled is now a typed watchdog error.
func TestWatchdogDeadlock(t *testing.T) {
	sim := wedgedSim(t, false)
	_, err := sim.Run()
	var wd *fault.WatchdogError
	if !errors.As(err, &wd) {
		t.Fatalf("Run = %v, want *fault.WatchdogError", err)
	}
	if wd.Kind != fault.WatchdogDeadlock {
		t.Errorf("Kind = %v, want %v", wd.Kind, fault.WatchdogDeadlock)
	}
	if wd.Limit != uint64(len(sim.Cores)) {
		t.Errorf("deadlock reports %d unfinished cores, want %d", wd.Limit, len(sim.Cores))
	}
}

// TestWatchdogCycleBudget pins the runaway monitor: a healthy simulation
// given an absurdly small cycle budget must stop with a budget error, not
// run to completion.
func TestWatchdogCycleBudget(t *testing.T) {
	cfg := config.Default(512)
	wl, err := trace.Rate("soplex", cfg.Core.Count, 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSim(cfg, wl, 20000, 50000)
	if err != nil {
		t.Fatal(err)
	}
	sim.Watchdog = Watchdog{MaxCycles: 1000, CheckEvery: 64}
	_, err = sim.Run()
	var wd *fault.WatchdogError
	if !errors.As(err, &wd) {
		t.Fatalf("Run = %v, want *fault.WatchdogError", err)
	}
	if wd.Kind != fault.WatchdogCycleBudget {
		t.Errorf("Kind = %v, want %v", wd.Kind, fault.WatchdogCycleBudget)
	}
	if wd.Cycle <= wd.Limit {
		t.Errorf("tripped at cycle %d with limit %d", wd.Cycle, wd.Limit)
	}
}

// TestCheckModePreservesResults proves the -check contract: the invariant
// epochs and the post-run drain must be pure observers, leaving every
// measured number identical.
func TestCheckModePreservesResults(t *testing.T) {
	run := func(check bool) *stats.Run {
		t.Helper()
		cfg := config.Default(512).WithDesign(config.BEAR)
		wl, err := trace.Rate("soplex", cfg.Core.Count, 512, 1)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := NewSim(cfg, wl, 20000, 50000)
		if err != nil {
			t.Fatal(err)
		}
		sim.Watchdog.Check = check
		r, err := sim.Run()
		if err != nil {
			t.Fatalf("check=%v: %v", check, err)
		}
		return r
	}
	plain, checked := run(false), run(true)
	if !reflect.DeepEqual(plain, checked) {
		t.Errorf("-check changed results:\n  plain:   %+v\n  checked: %+v", plain, checked)
	}
}

// TestCheckPassesAcrossDesigns runs the invariant epochs over every design:
// a healthy simulation must never trip them.
func TestCheckPassesAcrossDesigns(t *testing.T) {
	for _, d := range []config.Design{
		config.NoL4, config.Alloy, config.BEAR, config.BWOpt,
		config.LohHill, config.MostlyClean, config.InclAlloy,
		config.TIS, config.Sector,
	} {
		cfg := config.Default(512).WithDesign(d)
		wl, err := trace.Rate("omnetpp", cfg.Core.Count, 512, 1)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := NewSim(cfg, wl, 20000, 50000)
		if err != nil {
			t.Fatal(err)
		}
		sim.Watchdog = Watchdog{Check: true, CheckEvery: 256}
		if _, err := sim.Run(); err != nil {
			t.Errorf("%v: healthy run tripped -check: %v", d, err)
		}
	}
}
