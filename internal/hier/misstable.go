package hier

// missTable maps an in-flight line address to its miss entry. It replaces a
// Go map on the L3 miss path: pending-set occupancy is bounded by the cores'
// MSHR files (tens of entries), so a small open-addressing table with linear
// probing resolves the merge lookup, the insert, and the fill-time delete in
// one or two probes each, without hashing through the runtime. Deletion uses
// backward shifting, so no tombstones accumulate and probe chains stay
// minimal. Determinism: probe order depends only on inserted keys, and no
// simulation output depends on iteration order.
type missTable struct {
	lines   []uint64
	entries []*missEntry
	mask    uint64
	n       int
}

// missTableSeed spreads line addresses (low-entropy, stride-patterned) over
// the table; the shift keeps the high product bits that the multiply mixes
// best.
const missTableSeed = 0x9e3779b97f4a7c15

func newMissTable() missTable {
	const cap0 = 256 // cores x MSHRs with ample slack; grows if ever exceeded
	return missTable{
		lines:   make([]uint64, cap0),
		entries: make([]*missEntry, cap0),
		mask:    cap0 - 1,
	}
}

//bear:hotpath
func (t *missTable) slot(line uint64) uint64 {
	h := line * missTableSeed
	return (h ^ h>>32) & t.mask
}

// get returns the entry pending for line, or nil.
//
//bear:hotpath
func (t *missTable) get(line uint64) *missEntry {
	for i := t.slot(line); t.entries[i] != nil; i = (i + 1) & t.mask {
		if t.lines[i] == line {
			return t.entries[i]
		}
	}
	return nil
}

// put inserts line -> e. The caller guarantees line is not present.
//
//bear:hotpath
func (t *missTable) put(line uint64, e *missEntry) {
	if uint64(t.n)*2 >= uint64(len(t.entries)) {
		t.grow()
	}
	i := t.slot(line)
	for t.entries[i] != nil {
		i = (i + 1) & t.mask
	}
	t.lines[i], t.entries[i] = line, e
	t.n++
}

// del removes line, backward-shifting any displaced followers so lookups
// never cross an empty slot to find their key.
//
//bear:hotpath
func (t *missTable) del(line uint64) {
	i := t.slot(line)
	for t.entries[i] == nil || t.lines[i] != line {
		if t.entries[i] == nil {
			return // not present
		}
		i = (i + 1) & t.mask
	}
	t.entries[i] = nil
	t.n--
	j := i
	for {
		j = (j + 1) & t.mask
		if t.entries[j] == nil {
			return
		}
		// Move j's key into the hole unless its home slot lies strictly
		// inside (i, j] — in that cyclic window the key is already as close
		// to home as it can get.
		home := t.slot(t.lines[j])
		if (j-home)&t.mask >= (j-i)&t.mask {
			t.lines[i], t.entries[i] = t.lines[j], t.entries[j]
			t.entries[j] = nil
			i = j
		}
	}
}

func (t *missTable) grow() {
	oldLines, oldEntries := t.lines, t.entries
	n := len(oldEntries) * 2
	t.lines = make([]uint64, n)
	t.entries = make([]*missEntry, n)
	t.mask = uint64(n) - 1
	t.n = 0
	for i, e := range oldEntries {
		if e != nil {
			t.put(oldLines[i], e)
		}
	}
}

// each calls fn for every pending (line, entry) pair; fn returning a non-nil
// error stops iteration and returns it.
func (t *missTable) each(fn func(line uint64, e *missEntry) error) error {
	for i, e := range t.entries {
		if e == nil {
			continue
		}
		if err := fn(t.lines[i], e); err != nil {
			return err
		}
	}
	return nil
}
