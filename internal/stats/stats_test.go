package stats

import (
	"math"
	"testing"
)

func TestBloatFactorIdeal(t *testing.T) {
	var s L4
	// BW-Opt: each hit transfers exactly 64 useful bytes.
	for i := 0; i < 100; i++ {
		s.ReadHits++
		s.AddBytes(HitProbe, 64)
	}
	if got := s.BloatFactor(); got != 1.0 {
		t.Fatalf("ideal bloat factor = %v, want 1", got)
	}
}

func TestBloatFactorAlloyHit(t *testing.T) {
	var s L4
	// Alloy: 80 bytes per hit -> 1.25x floor.
	s.ReadHits = 10
	s.AddBytes(HitProbe, 800)
	if got := s.BloatFactor(); got != 1.25 {
		t.Fatalf("hit-only Alloy bloat = %v, want 1.25", got)
	}
}

func TestBloatComposition(t *testing.T) {
	var s L4
	s.ReadHits = 100
	s.AddBytes(HitProbe, 100*80)
	s.AddBytes(MissProbe, 50*80)
	s.AddBytes(MissFill, 50*80)
	s.AddBytes(WBProbe, 30*80)
	s.AddBytes(WBUpdate, 30*80)
	total := s.BloatFactor()
	var sum float64
	for _, c := range Categories() {
		sum += s.CategoryFactor(c)
	}
	if math.Abs(total-sum) > 1e-12 {
		t.Fatalf("category factors sum %v != total %v", sum, total)
	}
	if math.Abs(total-(100+50+50+30+30)*80.0/(100*64)) > 1e-12 {
		t.Fatalf("total = %v", total)
	}
}

func TestBloatZeroDenominator(t *testing.T) {
	var s L4
	s.AddBytes(MissProbe, 80)
	if s.BloatFactor() != 0 {
		t.Fatal("bloat factor with zero hits should be 0 (undefined)")
	}
}

func TestLatencies(t *testing.T) {
	var s L4
	s.ReadHits = 2
	s.HitLatSum = 400
	s.ReadMisses = 3
	s.MissLatSum = 1500
	if s.AvgHitLatency() != 200 {
		t.Errorf("hit latency = %v", s.AvgHitLatency())
	}
	if s.AvgMissLatency() != 500 {
		t.Errorf("miss latency = %v", s.AvgMissLatency())
	}
	if got := s.AvgLatency(); math.Abs(got-380) > 1e-12 {
		t.Errorf("avg latency = %v, want 380", got)
	}
}

func TestHitRate(t *testing.T) {
	var s L4
	if s.HitRate() != 0 {
		t.Error("empty hit rate should be 0")
	}
	s.ReadHits, s.ReadMisses = 63, 37
	if math.Abs(s.HitRate()-0.63) > 1e-12 {
		t.Errorf("hit rate = %v", s.HitRate())
	}
}

func TestReset(t *testing.T) {
	var s L4
	s.ReadHits = 5
	s.AddBytes(HitProbe, 400)
	s.Reset()
	if s.ReadHits != 0 || s.TotalBytes() != 0 {
		t.Fatal("reset did not zero counters")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean(1,4) = %v, want 2", got)
	}
	if got := GeoMean([]float64{2, 2, 2}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean(2,2,2) = %v", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v, want 0", got)
	}
	// Non-positive entries ignored.
	if got := GeoMean([]float64{0, -1, 8, 2}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean with junk = %v, want 4", got)
	}
}

func TestRunMetrics(t *testing.T) {
	r := Run{Cycles: 1000, Instructions: 2000, L3Misses: 50}
	if r.IPC() != 2.0 {
		t.Errorf("IPC = %v", r.IPC())
	}
	if r.MPKI() != 25 {
		t.Errorf("MPKI = %v", r.MPKI())
	}
	base := Run{Cycles: 1500}
	if r.Speedup(&base) != 1.5 {
		t.Errorf("speedup = %v", r.Speedup(&base))
	}
}

func TestWeightedSpeedup(t *testing.T) {
	r := Run{CoreIPC: []float64{1.0, 0.5, 2.0}}
	ws := r.WeightedSpeedup([]float64{2.0, 1.0, 4.0})
	if math.Abs(ws-1.5) > 1e-12 {
		t.Errorf("weighted speedup = %v, want 1.5", ws)
	}
	// Missing or zero single-IPC entries are skipped.
	ws = r.WeightedSpeedup([]float64{2.0})
	if math.Abs(ws-0.5) > 1e-12 {
		t.Errorf("weighted speedup with short singles = %v", ws)
	}
}

func TestCategoryNames(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Categories() {
		n := c.String()
		if n == "" || seen[n] {
			t.Fatalf("bad category name %q", n)
		}
		seen[n] = true
	}
}

func TestBreakdownString(t *testing.T) {
	var s L4
	s.ReadHits = 1
	s.AddBytes(HitProbe, 80)
	if got := s.BreakdownString(); got != "Hit=1.25" {
		t.Errorf("BreakdownString = %q", got)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{1, 2, 3, 4, 100, 1000} {
		h.Add(v)
	}
	if h.N != 6 {
		t.Fatalf("N = %d", h.N)
	}
	// All values <= 1024, so p100 bound <= 2048.
	if p := h.Percentile(1.0); p > 2048 {
		t.Fatalf("p100 = %d", p)
	}
	// Median should be small (values 1..4 dominate).
	if p := h.Percentile(0.5); p > 8 {
		t.Fatalf("p50 = %d", p)
	}
	var empty Histogram
	if empty.Percentile(0.5) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestHitMissHelpers(t *testing.T) {
	var s L4
	s.Hit(100)
	s.Hit(300)
	s.Miss(500)
	if s.ReadHits != 2 || s.ReadMisses != 1 {
		t.Fatalf("counts: %d/%d", s.ReadHits, s.ReadMisses)
	}
	if s.AvgHitLatency() != 200 || s.AvgMissLatency() != 500 {
		t.Fatalf("latencies: %v/%v", s.AvgHitLatency(), s.AvgMissLatency())
	}
	if s.HitHist.N != 2 || s.MissHist.N != 1 {
		t.Fatal("histograms not updated")
	}
}
