// Package stats collects simulation metrics: the Bloat Factor and its
// six-way breakdown (Section 2.3 of the paper), DRAM-cache hit/miss
// latencies, hit rates, and end-to-end performance figures.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Category identifies a source of DRAM-cache bus traffic. HitProbe is the
// only category that carries useful bytes; everything else is bandwidth
// bloat (Section 2.3).
type Category int

const (
	// HitProbe is the read that services an LLC miss from the DRAM cache.
	HitProbe Category = iota
	// MissProbe is the tag+data read performed to detect a cache miss.
	MissProbe
	// MissFill is the write that installs a missed line.
	MissFill
	// WBProbe is the tag read performed on a dirty LLC eviction.
	WBProbe
	// WBUpdate is the write that refreshes a line already present.
	WBUpdate
	// WBFill is the write that allocates a line on a writeback miss
	// (absent in the baseline no-allocate policy).
	WBFill
	// VictimRead is the read of a dirty victim's data prior to its
	// eviction to memory, where it is not already covered by a probe
	// (TIS / Sector / Loh-Hill dirty replacements).
	VictimRead
	// ReplUpdate is the replacement-state (LRU) update write performed on
	// hits by set-associative tags-in-DRAM designs (Loh-Hill; footnote 3
	// of the paper).
	ReplUpdate
	numCategories
)

var categoryNames = [numCategories]string{
	"Hit", "MissProbe", "MissFill", "WBProbe", "WBUpdate", "WBFill", "Victim", "ReplUpd",
}

func (c Category) String() string { return categoryNames[c] }

// Categories lists all bus-traffic categories in display order.
func Categories() []Category {
	out := make([]Category, numCategories)
	for i := range out {
		out[i] = Category(i)
	}
	return out
}

// L4 accumulates DRAM-cache statistics for one simulation.
type L4 struct {
	Bytes [numCategories]uint64

	ReadHits   uint64 // LLC read misses serviced by the DRAM cache
	ReadMisses uint64 // LLC read misses serviced by main memory
	WBHits     uint64 // writeback probes (or DCP) that found the line
	WBMisses   uint64
	Bypasses   uint64 // miss fills skipped by a bypass policy
	Fills      uint64

	// Latency sums in cycles, from LLC-miss issue to data return.
	HitLatSum  uint64
	MissLatSum uint64

	// Latency distributions (tail behaviour under queuing).
	HitHist  Histogram
	MissHist Histogram

	// NTC bookkeeping.
	NTCProbesSaved  uint64 // miss probes avoided by an NTC "absent" answer
	NTCParallelSqsh uint64 // wasteful parallel memory accesses squashed
	DCPProbesSaved  uint64 // writeback probes avoided by the DCP bit

	// Predictor bookkeeping.
	PredHits, PredMisses uint64 // correct / incorrect MAP-I predictions
}

// AddBytes charges n bus bytes to category c.
//
//bear:bytes arg=0 bytes=1
func (s *L4) AddBytes(c Category, n int) { s.Bytes[c] += uint64(n) }

// Reads returns total LLC read misses that consulted the L4.
func (s *L4) Reads() uint64 { return s.ReadHits + s.ReadMisses }

// HitRate returns the DRAM-cache read hit rate in [0,1].
func (s *L4) HitRate() float64 {
	if s.Reads() == 0 {
		return 0
	}
	return float64(s.ReadHits) / float64(s.Reads())
}

// TotalBytes returns all bytes moved on the DRAM-cache bus.
func (s *L4) TotalBytes() uint64 {
	var t uint64
	for _, b := range s.Bytes {
		t += b
	}
	return t
}

// UsefulBytes returns the denominator of the Bloat Factor: 64 B for every
// line delivered from the DRAM cache to the processor.
func (s *L4) UsefulBytes() uint64 { return s.ReadHits * 64 }

// BloatFactor returns total bytes / useful bytes (Equation 1). An idealised
// cache has Bloat Factor 1. Returns 0 when the cache serviced nothing.
func (s *L4) BloatFactor() float64 {
	u := s.UsefulBytes()
	if u == 0 {
		return 0
	}
	return float64(s.TotalBytes()) / float64(u)
}

// CategoryFactor returns category c's contribution to the Bloat Factor.
func (s *L4) CategoryFactor(c Category) float64 {
	u := s.UsefulBytes()
	if u == 0 {
		return 0
	}
	return float64(s.Bytes[c]) / float64(u)
}

// AvgHitLatency returns the mean L4 hit latency in cycles.
func (s *L4) AvgHitLatency() float64 {
	if s.ReadHits == 0 {
		return 0
	}
	return float64(s.HitLatSum) / float64(s.ReadHits)
}

// AvgMissLatency returns the mean L4 miss latency in cycles.
func (s *L4) AvgMissLatency() float64 {
	if s.ReadMisses == 0 {
		return 0
	}
	return float64(s.MissLatSum) / float64(s.ReadMisses)
}

// AvgLatency returns the mean latency over all L4 reads.
func (s *L4) AvgLatency() float64 {
	if s.Reads() == 0 {
		return 0
	}
	return float64(s.HitLatSum+s.MissLatSum) / float64(s.Reads())
}

// Reset zeroes every counter (used at the warm-up boundary).
func (s *L4) Reset() { *s = L4{} }

// Run holds the end-to-end results of one simulation.
type Run struct {
	Design    string
	Workload  string
	Cycles    uint64   // execution time (max over cores)
	CoreInstr []uint64 // instructions retired per core
	CoreIPC   []float64
	L4        L4

	// Hierarchy counters.
	L3Accesses, L3Misses uint64
	L3Writebacks         uint64
	Instructions         uint64
	MemReadBytes         uint64 // main-memory bus read bytes
	MemWriteBytes        uint64
}

// IPC returns aggregate instructions per cycle.
func (r *Run) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// MPKI returns L3 misses per thousand instructions.
func (r *Run) MPKI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return 1000 * float64(r.L3Misses) / float64(r.Instructions)
}

// L3MissRate returns the fraction of L3 accesses that missed, in [0,1].
func (r *Run) L3MissRate() float64 {
	if r.L3Accesses == 0 {
		return 0
	}
	return float64(r.L3Misses) / float64(r.L3Accesses)
}

// Speedup returns baseline execution time divided by r's execution time for
// rate-mode workloads (equal work per run).
func (r *Run) Speedup(baseline *Run) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(baseline.Cycles) / float64(r.Cycles)
}

// WeightedSpeedup implements Equation 2: the sum over cores of
// IPC_shared / IPC_single, where single[i] is the IPC of the benchmark on
// core i when run alone on the same memory system.
func (r *Run) WeightedSpeedup(single []float64) float64 {
	var ws float64
	for i, ipc := range r.CoreIPC {
		if i < len(single) && single[i] > 0 {
			ws += ipc / single[i]
		}
	}
	return ws
}

// GeoMean returns the geometric mean of xs, ignoring non-positive entries.
func GeoMean(xs []float64) float64 {
	var sum float64
	var n int
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// BreakdownString renders the bloat breakdown as "cat=f" pairs.
func (s *L4) BreakdownString() string {
	var b strings.Builder
	for _, c := range Categories() {
		if s.Bytes[c] == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s=%.2f ", c, s.CategoryFactor(c))
	}
	return strings.TrimSpace(b.String())
}

// Histogram is a power-of-two-bucketed latency histogram: bucket i counts
// values in [2^i, 2^(i+1)).
type Histogram struct {
	Buckets [32]uint64
	N       uint64
}

// Add records one value.
func (h *Histogram) Add(v uint64) {
	b := 0
	for x := v; x > 1 && b < len(h.Buckets)-1; x >>= 1 {
		b++
	}
	h.Buckets[b]++
	h.N++
}

// Percentile returns an upper bound for the p-th percentile (p in [0,1]).
func (h *Histogram) Percentile(p float64) uint64 {
	if h.N == 0 {
		return 0
	}
	target := uint64(p * float64(h.N))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, c := range h.Buckets {
		seen += c
		if seen >= target {
			return 1 << uint(i+1)
		}
	}
	return 1 << 31
}

// Hit records a serviced DRAM-cache hit with its latency.
func (s *L4) Hit(lat uint64) {
	s.ReadHits++
	s.HitLatSum += lat
	s.HitHist.Add(lat)
}

// Miss records a miss serviced by main memory with its latency.
func (s *L4) Miss(lat uint64) {
	s.ReadMisses++
	s.MissLatSum += lat
	s.MissHist.Add(lat)
}
