package dramcache

import (
	"bear/internal/core"
	"bear/internal/dram"
	"bear/internal/sram"
)

// Banshee is the page-grained DRAM cache of Yu et al. ("Banshee:
// Bandwidth-efficient DRAM caching via software/hardware cooperation"),
// expressed as a Controller composition over pageTags: 4 KB frames with
// SRAM/TLB-resident tags, frequency-based replacement as the FillPolicy
// (pages are admitted only once they prove reuse, throttling page-fill
// bloat), and a TLB-like tag buffer as the ProbeFilter. Reads never probe
// the DRAM array — the mapping is on chip — but a dirty writeback whose
// page mapping is not buffered pays the dirty-probe flow: a tag probe in
// the DRAM array resolves its presence (the hybrid tag-probe path of the
// paper, bansheeWB below).
type Banshee = Controller

// fbrFill approximates Banshee's frequency-based replacement as a pure
// FillPolicy: a direct-mapped table of saturating per-page counters,
// bumped on each miss to the page; the page is admitted (filled) only once
// its counter reaches the threshold, and admission resets the counter. The
// full FBR scheme compares the candidate's counter against the victim's —
// the threshold form keeps the policy a stateless-against-the-tag-store
// composition (DESIGN.md records the substitution), and preserves the
// property that matters for bandwidth: single-touch pages never pay a
// whole-page fill.
type fbrFill struct {
	ctr       []uint8
	mask      uint64
	threshold uint8
}

// newFBRFill builds a counter table of at least entries slots (rounded up
// to a power of two).
func newFBRFill(entries uint64, threshold uint8) *fbrFill {
	n := uint64(1024)
	for n < entries {
		n <<= 1
	}
	return &fbrFill{ctr: make([]uint8, n), mask: n - 1, threshold: threshold}
}

// idx mixes the page address (Fibonacci hashing) so striding page streams
// spread over the table instead of aliasing a few slots.
//
//bear:hotpath
func (f *fbrFill) idx(page uint64) uint64 {
	return (page * 0x9e3779b97f4a7c15) >> 32 & f.mask
}

func (f *fbrFill) RecordAccess(_, page uint64, miss bool) {
	if miss {
		if i := f.idx(page); f.ctr[i] < ^uint8(0) {
			f.ctr[i]++
		}
	}
}

// ShouldBypass admits the page only once its miss counter proves reuse.
func (f *fbrFill) ShouldBypass(_, page, _ uint64) bool {
	return f.ctr[f.idx(page)] < f.threshold
}

func (f *fbrFill) OnHit(uint64) bool { return false }

// OnFill resets the admitted page's counter: it must re-earn residency
// after eviction.
func (f *fbrFill) OnFill(_, page, _ uint64, _ bool) { f.ctr[f.idx(page)] = 0 }

func (f *fbrFill) InsertMRU(uint64) bool { return true }

// bansheeTB is the TLB-resident tag buffer as a ProbeFilter: a small SRAM
// cache of page mappings known to be resident. It trains on hits and fills
// (Sync/OnProbe fire exactly there) and is invalidated by pageTags on page
// eviction, so a buffered mapping is always truthful — which is what lets
// bansheeWB settle buffered writebacks without a probe.
type bansheeTB struct {
	pt *pageTags
	tb *sram.Cache
}

// Consult implements ProbeFilter: a buffered mapping guarantees the page is
// resident. Presence of the demand line is answered from the page's valid
// bits (ground truth — the tag state is on chip in this design).
func (f *bansheeTB) Consult(_, page, line uint64) (known, present, skipProbe bool) {
	if _, ok := f.tb.Lookup(page); !ok {
		return false, false, false
	}
	return true, f.pt.lineValid(line), false
}

// insert deposits a page mapping, promoting an already-buffered one; pages
// not actually resident are dropped instead (a probe that found the page
// absent must not create a false mapping).
func (f *bansheeTB) insert(page uint64) {
	if !f.pt.resident(page) {
		f.tb.Invalidate(page)
		return
	}
	if !f.tb.Access(page, false) {
		f.tb.Fill(page, false, 0)
	}
}

// OnProbe implements ProbeFilter (hits and writeback probes deposit).
func (f *bansheeTB) OnProbe(_, page uint64) { f.insert(page) }

// Sync implements ProbeFilter (fills and writeback updates deposit).
func (f *bansheeTB) Sync(_, page uint64) { f.insert(page) }

// invalidate is pageTags' eviction coherence hook.
func (f *bansheeTB) invalidate(page uint64) { f.tb.Invalidate(page) }

// bansheeWB resolves writebacks through the tag buffer: a buffered mapping
// answers presence on chip (no probe — the tag-store answer is truthful),
// while an unbuffered dirty line pays the dirty-probe flow, reading the
// in-array tags before the update or forward resolves.
type bansheeWB struct {
	tb   *sram.Cache
	amap sram.Mapper
}

func (w bansheeWB) NeedsProbe(line uint64, _ bool, _ core.Presence) (probe, presKnown bool) {
	if _, ok := w.tb.Lookup(w.amap.Block(line)); ok {
		return false, false
	}
	return true, false
}

func (w bansheeWB) Allocate() bool { return false }

// bansheeLayout: hits and demand fills move 64 B lines; FillBytes scales by
// FillResult.FillLines to a whole page on page admission, and
// VictimReadBytes by the victim's dirty mask (partial-page writeback).
// Reads never probe (tags on chip); unbuffered writebacks pay a 64 B
// dirty probe.
var bansheeLayout = Layout{
	Gran:            GranPage,
	HitBytes:        64,
	FillBytes:       64,
	VictimReadBytes: 64,
	WBUpdateBytes:   64,
	WBProbeBytes:    64,
}

// NewBanshee composes a Banshee cache of `lines` data lines grouped into
// pages of pageLines lines, with the given page-set associativity.
func NewBanshee(name string, lines, pageLines uint64, ways int, l4 *dram.Memory, mem *MainMemory, hooks Hooks) *Banshee {
	checkPageGeometry(lines, pageLines)
	c := &Controller{name: name, lay: bansheeLayout, l4: l4, mem: mem, hooks: hooks}
	c.lay.Gran = Granularity{BlockLines: pageLines, SubBlocked: true}
	pt := newPageTags(c, lines, pageLines, ways, true)
	c.tags = pt

	pages := lines / pageLines
	// The tag buffer models TLB reach: far smaller than the page count, so
	// cold/streaming writebacks miss it and pay the dirty probe.
	tbSets := pages / 64
	if tbSets < 16 {
		tbSets = 16
	}
	tb := sram.New(tbSets, 8)
	filter := &bansheeTB{pt: pt, tb: tb}
	pt.onEvictPage = filter.invalidate
	c.filter = filter
	c.wb = bansheeWB{tb: tb, amap: pt.amap}
	// Frequency table: a few slots per page frame keeps candidate pages
	// (not yet resident) tracked alongside resident ones.
	c.fill = newFBRFill(4*pages, 2)
	return c
}
