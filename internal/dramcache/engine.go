package dramcache

import (
	"math/bits"

	"bear/internal/core"
	"bear/internal/dram"
	"bear/internal/event"
	"bear/internal/stats"
)

// This file is the layered L4 controller: one transaction engine shared by
// every DRAM-cache design. A design is a composition of
//
//	Layout     — the bytes each operation moves on the DRAM-cache bus
//	TagStore   — where tags live and how lines are located/installed
//	HitPredictor — whether a miss may dispatch to memory in parallel
//	FillPolicy — whether a miss fills, and what replacement state costs
//	WritebackPolicy — whether a dirty LLC eviction must probe or allocate
//	ProbeFilter — set-presence caches consulted before probing (NTC/TTC)
//
// wired into a Controller. The Controller owns the only transaction type
// (txn, pooled, with pre-bound method-value callbacks) so the timed
// probe→fill→writeback→victim flow exists exactly once; see ARCHITECTURE.md
// for the full contract and alloy.go / tis.go / sector.go / lohhill.go /
// updbypass.go for the compositions.

// Location is a DRAM-cache coordinate: channel, bank, row.
type Location struct {
	Ch, Bk int
	Row    uint64
}

// Granularity declares a design's allocation unit: how many 64 B lines one
// tag covers, and whether the tag store keeps per-line (sub-block)
// valid/dirty state inside each block. Line-grained designs tag every line
// (GranLine); the page-grained Banshee/TicToc family tags 4 KB frames
// (GranPage) and tracks residency and dirtiness per sub-block. The engine
// reads the unit off FillResult (FillLines, VictimDirtyMask) rather than
// off Gran — the two must agree, and simlint's gran rule enforces that
// every Layout composition declares its unit.
type Granularity struct {
	BlockLines uint64 // 64 B lines per allocation block (1 = line-grained)
	SubBlocked bool   // per-line valid/dirty bits are kept within a block
}

// GranLine is the 64 B line unit every BEAR-paper design uses.
var GranLine = Granularity{BlockLines: 1}

// GranPage is the 4 KB page unit of the Banshee/TicToc family, with
// sub-block (per-line) valid/dirty tracking within each frame.
var GranPage = Granularity{BlockLines: 64, SubBlocked: true}

// Layout declares the bus-transfer sizes of one design, in bytes. A zero
// field disables the corresponding transfer: TagBytes == 0 means hits are a
// single read, MissProbeBytes == 0 means misses never probe (the tags are
// off the DRAM bus), FillBytes == 0 means fills are free (the idealised
// BW-Opt cache; the victim is then resolved at issue), WBProbeBytes == 0
// means the WritebackPolicy never asks for a probe.
//
// FillBytes and VictimReadBytes are per sub-block: a multi-line fill
// (FillResult.FillLines > 1) moves FillLines of them and a partial-page
// writeback recovers one VictimReadBytes read per dirty sub-block
// (FillResult.VictimDirtyMask), so page-grained designs account page fills
// and partial-page writebacks without a second engine.
type Layout struct {
	// Gran is the design's allocation unit. Every composition must set it
	// (simlint: gran); line-grained designs use GranLine.
	Gran Granularity

	// Hit path.
	HitBytes     int  // the read that services a hit (the only useful bytes)
	TagBytes     int  // separate tag read chained before the data read (Loh-Hill)
	UpdateBytes  int  // replacement-state write-back after a hit
	UpdateAlways bool // pay UpdateBytes on every hit, not only when FillPolicy.OnHit asks

	// Miss path.
	MissProbeBytes  int // the read that detects a miss in the DRAM array
	FillBytes       int // the write that installs the fetched line
	VictimReadBytes int // dirty-victim recovery read (0: victim forwarded without a read)

	// Writeback path.
	WBUpdateBytes int // the write refreshing (or allocating) a dirty line
	WBProbeBytes  int // the tag read resolving an unknown-presence writeback

	// ExtraLatency is added before every DRAM-cache operation (the MissMap
	// lookup, charged at L3 latency).
	ExtraLatency uint64
}

// Probe is a TagStore's synchronous answer for one line.
type Probe struct {
	Hit bool     // the line is resident
	Loc Location // where the line's set/frame lives in the DRAM array
	Set uint64   // set index, handed to policies and filters
	// Block is the allocation-unit address the line belongs to (equal to
	// the line address for line-grained stores, the page address for
	// page-grained ones); policies and filters key their state by it.
	Block uint64
	// FreeFill reports that a writeback miss may be installed in place
	// without a probe or a victim (the resident-sector/resident-page,
	// absent-line case).
	FreeFill bool
}

// FillResult describes an installation performed by a TagStore.
type FillResult struct {
	Loc         Location // where the line was installed
	VictimLine  uint64   // first line of the displaced block
	VictimValid bool
	VictimDirty bool
	// FillLines scales the fill: the installation moves FillLines
	// sub-blocks of Layout.FillBytes each (a whole-page fill). Zero or one
	// means a single unit — the line-grained behaviour.
	FillLines int
	// VictimDirtyMask holds the victim's dirty sub-block bits (bit i =
	// line VictimLine+i): the recovery read and the memory forward cover
	// exactly the dirty lines. Zero with VictimDirty set means the whole
	// unit is dirty — the line-grained behaviour.
	VictimDirtyMask uint64
}

// TagStore owns a design's tag/presence state. All methods are functional:
// they update state synchronously at issue time (see the package comment);
// the Controller charges the corresponding bus transfers. Lookup must not
// disturb replacement state — the Controller calls Touch on demand hits.
// Fill performs eviction hooks/notifications itself and reports the victim;
// WritebackFill is only called when the WritebackPolicy allocates or Lookup
// reported FreeFill.
type TagStore interface {
	Lookup(now uint64, line uint64) Probe
	Touch(line uint64)
	// Fill installs line; mru=false demands LRU-position insertion (the
	// engine asks the FillPolicy — DIP/BIP-class policies answer per set).
	Fill(now uint64, line, pc uint64, mru bool) FillResult
	WritebackHit(line uint64)
	WritebackFill(now uint64, line uint64) FillResult
	Contains(line uint64) bool
	Install(line uint64)
}

// HitPredictor guesses hit/miss before the probe resolves. A nil predictor
// always predicts hit (every miss serialises memory behind the probe).
// actualHit is the functional outcome, so oracle predictors and same-call
// training (MAP-I's predict-then-update) need no second round trip.
type HitPredictor interface {
	Predict(coreID int, pc uint64, actualHit bool) bool
}

// FillPolicy decides whether misses fill, where fills insert and what
// secondary replacement state costs. A nil policy always fills at MRU and
// never pays update traffic. block is the allocation-unit address
// (Probe.Block): page-grained policies key frequency/monitor state by it.
type FillPolicy interface {
	// RecordAccess observes every L4 access (set-dueling monitors,
	// frequency counters).
	RecordAccess(set, block uint64, miss bool)
	// ShouldBypass is consulted once per miss, before any fill.
	ShouldBypass(set, block, pc uint64) bool
	// OnHit is consulted once per hit; returning true charges
	// Layout.UpdateBytes of replacement-update traffic (in-DRAM status
	// bits that must be written back).
	OnHit(set uint64) (updateState bool)
	// OnFill observes a completed functional fill (predictor training).
	OnFill(set, block, pc uint64, hadVictim bool)
	// InsertMRU chooses the insertion position of the fill that is about
	// to happen in set: false demands LRU insertion (DIP's bimodal throw-
	// away inserts). Policies without an insertion opinion return true.
	InsertMRU(set uint64) bool
}

// WritebackPolicy resolves a dirty LLC eviction whose presence answer is
// hit (tag store) and pres (a DCP bit, when the hierarchy keeps one); line
// lets policies backed by their own structures (Banshee's tag buffer,
// TicToc's tag cache) answer per address. probe=false settles the
// writeback at issue; presKnown additionally credits the DCP for saving a
// probe. Allocate is consulted on a probed writeback miss: install the
// line instead of forwarding it to memory.
type WritebackPolicy interface {
	NeedsProbe(line uint64, hit bool, pres core.Presence) (probe, presKnown bool)
	Allocate() bool
}

// ProbeFilter is a presence cache consulted before DRAM-array probes
// (NTC/TTC). Consult may answer presence definitively and whether the miss
// probe can be skipped; OnProbe observes tag bytes moving on the bus
// (deposits); Sync keeps filter entries coherent with a functional update
// to the set.
type ProbeFilter interface {
	Consult(set, block, line uint64) (known, present, skipProbe bool)
	OnProbe(set, block uint64)
	Sync(set, block uint64)
}

// Controller drives any composed design through the shared transaction
// engine. The zero value with only name/mem set is the no-L4 pass-through.
type Controller struct {
	name string
	lay  Layout

	tags   TagStore
	pred   HitPredictor
	fill   FillPolicy
	wb     WritebackPolicy
	filter ProbeFilter

	l4    *dram.Memory
	mem   *MainMemory
	hooks Hooks
	st    stats.L4

	txnFree *txn // recycled per-access transaction pool
	live    int  // transactions currently in flight (leak invariant)
}

// txn carries one in-flight access's timing state. Transactions are pooled
// per controller with every completion callback pre-bound as a method
// value, so an L4 hit or miss allocates zero bytes in steady state — the
// per-access closures this replaces were the simulator's dominant GC load.
type txn struct {
	c    *Controller
	now  uint64
	line uint64
	loc  Location
	done func(uint64, ReadResult)

	update      bool // hit path: replacement state must be written back
	filled      bool // miss path: line was installed (fill paid on data arrival)
	inL4        bool // miss path: line is resident after the access
	hit         bool // writeback path: probe found the line
	victimLine  uint64
	victimValid bool
	victimDirty bool
	victimMask  uint64 // dirty sub-block bits of the victim (0: whole unit)
	fillLines   int    // sub-blocks the fill moves (0 or 1: one unit)
	pendingBoth int    // parallel path: completions still outstanding

	fnHit, fnHitTag, fnMissMem, fnBothProbe event.Func
	fnBothMem, fnSerialProbe, fnSerialMem   event.Func
	fnWBProbe                               event.Func
	next                                    *txn
}

//bear:acquire
func (c *Controller) getTxn() *txn {
	x := c.txnFree
	if x == nil {
		x = &txn{c: c}
		x.fnHit = x.onHit
		x.fnHitTag = x.onHitTag
		x.fnMissMem = x.onMissMem
		x.fnBothProbe = x.onBothProbe
		x.fnBothMem = x.onBothMem
		x.fnSerialProbe = x.onSerialProbe
		x.fnSerialMem = x.onSerialMem
		x.fnWBProbe = x.onWBProbe
	} else {
		c.txnFree = x.next
		x.next = nil
	}
	c.live++
	x.update, x.filled, x.inL4, x.hit = false, false, false, false
	x.victimValid, x.victimDirty = false, false
	x.victimMask, x.fillLines = 0, 0
	x.pendingBoth = 0
	return x
}

func (c *Controller) putTxn(x *txn) {
	x.done = nil
	x.next = c.txnFree
	c.txnFree = x
	c.live--
}

// OutstandingTxns reports in-flight transactions; zero once the event queue
// has drained (the pool-leak invariant checked by integration tests).
func (c *Controller) OutstandingTxns() int { return c.live }

// l4Read enqueues a DRAM-cache bus read. Every call site must attribute the
// same byte expression to a bloat category, or carry //bear:deferred when the
// attribution happens in the completion callback fn.
//
//bear:enqueue read bytes=2
//bear:clock at
func (c *Controller) l4Read(at uint64, loc Location, bytes int, fn event.Func) {
	c.l4.Read(at, loc.Ch, loc.Bk, loc.Row, bytes, fn)
}

// l4Write enqueues a DRAM-cache bus write; same attribution contract as
// l4Read, but writes attribute at enqueue on the same path.
//
//bear:enqueue write bytes=2
//bear:clock at
func (c *Controller) l4Write(at uint64, loc Location, bytes int) {
	c.l4.Write(at, loc.Ch, loc.Bk, loc.Row, bytes)
}

// onHitTag completes a chained tag read; the data line follows from the
// now-open row (Loh-Hill hits).
//
//bear:hotpath
func (x *txn) onHitTag(t uint64) {
	c := x.c
	c.st.AddBytes(stats.HitProbe, c.lay.TagBytes)
	c.l4Read(t, x.loc, c.lay.HitBytes, x.fnHit) //bear:deferred HitProbe
}

// onHit completes a hit's probe: the probe is the useful data transfer.
// The replacement-state write-back follows when the policy asked for one.
//
//bear:hotpath
func (x *txn) onHit(t uint64) {
	c := x.c
	c.st.AddBytes(stats.HitProbe, c.lay.HitBytes)
	c.st.Hit(t - x.now)
	if x.update {
		c.st.AddBytes(stats.ReplUpdate, c.lay.UpdateBytes)
		c.l4Write(t, x.loc, c.lay.UpdateBytes)
	}
	done := x.done
	c.putTxn(x)
	done(t, ReadResult{FromL4: true, InL4: true})
}

// fillAt charges the Miss Fill write (and the dirty victim's recovery) when
// the data arrives from main memory. Both transfers scale to the
// granularity the tag store reported: a page fill moves fillLines units of
// FillBytes, and a sub-blocked victim recovers one VictimReadBytes read per
// dirty line (victimMask) instead of the whole block.
//
//bear:hotpath
func (x *txn) fillAt(t uint64) {
	if !x.filled {
		return
	}
	c := x.c
	c.st.Fills++
	fillBytes := c.lay.FillBytes
	if x.fillLines > 1 {
		fillBytes *= x.fillLines
	}
	c.st.AddBytes(stats.MissFill, fillBytes)
	c.l4Write(t, x.loc, fillBytes)
	if x.victimValid && x.victimDirty {
		if c.lay.VictimReadBytes > 0 {
			// The victim's data must be read back before it is lost.
			vb := c.lay.VictimReadBytes
			if x.victimMask != 0 {
				vb *= bits.OnesCount64(x.victimMask)
			}
			c.st.AddBytes(stats.VictimRead, vb)
			c.l4Read(t, x.loc, vb, c.mem.VictimFwd(x.victimLine, x.victimMask))
		} else {
			c.mem.WriteLine(t, x.victimLine)
		}
	}
}

// finish retires a miss and recycles the transaction.
//
//bear:hotpath
func (x *txn) finish(t uint64) {
	c := x.c
	c.st.Miss(t - x.now)
	done, inL4 := x.done, x.inL4
	c.putTxn(x)
	done(t, ReadResult{FromL4: false, InL4: inL4})
}

// onMissMem completes the probe-skipped miss (memory only).
//
//bear:hotpath
func (x *txn) onMissMem(t uint64) {
	x.fillAt(t)
	x.finish(t)
}

// both gates the parallel path: probe and memory proceed concurrently; data
// is usable when both the miss is confirmed and the line has arrived. Events
// fire in time order, so the second completion carries max(Tp, Tm).
//
//bear:hotpath
func (x *txn) both(t uint64) {
	x.pendingBoth--
	if x.pendingBoth == 0 {
		x.finish(t)
	}
}

//bear:hotpath
func (x *txn) onBothProbe(t uint64) {
	x.c.st.AddBytes(stats.MissProbe, x.c.lay.MissProbeBytes)
	x.both(t)
}

//bear:hotpath
func (x *txn) onBothMem(t uint64) {
	x.fillAt(t)
	x.both(t)
}

// onSerialProbe is the predicted-hit miss: memory starts only after the
// probe detects the miss (the serialisation penalty MAP-I exists to avoid).
//
//bear:hotpath
func (x *txn) onSerialProbe(t uint64) {
	x.c.st.AddBytes(stats.MissProbe, x.c.lay.MissProbeBytes)
	x.c.mem.ReadLine(t, x.line, x.fnSerialMem)
}

//bear:hotpath
func (x *txn) onSerialMem(t uint64) {
	x.fillAt(t)
	x.finish(t)
}

// onWBProbe resolves a writeback whose presence was unknown: the probe has
// completed and the update, fill or memory forward follows.
//
//bear:hotpath
func (x *txn) onWBProbe(t uint64) {
	c := x.c
	c.st.AddBytes(stats.WBProbe, c.lay.WBProbeBytes)
	switch {
	case x.hit:
		c.st.WBHits++
		c.st.AddBytes(stats.WBUpdate, c.lay.WBUpdateBytes)
		c.l4Write(t, x.loc, c.lay.WBUpdateBytes)
	case x.filled:
		// Writeback Fill: the line was installed at issue; pay for it now
		// and recover the dirty victim it displaced.
		c.st.WBMisses++
		c.st.AddBytes(stats.WBFill, c.lay.WBUpdateBytes)
		c.l4Write(t, x.loc, c.lay.WBUpdateBytes)
		if x.victimValid && x.victimDirty {
			c.mem.WriteLine(t, x.victimLine)
		}
	default:
		c.st.WBMisses++
		c.mem.WriteLine(t, x.line)
	}
	c.putTxn(x)
}

// Name implements Cache.
func (c *Controller) Name() string { return c.name }

// Stats implements Cache.
func (c *Controller) Stats() *stats.L4 { return &c.st }

// Tags exposes the tag store (tests, diagnostics); nil for the no-L4
// pass-through.
func (c *Controller) Tags() TagStore { return c.tags }

// Contains implements Cache.
func (c *Controller) Contains(line uint64) bool {
	if c.tags == nil {
		return false
	}
	return c.tags.Contains(line)
}

// Install implements Cache: a free functional fill used for pre-warming.
func (c *Controller) Install(line uint64) {
	if c.tags != nil {
		c.tags.Install(line)
	}
}

// Read implements Cache. See the package comment for the functional-at-
// issue convention: tag state and policy decisions are resolved here, and
// timed DRAM transactions deliver bandwidth/latency effects.
//
//bear:hotpath
func (c *Controller) Read(now uint64, coreID int, line, pc uint64, done func(uint64, ReadResult)) {
	if c.tags == nil {
		// No L4: every LLC miss goes straight to main memory.
		x := c.getTxn()
		x.now, x.line, x.done = now, line, done
		c.mem.ReadLine(now, line, x.fnMissMem)
		return
	}

	p := c.tags.Lookup(now, line)
	if c.fill != nil {
		c.fill.RecordAccess(p.Set, p.Block, !p.Hit)
	}

	// Filter consultation: a known answer either guarantees a hit (so a
	// mispredicted parallel memory access can be squashed) or guarantees a
	// miss (so the probe can be skipped when the resident line is clean).
	var known, present, skipProbe bool
	if c.filter != nil {
		known, present, skipProbe = c.filter.Consult(p.Set, p.Block, line)
	}

	predHit := true
	if c.pred != nil {
		predHit = c.pred.Predict(coreID, pc, p.Hit)
		if predHit == p.Hit {
			c.st.PredHits++
		} else {
			c.st.PredMisses++
		}
	}

	start := now + c.lay.ExtraLatency

	if p.Hit {
		// The probe is the useful data transfer.
		c.tags.Touch(line)
		if c.filter != nil {
			c.filter.OnProbe(p.Set, p.Block)
		}
		x := c.getTxn()
		x.now, x.loc, x.done = now, p.Loc, done
		x.update = c.lay.UpdateAlways || (c.fill != nil && c.fill.OnHit(p.Set))
		if c.lay.TagBytes > 0 {
			c.l4Read(start, p.Loc, c.lay.TagBytes, x.fnHitTag) //bear:deferred HitProbe
		} else {
			c.l4Read(start, p.Loc, c.lay.HitBytes, x.fnHit) //bear:deferred HitProbe
		}
		if !predHit {
			if known && present {
				// The filter guarantees the hit: squash the wasteful
				// parallel memory access the predictor would have issued.
				c.st.NTCParallelSqsh++
			} else {
				c.mem.ReadLine(now, line, nil) // wasted parallel access
			}
		}
		return
	}

	// --- Miss path. ---
	// The memory access may start immediately when the miss is known or
	// predicted; a predicted hit serialises memory behind the probe.
	parallel := !predHit || skipProbe || (known && !present)
	if skipProbe {
		c.st.NTCProbesSaved++
	}

	// Fill / bypass decision (functional state updates immediately).
	bypass := c.fill != nil && c.fill.ShouldBypass(p.Set, p.Block, pc)
	x := c.getTxn()
	x.now, x.line, x.loc, x.done = now, line, p.Loc, done
	if !bypass {
		mru := c.fill == nil || c.fill.InsertMRU(p.Set)
		fr := c.tags.Fill(now, line, pc, mru)
		if c.fill != nil {
			c.fill.OnFill(p.Set, p.Block, pc, fr.VictimValid)
		}
		if c.filter != nil {
			c.filter.Sync(p.Set, p.Block)
		}
		x.loc = fr.Loc
		x.inL4 = true
		if c.lay.FillBytes > 0 {
			x.filled = true
			x.fillLines = fr.FillLines
			x.victimLine, x.victimValid, x.victimDirty = fr.VictimLine, fr.VictimValid, fr.VictimDirty
			x.victimMask = fr.VictimDirtyMask
			if fr.FillLines > 1 {
				// A multi-line (page) fill streams its tail from main
				// memory too; the demand line's own read gates the txn.
				c.mem.ReadTail(start, line, (fr.FillLines-1)*64)
			}
		} else {
			// Free fills (BW-Opt) settle the victim at issue.
			if fr.VictimValid && fr.VictimDirty {
				c.mem.WriteLine(now, fr.VictimLine)
			}
			c.st.Fills++
		}
	} else {
		c.st.Bypasses++
	}

	if c.filter != nil && !skipProbe {
		c.filter.OnProbe(p.Set, p.Block)
	}

	switch {
	case c.lay.MissProbeBytes == 0 || skipProbe:
		c.mem.ReadLine(start, line, x.fnMissMem)
	case parallel:
		x.pendingBoth = 2
		c.l4Read(start, x.loc, c.lay.MissProbeBytes, x.fnBothProbe) //bear:deferred MissProbe
		c.mem.ReadLine(start, line, x.fnBothMem)
	default:
		c.l4Read(start, x.loc, c.lay.MissProbeBytes, x.fnSerialProbe) //bear:deferred MissProbe
	}
}

// Writeback implements Cache.
//
//bear:hotpath
func (c *Controller) Writeback(now uint64, coreID int, line uint64, pres core.Presence) {
	if c.tags == nil {
		c.st.WBMisses++
		c.mem.WriteLine(now, line)
		return
	}

	p := c.tags.Lookup(now, line)
	start := now + c.lay.ExtraLatency
	probe, presKnown := c.wb.NeedsProbe(line, p.Hit, pres)
	if !probe {
		switch {
		case p.Hit:
			if presKnown {
				c.st.DCPProbesSaved++
			}
			c.st.WBHits++
			c.tags.WritebackHit(line)
			if c.filter != nil {
				c.filter.Sync(p.Set, p.Block)
			}
			if c.lay.WBUpdateBytes > 0 {
				c.st.AddBytes(stats.WBUpdate, c.lay.WBUpdateBytes)
				c.l4Write(start, p.Loc, c.lay.WBUpdateBytes)
			}
		case p.FreeFill:
			// Resident sector/page, absent line: install in place, no victim.
			fr := c.tags.WritebackFill(now, line)
			c.st.WBHits++
			c.st.AddBytes(stats.WBFill, c.lay.WBUpdateBytes)
			c.l4Write(start, fr.Loc, c.lay.WBUpdateBytes)
		default:
			if presKnown {
				c.st.DCPProbesSaved++
			}
			c.st.WBMisses++
			c.mem.WriteLine(start, line)
		}
		return
	}

	// Unknown presence (or a violated guarantee, handled conservatively):
	// probe, resolving the update, fill or memory forward on completion.
	if c.filter != nil {
		c.filter.OnProbe(p.Set, p.Block)
	}
	x := c.getTxn()
	x.now, x.line, x.loc = now, line, p.Loc
	x.hit = p.Hit
	if p.Hit {
		c.tags.WritebackHit(line)
		if c.filter != nil {
			c.filter.Sync(p.Set, p.Block)
		}
	} else if p.FreeFill || c.wb.Allocate() {
		// Writeback Fill: install the dirty line now (functional), pay
		// for it when the probe completes.
		fr := c.tags.WritebackFill(now, line)
		x.loc = fr.Loc
		x.filled = true
		x.victimLine, x.victimValid, x.victimDirty = fr.VictimLine, fr.VictimValid, fr.VictimDirty
		if c.filter != nil {
			c.filter.Sync(p.Set, p.Block)
		}
	}
	c.l4Read(start, x.loc, c.lay.WBProbeBytes, x.fnWBProbe) //bear:deferred WBProbe
}

var _ Cache = (*Controller)(nil)

// --- Shared policy implementations (design-specific ones live with their
// tag stores; see alloy.go and updbypass.go). ---

// oraclePred is the perfect hit/miss predictor (ablation upper bound).
type oraclePred struct{}

func (oraclePred) Predict(_ int, _ uint64, actualHit bool) bool { return actualHit }

// mapiPred adapts MAP-I: predict from the PC-indexed counter, then train it
// with the actual outcome (the order the Alloy paper specifies).
type mapiPred struct{ m *MAPI }

func (p mapiPred) Predict(coreID int, pc uint64, actualHit bool) bool {
	predHit := p.m.Predict(coreID, pc)
	p.m.Update(coreID, pc, actualHit)
	return predHit
}

// directWB settles every writeback at issue: the tag store's answer is
// authoritative (SRAM tags, sector tags, a MissMap, or the idealised
// BW-Opt cache), so no probe is ever needed.
type directWB struct{}

func (directWB) NeedsProbe(uint64, bool, core.Presence) (probe, presKnown bool) {
	return false, false
}
func (directWB) Allocate() bool { return false }

// probeWB probes whenever no DCP bit answers presence (the Mostly-Clean
// tags-in-DRAM cache, whose tags can only be read from the DRAM array).
type probeWB struct{}

func (probeWB) NeedsProbe(_ uint64, _ bool, pres core.Presence) (probe, presKnown bool) {
	return pres == core.PresUnknown, false
}
func (probeWB) Allocate() bool { return false }

// noBypass wraps a FillPolicy so fills never bypass (inclusive designs must
// install every miss) while monitors and update-state policies still run.
type noBypass struct{ FillPolicy }

func (noBypass) ShouldBypass(uint64, uint64, uint64) bool { return false }
