package dramcache

import (
	"testing"

	"bear/internal/config"
	"bear/internal/core"
	"bear/internal/stats"
)

func TestWBAllocateFillsOnMiss(t *testing.T) {
	f := newFixture()
	a := newAlloy(f, AlloyOpts{WBAllocate: true})
	a.Writeback(f.q.Now(), 0, 200, core.PresUnknown)
	f.drain()
	st := a.Stats()
	if st.Bytes[stats.WBProbe] != 80 || st.Bytes[stats.WBFill] != 80 {
		t.Fatalf("wb-allocate miss bytes = %v", st.Bytes)
	}
	if !a.Contains(200) {
		t.Fatal("writeback miss did not allocate")
	}
	if f.mem.D.Stats.Writes != 0 {
		t.Fatal("allocated writeback still went to memory")
	}
	// The allocated line is dirty: a conflicting fill must recover it.
	memW := f.mem.D.Stats.Writes
	read(t, f, a, 256) // same set as 200 (mod 56)
	if f.mem.D.Stats.Writes != memW+1 {
		t.Fatal("dirty wb-allocated victim lost")
	}
}

func TestWBAllocateDirtyVictimRecovered(t *testing.T) {
	f := newFixture()
	a := newAlloy(f, AlloyOpts{WBAllocate: true})
	// Dirty resident line in the target set.
	a.Install(200)
	a.Writeback(f.q.Now(), 0, 200, core.PresUnknown) // hit: now dirty
	f.drain()
	memW := f.mem.D.Stats.Writes
	a.Writeback(f.q.Now(), 0, 256, core.PresUnknown) // miss: allocates over dirty 200
	f.drain()
	if f.mem.D.Stats.Writes != memW+1 {
		t.Fatal("dirty victim of a writeback fill not written to memory")
	}
	if !a.Contains(256) || a.Contains(200) {
		t.Fatal("writeback fill state wrong")
	}
}

func TestWBAllocateWithDCPAbsentStillProbes(t *testing.T) {
	// Section 5.2: under allocate, DCP=absent still requires a probe
	// before the Writeback Fill.
	f := newFixture()
	a := newAlloy(f, AlloyOpts{WBAllocate: true})
	a.Writeback(f.q.Now(), 0, 200, core.PresAbsent)
	f.drain()
	st := a.Stats()
	if st.Bytes[stats.WBProbe] != 80 {
		t.Fatalf("DCP-absent + allocate skipped the probe: %v", st.Bytes)
	}
	if st.DCPProbesSaved != 0 {
		t.Fatal("probe counted as saved despite allocate policy")
	}
}

func TestPredictorModes(t *testing.T) {
	// Perfect prediction must not issue wasted parallel memory reads on
	// hits and must parallelise every miss.
	f := newFixture()
	a := newAlloy(f, AlloyOpts{Pred: config.PredPerfect})
	a.Install(100)
	memReads := f.mem.D.Stats.Reads
	read(t, f, a, 100)
	if f.mem.D.Stats.Reads != memReads {
		t.Fatal("perfect predictor wasted a parallel access on a hit")
	}
	// Miss under perfect prediction: parallel (fast) path.
	issue := f.q.Now()
	_, at := read(t, f, a, 500)
	latPerfect := at - issue

	f2 := newFixture()
	b := newAlloy(f2, AlloyOpts{Pred: config.PredAlwaysHit})
	issue = f2.q.Now()
	_, at = read(t, f2, b, 500)
	latSerial := at - issue
	if latPerfect >= latSerial {
		t.Fatalf("perfect-predicted miss (%d) not faster than always-hit (%d)", latPerfect, latSerial)
	}
}

func TestBuildPredictorModes(t *testing.T) {
	for _, mode := range []config.PredMode{config.PredMAPI, config.PredPerfect, config.PredAlwaysHit} {
		cfg := config.Default(512).WithDesign(config.Alloy)
		cfg.Pred = mode
		b, err := Build(cfg, newFixture().q, Hooks{})
		if err != nil {
			t.Fatal(err)
		}
		if mode == config.PredMAPI && b.MAPI == nil {
			t.Error("MAP-I mode missing predictor tables")
		}
		if mode != config.PredMAPI && b.MAPI != nil {
			t.Errorf("%v mode built MAP-I tables", mode)
		}
	}
}
