package dramcache

import (
	"testing"

	"bear/internal/core"
	"bear/internal/stats"
)

func TestDBPBypassesDeadPCs(t *testing.T) {
	f := newFixture()
	dbp := core.NewDeadBlock(256, 2)
	a := newAlloy(f, AlloyOpts{DBP: dbp})
	pc := uint64(0x400)
	// Stream distinct lines from one PC without reuse: after the predictor
	// learns, fills from that PC are bypassed.
	for i := uint64(0); i < 200; i++ {
		var done bool
		a.Read(f.q.Now(), 0, i*56+i%13, pc, func(uint64, ReadResult) { done = true })
		f.drain()
		if !done {
			t.Fatal("read lost")
		}
	}
	if a.Stats().Bypasses == 0 {
		t.Fatal("dead-block predictor never bypassed a dead stream")
	}
}

func TestDBPStatusUpdateCharged(t *testing.T) {
	f := newFixture()
	dbp := core.NewDeadBlock(256, 2)
	a := newAlloy(f, AlloyOpts{DBP: dbp})
	a.Install(100)
	read(t, f, a, 100) // first reuse: status update write
	st := a.Stats()
	if st.Bytes[stats.ReplUpdate] != 80 {
		t.Fatalf("first hit should charge one 80B status update, got %v", st.Bytes)
	}
	read(t, f, a, 100) // second hit: bit already set, no update
	if st.Bytes[stats.ReplUpdate] != 80 {
		t.Fatalf("second hit re-charged the status update: %v", st.Bytes)
	}
}

func TestDBPTrainsOnEviction(t *testing.T) {
	f := newFixture()
	dbp := core.NewDeadBlock(256, 2)
	a := newAlloy(f, AlloyOpts{DBP: dbp})
	read(t, f, a, 100) // fill
	read(t, f, a, 156) // conflict evicts 100 (never reused) -> training
	if dbp.Trainings == 0 {
		t.Fatal("eviction did not train the predictor")
	}
}

func TestTTCAnswersTemporalRepeats(t *testing.T) {
	f := newFixture()
	ttc := core.NewNTC(8, 8)
	mapi := NewMAPI(1, 64)
	a := newAlloy(f, AlloyOpts{TTC: ttc, Predictor: mapi})
	// Train MAP-I to predict miss so the squash matters.
	for i := 0; i < 8; i++ {
		mapi.Update(0, 0x400, false)
	}
	a.Install(100)
	read(t, f, a, 100) // probe deposits the DEMAND set into the TTC
	memReads := f.mem.D.Stats.Reads
	read(t, f, a, 100) // TTC knows it's present: parallel access squashed
	if f.mem.D.Stats.Reads != memReads {
		t.Fatal("TTC did not squash the parallel memory access")
	}
	if a.Stats().NTCParallelSqsh == 0 {
		t.Fatal("squash not counted")
	}
}

func TestTTCSkipsMissProbeOnRevisitedSet(t *testing.T) {
	f := newFixture()
	ttc := core.NewNTC(8, 8)
	a := newAlloy(f, AlloyOpts{TTC: ttc})
	a.Install(100)     // set 44
	read(t, f, a, 100) // deposit demand set 44 (clean line 100)
	st := a.Stats()
	before := st.Bytes[stats.MissProbe]
	read(t, f, a, 156) // set 44, different line: TTC guarantees absent
	if st.Bytes[stats.MissProbe] != before {
		t.Fatal("TTC did not skip the miss probe")
	}
	if st.NTCProbesSaved != 1 {
		t.Fatalf("probes saved = %d", st.NTCProbesSaved)
	}
}
