package dramcache

import (
	"testing"

	"bear/internal/core"
)

// nopDone is a shared no-op read completion so the alloc test's hot loop
// does not itself allocate a closure per access.
func nopDone(uint64, ReadResult) {}

// TestControllerAllocFree asserts the shared transaction engine's per-access
// hot path is allocation-free once its txn pool, the DRAM request freelists
// and the event heap are warm — for every tag-store/policy composition, not
// just the Alloy baseline. A gigascale sweep funnels hundreds of millions of
// accesses through these paths; per-txn garbage would dominate the run.
func TestControllerAllocFree(t *testing.T) {
	builders := []struct {
		name  string
		build func(f *fixture) Cache
	}{
		{"bear", func(f *fixture) Cache {
			return NewAlloy("bear", 56, f.l4, f.mem, Hooks{}, AlloyOpts{
				Predictor: NewMAPI(1, 256),
				BAB:       core.NewBAB(0.9, 256, 1),
				NTC:       core.NewNTC(8, 8),
			})
		}},
		{"upd-bypass", func(f *fixture) Cache {
			return NewAlloy("upd", 56, f.l4, f.mem, Hooks{}, AlloyOpts{
				DBP: core.NewDeadBlock(4096, 2), UpdateBypass: true,
			})
		}},
		{"tis", func(f *fixture) Cache {
			return NewTIS("tis", 128, 4, f.l4, f.mem, Hooks{})
		}},
		{"sector", func(f *fixture) Cache {
			return NewSector("sc", 256, 8, 2, f.l4, f.mem, Hooks{})
		}},
		{"loh-hill", func(f *fixture) Cache {
			return NewLohHill("lh", 16, 29, f.l4, f.mem, Hooks{},
				LHOpts{MissMapLatency: 24})
		}},
		{"banshee", func(f *fixture) Cache {
			return NewBanshee("banshee", 256, 8, 2, f.l4, f.mem, Hooks{})
		}},
		{"tictoc", func(f *fixture) Cache {
			return NewTicToc("tictoc", 256, 8, 2, f.l4, f.mem, Hooks{})
		}},
	}
	for _, b := range builders {
		t.Run(b.name, func(t *testing.T) {
			f := newFixture()
			c := b.build(f)
			// A working set larger than any of the small caches above, so
			// the loop exercises hits, misses with victims, bypasses/squash
			// paths, and writeback probes in steady state.
			const lines = 1024
			access := func(base uint64) {
				for i := uint64(0); i < 64; i++ {
					line := (base + i*17) % lines
					c.Read(f.q.Now(), 0, line, 0x400+line<<3, nopDone)
					if i%4 == 0 {
						c.Writeback(f.q.Now(), 0, line, core.PresUnknown)
					}
				}
				f.drain()
			}
			for w := uint64(0); w < 32; w++ { // warm pools to steady state
				access(w * 64)
			}
			base := uint64(0)
			allocs := testing.AllocsPerRun(100, func() {
				base += 64
				access(base)
			})
			if allocs != 0 {
				t.Fatalf("%s: warm access path allocated %.1f times per run, want 0",
					b.name, allocs)
			}
			if n := c.OutstandingTxns(); n != 0 {
				t.Fatalf("%s: %d transactions leaked after drain", b.name, n)
			}
		})
	}
}

// TestUpdFillSampling pins the update-bypass policy's contract: the
// status-bit write (OnHit == true) is paid at most once per fill and only in
// sampled sets, and only sampled sets train the predictor.
func TestUpdFillSampling(t *testing.T) {
	d := core.NewDeadBlock(64, 2)
	f := newUpdFill(d, 128)

	if !f.sampled(0) || !f.sampled(64) || f.sampled(1) || f.sampled(63) {
		t.Fatal("sampling mask should select sets 0 mod 64")
	}

	// Sampled set: first reuse pays the update, later reuses do not.
	f.OnFill(0, 0, 0x40, false)
	if !f.OnHit(0) {
		t.Error("first hit in a sampled set must write the status bit")
	}
	if f.OnHit(0) {
		t.Error("second hit must not write again")
	}

	// Non-sampled set: reuse is tracked but never written back.
	f.OnFill(1, 0, 0x48, false)
	if f.OnHit(1) {
		t.Error("non-sampled set must never pay the status update")
	}

	// Eviction from a sampled set trains; from a non-sampled set it must
	// not (its reuse bit was never architecturally written back).
	before := d.Trainings
	f.OnFill(0, 0, 0x50, true)
	if d.Trainings != before+1 {
		t.Error("sampled-set eviction did not train the predictor")
	}
	f.OnFill(1, 0, 0x58, true)
	if d.Trainings != before+1 {
		t.Error("non-sampled-set eviction trained the predictor")
	}

	// The bypass decision itself applies everywhere: train a signature dead
	// and both sampled and non-sampled fills from it bypass.
	sig := d.Signature(0x99)
	for i := 0; i < 4; i++ {
		d.Train(sig, false)
	}
	if !f.ShouldBypass(7, 0, 0x99) {
		t.Error("learned dead signature should bypass in any set")
	}
}
