package dramcache

import (
	"bear/internal/dram"
	"bear/internal/fault"
	"bear/internal/sram"
	"bear/internal/stats"
)

// LHOpts configures the Loh-Hill-family cache.
type LHOpts struct {
	// MissMapLatency, when non-zero, models a MissMap: presence is known
	// without probing the DRAM array, at the cost of this many cycles on
	// every request (24, the L3 latency, per Section 7). The MissMap also
	// answers writeback presence.
	MissMapLatency uint64
	// PerfectPredictor models the Mostly-Clean cache: a perfect hit/miss
	// predictor dispatches predicted misses directly to memory with no
	// added latency; writebacks still require probes (no MissMap).
	PerfectPredictor bool
	// UseDIP selects Dynamic Insertion Policy instead of pure LRU for the
	// 29-way sets (footnote 3 of the paper names LRU/DIP as LH's options).
	UseDIP bool
}

// LohHill is the 29-way set-associative tags-in-DRAM cache of Loh & Hill
// (MICRO 2011): each 2 KB row is one set, with three tag lines (192 B)
// followed by 29 data lines. Servicing a hit reads the tag lines, then the
// matching data line from the open row; LRU updates re-write a tag line.
type LohHill = Controller

// lhTags is the tags-in-DRAM store: functional tags+LRU in an sram.Cache
// (physically they live in the row's tag lines, charged via Layout), plus
// the optional MissMap presence tracker. Insertion position (LRU vs MRU)
// is the engine's to decide — DIP is a FillPolicy now, not a tag-store
// mechanic — so the store just obeys the mru argument.
type lhTags struct {
	c *Controller

	tags     *sram.Cache // functional tags+LRU (physically in DRAM)
	mm       *MissMap    // presence tracker (nil for Mostly-Clean)
	channels uint64
	banks    uint64

	lastNow uint64 //bear:clock — current request time, for MissMap-forced evictions
}

// locate maps a set (row) to DRAM coordinates.
func (t *lhTags) locate(set uint64) Location {
	ch := int(set % t.channels)
	rest := set / t.channels
	bk := int(rest % t.banks)
	return Location{Ch: ch, Bk: bk, Row: rest / t.banks}
}

// present answers the residency question the way the design would: via the
// MissMap when one exists, else via the tags (the Mostly-Clean perfect
// predictor).
func (t *lhTags) present(line uint64) bool {
	if t.mm != nil {
		return t.mm.Present(line)
	}
	_, ok := t.tags.Lookup(line)
	return ok
}

// Lookup implements TagStore. It also timestamps the request so that
// MissMap-forced evictions (which fire from inside fills) can issue their
// victim reads at the current time.
func (t *lhTags) Lookup(now uint64, line uint64) Probe {
	t.lastNow = now
	set := t.tags.SetIndex(line)
	return Probe{Hit: t.present(line), Loc: t.locate(set), Set: set, Block: line}
}

// Touch implements TagStore (LRU promotion on a demand hit).
func (t *lhTags) Touch(line uint64) { t.tags.Access(line, false) }

// fill installs a line in the tag array and the MissMap, routing evictions.
// mru=false inserts at the LRU position (DIP's bimodal throw-away inserts).
func (t *lhTags) fill(line uint64, mru bool) sram.Eviction {
	var ev sram.Eviction
	if mru {
		ev = t.tags.Fill(line, false, 0)
	} else {
		ev = t.tags.FillLRU(line, false, 0)
	}
	if ev.Valid {
		if t.mm != nil {
			t.mm.Clear(ev.Addr)
		}
		if t.c.hooks.OnEvict != nil {
			t.c.hooks.OnEvict(ev.Addr)
		}
	}
	if t.mm != nil {
		t.mm.Set(line)
	}
	return ev
}

// Fill implements TagStore.
func (t *lhTags) Fill(_ uint64, line, _ uint64, mru bool) FillResult {
	set := t.tags.SetIndex(line)
	ev := t.fill(line, mru)
	return FillResult{
		Loc:         t.locate(set),
		VictimLine:  ev.Addr,
		VictimValid: ev.Valid,
		VictimDirty: ev.Dirty,
	}
}

// WritebackHit implements TagStore.
func (t *lhTags) WritebackHit(line uint64) { t.tags.SetDirty(line) }

// WritebackFill implements TagStore (unreachable: LH designs never
// allocate on writeback misses).
func (t *lhTags) WritebackFill(uint64, uint64) FillResult {
	panic(fault.Invariantf("dramcache", "Loh-Hill writeback never allocates"))
}

// Contains implements TagStore.
func (t *lhTags) Contains(line uint64) bool {
	_, ok := t.tags.Lookup(line)
	return ok
}

// Install implements TagStore: a free functional fill used for pre-warming.
func (t *lhTags) Install(line uint64) {
	if _, ok := t.tags.Lookup(line); !ok {
		t.fill(line, true)
	}
}

// missMapEvict handles the forced eviction of a line whose MissMap segment
// entry was replaced: the line must leave the DRAM cache (its presence can
// no longer be tracked). A dirty casualty is recovered and written to
// memory, costing a victim read — the MissMap's hidden tax.
func (t *lhTags) missMapEvict(line uint64) {
	ln, ok := t.tags.Invalidate(line)
	if !ok {
		return
	}
	if t.c.hooks.OnEvict != nil {
		t.c.hooks.OnEvict(line)
	}
	if ln.Dirty {
		set := t.tags.SetIndex(line)
		t.c.st.AddBytes(stats.VictimRead, lhDataBytes)
		t.c.l4Read(t.lastNow, t.locate(set), lhDataBytes, t.c.mem.VictimFwd(line, 0))
	}
}

// Loh-Hill transfer sizes (bytes).
const (
	lhTagBytes  = 192 // three tag lines
	lhDataBytes = 64
	lhFillBytes = 128 // data line + the tag line it lives in
)

// lhLayout: hits chain a tag-line read and a data read from the open row,
// then unconditionally re-write LRU state (footnote 3's replacement-update
// bloat); misses fill without probing (presence was already answered).
var lhLayout = Layout{
	Gran:            GranLine,
	HitBytes:        lhDataBytes,
	TagBytes:        lhTagBytes,
	UpdateBytes:     lhDataBytes,
	UpdateAlways:    true,
	FillBytes:       lhFillBytes,
	VictimReadBytes: lhDataBytes,
	WBUpdateBytes:   lhFillBytes,
	WBProbeBytes:    lhTagBytes,
}

// NewLohHill composes an LH-family cache with the given set (row) count.
// Designs with a MissMap (MissMapLatency > 0) get a capacity-bounded
// presence tracker (see the sizing note at its construction).
func NewLohHill(name string, sets uint64, ways int, l4 *dram.Memory, mem *MainMemory, hooks Hooks, opts LHOpts) *LohHill {
	cfg := l4.Config()
	c := &Controller{name: name, lay: lhLayout, l4: l4, mem: mem, hooks: hooks}
	c.lay.ExtraLatency = opts.MissMapLatency
	t := &lhTags{
		c:        c,
		tags:     sram.New(sets, ways),
		channels: uint64(cfg.Channels),
		banks:    uint64(cfg.Banks),
	}
	c.tags = t
	if opts.UseDIP {
		c.fill = newDIPFill()
	}
	if opts.MissMapLatency > 0 {
		// The BEAR paper idealises the MissMap ("same latency as the LLC",
		// no capacity effects), so it is sized generously here — one
		// segment entry per 8 cache lines — while keeping real capacity
		// semantics (segment evictions force line evictions) so the
		// structure remains testable and sparse workloads still pay for
		// poor segment density.
		segments := sets * uint64(ways) / 8
		if segments < 64 {
			segments = 64
		}
		t.mm = NewMissMap(segments, 16, 64, t.missMapEvict)
		// The MissMap answers writeback presence: no probe needed.
		c.wb = directWB{}
	} else {
		// Mostly-Clean: writebacks must probe the tag lines unless a DCP
		// bit answers.
		c.wb = probeWB{}
	}
	return c
}
