package dramcache

import (
	"bear/internal/core"
	"bear/internal/dram"
	"bear/internal/event"
	"bear/internal/sram"
	"bear/internal/stats"
)

// LHOpts configures the Loh-Hill-family cache.
type LHOpts struct {
	// MissMapLatency, when non-zero, models a MissMap: presence is known
	// without probing the DRAM array, at the cost of this many cycles on
	// every request (24, the L3 latency, per Section 7). The MissMap also
	// answers writeback presence.
	MissMapLatency uint64
	// PerfectPredictor models the Mostly-Clean cache: a perfect hit/miss
	// predictor dispatches predicted misses directly to memory with no
	// added latency; writebacks still require probes (no MissMap).
	PerfectPredictor bool
	// UseDIP selects Dynamic Insertion Policy instead of pure LRU for the
	// 29-way sets (footnote 3 of the paper names LRU/DIP as LH's options).
	UseDIP bool
}

// LohHill is the 29-way set-associative tags-in-DRAM cache of Loh & Hill
// (MICRO 2011): each 2 KB row is one set, with three tag lines (192 B)
// followed by 29 data lines. Servicing a hit reads the tag lines, then the
// matching data line from the open row; LRU updates re-write a tag line.
type LohHill struct {
	name string
	opts LHOpts

	tags     *sram.Cache // functional tags+LRU (physically in DRAM)
	mm       *MissMap    // presence tracker (nil for Mostly-Clean)
	dip      *core.DIP   // insertion policy (nil = pure LRU)
	channels uint64
	banks    uint64

	l4    *dram.Memory
	mem   *MainMemory
	hooks Hooks
	st    stats.L4

	lastNow uint64 // current request time, for MissMap-forced evictions

	txnFree *lhTxn // recycled per-access transaction pool
}

// lhTxn is the pooled per-access state with pre-bound completion methods
// (see alloyTxn for the rationale). The hit path chains two of them: the tag
// read's completion issues the data read.
type lhTxn struct {
	l           *LohHill
	now         uint64
	line        uint64
	ch, bk      int
	row         uint64
	hit         bool // writeback path: line is present
	victimLine  uint64
	victimValid bool
	victimDirty bool
	done        func(uint64, ReadResult)

	fnHitTag, fnHitData, fnMiss, fnWBProbe event.Func
	next                                   *lhTxn
}

func (l *LohHill) getTxn() *lhTxn {
	x := l.txnFree
	if x == nil {
		x = &lhTxn{l: l}
		x.fnHitTag = x.onHitTag
		x.fnHitData = x.onHitData
		x.fnMiss = x.onMiss
		x.fnWBProbe = x.onWBProbe
	} else {
		l.txnFree = x.next
		x.next = nil
	}
	x.hit = false
	x.victimValid, x.victimDirty = false, false
	return x
}

func (l *LohHill) putTxn(x *lhTxn) {
	x.done = nil
	x.next = l.txnFree
	l.txnFree = x
}

// onHitTag completes the tag-line read; the data line follows from the
// now-open row.
func (x *lhTxn) onHitTag(t uint64) {
	x.l.st.AddBytes(stats.HitProbe, lhTagBytes)
	x.l.l4.Read(t, x.ch, x.bk, x.row, lhDataBytes, x.fnHitData)
}

// onHitData completes the data read and pays the LRU-state write-back
// (footnote 3's replacement-update bloat).
func (x *lhTxn) onHitData(t uint64) {
	l := x.l
	l.st.AddBytes(stats.HitProbe, lhDataBytes)
	l.st.Hit(t - x.now)
	l.st.AddBytes(stats.ReplUpdate, lhDataBytes)
	l.l4.Write(t, x.ch, x.bk, x.row, lhDataBytes)
	done := x.done
	l.putTxn(x)
	done(t, ReadResult{FromL4: true, InL4: true})
}

// onMiss completes the memory fetch: fill, recover any dirty victim, retire.
func (x *lhTxn) onMiss(t uint64) {
	l := x.l
	l.st.Miss(t - x.now)
	l.st.Fills++
	l.st.AddBytes(stats.MissFill, lhFillBytes)
	l.l4.Write(t, x.ch, x.bk, x.row, lhFillBytes)
	if x.victimValid && x.victimDirty {
		// The victim's data must be recovered before it is lost.
		l.st.AddBytes(stats.VictimRead, lhDataBytes)
		l.l4.Read(t, x.ch, x.bk, x.row, lhDataBytes, l.mem.VictimFwd(x.victimLine))
	}
	done := x.done
	l.putTxn(x)
	done(t, ReadResult{FromL4: false, InL4: true})
}

// onWBProbe completes the Mostly-Clean writeback's tag probe.
func (x *lhTxn) onWBProbe(t uint64) {
	l := x.l
	l.st.AddBytes(stats.WBProbe, lhTagBytes)
	if x.hit {
		l.st.WBHits++
		l.st.AddBytes(stats.WBUpdate, lhFillBytes)
		l.l4.Write(t, x.ch, x.bk, x.row, lhFillBytes)
	} else {
		l.st.WBMisses++
		l.mem.WriteLine(t, x.line)
	}
	l.putTxn(x)
}

// Loh-Hill transfer sizes (bytes).
const (
	lhTagBytes  = 192 // three tag lines
	lhDataBytes = 64
	lhFillBytes = 128 // data line + the tag line it lives in
)

// NewLohHill builds an LH-family cache with the given set (row) count.
// Designs with a MissMap (MissMapLatency > 0) get a capacity-bounded
// presence tracker (see the sizing note at its construction).
func NewLohHill(name string, sets uint64, ways int, l4 *dram.Memory, mem *MainMemory, hooks Hooks, opts LHOpts) *LohHill {
	cfg := l4.Config()
	l := &LohHill{
		name:     name,
		opts:     opts,
		tags:     sram.New(sets, ways),
		channels: uint64(cfg.Channels),
		banks:    uint64(cfg.Banks),
		l4:       l4,
		mem:      mem,
		hooks:    hooks,
	}
	if opts.UseDIP {
		l.dip = core.NewDIP(1024)
	}
	if opts.MissMapLatency > 0 {
		// The BEAR paper idealises the MissMap ("same latency as the LLC",
		// no capacity effects), so it is sized generously here — one
		// segment entry per 8 cache lines — while keeping real capacity
		// semantics (segment evictions force line evictions) so the
		// structure remains testable and sparse workloads still pay for
		// poor segment density.
		segments := sets * uint64(ways) / 8
		if segments < 64 {
			segments = 64
		}
		l.mm = NewMissMap(segments, 16, 64, l.missMapEvict)
	}
	return l
}

// missMapEvict handles the forced eviction of a line whose MissMap segment
// entry was replaced: the line must leave the DRAM cache (its presence can
// no longer be tracked). A dirty casualty is recovered and written to
// memory, costing a victim read — the MissMap's hidden tax.
func (l *LohHill) missMapEvict(line uint64) {
	ln, ok := l.tags.Invalidate(line)
	if !ok {
		return
	}
	if l.hooks.OnEvict != nil {
		l.hooks.OnEvict(line)
	}
	if ln.Dirty {
		set := l.tags.SetIndex(line)
		ch, bk, row := l.locate(set)
		l.st.AddBytes(stats.VictimRead, lhDataBytes)
		l.l4.Read(l.lastNow, ch, bk, row, lhDataBytes, l.mem.VictimFwd(line))
	}
}

// Name implements Cache.
func (l *LohHill) Name() string { return l.name }

// Stats implements Cache.
func (l *LohHill) Stats() *stats.L4 { return &l.st }

// Contains implements Cache.
func (l *LohHill) Contains(line uint64) bool {
	_, ok := l.tags.Lookup(line)
	return ok
}

// present answers the residency question the way the design would: via the
// MissMap when one exists, else via the tags (the Mostly-Clean perfect
// predictor).
func (l *LohHill) present(line uint64) bool {
	if l.mm != nil {
		return l.mm.Present(line)
	}
	_, ok := l.tags.Lookup(line)
	return ok
}

// fill installs a line in the tag array and the MissMap, routing evictions.
// Under DIP the insertion position follows the duel's current winner.
func (l *LohHill) fill(line uint64) sram.Eviction {
	var ev sram.Eviction
	if l.dip != nil && !l.dip.InsertAtMRU(l.tags.SetIndex(line)) {
		ev = l.tags.FillLRU(line, false, 0)
	} else {
		ev = l.tags.Fill(line, false, 0)
	}
	if ev.Valid {
		if l.mm != nil {
			l.mm.Clear(ev.Addr)
		}
		if l.hooks.OnEvict != nil {
			l.hooks.OnEvict(ev.Addr)
		}
	}
	if l.mm != nil {
		l.mm.Set(line)
	}
	return ev
}

// Install implements Cache: a free functional fill used for pre-warming.
func (l *LohHill) Install(line uint64) {
	if _, ok := l.tags.Lookup(line); !ok {
		l.fill(line)
	}
}

// locate maps a set (row) to DRAM coordinates.
func (l *LohHill) locate(set uint64) (ch, bk int, row uint64) {
	ch = int(set % l.channels)
	rest := set / l.channels
	bk = int(rest % l.banks)
	row = rest / l.banks
	return ch, bk, row
}

// Read implements Cache.
func (l *LohHill) Read(now uint64, coreID int, line, pc uint64, done func(uint64, ReadResult)) {
	l.lastNow = now
	set := l.tags.SetIndex(line)
	ch, bk, row := l.locate(set)
	present := l.present(line)
	start := now + l.opts.MissMapLatency

	if present {
		l.tags.Access(line, false) // LRU promotion
		// Tag read, then the data line from the now-open row, then the
		// LRU-state write-back (footnote 3's replacement-update bloat).
		x := l.getTxn()
		x.now, x.ch, x.bk, x.row, x.done = now, ch, bk, row, done
		l.l4.Read(start, ch, bk, row, lhTagBytes, x.fnHitTag)
		return
	}

	// Miss: both the MissMap and the Mostly-Clean perfect predictor avoid
	// the Miss Probe entirely and dispatch to memory. Fill always.
	if l.dip != nil {
		l.dip.RecordMiss(set)
	}
	ev := l.fill(line)
	x := l.getTxn()
	x.now, x.ch, x.bk, x.row, x.done = now, ch, bk, row, done
	x.victimLine, x.victimValid, x.victimDirty = ev.Addr, ev.Valid, ev.Dirty
	l.mem.ReadLine(start, line, x.fnMiss)
}

// Writeback implements Cache.
func (l *LohHill) Writeback(now uint64, coreID int, line uint64, pres core.Presence) {
	l.lastNow = now
	set := l.tags.SetIndex(line)
	ch, bk, row := l.locate(set)
	present := l.present(line)
	start := now + l.opts.MissMapLatency

	if l.opts.MissMapLatency > 0 || pres != core.PresUnknown {
		// The MissMap (or a DCP bit) answers presence: no probe needed.
		if present {
			l.tags.SetDirty(line)
			l.st.WBHits++
			l.st.AddBytes(stats.WBUpdate, lhFillBytes)
			l.l4.Write(start, ch, bk, row, lhFillBytes)
		} else {
			l.st.WBMisses++
			l.mem.WriteLine(start, line)
		}
		return
	}

	// Mostly-Clean: writebacks must probe the tag lines.
	if present {
		l.tags.SetDirty(line)
	}
	x := l.getTxn()
	x.line, x.ch, x.bk, x.row, x.hit = line, ch, bk, row, present
	l.l4.Read(start, ch, bk, row, lhTagBytes, x.fnWBProbe)
}

var _ Cache = (*LohHill)(nil)
