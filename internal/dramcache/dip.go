package dramcache

import "bear/internal/core"

// dipFill is the Dynamic Insertion Policy lifted into the FillPolicy layer:
// the set-dueling monitor observes misses through RecordAccess and the
// duel's current winner answers InsertMRU, which the engine hands to
// TagStore.Fill as the insertion position. Because the mechanism is pure
// policy — no tag-store hooks — DIP composes with any associative store:
// the Loh-Hill tags-in-DRAM rows (config.LHUseDIP) and the Tags-In-SRAM
// design (config.TISUseDIP, swept by the abl-dip ablation) share this one
// implementation.
type dipFill struct{ d *core.DIP }

// newDIPFill builds a DIP policy with the standard 1024-access duel window.
func newDIPFill() dipFill { return dipFill{core.NewDIP(1024)} }

func (f dipFill) RecordAccess(set, _ uint64, miss bool) {
	if miss {
		f.d.RecordMiss(set)
	}
}
func (f dipFill) ShouldBypass(uint64, uint64, uint64) bool { return false }
func (f dipFill) OnHit(uint64) bool                        { return false }
func (f dipFill) OnFill(uint64, uint64, uint64, bool)      {}

// InsertMRU consults the duel: leader sets vote, follower sets obey, and
// the bimodal side occasionally promotes (core.DIP owns that epsilon).
func (f dipFill) InsertMRU(set uint64) bool { return f.d.InsertAtMRU(set) }
