package dramcache

import "bear/internal/core"

// updFill is the update-bypass fill policy in the style of Young & Qureshi
// ("To Update or Not To Update?"): replacement/secondary state is too
// expensive to maintain in DRAM, so only a small sample of sets pays the
// in-DRAM status-bit write on first reuse, and only those sampled sets
// train the dead-block predictor. Non-sampled sets ride on the sampled
// sets' learned policy for free — the bypass decision still applies
// everywhere, but the ReplUpdate bandwidth category shrinks by ~the
// sampling factor.
//
// The policy is registered as ablation `abl-upd` and exists to demonstrate
// that a new design drops into the layered controller as pure policy
// composition: no transaction type, no tag store, no dispatch code.
type updFill struct {
	d      *core.DeadBlock
	sig    []uint16 // per-set signature of the installing fill
	reused []uint64 // bitset: line reused since fill (tracked in all sets)
	mask   uint64   // set is sampled when set&mask == 0
}

// newUpdFill samples one in 64 sets (deterministic, so runs are
// reproducible regardless of scale).
func newUpdFill(d *core.DeadBlock, sets uint64) *updFill {
	return &updFill{
		d:      d,
		sig:    make([]uint16, sets),
		reused: make([]uint64, (sets+63)/64),
		mask:   63,
	}
}

func (f *updFill) sampled(set uint64) bool { return set&f.mask == 0 }

func (f *updFill) isReused(set uint64) bool { return f.reused[set/64]&(1<<(set%64)) != 0 }
func (f *updFill) setReused(set uint64, v bool) {
	if v {
		f.reused[set/64] |= 1 << (set % 64)
	} else {
		f.reused[set/64] &^= 1 << (set % 64)
	}
}

func (f *updFill) RecordAccess(uint64, uint64, bool) {}

// ShouldBypass applies the learned dead-block decision to every set.
func (f *updFill) ShouldBypass(_, _, pc uint64) bool {
	return f.d.PredictDead(f.d.Signature(pc))
}

// OnHit marks the first reuse; only sampled sets pay the in-DRAM
// status-bit update — the bandwidth saving that is this policy's point.
func (f *updFill) OnHit(set uint64) bool {
	if f.isReused(set) {
		return false
	}
	f.setReused(set, true)
	return f.sampled(set)
}

// OnFill trains the predictor from sampled sets only (non-sampled reuse
// bits are architecturally stale — they were never written back — so
// training on them would be cheating).
func (f *updFill) OnFill(set, _, pc uint64, hadVictim bool) {
	if hadVictim && f.sampled(set) {
		f.d.Train(f.sig[set], f.isReused(set))
	}
	f.sig[set] = f.d.Signature(pc)
	f.setReused(set, false)
}

func (f *updFill) InsertMRU(uint64) bool { return true }
