package dramcache

import (
	"bear/internal/dram"
	"bear/internal/fault"
	"bear/internal/sram"
	"bear/internal/stats"
)

// Sector is the Sector-Cache design of Section 8 (a Footprint-cache-style
// organisation without the prefetcher): tags are kept at 4 KB-sector
// granularity in an idealised 6 MB on-chip SRAM, with per-line valid and
// dirty bits. Probes are free, but a sector replacement must recover every
// dirty line of the victim sector from the DRAM cache and write it to
// memory — the dirty-replacement penalty the paper identifies as SC's
// downfall.
type Sector = Controller

// sectorTags is the sector-granular tag store: an sram.Cache keyed by
// sector address (an sram.Mapper splits lines into sector/offset
// coordinates), with per-line valid/dirty bits per frame. The frame index
// is derived from the tag's (set, way) position — the same slab geometry
// the SoA cache already maintains — so no side map is needed.
type sectorTags struct {
	c *Controller

	tags      *sram.Cache // keyed by sector address
	ways      uint64
	amap      sram.Mapper // line -> (sector, offset)
	validBits []uint64
	dirtyBits []uint64

	channels uint64
	banks    uint64
	lpr      uint64
}

// frameOf returns the data frame of a resident sector.
func (t *sectorTags) frameOf(sector uint64) (uint64, bool) {
	way, ok := t.tags.WayOf(sector)
	if !ok {
		return 0, false
	}
	return t.tags.SetIndex(sector)*t.ways + uint64(way), true
}

// locateLine maps a (frame, offset) to DRAM coordinates.
func (t *sectorTags) locateLine(frame, offset uint64) Location {
	unit := (frame*t.amap.BlockLines() + offset) / t.lpr
	ch := int(unit % t.channels)
	rest := unit / t.channels
	bk := int(rest % t.banks)
	return Location{Ch: ch, Bk: bk, Row: rest / t.banks}
}

// Lookup implements TagStore. A resident sector with the line absent is
// reported as a miss with FreeFill set: both reads (fetch just the line)
// and writebacks (install in place) fill into the sector without a victim.
func (t *sectorTags) Lookup(_ uint64, line uint64) Probe {
	sector, off := t.amap.Split(line)
	frame, ok := t.frameOf(sector)
	if !ok {
		return Probe{Set: t.tags.SetIndex(sector), Block: sector}
	}
	return Probe{
		Hit:      t.validBits[frame]&(1<<off) != 0,
		Loc:      t.locateLine(frame, off),
		Set:      t.tags.SetIndex(sector),
		Block:    sector,
		FreeFill: true,
	}
}

// Touch implements TagStore (sector-granular LRU promotion).
func (t *sectorTags) Touch(line uint64) {
	t.tags.Access(t.amap.Block(line), false)
}

// allocSector installs a sector, evicting a victim sector if needed, and
// returns the new sector's frame. Dirty victim lines are read from the
// DRAM cache and forwarded to memory at time now.
func (t *sectorTags) allocSector(now uint64, sector uint64) uint64 {
	set := t.tags.SetIndex(sector)
	way := t.tags.VictimWay(sector)
	frame := set*t.ways + uint64(way)
	ev := t.tags.Fill(sector, false, 0)
	if ev.Valid {
		valid, dirty := t.validBits[frame], t.dirtyBits[frame]
		for off := uint64(0); off < t.amap.BlockLines(); off++ {
			bit := uint64(1) << off
			if valid&bit == 0 {
				continue
			}
			victimLine := t.amap.Line(ev.Addr, off)
			if t.c.hooks.OnEvict != nil {
				t.c.hooks.OnEvict(victimLine)
			}
			if dirty&bit != 0 {
				// Recover the dirty line before the frame is reused.
				t.c.st.AddBytes(stats.VictimRead, 64)
				t.c.l4Read(now, t.locateLine(frame, off), 64, t.c.mem.VictimFwd(victimLine, 0))
			}
		}
	}
	t.validBits[frame] = 0
	t.dirtyBits[frame] = 0
	return frame
}

// Fill implements TagStore: a resident sector takes the line in place
// (promoting the sector); a sector miss allocates, paying any dirty-victim
// recovery at issue — so no victim is ever reported to the engine. Sector
// fills always insert at MRU (no insertion-policy composition), so mru is
// ignored.
func (t *sectorTags) Fill(now uint64, line, _ uint64, _ bool) FillResult {
	sector, off := t.amap.Split(line)
	frame, ok := t.frameOf(sector)
	if ok {
		t.tags.Access(sector, false)
	} else {
		frame = t.allocSector(now, sector)
	}
	t.validBits[frame] |= 1 << off
	return FillResult{Loc: t.locateLine(frame, off)}
}

// WritebackHit implements TagStore.
func (t *sectorTags) WritebackHit(line uint64) {
	sector, off := t.amap.Split(line)
	if frame, ok := t.frameOf(sector); ok {
		t.dirtyBits[frame] |= 1 << off
	}
}

// WritebackFill implements TagStore: only called on the FreeFill path
// (sector resident, line absent) — set the line's valid and dirty bits.
func (t *sectorTags) WritebackFill(_ uint64, line uint64) FillResult {
	sector, off := t.amap.Split(line)
	frame, ok := t.frameOf(sector)
	if !ok {
		panic(fault.Invariantf("dramcache", "sector WritebackFill without resident sector"))
	}
	bit := uint64(1) << off
	t.validBits[frame] |= bit
	t.dirtyBits[frame] |= bit
	return FillResult{Loc: t.locateLine(frame, off)}
}

// Contains implements TagStore.
func (t *sectorTags) Contains(line uint64) bool {
	sector, off := t.amap.Split(line)
	frame, ok := t.frameOf(sector)
	if !ok {
		return false
	}
	return t.validBits[frame]&(1<<off) != 0
}

// Install implements TagStore.
func (t *sectorTags) Install(line uint64) {
	sector, off := t.amap.Split(line)
	frame, ok := t.frameOf(sector)
	if !ok {
		set := t.tags.SetIndex(sector)
		way := t.tags.VictimWay(sector)
		frame = set*t.ways + uint64(way)
		t.tags.Fill(sector, false, 0)
		t.validBits[frame] = 0
		t.dirtyBits[frame] = 0
	}
	t.validBits[frame] |= 1 << off
}

// sectorLayout: probes are free (tags on chip), data operations move 64 B
// lines; victims are settled at issue inside the tag store, never by the
// engine. The granularity's BlockLines is corrected to the constructed
// sector size in NewSector.
var sectorLayout = Layout{
	Gran:          GranPage,
	HitBytes:      64,
	FillBytes:     64,
	WBUpdateBytes: 64,
}

// NewSector composes a sector cache of `lines` total data lines, grouped
// into sectors of sectorLines lines (must be <= 64), with the given sector
// associativity.
func NewSector(name string, lines uint64, sectorLines uint64, ways int, l4 *dram.Memory, mem *MainMemory, hooks Hooks) *Sector {
	if sectorLines == 0 || sectorLines > 64 {
		panic(fault.Invariantf("dramcache", "sector size must be 1..64 lines, got %d", sectorLines))
	}
	cfg := l4.Config()
	sectors := lines / sectorLines
	sets := sectors / uint64(ways)
	if sets == 0 {
		sets = 1
	}
	frames := sets * uint64(ways)
	c := &Controller{name: name, lay: sectorLayout, l4: l4, mem: mem, hooks: hooks, wb: directWB{}}
	c.lay.Gran = Granularity{BlockLines: sectorLines, SubBlocked: true}
	c.tags = &sectorTags{
		c:         c,
		tags:      sram.New(sets, ways),
		ways:      uint64(ways),
		amap:      sram.NewMapper(sectorLines),
		validBits: make([]uint64, frames),
		dirtyBits: make([]uint64, frames),
		channels:  uint64(cfg.Channels),
		banks:     uint64(cfg.Banks),
		lpr:       uint64(cfg.RowBytes / 64),
	}
	return c
}
