package dramcache

import (
	"bear/internal/core"
	"bear/internal/dram"
	"bear/internal/event"
	"bear/internal/sram"
	"bear/internal/stats"
)

// Sector is the Sector-Cache design of Section 8 (a Footprint-cache-style
// organisation without the prefetcher): tags are kept at 4 KB-sector
// granularity in an idealised 6 MB on-chip SRAM, with per-line valid and
// dirty bits. Probes are free, but a sector replacement must recover every
// dirty line of the victim sector from the DRAM cache and write it to
// memory — the dirty-replacement penalty the paper identifies as SC's
// downfall.
type Sector struct {
	name string

	tags       *sram.Cache // keyed by sector address
	ways       uint64
	linesPer   uint64 // lines per sector (64 for 4 KB sectors)
	validBits  []uint64
	dirtyBits  []uint64
	frameOfSec map[uint64]uint64 // resident sector -> frame index

	channels uint64
	banks    uint64
	lpr      uint64

	l4    *dram.Memory
	mem   *MainMemory
	hooks Hooks
	st    stats.L4

	txnFree *sectorTxn // recycled per-access transaction pool
}

// sectorTxn is the pooled per-access state with pre-bound completion methods
// (see alloyTxn for the rationale).
type sectorTxn struct {
	c             *Sector
	now           uint64
	ch, bk        int
	row           uint64
	done          func(uint64, ReadResult)
	fnHit, fnFill event.Func
	next          *sectorTxn
}

func (c *Sector) getTxn() *sectorTxn {
	x := c.txnFree
	if x == nil {
		x = &sectorTxn{c: c}
		x.fnHit = x.onHit
		x.fnFill = x.onFill
	} else {
		c.txnFree = x.next
		x.next = nil
	}
	return x
}

func (c *Sector) putTxn(x *sectorTxn) {
	x.done = nil
	x.next = c.txnFree
	c.txnFree = x
}

func (x *sectorTxn) onHit(t uint64) {
	c := x.c
	c.st.ReadHits++
	c.st.AddBytes(stats.HitProbe, 64)
	c.st.HitLatSum += t - x.now
	done := x.done
	c.putTxn(x)
	done(t, ReadResult{FromL4: true, InL4: true})
}

func (x *sectorTxn) onFill(t uint64) {
	c := x.c
	c.st.Miss(t - x.now)
	c.st.Fills++
	c.st.AddBytes(stats.MissFill, 64)
	c.l4.Write(t, x.ch, x.bk, x.row, 64)
	done := x.done
	c.putTxn(x)
	done(t, ReadResult{FromL4: false, InL4: true})
}

// NewSector builds a sector cache of `lines` total data lines, grouped into
// sectors of sectorLines lines (must be <= 64), with the given sector
// associativity.
func NewSector(name string, lines uint64, sectorLines uint64, ways int, l4 *dram.Memory, mem *MainMemory, hooks Hooks) *Sector {
	if sectorLines == 0 || sectorLines > 64 {
		panic("dramcache: sector size must be 1..64 lines")
	}
	cfg := l4.Config()
	sectors := lines / sectorLines
	sets := sectors / uint64(ways)
	if sets == 0 {
		sets = 1
	}
	frames := sets * uint64(ways)
	return &Sector{
		name:       name,
		tags:       sram.New(sets, ways),
		ways:       uint64(ways),
		linesPer:   sectorLines,
		validBits:  make([]uint64, frames),
		dirtyBits:  make([]uint64, frames),
		frameOfSec: make(map[uint64]uint64),
		channels:   uint64(cfg.Channels),
		banks:      uint64(cfg.Banks),
		lpr:        uint64(cfg.RowBytes / 64),
		l4:         l4,
		mem:        mem,
		hooks:      hooks,
	}
}

// Name implements Cache.
func (c *Sector) Name() string { return c.name }

// Stats implements Cache.
func (c *Sector) Stats() *stats.L4 { return &c.st }

func (c *Sector) sectorOf(line uint64) (sector, offset uint64) {
	return line / c.linesPer, line % c.linesPer
}

// Contains implements Cache.
func (c *Sector) Contains(line uint64) bool {
	sector, off := c.sectorOf(line)
	if _, ok := c.tags.Lookup(sector); !ok {
		return false
	}
	f := c.frameOfSec[sector]
	return c.validBits[f]&(1<<off) != 0
}

// Install implements Cache: a free functional fill used for pre-warming.
func (c *Sector) Install(line uint64) {
	sector, off := c.sectorOf(line)
	var frame uint64
	if _, ok := c.tags.Lookup(sector); ok {
		frame = c.frameOfSec[sector]
	} else {
		set := c.tags.SetIndex(sector)
		way := c.tags.VictimWay(sector)
		frame = set*c.ways + uint64(way)
		ev := c.tags.Fill(sector, false, 0)
		if ev.Valid {
			delete(c.frameOfSec, ev.Addr)
		}
		c.validBits[frame] = 0
		c.dirtyBits[frame] = 0
		c.frameOfSec[sector] = frame
	}
	c.validBits[frame] |= 1 << off
}

// locateLine maps a (frame, offset) to DRAM coordinates.
func (c *Sector) locateLine(frame, offset uint64) (ch, bk int, row uint64) {
	unit := (frame*c.linesPer + offset) / c.lpr
	ch = int(unit % c.channels)
	rest := unit / c.channels
	bk = int(rest % c.banks)
	row = rest / c.banks
	return ch, bk, row
}

// allocSector installs a sector, evicting a victim sector if needed, and
// returns the new sector's frame. Dirty victim lines are read from the
// DRAM cache and forwarded to memory at time now.
func (c *Sector) allocSector(now uint64, sector uint64) uint64 {
	set := c.tags.SetIndex(sector)
	way := c.tags.VictimWay(sector)
	frame := set*c.ways + uint64(way)
	ev := c.tags.Fill(sector, false, 0)
	if ev.Valid {
		delete(c.frameOfSec, ev.Addr)
		valid, dirty := c.validBits[frame], c.dirtyBits[frame]
		for off := uint64(0); off < c.linesPer; off++ {
			bit := uint64(1) << off
			if valid&bit == 0 {
				continue
			}
			victimLine := ev.Addr*c.linesPer + off
			if c.hooks.OnEvict != nil {
				c.hooks.OnEvict(victimLine)
			}
			if dirty&bit != 0 {
				// Recover the dirty line before the frame is reused.
				c.st.AddBytes(stats.VictimRead, 64)
				ch, bk, row := c.locateLine(frame, off)
				c.l4.Read(now, ch, bk, row, 64, c.mem.VictimFwd(victimLine))
			}
		}
	}
	c.validBits[frame] = 0
	c.dirtyBits[frame] = 0
	c.frameOfSec[sector] = frame
	return frame
}

// Read implements Cache.
func (c *Sector) Read(now uint64, coreID int, line, pc uint64, done func(uint64, ReadResult)) {
	sector, off := c.sectorOf(line)
	bit := uint64(1) << off

	if _, ok := c.tags.Lookup(sector); ok {
		frame := c.frameOfSec[sector]
		c.tags.Access(sector, false)
		if c.validBits[frame]&bit != 0 {
			ch, bk, row := c.locateLine(frame, off)
			x := c.getTxn()
			x.now, x.done = now, done
			c.l4.Read(now, ch, bk, row, 64, x.fnHit)
			return
		}
		// Sector present, line absent: fetch and fill just the line.
		c.validBits[frame] |= bit
		c.fillLine(now, frame, off, line, done)
		return
	}

	// Sector miss: allocate (paying any dirty-victim recovery) then fill.
	frame := c.allocSector(now, sector)
	c.validBits[frame] |= bit
	c.fillLine(now, frame, off, line, done)
}

func (c *Sector) fillLine(now uint64, frame, off, line uint64, done func(uint64, ReadResult)) {
	ch, bk, row := c.locateLine(frame, off)
	x := c.getTxn()
	x.now, x.ch, x.bk, x.row, x.done = now, ch, bk, row, done
	c.mem.ReadLine(now, line, x.fnFill)
}

// Writeback implements Cache.
func (c *Sector) Writeback(now uint64, coreID int, line uint64, pres core.Presence) {
	sector, off := c.sectorOf(line)
	bit := uint64(1) << off
	if _, ok := c.tags.Lookup(sector); ok {
		frame := c.frameOfSec[sector]
		ch, bk, row := c.locateLine(frame, off)
		if c.validBits[frame]&bit != 0 {
			c.st.WBHits++
			c.dirtyBits[frame] |= bit
			c.st.AddBytes(stats.WBUpdate, 64)
			c.l4.Write(now, ch, bk, row, 64)
			return
		}
		// Sector resident but line absent: writeback-fill into the sector.
		c.validBits[frame] |= bit
		c.dirtyBits[frame] |= bit
		c.st.WBHits++
		c.st.AddBytes(stats.WBFill, 64)
		c.l4.Write(now, ch, bk, row, 64)
		return
	}
	c.st.WBMisses++
	c.mem.WriteLine(now, line)
}

var _ Cache = (*Sector)(nil)
