package dramcache

import (
	"bear/internal/fault"
	"bear/internal/sram"
)

// pageTags is the page-grained tag store shared by the Banshee and TicToc
// compositions: the same sram.Cache SoA slabs, way-hint table and LRU
// machinery that serve line tags, keyed by page (block) address through an
// sram.Mapper, with per-frame valid/dirty bitsets tracking sub-block
// (line) state. The data frame of a resident page is derived from its tag
// position (set*ways + way), exactly like the sector store — no side map,
// so the hot path stays allocation-free.
//
// Two fill modes cover the two papers: fullFill=true fetches the whole
// page on a miss (Banshee's page-granularity fills — FillResult.FillLines
// reports the scale and the engine streams the tail from memory);
// fullFill=false fetches only the demand line into the resident frame
// (TicToc keeps page frames but fills footprint-style). In both modes a
// page eviction hands the engine the victim's dirty mask, so only dirty
// lines pay recovery reads and memory writes (partial-page writeback).
type pageTags struct {
	c *Controller

	tags      *sram.Cache // keyed by page (block) address
	ways      uint64
	amap      sram.Mapper // line -> (page, offset)
	validBits []uint64    // per-frame sub-block valid bits
	dirtyBits []uint64    // per-frame sub-block dirty bits
	fullFill  bool        // page miss fetches the whole page, not one line

	// onEvictPage keeps composition-side structures (Banshee's tag buffer,
	// TicToc's tag cache) coherent with page evictions; may be nil.
	onEvictPage func(page uint64)

	channels uint64
	banks    uint64
	lpr      uint64
}

func newPageTags(c *Controller, lines, pageLines uint64, ways int, fullFill bool) *pageTags {
	cfg := c.l4.Config()
	pages := lines / pageLines
	sets := pages / uint64(ways)
	if sets == 0 {
		sets = 1
	}
	frames := sets * uint64(ways)
	return &pageTags{
		c:         c,
		tags:      sram.New(sets, ways),
		ways:      uint64(ways),
		amap:      sram.NewMapper(pageLines),
		validBits: make([]uint64, frames),
		dirtyBits: make([]uint64, frames),
		fullFill:  fullFill,
		channels:  uint64(cfg.Channels),
		banks:     uint64(cfg.Banks),
		lpr:       uint64(cfg.RowBytes / 64),
	}
}

// frameOf returns the data frame of a resident page.
func (t *pageTags) frameOf(page uint64) (uint64, bool) {
	way, ok := t.tags.WayOf(page)
	if !ok {
		return 0, false
	}
	return t.tags.SetIndex(page)*t.ways + uint64(way), true
}

// resident reports whether page has a frame (regardless of line validity).
func (t *pageTags) resident(page uint64) bool {
	_, ok := t.tags.Lookup(page)
	return ok
}

// lineValid reports functional residency of one line (ground truth for
// filter answers).
func (t *pageTags) lineValid(line uint64) bool {
	page, off := t.amap.Split(line)
	frame, ok := t.frameOf(page)
	return ok && t.validBits[frame]&(1<<off) != 0
}

// locateLine maps a (frame, offset) to DRAM coordinates.
func (t *pageTags) locateLine(frame, offset uint64) Location {
	unit := (frame*t.amap.BlockLines() + offset) / t.lpr
	ch := int(unit % t.channels)
	rest := unit / t.channels
	bk := int(rest % t.banks)
	return Location{Ch: ch, Bk: bk, Row: rest / t.banks}
}

// Lookup implements TagStore. A resident page with the demand line absent
// is a miss with FreeFill set: reads fetch just the line into the frame and
// writebacks install in place, with no victim either way.
func (t *pageTags) Lookup(_ uint64, line uint64) Probe {
	page, off := t.amap.Split(line)
	frame, ok := t.frameOf(page)
	if !ok {
		set := t.tags.SetIndex(page)
		// Absent page: report the set's first frame so probes (writeback
		// dirty probes) address the set's tag location.
		return Probe{Loc: t.locateLine(set*t.ways, off), Set: set, Block: page}
	}
	return Probe{
		Hit:      t.validBits[frame]&(1<<off) != 0,
		Loc:      t.locateLine(frame, off),
		Set:      t.tags.SetIndex(page),
		Block:    page,
		FreeFill: true,
	}
}

// Touch implements TagStore (page-granular LRU promotion).
func (t *pageTags) Touch(line uint64) {
	t.tags.Access(t.amap.Block(line), false)
}

// evictFrame routes a page eviction: per-line hierarchy hooks for every
// valid line, composition coherence for the page, and the dirty mask back
// to the caller so the engine can schedule the partial-page writeback.
func (t *pageTags) evictFrame(frame, page uint64) (dirtyMask uint64) {
	valid, dirty := t.validBits[frame], t.dirtyBits[frame]
	if t.c.hooks.OnEvict != nil {
		for off := uint64(0); off < t.amap.BlockLines(); off++ {
			if valid&(1<<off) != 0 {
				t.c.hooks.OnEvict(t.amap.Line(page, off))
			}
		}
	}
	if t.onEvictPage != nil {
		t.onEvictPage(page)
	}
	return dirty
}

// Fill implements TagStore. A resident page takes the demand line in place
// (promoting the page, one line of fill); a page miss allocates a frame —
// whole-page or demand-line according to the fill mode — and reports the
// displaced page's dirty lines to the engine via VictimDirtyMask, so the
// recovery read and the memory forwards cover exactly the dirty subset.
func (t *pageTags) Fill(_ uint64, line, _ uint64, mru bool) FillResult {
	page, off := t.amap.Split(line)
	if frame, ok := t.frameOf(page); ok {
		// Resident page, absent line: demand-fill in place.
		t.tags.Access(page, false)
		t.validBits[frame] |= 1 << off
		return FillResult{Loc: t.locateLine(frame, off), FillLines: 1}
	}
	set := t.tags.SetIndex(page)
	way := t.tags.VictimWay(page)
	frame := set*t.ways + uint64(way)
	var ev sram.Eviction
	if mru {
		ev = t.tags.Fill(page, false, 0)
	} else {
		ev = t.tags.FillLRU(page, false, 0)
	}
	fr := FillResult{}
	if ev.Valid {
		dirty := t.evictFrame(frame, ev.Addr)
		fr.VictimLine = t.amap.Line(ev.Addr, 0)
		fr.VictimValid = true
		fr.VictimDirty = dirty != 0
		fr.VictimDirtyMask = dirty
	}
	if t.fullFill {
		if n := t.amap.BlockLines(); n == 64 {
			t.validBits[frame] = ^uint64(0)
			fr.FillLines = 64
		} else {
			t.validBits[frame] = 1<<n - 1
			fr.FillLines = int(n)
		}
	} else {
		t.validBits[frame] = 1 << off
		fr.FillLines = 1
	}
	t.dirtyBits[frame] = 0
	fr.Loc = t.locateLine(frame, off)
	return fr
}

// WritebackHit implements TagStore.
func (t *pageTags) WritebackHit(line uint64) {
	page, off := t.amap.Split(line)
	if frame, ok := t.frameOf(page); ok {
		t.dirtyBits[frame] |= 1 << off
	}
}

// WritebackFill implements TagStore: only reachable on the FreeFill path
// (page resident, line absent) — set the line's valid and dirty bits.
func (t *pageTags) WritebackFill(_ uint64, line uint64) FillResult {
	page, off := t.amap.Split(line)
	frame, ok := t.frameOf(page)
	if !ok {
		panic(fault.Invariantf("dramcache", "page WritebackFill without resident page"))
	}
	bit := uint64(1) << off
	t.validBits[frame] |= bit
	t.dirtyBits[frame] |= bit
	return FillResult{Loc: t.locateLine(frame, off)}
}

// Contains implements TagStore.
func (t *pageTags) Contains(line uint64) bool { return t.lineValid(line) }

// Install implements TagStore: free functional pre-warming, one line at a
// time (a page frame accretes valid bits as its lines are installed; a
// displaced prewarm victim is simply dropped, like the sector store).
func (t *pageTags) Install(line uint64) {
	page, off := t.amap.Split(line)
	frame, ok := t.frameOf(page)
	if !ok {
		set := t.tags.SetIndex(page)
		way := t.tags.VictimWay(page)
		frame = set*t.ways + uint64(way)
		ev := t.tags.Fill(page, false, 0)
		if ev.Valid && t.onEvictPage != nil {
			t.onEvictPage(ev.Addr)
		}
		t.validBits[frame] = 0
		t.dirtyBits[frame] = 0
	}
	t.validBits[frame] |= 1 << off
}

var _ TagStore = (*pageTags)(nil)

// checkPageGeometry validates the shape shared by NewBanshee and NewTicToc.
func checkPageGeometry(lines, pageLines uint64) {
	if pageLines == 0 || pageLines > 64 {
		panic(fault.Invariantf("dramcache", "page size must be 1..64 lines, got %d", pageLines))
	}
	if lines < pageLines {
		panic(fault.Invariantf("dramcache", "cache of %d lines smaller than one %d-line page", lines, pageLines))
	}
}
