package dramcache

import (
	"testing"

	"bear/internal/config"
	"bear/internal/core"
	"bear/internal/dram"
	"bear/internal/event"
	"bear/internal/stats"
)

type fixture struct {
	q   *event.Queue
	l4  *dram.Memory
	mem *MainMemory
}

func newFixture() *fixture {
	q := &event.Queue{}
	l4cfg := config.DRAM{
		Channels: 2, Banks: 4, BytesPerCycle: 16, RowBytes: 2048,
		TCAS: 36, TRCD: 36, TRP: 36, TRAS: 144, WriteQHi: 8, WriteQLo: 4,
	}
	memcfg := config.DRAM{
		Channels: 1, Banks: 4, BytesPerCycle: 4, RowBytes: 2048,
		TCAS: 36, TRCD: 36, TRP: 36, TRAS: 144, WriteQHi: 8, WriteQLo: 4,
	}
	f := &fixture{q: q}
	f.l4 = dram.New("l4", l4cfg, q)
	f.mem = NewMainMemory(dram.New("mem", memcfg, q))
	return f
}

func (f *fixture) drain() { f.q.Run(nil) }

// read performs a blocking read and returns the result and completion time.
func read(t *testing.T, f *fixture, c Cache, line uint64) (ReadResult, uint64) {
	t.Helper()
	var res ReadResult
	var at uint64
	done := false
	c.Read(f.q.Now(), 0, line, 0x400, func(now uint64, r ReadResult) {
		res, at, done = r, now, true
	})
	f.drain()
	if !done {
		t.Fatalf("read of line %d never completed", line)
	}
	return res, at
}

func newAlloy(f *fixture, opts AlloyOpts) *Alloy {
	return NewAlloy("test", 56, f.l4, f.mem, Hooks{}, opts)
}

func TestAlloyHitAccounting(t *testing.T) {
	f := newFixture()
	a := newAlloy(f, AlloyOpts{})
	a.Install(100)
	res, at := read(t, f, a, 100)
	if !res.FromL4 || !res.InL4 {
		t.Fatalf("hit result = %+v", res)
	}
	st := a.Stats()
	if st.ReadHits != 1 || st.Bytes[stats.HitProbe] != 80 {
		t.Fatalf("hit stats = hits=%d bytes=%v", st.ReadHits, st.Bytes)
	}
	if st.TotalBytes() != 80 {
		t.Fatalf("total bytes = %d, want 80", st.TotalBytes())
	}
	// Unloaded latency: tRCD + tCAS + 5-cycle burst.
	if at != 36+36+5 {
		t.Fatalf("hit completed at %d, want 77", at)
	}
}

func TestAlloyMissAccounting(t *testing.T) {
	f := newFixture()
	a := newAlloy(f, AlloyOpts{})
	res, _ := read(t, f, a, 100)
	if res.FromL4 || !res.InL4 {
		t.Fatalf("miss result = %+v (should have filled)", res)
	}
	st := a.Stats()
	if st.ReadMisses != 1 || st.Fills != 1 {
		t.Fatalf("miss stats: %+v", st)
	}
	if st.Bytes[stats.MissProbe] != 80 || st.Bytes[stats.MissFill] != 80 {
		t.Fatalf("miss bytes = %v", st.Bytes)
	}
	if !a.Contains(100) {
		t.Fatal("missed line was not filled")
	}
	// Second read is now a hit.
	res, _ = read(t, f, a, 100)
	if !res.FromL4 {
		t.Fatal("second read missed")
	}
}

func TestAlloyConflictEviction(t *testing.T) {
	f := newFixture()
	evicted := []uint64{}
	a := NewAlloy("test", 56, f.l4, f.mem, Hooks{OnEvict: func(l uint64) { evicted = append(evicted, l) }}, AlloyOpts{})
	read(t, f, a, 100)
	read(t, f, a, 156) // same set (100 % 56 == 156 % 56)
	if a.Contains(100) {
		t.Fatal("conflicting line survived")
	}
	if len(evicted) != 1 || evicted[0] != 100 {
		t.Fatalf("OnEvict calls = %v, want [100]", evicted)
	}
}

func TestAlloyDirtyVictimWrittenToMemory(t *testing.T) {
	f := newFixture()
	a := newAlloy(f, AlloyOpts{})
	a.Install(100)
	a.Writeback(f.q.Now(), 0, 100, core.PresUnknown) // make it dirty in L4
	f.drain()
	memWrites := f.mem.D.Stats.Writes
	read(t, f, a, 156) // evicts dirty 100
	if got := f.mem.D.Stats.Writes - memWrites; got != 1 {
		t.Fatalf("dirty victim produced %d memory writes, want 1", got)
	}
}

func TestAlloyBypass(t *testing.T) {
	f := newFixture()
	bab := core.NewBAB(1.0, 1024, 1)
	bab.Naive = true // always bypass
	a := newAlloy(f, AlloyOpts{BAB: bab})
	res, _ := read(t, f, a, 100)
	if res.InL4 {
		t.Fatal("bypassed line reported in L4")
	}
	st := a.Stats()
	if st.Bypasses != 1 || st.Fills != 0 || st.Bytes[stats.MissFill] != 0 {
		t.Fatalf("bypass stats: %+v", st)
	}
	if a.Contains(100) {
		t.Fatal("bypassed line was filled")
	}
}

func TestAlloyWritebackProbeHit(t *testing.T) {
	f := newFixture()
	a := newAlloy(f, AlloyOpts{})
	a.Install(200)
	a.Writeback(f.q.Now(), 0, 200, core.PresUnknown)
	f.drain()
	st := a.Stats()
	if st.WBHits != 1 || st.Bytes[stats.WBProbe] != 80 || st.Bytes[stats.WBUpdate] != 80 {
		t.Fatalf("wb probe-hit stats: hits=%d bytes=%v", st.WBHits, st.Bytes)
	}
}

func TestAlloyWritebackProbeMiss(t *testing.T) {
	f := newFixture()
	a := newAlloy(f, AlloyOpts{})
	a.Writeback(f.q.Now(), 0, 200, core.PresUnknown)
	f.drain()
	st := a.Stats()
	if st.WBMisses != 1 || st.Bytes[stats.WBProbe] != 80 || st.Bytes[stats.WBUpdate] != 0 {
		t.Fatalf("wb probe-miss stats: misses=%d bytes=%v", st.WBMisses, st.Bytes)
	}
	if f.mem.D.Stats.Writes != 1 {
		t.Fatalf("wb miss should write memory once, got %d", f.mem.D.Stats.Writes)
	}
}

func TestAlloyDCPPresent(t *testing.T) {
	f := newFixture()
	a := newAlloy(f, AlloyOpts{})
	a.Install(200)
	a.Writeback(f.q.Now(), 0, 200, core.PresPresent)
	f.drain()
	st := a.Stats()
	if st.Bytes[stats.WBProbe] != 0 || st.Bytes[stats.WBUpdate] != 80 {
		t.Fatalf("DCP-present wb bytes = %v (probe should be skipped)", st.Bytes)
	}
	if st.DCPProbesSaved != 1 || st.WBHits != 1 {
		t.Fatalf("DCP stats: %+v", st)
	}
}

func TestAlloyDCPAbsent(t *testing.T) {
	f := newFixture()
	a := newAlloy(f, AlloyOpts{})
	a.Writeback(f.q.Now(), 0, 200, core.PresAbsent)
	f.drain()
	st := a.Stats()
	if st.TotalBytes() != 0 {
		t.Fatalf("DCP-absent wb consumed L4 bytes: %v", st.Bytes)
	}
	if f.mem.D.Stats.Writes != 1 {
		t.Fatal("DCP-absent wb did not go to memory")
	}
	if st.DCPProbesSaved != 1 {
		t.Fatalf("DCP stats: %+v", st)
	}
}

func TestAlloyNTCSkipsMissProbe(t *testing.T) {
	f := newFixture()
	ntc := core.NewNTC(8, 8)
	a := newAlloy(f, AlloyOpts{NTC: ntc})
	// Line 100 -> set 44; its row neighbour is set 45. Accessing set 44
	// deposits set 45's tag. Then a read mapping to set 45 but absent is
	// answered by the NTC without a probe.
	a.Install(100)
	read(t, f, a, 100)
	st := a.Stats()
	before := st.Bytes[stats.MissProbe]
	// Line 45+56 = 101? set of 101 = 45. Set 45 is empty (known absent).
	res, _ := read(t, f, a, 101)
	if res.FromL4 {
		t.Fatal("expected miss")
	}
	if st.Bytes[stats.MissProbe] != before {
		t.Fatal("NTC did not skip the miss probe")
	}
	if st.NTCProbesSaved != 1 {
		t.Fatalf("NTCProbesSaved = %d", st.NTCProbesSaved)
	}
	// The line was still filled despite the skipped probe.
	if !a.Contains(101) {
		t.Fatal("fill skipped")
	}
}

func TestAlloyNTCDirtyResidentForcesProbe(t *testing.T) {
	f := newFixture()
	ntc := core.NewNTC(8, 8)
	a := newAlloy(f, AlloyOpts{NTC: ntc})
	a.Install(101) // set 45
	a.Writeback(f.q.Now(), 0, 101, core.PresUnknown)
	f.drain()
	a.Install(100)     // set 44
	read(t, f, a, 100) // deposits set 45 (dirty line 101)
	st := a.Stats()
	before := st.Bytes[stats.MissProbe]
	read(t, f, a, 157) // set 45, != 101 -> miss with dirty resident
	if st.Bytes[stats.MissProbe] == before {
		t.Fatal("probe was skipped despite a dirty resident line")
	}
	// The dirty victim must reach memory.
	if f.mem.D.Stats.Writes == 0 {
		t.Fatal("dirty victim lost")
	}
}

func TestAlloyNTCSquashesParallelAccess(t *testing.T) {
	f := newFixture()
	ntc := core.NewNTC(8, 8)
	mapi := NewMAPI(1, 64)
	a := newAlloy(f, AlloyOpts{NTC: ntc, Predictor: mapi})
	// Train the predictor to predict miss for this PC.
	for i := 0; i < 8; i++ {
		mapi.Update(0, 0x400, false)
	}
	a.Install(100)
	read(t, f, a, 100) // deposits neighbour set 45
	a.Install(101)     // set 45 now holds 101
	// Update the NTC's view of set 45 via sync path: Install does not
	// sync, so deposit again through another access to set 44.
	read(t, f, a, 100)
	memReads := f.mem.D.Stats.Reads
	res, _ := read(t, f, a, 101) // predicted miss, NTC knows present
	if !res.FromL4 {
		t.Fatal("expected hit")
	}
	if f.mem.D.Stats.Reads != memReads {
		t.Fatal("parallel memory access was not squashed")
	}
	if a.Stats().NTCParallelSqsh != 1 {
		t.Fatalf("NTCParallelSqsh = %d", a.Stats().NTCParallelSqsh)
	}
}

func TestAlloyPredictedMissParallelAccessWasted(t *testing.T) {
	f := newFixture()
	mapi := NewMAPI(1, 64)
	a := newAlloy(f, AlloyOpts{Predictor: mapi})
	for i := 0; i < 8; i++ {
		mapi.Update(0, 0x400, false)
	}
	a.Install(100)
	memReads := f.mem.D.Stats.Reads
	res, _ := read(t, f, a, 100)
	if !res.FromL4 {
		t.Fatal("expected hit")
	}
	if f.mem.D.Stats.Reads != memReads+1 {
		t.Fatal("mispredicted hit should waste one parallel memory read")
	}
}

func TestAlloyInclusive(t *testing.T) {
	f := newFixture()
	backInv := []uint64{}
	hooks := Hooks{OnBackInvalidate: func(l uint64) bool {
		backInv = append(backInv, l)
		return true // on-chip copy was dirty
	}}
	bab := core.NewBAB(1.0, 1024, 1)
	bab.Naive = true
	a := NewAlloy("incl", 56, f.l4, f.mem, hooks, AlloyOpts{Inclusive: true, BAB: bab})
	// Inclusive caches must not bypass, even with an aggressive policy.
	res, _ := read(t, f, a, 100)
	if !res.InL4 {
		t.Fatal("inclusive design bypassed a fill")
	}
	// Writebacks need no probe under inclusion.
	a.Writeback(f.q.Now(), 0, 100, core.PresUnknown)
	f.drain()
	st := a.Stats()
	if st.Bytes[stats.WBProbe] != 0 || st.Bytes[stats.WBUpdate] != 80 {
		t.Fatalf("inclusive wb bytes = %v", st.Bytes)
	}
	// Eviction back-invalidates, and the dirty on-chip copy reaches memory.
	memWrites := f.mem.D.Stats.Writes
	read(t, f, a, 156)
	if len(backInv) != 1 || backInv[0] != 100 {
		t.Fatalf("back-invalidates = %v", backInv)
	}
	if f.mem.D.Stats.Writes == memWrites {
		t.Fatal("dirty back-invalidated line never reached memory")
	}
}

func TestBWOptIdealBloat(t *testing.T) {
	f := newFixture()
	a := newAlloy(f, AlloyOpts{Ideal: true})
	read(t, f, a, 100) // miss: free fill
	read(t, f, a, 100) // hit: 64 B
	a.Writeback(f.q.Now(), 0, 100, core.PresUnknown)
	f.drain()
	st := a.Stats()
	if st.BloatFactor() != 1.0 {
		t.Fatalf("BW-Opt bloat = %v, want exactly 1 (%v)", st.BloatFactor(), st.Bytes)
	}
	if st.Bytes[stats.HitProbe] != 64 {
		t.Fatalf("BW-Opt hit bytes = %v", st.Bytes)
	}
}

func TestAlloyLatencySerializedVsParallel(t *testing.T) {
	// A predicted hit that misses pays probe + memory serially; a
	// predicted miss overlaps them.
	lat := func(train bool) uint64 {
		f := newFixture()
		mapi := NewMAPI(1, 64)
		a := newAlloy(f, AlloyOpts{Predictor: mapi})
		if train {
			for i := 0; i < 8; i++ {
				mapi.Update(0, 0x400, false)
			}
		}
		_, at := read(t, f, a, 100)
		return at
	}
	serial := lat(false)  // predicts hit -> serialised
	parallel := lat(true) // predicts miss -> parallel
	if parallel >= serial {
		t.Fatalf("parallel path (%d) not faster than serialised (%d)", parallel, serial)
	}
}

func TestMAPILearning(t *testing.T) {
	p := NewMAPI(2, 64)
	pc := uint64(0x1234)
	for i := 0; i < 10; i++ {
		p.Update(0, pc, false)
	}
	if p.Predict(0, pc) {
		t.Fatal("predictor did not learn misses")
	}
	// Other core's table is independent.
	if !p.Predict(1, pc) {
		t.Fatal("per-core tables not isolated")
	}
	for i := 0; i < 10; i++ {
		p.Update(0, pc, true)
	}
	if !p.Predict(0, pc) {
		t.Fatal("predictor did not re-learn hits")
	}
	if p.Accuracy() <= 0 || p.Accuracy() > 1 {
		t.Fatalf("accuracy = %v", p.Accuracy())
	}
}

func TestMainMemoryMappingSpread(t *testing.T) {
	f := newFixture()
	// Consecutive lines should alternate channels (1 channel in fixture,
	// so use a wider config here).
	m := NewMainMemory(dram.New("m2", config.DRAM{
		Channels: 2, Banks: 8, BytesPerCycle: 4, RowBytes: 2048,
		TCAS: 1, TRCD: 1, TRP: 1, TRAS: 4, WriteQHi: 8, WriteQLo: 4,
	}, f.q))
	ch0, _, _ := m.locate(0)
	ch1, _, _ := m.locate(1)
	if ch0 == ch1 {
		t.Fatal("consecutive lines mapped to the same channel")
	}
	// Lines within a channel share rows for a while (stream locality).
	_, bk0, r0 := m.locate(0)
	_, bk2, r2 := m.locate(2)
	if bk0 != bk2 || r0 != r2 {
		t.Fatal("near lines did not share a row")
	}
}

func TestNoL4Passthrough(t *testing.T) {
	f := newFixture()
	n := NewNoL4(f.mem)
	res, _ := read(t, f, n, 42)
	if res.FromL4 || res.InL4 {
		t.Fatalf("NoL4 result = %+v", res)
	}
	if n.Stats().ReadMisses != 1 {
		t.Fatal("NoL4 miss not counted")
	}
	n.Writeback(f.q.Now(), 0, 42, core.PresUnknown)
	f.drain()
	if f.mem.D.Stats.Writes != 1 {
		t.Fatal("NoL4 writeback lost")
	}
	if n.Contains(42) {
		t.Fatal("NoL4 contains nothing")
	}
}

func TestBuildAllDesigns(t *testing.T) {
	for _, d := range []config.Design{
		config.NoL4, config.Alloy, config.BEAR, config.BWOpt,
		config.LohHill, config.MostlyClean, config.InclAlloy,
		config.TIS, config.Sector,
	} {
		q := &event.Queue{}
		cfg := config.Default(256).WithDesign(d)
		b, err := Build(cfg, q, Hooks{})
		if err != nil {
			t.Fatalf("Build(%v): %v", d, err)
		}
		if b.Cache == nil || b.MemDRAM == nil {
			t.Fatalf("Build(%v) returned incomplete bundle", d)
		}
		if d == config.BEAR && (b.BAB == nil || b.NTC == nil) {
			t.Fatal("BEAR bundle missing policy components")
		}
		if d == config.NoL4 && b.L4DRAM != nil {
			t.Fatal("NoL4 bundle has an L4 DRAM")
		}
	}
}
