package dramcache

// MAPI is the Memory Access Predictor, Instruction-based (MAP-I) from the
// Alloy-cache paper, which the BEAR baseline adopts: per-core tables of
// 3-bit saturating counters indexed by a hash of the missing load's
// instruction address. A counter >= the midpoint predicts an L4 hit (probe
// first, serial memory access); below it predicts a miss (probe and access
// memory in parallel).
type MAPI struct {
	tables  [][]uint8
	entries uint64

	// Correct / incorrect predictions, for diagnostics.
	Right, Wrong uint64
}

// NewMAPI builds per-core predictor tables with the given entry count
// (256 3-bit counters per core in the Alloy paper).
func NewMAPI(cores, entries int) *MAPI {
	p := &MAPI{entries: uint64(entries)}
	p.tables = make([][]uint8, cores)
	for i := range p.tables {
		t := make([]uint8, entries)
		for j := range t {
			t[j] = 5 // bias toward predicting hit, avoiding wasted memory traffic
		}
		p.tables[i] = t
	}
	return p
}

func (p *MAPI) index(pc uint64) uint64 {
	return ((pc >> 2) ^ (pc >> 11)) % p.entries
}

// Predict returns true if the access is predicted to hit in the DRAM cache.
func (p *MAPI) Predict(coreID int, pc uint64) bool {
	if coreID >= len(p.tables) {
		coreID = 0
	}
	return p.tables[coreID][p.index(pc)] >= 4
}

// Update trains the predictor with the access's actual outcome and records
// accuracy against the prediction that was just made.
func (p *MAPI) Update(coreID int, pc uint64, hit bool) {
	if coreID >= len(p.tables) {
		coreID = 0
	}
	c := &p.tables[coreID][p.index(pc)]
	predictedHit := *c >= 4
	if predictedHit == hit {
		p.Right++
	} else {
		p.Wrong++
	}
	if hit {
		if *c < 7 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
}

// Accuracy returns the fraction of correct predictions.
func (p *MAPI) Accuracy() float64 {
	t := p.Right + p.Wrong
	if t == 0 {
		return 0
	}
	return float64(p.Right) / float64(t)
}
