// Package dramcache implements the gigascale DRAM-cache (L4) architectures
// the paper evaluates: the Alloy cache baseline (with the MAP-I predictor),
// the BEAR-enhanced Alloy cache, the idealised Bandwidth-Optimized cache,
// the inclusive Alloy variant, the Loh-Hill and Mostly-Clean tags-in-DRAM
// designs, and the Tags-In-SRAM and Sector-Cache alternatives of Section 8.
//
// Designs are functional-at-issue: tag state, replacement and policy
// decisions update synchronously when a request is handed to the design,
// while all bandwidth and latency effects are modelled through timed
// transactions on the internal/dram subsystems. This keeps the functional
// state single-threaded and deterministic while the timing model carries
// the contention the paper studies.
package dramcache

import (
	"math/bits"

	"bear/internal/core"
	"bear/internal/dram"
	"bear/internal/event"
	"bear/internal/stats"
)

// ReadResult is delivered to the hierarchy when an L4 read completes.
type ReadResult struct {
	// FromL4 reports whether the line was serviced by the DRAM cache.
	FromL4 bool
	// InL4 reports whether the line is resident in the DRAM cache after
	// the access (it was a hit, or the miss filled it). The hierarchy uses
	// this to set the DCP bit on the LLC fill.
	InL4 bool
}

// Hooks are upcalls from the L4 design into the on-chip hierarchy.
type Hooks struct {
	// OnEvict fires when a line leaves the DRAM cache; the hierarchy
	// clears the line's DCP bit (the paper's "conveyed like inclusive
	// flow, but updates the bit instead of invalidating").
	OnEvict func(line uint64)
	// OnBackInvalidate fires for inclusive designs when a line leaves the
	// DRAM cache; the hierarchy must invalidate every on-chip copy and
	// report whether one of them was dirty (so the design can forward the
	// data to main memory).
	OnBackInvalidate func(line uint64) (wasDirty bool)
}

// Cache is an L4 DRAM-cache design.
type Cache interface {
	Name() string
	// Read services an LLC read miss for a line address. done is invoked
	// exactly once, from the event queue, when data is available.
	Read(now uint64, coreID int, line, pc uint64, done func(now uint64, res ReadResult))
	// Writeback services a dirty LLC eviction. pres carries the DCP
	// answer when the hierarchy maintains one (PresUnknown otherwise).
	Writeback(now uint64, coreID int, line uint64, pres core.Presence)
	// Contains reports functional residency (tests, invariant checks).
	Contains(line uint64) bool
	// Install functionally pre-loads a clean line, consuming no bandwidth
	// and no simulated time. Simulations use it to pre-warm the gigascale
	// cache to steady-state residency before timing begins (the SimPoint
	// functional-warming step of the paper's methodology).
	Install(line uint64)
	Stats() *stats.L4
	// OutstandingTxns reports in-flight transactions; it must return zero
	// once the event queue has drained (the pool-leak invariant).
	OutstandingTxns() int
}

// MainMemory adapts the DDR dram.Memory to line-address granularity with
// channel-interleaved mapping: consecutive lines alternate channels, and
// consecutive lines within a channel share rows (stream locality).
type MainMemory struct {
	D *dram.Memory

	channels    uint64
	banks       uint64
	linesPerRow uint64

	fwdFree *victimFwd // recycled victim-forwarding callbacks
}

// victimFwd is a pooled "read the victim's data, then write it to main
// memory" completion callback. Every design that recovers dirty victims from
// the DRAM-cache array (Loh-Hill, TIS, Sector, the MissMap's forced
// evictions, the page-grained designs' partial-page writebacks) uses one of
// these instead of a capturing closure, keeping the eviction path
// allocation-free.
type victimFwd struct {
	m    *MainMemory
	line uint64
	mask uint64     // dirty sub-block bits relative to line; 0 = line itself
	fn   event.Func // pre-bound f.complete
	next *victimFwd
}

func (f *victimFwd) complete(t uint64) {
	m, line, mask := f.m, f.line, f.mask
	m.putFwd(f)
	if mask == 0 {
		m.WriteLine(t, line)
		return
	}
	// Partial-block forward: one write per dirty sub-block, in ascending
	// line order (deterministic event sequence).
	for mask != 0 {
		off := uint64(bits.TrailingZeros64(mask))
		mask &^= 1 << off
		m.WriteLine(t, line+off)
	}
}

// VictimFwd returns a completion callback that writes a victim to main
// memory when its DRAM-cache recovery read finishes. mask == 0 forwards the
// single line at line; otherwise bit i of mask forwards line+i (a
// sub-blocked victim's dirty lines). The callback must be invoked exactly
// once (dram read completions guarantee this); it recycles itself.
func (m *MainMemory) VictimFwd(line, mask uint64) event.Func {
	f := m.fwdFree
	if f == nil {
		f = &victimFwd{m: m}
		f.fn = f.complete
	} else {
		m.fwdFree = f.next
		f.next = nil
	}
	f.line, f.mask = line, mask
	return f.fn
}

func (m *MainMemory) putFwd(f *victimFwd) {
	f.next = m.fwdFree
	m.fwdFree = f
}

// NewMainMemory wraps d (which must be the DDR main memory).
func NewMainMemory(d *dram.Memory) *MainMemory {
	cfg := d.Config()
	return &MainMemory{
		D:           d,
		channels:    uint64(cfg.Channels),
		banks:       uint64(cfg.Banks),
		linesPerRow: uint64(cfg.RowBytes / 64),
	}
}

func (m *MainMemory) locate(line uint64) (ch, bk int, row uint64) {
	ch = int(line % m.channels)
	rest := line / m.channels
	rowUnit := rest / m.linesPerRow
	bk = int(rowUnit % m.banks)
	row = rowUnit / m.banks
	return ch, bk, row
}

// ReadLine fetches one 64 B line; done may be nil for discarded (wasted
// parallel-access) reads.
func (m *MainMemory) ReadLine(now uint64, line uint64, done event.Func) {
	ch, bk, row := m.locate(line)
	m.D.Read(now, ch, bk, row, 64, done)
}

// WriteLine posts one 64 B line write.
func (m *MainMemory) WriteLine(now uint64, line uint64) {
	ch, bk, row := m.locate(line)
	m.D.Write(now, ch, bk, row, 64)
}

// ReadTail posts the background portion of a multi-line (page) fill: the
// sub-blocks beyond the demand line, bytes in total, streamed from the
// demand line's row. It has no completion — the demand line's own ReadLine
// gates the transaction; the tail only occupies main-memory bandwidth,
// which is exactly the fill bloat page-grained designs trade for.
func (m *MainMemory) ReadTail(now uint64, line uint64, bytes int) {
	ch, bk, row := m.locate(line)
	m.D.Read(now, ch, bk, row, bytes, nil)
}

// NoL4 is the "no DRAM cache" memory system: every LLC miss goes to main
// memory. It is the normalisation baseline of Figures 3 and 17, and the
// degenerate composition of the layered controller: no tag store, so every
// read passes through and every writeback forwards.
type NoL4 = Controller

// NewNoL4 builds the pass-through design.
func NewNoL4(mem *MainMemory) *NoL4 { return &Controller{name: "NoL4", mem: mem} }
