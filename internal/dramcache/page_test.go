package dramcache

import (
	"testing"

	"bear/internal/core"
	"bear/internal/stats"
)

// The page-grained behaviours the granularity layer adds: FBR admission
// gating, whole-page fill accounting (FillLines), partial-page writeback
// recovery (VictimDirtyMask), demand-line fills, and the tag-cache /
// tag-buffer probe economics of the Banshee and TicToc compositions.

// TestBansheeFBRAdmissionAndPageFill: a cold page is bypassed until its
// miss counter reaches the FBR threshold (2); admission then fills the
// whole page, charging FillLines x FillBytes of Miss-Fill bandwidth and
// making every line of the page resident.
func TestBansheeFBRAdmissionAndPageFill(t *testing.T) {
	f := newFixture()
	c := NewBanshee("banshee", 256, 8, 2, f.l4, f.mem, Hooks{})

	// First touch: one miss on the page, below threshold -> bypass.
	res, _ := read(t, f, c, 8)
	if res.FromL4 || res.InL4 {
		t.Fatalf("cold page must bypass, got %+v", res)
	}
	if got := c.Stats().Bytes[stats.MissFill]; got != 0 {
		t.Fatalf("bypassed miss charged %d fill bytes, want 0", got)
	}
	if c.Contains(8) {
		t.Fatal("bypassed line must not be resident")
	}

	// Second touch: counter reaches the threshold -> whole-page fill.
	res, _ = read(t, f, c, 8)
	if !res.InL4 {
		t.Fatalf("second miss must admit the page, got %+v", res)
	}
	if got, want := c.Stats().Bytes[stats.MissFill], uint64(8*64); got != want {
		t.Fatalf("page fill charged %d bytes, want %d (FillLines x FillBytes)", got, want)
	}
	for line := uint64(8); line < 16; line++ {
		if !c.Contains(line) {
			t.Fatalf("line %d of the admitted page must be resident", line)
		}
	}
	// The sibling line now hits without re-filling.
	res, _ = read(t, f, c, 13)
	if !res.FromL4 {
		t.Fatal("sibling line of an admitted page must hit")
	}
	if got, want := c.Stats().Bytes[stats.MissFill], uint64(8*64); got != want {
		t.Fatalf("hit re-charged fill bytes: %d, want %d", got, want)
	}
}

// TestBansheeDirtyProbeFlow: a writeback whose page mapping is not in the
// tag buffer pays the dirty-probe read; a buffered mapping settles on chip.
func TestBansheeDirtyProbeFlow(t *testing.T) {
	f := newFixture()
	c := NewBanshee("banshee", 256, 8, 2, f.l4, f.mem, Hooks{})

	// Cold page, unbuffered mapping: the writeback must probe, find the
	// page absent, and forward to memory.
	c.Writeback(f.q.Now(), 0, 200, core.PresUnknown)
	f.drain()
	if got := c.Stats().Bytes[stats.WBProbe]; got != 64 {
		t.Fatalf("unbuffered writeback charged %d probe bytes, want 64", got)
	}
	if got := c.Stats().WBMisses; got != 1 {
		t.Fatalf("WBMisses = %d, want 1", got)
	}

	// Admit a page (two misses); the fill's Sync deposits the mapping in
	// the tag buffer, so a subsequent writeback needs no probe.
	read(t, f, c, 8)
	read(t, f, c, 8)
	before := c.Stats().Bytes[stats.WBProbe]
	c.Writeback(f.q.Now(), 0, 9, core.PresUnknown)
	f.drain()
	if got := c.Stats().Bytes[stats.WBProbe]; got != before {
		t.Fatalf("buffered writeback probed (%d -> %d bytes), want none", before, got)
	}
	if got := c.Stats().WBHits; got != 1 {
		t.Fatalf("WBHits = %d, want 1", got)
	}
}

// TestTicTocDemandFill: a TicToc miss fills only the demand line into the
// page frame — 64 bytes of Miss-Fill — leaving sibling lines absent.
func TestTicTocDemandFill(t *testing.T) {
	f := newFixture()
	c := NewTicToc("tictoc", 128, 8, 2, f.l4, f.mem, Hooks{})

	res, _ := read(t, f, c, 8)
	if res.FromL4 || !res.InL4 {
		t.Fatalf("miss must fill the demand line, got %+v", res)
	}
	if got := c.Stats().Bytes[stats.MissFill]; got != 64 {
		t.Fatalf("demand fill charged %d bytes, want 64", got)
	}
	if !c.Contains(8) {
		t.Fatal("demand line must be resident")
	}
	for line := uint64(9); line < 16; line++ {
		if c.Contains(line) {
			t.Fatalf("sibling line %d must stay absent after a demand fill", line)
		}
	}
}

// TestTicTocTagCacheSkipsProbe: the first miss to a page pays the in-array
// tag check; while the mapping is tag-cached, further misses to the page
// resolve their tag check on chip and skip the probe.
func TestTicTocTagCacheSkipsProbe(t *testing.T) {
	f := newFixture()
	c := NewTicToc("tictoc", 128, 8, 2, f.l4, f.mem, Hooks{})

	read(t, f, c, 8)
	if got := c.Stats().Bytes[stats.MissProbe]; got != 64 {
		t.Fatalf("uncached miss charged %d probe bytes, want 64", got)
	}
	read(t, f, c, 9) // mapping now cached: miss, but no probe
	if got := c.Stats().Bytes[stats.MissProbe]; got != 64 {
		t.Fatalf("tag-cached miss re-probed (total %d bytes), want 64", got)
	}
	if got := c.Stats().NTCProbesSaved; got != 1 {
		t.Fatalf("ProbesSaved = %d, want 1", got)
	}
}

// TestPageVictimDirtyMask: evicting a page recovers exactly its dirty
// lines — VictimReadBytes scales by the dirty-mask popcount, not the page
// size.
func TestPageVictimDirtyMask(t *testing.T) {
	f := newFixture()
	// 16 pages of 8 lines, 2 ways -> 8 page sets.
	c := NewTicToc("tictoc", 128, 8, 2, f.l4, f.mem, Hooks{})

	// Build page 1 (lines 8..15) with three resident lines, two dirty.
	for _, line := range []uint64{8, 9, 10} {
		read(t, f, c, line)
	}
	c.Writeback(f.q.Now(), 0, 8, core.PresUnknown)
	c.Writeback(f.q.Now(), 0, 9, core.PresUnknown)
	f.drain()

	// Pages 9 and 17 share set 1 with page 1 (2 ways): the third distinct
	// page evicts the LRU page 1.
	read(t, f, c, 9*8)
	read(t, f, c, 17*8)
	if c.Contains(8) {
		t.Fatal("page 1 should have been evicted")
	}
	if got, want := c.Stats().Bytes[stats.VictimRead], uint64(2*64); got != want {
		t.Fatalf("victim recovery read %d bytes, want %d (2 dirty lines)", got, want)
	}
}
