package dramcache

import (
	"fmt"

	"bear/internal/config"
	"bear/internal/core"
	"bear/internal/dram"
	"bear/internal/event"
	"bear/internal/stats"
)

// AlloyOpts selects the policy configuration of the Alloy-family cache.
type AlloyOpts struct {
	// Ideal turns the design into the Bandwidth-Optimized cache: hits move
	// exactly 64 B and every secondary operation is performed logically
	// without consuming DRAM-cache bandwidth.
	Ideal bool
	// Inclusive enforces inclusion of the on-chip hierarchy: writeback
	// probes are unnecessary, fills may never bypass, and evictions
	// back-invalidate the on-chip caches.
	Inclusive bool
	// BAB, when non-nil, is the fill/bypass policy (BAB or naive PB).
	BAB *core.BAB
	// NTC, when non-nil, enables the Neighboring Tag Cache.
	NTC *core.NTC
	// Predictor, when non-nil, is the MAP-I hit/miss predictor.
	Predictor *MAPI
	// Pred selects between MAP-I, a perfect oracle, and a static
	// always-predict-hit policy (ablations).
	Pred config.PredMode
	// WBAllocate installs writeback misses instead of forwarding them to
	// memory (requires a probe first, to recover a dirty victim).
	WBAllocate bool
	// DBP, when non-nil, replaces BAB with a dead-block-predictor bypass
	// (Section 9.2's prior-work class; see core.DeadBlock).
	DBP *core.DeadBlock
	// TTC, when non-nil, is a temporal tag cache: it records the demand
	// set's tag on every access (Section 9.4's prior-work class),
	// complementing the NTC's spatial-only policy.
	TTC *core.NTC
}

// Alloy is the direct-mapped Tag-And-Data DRAM cache (Qureshi & Loh,
// MICRO 2012) with the BEAR-paper policy knobs. Each set is one 72 B TAD;
// 28 consecutive sets share a 2 KB row, and each 80 B access also carries
// the next set's tag (consumed by the NTC).
type Alloy struct {
	name string
	opts AlloyOpts

	sets       uint64
	setsPerRow uint64
	channels   uint64
	banks      uint64

	tag   []uint64
	valid []uint64 // bitset
	dirty []uint64 // bitset

	// Dead-block state (allocated when opts.DBP is set): the signature of
	// the fill that installed each line and whether it has been reused.
	sig    []uint16
	reused []uint64 // bitset

	l4    *dram.Memory
	mem   *MainMemory
	hooks Hooks
	st    stats.L4

	txnFree *alloyTxn // recycled per-access transaction pool
}

// alloyTxn carries one in-flight access's timing state. Transactions are
// pooled per cache with every completion callback pre-bound as a method
// value, so an L4 hit or miss allocates zero bytes in steady state — the
// per-access closures this replaces were the simulator's dominant GC load.
type alloyTxn struct {
	a      *Alloy
	now    uint64
	line   uint64
	ch, bk int
	row    uint64
	done   func(uint64, ReadResult)

	statusUpdate bool // hit path: in-DRAM reuse bit must be written back
	filled       bool // miss path: line was installed (fill on data arrival)
	hit          bool // writeback path: probe found the line
	victimLine   uint64
	victimValid  bool
	victimDirty  bool
	pendingBoth  int // parallel path: completions still outstanding

	fnHit, fnMissMem, fnBothProbe, fnBothMem    event.Func
	fnSerialProbe, fnSerialMem                  event.Func
	fnIdealHit, fnIdealMiss, fnWBProbe          event.Func
	next                                        *alloyTxn
}

func (a *Alloy) getTxn() *alloyTxn {
	x := a.txnFree
	if x == nil {
		x = &alloyTxn{a: a}
		x.fnHit = x.onHit
		x.fnMissMem = x.onMissMem
		x.fnBothProbe = x.onBothProbe
		x.fnBothMem = x.onBothMem
		x.fnSerialProbe = x.onSerialProbe
		x.fnSerialMem = x.onSerialMem
		x.fnIdealHit = x.onIdealHit
		x.fnIdealMiss = x.onIdealMiss
		x.fnWBProbe = x.onWBProbe
	} else {
		a.txnFree = x.next
		x.next = nil
	}
	x.statusUpdate, x.filled, x.hit = false, false, false
	x.victimValid, x.victimDirty = false, false
	x.pendingBoth = 0
	return x
}

func (a *Alloy) putTxn(x *alloyTxn) {
	x.done = nil
	x.next = a.txnFree
	a.txnFree = x
}

// onHit completes a hit's probe: the probe is the useful data transfer.
func (x *alloyTxn) onHit(t uint64) {
	a := x.a
	a.st.AddBytes(stats.HitProbe, 80)
	a.st.Hit(t - x.now)
	if x.statusUpdate {
		a.st.AddBytes(stats.ReplUpdate, 80)
		a.l4.Write(t, x.ch, x.bk, x.row, 80)
	}
	done := x.done
	a.putTxn(x)
	done(t, ReadResult{FromL4: true, InL4: true})
}

// fillAt charges the Miss Fill write (and the dirty victim's eviction to
// memory) when the data arrives from main memory.
func (x *alloyTxn) fillAt(t uint64) {
	if !x.filled {
		return
	}
	a := x.a
	a.st.Fills++
	a.st.AddBytes(stats.MissFill, 80)
	a.l4.Write(t, x.ch, x.bk, x.row, 80)
	if x.victimValid && x.victimDirty {
		a.mem.WriteLine(t, x.victimLine)
	}
}

// finish retires a miss and recycles the transaction.
func (x *alloyTxn) finish(t uint64) {
	a := x.a
	a.st.Miss(t - x.now)
	done, filled := x.done, x.filled
	a.putTxn(x)
	done(t, ReadResult{FromL4: false, InL4: filled})
}

// onMissMem completes the probe-skipped miss (memory only).
func (x *alloyTxn) onMissMem(t uint64) {
	x.fillAt(t)
	x.finish(t)
}

// both gates the parallel path: probe and memory proceed concurrently; data
// is usable when both the miss is confirmed and the line has arrived. Events
// fire in time order, so the second completion carries max(Tp, Tm).
func (x *alloyTxn) both(t uint64) {
	x.pendingBoth--
	if x.pendingBoth == 0 {
		x.finish(t)
	}
}

func (x *alloyTxn) onBothProbe(t uint64) {
	x.a.st.AddBytes(stats.MissProbe, 80)
	x.both(t)
}

func (x *alloyTxn) onBothMem(t uint64) {
	x.fillAt(t)
	x.both(t)
}

// onSerialProbe is the predicted-hit miss: memory starts only after the
// probe detects the miss (the serialisation penalty MAP-I exists to avoid).
func (x *alloyTxn) onSerialProbe(t uint64) {
	x.a.st.AddBytes(stats.MissProbe, 80)
	x.a.mem.ReadLine(t, x.line, x.fnSerialMem)
}

func (x *alloyTxn) onSerialMem(t uint64) {
	x.fillAt(t)
	x.finish(t)
}

// onIdealHit/onIdealMiss are the BW-Optimized completions (64 B hits, all
// secondary operations logical).
func (x *alloyTxn) onIdealHit(t uint64) {
	a := x.a
	a.st.AddBytes(stats.HitProbe, 64)
	a.st.Hit(t - x.now)
	done := x.done
	a.putTxn(x)
	done(t, ReadResult{FromL4: true, InL4: true})
}

func (x *alloyTxn) onIdealMiss(t uint64) {
	a := x.a
	a.st.Miss(t - x.now)
	done := x.done
	a.putTxn(x)
	done(t, ReadResult{FromL4: false, InL4: true})
}

// onWBProbe resolves a writeback whose presence was unknown: the probe has
// completed and the update, fill or memory forward follows.
func (x *alloyTxn) onWBProbe(t uint64) {
	a := x.a
	a.st.AddBytes(stats.WBProbe, 80)
	switch {
	case x.hit:
		a.st.WBHits++
		a.st.AddBytes(stats.WBUpdate, 80)
		a.l4.Write(t, x.ch, x.bk, x.row, 80)
	case a.opts.WBAllocate:
		a.st.WBMisses++
		a.st.AddBytes(stats.WBFill, 80)
		a.l4.Write(t, x.ch, x.bk, x.row, 80)
		if x.victimValid && x.victimDirty {
			a.mem.WriteLine(t, x.victimLine)
		}
	default:
		a.st.WBMisses++
		a.mem.WriteLine(t, x.line)
	}
	a.putTxn(x)
}

// NewAlloy builds an Alloy-family cache with the given set count over the
// stacked-DRAM l4 and main memory mem.
func NewAlloy(name string, sets uint64, l4 *dram.Memory, mem *MainMemory, hooks Hooks, opts AlloyOpts) *Alloy {
	if sets == 0 {
		panic("dramcache: alloy with zero sets")
	}
	cfg := l4.Config()
	a := &Alloy{
		name:       name,
		opts:       opts,
		sets:       sets,
		setsPerRow: 28,
		channels:   uint64(cfg.Channels),
		banks:      uint64(cfg.Banks),
		tag:        make([]uint64, sets),
		valid:      make([]uint64, (sets+63)/64),
		dirty:      make([]uint64, (sets+63)/64),
		l4:         l4,
		mem:        mem,
		hooks:      hooks,
	}
	if opts.DBP != nil {
		a.sig = make([]uint16, sets)
		a.reused = make([]uint64, (sets+63)/64)
	}
	return a
}

// Name implements Cache.
func (a *Alloy) Name() string { return a.name }

// Stats implements Cache.
func (a *Alloy) Stats() *stats.L4 { return &a.st }

// Sets returns the set count (tests).
func (a *Alloy) Sets() uint64 { return a.sets }

func (a *Alloy) isValid(set uint64) bool { return a.valid[set/64]&(1<<(set%64)) != 0 }
func (a *Alloy) isDirty(set uint64) bool { return a.dirty[set/64]&(1<<(set%64)) != 0 }
func (a *Alloy) setValid(set uint64, v bool) {
	if v {
		a.valid[set/64] |= 1 << (set % 64)
	} else {
		a.valid[set/64] &^= 1 << (set % 64)
	}
}
func (a *Alloy) setDirty(set uint64, v bool) {
	if v {
		a.dirty[set/64] |= 1 << (set % 64)
	} else {
		a.dirty[set/64] &^= 1 << (set % 64)
	}
}

// locate maps a set to its DRAM coordinates. Consecutive sets share a row;
// consecutive rows rotate across channels, then banks.
func (a *Alloy) locate(set uint64) (ch, bk int, row uint64, globalBank int) {
	rowUnit := set / a.setsPerRow
	ch = int(rowUnit % a.channels)
	rest := rowUnit / a.channels
	bk = int(rest % a.banks)
	row = rest / a.banks
	return ch, bk, row, ch*int(a.banks) + bk
}

// Contains implements Cache.
func (a *Alloy) Contains(line uint64) bool {
	set := line % a.sets
	return a.isValid(set) && a.tag[set] == line
}

// Install implements Cache: a free functional fill used for pre-warming.
func (a *Alloy) Install(line uint64) {
	set := line % a.sets
	a.tag[set] = line
	a.setValid(set, true)
	a.setDirty(set, false)
}

// depositNeighbor records the next set's tag in the NTC, mirroring the
// extra 8 B every 80 B burst carries. The last TAD of a row has no
// neighbour in the burst.
func (a *Alloy) depositNeighbor(globalBank int, set uint64) {
	if a.opts.NTC == nil {
		return
	}
	if set%a.setsPerRow == a.setsPerRow-1 {
		return
	}
	n := set + 1
	if n >= a.sets {
		return
	}
	a.opts.NTC.Deposit(globalBank, n, a.isValid(n), a.tag[n], a.isDirty(n))
}

func (a *Alloy) syncNTC(globalBank int, set uint64) {
	if a.opts.NTC != nil {
		a.opts.NTC.Sync(globalBank, set, a.isValid(set), a.tag[set], a.isDirty(set))
	}
	if a.opts.TTC != nil {
		a.opts.TTC.Sync(globalBank, set, a.isValid(set), a.tag[set], a.isDirty(set))
	}
}

// depositDemand records the accessed set's own tag in the temporal tag
// cache (every probe reads it anyway).
func (a *Alloy) depositDemand(globalBank int, set uint64) {
	if a.opts.TTC == nil {
		return
	}
	a.opts.TTC.Deposit(globalBank, set, a.isValid(set), a.tag[set], a.isDirty(set))
}

func (a *Alloy) isReused(set uint64) bool { return a.reused[set/64]&(1<<(set%64)) != 0 }
func (a *Alloy) setReused(set uint64, v bool) {
	if v {
		a.reused[set/64] |= 1 << (set % 64)
	} else {
		a.reused[set/64] &^= 1 << (set % 64)
	}
}

// Read implements Cache. See the package comment for the functional-at-
// issue convention: tag state and policy decisions are resolved here, and
// timed DRAM transactions deliver bandwidth/latency effects.
func (a *Alloy) Read(now uint64, coreID int, line, pc uint64, done func(uint64, ReadResult)) {
	set := line % a.sets
	hit := a.isValid(set) && a.tag[set] == line
	ch, bk, row, gb := a.locate(set)

	if a.opts.Ideal {
		a.readIdeal(now, set, line, hit, ch, bk, row, done)
		return
	}

	if a.opts.BAB != nil {
		a.opts.BAB.RecordAccess(set, !hit)
	}

	// NTC consultation: a known answer either guarantees a hit (so a
	// mispredicted parallel memory access can be squashed) or guarantees a
	// miss (so the probe can be skipped when the resident line is clean).
	var ntcKnown, ntcPresent, skipProbe bool
	for _, tc := range []*core.NTC{a.opts.NTC, a.opts.TTC} {
		if tc == nil || ntcKnown {
			continue
		}
		ans := tc.Lookup(gb, set, line)
		if ans.Known {
			ntcKnown, ntcPresent = true, ans.Present
			if !ans.Present && (!ans.HasLine || !ans.LineDirty) {
				skipProbe = true
			}
		}
	}

	predHit := true
	switch {
	case a.opts.Pred == config.PredPerfect:
		predHit = hit
	case a.opts.Pred == config.PredAlwaysHit:
		predHit = true
	case a.opts.Predictor != nil:
		predHit = a.opts.Predictor.Predict(coreID, pc)
		a.opts.Predictor.Update(coreID, pc, hit)
	}

	if hit {
		// The probe is the useful data transfer.
		a.depositNeighbor(gb, set)
		a.depositDemand(gb, set)
		x := a.getTxn()
		x.now, x.ch, x.bk, x.row, x.done = now, ch, bk, row, done
		if a.opts.DBP != nil && !a.isReused(set) {
			// First reuse: the in-DRAM reuse bit must be updated — the
			// extra access Section 9.2 charges against dead-block schemes.
			a.setReused(set, true)
			x.statusUpdate = true
		}
		a.l4.Read(now, ch, bk, row, 80, x.fnHit)
		if !predHit {
			if ntcKnown && ntcPresent {
				// NTC guarantees the hit: squash the wasteful parallel
				// memory access MAP-I would have issued.
				a.st.NTCParallelSqsh++
			} else {
				a.mem.ReadLine(now, line, nil) // wasted parallel access
			}
		}
		return
	}

	// --- Miss path. ---
	// The memory access may start immediately when the miss is known or
	// predicted; a predicted hit serialises memory behind the probe.
	parallel := !predHit || skipProbe || (ntcKnown && !ntcPresent)
	if skipProbe {
		a.st.NTCProbesSaved++
	}

	// Fill / bypass decision (functional state updates immediately).
	bypass := false
	switch {
	case a.opts.Inclusive:
	case a.opts.BAB != nil:
		bypass = a.opts.BAB.ShouldBypass(set)
	case a.opts.DBP != nil:
		bypass = a.opts.DBP.PredictDead(a.opts.DBP.Signature(pc))
	}
	var victimLine uint64
	victimValid, victimDirty := false, false
	if !bypass {
		victimValid = a.isValid(set)
		if victimValid {
			victimLine = a.tag[set]
			victimDirty = a.isDirty(set)
			if a.opts.Inclusive {
				if a.hooks.OnBackInvalidate != nil && a.hooks.OnBackInvalidate(victimLine) {
					victimDirty = true // on-chip copy was dirty; forward it
				}
			} else if a.hooks.OnEvict != nil {
				a.hooks.OnEvict(victimLine)
			}
			if a.opts.DBP != nil {
				a.opts.DBP.Train(a.sig[set], a.isReused(set))
			}
		}
		a.tag[set] = line
		a.setValid(set, true)
		a.setDirty(set, false)
		if a.opts.DBP != nil {
			a.sig[set] = a.opts.DBP.Signature(pc)
			a.setReused(set, false)
		}
		a.syncNTC(gb, set)
	} else {
		a.st.Bypasses++
	}

	if !skipProbe {
		a.depositNeighbor(gb, set)
		a.depositDemand(gb, set)
	}

	x := a.getTxn()
	x.now, x.line, x.ch, x.bk, x.row, x.done = now, line, ch, bk, row, done
	x.filled = !bypass
	x.victimLine, x.victimValid, x.victimDirty = victimLine, victimValid, victimDirty

	switch {
	case skipProbe:
		a.mem.ReadLine(now, line, x.fnMissMem)
	case parallel:
		x.pendingBoth = 2
		a.l4.Read(now, ch, bk, row, 80, x.fnBothProbe)
		a.mem.ReadLine(now, line, x.fnBothMem)
	default:
		a.l4.Read(now, ch, bk, row, 80, x.fnSerialProbe)
	}
}

// readIdeal is the BW-Optimized path: hits read 64 B; all secondary
// operations are logical. Main-memory traffic (the demand fetch and dirty
// victims) is still modelled, since BW-Opt idealises only the L4 bus.
func (a *Alloy) readIdeal(now uint64, set, line uint64, hit bool, ch, bk int, row uint64, done func(uint64, ReadResult)) {
	if hit {
		x := a.getTxn()
		x.now, x.done = now, done
		a.l4.Read(now, ch, bk, row, 64, x.fnIdealHit)
		return
	}
	if a.isValid(set) {
		victim := a.tag[set]
		if a.hooks.OnEvict != nil {
			a.hooks.OnEvict(victim)
		}
		if a.isDirty(set) {
			a.mem.WriteLine(now, victim)
		}
	}
	a.tag[set] = line
	a.setValid(set, true)
	a.setDirty(set, false)
	a.st.Fills++
	x := a.getTxn()
	x.now, x.done = now, done
	a.mem.ReadLine(now, line, x.fnIdealMiss)
}

// Writeback implements Cache.
func (a *Alloy) Writeback(now uint64, coreID int, line uint64, pres core.Presence) {
	set := line % a.sets
	hit := a.isValid(set) && a.tag[set] == line
	ch, bk, row, gb := a.locate(set)

	if a.opts.Ideal {
		if hit {
			a.setDirty(set, true)
			a.st.WBHits++
		} else {
			a.st.WBMisses++
			a.mem.WriteLine(now, line)
		}
		return
	}

	// Inclusion or a set DCP bit guarantees presence: update directly.
	if (a.opts.Inclusive || pres == core.PresPresent) && hit {
		if pres == core.PresPresent {
			a.st.DCPProbesSaved++
		}
		a.st.WBHits++
		a.setDirty(set, true)
		a.syncNTC(gb, set)
		a.st.AddBytes(stats.WBUpdate, 80)
		a.l4.Write(now, ch, bk, row, 80)
		return
	}
	// A clear DCP bit guarantees absence: under writeback-no-allocate the
	// data goes straight to main memory, with neither probe nor fill.
	// Under writeback-allocate a probe is still required before the fill,
	// to recover a possibly-dirty victim (Section 5.2).
	if pres == core.PresAbsent && !hit && !a.opts.WBAllocate {
		a.st.DCPProbesSaved++
		a.st.WBMisses++
		a.mem.WriteLine(now, line)
		return
	}

	// Unknown (or a violated guarantee, handled conservatively): probe.
	a.depositNeighbor(gb, set)
	a.depositDemand(gb, set)
	var victimLine uint64
	victimValid, victimDirty := false, false
	if hit {
		a.setDirty(set, true)
		a.syncNTC(gb, set)
	} else if a.opts.WBAllocate {
		// Writeback Fill: install the dirty line now (functional), pay
		// for it when the probe completes.
		victimValid = a.isValid(set)
		if victimValid {
			victimLine = a.tag[set]
			victimDirty = a.isDirty(set)
			if a.hooks.OnEvict != nil {
				a.hooks.OnEvict(victimLine)
			}
		}
		a.tag[set] = line
		a.setValid(set, true)
		a.setDirty(set, true)
		a.syncNTC(gb, set)
	}
	x := a.getTxn()
	x.line, x.ch, x.bk, x.row = line, ch, bk, row
	x.hit = hit
	x.victimLine, x.victimValid, x.victimDirty = victimLine, victimValid, victimDirty
	a.l4.Read(now, ch, bk, row, 80, x.fnWBProbe)
}

var _ Cache = (*Alloy)(nil)

func (a *Alloy) String() string {
	return fmt.Sprintf("%s(sets=%d)", a.name, a.sets)
}
