package dramcache

import (
	"bear/internal/config"
	"bear/internal/core"
	"bear/internal/dram"
	"bear/internal/fault"
)

// AlloyOpts selects the policy configuration of the Alloy-family cache.
type AlloyOpts struct {
	// Ideal turns the design into the Bandwidth-Optimized cache: hits move
	// exactly 64 B and every secondary operation is performed logically
	// without consuming DRAM-cache bandwidth.
	Ideal bool
	// Inclusive enforces inclusion of the on-chip hierarchy: writeback
	// probes are unnecessary, fills may never bypass, and evictions
	// back-invalidate the on-chip caches.
	Inclusive bool
	// BAB, when non-nil, is the fill/bypass policy (BAB or naive PB).
	BAB *core.BAB
	// NTC, when non-nil, enables the Neighboring Tag Cache.
	NTC *core.NTC
	// Predictor, when non-nil, is the MAP-I hit/miss predictor.
	Predictor *MAPI
	// Pred selects between MAP-I, a perfect oracle, and a static
	// always-predict-hit policy (ablations).
	Pred config.PredMode
	// WBAllocate installs writeback misses instead of forwarding them to
	// memory (requires a probe first, to recover a dirty victim).
	WBAllocate bool
	// DBP, when non-nil, replaces BAB with a dead-block-predictor bypass
	// (Section 9.2's prior-work class; see core.DeadBlock).
	DBP *core.DeadBlock
	// UpdateBypass selects the sampled update-bypass variant of the
	// dead-block policy (Young & Qureshi-style; requires DBP). See
	// updbypass.go.
	UpdateBypass bool
	// TTC, when non-nil, is a temporal tag cache: it records the demand
	// set's tag on every access (Section 9.4's prior-work class),
	// complementing the NTC's spatial-only policy.
	TTC *core.NTC
}

// Alloy is the direct-mapped Tag-And-Data DRAM cache (Qureshi & Loh,
// MICRO 2012) with the BEAR-paper policy knobs, expressed as a Controller
// over tadTags. Each set is one 72 B TAD; 28 consecutive sets share a 2 KB
// row, and each 80 B access also carries the next set's tag (consumed by
// the NTC).
type Alloy = Controller

// tadTags is the direct-mapped Tag-And-Data store: one line per set, tags
// resident in the DRAM array itself (so probes are bus transfers, charged
// by the Controller's Layout).
type tadTags struct {
	c *Controller

	sets       uint64
	setsPerRow uint64
	channels   uint64
	banks      uint64

	tag   []uint64
	valid []uint64 // bitset
	dirty []uint64 // bitset

	inclusive bool
}

func (t *tadTags) isValid(set uint64) bool { return t.valid[set/64]&(1<<(set%64)) != 0 }
func (t *tadTags) isDirty(set uint64) bool { return t.dirty[set/64]&(1<<(set%64)) != 0 }
func (t *tadTags) setValid(set uint64, v bool) {
	if v {
		t.valid[set/64] |= 1 << (set % 64)
	} else {
		t.valid[set/64] &^= 1 << (set % 64)
	}
}
func (t *tadTags) setDirty(set uint64, v bool) {
	if v {
		t.dirty[set/64] |= 1 << (set % 64)
	} else {
		t.dirty[set/64] &^= 1 << (set % 64)
	}
}

// locate maps a set to its DRAM coordinates. Consecutive sets share a row;
// consecutive rows rotate across channels, then banks.
func (t *tadTags) locate(set uint64) (Location, int) {
	rowUnit := set / t.setsPerRow
	ch := int(rowUnit % t.channels)
	rest := rowUnit / t.channels
	bk := int(rest % t.banks)
	row := rest / t.banks
	return Location{Ch: ch, Bk: bk, Row: row}, ch*int(t.banks) + bk
}

// Lookup implements TagStore.
func (t *tadTags) Lookup(_ uint64, line uint64) Probe {
	set := line % t.sets
	loc, _ := t.locate(set)
	return Probe{Hit: t.isValid(set) && t.tag[set] == line, Loc: loc, Set: set, Block: line}
}

// Touch implements TagStore (direct-mapped: no replacement state).
func (t *tadTags) Touch(uint64) {}

// Fill implements TagStore: evict (back-invalidating under inclusion),
// install clean.
func (t *tadTags) Fill(_ uint64, line, _ uint64, _ bool) FillResult {
	set := line % t.sets
	loc, _ := t.locate(set)
	fr := FillResult{Loc: loc}
	if t.isValid(set) {
		fr.VictimLine = t.tag[set]
		fr.VictimValid = true
		fr.VictimDirty = t.isDirty(set)
		if t.inclusive {
			if h := t.c.hooks.OnBackInvalidate; h != nil && h(fr.VictimLine) {
				fr.VictimDirty = true // on-chip copy was dirty; forward it
			}
		} else if h := t.c.hooks.OnEvict; h != nil {
			h(fr.VictimLine)
		}
	}
	t.tag[set] = line
	t.setValid(set, true)
	t.setDirty(set, false)
	return fr
}

// WritebackHit implements TagStore.
func (t *tadTags) WritebackHit(line uint64) { t.setDirty(line%t.sets, true) }

// WritebackFill implements TagStore: evict, install dirty.
func (t *tadTags) WritebackFill(_ uint64, line uint64) FillResult {
	set := line % t.sets
	loc, _ := t.locate(set)
	fr := FillResult{Loc: loc}
	if t.isValid(set) {
		fr.VictimLine = t.tag[set]
		fr.VictimValid = true
		fr.VictimDirty = t.isDirty(set)
		if h := t.c.hooks.OnEvict; h != nil {
			h(fr.VictimLine)
		}
	}
	t.tag[set] = line
	t.setValid(set, true)
	t.setDirty(set, true)
	return fr
}

// Contains implements TagStore.
func (t *tadTags) Contains(line uint64) bool {
	set := line % t.sets
	return t.isValid(set) && t.tag[set] == line
}

// Install implements TagStore.
func (t *tadTags) Install(line uint64) {
	set := line % t.sets
	t.tag[set] = line
	t.setValid(set, true)
	t.setDirty(set, false)
}

// ntcFilter is the NTC/TTC ProbeFilter over a TAD store. Every 80 B burst
// carries the next set's tag for free (a TAD is 72 B but the bus moves 16 B
// granules), which the NTC banks; the TTC additionally records the demand
// set's own tag.
type ntcFilter struct {
	t        *tadTags
	ntc, ttc *core.NTC
}

// Consult implements ProbeFilter: the first cache with a known answer wins.
// A known-absent answer skips the miss probe unless the resident line is
// dirty (the probe is then still needed to recover the victim's data).
func (f *ntcFilter) Consult(set, _, line uint64) (known, present, skipProbe bool) {
	_, gb := f.t.locate(set)
	for _, tc := range [2]*core.NTC{f.ntc, f.ttc} {
		if tc == nil || known {
			continue
		}
		ans := tc.Lookup(gb, set, line)
		if ans.Known {
			known, present = true, ans.Present
			if !ans.Present && (!ans.HasLine || !ans.LineDirty) {
				skipProbe = true
			}
		}
	}
	return known, present, skipProbe
}

// OnProbe implements ProbeFilter: deposit the neighbour tag the burst
// carried (NTC) and the demand set's own tag (TTC). The last TAD of a row
// has no neighbour in the burst.
func (f *ntcFilter) OnProbe(set, _ uint64) {
	_, gb := f.t.locate(set)
	if f.ntc != nil && set%f.t.setsPerRow != f.t.setsPerRow-1 {
		if n := set + 1; n < f.t.sets {
			f.ntc.Deposit(gb, n, f.t.isValid(n), f.t.tag[n], f.t.isDirty(n))
		}
	}
	if f.ttc != nil {
		f.ttc.Deposit(gb, set, f.t.isValid(set), f.t.tag[set], f.t.isDirty(set))
	}
}

// Sync implements ProbeFilter: keep entries coherent with a functional
// update to the set.
func (f *ntcFilter) Sync(set, _ uint64) {
	_, gb := f.t.locate(set)
	if f.ntc != nil {
		f.ntc.Sync(gb, set, f.t.isValid(set), f.t.tag[set], f.t.isDirty(set))
	}
	if f.ttc != nil {
		f.ttc.Sync(gb, set, f.t.isValid(set), f.t.tag[set], f.t.isDirty(set))
	}
}

// babFill adapts the Bandwidth-Aware Bypass monitor (or naive PB) as a
// FillPolicy.
type babFill struct{ b *core.BAB }

func (f babFill) RecordAccess(set, _ uint64, miss bool) { f.b.RecordAccess(set, miss) }
func (f babFill) ShouldBypass(set, _, _ uint64) bool    { return f.b.ShouldBypass(set) }
func (f babFill) OnHit(uint64) bool                     { return false }
func (f babFill) OnFill(uint64, uint64, uint64, bool)   {}
func (f babFill) InsertMRU(uint64) bool                 { return true }

// dbpFill is the sampling dead-block-predictor bypass (Section 9.2's
// prior-work class): fills whose PC signature predicts a dead block are
// bypassed, and each line's first reuse writes an in-DRAM status bit back —
// the extra access the paper charges against dead-block schemes.
type dbpFill struct {
	d      *core.DeadBlock
	sig    []uint16 // signature of the fill that installed each set's line
	reused []uint64 // bitset: the line has been reused since its fill
}

func newDBPFill(d *core.DeadBlock, sets uint64) *dbpFill {
	return &dbpFill{d: d, sig: make([]uint16, sets), reused: make([]uint64, (sets+63)/64)}
}

func (f *dbpFill) isReused(set uint64) bool { return f.reused[set/64]&(1<<(set%64)) != 0 }
func (f *dbpFill) setReused(set uint64, v bool) {
	if v {
		f.reused[set/64] |= 1 << (set % 64)
	} else {
		f.reused[set/64] &^= 1 << (set % 64)
	}
}

func (f *dbpFill) RecordAccess(uint64, uint64, bool) {}

func (f *dbpFill) ShouldBypass(_, _, pc uint64) bool {
	return f.d.PredictDead(f.d.Signature(pc))
}

// OnHit marks the first reuse, which must update the in-DRAM reuse bit.
func (f *dbpFill) OnHit(set uint64) bool {
	if f.isReused(set) {
		return false
	}
	f.setReused(set, true)
	return true
}

// OnFill trains the predictor with the victim's outcome and re-tags the set
// with the installing PC's signature.
func (f *dbpFill) OnFill(set, _, pc uint64, hadVictim bool) {
	if hadVictim {
		f.d.Train(f.sig[set], f.isReused(set))
	}
	f.sig[set] = f.d.Signature(pc)
	f.setReused(set, false)
}

func (f *dbpFill) InsertMRU(uint64) bool { return true }

// alloyWB is the Alloy-family WritebackPolicy: inclusion or a set DCP bit
// guarantees presence (update directly); a clear DCP bit under no-allocate
// guarantees absence (forward directly); everything else probes.
type alloyWB struct{ inclusive, allocate bool }

func (w alloyWB) NeedsProbe(_ uint64, hit bool, pres core.Presence) (probe, presKnown bool) {
	if (w.inclusive || pres == core.PresPresent) && hit {
		return false, pres == core.PresPresent
	}
	// Under writeback-allocate a probe is still required before the fill,
	// to recover a possibly-dirty victim (Section 5.2).
	if pres == core.PresAbsent && !hit && !w.allocate {
		return false, true
	}
	return true, false
}

func (w alloyWB) Allocate() bool { return w.allocate }

// Alloy-family transfer sizes (bytes): every operation on the TAD array
// moves one 80 B burst (tag + data), except the idealised BW-Opt cache.
var alloyLayout = Layout{
	Gran:           GranLine,
	HitBytes:       80,
	UpdateBytes:    80,
	MissProbeBytes: 80,
	FillBytes:      80,
	WBUpdateBytes:  80,
	WBProbeBytes:   80,
}

// bwOptLayout is the Bandwidth-Optimized ideal: hits move exactly 64 B and
// all secondary operations are logical (zero-byte fills settle victims at
// issue; writebacks update state for free).
var bwOptLayout = Layout{Gran: GranLine, HitBytes: 64}

// NewAlloy composes an Alloy-family cache with the given set count over the
// stacked-DRAM l4 and main memory mem.
func NewAlloy(name string, sets uint64, l4 *dram.Memory, mem *MainMemory, hooks Hooks, opts AlloyOpts) *Alloy {
	if sets == 0 {
		panic(fault.Invariantf("dramcache", "alloy with zero sets"))
	}
	cfg := l4.Config()
	c := &Controller{name: name, l4: l4, mem: mem, hooks: hooks}
	t := &tadTags{
		c:          c,
		sets:       sets,
		setsPerRow: 28,
		channels:   uint64(cfg.Channels),
		banks:      uint64(cfg.Banks),
		tag:        make([]uint64, sets),
		valid:      make([]uint64, (sets+63)/64),
		dirty:      make([]uint64, (sets+63)/64),
		inclusive:  opts.Inclusive,
	}
	c.tags = t

	if opts.Ideal {
		// BW-Opt idealises only the L4 bus: no predictor, filter or
		// bypass policy participates.
		c.lay = bwOptLayout
		c.wb = directWB{}
		return c
	}

	c.lay = alloyLayout
	c.wb = alloyWB{inclusive: opts.Inclusive, allocate: opts.WBAllocate}

	switch {
	case opts.Pred == config.PredPerfect:
		c.pred = oraclePred{}
	case opts.Pred == config.PredAlwaysHit:
		// No predictor: every miss serialises memory behind the probe.
	case opts.Predictor != nil:
		c.pred = mapiPred{opts.Predictor}
	}

	var fill FillPolicy
	switch {
	case opts.BAB != nil:
		fill = babFill{opts.BAB}
	case opts.DBP != nil && opts.UpdateBypass:
		fill = newUpdFill(opts.DBP, sets)
	case opts.DBP != nil:
		fill = newDBPFill(opts.DBP, sets)
	}
	if opts.Inclusive && fill != nil {
		// Inclusion forbids bypass but monitors still observe traffic.
		fill = noBypass{fill}
	}
	c.fill = fill

	if opts.NTC != nil || opts.TTC != nil {
		c.filter = &ntcFilter{t: t, ntc: opts.NTC, ttc: opts.TTC}
	}
	return c
}
