package dramcache

import (
	"testing"

	"bear/internal/core"
)

func TestMissMapBasic(t *testing.T) {
	mm := NewMissMap(64, 4, 64, nil)
	if mm.Present(100) {
		t.Fatal("empty missmap reports presence")
	}
	mm.Set(100)
	if !mm.Present(100) {
		t.Fatal("set line not present")
	}
	if mm.Present(101) {
		t.Fatal("neighbour line leaked presence")
	}
	mm.Set(101) // same segment
	if !mm.Present(100) || !mm.Present(101) {
		t.Fatal("segment sharing broken")
	}
	mm.Clear(100)
	if mm.Present(100) || !mm.Present(101) {
		t.Fatal("clear affected the wrong bit")
	}
	if mm.Count() != 1 {
		t.Fatalf("count = %d", mm.Count())
	}
}

func TestMissMapSegmentEviction(t *testing.T) {
	var evicted []uint64
	// 1 set x 2 ways: the third distinct segment evicts the LRU one.
	mm := NewMissMap(2, 2, 64, func(line uint64) { evicted = append(evicted, line) })
	mm.Set(0)   // segment 0
	mm.Set(1)   // segment 0
	mm.Set(64)  // segment 1
	mm.Set(0)   // refresh segment 0
	mm.Set(128) // segment 2: evicts segment 1
	if len(evicted) != 1 || evicted[0] != 64 {
		t.Fatalf("evicted lines = %v, want [64]", evicted)
	}
	if mm.Present(64) {
		t.Fatal("line of evicted segment still present")
	}
	if !mm.Present(0) || !mm.Present(1) || !mm.Present(128) {
		t.Fatal("survivor state wrong")
	}
	if mm.SegEvictions != 1 || mm.LinesEvicted != 1 {
		t.Fatalf("eviction stats: %d/%d", mm.SegEvictions, mm.LinesEvicted)
	}
}

func TestMissMapClearAbsentSegment(t *testing.T) {
	mm := NewMissMap(64, 4, 64, nil)
	mm.Clear(12345) // must not panic
}

func TestLHMissMapConsistency(t *testing.T) {
	// After arbitrary traffic, the MissMap and the tag array must agree.
	f := newFixture()
	l := newLH(f, LHOpts{MissMapLatency: 24})
	for i := uint64(0); i < 500; i++ {
		line := (i * 7919) % 4096
		if i%3 == 0 {
			l.Writeback(f.q.Now(), 0, line, core.PresUnknown)
		} else {
			read(t, f, l, line)
		}
	}
	f.drain()
	// Every line the tags hold must be present in the MissMap and vice
	// versa (checked through the public surface).
	lt := l.Tags().(*lhTags)
	for line := uint64(0); line < 4096; line++ {
		_, inTags := lt.tags.Lookup(line)
		inMM := lt.mm.Present(line)
		if inTags != inMM {
			t.Fatalf("line %d: tags=%v missmap=%v", line, inTags, inMM)
		}
	}
}

func TestLHMissMapForcedEvictionRecoversDirty(t *testing.T) {
	f := newFixture()
	// Tiny MissMap via a tiny cache: construct LH with few sets but force
	// the MissMap to a minimal size by using many distinct segments.
	l := newLH(f, LHOpts{MissMapLatency: 24})
	// Fill and dirty a line, then stream enough distinct segments to evict
	// its MissMap entry (64 segments minimum size; use way beyond that).
	read(t, f, l, 0)
	l.Writeback(f.q.Now(), 0, 0, core.PresUnknown)
	f.drain()
	memW := f.mem.D.Stats.Writes
	for i := uint64(1); i < 70; i++ {
		read(t, f, l, i*64) // one line per segment
	}
	f.drain()
	if l.Tags().(*lhTags).mm.SegEvictions == 0 {
		t.Skip("missmap larger than stream; nothing evicted")
	}
	if l.Contains(0) {
		t.Fatal("line survived its MissMap segment eviction")
	}
	if f.mem.D.Stats.Writes == memW {
		t.Fatal("dirty line lost during forced MissMap eviction")
	}
}
