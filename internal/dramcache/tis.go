package dramcache

import (
	"bear/internal/dram"
	"bear/internal/fault"
	"bear/internal/sram"
)

// TIS is the Tags-In-SRAM design of Section 8: an idealised on-chip SRAM
// holds all tags (64 MB at full scale, un-penalised for storage or access
// latency, per the paper's methodology) in front of a 32-way data store in
// stacked DRAM. Probes are free; only data movement touches the DRAM-cache
// bus, so hits move exactly 64 B — but Miss Fills, Writeback Updates and
// dirty-victim reads still bloat the bus.
type TIS = Controller

// sramTags is the tags-in-SRAM tag store: a set-associative sram.Cache
// answers presence instantly, and the (set, way) pair locates the line's
// data frame in the DRAM array.
type sramTags struct {
	c *Controller

	tags     *sram.Cache
	ways     uint64
	channels uint64
	banks    uint64
	lpr      uint64 // data lines per DRAM row
}

// locateFrame maps a (set, way) data frame to DRAM coordinates.
func (t *sramTags) locateFrame(set uint64, way int) Location {
	unit := (set*t.ways + uint64(way)) / t.lpr
	ch := int(unit % t.channels)
	rest := unit / t.channels
	bk := int(rest % t.banks)
	return Location{Ch: ch, Bk: bk, Row: rest / t.banks}
}

// Lookup implements TagStore.
func (t *sramTags) Lookup(_ uint64, line uint64) Probe {
	set := t.tags.SetIndex(line)
	if way, ok := t.tags.WayOf(line); ok {
		return Probe{Hit: true, Loc: t.locateFrame(set, way), Set: set, Block: line}
	}
	return Probe{Set: set, Block: line}
}

// Touch implements TagStore (LRU promotion on a demand hit).
func (t *sramTags) Touch(line uint64) { t.tags.Access(line, false) }

// Fill implements TagStore: tags answer instantly (idealised SRAM), the
// displaced victim's frame is reused for the new line. mru=false places the
// line at the LRU position (DIP's bimodal inserts, composed in build.go).
func (t *sramTags) Fill(_ uint64, line, _ uint64, mru bool) FillResult {
	set := t.tags.SetIndex(line)
	way := t.tags.VictimWay(line)
	var ev sram.Eviction
	if mru {
		ev = t.tags.Fill(line, false, 0)
	} else {
		ev = t.tags.FillLRU(line, false, 0)
	}
	if ev.Valid && t.c.hooks.OnEvict != nil {
		t.c.hooks.OnEvict(ev.Addr)
	}
	return FillResult{
		Loc:         t.locateFrame(set, way),
		VictimLine:  ev.Addr,
		VictimValid: ev.Valid,
		VictimDirty: ev.Dirty,
	}
}

// WritebackHit implements TagStore.
func (t *sramTags) WritebackHit(line uint64) { t.tags.SetDirty(line) }

// WritebackFill implements TagStore (unreachable: TIS never allocates on
// writeback misses).
func (t *sramTags) WritebackFill(uint64, uint64) FillResult {
	panic(fault.Invariantf("dramcache", "TIS writeback never allocates"))
}

// Contains implements TagStore.
func (t *sramTags) Contains(line uint64) bool {
	_, ok := t.tags.Lookup(line)
	return ok
}

// Install implements TagStore.
func (t *sramTags) Install(line uint64) {
	if _, ok := t.tags.Lookup(line); !ok {
		t.tags.Fill(line, false, 0)
	}
}

// tisLayout: probes are free (tags on chip); every data operation moves one
// 64 B line, and dirty victims must be read back before their frame is
// reused.
var tisLayout = Layout{
	Gran:            GranLine,
	HitBytes:        64,
	FillBytes:       64,
	VictimReadBytes: 64,
	WBUpdateBytes:   64,
}

// NewTIS composes a Tags-In-SRAM cache holding `lines` data lines with the
// given associativity.
func NewTIS(name string, lines uint64, ways int, l4 *dram.Memory, mem *MainMemory, hooks Hooks) *TIS {
	cfg := l4.Config()
	sets := lines / uint64(ways)
	if sets == 0 {
		sets = 1
	}
	c := &Controller{name: name, lay: tisLayout, l4: l4, mem: mem, hooks: hooks, wb: directWB{}}
	c.tags = &sramTags{
		c:        c,
		tags:     sram.New(sets, ways),
		ways:     uint64(ways),
		channels: uint64(cfg.Channels),
		banks:    uint64(cfg.Banks),
		lpr:      uint64(cfg.RowBytes / 64),
	}
	return c
}
