package dramcache

import (
	"bear/internal/core"
	"bear/internal/dram"
	"bear/internal/event"
	"bear/internal/sram"
	"bear/internal/stats"
)

// TIS is the Tags-In-SRAM design of Section 8: an idealised on-chip SRAM
// holds all tags (64 MB at full scale, un-penalised for storage or access
// latency, per the paper's methodology) in front of a 32-way data store in
// stacked DRAM. Probes are free; only data movement touches the DRAM-cache
// bus, so hits move exactly 64 B — but Miss Fills, Writeback Updates and
// dirty-victim reads still bloat the bus.
type TIS struct {
	name string

	tags     *sram.Cache
	ways     uint64
	channels uint64
	banks    uint64
	lpr      uint64 // data lines per DRAM row

	l4    *dram.Memory
	mem   *MainMemory
	hooks Hooks
	st    stats.L4

	txnFree *tisTxn // recycled per-access transaction pool
}

// tisTxn is the pooled per-access state with pre-bound completion methods
// (see alloyTxn for the rationale).
type tisTxn struct {
	c            *TIS
	now          uint64
	ch, bk       int
	row          uint64
	victimLine   uint64
	victimValid  bool
	victimDirty  bool
	done         func(uint64, ReadResult)
	fnHit, fnMiss event.Func
	next         *tisTxn
}

func (c *TIS) getTxn() *tisTxn {
	x := c.txnFree
	if x == nil {
		x = &tisTxn{c: c}
		x.fnHit = x.onHit
		x.fnMiss = x.onMiss
	} else {
		c.txnFree = x.next
		x.next = nil
	}
	x.victimValid, x.victimDirty = false, false
	return x
}

func (c *TIS) putTxn(x *tisTxn) {
	x.done = nil
	x.next = c.txnFree
	c.txnFree = x
}

func (x *tisTxn) onHit(t uint64) {
	c := x.c
	c.st.AddBytes(stats.HitProbe, 64)
	c.st.Hit(t - x.now)
	done := x.done
	c.putTxn(x)
	done(t, ReadResult{FromL4: true, InL4: true})
}

func (x *tisTxn) onMiss(t uint64) {
	c := x.c
	c.st.Miss(t - x.now)
	c.st.Fills++
	c.st.AddBytes(stats.MissFill, 64)
	c.l4.Write(t, x.ch, x.bk, x.row, 64)
	if x.victimValid && x.victimDirty {
		c.st.AddBytes(stats.VictimRead, 64)
		c.l4.Read(t, x.ch, x.bk, x.row, 64, c.mem.VictimFwd(x.victimLine))
	}
	done := x.done
	c.putTxn(x)
	done(t, ReadResult{FromL4: false, InL4: true})
}

// NewTIS builds a Tags-In-SRAM cache holding `lines` data lines with the
// given associativity.
func NewTIS(name string, lines uint64, ways int, l4 *dram.Memory, mem *MainMemory, hooks Hooks) *TIS {
	cfg := l4.Config()
	sets := lines / uint64(ways)
	if sets == 0 {
		sets = 1
	}
	return &TIS{
		name:     name,
		tags:     sram.New(sets, ways),
		ways:     uint64(ways),
		channels: uint64(cfg.Channels),
		banks:    uint64(cfg.Banks),
		lpr:      uint64(cfg.RowBytes / 64),
		l4:       l4,
		mem:      mem,
		hooks:    hooks,
	}
}

// Name implements Cache.
func (c *TIS) Name() string { return c.name }

// Stats implements Cache.
func (c *TIS) Stats() *stats.L4 { return &c.st }

// Contains implements Cache.
func (c *TIS) Contains(line uint64) bool {
	_, ok := c.tags.Lookup(line)
	return ok
}

// Install implements Cache: a free functional fill used for pre-warming.
func (c *TIS) Install(line uint64) {
	if _, ok := c.tags.Lookup(line); !ok {
		c.tags.Fill(line, false, 0)
	}
}

// locateFrame maps a (set, way) data frame to DRAM coordinates.
func (c *TIS) locateFrame(set uint64, way int) (ch, bk int, row uint64) {
	unit := (set*c.ways + uint64(way)) / c.lpr
	ch = int(unit % c.channels)
	rest := unit / c.channels
	bk = int(rest % c.banks)
	row = rest / c.banks
	return ch, bk, row
}

// Read implements Cache.
func (c *TIS) Read(now uint64, coreID int, line, pc uint64, done func(uint64, ReadResult)) {
	set := c.tags.SetIndex(line)
	if way, ok := c.tags.WayOf(line); ok {
		c.tags.Access(line, false)
		ch, bk, row := c.locateFrame(set, way)
		x := c.getTxn()
		x.now, x.done = now, done
		c.l4.Read(now, ch, bk, row, 64, x.fnHit)
		return
	}

	// Miss: tags answer instantly (idealised SRAM); memory fetch and fill.
	way := c.tags.VictimWay(line)
	ev := c.tags.Fill(line, false, 0)
	ch, bk, row := c.locateFrame(set, way)
	if ev.Valid && c.hooks.OnEvict != nil {
		c.hooks.OnEvict(ev.Addr)
	}
	x := c.getTxn()
	x.now, x.ch, x.bk, x.row, x.done = now, ch, bk, row, done
	x.victimLine, x.victimValid, x.victimDirty = ev.Addr, ev.Valid, ev.Dirty
	c.mem.ReadLine(now, line, x.fnMiss)
}

// Writeback implements Cache.
func (c *TIS) Writeback(now uint64, coreID int, line uint64, pres core.Presence) {
	set := c.tags.SetIndex(line)
	if way, ok := c.tags.WayOf(line); ok {
		c.tags.SetDirty(line)
		c.st.WBHits++
		ch, bk, row := c.locateFrame(set, way)
		c.st.AddBytes(stats.WBUpdate, 64)
		c.l4.Write(now, ch, bk, row, 64)
		return
	}
	c.st.WBMisses++
	c.mem.WriteLine(now, line)
}

var _ Cache = (*TIS)(nil)
