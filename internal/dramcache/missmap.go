package dramcache

import (
	"bear/internal/fault"
	"bear/internal/sram"
)

// MissMap is the Loh-Hill presence tracker (MICRO 2011): an SRAM structure
// holding one entry per 4 KB memory segment with a bit vector marking which
// of the segment's 64 lines are resident in the DRAM cache. A hit in the
// MissMap answers presence without touching the DRAM array; the structure
// is capacity-bounded, and evicting a segment entry requires evicting all
// of its resident lines from the cache (otherwise presence knowledge would
// be lost and stale data could be served).
//
// The BEAR paper models the MissMap with the L3's latency (24 cycles),
// which the LohHill design adds on every request.
type MissMap struct {
	tags     *sram.Cache // keyed by segment number
	bits     []uint64    // per-frame residency vector
	frames   map[uint64]uint64
	ways     uint64
	linesPer uint64

	// onEvictLine is invoked for every resident line lost to a segment
	// eviction; the owner must invalidate it in the DRAM cache.
	onEvictLine func(line uint64)

	// Diagnostics.
	SegEvictions     uint64
	LinesEvicted     uint64
	PresentchecksHit uint64
}

// NewMissMap builds a MissMap with the given entry capacity (segments) and
// associativity, covering segments of linesPer lines (64 for 4 KB).
func NewMissMap(segments uint64, ways int, linesPer uint64, onEvictLine func(uint64)) *MissMap {
	if linesPer == 0 || linesPer > 64 {
		panic(fault.Invariantf("dramcache", "missmap segment size must be 1..64 lines, got %d", linesPer))
	}
	sets := segments / uint64(ways)
	if sets == 0 {
		sets = 1
	}
	return &MissMap{
		tags:        sram.New(sets, ways),
		bits:        make([]uint64, sets*uint64(ways)),
		frames:      make(map[uint64]uint64),
		ways:        uint64(ways),
		linesPer:    linesPer,
		onEvictLine: onEvictLine,
	}
}

func (m *MissMap) split(line uint64) (segment uint64, bit uint64) {
	return line / m.linesPer, uint64(1) << (line % m.linesPer)
}

// Present reports whether line is marked resident.
func (m *MissMap) Present(line uint64) bool {
	seg, bit := m.split(line)
	if _, ok := m.tags.Lookup(seg); !ok {
		return false
	}
	return m.bits[m.frames[seg]]&bit != 0
}

// Set marks line resident, allocating (and possibly evicting) a segment
// entry. Eviction invokes onEvictLine for every line the victim segment
// still tracked.
func (m *MissMap) Set(line uint64) {
	seg, bit := m.split(line)
	if _, ok := m.tags.Lookup(seg); ok {
		m.tags.Access(seg, false)
		m.bits[m.frames[seg]] |= bit
		return
	}
	set := m.tags.SetIndex(seg)
	way := m.tags.VictimWay(seg)
	frame := set*m.ways + uint64(way)
	ev := m.tags.Fill(seg, false, 0)
	if ev.Valid {
		m.SegEvictions++
		delete(m.frames, ev.Addr)
		vec := m.bits[frame]
		for off := uint64(0); off < m.linesPer; off++ {
			if vec&(1<<off) != 0 {
				m.LinesEvicted++
				if m.onEvictLine != nil {
					m.onEvictLine(ev.Addr*m.linesPer + off)
				}
			}
		}
	}
	m.bits[frame] = bit
	m.frames[seg] = frame
}

// Clear unmarks line (called when the DRAM cache evicts it).
func (m *MissMap) Clear(line uint64) {
	seg, bit := m.split(line)
	if _, ok := m.tags.Lookup(seg); !ok {
		return
	}
	m.bits[m.frames[seg]] &^= bit
}

// Count returns the number of resident lines tracked (tests).
func (m *MissMap) Count() int {
	n := 0
	for seg := range m.frames {
		vec := m.bits[m.frames[seg]]
		for ; vec != 0; vec &= vec - 1 {
			n++ //bear:nolint maprange — integer popcount; addition order cannot change the sum
		}
	}
	return n
}
