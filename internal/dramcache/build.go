package dramcache

import (
	"fmt"

	"bear/internal/config"
	"bear/internal/core"
	"bear/internal/dram"
	"bear/internal/event"
)

// Bundle is a fully wired memory system below the LLC: the L4 design, the
// stacked-DRAM and main-memory timing models, and handles to the BEAR
// policy components for diagnostics.
type Bundle struct {
	Cache   Cache
	L4DRAM  *dram.Memory // nil when Design == NoL4
	MemDRAM *dram.Memory
	Mem     *MainMemory

	BAB  *core.BAB
	NTC  *core.NTC
	MAPI *MAPI
}

// Build constructs the memory system described by cfg on the event queue q,
// reporting L4 evictions through hooks.
func Build(cfg config.System, q *event.Queue, hooks Hooks) (*Bundle, error) {
	b := &Bundle{}
	b.MemDRAM = dram.New("mem", cfg.Mem, q)
	b.Mem = NewMainMemory(b.MemDRAM)

	if cfg.Design == config.NoL4 {
		b.Cache = NewNoL4(b.Mem)
		return b, nil
	}
	b.L4DRAM = dram.New("l4", cfg.L4, q)

	switch cfg.Design {
	case config.Alloy, config.BEAR, config.BWOpt, config.InclAlloy:
		opts := AlloyOpts{
			Ideal:      cfg.Design == config.BWOpt,
			Inclusive:  cfg.Design == config.InclAlloy,
			Pred:       cfg.Pred,
			WBAllocate: cfg.WBAllocate,
		}
		if !opts.Ideal && cfg.Pred == config.PredMAPI {
			opts.Predictor = NewMAPI(cfg.Core.Count, 256)
			b.MAPI = opts.Predictor
		}
		switch cfg.Bypass {
		case config.ProbBypass:
			b.BAB = core.NewBAB(cfg.BypassProb, cfg.DuelSatLimit, cfg.Seed^0xbab)
			b.BAB.Naive = true
			opts.BAB = b.BAB
		case config.BandwidthAware:
			b.BAB = core.NewBAB(cfg.BypassProb, cfg.DuelSatLimit, cfg.Seed^0xbab)
			opts.BAB = b.BAB
		case config.DeadBlockBypass:
			opts.DBP = core.NewDeadBlock(4096, 2)
		case config.UpdateBypass:
			opts.DBP = core.NewDeadBlock(4096, 2)
			opts.UpdateBypass = true
		}
		if cfg.UseNTC {
			b.NTC = core.NewNTC(cfg.L4.Channels*cfg.L4.Banks, cfg.NTCEntriesPerBank)
			opts.NTC = b.NTC
		}
		if cfg.UseTTC {
			opts.TTC = core.NewNTC(cfg.L4.Channels*cfg.L4.Banks, cfg.NTCEntriesPerBank)
		}
		b.Cache = NewAlloy(cfg.Design.String(), cfg.AlloySets(), b.L4DRAM, b.Mem, hooks, opts)

	case config.LohHill:
		b.Cache = NewLohHill("LH", cfg.LHSets(), 29, b.L4DRAM, b.Mem, hooks,
			LHOpts{MissMapLatency: cfg.L3.Latency, UseDIP: cfg.LHUseDIP})
	case config.MostlyClean:
		b.Cache = NewLohHill("MC", cfg.LHSets(), 29, b.L4DRAM, b.Mem, hooks,
			LHOpts{PerfectPredictor: true})

	case config.TIS:
		lines := uint64(cfg.CacheBytes) / config.LineBytes
		tis := NewTIS("TIS", lines, cfg.AssocWays, b.L4DRAM, b.Mem, hooks)
		if cfg.TISUseDIP {
			// DIP composes over the SRAM tag store as a pure FillPolicy.
			tis.fill = newDIPFill()
		}
		b.Cache = tis
	case config.Sector:
		lines := uint64(cfg.CacheBytes) / config.LineBytes
		sectorLines := uint64(cfg.SectorBytes / config.LineBytes)
		b.Cache = NewSector("SC", lines, sectorLines, cfg.AssocWays, b.L4DRAM, b.Mem, hooks)

	case config.Banshee:
		lines := uint64(cfg.CacheBytes) / config.LineBytes
		pageLines := uint64(cfg.PageBytes / config.LineBytes)
		b.Cache = NewBanshee("Banshee", lines, pageLines, cfg.AssocWays, b.L4DRAM, b.Mem, hooks)
	case config.TicToc:
		lines := uint64(cfg.CacheBytes) / config.LineBytes
		pageLines := uint64(cfg.PageBytes / config.LineBytes)
		b.Cache = NewTicToc("TicToc", lines, pageLines, cfg.AssocWays, b.L4DRAM, b.Mem, hooks)

	default:
		return nil, fmt.Errorf("dramcache: unknown design %v", cfg.Design)
	}
	return b, nil
}
