package dramcache

import (
	"bear/internal/core"
	"bear/internal/dram"
	"bear/internal/sram"
)

// TicToc is the DRAM-aware tag-check design of Young et al. ("TicToc:
// enabling bandwidth-efficient DRAM caching for both hits and misses"),
// composed over pageTags in demand-fill mode: page-grained frames filled
// line-at-a-time (no page-fill bloat), tags embedded alongside the data
// (TIC — a hit's 64 B read carries its own tag check, so hits pay no
// separate probe), and an SRAM tag cache of recently verified page
// mappings (TOC) covering the miss side: while a mapping is cached, miss
// tag checks are answered on chip and the DRAM probe is skipped. A tag-
// cache miss pays the in-array tag check — serialising the probe on reads
// and the dirty-probe on writebacks — which is the residual tag bandwidth
// the design trades against Alloy's every-access probes.
type TicToc = Controller

// tocFilter is the tag cache as a ProbeFilter. Entries are page mappings
// whose tag check was recently resolved (by a probe, a fill or a
// writeback update); the aux byte records the verdict — resident or
// verified-absent. Both answers skip the miss probe; residency answers
// consult the pageTags' own valid bits for the demand line, so answers are
// always truthful. pageTags invalidates a mapping when its page is
// evicted.
type tocFilter struct {
	pt *pageTags
	tc *sram.Cache
}

const (
	tocAbsent   = uint8(0)
	tocResident = uint8(1)
)

// Consult implements ProbeFilter.
func (f *tocFilter) Consult(_, page, line uint64) (known, present, skipProbe bool) {
	ln, ok := f.tc.Lookup(page)
	if !ok {
		return false, false, false
	}
	if ln.Aux == tocAbsent {
		return true, false, true
	}
	return true, f.pt.lineValid(line), true
}

// record caches the page's current verdict, promoting an existing entry.
func (f *tocFilter) record(page uint64) {
	aux := tocAbsent
	if f.pt.resident(page) {
		aux = tocResident
	}
	if f.tc.Access(page, false) {
		f.tc.SetAux(page, aux)
		return
	}
	f.tc.Fill(page, false, aux)
}

// OnProbe implements ProbeFilter: a completed probe verified the mapping.
func (f *tocFilter) OnProbe(_, page uint64) { f.record(page) }

// Sync implements ProbeFilter: fills and writeback updates re-verify.
func (f *tocFilter) Sync(_, page uint64) { f.record(page) }

// invalidate is pageTags' eviction coherence hook.
func (f *tocFilter) invalidate(page uint64) { f.tc.Invalidate(page) }

// tictocWB resolves writebacks through the tag cache: a cached mapping
// (either verdict) settles the writeback on chip — the engine then trusts
// the tag store's truthful hit/FreeFill/absent answer — while an uncached
// mapping pays the in-array tag check before resolving.
type tictocWB struct {
	f    *tocFilter
	amap sram.Mapper
}

func (w tictocWB) NeedsProbe(line uint64, _ bool, _ core.Presence) (probe, presKnown bool) {
	_, cached := w.f.tc.Lookup(w.amap.Block(line))
	return !cached, false
}

func (w tictocWB) Allocate() bool { return false }

// tictocLayout: hits move one 64 B line whose spare bits carry the tag
// (no separate tag read); misses whose mapping is not tag-cached pay a
// 64 B in-array tag check, as do unresolved writebacks. Fills are demand
// lines; victim recovery scales to the dirty mask.
var tictocLayout = Layout{
	Gran:            GranPage,
	HitBytes:        64,
	MissProbeBytes:  64,
	FillBytes:       64,
	VictimReadBytes: 64,
	WBUpdateBytes:   64,
	WBProbeBytes:    64,
}

// NewTicToc composes a TicToc cache of `lines` data lines grouped into
// pages of pageLines lines, with the given page-set associativity.
func NewTicToc(name string, lines, pageLines uint64, ways int, l4 *dram.Memory, mem *MainMemory, hooks Hooks) *TicToc {
	checkPageGeometry(lines, pageLines)
	c := &Controller{name: name, lay: tictocLayout, l4: l4, mem: mem, hooks: hooks}
	c.lay.Gran = Granularity{BlockLines: pageLines, SubBlocked: true}
	pt := newPageTags(c, lines, pageLines, ways, false)
	c.tags = pt

	pages := lines / pageLines
	// The tag cache covers a fraction of the page frames (the paper's TOC
	// is a small SRAM): hot mappings stay verified, cold ones re-check.
	tcSets := pages / 16
	if tcSets < 16 {
		tcSets = 16
	}
	filter := &tocFilter{pt: pt, tc: sram.New(tcSets, 8)}
	pt.onEvictPage = filter.invalidate
	c.filter = filter
	c.wb = tictocWB{f: filter, amap: pt.amap}
	return c
}
