package dramcache

import (
	"testing"

	"bear/internal/core"
	"bear/internal/stats"
)

func newLH(f *fixture, opts LHOpts) *LohHill {
	return NewLohHill("lh", 16, 29, f.l4, f.mem, Hooks{}, opts)
}

func TestLHHitAccounting(t *testing.T) {
	f := newFixture()
	l := newLH(f, LHOpts{MissMapLatency: 24})
	l.Install(100)
	res, at := read(t, f, l, 100)
	if !res.FromL4 {
		t.Fatal("expected hit")
	}
	st := l.Stats()
	// Hit: 192 B tags + 64 B data; LRU update writes 64 B.
	if st.Bytes[stats.HitProbe] != 256 {
		t.Fatalf("hit bytes = %v", st.Bytes)
	}
	if st.Bytes[stats.ReplUpdate] != 64 {
		t.Fatalf("LRU update bytes = %v", st.Bytes)
	}
	// MissMap adds its latency before the DRAM access.
	if at < 24+36+36 {
		t.Fatalf("hit latency %d ignores the MissMap", at)
	}
}

func TestLHMissAvoidsProbe(t *testing.T) {
	f := newFixture()
	l := newLH(f, LHOpts{MissMapLatency: 24})
	res, _ := read(t, f, l, 100)
	if res.FromL4 || !res.InL4 {
		t.Fatalf("miss result = %+v", res)
	}
	st := l.Stats()
	if st.Bytes[stats.MissProbe] != 0 {
		t.Fatal("MissMap design issued a miss probe")
	}
	if st.Bytes[stats.MissFill] != 128 {
		t.Fatalf("fill bytes = %v, want 128 (data + tag line)", st.Bytes)
	}
	if !l.Contains(100) {
		t.Fatal("fill lost")
	}
}

func TestLHAssociativityHitRate(t *testing.T) {
	f := newFixture()
	l := newLH(f, LHOpts{MissMapLatency: 24})
	// 20 lines mapping to the same set all fit in 29 ways.
	for i := uint64(0); i < 20; i++ {
		read(t, f, l, 100+i*16)
	}
	for i := uint64(0); i < 20; i++ {
		if !l.Contains(100 + i*16) {
			t.Fatalf("line %d evicted despite 29-way associativity", 100+i*16)
		}
	}
}

func TestLHWritebackWithMissMap(t *testing.T) {
	f := newFixture()
	l := newLH(f, LHOpts{MissMapLatency: 24})
	l.Install(100)
	l.Writeback(f.q.Now(), 0, 100, core.PresUnknown)
	f.drain()
	st := l.Stats()
	// MissMap answers presence: no WB probe, 128 B update.
	if st.Bytes[stats.WBProbe] != 0 || st.Bytes[stats.WBUpdate] != 128 {
		t.Fatalf("LH wb bytes = %v", st.Bytes)
	}
	// Writeback miss goes to memory.
	l.Writeback(f.q.Now(), 0, 999, core.PresUnknown)
	f.drain()
	if f.mem.D.Stats.Writes != 1 {
		t.Fatalf("wb miss writes = %d", f.mem.D.Stats.Writes)
	}
}

func TestMCWritebackProbes(t *testing.T) {
	f := newFixture()
	l := newLH(f, LHOpts{PerfectPredictor: true})
	l.Install(100)
	l.Writeback(f.q.Now(), 0, 100, core.PresUnknown)
	f.drain()
	st := l.Stats()
	// Mostly-Clean has no MissMap: writebacks probe the tag lines.
	if st.Bytes[stats.WBProbe] != 192 {
		t.Fatalf("MC wb probe bytes = %v", st.Bytes)
	}
}

func TestLHDirtyVictim(t *testing.T) {
	f := newFixture()
	l := NewLohHill("lh", 1, 2, f.l4, f.mem, Hooks{}, LHOpts{MissMapLatency: 24})
	read(t, f, l, 1)
	l.Writeback(f.q.Now(), 0, 1, core.PresUnknown)
	f.drain()
	read(t, f, l, 2)
	memWrites := f.mem.D.Stats.Writes
	read(t, f, l, 3) // evicts dirty line 1 (LRU)
	st := l.Stats()
	if st.Bytes[stats.VictimRead] != 64 {
		t.Fatalf("victim read bytes = %v", st.Bytes)
	}
	if f.mem.D.Stats.Writes != memWrites+1 {
		t.Fatal("dirty victim not written to memory")
	}
}

func TestTISHitAndMiss(t *testing.T) {
	f := newFixture()
	c := NewTIS("tis", 128, 4, f.l4, f.mem, Hooks{})
	res, _ := read(t, f, c, 10)
	if res.FromL4 {
		t.Fatal("cold read hit")
	}
	st := c.Stats()
	// TIS: no probes ever; fill is data-only.
	if st.Bytes[stats.MissProbe] != 0 || st.Bytes[stats.MissFill] != 64 {
		t.Fatalf("TIS miss bytes = %v", st.Bytes)
	}
	res, _ = read(t, f, c, 10)
	if !res.FromL4 {
		t.Fatal("second read missed")
	}
	if st.Bytes[stats.HitProbe] != 64 {
		t.Fatalf("TIS hit bytes = %v", st.Bytes)
	}
}

func TestTISWriteback(t *testing.T) {
	f := newFixture()
	c := NewTIS("tis", 128, 4, f.l4, f.mem, Hooks{})
	c.Install(10)
	c.Writeback(f.q.Now(), 0, 10, core.PresUnknown)
	f.drain()
	st := c.Stats()
	if st.Bytes[stats.WBProbe] != 0 || st.Bytes[stats.WBUpdate] != 64 {
		t.Fatalf("TIS wb bytes = %v", st.Bytes)
	}
	c.Writeback(f.q.Now(), 0, 777, core.PresUnknown)
	f.drain()
	if st.WBMisses != 1 || f.mem.D.Stats.Writes != 1 {
		t.Fatal("TIS wb miss mishandled")
	}
}

func TestTISDirtyVictim(t *testing.T) {
	f := newFixture()
	c := NewTIS("tis", 4, 2, f.l4, f.mem, Hooks{}) // 2 sets x 2 ways
	read(t, f, c, 0)
	c.Writeback(f.q.Now(), 0, 0, core.PresUnknown)
	f.drain()
	read(t, f, c, 2)
	memWrites := f.mem.D.Stats.Writes
	read(t, f, c, 4) // same set as 0 and 2; evicts LRU dirty 0
	st := c.Stats()
	if st.Bytes[stats.VictimRead] != 64 {
		t.Fatalf("TIS victim bytes = %v", st.Bytes)
	}
	if f.mem.D.Stats.Writes != memWrites+1 {
		t.Fatal("TIS dirty victim lost")
	}
}

func TestSectorBasicFlow(t *testing.T) {
	f := newFixture()
	// 256 lines, 8-line sectors, 2-way: 16 sector frames.
	c := NewSector("sc", 256, 8, 2, f.l4, f.mem, Hooks{})
	res, _ := read(t, f, c, 0)
	if res.FromL4 {
		t.Fatal("cold hit")
	}
	// Same sector, different line: line fill only, no sector eviction.
	res, _ = read(t, f, c, 1)
	if res.FromL4 {
		t.Fatal("line 1 was never fetched")
	}
	res, _ = read(t, f, c, 0)
	if !res.FromL4 {
		t.Fatal("line 0 lost")
	}
	if !c.Contains(1) || c.Contains(2) {
		t.Fatal("sector valid bits wrong")
	}
}

func TestSectorDirtyEvictionPenalty(t *testing.T) {
	f := newFixture()
	// 1 sector set x 1 way: every new sector evicts the previous one.
	c := NewSector("sc", 8, 8, 1, f.l4, f.mem, Hooks{})
	// Touch 4 lines of sector 0 and dirty 3 of them.
	for i := uint64(0); i < 4; i++ {
		read(t, f, c, i)
	}
	for i := uint64(0); i < 3; i++ {
		c.Writeback(f.q.Now(), 0, i, core.PresUnknown)
	}
	f.drain()
	memWrites := f.mem.D.Stats.Writes
	st := c.Stats()
	victimBefore := st.Bytes[stats.VictimRead]
	read(t, f, c, 100) // new sector: evicts sector 0 with 3 dirty lines
	if got := st.Bytes[stats.VictimRead] - victimBefore; got != 3*64 {
		t.Fatalf("sector eviction victim bytes = %d, want %d", got, 3*64)
	}
	if got := f.mem.D.Stats.Writes - memWrites; got != 3 {
		t.Fatalf("sector eviction memory writes = %d, want 3", got)
	}
	if c.Contains(0) || c.Contains(3) {
		t.Fatal("old sector lines still present")
	}
}

func TestSectorWritebackFill(t *testing.T) {
	f := newFixture()
	c := NewSector("sc", 256, 8, 2, f.l4, f.mem, Hooks{})
	read(t, f, c, 0)                               // sector resident
	c.Writeback(f.q.Now(), 0, 3, core.PresUnknown) // same sector, line absent
	f.drain()
	st := c.Stats()
	if st.Bytes[stats.WBFill] != 64 {
		t.Fatalf("sector wb-fill bytes = %v", st.Bytes)
	}
	if !c.Contains(3) {
		t.Fatal("wb-fill did not validate the line")
	}
	// Sector miss: to memory.
	c.Writeback(f.q.Now(), 0, 999, core.PresUnknown)
	f.drain()
	if st.WBMisses != 1 {
		t.Fatalf("sector wb miss count = %d", st.WBMisses)
	}
}

func TestSectorEvictNotifiesHooks(t *testing.T) {
	f := newFixture()
	var evicted []uint64
	c := NewSector("sc", 8, 8, 1, f.l4, f.mem,
		Hooks{OnEvict: func(l uint64) { evicted = append(evicted, l) }})
	read(t, f, c, 0)
	read(t, f, c, 1)
	read(t, f, c, 100) // evict sector 0
	if len(evicted) != 2 {
		t.Fatalf("OnEvict calls = %v, want lines 0 and 1", evicted)
	}
}

func TestInstallIdempotent(t *testing.T) {
	f := newFixture()
	designs := []Cache{
		newAlloy(f, AlloyOpts{}),
		newLH(f, LHOpts{MissMapLatency: 24}),
		NewTIS("tis", 128, 4, f.l4, f.mem, Hooks{}),
		NewSector("sc", 256, 8, 2, f.l4, f.mem, Hooks{}),
	}
	for _, d := range designs {
		d.Install(42)
		d.Install(42) // must not panic or duplicate
		if !d.Contains(42) {
			t.Errorf("%s: Install lost the line", d.Name())
		}
		if d.Stats().TotalBytes() != 0 {
			t.Errorf("%s: Install consumed bandwidth", d.Name())
		}
	}
}

func TestLHDIPThrashProtection(t *testing.T) {
	// A cyclic stream over more lines than a set holds: LRU gets zero
	// hits; DIP (via BIP) retains a stable subset and scores some.
	run := func(useDIP bool) uint64 {
		f := newFixture()
		// One set (use many fills into set 0 of a small cache).
		l := NewLohHill("lh", 64, 4, f.l4, f.mem, Hooks{}, LHOpts{MissMapLatency: 24, UseDIP: useDIP})
		hits := uint64(0)
		for lap := 0; lap < 30; lap++ {
			for i := uint64(0); i < 6; i++ { // 6-line cycle > 4 ways
				// All map to set 3, a BIP-sample set under DIP, so the
				// policy needs no training time in this micro-test.
				line := 3 + i*64
				res, _ := read(t, f, l, line)
				if res.FromL4 {
					hits++
				}
			}
		}
		return hits
	}
	lru, dip := run(false), run(true)
	if dip <= lru {
		t.Fatalf("DIP hits (%d) not above LRU hits (%d) under thrash", dip, lru)
	}
}
