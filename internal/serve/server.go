package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"bear/internal/config"
	"bear/internal/exp"
	"bear/internal/faultpoint"
)

// Config parameterises a Server. Zero fields take the documented defaults
// (see fill).
type Config struct {
	// WorkerCmd is the argv to exec one worker subprocess — typically
	// {"bearbench", "-worker", ...params...}. The params must reproduce
	// Fingerprint exactly or the handshake refuses the worker.
	WorkerCmd []string
	// Workers is the pool size (default 1).
	Workers int
	// Store receives every completed unit and serves /result.
	Store *exp.Store
	// StoreDir is the store's directory; the SIGTERM drain writes its
	// checkpoint manifest (pending.json) there.
	StoreDir string
	// Fingerprint is the result-store fingerprint workers must match.
	Fingerprint string
	// MaxAttempts bounds tries per unit, first run included (default 3).
	MaxAttempts int
	// BaseBackoff/MaxBackoff shape the retry schedule (default 250ms/10s);
	// see Backoff for the jitter discipline. Seed feeds the jitter.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	Seed        uint64
	// BreakerFails consecutive failures open a design's circuit breaker
	// for BreakerCooldown (defaults 5, 30s).
	BreakerFails    int
	BreakerCooldown time.Duration
	// UnitDeadline is the wall-clock budget per unit attempt; derive it
	// from the sweep's instruction budgets with DeadlineFor (the default).
	UnitDeadline time.Duration
	// Params is used only to derive UnitDeadline when it is zero.
	Params exp.Params
	// QueueLimit is the pending-unit count past which the pool counts as
	// saturated and /result degrades to stale serving (default 256).
	QueueLimit int
}

// DeadlineFor derives a per-unit wall-clock deadline from the sweep's
// instruction budgets: the simulator retires instructions at a roughly
// constant wall rate (the bench harness holds it near 100 ns/instr), so
// total instructions × a 20× safety margin, plus fixed slack for process
// startup and trace synthesis, bounds any healthy unit. Only a hung or
// livelocked worker sleeps past it.
func DeadlineFor(p exp.Params) time.Duration {
	cores := config.Default(p.Scale).Core.Count
	instr := (p.Warm + p.Meas) * uint64(cores)
	return 15*time.Second + time.Duration(instr)*2*time.Microsecond
}

func (c Config) fill() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 250 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 10 * time.Second
	}
	if c.BreakerFails <= 0 {
		c.BreakerFails = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 30 * time.Second
	}
	if c.UnitDeadline <= 0 {
		c.UnitDeadline = DeadlineFor(c.Params)
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 256
	}
	return c
}

// Unit lifecycle states.
const (
	StateQueued       = "queued"
	StateBackoff      = "backoff" // failed attempt, waiting to retry
	StateRunning      = "running"
	StateDone         = "done"
	StateFailed       = "failed"       // terminal: attempts exhausted or shed
	StateInterrupted  = "interrupted"  // drain hit the unit mid-flight
	StateCheckpointed = "checkpointed" // written to the drain manifest
)

type unit struct {
	spec     exp.UnitSpec
	key      string
	state    string
	attempts int
	errs     []string // one entry per failed attempt, in attempt order
}

// Server schedules sweep units onto a supervised pool of worker
// subprocesses and serves results over HTTP. See the package comment for
// the failure model.
type Server struct {
	cfg Config

	mu       sync.Mutex
	cond     *sync.Cond
	units    map[string]*unit
	ready    []*unit // dispatch queue (FIFO)
	pending  int     // units not yet terminal
	retries  int     // failed attempts that were rescheduled
	breakers map[string]*breaker
	timers   []*time.Timer
	draining bool
	started  bool

	wg sync.WaitGroup
}

// New builds a Server; call Start to launch the pool.
func New(cfg Config) *Server {
	s := &Server{
		cfg:      cfg.fill(),
		units:    map[string]*unit{},
		breakers: map[string]*breaker{},
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Start launches the worker pool.
func (s *Server) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.workerLoop()
	}
}

// Submit validates and enqueues units; units whose key is already known
// (in any state) are skipped, making submission idempotent. It reports
// how many were newly accepted.
func (s *Server) Submit(specs []exp.UnitSpec) (int, error) {
	type keyed struct {
		spec exp.UnitSpec
		key  string
	}
	ks := make([]keyed, 0, len(specs))
	for _, spec := range specs {
		key, err := spec.Key()
		if err != nil {
			return 0, err
		}
		ks = append(ks, keyed{spec, key})
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return 0, fmt.Errorf("serve: draining, not accepting new units")
	}
	accepted := 0
	for _, k := range ks {
		if _, dup := s.units[k.key]; dup {
			continue
		}
		u := &unit{spec: k.spec, key: k.key, state: StateQueued}
		s.units[k.key] = u
		s.ready = append(s.ready, u)
		s.pending++
		accepted++
		s.cond.Signal()
	}
	return accepted, nil
}

func (s *Server) breakerFor(design string) *breaker {
	b := s.breakers[design]
	if b == nil {
		b = newBreaker(s.cfg.BreakerFails, s.cfg.BreakerCooldown)
		s.breakers[design] = b
	}
	return b
}

// next blocks until a unit is dispatchable (returning it in StateRunning
// with its attempt counted) or the server drains (returning nil). Units
// whose design breaker is open are shed here: a terminal failure, so a
// broken design drains from the queue instead of monopolising the pool.
func (s *Server) next() *unit {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.draining {
			return nil
		}
		if len(s.ready) > 0 {
			u := s.ready[0]
			s.ready = s.ready[1:]
			if !s.breakerFor(u.spec.Design).allow(time.Now()) {
				u.errs = append(u.errs, fmt.Sprintf("attempt %d: shed: circuit breaker open for design %s",
					u.attempts+1, u.spec.Design))
				u.state = StateFailed
				s.pending--
				continue
			}
			u.attempts++
			u.state = StateRunning
			return u
		}
		s.cond.Wait()
	}
}

// workerLoop is one pool slot: it owns (at most) one worker subprocess at
// a time and feeds it units until drain.
func (s *Server) workerLoop() {
	defer s.wg.Done()
	w := newWorkerProc(s.cfg.WorkerCmd, s.cfg.Fingerprint)
	defer w.stop(2 * time.Second)
	for {
		u := s.next()
		if u == nil {
			return
		}
		s.complete(u, s.attempt(w, u))
	}
}

// attempt runs one try of a unit on the given worker and returns its
// verdict. The "sched.dispatch" faultpoint site models the scheduler
// itself losing a dispatched unit (keyed by unit and attempt, so chaos
// plans replay exactly); the read-back after Ingest catches store-level
// write faults — a torn or corrupted entry fails the attempt now, when
// the unit can still be retried, not at collection time.
func (s *Server) attempt(w *workerProc, u *unit) error {
	if faultpoint.HitAt("sched.dispatch", u.key, u.attempts) == faultpoint.SchedDrop {
		return fmt.Errorf("injected fault: scheduler dropped the dispatched unit")
	}
	reply, err := w.run(WorkRequest{Unit: u.spec, Attempt: u.attempts}, s.cfg.UnitDeadline)
	if err != nil {
		return err
	}
	if !reply.OK {
		return fmt.Errorf("unit failed in worker: %s", reply.Error)
	}
	key, err := s.cfg.Store.Ingest(reply.Envelope)
	if err != nil {
		return err
	}
	if key != u.key {
		return fmt.Errorf("worker answered for unit %q, expected %q", key, u.key)
	}
	if _, ok := s.cfg.Store.Load(u.key); !ok {
		return fmt.Errorf("stored entry failed read-back verification (torn or corrupt write)")
	}
	return nil
}

// complete applies an attempt's verdict: success finishes the unit,
// failure records it in the retry table and either schedules the retry
// (capped exponential backoff with deterministic jitter) or, with
// attempts exhausted, fails the unit terminally.
func (s *Server) complete(u *unit, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.breakerFor(u.spec.Design)
	if err == nil {
		b.success()
		u.state = StateDone
		s.pending--
		return
	}
	u.errs = append(u.errs, fmt.Sprintf("attempt %d: %v", u.attempts, err))
	b.failure(time.Now())
	if s.draining {
		u.state = StateInterrupted
		return
	}
	if u.attempts >= s.cfg.MaxAttempts {
		u.state = StateFailed
		s.pending--
		return
	}
	u.state = StateBackoff
	s.retries++
	delay := Backoff(s.cfg.BaseBackoff, s.cfg.MaxBackoff, s.cfg.Seed, u.key, u.attempts+1)
	s.timers = append(s.timers, time.AfterFunc(delay, func() { s.requeue(u) }))
}

func (s *Server) requeue(u *unit) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || u.state != StateBackoff {
		return
	}
	u.state = StateQueued
	s.ready = append(s.ready, u)
	s.cond.Signal()
}

// Wait blocks until every submitted unit is terminal (done or failed), or
// the server drains. Tests and the CLI's one-shot mode use it; the HTTP
// surface exposes the same information incrementally via /progress.
func (s *Server) Wait() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.pending > 0 && !s.draining {
		s.mu.Unlock()
		time.Sleep(20 * time.Millisecond)
		s.mu.Lock()
	}
}

// Drain is the SIGTERM path: stop dispatching, let in-flight units finish
// (their results land in the store — that is the checkpoint), then write
// every unfinished unit into the resume manifest. /readyz flips to 503
// the moment draining begins; /healthz stays healthy throughout, so an
// orchestrator sees "alive but not accepting" exactly as intended.
func (s *Server) Drain() error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	for _, t := range s.timers {
		t.Stop()
	}
	s.cond.Broadcast()
	s.mu.Unlock()

	s.wg.Wait() // in-flight attempts run to completion and persist
	return s.checkpoint()
}

// checkpointManifest is the drain manifest format (pending.json in the
// store directory): the units a resumed sweep must still run.
type checkpointManifest struct {
	Fingerprint string         `json:"fingerprint"`
	Units       []exp.UnitSpec `json:"units"`
}

// checkpoint writes the unfinished units into StoreDir/pending.json so
// the next bearserve (or a bearbench -resume sweep over the same store)
// picks up exactly where the drain stopped.
func (s *Server) checkpoint() error {
	s.mu.Lock()
	var left []*unit
	keys := make([]string, 0, len(s.units))
	for k := range s.units {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		u := s.units[k]
		switch u.state {
		case StateQueued, StateBackoff, StateRunning, StateInterrupted:
			u.state = StateCheckpointed
			left = append(left, u)
		}
	}
	s.mu.Unlock()
	if s.cfg.StoreDir == "" || len(left) == 0 {
		return nil
	}
	m := checkpointManifest{Fingerprint: s.cfg.Fingerprint}
	for _, u := range left {
		m.Units = append(m.Units, u.spec)
	}
	raw, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(s.cfg.StoreDir, "pending.json")
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// ReadCheckpoint loads a drain manifest left in a store directory, if
// any, so a restarted server can resubmit the unfinished units.
func ReadCheckpoint(dir string) ([]exp.UnitSpec, error) {
	raw, err := os.ReadFile(filepath.Join(dir, "pending.json"))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var m checkpointManifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("serve: corrupt drain manifest: %w", err)
	}
	return m.Units, nil
}

// --- Introspection. ---

// UnitStatus is one unit's row in the /progress table.
type UnitStatus struct {
	Design   string   `json:"design"`
	Workload string   `json:"workload"`
	State    string   `json:"state"`
	Attempts int      `json:"attempts"`
	Errors   []string `json:"errors,omitempty"`
}

// Progress is the /progress document: sweep counters plus the
// deterministic per-unit failure/retry table (sorted by unit key, each
// attempt's error in attempt order) and the server-side injected-fault
// table. With a fixed fault plan the Units table is byte-identical run to
// run — concurrency moves *when* an injected fault fires, never on which
// unit or attempt.
type Progress struct {
	Fingerprint string       `json:"fingerprint"`
	Draining    bool         `json:"draining"`
	Queued      int          `json:"queued"`
	Running     int          `json:"running"`
	Done        int          `json:"done"`
	Failed      int          `json:"failed"`
	Interrupted int          `json:"interrupted"`
	Retries     int          `json:"retries"`
	Units       []UnitStatus `json:"units"`
	Faults      []string     `json:"faults,omitempty"`
}

// Progress snapshots the sweep state.
func (s *Server) Progress() Progress {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := Progress{
		Fingerprint: s.cfg.Fingerprint,
		Draining:    s.draining,
		Retries:     s.retries,
	}
	keys := make([]string, 0, len(s.units))
	for k := range s.units {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		u := s.units[k]
		switch u.state {
		case StateQueued, StateBackoff:
			p.Queued++
		case StateRunning:
			p.Running++
		case StateDone:
			p.Done++
		case StateFailed:
			p.Failed++
		case StateInterrupted, StateCheckpointed:
			p.Interrupted++
		}
		p.Units = append(p.Units, UnitStatus{
			Design:   u.spec.Design,
			Workload: u.spec.Workload,
			State:    u.state,
			Attempts: u.attempts,
			Errors:   append([]string(nil), u.errs...),
		})
	}
	for _, rec := range faultpoint.Fired() {
		p.Faults = append(p.Faults, rec.String())
	}
	return p
}

// degraded reports whether /result should fall back to stale serving for
// the given design: the pool is draining, saturated past the queue limit,
// or the design's breaker is open (its units are being shed).
func (s *Server) degraded(design string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.pending > s.cfg.QueueLimit {
		return true
	}
	if b, ok := s.breakers[design]; ok && b.open {
		return true
	}
	return false
}

// --- HTTP surface. ---

// Handler returns the daemon's HTTP mux:
//
//	POST /sweep     {"units":[{"design":..,"workload":..},...]} → enqueue
//	GET  /progress  sweep counters + deterministic failure/retry table
//	GET  /result    ?design=&workload= → stored result (see below)
//	GET  /healthz   200 while the process lives (liveness)
//	GET  /readyz    200 while accepting work; 503 once draining (readiness)
//
// /result implements the degradation ladder: a fresh store entry is
// served plainly; a known in-flight unit answers 202; when the pool is
// degraded, a structurally valid stale entry is served with the
// X-Bear-Stale header naming its fingerprint era; otherwise 404.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		ready := s.started && !s.draining
		s.mu.Unlock()
		if !ready {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.Progress())
	})
	mux.HandleFunc("/sweep", s.handleSweep)
	mux.HandleFunc("/result", s.handleResult)
	return mux
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var body struct {
		Units []exp.UnitSpec `json:"units"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(body.Units) == 0 {
		http.Error(w, "no units", http.StatusBadRequest)
		return
	}
	accepted, err := s.Submit(body.Units)
	if err != nil {
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		code := http.StatusBadRequest
		if draining {
			code = http.StatusServiceUnavailable
		}
		http.Error(w, err.Error(), code)
		return
	}
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(map[string]int{"accepted": accepted, "submitted": len(body.Units)})
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	u := exp.UnitSpec{Design: r.URL.Query().Get("design"), Workload: r.URL.Query().Get("workload")}
	key, err := u.Key()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if res, ok := s.cfg.Store.Load(key); ok {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Bear-Fingerprint", s.cfg.Fingerprint)
		json.NewEncoder(w).Encode(res)
		return
	}
	if s.degraded(u.Design) {
		if res, fp, ok := s.cfg.Store.LoadStale(key); ok {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("X-Bear-Stale", fp)
			json.NewEncoder(w).Encode(res)
			return
		}
	}
	s.mu.Lock()
	_, known := s.units[key]
	s.mu.Unlock()
	if known {
		http.Error(w, "unit pending", http.StatusAccepted)
		return
	}
	http.Error(w, "no result for unit (submit it via POST /sweep)", http.StatusNotFound)
}
