package serve

import (
	"encoding/binary"
	"hash/fnv"
	"time"

	"bear/internal/rng"
)

// Backoff returns the delay before retry attempt n of the unit with the
// given key (n is the attempt about to run: 2 for the first retry). The
// schedule is capped exponential with equal jitter — the delay lands in
// [d/2, d) for d = base·2^(n-2) capped at max — and the jitter is drawn
// from the repository's deterministic generator seeded by (seed, key, n),
// not from ambient randomness: two runs of the same chaos plan back off
// identically, while distinct units still de-synchronise instead of
// thundering back onto the pool together.
func Backoff(base, max time.Duration, seed uint64, key string, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	if max < base {
		max = base
	}
	d := base
	for i := 2; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], seed)
	binary.LittleEndian.PutUint64(buf[8:], uint64(attempt))
	h.Write(buf[:])
	jitter := time.Duration(rng.New(h.Sum64()).Uint64n(uint64(d)/2 + 1))
	return d/2 + jitter
}
