package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"syscall"
	"time"

	"bear/internal/exp"
	"bear/internal/fault"
)

// workerProc supervises one worker subprocess. It is used by a single
// scheduler goroutine at a time (one proc per pool slot), so it needs no
// locking; the reader goroutine exists only to make stdout reads
// interruptible by deadlines and process death.
type workerProc struct {
	argv        []string
	fingerprint string

	cmd   *exec.Cmd
	stdin io.WriteCloser
	lines chan string // closed when the worker's stdout ends
}

func newWorkerProc(argv []string, fingerprint string) *workerProc {
	return &workerProc{argv: argv, fingerprint: fingerprint}
}

// alive reports whether a subprocess is currently attached.
func (w *workerProc) alive() bool { return w.cmd != nil }

// start launches the subprocess and completes the Hello handshake within
// the given deadline, so a worker that is miswired (wrong binary, wrong
// parameters, different code revision) is rejected before it can serve —
// or poison — a single unit.
func (w *workerProc) start(helloDeadline time.Duration) error {
	cmd := exec.Command(w.argv[0], w.argv[1:]...)
	// Each worker leads its own process group, so kill() can take down
	// anything the worker spawned: a hung worker's children would
	// otherwise outlive the supervisor, holding its pipes open.
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return fmt.Errorf("serve: worker stdin: %w", err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return fmt.Errorf("serve: worker stdout: %w", err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("serve: spawning worker: %w", err)
	}
	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	w.cmd, w.stdin, w.lines = cmd, stdin, lines

	line, err := w.readLine(helloDeadline)
	if err != nil {
		w.kill()
		return fmt.Errorf("serve: worker handshake: %w", err)
	}
	var hello Hello
	if err := json.Unmarshal([]byte(line), &hello); err != nil || !hello.Hello {
		w.kill()
		return fmt.Errorf("serve: worker handshake: unexpected frame %q", line)
	}
	if hello.Fingerprint != w.fingerprint {
		w.kill()
		return fmt.Errorf("serve: worker fingerprint %q does not match the server's — refusing a mismatched worker",
			hello.Fingerprint)
	}
	return nil
}

// readLine returns the worker's next stdout line, or an error if the
// process dies or the deadline passes first.
func (w *workerProc) readLine(deadline time.Duration) (string, error) {
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	select {
	case line, ok := <-w.lines:
		if !ok {
			err := w.cmd.Wait()
			w.cmd = nil
			return "", fmt.Errorf("worker exited mid-unit: %v", err)
		}
		return line, nil
	case <-timer.C:
		return "", errDeadline
	}
}

// errDeadline marks a deadline expiry inside readLine; run translates it
// into a typed fault.WatchdogError carrying the unit's identity.
var errDeadline = fmt.Errorf("deadline expired")

// run executes one unit on the worker, enforcing the wall-clock deadline.
// Any failure — spawn error, death mid-unit, protocol garbage, deadline —
// leaves the subprocess killed and detached, so the next run starts a
// fresh one; the worker pool self-heals by construction.
func (w *workerProc) run(req WorkRequest, deadline time.Duration) (*WorkReply, error) {
	if !w.alive() {
		if err := w.start(deadline); err != nil {
			return nil, err
		}
	}
	frame, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("serve: encoding request: %w", err)
	}
	if _, err := fmt.Fprintf(w.stdin, "%s\n", frame); err != nil {
		w.kill()
		return nil, fmt.Errorf("serve: worker unreachable: %w", err)
	}
	line, err := w.readLine(deadline)
	if err != nil {
		w.kill()
		if err == errDeadline {
			return nil, watchdogDeadline(req.Unit, deadline)
		}
		return nil, err
	}
	var reply WorkReply
	if err := json.Unmarshal([]byte(line), &reply); err != nil {
		// The stream is no longer trustworthy once a frame fails to parse;
		// kill the process rather than guess where the next frame starts.
		w.kill()
		return nil, fmt.Errorf("worker emitted garbage instead of a reply: %q", line)
	}
	return &reply, nil
}

// watchdogDeadline wraps a blown worker deadline in the simulator's typed
// watchdog vocabulary, so bearserve's failure tables classify supervisor
// timeouts alongside in-simulation stalls and budget trips.
func watchdogDeadline(u exp.UnitSpec, deadline time.Duration) error {
	return &fault.WatchdogError{
		Kind:     fault.WatchdogDeadline,
		Workload: u.Workload,
		Design:   u.Design,
		Limit:    uint64(deadline / time.Millisecond),
	}
}

// kill forcibly terminates and detaches the subprocess (idempotent).
func (w *workerProc) kill() {
	if w.cmd == nil {
		return
	}
	w.stdin.Close()
	syscall.Kill(-w.cmd.Process.Pid, syscall.SIGKILL) // whole process group
	w.cmd.Process.Kill()
	w.cmd.Wait()
	// Drain the reader so its goroutine exits with the closed pipe.
	for range w.lines {
	}
	w.cmd = nil
}

// stop ends the worker gracefully: closing stdin lets WorkerLoop return
// at EOF; if the process lingers past the grace period it is killed.
func (w *workerProc) stop(grace time.Duration) {
	if w.cmd == nil {
		return
	}
	w.stdin.Close()
	done := make(chan struct{})
	go func() {
		w.cmd.Wait()
		close(done)
	}()
	timer := time.NewTimer(grace)
	defer timer.Stop()
	select {
	case <-done:
	case <-timer.C:
		syscall.Kill(-w.cmd.Process.Pid, syscall.SIGKILL)
		w.cmd.Process.Kill()
		<-done
	}
	for range w.lines {
	}
	w.cmd = nil
}
