package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"bear/internal/exp"
	"bear/internal/fault"
	"bear/internal/stats"
)

const testFP = "test-fp"

func sampleRun(design, workload string) *stats.Run {
	r := &stats.Run{Design: design, Workload: workload, Cycles: 424242, Instructions: 1000}
	r.L4.ReadHits = 7
	return r
}

// fakeWorker writes a shell script speaking the worker protocol, so the
// supervision machinery is testable without building simulator binaries.
// body runs after the hello line, with one protocol request available per
// `read line`.
func fakeWorker(t *testing.T, fingerprint, body string) []string {
	t.Helper()
	script := fmt.Sprintf("#!/bin/sh\necho '{\"hello\":true,\"fingerprint\":\"%s\"}'\n%s\n", fingerprint, body)
	path := filepath.Join(t.TempDir(), "worker.sh")
	if err := os.WriteFile(path, []byte(script), 0o755); err != nil {
		t.Fatal(err)
	}
	return []string{"/bin/sh", path}
}

func openTestStore(t *testing.T, fp string) (*exp.Store, string) {
	t.Helper()
	dir := t.TempDir()
	st, err := exp.OpenStore(dir, fp)
	if err != nil {
		t.Fatal(err)
	}
	return st, dir
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	base, max := 100*time.Millisecond, time.Second
	for attempt := 2; attempt <= 8; attempt++ {
		d := base << (attempt - 2)
		if d > max || d <= 0 {
			d = max
		}
		got := Backoff(base, max, 7, "unit-a", attempt)
		if got != Backoff(base, max, 7, "unit-a", attempt) {
			t.Fatalf("attempt %d: backoff not deterministic", attempt)
		}
		if got < d/2 || got > d {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, got, d/2, d)
		}
	}
	if Backoff(base, max, 7, "unit-a", 2) == Backoff(base, max, 7, "unit-b", 2) &&
		Backoff(base, max, 7, "unit-a", 3) == Backoff(base, max, 7, "unit-b", 3) {
		t.Error("distinct units share the whole jitter schedule — no de-synchronisation")
	}
}

func TestBreakerStateMachine(t *testing.T) {
	t0 := time.Unix(1000, 0)
	b := newBreaker(2, time.Minute)
	if !b.allow(t0) {
		t.Fatal("closed breaker refused")
	}
	b.failure(t0)
	if !b.allow(t0) {
		t.Fatal("one failure below threshold opened the breaker")
	}
	b.failure(t0)
	if b.allow(t0.Add(time.Second)) {
		t.Fatal("open breaker admitted inside cooldown")
	}
	// Cooldown elapsed: exactly one probe is admitted.
	t1 := t0.Add(2 * time.Minute)
	if !b.allow(t1) {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.allow(t1) {
		t.Fatal("half-open breaker admitted a second unit mid-probe")
	}
	b.failure(t1)
	if b.allow(t1.Add(30 * time.Second)) {
		t.Fatal("failed probe did not restart the cooldown")
	}
	if !b.allow(t1.Add(2 * time.Minute)) {
		t.Fatal("re-opened breaker never half-opened again")
	}
	b.success()
	if !b.allow(t1.Add(2*time.Minute + time.Second)) {
		t.Fatal("successful probe did not close the breaker")
	}
}

func TestWorkerProcSupervision(t *testing.T) {
	cases := []struct {
		name string
		argv []string
		want string // substring of the expected error
	}{
		{"dies mid-unit", fakeWorker(t, testFP, "read line; exit 7"), "worker exited"},
		{"garbage stdout", fakeWorker(t, testFP, "read line; echo 'not a frame'"), "garbage"},
		{"hangs past deadline", fakeWorker(t, testFP, "read line; sleep 60"), "deadline"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			w := newWorkerProc(c.argv, testFP)
			defer w.kill()
			_, err := w.run(WorkRequest{Unit: exp.UnitSpec{Design: "Alloy", Workload: "x"}, Attempt: 1},
				500*time.Millisecond)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %v, want substring %q", err, c.want)
			}
			if w.alive() {
				t.Error("failed worker left attached; pool would reuse a broken process")
			}
		})
	}
}

func TestWorkerDeadlineIsTypedWatchdog(t *testing.T) {
	w := newWorkerProc(fakeWorker(t, testFP, "read line; sleep 60"), testFP)
	defer w.kill()
	_, err := w.run(WorkRequest{Unit: exp.UnitSpec{Design: "BEAR", Workload: "mcf"}, Attempt: 2},
		300*time.Millisecond)
	var we *fault.WatchdogError
	if !errors.As(err, &we) {
		t.Fatalf("deadline error %v is not a *fault.WatchdogError", err)
	}
	if we.Kind != fault.WatchdogDeadline || we.Design != "BEAR" || we.Workload != "mcf" {
		t.Fatalf("watchdog fields = %+v", we)
	}
	if !strings.Contains(we.Error(), "deadline") {
		t.Fatalf("deadline error text %q", we.Error())
	}
}

func TestWorkerFingerprintMismatchRefused(t *testing.T) {
	w := newWorkerProc(fakeWorker(t, "other-fp", "cat >/dev/null"), testFP)
	defer w.kill()
	_, err := w.run(WorkRequest{Unit: exp.UnitSpec{Design: "Alloy", Workload: "x"}, Attempt: 1}, time.Second)
	if err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("mismatched worker admitted: %v", err)
	}
}

// TestServerRetriesThenFails drives a unit against a worker that always
// reports failure: the scheduler must retry up to MaxAttempts with one
// retry-table entry per attempt, then fail the unit terminally.
func TestServerRetriesThenFails(t *testing.T) {
	st, dir := openTestStore(t, testFP)
	s := New(Config{
		WorkerCmd:   fakeWorker(t, testFP, `while read line; do echo '{"ok":false,"error":"boom"}'; done`),
		Workers:     1,
		Store:       st,
		StoreDir:    dir,
		Fingerprint: testFP,
		MaxAttempts: 3,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
		Params:      exp.Quick(),
	})
	s.Start()
	defer s.Drain()
	if _, err := s.Submit([]exp.UnitSpec{{Design: "Alloy", Workload: "soplex"}}); err != nil {
		t.Fatal(err)
	}
	s.Wait()
	p := s.Progress()
	if p.Failed != 1 || p.Done != 0 {
		t.Fatalf("progress = %+v, want 1 failed", p)
	}
	u := p.Units[0]
	if u.State != StateFailed || u.Attempts != 3 || len(u.Errors) != 3 {
		t.Fatalf("unit = %+v, want 3 recorded attempts", u)
	}
	for i, e := range u.Errors {
		want := fmt.Sprintf("attempt %d: unit failed in worker: boom", i+1)
		if e != want {
			t.Fatalf("retry table entry %d = %q, want %q", i, e, want)
		}
	}
	if p.Retries != 2 {
		t.Fatalf("retries = %d, want 2", p.Retries)
	}
}

// TestServerBreakerSheds opens the per-design breaker with consecutive
// failures and verifies later dispatches of that design are shed instead
// of burning worker time.
func TestServerBreakerSheds(t *testing.T) {
	st, dir := openTestStore(t, testFP)
	s := New(Config{
		WorkerCmd:       fakeWorker(t, testFP, `while read line; do echo '{"ok":false,"error":"boom"}'; done`),
		Workers:         1,
		Store:           st,
		StoreDir:        dir,
		Fingerprint:     testFP,
		MaxAttempts:     4,
		BaseBackoff:     time.Millisecond,
		MaxBackoff:      2 * time.Millisecond,
		BreakerFails:    2,
		BreakerCooldown: time.Hour,
		Params:          exp.Quick(),
	})
	s.Start()
	defer s.Drain()
	if _, err := s.Submit([]exp.UnitSpec{{Design: "Alloy", Workload: "soplex"}}); err != nil {
		t.Fatal(err)
	}
	s.Wait()
	u := s.Progress().Units[0]
	if u.State != StateFailed {
		t.Fatalf("unit state %s, want failed", u.State)
	}
	// Two real attempts open the breaker; the third dispatch is shed.
	if u.Attempts != 2 || len(u.Errors) != 3 {
		t.Fatalf("unit = %+v, want 2 attempts then a shed entry", u)
	}
	if !strings.Contains(u.Errors[2], "circuit breaker open") {
		t.Fatalf("final entry %q does not record the shed", u.Errors[2])
	}
}

// TestServerEndToEndHTTP drives the full happy path over HTTP against a
// fake worker that replies with a precomputed valid envelope, then checks
// the degradation ladder and the readiness flip during drain.
func TestServerEndToEndHTTP(t *testing.T) {
	unit := exp.UnitSpec{Design: "Alloy", Workload: "soplex"}
	key, err := unit.Key()
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRun("Alloy", "soplex")
	env, err := exp.EncodeEnvelope(testFP, key, want)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := json.Marshal(WorkReply{OK: true, Envelope: env})
	if err != nil {
		t.Fatal(err)
	}
	replyPath := filepath.Join(t.TempDir(), "reply.json")
	if err := os.WriteFile(replyPath, append(reply, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	// Seed the store directory with a stale-era entry for a second unit,
	// so the degraded path has something to serve.
	staleUnit := exp.UnitSpec{Design: "BEAR", Workload: "libq"}
	staleKey, err := staleUnit.Key()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	old, err := exp.OpenStore(dir, "fp-old")
	if err != nil {
		t.Fatal(err)
	}
	staleRun := sampleRun("BEAR", "libq")
	old.Save(staleKey, staleRun)

	st, err := exp.OpenStore(dir, testFP)
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{
		WorkerCmd:   fakeWorker(t, testFP, fmt.Sprintf(`while read line; do cat %s; done`, replyPath)),
		Workers:     1,
		Store:       st,
		StoreDir:    dir,
		Fingerprint: testFP,
		Params:      exp.Quick(),
	})
	s.Start()
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	get := func(path string) (int, http.Header, []byte) {
		t.Helper()
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, resp.Header, buf.Bytes()
	}

	if code, _, _ := get("/healthz"); code != 200 {
		t.Fatalf("healthz = %d", code)
	}
	if code, _, _ := get("/readyz"); code != 200 {
		t.Fatalf("readyz = %d", code)
	}
	if code, _, _ := get("/result?design=Alloy&workload=soplex"); code != 404 {
		t.Fatalf("result before submit = %d, want 404", code)
	}

	body, _ := json.Marshal(map[string]any{"units": []exp.UnitSpec{unit}})
	resp, err := http.Post(hs.URL+"/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep = %d", resp.StatusCode)
	}
	s.Wait()

	code, hdr, raw := get("/result?design=Alloy&workload=soplex")
	if code != 200 || hdr.Get("X-Bear-Fingerprint") != testFP || hdr.Get("X-Bear-Stale") != "" {
		t.Fatalf("fresh result: code=%d headers=%v", code, hdr)
	}
	var got stats.Run
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, want) {
		t.Fatalf("served result differs:\n  want %+v\n  got  %+v", want, &got)
	}

	// Stale entries are not served while the pool is healthy...
	if code, _, _ := get("/result?design=BEAR&workload=libq"); code != 404 {
		t.Fatalf("healthy pool served stale (or wrong code %d)", code)
	}

	// ...but the drain degrades: readyz flips to 503 while healthz stays
	// 200, and the stale era is served with its fingerprint labelled.
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if code, _, _ := get("/healthz"); code != 200 {
		t.Fatalf("healthz during drain = %d, want 200", code)
	}
	if code, _, _ := get("/readyz"); code != 503 {
		t.Fatalf("readyz during drain = %d, want 503", code)
	}
	code, hdr, raw = get("/result?design=BEAR&workload=libq")
	if code != 200 || hdr.Get("X-Bear-Stale") != "fp-old" {
		t.Fatalf("degraded result: code=%d stale=%q", code, hdr.Get("X-Bear-Stale"))
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, staleRun) {
		t.Fatal("stale result bytes differ from the stored era")
	}
	resp, err = http.Post(hs.URL+"/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("sweep during drain = %d, want 503", resp.StatusCode)
	}
}

// TestDrainCheckpointsQueuedUnits drains a server whose pool never
// started: every queued unit must land in the resume manifest, sorted and
// readable by ReadCheckpoint.
func TestDrainCheckpointsQueuedUnits(t *testing.T) {
	st, dir := openTestStore(t, testFP)
	s := New(Config{
		WorkerCmd:   []string{"/bin/false"},
		Store:       st,
		StoreDir:    dir,
		Fingerprint: testFP,
		Params:      exp.Quick(),
	})
	units := []exp.UnitSpec{
		{Design: "BEAR", Workload: "libq"},
		{Design: "Alloy", Workload: "soplex"},
		{Design: "Alloy", Workload: "MIX1"},
	}
	if n, err := s.Submit(units); err != nil || n != 3 {
		t.Fatalf("Submit = (%d, %v)", n, err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	left, err := ReadCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 3 {
		t.Fatalf("checkpoint holds %d units, want 3", len(left))
	}
	p := s.Progress()
	if p.Interrupted != 3 {
		t.Fatalf("progress = %+v, want 3 interrupted", p)
	}
	// Stable order: sorted by unit key, so drain manifests diff cleanly.
	again := New(Config{WorkerCmd: []string{"/bin/false"}, Store: st, StoreDir: t.TempDir(),
		Fingerprint: testFP, Params: exp.Quick()})
	if n, err := again.Submit(left); err != nil || n != 3 {
		t.Fatalf("resubmitting checkpoint = (%d, %v)", n, err)
	}
	if _, err := ReadCheckpoint(t.TempDir()); err != nil {
		t.Fatalf("missing manifest should be a clean no-op: %v", err)
	}
}

// TestWorkerLoopProtocol exercises WorkerLoop's framing without running a
// simulation: hello first, an error reply for an invalid unit, clean EOF.
func TestWorkerLoopProtocol(t *testing.T) {
	in := strings.NewReader(`{"unit":{"design":"nope","workload":"x"},"attempt":1}` + "\n")
	var out bytes.Buffer
	r := exp.NewRunner(exp.Quick())
	if err := WorkerLoop(r, testFP, in, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("worker emitted %d frames, want hello + reply:\n%s", len(lines), out.String())
	}
	var hello Hello
	if err := json.Unmarshal([]byte(lines[0]), &hello); err != nil || !hello.Hello || hello.Fingerprint != testFP {
		t.Fatalf("hello frame %q (err %v)", lines[0], err)
	}
	var reply WorkReply
	if err := json.Unmarshal([]byte(lines[1]), &reply); err != nil {
		t.Fatal(err)
	}
	if reply.OK || !strings.Contains(reply.Error, "unknown design") {
		t.Fatalf("reply = %+v", reply)
	}
}
