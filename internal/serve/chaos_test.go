package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bear/internal/exp"
	"bear/internal/faultpoint"
)

// TestChaosSweepByteIdentical is the acceptance gate for the fault-injection
// work: a bearserve sweep run with faults armed — one worker killed mid-unit,
// one worker hung past its deadline, one torn store write — must complete
// with results byte-identical to an uninjected run, and each injected fault
// must appear exactly once in the deterministic failure/retry table.
//
// It builds the real bearbench binary and drives real worker subprocesses,
// so it is skipped under -short.
func TestChaosSweepByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs real simulator binaries")
	}
	bin := filepath.Join(t.TempDir(), "bearbench")
	// -buildvcs=false pins the build fingerprint to "dev" whether or not
	// the tree is dirty, keeping server and worker in agreement.
	build := exec.Command("go", "build", "-buildvcs=false", "-o", bin, "bear/cmd/bearbench")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building bearbench: %v\n%s", err, out)
	}
	fingerprint := exp.Quick().Fingerprint("dev")

	units := []exp.UnitSpec{
		{Design: "Alloy", Workload: "soplex"},
		{Design: "Alloy", Workload: "libq"},
		{Design: "BEAR", Workload: "soplex"},
	}
	keys := make([]string, len(units))
	for i, u := range units {
		k, err := u.Key()
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = k
	}

	// Worker-side plan: kill the unit-0 worker mid-unit on its first
	// attempt, hang the unit-1 worker past the deadline on its first
	// attempt. Server-side plan: tear unit-2's store write once. Keyed by
	// (site, unit key, attempt), the plan replays byte-identically no
	// matter how the pool interleaves.
	workerPlan := fmt.Sprintf("kill-worker@worker.run/%s;hang@worker.run/%s", keys[0], keys[1])
	serverPlan := fmt.Sprintf("torn-write@store.save/%s", keys[2])

	runSweep := func(t *testing.T, workerArgs []string, armed string) (map[string][]byte, Progress) {
		t.Helper()
		if armed != "" {
			plan, err := faultpoint.ParsePlan(armed)
			if err != nil {
				t.Fatal(err)
			}
			faultpoint.Arm(plan)
			defer faultpoint.Disarm()
		}
		dir := t.TempDir()
		store, err := exp.OpenStore(dir, fingerprint)
		if err != nil {
			t.Fatal(err)
		}
		s := New(Config{
			WorkerCmd:    append([]string{bin, "-worker", "-quick"}, workerArgs...),
			Workers:      2,
			Store:        store,
			StoreDir:     dir,
			Fingerprint:  fingerprint,
			MaxAttempts:  3,
			BaseBackoff:  50 * time.Millisecond,
			MaxBackoff:   200 * time.Millisecond,
			UnitDeadline: 8 * time.Second,
			Params:       exp.Quick(),
		})
		s.Start()
		defer s.Drain()
		hs := httptest.NewServer(s.Handler())
		defer hs.Close()

		body, _ := json.Marshal(map[string]any{"units": units})
		resp, err := http.Post(hs.URL+"/sweep", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("sweep = %d", resp.StatusCode)
		}
		s.Wait()

		results := map[string][]byte{}
		for _, u := range units {
			resp, err := http.Get(hs.URL + "/result?design=" + u.Design + "&workload=" + u.Workload)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Fatalf("result %s = %d: %s", u, resp.StatusCode, buf.String())
			}
			if got := resp.Header.Get("X-Bear-Stale"); got != "" {
				t.Fatalf("result %s served stale (%s) after a completed sweep", u, got)
			}
			results[u.String()] = buf.Bytes()
		}
		return results, s.Progress()
	}

	clean, cleanProg := runSweep(t, nil, "")
	if cleanProg.Done != 3 || cleanProg.Failed != 0 || cleanProg.Retries != 0 {
		t.Fatalf("clean run progress = %+v", cleanProg)
	}
	if len(cleanProg.Faults) != 0 {
		t.Fatalf("clean run recorded injected faults: %v", cleanProg.Faults)
	}

	injected, prog := runSweep(t, []string{"-faultplan", workerPlan}, serverPlan)

	// Every unit recovers: the sweep completes despite one killed worker,
	// one hang, and one torn write.
	if prog.Done != 3 || prog.Failed != 0 {
		t.Fatalf("injected run progress = %+v, want 3 done", prog)
	}
	if prog.Retries != 3 {
		t.Fatalf("injected run retries = %d, want exactly 3 (one per fault)", prog.Retries)
	}

	// Byte-identity: recovery must not perturb results.
	for _, u := range units {
		if !bytes.Equal(clean[u.String()], injected[u.String()]) {
			t.Errorf("%s: result bytes differ between clean and injected runs\nclean:    %s\ninjected: %s",
				u, clean[u.String()], injected[u.String()])
		}
	}

	// The failure/retry table attributes each fault to its unit, exactly
	// once, with the right failure classification.
	wantErr := map[string]string{
		keys[0]: "worker exited",          // kill-worker → process death
		keys[1]: "deadline",               // hang → watchdog deadline
		keys[2]: "read-back verification", // torn write → corrupt entry
	}
	seen := map[string]int{}
	for _, u := range prog.Units {
		key, err := exp.UnitSpec{Design: u.Design, Workload: u.Workload}.Key()
		if err != nil {
			t.Fatal(err)
		}
		want := wantErr[key]
		if len(u.Errors) != 1 || !strings.Contains(u.Errors[0], want) {
			t.Errorf("unit %s/%s: errors = %v, want one %q failure", u.Design, u.Workload, u.Errors, want)
		}
		if u.Attempts != 2 {
			t.Errorf("unit %s/%s: attempts = %d, want 2 (fault then recovery)", u.Design, u.Workload, u.Attempts)
		}
		seen[key]++
	}
	if len(seen) != 3 {
		t.Fatalf("progress covered %d units, want 3", len(seen))
	}

	// The server-side registry shows its torn write exactly once (the
	// worker-side faults fire in subprocesses, in their own registries).
	wantFault := serverPlan + "#1"
	if len(prog.Faults) != 1 || prog.Faults[0] != wantFault {
		t.Fatalf("server fault table = %v, want exactly [%s]", prog.Faults, wantFault)
	}
}
