package serve

import "time"

// breaker is a per-design circuit breaker. Designs whose units keep
// faulting — a broken model, a workload that reliably trips the watchdog —
// would otherwise monopolise the pool with doomed retries; after
// `threshold` consecutive failures the breaker opens and the scheduler
// sheds that design's load (failing its units fast and serving stale
// results instead, the degradation ladder in ARCHITECTURE.md). After
// `cooldown` the breaker half-opens and admits a single probe unit: a
// success closes it, another failure re-opens it for a fresh cooldown.
//
// The caller provides timestamps (the scheduler's clock), keeping the
// breaker itself a pure, directly testable state machine. Methods are not
// goroutine-safe; the scheduler serialises access under its own lock.
type breaker struct {
	threshold int
	cooldown  time.Duration

	fails    int // consecutive failures since the last success
	open     bool
	openedAt time.Time
	probing  bool // half-open: one probe admitted, result pending
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a unit of this design may dispatch now. In the
// half-open state the first caller becomes the probe; others stay shed
// until the probe's verdict arrives.
func (b *breaker) allow(now time.Time) bool {
	if !b.open {
		return true
	}
	if b.probing || now.Sub(b.openedAt) < b.cooldown {
		return false
	}
	b.probing = true
	return true
}

// success records a completed unit and closes the breaker.
func (b *breaker) success() {
	b.fails = 0
	b.open = false
	b.probing = false
}

// failure records a failed attempt; enough consecutive ones open (or
// re-open) the breaker.
func (b *breaker) failure(now time.Time) {
	b.fails++
	b.probing = false
	if b.fails >= b.threshold {
		b.open = true
		b.openedAt = now
	}
}
