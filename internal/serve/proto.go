// Package serve is bearserve's control plane: a long-running HTTP daemon
// that schedules sweep units onto a supervised pool of worker subprocesses
// (bearbench -worker), so a simulator crash, watchdog trip or OOM kills
// one unit's process — never the server.
//
// The package follows the Banshee-style software/hardware split from the
// cross-paper notes: a thin, always-up control plane (this package) over
// replaceable, crash-prone execution units (worker processes running the
// fully determinism-linted simulation stack). Robustness machinery lives
// here and only here: per-unit wall-clock deadlines derived from
// instruction budgets, retry with exponential backoff and deterministic
// jitter, a per-design circuit breaker, graceful degradation onto stale
// exp.Store results, and a SIGTERM drain that checkpoints progress into
// the resume store. Because everything under internal/serve is off the
// simulation path, the package is exempt from the determinism lint the
// sanctioned way (see cmd/simlint's repoConfig) — wall clocks, timers and
// goroutines are its job.
//
// Worker protocol (line-delimited JSON over stdin/stdout):
//
//	worker → server   Hello{fingerprint}            once, at startup
//	server → worker   WorkRequest{unit, attempt}    one per scheduled unit
//	worker → server   WorkReply{ok, envelope|error} one per request
//
// A reply's Envelope is exactly the exp.Store entry the worker would have
// persisted (exp.EncodeEnvelope), so the server checksum-verifies the
// frame with Store.Ingest before trusting it; a worker that emits garbage,
// dies, or hangs past its deadline fails only that unit's attempt.
package serve

import (
	"encoding/json"

	"bear/internal/exp"
)

// Hello is the worker's first stdout line: its store fingerprint, which
// must match the server's exactly — a worker built from different code or
// launched with different parameters would poison the result store.
type Hello struct {
	Hello       bool   `json:"hello"`
	Fingerprint string `json:"fingerprint"`
}

// WorkRequest asks a worker to simulate one unit. Attempt is the server's
// 1-based retry counter for the unit; workers feed it to faultpoint.HitAt
// so an injected fault pinned to attempt 1 does not re-fire in the
// replacement process serving attempt 2.
type WorkRequest struct {
	Unit    exp.UnitSpec `json:"unit"`
	Attempt int          `json:"attempt"`
}

// WorkReply reports one unit's outcome. Exactly one of Envelope (the
// exp.Store entry bytes for a completed simulation) or Error is set.
type WorkReply struct {
	OK       bool            `json:"ok"`
	Error    string          `json:"error,omitempty"`
	Envelope json.RawMessage `json:"envelope,omitempty"`
}
