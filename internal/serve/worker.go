package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"bear/internal/exp"
	"bear/internal/faultpoint"
)

// WorkerLoop is the body of a `bearbench -worker` process: it announces
// its fingerprint, then serves WorkRequests from in until EOF, emitting
// one WorkReply line per request on out. Each unit simulates on the
// calling process's Runner, so a crash — real or injected — takes down
// exactly one unit's process while the server retries it elsewhere.
//
// The faultpoint site "worker.run" models the ways a worker can betray
// its supervisor, keyed by unit key with the externally supplied attempt
// index (see faultpoint.HitAt): KillWorker dies abruptly with no output,
// as the OOM killer would; Hang stops making progress until the server's
// deadline trips; GarbageStdout corrupts the protocol stream.
func WorkerLoop(r *exp.Runner, fingerprint string, in io.Reader, out io.Writer) error {
	enc := json.NewEncoder(out)
	if err := enc.Encode(Hello{Hello: true, Fingerprint: fingerprint}); err != nil {
		return fmt.Errorf("serve: worker hello: %w", err)
	}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		var req WorkRequest
		if err := json.Unmarshal(sc.Bytes(), &req); err != nil {
			return fmt.Errorf("serve: worker: undecodable request %q: %w", sc.Text(), err)
		}
		key, err := req.Unit.Key()
		if err != nil {
			if err := enc.Encode(WorkReply{Error: err.Error()}); err != nil {
				return err
			}
			continue
		}
		switch faultpoint.HitAt("worker.run", key, req.Attempt) {
		case faultpoint.KillWorker:
			os.Exit(137)
		case faultpoint.Hang:
			select {} // no progress until the supervisor's deadline kills us
		case faultpoint.GarbageStdout:
			fmt.Fprintln(out, `}} not a protocol frame {{`)
			continue
		}
		reply := runOne(r, fingerprint, key, req.Unit)
		if err := enc.Encode(reply); err != nil {
			return err
		}
	}
	return sc.Err()
}

func runOne(r *exp.Runner, fingerprint, key string, u exp.UnitSpec) WorkReply {
	res, err := r.RunUnit(u)
	if err != nil {
		return WorkReply{Error: err.Error()}
	}
	env, err := exp.EncodeEnvelope(fingerprint, key, res)
	if err != nil {
		return WorkReply{Error: fmt.Sprintf("encoding result envelope: %v", err)}
	}
	return WorkReply{OK: true, Envelope: env}
}
