// Package rng provides a small, fast, deterministic pseudo-random number
// generator used throughout the simulator. Every source of randomness in a
// simulation (workload address streams, probabilistic bypass decisions) is
// derived from an explicit seed so that runs are exactly reproducible.
//
// # Seeding contract
//
// The generator's output is part of the simulator's stable interface: the
// golden experiment outputs (fig12, fig13, tab4) depend on the exact draw
// sequence, so the algorithm (xorshift64*), the zero-seed remap constant
// and the Fork derivation constant must not change without regenerating
// every golden file. The contract, pinned by TestGoldenSequence:
//
//   - equal seeds produce equal sequences, on every platform and Go
//     version (the implementation is pure integer arithmetic);
//   - a zero seed is remapped to a fixed non-zero constant, never to
//     something time- or address-derived;
//   - Fork derives an independent stream from the parent's current state,
//     deterministically — forking at the same point in the parent sequence
//     always yields the same child sequence;
//   - components must obtain randomness only through this package, never
//     from math/rand or the wall clock (enforced by simlint's determinism
//     rule; see ARCHITECTURE.md "Enforced invariants").
package rng

// Source is an xorshift64* generator. The zero value is not valid; use New.
type Source struct {
	state uint64
}

// New returns a Source seeded with seed. A zero seed is remapped to a fixed
// non-zero constant because xorshift has an all-zero fixed point.
func New(seed uint64) *Source {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Source{state: seed}
}

// Uint64 returns the next value in the sequence.
func (s *Source) Uint64() uint64 {
	x := s.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	s.state = x
	return x * 0x2545f4914f6cdd1d
}

// Uint64n returns a value uniformly distributed in [0, n). n must be > 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Multiply-shift reduction; bias is negligible for simulation purposes
	// and the method is branch-free and fast.
	hi, _ := mul64(s.Uint64(), n)
	return hi
}

// Intn returns a value uniformly distributed in [0, n). n must be > 0.
func (s *Source) Intn(n int) int {
	return int(s.Uint64n(uint64(n)))
}

// Float64 returns a value uniformly distributed in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// Fork derives an independent child generator from the current state. The
// child's stream does not overlap the parent's for any practical length.
func (s *Source) Fork() *Source {
	return New(s.Uint64() ^ 0xd1342543de82ef95)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return hi, lo
}
