package rng

import (
	"math"
	"testing"
)

// TestGoldenSequence pins the exact draw sequence of the generator. These
// values are load-bearing: the golden experiment outputs (fig12, fig13,
// tab4) embed them transitively, so a change here means every golden file
// must be regenerated and the divergence explained. See the package doc's
// seeding contract.
func TestGoldenSequence(t *testing.T) {
	t.Run("seed42", func(t *testing.T) {
		want := []uint64{
			0x56ce4ab7719ba3a0,
			0xc841eb53ebbb2dda,
			0xca466be0c9980276,
			0xf1acc7334a7b70df,
			0xc3af4dd7fb900a06,
			0xd5f30c2206dfcea3,
			0x3447be26f68e2c72,
			0x70977e1b66b10e4f,
		}
		s := New(42)
		for i, w := range want {
			if got := s.Uint64(); got != w {
				t.Fatalf("draw %d: got %#016x, want %#016x", i, got, w)
			}
		}
	})

	t.Run("zeroSeedRemap", func(t *testing.T) {
		want := []uint64{
			0x0d83b3e29a21487a,
			0x54c44c79f1fe9d67,
			0xa845f342007a0e78,
			0x7d6e0b878a794779,
		}
		z := New(0)
		for i, w := range want {
			if got := z.Uint64(); got != w {
				t.Fatalf("zero-seed draw %d: got %#016x, want %#016x", i, got, w)
			}
		}
	})

	t.Run("derivedDraws", func(t *testing.T) {
		d := New(42)
		if got := d.Uint64n(1000); got != 339 {
			t.Errorf("Uint64n(1000) = %d, want 339", got)
		}
		if got := d.Intn(97); got != 75 {
			t.Errorf("Intn(97) = %d, want 75", got)
		}
		if got := d.Float64(); math.Abs(got-0.79013704526877859) > 1e-18 {
			t.Errorf("Float64() = %.17g, want 0.79013704526877859", got)
		}
		if got := d.Bool(0.5); got != false {
			t.Errorf("Bool(0.5) = %v, want false", got)
		}
	})

	t.Run("fork", func(t *testing.T) {
		want := []uint64{
			0x956c4787fa481dd7,
			0x419c8848dd8e93da,
			0xd4c76f7e85f2cb7e,
			0x8a76a3afd9b2d3f1,
		}
		f := New(42).Fork()
		for i, w := range want {
			if got := f.Uint64(); got != w {
				t.Fatalf("fork draw %d: got %#016x, want %#016x", i, got, w)
			}
		}
	})
}
