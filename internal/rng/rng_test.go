package rng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequences diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestZeroSeedRemapped(t *testing.T) {
	s := New(0)
	if s.Uint64() == 0 && s.Uint64() == 0 {
		t.Fatal("zero seed stuck at zero")
	}
}

func TestUint64nRange(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint32) bool {
		if n == 0 {
			n = 1
		}
		s := New(seed)
		for i := 0; i < 50; i++ {
			if s.Uint64n(uint64(n)) >= uint64(n) {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n == 0")
		}
	}()
	New(1).Uint64n(0)
}

func TestFloat64Range(t *testing.T) {
	s := New(7)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(11)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if got < 0.28 || got > 0.32 {
		t.Fatalf("Bool(0.3) frequency = %.3f, want about 0.3", got)
	}
}

func TestBoolEdges(t *testing.T) {
	s := New(3)
	for i := 0; i < 100; i++ {
		if s.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !s.Bool(1.0) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestIntnUniformish(t *testing.T) {
	s := New(5)
	const buckets = 8
	counts := make([]int, buckets)
	const n = 80000
	for i := 0; i < n; i++ {
		counts[s.Intn(buckets)]++
	}
	for i, c := range counts {
		frac := float64(c) / n
		if frac < 0.10 || frac > 0.15 {
			t.Fatalf("bucket %d has frequency %.3f, want about 0.125", i, frac)
		}
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(9)
	child := parent.Fork()
	// Child stream should not replay the parent's subsequent stream.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("fork correlated with parent: %d matches", same)
	}
}

func TestMul64(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{1 << 32, 1 << 32, 1, 0},
		{^uint64(0), ^uint64(0), ^uint64(0) - 1, 1},
		{^uint64(0), 2, 1, ^uint64(0) - 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%#x,%#x) = (%#x,%#x), want (%#x,%#x)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}
