package dram

import (
	"testing"

	"bear/internal/config"
	"bear/internal/event"
	"bear/internal/rng"
)

// TestDifferentialFuzz holds the incremental per-bank scheduler to the
// naive reference picker (reference.go) over randomized geometries and
// request streams. SelfCheck re-derives every pick through refPick and
// panics on any divergence in bank, queue position, start cycle or row-hit
// classification, so a passing run certifies bit-identical scheduling; the
// periodic CheckInvariants calls additionally diff the per-bank class
// memos, occupancy bits and scan-window accounting against fresh
// recomputation mid-stream, not just at quiescence.
//
// The stream generator is aimed at the scheduler's hard cases: refresh
// windows the candidate starts straddle, write floods that trip the drain
// watermarks and push pools past the scan limit into windowed mode, tight
// row spaces that mix row hits and conflicts per bank, bursts of varying
// length (refresh alignment depends on it), and non-monotone enqueue
// times — requests issued at now + a random path latency, the way the
// cache hierarchy issues them — which is exactly the case that breaks
// naive "first hit of the bank wins" reasoning.
func TestDifferentialFuzz(t *testing.T) {
	const trials = 64
	seeds := rng.New(0xbea7d1ff)
	for trial := 0; trial < trials; trial++ {
		seed := seeds.Uint64()
		t.Run("", func(t *testing.T) {
			runDiffTrial(t, seed)
		})
	}
}

func runDiffTrial(t *testing.T, seed uint64) {
	r := rng.New(seed)
	cfg := config.DRAM{
		Channels: 1 + int(r.Uint64n(3)),
		// Up to 128 banks/channel: geometries past 64 spill the occupancy
		// bitmask into its second word (the Figure 15 sweep's regime).
		Banks:         1 << r.Uint64n(8),
		BytesPerCycle: 4 << r.Uint64n(3),
		RowBytes:      2048,
		TCAS:          5 + r.Uint64n(40),
		TRCD:          5 + r.Uint64n(40),
		TRP:           5 + r.Uint64n(40),
		TRAS:          20 + r.Uint64n(130),
	}
	if r.Uint64n(2) == 0 {
		cfg.TFAW = 50 + r.Uint64n(200)
	}
	if r.Uint64n(2) == 0 {
		cfg.TRFC = 50 + r.Uint64n(250)
		cfg.TREFI = cfg.TRFC + 300 + r.Uint64n(1700)
	}
	cfg.WriteQLo = 2 + int(r.Uint64n(8))
	cfg.WriteQHi = cfg.WriteQLo + 2 + int(r.Uint64n(24))

	var q event.Queue
	m := New("fuzz", cfg, &q)
	m.SelfCheck = true

	rows := 1 + r.Uint64n(6) // tiny row space: hits and conflicts interleave
	steps := 100 + int(r.Uint64n(300))
	reads, completions := 0, 0
	var now uint64
	for i := 0; i < steps; i++ {
		if cfg.TREFI > 0 && r.Uint64n(8) == 0 {
			// Jump near a refresh boundary so candidate bursts straddle it.
			now += cfg.TREFI/2 + r.Uint64n(cfg.TREFI)
		} else {
			now += r.Uint64n(40)
		}
		q.RunUntil(now)

		n := 1 + r.Uint64n(4)
		if r.Uint64n(10) == 0 {
			// Flood: trips the drain watermarks and pushes a pool past the
			// scan limit into windowed mode.
			n += scanLimit + r.Uint64n(scanLimit)
		}
		for j := uint64(0); j < n; j++ {
			issue := now + r.Uint64n(60) // hierarchy-style future issue cycle
			ch := int(r.Uint64n(uint64(cfg.Channels)))
			bk := int(r.Uint64n(uint64(cfg.Banks)))
			row := r.Uint64n(rows)
			bytes := int(16 * (1 + r.Uint64n(8)))
			if r.Uint64n(3) == 0 {
				m.Write(issue, ch, bk, row, bytes)
			} else {
				reads++
				m.Read(issue, ch, bk, row, bytes, func(uint64) { completions++ })
			}
		}
		if i%16 == 0 {
			if err := m.CheckInvariants(0); err != nil {
				t.Fatalf("seed %#x step %d: %v", seed, i, err)
			}
		}
	}
	q.Run(nil)
	if err := m.CheckInvariants(0); err != nil {
		t.Fatalf("seed %#x drained: %v", seed, err)
	}
	if completions != reads {
		t.Fatalf("seed %#x: %d of %d reads completed", seed, completions, reads)
	}
	if p := m.Pending(); p != 0 {
		t.Fatalf("seed %#x: %d requests pending after drain", seed, p)
	}
	// Queue-depth plausibility only holds when banks are scarce enough to
	// keep writes queued; wide geometries commit each write on arrival and
	// legitimately never build a queue.
	if cfg.Banks <= 8 && m.Stats.MaxWriteQLen > 0 && m.Stats.MaxWriteQLen < cfg.WriteQLo && m.Stats.Writes > uint64(cfg.WriteQHi) {
		t.Fatalf("seed %#x: MaxWriteQLen %d implausible for %d writes", seed, m.Stats.MaxWriteQLen, m.Stats.Writes)
	}
}
