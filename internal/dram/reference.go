package dram

import "bear/internal/fault"

// This file holds the scheduler's semantic ground truth and the machinery
// that holds the incremental pick to it.
//
// refPick is the retired pre-incremental algorithm, kept verbatim in
// spirit: walk the pool's scanLimit oldest requests in arrival order,
// compute burstStart for each, and keep the first strict improvement
// (earliest start, row-hit on ties). It is slow and obviously correct.
//
// Memory.SelfCheck routes every live pick through verifyPick, which
// re-derives the decision with refPick and panics with a typed invariant
// fault on any divergence — bank, queue position, start cycle or row-hit
// bit. The watchdog's -check mode enables it, so every golden experiment
// run doubles as an exhaustive differential test of the incremental
// scheduler on real request streams. CheckInvariants additionally
// cross-checks the memoized per-bank state (class positions, hit counts,
// window accounting, the horizon-stall memo) against fresh recomputation
// at every watchdog epoch.

// refPick recomputes a pick the naive way: scan the pool's scanLimit
// oldest requests in global arrival order (a k-way merge of the per-bank
// FIFOs by seq) calling burstStart on each. Selection keeps the first
// strict improvement, so ties resolve to the earliest arrival, and a
// row hit displaces an equal-start row miss — the exact total order the
// incremental pick minimises.
func (m *Memory) refPick(now uint64, c *channel, p *pool) (bank int, idx int32, start uint64, rowHit bool) {
	busFree := max64(c.busFreeAt, now)
	cur := make([]int32, len(p.bq))
	limit := p.size
	if limit > scanLimit {
		limit = scanLimit
	}
	bank = -1
	for n := 0; n < limit; n++ {
		sel := -1
		var minSeq uint64
		for b := range p.bq {
			if w := int(cur[b]); w < p.bq[b].Len() {
				if s := p.bq[b].At(w).seq; sel < 0 || s < minSeq {
					sel, minSeq = b, s
				}
			}
		}
		r := p.bq[sel].At(int(cur[sel]))
		s, h := m.burstStart(now, c, r, busFree)
		if bank < 0 || s < start || (s == start && h && !rowHit) {
			bank, idx, start, rowHit = sel, cur[sel], s, h
		}
		cur[sel]++
	}
	return bank, idx, start, rowHit
}

// verifyPick asserts that the incremental pick matches the reference
// algorithm on the same state.
func (m *Memory) verifyPick(now uint64, c *channel, p *pool, bank int, idx int32, start uint64, rowHit bool) {
	rb, ri, rs, rh := m.refPick(now, c, p)
	if rb != bank || ri != idx || rs != start || rh != rowHit {
		panic(fault.Invariantf("dram",
			"%s: incremental pick (bank %d pos %d start %d hit %v) diverges from reference (bank %d pos %d start %d hit %v) at cycle %d",
			m.Name, bank, idx, start, rowHit, rb, ri, rs, rh, now))
	}
}

// CheckInvariants verifies the scheduler's structural invariants, for the
// watchdog's -check mode:
//
//   - per-channel commit counts stay within the bank count (at most one
//     reserved bus window per bank), and — when maxQueued > 0 — total
//     request occupancy stays under maxQueued, which converts unbounded
//     queue growth into a diagnosable error instead of memory exhaustion;
//   - every queued request sits in the FIFO of its own channel, bank and
//     pool, in strictly increasing arrival order;
//   - the incremental per-bank memos (first row hit / first row miss /
//     hit count, the occupancy bitmask, the pool sizes, and the scan-
//     window accounting) agree with a fresh recomputation from the queue
//     contents, so memo-staleness bugs surface as typed invariant faults
//     instead of silent timing drift;
//   - a live horizon-stall memo still reproduces from a reference pick at
//     the cycle it was taken.
func (m *Memory) CheckInvariants(maxQueued int) error {
	pending := 0
	for i, c := range m.ch {
		if c.committed < 0 || c.committed > m.cfg.Banks {
			return fault.Invariantf("dram", "%s: channel %d has %d committed requests (banks=%d)",
				m.Name, i, c.committed, m.cfg.Banks)
		}
		if err := m.checkPool(i, c, &c.read, false); err != nil {
			return err
		}
		if err := m.checkPool(i, c, &c.write, true); err != nil {
			return err
		}
		if err := m.checkStallMemo(i, c); err != nil {
			return err
		}
		pending += c.read.size + c.write.size + c.committed
	}
	if maxQueued > 0 && pending > maxQueued {
		return fault.Invariantf("dram", "%s: %d requests in flight exceeds the occupancy bound %d",
			m.Name, pending, maxQueued)
	}
	return nil
}

// checkPool recomputes one pool's incremental scheduling state from its
// queue contents and diffs it against the maintained memos.
func (m *Memory) checkPool(ch int, c *channel, p *pool, isWrite bool) error {
	name := "read"
	if isWrite {
		name = "write"
	}
	total, inWin := 0, 0
	for b := range p.bq {
		q := &p.bq[b]
		n := q.Len()
		total += n
		if occupied := p.occ.has(b); occupied != (n > 0) {
			return fault.Invariantf("dram", "%s: channel %d %s bank %d occupancy bit %v with %d queued",
				m.Name, ch, name, b, occupied, n)
		}
		bk := &c.banks[b]
		fh, fm, nh := int32(classNone), int32(classNone), int32(0)
		var lastSeq uint64
		for i := 0; i < n; i++ {
			r := q.At(i)
			if r.Channel != ch || r.Bank != b || r.Write != isWrite {
				return fault.Invariantf("dram", "%s: channel %d %s bank %d holds request for channel %d bank %d write=%v",
					m.Name, ch, name, b, r.Channel, r.Bank, r.Write)
			}
			if e := q.at(i); e.seq != r.seq || e.row != r.Row || e.enq != r.enqueued || e.bur != r.burst {
				return fault.Invariantf("dram", "%s: channel %d %s bank %d entry mirror diverged at position %d",
					m.Name, ch, name, b, i)
			}
			if i > 0 && r.seq <= lastSeq {
				return fault.Invariantf("dram", "%s: channel %d %s bank %d arrival order broken at position %d",
					m.Name, ch, name, b, i)
			}
			lastSeq = r.seq
			if bk.hasOpen && bk.openRow == r.Row {
				nh++
				if fh == classNone {
					fh = int32(i)
				}
			} else if fm == classNone {
				fm = int32(i)
			}
		}
		if p.firstHit[b] != classStale {
			if p.firstHit[b] != fh || p.firstMiss[b] != fm || p.nHit[b] != nh {
				return fault.Invariantf("dram", "%s: channel %d %s bank %d class memo (hit %d miss %d n %d) != fresh (hit %d miss %d n %d)",
					m.Name, ch, name, b, p.firstHit[b], p.firstMiss[b], p.nHit[b], fh, fm, nh)
			}
		}
		w := int(p.win[b])
		if w < 0 || w > n {
			return fault.Invariantf("dram", "%s: channel %d %s bank %d window count %d with %d queued",
				m.Name, ch, name, b, w, n)
		}
		inWin += w
	}
	if total != p.size {
		return fault.Invariantf("dram", "%s: channel %d %s pool size %d != %d queued",
			m.Name, ch, name, p.size, total)
	}
	want := p.size
	if want > scanLimit {
		want = scanLimit
	}
	if inWin != want {
		return fault.Invariantf("dram", "%s: channel %d %s window covers %d of %d requests (want %d)",
			m.Name, ch, name, inWin, p.size, want)
	}
	// The window must hold exactly the pool's scanLimit oldest arrivals:
	// every in-window seq below every excluded one.
	var maxIn uint64
	minEx := ^uint64(0)
	for b := range p.bq {
		q := &p.bq[b]
		w := int(p.win[b])
		if w > 0 && q.At(w-1).seq > maxIn {
			maxIn = q.At(w - 1).seq
		}
		if w < q.Len() && q.At(w).seq < minEx {
			minEx = q.At(w).seq
		}
	}
	if maxIn >= minEx {
		return fault.Invariantf("dram", "%s: channel %d %s window admits arrival %d over excluded %d",
			m.Name, ch, name, maxIn, minEx)
	}
	// Every currently excluded request must still be reachable through the
	// excluded ring, in arrival order — the promote path pops the ring
	// front, so a missing or misordered entry would silently freeze a
	// request outside the window. Dead ring entries (from earlier drains
	// through the window boundary) are skipped, mirroring remove.
	cur := make([]int32, len(p.bq))
	for b := range p.bq {
		cur[b] = p.win[b]
	}
	ri := p.ex.head
	for {
		sel := -1
		var minSeq uint64
		for b := range p.bq {
			if w := int(cur[b]); w < p.bq[b].Len() {
				if s := p.bq[b].At(w).seq; sel < 0 || s < minSeq {
					sel, minSeq = b, s
				}
			}
		}
		if sel < 0 {
			break
		}
		for ri < len(p.ex.seq) && p.ex.seq[ri] != minSeq {
			ri++
		}
		if ri == len(p.ex.seq) {
			return fault.Invariantf("dram", "%s: channel %d %s excluded arrival %d missing from the ring",
				m.Name, ch, name, minSeq)
		}
		if int(p.ex.bank[ri]) != sel {
			return fault.Invariantf("dram", "%s: channel %d %s ring entry for arrival %d names bank %d, not %d",
				m.Name, ch, name, minSeq, p.ex.bank[ri], sel)
		}
		ri++
		cur[sel]++
	}
	return nil
}

// checkStallMemo revalidates a live horizon-stall memo: queue contents,
// bank state and the bus cannot have changed since it was taken (those
// paths clear it), so a reference pick at the memoized cycle must
// reproduce the memoized best start. The write-drain hysteresis is applied
// idempotently to recover which pool the stalled pick drew from.
func (m *Memory) checkStallMemo(ch int, c *channel) error {
	if !c.stallValid {
		return nil
	}
	drain := c.draining
	if c.write.size >= m.cfg.WriteQHi {
		drain = true
	}
	if c.write.size <= m.cfg.WriteQLo {
		drain = false
	}
	var p *pool
	switch {
	case c.read.size > 0 && !drain:
		p = &c.read
	case c.write.size > 0:
		p = &c.write
	case c.read.size > 0:
		p = &c.read
	default:
		return fault.Invariantf("dram", "%s: channel %d holds a stall memo with empty queues",
			m.Name, ch)
	}
	if _, _, start, _ := m.refPick(c.stallNow, c, p); start != c.stallStart {
		return fault.Invariantf("dram", "%s: channel %d stall memo start %d != reference %d at cycle %d",
			m.Name, ch, c.stallStart, start, c.stallNow)
	}
	return nil
}
