package dram

import (
	"testing"
	"testing/quick"

	"bear/internal/config"
	"bear/internal/event"
)

func testCfg() config.DRAM {
	return config.DRAM{
		Channels: 2, Banks: 4, BytesPerCycle: 16, RowBytes: 2048,
		TCAS: 36, TRCD: 36, TRP: 36, TRAS: 144,
		WriteQHi: 8, WriteQLo: 4,
	}
}

func TestColdReadLatency(t *testing.T) {
	var q event.Queue
	m := New("t", testCfg(), &q)
	var done uint64
	m.Read(0, 0, 0, 0, 80, func(now uint64) { done = now })
	q.Run(nil)
	// Cold bank: tRCD + tCAS + burst(80/16 = 5).
	want := uint64(36 + 36 + 5)
	if done != want {
		t.Fatalf("cold read completed at %d, want %d", done, want)
	}
	if m.Stats.Reads != 1 || m.Stats.ReadBytes != 80 {
		t.Fatalf("stats = %+v", m.Stats)
	}
}

func TestRowHitFasterThanConflict(t *testing.T) {
	var q event.Queue
	m := New("t", testCfg(), &q)
	var t1, t2 uint64
	m.Read(0, 0, 0, 5, 64, func(now uint64) { t1 = now })
	q.Run(nil)
	// Same row: row hit.
	m.Read(q.Now(), 0, 0, 5, 64, func(now uint64) { t2 = now })
	q.Run(nil)
	hitLat := t2 - t1
	if hitLat != 36+4 {
		t.Fatalf("row-hit latency = %d, want %d", hitLat, 36+4)
	}
	// Different row on same bank: precharge + activate + CAS, and the
	// precharge must respect tRAS since the first activation.
	start := q.Now()
	var t3 uint64
	m.Read(start, 0, 0, 9, 64, func(now uint64) { t3 = now })
	q.Run(nil)
	if t3-start <= hitLat {
		t.Fatalf("row conflict (%d) not slower than row hit (%d)", t3-start, hitLat)
	}
	if m.Stats.RowHits != 1 || m.Stats.RowMisses != 2 {
		t.Fatalf("row stats = %+v", m.Stats)
	}
}

func TestRowHitsPipelineOnBus(t *testing.T) {
	var q event.Queue
	m := New("t", testCfg(), &q)
	// 10 row hits to the same bank should stream at burst rate after the
	// first access, not pay tCAS gaps between bursts.
	var last uint64
	for i := 0; i < 10; i++ {
		m.Read(0, 0, 0, 0, 80, func(now uint64) { last = now })
	}
	q.Run(nil)
	want := uint64(36+36+5) + 9*5
	if last != want {
		t.Fatalf("10 streamed reads finished at %d, want %d", last, want)
	}
}

func TestBankParallelism(t *testing.T) {
	run := func(banks []int) uint64 {
		var q event.Queue
		m := New("t", testCfg(), &q)
		var last uint64
		for i, b := range banks {
			m.Read(0, 0, b, uint64(i+1000), 64, func(now uint64) { last = now })
		}
		q.Run(nil)
		return last
	}
	serial := run([]int{0, 0, 0, 0})  // same bank, different rows each time
	overlap := run([]int{0, 1, 2, 3}) // different banks
	if overlap >= serial {
		t.Fatalf("bank-parallel time %d not better than serial %d", overlap, serial)
	}
}

func TestChannelsIndependent(t *testing.T) {
	var q event.Queue
	m := New("t", testCfg(), &q)
	var t0, t1 uint64
	m.Read(0, 0, 0, 0, 64, func(now uint64) { t0 = now })
	m.Read(0, 1, 0, 0, 64, func(now uint64) { t1 = now })
	q.Run(nil)
	if t0 != t1 {
		t.Fatalf("parallel channels completed at %d and %d, want equal", t0, t1)
	}
}

func TestWritesComplete(t *testing.T) {
	var q event.Queue
	m := New("t", testCfg(), &q)
	for i := 0; i < 20; i++ {
		m.Write(0, 0, i%4, uint64(i), 80)
	}
	q.Run(nil)
	if m.Stats.Writes != 20 || m.Stats.WriteBytes != 20*80 {
		t.Fatalf("write stats = %+v", m.Stats)
	}
	if m.Pending() != 0 {
		t.Fatalf("pending = %d after drain", m.Pending())
	}
}

func TestReadPriorityOverWrites(t *testing.T) {
	var q event.Queue
	cfg := testCfg()
	cfg.WriteQHi = 100 // never force a drain
	m := New("t", cfg, &q)
	// Queue a few writes, then a read; the read should not wait for all
	// writes (reads are prioritised).
	var readDone uint64
	for i := 0; i < 6; i++ {
		m.Write(0, 0, 0, uint64(i+10), 80)
	}
	m.Read(0, 0, 1, 0, 64, func(now uint64) { readDone = now })
	q.Run(nil)
	if readDone > 200 {
		t.Fatalf("read waited for the write queue: done at %d", readDone)
	}
}

func TestWriteDrainWatermarks(t *testing.T) {
	var q event.Queue
	cfg := testCfg()
	m := New("t", cfg, &q)
	// Fill the write queue past the high watermark while a read stream is
	// active; everything must still complete.
	var reads int
	for i := 0; i < 30; i++ {
		m.Write(0, 0, i%4, uint64(i), 80)
	}
	for i := 0; i < 10; i++ {
		m.Read(0, 0, i%4, uint64(i), 80, func(uint64) { reads++ })
	}
	q.Run(nil)
	if reads != 10 || m.Stats.Writes != 30 {
		t.Fatalf("reads=%d writes=%d", reads, m.Stats.Writes)
	}
	// The flood must have grown the write queue to (at least) the high
	// watermark before draining kicked in, and the peak must be observable.
	if m.Stats.MaxWriteQLen < cfg.WriteQHi {
		t.Fatalf("MaxWriteQLen = %d, want >= high watermark %d", m.Stats.MaxWriteQLen, cfg.WriteQHi)
	}
	if m.Stats.MaxReadQLen == 0 {
		t.Fatal("MaxReadQLen = 0 after queued reads")
	}
}

func TestQueueDelayAccounting(t *testing.T) {
	var q event.Queue
	m := New("t", testCfg(), &q)
	m.Read(0, 0, 0, 0, 64, nil)
	m.Read(0, 0, 0, 0, 64, nil)
	q.Run(nil)
	if m.Stats.ReadQDelay == 0 {
		t.Fatal("no queue delay recorded")
	}
	if m.Stats.AvgReadLatency() <= 0 {
		t.Fatal("avg read latency not positive")
	}
}

func TestEnqueueValidation(t *testing.T) {
	var q event.Queue
	m := New("t", testCfg(), &q)
	for _, r := range []*Request{
		{Channel: 9, Bank: 0, Bytes: 64},
		{Channel: 0, Bank: 99, Bytes: 64},
		{Channel: 0, Bank: 0, Bytes: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad request %+v did not panic", r)
				}
			}()
			m.Enqueue(0, r)
		}()
	}
}

func TestDeterminism(t *testing.T) {
	run := func() uint64 {
		var q event.Queue
		m := New("t", testCfg(), &q)
		var sum uint64
		for i := 0; i < 50; i++ {
			m.Read(uint64(i*3), i%2, i%4, uint64(i%7), 64+16*(i%3), func(now uint64) { sum += now })
			if i%3 == 0 {
				m.Write(uint64(i*3), (i+1)%2, i%4, uint64(i%5), 80)
			}
		}
		q.Run(nil)
		return sum
	}
	if run() != run() {
		t.Fatal("identical request streams produced different schedules")
	}
}

// Property: every read completes, at a time not before enqueue + minimum
// service (tCAS + burst), and the data bus never moves more bytes per cycle
// than its width allows.
func TestServiceBounds(t *testing.T) {
	cfg := testCfg()
	if err := quick.Check(func(reqs []uint16) bool {
		var q event.Queue
		m := New("t", cfg, &q)
		completions := 0
		ok := true
		for i, r := range reqs {
			at := uint64(i)
			bank := int(r) % cfg.Banks
			ch := int(r>>4) % cfg.Channels
			row := uint64(r >> 8)
			m.Read(at, ch, bank, row, 64, func(now uint64) {
				completions++
				if now < at+cfg.TCAS+4 {
					ok = false
				}
			})
			q.RunUntil(at + 1)
		}
		q.Run(nil)
		if completions != len(reqs) {
			return false
		}
		// Bus accounting sanity: busy cycles >= total bytes / width.
		minBusy := uint64(len(reqs)) * 4
		return ok && m.Stats.BusBusy >= minBusy
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkSchedule times the enqueue->pick->commit->complete cycle in
// isolation (full L4-style timings incl. tFAW and refresh), so scheduler
// changes can be measured without full-simulation noise. Not part of the
// BENCH_<n>.json snapshots, which track only the end-to-end BenchmarkSim*.
func BenchmarkSchedule(b *testing.B) {
	var q event.Queue
	cfg := testCfg()
	cfg.TFAW = 96
	cfg.TREFI = 24960
	cfg.TRFC = 1120
	m := New("b", cfg, &q)
	noop := func(uint64) {}
	b.ReportAllocs()
	row := uint64(0)
	for i := 0; i < b.N; i++ {
		row++
		for j := 0; j < 8; j++ {
			m.Read(q.Now(), j%2, j%4, row%32, 80, noop)
			m.Write(q.Now(), (j+1)%2, j%4, row%32, 64)
		}
		q.Run(nil)
	}
}

func TestMapper(t *testing.T) {
	mp := Mapper{Channels: 4, Banks: 16}
	seen := map[[2]int]bool{}
	for u := uint64(0); u < 64; u++ {
		ch, bk, _ := mp.Map(u)
		if ch < 0 || ch >= 4 || bk < 0 || bk >= 16 {
			t.Fatalf("Map(%d) out of range: ch=%d bk=%d", u, ch, bk)
		}
		seen[[2]int{ch, bk}] = true
	}
	if len(seen) != 64 {
		t.Fatalf("first 64 units hit %d distinct (ch,bank) pairs, want 64", len(seen))
	}
	// Row increments after cycling all channels and banks.
	_, _, row := mp.Map(64)
	if row != 1 {
		t.Fatalf("unit 64 row = %d, want 1", row)
	}
}

func TestTFAWLimitsActivates(t *testing.T) {
	run := func(tfaw uint64) uint64 {
		var q event.Queue
		cfg := testCfg()
		cfg.TFAW = tfaw
		m := New("t", cfg, &q)
		var last uint64
		// Five row misses to five banks... only 4 banks in testCfg; use
		// repeated conflicts across 4 banks (8 activates).
		for i := 0; i < 8; i++ {
			m.Read(0, 0, i%4, uint64(i+100), 64, func(now uint64) { last = now })
		}
		q.Run(nil)
		return last
	}
	free := run(0)
	limited := run(500) // enormous tFAW: activates gated 500 apart
	if limited <= free {
		t.Fatalf("tFAW had no effect: %d vs %d", limited, free)
	}
	// With tFAW=500, the 5th..8th activates wait for the window: the 8th
	// activate starts no earlier than act#4 + 500.
	if limited < 500 {
		t.Fatalf("8 activates finished at %d despite tFAW=500", limited)
	}
}

func TestRefreshStallsBursts(t *testing.T) {
	var q event.Queue
	cfg := testCfg()
	cfg.TREFI = 1000
	cfg.TRFC = 200
	m := New("t", cfg, &q)
	var at uint64
	// A read issued just before a refresh window must complete after it.
	m.Read(950, 0, 0, 0, 64, func(now uint64) { at = now })
	q.Run(nil)
	// Without refresh it would finish at 950+72+4 = 1026, inside the
	// refresh window [1000, 1200): it must be pushed past 1200.
	if at < 1200 {
		t.Fatalf("burst completed at %d inside a refresh window", at)
	}
}

func TestRefreshDisabledByDefaultCfg(t *testing.T) {
	var q event.Queue
	m := New("t", testCfg(), &q) // TREFI == 0
	var at uint64
	m.Read(950, 0, 0, 0, 64, func(now uint64) { at = now })
	q.Run(nil)
	if at != 950+36+36+4 {
		t.Fatalf("no-refresh read completed at %d", at)
	}
}

func TestAlignRefresh(t *testing.T) {
	var q event.Queue
	cfg := testCfg()
	cfg.TREFI = 1000
	cfg.TRFC = 100
	m := New("t", cfg, &q)
	cases := []struct{ in, want uint64 }{
		{0, 0},       // before the first window
		{500, 500},   // mid-gap
		{996, 1100},  // burst of 5 would cross window start
		{1050, 1100}, // inside the window
		{2100, 2100}, // window [2000,2100) just ended
	}
	for _, c := range cases {
		if got := m.alignRefresh(c.in, 5); got != c.want {
			t.Errorf("alignRefresh(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestEnqueueCompleteAllocFree(t *testing.T) {
	// The per-access hot path must not allocate once the request freelist
	// and queues are warm: a gigascale sweep issues hundreds of millions of
	// DRAM transactions, and per-request garbage was the simulator's
	// dominant cost. Reads carry a completion callback; writes exercise the
	// write-drain path.
	var q event.Queue
	m := New("t", testCfg(), &q)
	noop := func(uint64) {}

	// Warm: grow the freelist, ring queues and event heap to steady state.
	for i := uint64(0); i < 64; i++ {
		m.Read(q.Now(), int(i%2), int(i%4), i%32, 80, noop)
		m.Write(q.Now(), int((i+1)%2), int(i%4), i%32, 64)
	}
	q.Run(nil)

	row := uint64(0)
	allocs := testing.AllocsPerRun(200, func() {
		row++
		for i := 0; i < 8; i++ {
			m.Read(q.Now(), i%2, i%4, row%32, 80, noop)
			m.Write(q.Now(), (i+1)%2, i%4, row%32, 64)
		}
		q.Run(nil)
	})
	if allocs != 0 {
		t.Fatalf("warm enqueue->complete allocated %.1f times per run, want 0", allocs)
	}
}

// TestManyBanksPerChannel exercises geometries past 64 banks per channel,
// where the scheduler's bank-occupancy bitmask needs more than one word
// (the Figure 15 sweep reaches 512). Every bank gets traffic, SelfCheck
// holds each pick to the reference scan, and the invariant sweep diffs the
// multi-word occupancy bits against the queues.
func TestManyBanksPerChannel(t *testing.T) {
	for _, banks := range []int{65, 128, 512} {
		cfg := testCfg()
		cfg.Banks = banks
		var q event.Queue
		m := New("t", cfg, &q)
		m.SelfCheck = true
		completions := 0
		for b := 0; b < banks; b++ {
			m.Read(uint64(b%7), 0, b, uint64(b), 64, func(uint64) { completions++ })
		}
		if err := m.CheckInvariants(0); err != nil {
			t.Fatalf("banks=%d enqueued: %v", banks, err)
		}
		q.Run(nil)
		if completions != banks {
			t.Fatalf("banks=%d: %d of %d reads completed", banks, completions, banks)
		}
		if err := m.CheckInvariants(0); err != nil {
			t.Fatalf("banks=%d drained: %v", banks, err)
		}
	}
}
