// Package dram models a multi-channel DRAM subsystem with per-bank row
// buffers, realistic core timings (tCAS/tRCD/tRP/tRAS), a shared per-channel
// data bus, and a USIMM-style scheduler: separate read and write queues per
// channel, reads prioritised over writes, writes drained in batches between
// watermarks, and row-hit-first request selection (an FR-FCFS
// approximation).
//
// Timing is modelled with an occupancy timeline rather than per-cycle
// command stepping: when the scheduler selects a request it computes the
// earliest legal data-burst window given the bank state and bus
// availability, commits the request to that window, and schedules a
// completion event. Queuing delay — the mechanism behind the paper's
// bandwidth-bloat results — emerges from contention for the data bus and
// banks.
//
// The same model instantiates both the stacked-DRAM cache (high bandwidth)
// and the DDR main memory (low bandwidth); only the config differs.
//
// The per-transaction hot path is steady-state allocation-free: Request
// objects are recycled through a per-Memory freelist (a request completes
// deterministically in its completion event, where it is returned to the
// pool), each request carries a pre-bound completion callback so scheduling
// one costs no closure allocation, and the per-channel queues are head-index
// rings so the common FCFS dequeue never copies the queue tail.
package dram

import (
	"bear/internal/config"
	"bear/internal/event"
	"bear/internal/fault"
)

// Request describes one DRAM transaction. Channel/Bank/Row must be within
// the configured geometry; Bytes is the data-bus payload.
//
// Requests obtained through Memory.Read / Memory.Write are pooled: the
// Memory recycles them when their completion event fires, so callers must
// not retain them. Externally constructed Requests passed to Enqueue are
// never recycled and stay owned by the caller.
type Request struct {
	Channel int
	Bank    int
	Row     uint64
	Bytes   int
	Write   bool
	// OnComplete, if non-nil, runs when the data burst finishes.
	OnComplete event.Func

	enqueued uint64
	burst    uint64 // data-burst cycles, computed once at Enqueue

	m      *Memory    // memory this request is bound to
	fn     event.Func // pre-bound r.complete, created once per Request
	pooled bool       // came from m's freelist; recycle on completion
	next   *Request   // freelist link
}

// Stats aggregates per-memory counters.
type Stats struct {
	ReadBytes   uint64
	WriteBytes  uint64
	Reads       uint64
	Writes      uint64
	RowHits     uint64
	RowMisses   uint64
	ReadQDelay  uint64 // sum over reads of (completion - enqueue)
	BusBusy     uint64 // cycles the data bus carried data (all channels)
	MaxReadQLen int
}

// AvgReadLatency returns mean read service time (queue + access + burst).
func (s *Stats) AvgReadLatency() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.ReadQDelay) / float64(s.Reads)
}

// RowHitRate returns the fraction of transactions that hit an open row.
func (s *Stats) RowHitRate() float64 {
	t := s.RowHits + s.RowMisses
	if t == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(t)
}

type bank struct {
	hasOpen   bool
	openRow   uint64
	busyUntil uint64 // end of the bank's last data burst
	lastAct   uint64 // cycle of the last activate (for tRAS)
	openAt    uint64 // cycle the open row became CAS-ready
}

// reqQ is a FIFO request queue with O(1) head removal: a slice plus a head
// index. Removing the head (the common FCFS pick) just advances the index;
// the vacated prefix is reclaimed by compacting on a later push once it
// dominates the backing array, which keeps pushes amortised O(1) without
// ever copying on the scheduler's critical pick path.
type reqQ struct {
	buf  []*Request
	head int
}

// Len reports the number of queued requests.
func (q *reqQ) Len() int { return len(q.buf) - q.head }

// At returns the i-th queued request in FIFO order.
func (q *reqQ) At(i int) *Request { return q.buf[q.head+i] }

// Push appends a request, compacting the dead prefix when it has grown to
// half the backing array.
func (q *reqQ) Push(r *Request) {
	if q.head > 0 && q.head*2 >= cap(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		for i := n; i < len(q.buf); i++ {
			q.buf[i] = nil
		}
		q.buf = q.buf[:n]
		q.head = 0
	}
	q.buf = append(q.buf, r)
}

// RemoveAt removes and returns the i-th queued request. i == 0 is O(1);
// other positions shift the tail, bounded by the scheduler's scan limit.
func (q *reqQ) RemoveAt(i int) *Request {
	j := q.head + i
	r := q.buf[j]
	if i == 0 {
		q.buf[j] = nil
		q.head++
		if q.head == len(q.buf) {
			q.buf = q.buf[:0]
			q.head = 0
		}
		return r
	}
	copy(q.buf[j:], q.buf[j+1:])
	q.buf[len(q.buf)-1] = nil
	q.buf = q.buf[:len(q.buf)-1]
	return r
}

type channel struct {
	banks  []bank
	readQ  reqQ
	writeQ reqQ

	busFreeAt uint64
	draining  bool
	committed int // requests holding a reserved bus window

	acts   [4]uint64 // last four activate times (tFAW window)
	actPos int       // index of the oldest entry in acts

	// stallStart memoizes the best feasible burst start of the last scan
	// that failed the commit-ahead horizon, and stallNow the time it was
	// computed at. Candidate starts depend only on queue contents, bank
	// state, the bus, and now — the first three change only in Enqueue and
	// commit (which clear the memo), and starts are monotone in now — so a
	// re-kick at a time >= stallNow can skip the scan while the memoized
	// start still misses the horizon. Kicks are not monotone in time
	// (Enqueue may run at a future issue cycle), so earlier re-kicks must
	// rescan.
	stallStart uint64
	stallNow   uint64
	stallValid bool
}

// Memory is one DRAM subsystem.
type Memory struct {
	Name  string
	Stats Stats

	cfg  config.DRAM
	q    *event.Queue
	ch   []*channel
	free *Request // recycled Request freelist

	refBase, refEnd uint64 // memoized refresh period [k*tREFI, (k+1)*tREFI)
}

// New creates a Memory with the given geometry attached to the event queue.
func New(name string, cfg config.DRAM, q *event.Queue) *Memory {
	m := &Memory{Name: name, cfg: cfg, q: q}
	m.ch = make([]*channel, cfg.Channels)
	for i := range m.ch {
		m.ch[i] = &channel{banks: make([]bank, cfg.Banks)}
	}
	return m
}

// Config returns the geometry this memory was built with.
func (m *Memory) Config() config.DRAM { return m.cfg }

// get returns a pooled request, allocating (and binding its completion
// callback) only when the freelist is empty.
//
//bear:acquire
func (m *Memory) get() *Request {
	r := m.free
	if r == nil {
		r = &Request{m: m, pooled: true}
		r.fn = r.complete
		return r
	}
	m.free = r.next
	r.next = nil
	return r
}

// put recycles a pooled request. Externally owned requests are left alone.
func (m *Memory) put(r *Request) {
	if !r.pooled {
		return
	}
	r.OnComplete = nil
	r.next = m.free
	m.free = r
}

// Enqueue submits a request. Reads invoke r.OnComplete at data return;
// writes complete silently (posted) but still consume bank and bus time.
//
//bear:hotpath
func (m *Memory) Enqueue(now uint64, r *Request) {
	if r.Channel < 0 || r.Channel >= m.cfg.Channels {
		panic(fault.Invariantf("dram", "%s: channel %d out of range", m.Name, r.Channel))
	}
	if r.Bank < 0 || r.Bank >= m.cfg.Banks {
		panic(fault.Invariantf("dram", "%s: bank %d out of range", m.Name, r.Bank))
	}
	if r.Bytes <= 0 {
		panic(fault.Invariantf("dram", "%s: request with no payload", m.Name))
	}
	if r.m == nil {
		// Externally constructed: bind the completion callback once.
		r.m = m
		r.fn = r.complete
	} else if r.m != m {
		panic(fault.Invariantf("dram", "%s: request bound to memory %s", m.Name, r.m.Name))
	}
	r.enqueued = now
	r.burst = uint64((r.Bytes + m.cfg.BytesPerCycle - 1) / m.cfg.BytesPerCycle)
	c := m.ch[r.Channel]
	if r.Write {
		c.writeQ.Push(r)
	} else {
		c.readQ.Push(r)
		if c.readQ.Len() > m.Stats.MaxReadQLen {
			m.Stats.MaxReadQLen = c.readQ.Len()
		}
	}
	c.stallValid = false // a new candidate can lower the best feasible start
	m.kick(now, c)
}

// Read submits a pooled read transaction.
//
//bear:hotpath
func (m *Memory) Read(now uint64, ch, bk int, row uint64, bytes int, done event.Func) {
	r := m.get()
	r.Channel, r.Bank, r.Row, r.Bytes, r.Write, r.OnComplete = ch, bk, row, bytes, false, done
	m.Enqueue(now, r)
}

// Write submits a pooled posted write transaction.
//
//bear:hotpath
func (m *Memory) Write(now uint64, ch, bk int, row uint64, bytes int) {
	r := m.get()
	r.Channel, r.Bank, r.Row, r.Bytes, r.Write, r.OnComplete = ch, bk, row, bytes, true, nil
	m.Enqueue(now, r)
}

// Pending reports the number of queued (unscheduled) requests, for tests and
// drain checks.
func (m *Memory) Pending() int {
	n := 0
	for _, c := range m.ch {
		n += c.readQ.Len() + c.writeQ.Len() + c.committed
	}
	return n
}

// CheckInvariants verifies the scheduler's structural invariants, for the
// watchdog's -check mode: per-channel commit counts must stay within the
// bank count (at most one reserved bus window per bank), and — when
// maxQueued > 0 — total request occupancy must stay under maxQueued, which
// converts unbounded queue growth (a stuck scheduler that enqueues but
// never commits) into a diagnosable error instead of slow memory
// exhaustion.
func (m *Memory) CheckInvariants(maxQueued int) error {
	pending := 0
	for i, c := range m.ch {
		if c.committed < 0 || c.committed > m.cfg.Banks {
			return fault.Invariantf("dram", "%s: channel %d has %d committed requests (banks=%d)",
				m.Name, i, c.committed, m.cfg.Banks)
		}
		pending += c.readQ.Len() + c.writeQ.Len() + c.committed
	}
	if maxQueued > 0 && pending > maxQueued {
		return fault.Invariantf("dram", "%s: %d requests in flight exceeds the occupancy bound %d",
			m.Name, pending, maxQueued)
	}
	return nil
}

// scanLimit caps how many queued requests the scheduler inspects per pick;
// beyond this FR-FCFS degenerates to FCFS, matching real schedulers' bounded
// associative search.
const scanLimit = 16

// kick schedules queued requests onto the channel. Up to one committed
// request per bank may be in flight at once: the data bus serialises bursts,
// but bank activations and precharges overlap across banks, which is where
// DRAM bank-level parallelism comes from.
//
//bear:hotpath
func (m *Memory) kick(now uint64, c *channel) {
	if c.stallValid {
		if c.committed > 0 && now >= c.stallNow &&
			c.stallStart > max64(now, c.busFreeAt)+m.cfg.TRCD+m.cfg.TCAS {
			// Nothing relevant changed since the last scan stalled on the
			// horizon, and the horizon still has not caught up: rescanning
			// would reproduce the same stall.
			return
		}
		c.stallValid = false
	}
	for c.committed < m.cfg.Banks {
		// Update write-drain mode (watermark hysteresis).
		if c.writeQ.Len() >= m.cfg.WriteQHi {
			c.draining = true
		}
		if c.writeQ.Len() <= m.cfg.WriteQLo {
			c.draining = false
		}

		var pool *reqQ
		switch {
		case c.readQ.Len() > 0 && !c.draining:
			pool = &c.readQ
		case c.writeQ.Len() > 0:
			pool = &c.writeQ
		case c.readQ.Len() > 0:
			pool = &c.readQ
		default:
			return
		}

		// Select the request with the earliest feasible data-burst start;
		// ties broken row-hit-first, then FIFO order.
		best := -1
		var bestStart uint64
		bestHit := false
		limit := pool.Len()
		if limit > scanLimit {
			limit = scanLimit
		}
		busFree := max64(c.busFreeAt, now)
		for i := 0; i < limit; i++ {
			r := pool.At(i)
			if best != -1 {
				if bestHit && bestStart <= busFree {
					// No burst can begin before the bus frees and the
					// row-hit tie-break is already won: the scan is decided.
					break
				}
				b := &c.banks[r.Bank]
				if !b.hasOpen || b.openRow != r.Row {
					// A row miss can only displace the best on a strictly
					// earlier start, and its start is bounded below by the
					// bus, the bank's in-flight burst, and tRCD+tCAS. When
					// that bound cannot beat the best, skip the full timing
					// computation (tRAS/tFAW/refresh alignment).
					if bestStart <= busFree {
						continue
					}
					if lb := max64(b.busyUntil, now) + m.cfg.TRCD + m.cfg.TCAS; lb >= bestStart {
						continue
					}
				}
			}
			start, hit := m.burstStart(now, c, r, busFree)
			if best == -1 || start < bestStart || (start == bestStart && hit && !bestHit) {
				best, bestStart, bestHit = i, start, hit
			}
		}
		// Commit-ahead discipline: while something is already committed,
		// only reserve bus windows that keep the bus fed. Reserving a
		// distant window (e.g. a tRAS-serialised same-bank chain) would
		// steal reordering freedom from requests that arrive meanwhile;
		// the completion events re-kick the scheduler instead.
		if c.committed > 0 {
			horizon := max64(now, c.busFreeAt) + m.cfg.TRCD + m.cfg.TCAS
			if bestStart > horizon {
				c.stallStart, c.stallNow, c.stallValid = bestStart, now, true
				return
			}
		}
		r := pool.RemoveAt(best)
		m.commit(now, c, r, bestStart, bestHit)
	}
}

// burstStart computes the earliest cycle r's data burst could begin.
// Column accesses to an open row pipeline (consecutive row hits stream at
// burst rate, each still paying tCAS of latency); row misses must wait for
// the bank's in-flight burst, tRAS since the last activate, precharge and
// activation.
//
//bear:hotpath
func (m *Memory) burstStart(now uint64, c *channel, r *Request, busFree uint64) (start uint64, rowHit bool) {
	b := &c.banks[r.Bank]
	burst := r.burst
	if b.hasOpen && b.openRow == r.Row {
		// The CAS could have issued as soon as both the request and the
		// open row existed; deferred scheduling must not re-charge tCAS
		// from the scheduling instant.
		casFrom := max64(r.enqueued, b.openAt)
		return m.alignRefresh(max64(casFrom+m.cfg.TCAS, busFree), burst), true
	}
	prep := max64(b.busyUntil, now)
	if b.hasOpen {
		// Precharge may not begin before tRAS has elapsed since activate.
		prep = max64(prep, b.lastAct+m.cfg.TRAS)
		prep += m.cfg.TRP
	}
	// The activate must respect the four-activate window.
	if m.cfg.TFAW > 0 {
		prep = max64(prep, c.acts[c.actPos]+m.cfg.TFAW)
	}
	ready := prep + m.cfg.TRCD
	return m.alignRefresh(max64(ready+m.cfg.TCAS, busFree), burst), false
}

// alignRefresh pushes a data-burst window out of any all-bank refresh
// period. Refreshes occupy [k*tREFI, k*tREFI+tRFC) for k >= 1.
//
// The current refresh period [refBase, refEnd) is memoized on the Memory:
// the scheduler evaluates candidate windows clustered around the present,
// so almost every call lands in the cached period and skips the 64-bit
// division that locating it costs.
//
//bear:hotpath
func (m *Memory) alignRefresh(start, burst uint64) uint64 {
	if m.cfg.TREFI == 0 {
		return start
	}
	for {
		if start < m.refBase || start >= m.refEnd {
			base := start - start%m.cfg.TREFI
			m.refBase = base
			m.refEnd = base + m.cfg.TREFI
		}
		if m.refBase > 0 {
			if wEnd := m.refBase + m.cfg.TRFC; start < wEnd {
				start = wEnd
				continue
			}
		}
		if start+burst > m.refEnd {
			start = m.refEnd + m.cfg.TRFC
			continue
		}
		return start
	}
}

func (m *Memory) commit(now uint64, c *channel, r *Request, start uint64, rowHit bool) {
	b := &c.banks[r.Bank]
	burst := r.burst
	end := start + burst

	if !rowHit {
		// Activation completed tCAS before the burst began.
		b.lastAct = start - m.cfg.TCAS - m.cfg.TRCD
		b.openAt = start - m.cfg.TCAS
		c.acts[c.actPos] = b.lastAct
		c.actPos = (c.actPos + 1) % len(c.acts)
		m.Stats.RowMisses++
	} else {
		m.Stats.RowHits++
	}
	b.hasOpen = true
	b.openRow = r.Row
	if end > b.busyUntil {
		b.busyUntil = end
	}
	c.busFreeAt = end
	c.committed++
	m.Stats.BusBusy += burst

	m.q.At(end, r.fn)
}

// complete is the data-burst completion event, pre-bound into r.fn so
// scheduling it allocates nothing. It retires the request's statistics,
// recycles the request, delivers the caller's callback, and re-kicks the
// scheduler — in exactly that order, which the determinism tests pin down.
//
//bear:hotpath
func (r *Request) complete(t uint64) {
	m := r.m
	c := m.ch[r.Channel]
	if r.Write {
		m.Stats.Writes++
		m.Stats.WriteBytes += uint64(r.Bytes)
	} else {
		m.Stats.Reads++
		m.Stats.ReadBytes += uint64(r.Bytes)
		m.Stats.ReadQDelay += t - r.enqueued
	}
	c.committed--
	done := r.OnComplete
	m.put(r) // fields are dead; the callback may re-issue and reuse r
	if done != nil {
		done(t)
	}
	m.kick(t, c)
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Mapper translates linear indices (row numbers or line addresses) to
// channel/bank/row coordinates with channel-first interleaving, which
// spreads consecutive units across channels for parallelism.
type Mapper struct {
	Channels int
	Banks    int
}

// Map translates a linear unit index (e.g. a DRAM row number) into
// (channel, bank, in-bank row).
func (mp Mapper) Map(unit uint64) (ch, bk int, row uint64) {
	ch = int(unit % uint64(mp.Channels))
	unit /= uint64(mp.Channels)
	bk = int(unit % uint64(mp.Banks))
	row = unit / uint64(mp.Banks)
	return ch, bk, row
}
