// Package dram models a multi-channel DRAM subsystem with per-bank row
// buffers, realistic core timings (tCAS/tRCD/tRP/tRAS), a shared per-channel
// data bus, and a USIMM-style scheduler: separate read and write queues per
// channel, reads prioritised over writes, writes drained in batches between
// watermarks, and row-hit-first request selection (an FR-FCFS
// approximation).
//
// Timing is modelled with an occupancy timeline rather than per-cycle
// command stepping: when the scheduler selects a request it computes the
// earliest legal data-burst window given the bank state and bus
// availability, commits the request to that window, and schedules a
// completion event. Queuing delay — the mechanism behind the paper's
// bandwidth-bloat results — emerges from contention for the data bus and
// banks.
//
// The same model instantiates both the stacked-DRAM cache (high bandwidth)
// and the DDR main memory (low bandwidth); only the config differs.
//
// Selection is incremental rather than a per-kick rescan: each channel
// splits its read and write queues into per-bank FIFOs and memoizes, per
// bank, the position of the earliest-arrival row hit and row miss under the
// bank's current open row. A pick is then a min over at most Banks cached
// candidates by (burst start, row-hit, arrival order) — bit-exactly the
// winner the old bounded scan of the scanLimit oldest requests produced —
// with the memos invalidated only by the events that can change them: an
// enqueue to the bank, a removal from the bank's FIFO, or an open-row
// change (a row-miss commit). See pick for the exactness argument and
// reference.go for the naive scan the differential tests and -check mode
// hold it to.
//
// The per-transaction hot path is steady-state allocation-free: Request
// objects are recycled through a per-Memory freelist (a request completes
// deterministically in its completion event, where it is returned to the
// pool), each request carries a pre-bound completion callback so scheduling
// one costs no closure allocation, and the per-bank queues are head-index
// rings so the FCFS dequeue never copies the queue tail.
package dram

import (
	"math/bits"

	"bear/internal/config"
	"bear/internal/event"
	"bear/internal/fault"
)

// Request describes one DRAM transaction. Channel/Bank/Row must be within
// the configured geometry; Bytes is the data-bus payload.
//
// Requests obtained through Memory.Read / Memory.Write are pooled: the
// Memory recycles them when their completion event fires, so callers must
// not retain them. Externally constructed Requests passed to Enqueue are
// never recycled and stay owned by the caller.
type Request struct {
	Channel int
	Bank    int
	Row     uint64
	Bytes   int
	Write   bool
	// OnComplete, if non-nil, runs when the data burst finishes.
	OnComplete event.Func

	enqueued uint64
	burst    uint64 // data-burst cycles, computed once at Enqueue
	seq      uint64 // per-channel arrival stamp: the FIFO tie-break order

	m      *Memory    // memory this request is bound to
	fn     event.Func // pre-bound r.complete, created once per Request
	pooled bool       // came from m's freelist; recycle on completion
	next   *Request   // freelist link
}

// Stats aggregates per-memory counters.
type Stats struct {
	ReadBytes    uint64
	WriteBytes   uint64
	Reads        uint64
	Writes       uint64
	RowHits      uint64
	RowMisses    uint64
	ReadQDelay   uint64 // sum over reads of (completion - enqueue)
	BusBusy      uint64 // cycles the data bus carried data (all channels)
	MaxReadQLen  int    // peak per-channel read-queue depth
	MaxWriteQLen int    // peak per-channel write-queue depth (drain pressure)
}

// AvgReadLatency returns mean read service time (queue + access + burst).
func (s *Stats) AvgReadLatency() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.ReadQDelay) / float64(s.Reads)
}

// RowHitRate returns the fraction of transactions that hit an open row.
func (s *Stats) RowHitRate() float64 {
	t := s.RowHits + s.RowMisses
	if t == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(t)
}

type bank struct {
	hasOpen   bool
	openRow   uint64
	busyUntil uint64 // end of the bank's last data burst
	lastAct   uint64 // cycle of the last activate (for tRAS)
	openAt    uint64 // cycle the open row became CAS-ready
}

// ent mirrors the four Request fields the scheduler's timing math reads —
// arrival stamp, row, enqueue cycle and burst length — so candidate
// evaluation walks a dense array instead of chasing a *Request per entry.
// Requests are freelist-recycled and land wherever the allocator put them;
// their cache lines are the scheduler's dominant memory traffic without
// this mirror. The fields are immutable for a queued request, so the copy
// cannot go stale (checkPool diffs it against the Request anyway).
type ent struct {
	seq uint64
	row uint64
	enq uint64
	bur uint64
}

// bankQ is one bank's FIFO of pending requests with O(1) head removal: a
// request slice, its ent mirror, and a shared head index. Removing the head
// (the overwhelmingly common pick under per-bank splitting) just advances
// the index; the vacated prefix is reclaimed by compacting on a later push
// once it dominates the backing array, which keeps pushes amortised O(1)
// without ever copying on the scheduler's critical pick path.
type bankQ struct {
	req  []*Request
	ent  []ent
	head int
}

// Len reports the number of queued requests.
func (q *bankQ) Len() int { return len(q.req) - q.head }

// At returns the i-th queued request in FIFO order.
func (q *bankQ) At(i int) *Request { return q.req[q.head+i] }

// at returns the scheduler's view of the i-th queued request.
//
//bear:hotpath
func (q *bankQ) at(i int) *ent { return &q.ent[q.head+i] }

// Push appends a request, compacting the dead prefix when it has grown to
// half the backing array.
func (q *bankQ) Push(r *Request) {
	if q.head > 0 && q.head*2 >= cap(q.req) {
		n := copy(q.req, q.req[q.head:])
		copy(q.ent, q.ent[q.head:])
		for i := n; i < len(q.req); i++ {
			q.req[i] = nil
		}
		q.req = q.req[:n]
		q.ent = q.ent[:n]
		q.head = 0
	}
	q.req = append(q.req, r)
	q.ent = append(q.ent, ent{seq: r.seq, row: r.Row, enq: r.enqueued, bur: r.burst})
}

// RemoveAt removes and returns the i-th queued request. i == 0 is O(1);
// other positions (taken only when a refresh push reorders starts within a
// bank) shift the tail, bounded by the bank's share of the scan window.
func (q *bankQ) RemoveAt(i int) *Request {
	j := q.head + i
	r := q.req[j]
	if i == 0 {
		q.req[j] = nil
		q.head++
		if q.head == len(q.req) {
			q.req = q.req[:0]
			q.ent = q.ent[:0]
			q.head = 0
		}
		return r
	}
	copy(q.req[j:], q.req[j+1:])
	copy(q.ent[j:], q.ent[j+1:])
	q.req[len(q.req)-1] = nil
	q.req = q.req[:len(q.req)-1]
	q.ent = q.ent[:len(q.ent)-1]
	return r
}

// Sentinels for pool.firstHit / pool.firstMiss.
const (
	classStale = -2 // the bank's open row changed; rebuild on next use
	classNone  = -1 // no queued request of that class
)

// pool is one channel's read or write queue, split into per-bank FIFOs
// (arrival order within each bank; the global FIFO order is recovered from
// Request.seq) with the scheduler's incrementally maintained state:
//
//   - firstHit[b]/firstMiss[b] memoize the FIFO position of bank b's
//     earliest-arrival row hit / row miss under the bank's current open
//     row, and nHit[b] the bank's total queued hits. An enqueue or removal
//     updates them in place; a row-miss commit to the bank (the only event
//     that reclassifies queued requests) marks them classStale for a lazy
//     rebuild in ensureClass.
//   - win[b] is how many of bank b's requests fall inside the scan window
//     — the min(scanLimit, size) oldest requests of the whole pool. Each
//     bank's in-window requests are a prefix of its FIFO, because per-bank
//     arrival order is a subsequence of the global one; while the pool
//     fits the window entirely, win[b] simply equals the FIFO length.
//   - ex records, in arrival order, every request that joined the pool
//     outside the scan window. Promoting the oldest excluded request after
//     a removal pops the ring instead of scanning every bank.
type pool struct {
	bq   []bankQ
	size int     // total queued requests across banks
	occ  bankSet // bitmask of banks with a non-empty FIFO

	firstHit  []int32
	firstMiss []int32
	nHit      []int32

	win []int32
	ex  exRing
}

// exRing is the pool's excluded-arrivals ring: (bank, seq) pairs in push
// order (which is seq order) for every request that joined outside the scan
// window, with the usual head-index + compaction idiom. Entries are popped
// lazily: a promoted request's entry is popped at promotion; entries whose
// request was promoted when the pool drained to the window size (removals
// below it never consult the ring) die in place and are skipped — detected
// by the seq at the owning bank's window boundary no longer matching — the
// next time a promotion walks the front.
type exRing struct {
	seq  []uint64
	bank []int32
	head int
}

//bear:hotpath
func (x *exRing) push(seq uint64, bank int32) {
	if x.head > 0 && x.head*2 >= cap(x.seq) {
		n := copy(x.seq, x.seq[x.head:])
		copy(x.bank, x.bank[x.head:])
		x.seq = x.seq[:n]
		x.bank = x.bank[:n]
		x.head = 0
	}
	x.seq = append(x.seq, seq)
	x.bank = append(x.bank, bank)
}

func (p *pool) init(banks int) {
	p.bq = make([]bankQ, banks)
	p.occ = make(bankSet, (banks+63)/64)
	p.firstHit = make([]int32, banks)
	p.firstMiss = make([]int32, banks)
	p.nHit = make([]int32, banks)
	p.win = make([]int32, banks)
	for i := 0; i < banks; i++ {
		p.firstHit[i] = classNone
		p.firstMiss[i] = classNone
	}
}

// push appends r to its bank's FIFO and folds it into the class memos: an
// appended request can only become the first of its class if the bank had
// none queued. The window admits the newcomer only while the pool still
// fits inside it; once full, the newcomer has the largest seq and joins the
// excluded suffix, leaving win untouched — O(1) either way, which matters
// because the write-drain low watermark parks pools right at the window
// boundary.
//
//bear:hotpath
func (p *pool) push(c *channel, r *Request) {
	b := r.Bank
	q := &p.bq[b]
	at := int32(q.Len())
	q.Push(r)
	p.size++
	p.occ.set(b)
	if p.firstHit[b] != classStale {
		bk := &c.banks[b]
		if bk.hasOpen && bk.openRow == r.Row {
			p.nHit[b]++
			if p.firstHit[b] == classNone {
				p.firstHit[b] = at
			}
		} else if p.firstMiss[b] == classNone {
			p.firstMiss[b] = at
		}
	}
	if p.size <= scanLimit {
		p.win[b]++
	} else {
		p.ex.push(r.seq, int32(b))
	}
}

// remove extracts the request at position idx of bank b's FIFO (always an
// in-window position: only picked requests are removed) and repairs the
// class memos across the shift. Removing the first of a class rescans the
// suffix for its successor — everything before it is the other class by
// definition of "first". The repair is skipped when the caller passes
// stale: a row-miss commit follows, which reclassifies the whole bank and
// marks both pools' memos for rebuild anyway — and the miss pick is the
// dominant removal, so the dominant removal does no memo work at all.
// The window loses one of the pool's oldest-16, so
// the globally oldest excluded request is promoted to keep the window the
// scanLimit oldest: the front of the excluded ring, past any entries whose
// requests already re-entered the window. The ring front is provably the
// owning bank's first excluded request — its bank's earlier excluded
// arrivals have smaller seqs, sat ahead of it in the ring, and were
// promoted (or skipped) before it — so it sits exactly at win[bank].
//
//bear:hotpath
func (p *pool) remove(c *channel, b int, idx int32, stale bool) *Request {
	q := &p.bq[b]
	r := q.RemoveAt(int(idx))
	p.size--
	if q.Len() == 0 {
		p.occ.clear(b)
	}
	if stale {
		p.firstHit[b] = classStale
	} else if p.firstHit[b] != classStale {
		bk := &c.banks[b]
		if bk.hasOpen && bk.openRow == r.Row {
			p.nHit[b]--
			if fh := p.firstHit[b]; fh == idx {
				p.firstHit[b] = p.scanFor(c, b, idx, true)
			} else if fh > idx {
				p.firstHit[b] = fh - 1
			}
			if fm := p.firstMiss[b]; fm > idx {
				p.firstMiss[b] = fm - 1
			}
		} else {
			if fm := p.firstMiss[b]; fm == idx {
				p.firstMiss[b] = p.scanFor(c, b, idx, false)
			} else if fm > idx {
				p.firstMiss[b] = fm - 1
			}
			if fh := p.firstHit[b]; fh > idx {
				p.firstHit[b] = fh - 1
			}
		}
	}
	p.win[b]--
	if p.size >= scanLimit {
		// The pool still overflows the window (or fills it exactly), so an
		// excluded request exists; promote the oldest one in.
		for {
			eb := int(p.ex.bank[p.ex.head])
			es := p.ex.seq[p.ex.head]
			p.ex.head++
			eq := &p.bq[eb]
			w := int(p.win[eb])
			if w < eq.Len() && eq.ent[eq.head+w].seq == es {
				p.win[eb]++
				break
			}
			// Dead entry: its request was promoted as the pool last drained
			// through the window boundary. Skip it.
		}
		if p.ex.head == len(p.ex.seq) {
			p.ex.seq = p.ex.seq[:0]
			p.ex.bank = p.ex.bank[:0]
			p.ex.head = 0
		}
	}
	return r
}

// scanFor returns the FIFO position of bank b's earliest request of the
// given class at or after position from, or classNone.
//
//bear:hotpath
func (p *pool) scanFor(c *channel, b int, from int32, wantHit bool) int32 {
	q := &p.bq[b]
	bk := &c.banks[b]
	ents := q.ent[q.head:]
	for i := int(from); i < len(ents); i++ {
		if (bk.hasOpen && bk.openRow == ents[i].row) == wantHit {
			return int32(i)
		}
	}
	return classNone
}

// ensureClass rebuilds bank b's class memos after an open-row change.
//
//bear:hotpath
func (p *pool) ensureClass(c *channel, b int) {
	if p.firstHit[b] != classStale {
		return
	}
	q := &p.bq[b]
	fh, fm, n := int32(classNone), int32(classNone), int32(0)
	if bk := &c.banks[b]; bk.hasOpen {
		row := bk.openRow
		ents := q.ent[q.head:]
		for i := range ents {
			if ents[i].row == row {
				n++
				if fh == classNone {
					fh = int32(i)
				}
			} else if fm == classNone {
				fm = int32(i)
			}
		}
	} else if q.Len() > 0 {
		fm = 0 // no open row: everything queued is a miss
	}
	p.firstHit[b], p.firstMiss[b], p.nHit[b] = fh, fm, n
}

// markStale flags bank b's class memos for rebuild; commit calls it when an
// activate changes the bank's open row (row-hit commits leave the open row
// — and therefore every queued request's classification — untouched).
//
//bear:hotpath
func (p *pool) markStale(b int) {
	p.firstHit[b] = classStale
	p.firstMiss[b] = classStale
}

type channel struct {
	banks []bank
	read  pool
	write pool
	seq   uint64 // next arrival stamp, shared by both pools

	busFreeAt uint64
	draining  bool
	committed int // requests holding a reserved bus window

	acts   [4]uint64 // last four activate times (tFAW window)
	actPos int       // index of the oldest entry in acts

	// stallStart memoizes the best feasible burst start of the last pick
	// that failed the commit-ahead horizon, and stallNow the time it was
	// computed at. Candidate starts depend only on queue contents, bank
	// state, the bus, and now — the first three change only in Enqueue and
	// commit (which clear the memo), and starts are monotone in now — so a
	// re-kick at a time >= stallNow can skip the pick while the memoized
	// start still misses the horizon. Kicks are not monotone in time
	// (Enqueue may run at a future issue cycle), so earlier re-kicks must
	// rescan.
	stallStart uint64
	stallNow   uint64
	stallValid bool
}

// bankSet is a bank bitmask: one word covers the common geometries, extra
// words let the Figure 15 sweep scale to hundreds of banks per channel.
// Word count is fixed at init, so set/clear stay branch-free hot-path ops.
type bankSet []uint64

//bear:hotpath
func (s bankSet) set(b int) { s[b>>6] |= 1 << uint(b&63) }

//bear:hotpath
func (s bankSet) clear(b int) { s[b>>6] &^= 1 << uint(b&63) }

func (s bankSet) has(b int) bool { return s[b>>6]&(1<<uint(b&63)) != 0 }

// Memory is one DRAM subsystem.
type Memory struct {
	Name  string
	Stats Stats

	// SelfCheck makes every scheduling decision re-derive itself through
	// the naive reference picker (reference.go) and panic with a typed
	// invariant fault on divergence. The watchdog's -check mode turns it
	// on; it perturbs nothing — picks, timings and stats are identical —
	// and only costs time.
	SelfCheck bool

	cfg  config.DRAM
	q    *event.Queue
	ch   []*channel
	free *Request // recycled Request freelist

	refBase, refEnd uint64 // memoized refresh period [k*tREFI, (k+1)*tREFI)
	refSafe         uint64 // refBase + tRFC: first cycle clear of the period's refresh
	rcdCas          uint64 // tRCD + tCAS: the activate-to-data latency add
}

// New creates a Memory with the given geometry attached to the event queue.
func New(name string, cfg config.DRAM, q *event.Queue) *Memory {
	m := &Memory{Name: name, cfg: cfg, q: q, rcdCas: cfg.TRCD + cfg.TCAS}
	if cfg.TREFI == 0 {
		// No refresh: a degenerate all-time memo makes every alignRefresh
		// take the inline already-aligned path.
		m.refEnd = ^uint64(0)
	}
	m.ch = make([]*channel, cfg.Channels)
	for i := range m.ch {
		c := &channel{banks: make([]bank, cfg.Banks)}
		c.read.init(cfg.Banks)
		c.write.init(cfg.Banks)
		m.ch[i] = c
	}
	return m
}

// Config returns the geometry this memory was built with.
func (m *Memory) Config() config.DRAM { return m.cfg }

// get returns a pooled request, allocating (and binding its completion
// callback) only when the freelist is empty.
//
//bear:acquire
func (m *Memory) get() *Request {
	r := m.free
	if r == nil {
		r = &Request{m: m, pooled: true}
		r.fn = r.complete
		return r
	}
	m.free = r.next
	r.next = nil
	return r
}

// put recycles a pooled request. Externally owned requests are left alone.
func (m *Memory) put(r *Request) {
	if !r.pooled {
		return
	}
	r.OnComplete = nil
	r.next = m.free
	m.free = r
}

// Enqueue submits a request. Reads invoke r.OnComplete at data return;
// writes complete silently (posted) but still consume bank and bus time.
//
//bear:hotpath
func (m *Memory) Enqueue(now uint64, r *Request) {
	if r.Channel < 0 || r.Channel >= m.cfg.Channels {
		panic(fault.Invariantf("dram", "%s: channel %d out of range", m.Name, r.Channel))
	}
	if r.Bank < 0 || r.Bank >= m.cfg.Banks {
		panic(fault.Invariantf("dram", "%s: bank %d out of range", m.Name, r.Bank))
	}
	if r.Bytes <= 0 {
		panic(fault.Invariantf("dram", "%s: request with no payload", m.Name))
	}
	if r.m == nil {
		// Externally constructed: bind the completion callback once.
		r.m = m
		r.fn = r.complete
	} else if r.m != m {
		panic(fault.Invariantf("dram", "%s: request bound to memory %s", m.Name, r.m.Name))
	}
	r.enqueued = now
	r.burst = uint64((r.Bytes + m.cfg.BytesPerCycle - 1) / m.cfg.BytesPerCycle)
	c := m.ch[r.Channel]
	r.seq = c.seq
	c.seq++
	if r.Write {
		c.write.push(c, r)
		if c.write.size > m.Stats.MaxWriteQLen {
			m.Stats.MaxWriteQLen = c.write.size
		}
	} else {
		c.read.push(c, r)
		if c.read.size > m.Stats.MaxReadQLen {
			m.Stats.MaxReadQLen = c.read.size
		}
	}
	c.stallValid = false // a new candidate can lower the best feasible start
	m.kick(now, c)
}

// Read submits a pooled read transaction.
//
//bear:hotpath
func (m *Memory) Read(now uint64, ch, bk int, row uint64, bytes int, done event.Func) {
	r := m.get()
	r.Channel, r.Bank, r.Row, r.Bytes, r.Write, r.OnComplete = ch, bk, row, bytes, false, done
	m.Enqueue(now, r)
}

// Write submits a pooled posted write transaction.
//
//bear:hotpath
func (m *Memory) Write(now uint64, ch, bk int, row uint64, bytes int) {
	r := m.get()
	r.Channel, r.Bank, r.Row, r.Bytes, r.Write, r.OnComplete = ch, bk, row, bytes, true, nil
	m.Enqueue(now, r)
}

// Pending reports the number of queued (unscheduled) requests, for tests and
// drain checks.
func (m *Memory) Pending() int {
	n := 0
	for _, c := range m.ch {
		n += c.read.size + c.write.size + c.committed
	}
	return n
}

// scanLimit caps how many queued requests the scheduler considers per pick;
// beyond this FR-FCFS degenerates to FCFS, matching real schedulers' bounded
// associative search.
const scanLimit = 16

// kick schedules queued requests onto the channel. Up to one committed
// request per bank may be in flight at once: the data bus serialises bursts,
// but bank activations and precharges overlap across banks, which is where
// DRAM bank-level parallelism comes from.
//
//bear:hotpath
func (m *Memory) kick(now uint64, c *channel) {
	if c.stallValid {
		if c.committed > 0 && now >= c.stallNow &&
			c.stallStart > max64(now, c.busFreeAt)+m.rcdCas {
			// Nothing relevant changed since the last pick stalled on the
			// horizon, and the horizon still has not caught up: re-picking
			// would reproduce the same stall.
			return
		}
		c.stallValid = false
	}
	for c.committed < m.cfg.Banks {
		// Update write-drain mode (watermark hysteresis).
		if c.write.size >= m.cfg.WriteQHi {
			c.draining = true
		}
		if c.write.size <= m.cfg.WriteQLo {
			c.draining = false
		}

		var p *pool
		switch {
		case c.read.size > 0 && !c.draining:
			p = &c.read
		case c.write.size > 0:
			p = &c.write
		case c.read.size > 0:
			p = &c.read
		default:
			return
		}

		b, idx, start, hit := m.pick(now, c, p)
		if m.SelfCheck {
			m.verifyPick(now, c, p, b, idx, start, hit)
		}
		// Commit-ahead discipline: while something is already committed,
		// only reserve bus windows that keep the bus fed. Reserving a
		// distant window (e.g. a tRAS-serialised same-bank chain) would
		// steal reordering freedom from requests that arrive meanwhile;
		// the completion events re-kick the scheduler instead.
		if c.committed > 0 {
			horizon := max64(now, c.busFreeAt) + m.rcdCas
			if start > horizon {
				c.stallStart, c.stallNow, c.stallValid = start, now, true
				return
			}
		}
		m.commit(now, c, p.remove(c, b, idx, !hit), start, hit)
	}
}

// pick selects the pool's request with the earliest feasible data-burst
// start; ties broken row-hit-first, then arrival order — the same total
// order (start, miss-after-hit, seq) the retired bounded scan minimised
// over the scanLimit oldest requests, restated per bank over the memoized
// class state:
//
//   - Row hits: a hit's start is max(CAS-ready, bus-free) refresh-aligned,
//     where CAS-ready = max(enqueued, openAt) + tCAS. The earliest-arrival
//     hit is provably optimal for its bank when its aligned start equals
//     the bus-free time (no other hit can start before the bus frees, and
//     equal starts fall to the arrival tie-break) or when it is the bank's
//     only hit. Otherwise — a refresh pushed it, or CAS-ready times are
//     not arrival-ordered because enqueue times interleave across issue
//     paths — an exact scan of the bank's in-window hits decides.
//   - Row misses: every queued miss of a bank shares one precharge+activate
//     ready time, so the earliest-arrival miss wins its bank outright
//     unless refresh alignment pushed that shared start (a later, shorter
//     burst could then fit an earlier refresh gap), which again falls back
//     to an exact scan. Misses are also pruned wholesale with the same
//     lower bound the old scan used: a miss can never start before
//     max(bank-busy, now) + tRCD + tCAS or before the bus frees, so banks
//     whose bound cannot beat the current best skip the tRAS/tFAW/refresh
//     computation entirely.
//
// The walk prices at most two candidates per occupied bank — against the
// retired scan's one start computation per in-window request — and the
// prunes reduce most banks to a handful of loads and compares.
//
//bear:hotpath
//bear:clock result=2
func (m *Memory) pick(now uint64, c *channel, p *pool) (bank int, idx int32, start uint64, rowHit bool) {
	busFree := max64(c.busFreeAt, now)
	bank = -1
	var bestSeq uint64
	for w, word := range p.occ {
		base := w << 6
		for occ := word; occ != 0; occ &= occ - 1 {
			b := base + bits.TrailingZeros64(occ)
			limit := p.win[b]
			if limit == 0 {
				continue
			}
			if p.firstHit[b] == classStale {
				p.ensureClass(c, b)
			}
			bk := &c.banks[b]
			if h := p.firstHit[b]; h >= 0 && h < limit {
				// Bank-level hit bound: no hit of this bank starts before its
				// open row is CAS-ready or before the bus frees (alignment only
				// pushes later). Request enqueue times are not arrival-ordered
				// within a bank, so the bound must not include them — but the
				// first hit's seq is minimal among the bank's hits, so it
				// settles the tie case.
				hlb := max64(bk.openAt+m.cfg.TCAS, busFree)
				if bank >= 0 && (hlb > start ||
					(hlb == start && rowHit && bestSeq < p.bq[b].at(int(h)).seq)) {
					goto miss
				}
				{
					e := p.bq[b].at(int(h))
					s := max64(max64(e.enq, bk.openAt)+m.cfg.TCAS, busFree)
					as := m.alignRefresh(s, e.bur)
					seq := e.seq
					if as != busFree && p.nHit[b] > 1 {
						as, h, seq = m.scanClass(c, p, b, limit, busFree, now, true)
					}
					if bank < 0 || as < start || (as == start && (!rowHit || seq < bestSeq)) {
						bank, idx, start, rowHit, bestSeq = b, h, as, true, seq
					}
				}
			}
		miss:
			if mi := p.firstMiss[b]; mi >= 0 && mi < limit {
				// The shared miss lower bound uses only bank state, so the
				// common can't-win case skips even the entry load.
				lb := max64(max64(bk.busyUntil, now)+m.rcdCas, busFree)
				if bank >= 0 && lb > start {
					continue
				}
				e := p.bq[b].at(int(mi))
				if bank >= 0 && lb == start && (rowHit || bestSeq < e.seq) {
					continue
				}
				s := max64(m.missReady(c, bk, now), busFree)
				as := m.alignRefresh(s, e.bur)
				seq := e.seq
				if as != s {
					as, mi, seq = m.scanClass(c, p, b, limit, busFree, now, false)
				}
				if bank < 0 || as < start || (as == start && !rowHit && seq < bestSeq) {
					bank, idx, start, rowHit, bestSeq = b, mi, as, false, seq
				}
			}
		}
	}
	return bank, idx, start, rowHit
}

// scanClass exactly minimises (aligned start, arrival) over bank b's
// in-window requests of one class — the slow path pick falls back to when
// its O(1) first-of-class shortcut cannot prove optimality.
//
//bear:hotpath
func (m *Memory) scanClass(c *channel, p *pool, b int, limit int32, busFree, now uint64, wantHit bool) (start uint64, idx int32, seq uint64) {
	q := &p.bq[b]
	bk := &c.banks[b]
	var missS uint64
	if !wantHit {
		missS = max64(m.missReady(c, bk, now), busFree)
	}
	idx = classNone
	ents := q.ent[q.head : q.head+int(limit)]
	for i := range ents {
		e := &ents[i]
		if (bk.hasOpen && bk.openRow == e.row) != wantHit {
			continue
		}
		s := missS
		if wantHit {
			s = max64(max64(e.enq, bk.openAt)+m.cfg.TCAS, busFree)
		}
		if as := m.alignRefresh(s, e.bur); idx == classNone || as < start {
			start, idx, seq = as, int32(i), e.seq
		}
	}
	return start, idx, seq
}

// missReady returns the earliest cycle a row-miss data burst to the bank
// could begin, before bus serialisation and refresh alignment: the bank's
// in-flight burst, tRAS since the last activate, precharge, the
// four-activate window, then tRCD + tCAS. It is the same for every queued
// miss of the bank — the property pick's first-of-class shortcut rests on.
//
//bear:hotpath
func (m *Memory) missReady(c *channel, b *bank, now uint64) uint64 {
	prep := max64(b.busyUntil, now)
	if b.hasOpen {
		// Precharge may not begin before tRAS has elapsed since activate.
		prep = max64(prep, b.lastAct+m.cfg.TRAS)
		prep += m.cfg.TRP
	}
	// The activate must respect the four-activate window.
	if m.cfg.TFAW > 0 {
		prep = max64(prep, c.acts[c.actPos]+m.cfg.TFAW)
	}
	return prep + m.rcdCas
}

// burstStart computes the earliest cycle r's data burst could begin.
// Column accesses to an open row pipeline (consecutive row hits stream at
// burst rate, each still paying tCAS of latency); row misses must wait for
// the bank's in-flight burst, tRAS since the last activate, precharge and
// activation. The incremental pick inlines these formulas; this whole-
// request form serves the reference picker and the invariant checks.
func (m *Memory) burstStart(now uint64, c *channel, r *Request, busFree uint64) (start uint64, rowHit bool) {
	b := &c.banks[r.Bank]
	if b.hasOpen && b.openRow == r.Row {
		// The CAS could have issued as soon as both the request and the
		// open row existed; deferred scheduling must not re-charge tCAS
		// from the scheduling instant.
		casFrom := max64(r.enqueued, b.openAt)
		return m.alignRefresh(max64(casFrom+m.cfg.TCAS, busFree), r.burst), true
	}
	return m.alignRefresh(max64(m.missReady(c, b, now), busFree), r.burst), false
}

// alignRefresh pushes a data-burst window out of any all-bank refresh
// period. Refreshes occupy [k*tREFI, k*tREFI+tRFC) for k >= 1.
//
// The current refresh period [refBase, refEnd) is memoized on the Memory:
// the scheduler evaluates candidate windows clustered around the present,
// so almost every call lands in the cached period and skips the 64-bit
// division that locating it costs. The memo is a value-pure cache — extra
// calls (reference picks, invariant checks) never change any result.
//
// The split matters: this wrapper stays under the inlining budget, so the
// pick loop's dominant already-aligned case (inside the memoized period,
// past its refresh window, burst fits) costs three compares and no call.
// Starts below refBase+tRFC fall through even when refBase is 0 and no
// push is due — alignSlow resolves that (rarely hit) case exactly.
//
//bear:hotpath
func (m *Memory) alignRefresh(start, burst uint64) uint64 {
	if start >= m.refSafe && start+burst <= m.refEnd {
		return start
	}
	return m.alignSlow(start, burst)
}

// alignSlow is alignRefresh's full computation, relocating the memoized
// period as needed. Kept out of line so the wrapper fits the inlining
// budget; unreachable when tREFI is 0 (the degenerate memo always passes).
//
//go:noinline
//bear:hotpath
func (m *Memory) alignSlow(start, burst uint64) uint64 {
	for {
		if start < m.refBase || start >= m.refEnd {
			base := start - start%m.cfg.TREFI
			m.refBase = base
			m.refEnd = base + m.cfg.TREFI
			m.refSafe = base
			if base > 0 {
				m.refSafe = base + m.cfg.TRFC
			}
		}
		if m.refBase > 0 {
			if wEnd := m.refBase + m.cfg.TRFC; start < wEnd {
				start = wEnd
				continue
			}
		}
		if start+burst > m.refEnd {
			start = m.refEnd + m.cfg.TRFC
			continue
		}
		return start
	}
}

//bear:hotpath
//bear:clock start
func (m *Memory) commit(now uint64, c *channel, r *Request, start uint64, rowHit bool) {
	b := &c.banks[r.Bank]
	burst := r.burst
	end := start + burst

	if !rowHit {
		// Activation completed tCAS before the burst began.
		b.lastAct = start - m.cfg.TCAS - m.cfg.TRCD
		b.openAt = start - m.cfg.TCAS
		c.acts[c.actPos] = b.lastAct
		c.actPos = (c.actPos + 1) % len(c.acts)
		// The open row changed: queued requests to this bank reclassify.
		c.read.markStale(r.Bank)
		c.write.markStale(r.Bank)
		m.Stats.RowMisses++
	} else {
		m.Stats.RowHits++
	}
	b.hasOpen = true
	b.openRow = r.Row
	if end > b.busyUntil {
		b.busyUntil = end
	}
	c.busFreeAt = end
	c.committed++
	m.Stats.BusBusy += burst

	m.q.At(end, r.fn)
}

// complete is the data-burst completion event, pre-bound into r.fn so
// scheduling it allocates nothing. It retires the request's statistics,
// recycles the request, delivers the caller's callback, and re-kicks the
// scheduler — in exactly that order, which the determinism tests pin down.
//
//bear:hotpath
func (r *Request) complete(t uint64) {
	m := r.m
	c := m.ch[r.Channel]
	if r.Write {
		m.Stats.Writes++
		m.Stats.WriteBytes += uint64(r.Bytes)
	} else {
		m.Stats.Reads++
		m.Stats.ReadBytes += uint64(r.Bytes)
		m.Stats.ReadQDelay += t - r.enqueued
	}
	c.committed--
	done := r.OnComplete
	m.put(r) // fields are dead; the callback may re-issue and reuse r
	if done != nil {
		done(t)
	}
	m.kick(t, c)
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Mapper translates linear indices (row numbers or line addresses) to
// channel/bank/row coordinates with channel-first interleaving, which
// spreads consecutive units across channels for parallelism.
type Mapper struct {
	Channels int
	Banks    int
}

// Map translates a linear unit index (e.g. a DRAM row number) into
// (channel, bank, in-bank row).
func (mp Mapper) Map(unit uint64) (ch, bk int, row uint64) {
	ch = int(unit % uint64(mp.Channels))
	unit /= uint64(mp.Channels)
	bk = int(unit % uint64(mp.Banks))
	row = unit / uint64(mp.Banks)
	return ch, bk, row
}
