package trace

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCatalogSane(t *testing.T) {
	if len(Catalog) != 16 {
		t.Fatalf("catalog has %d benchmarks, want 16 (Table 2)", len(Catalog))
	}
	high, medium := 0, 0
	for _, b := range Catalog {
		if b.MPKI <= 1 {
			t.Errorf("%s: MPKI %v <= 1 (paper only keeps MPKI > 1)", b.Name, b.MPKI)
		}
		if b.FootprintMB <= 0 {
			t.Errorf("%s: footprint %d", b.Name, b.FootprintMB)
		}
		if b.SeqFrac+b.HotFrac > 1 {
			t.Errorf("%s: SeqFrac+HotFrac = %v > 1", b.Name, b.SeqFrac+b.HotFrac)
		}
		if b.StoreFrac < 0 || b.StoreFrac > 1 {
			t.Errorf("%s: StoreFrac %v", b.Name, b.StoreFrac)
		}
		if b.APKI <= b.MPKI {
			t.Errorf("%s: APKI %v <= MPKI %v", b.Name, b.APKI, b.MPKI)
		}
		if b.HighIntensive() {
			high++
		} else {
			medium++
		}
	}
	// 8 high-intensive, 8 medium (sphinx3 counts as medium; see
	// Benchmark.HighIntensive).
	if high != 8 || medium != 8 {
		t.Errorf("intensity split = %dH/%dM, want 8H/8M", high, medium)
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("mcf")
	if err != nil || b.MPKI != 74.6 {
		t.Fatalf("ByName(mcf) = %+v, %v", b, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name did not error")
	}
}

func TestDetailedMixesMatchTable3(t *testing.T) {
	if len(detailedMixes) != 8 {
		t.Fatalf("%d detailed mixes, want 8", len(detailedMixes))
	}
	wantClass := []string{"8H", "6H+2M", "6H+2M", "4H+4M", "4H+4M", "2H+6M", "2H+6M", "8M"}
	for i := range detailedMixes {
		w, err := Mix(i+1, 8, 64, 1)
		if err != nil {
			t.Fatalf("Mix(%d): %v", i+1, err)
		}
		if got := MixClass(w); got != wantClass[i] {
			t.Errorf("MIX%d class = %s, want %s", i+1, got, wantClass[i])
		}
		if len(w.Sources) != 8 {
			t.Errorf("MIX%d has %d sources", i+1, len(w.Sources))
		}
	}
}

func TestGeneratedMixes(t *testing.T) {
	for n := 9; n <= 38; n++ {
		w, err := Mix(n, 8, 64, 1)
		if err != nil {
			t.Fatalf("Mix(%d): %v", n, err)
		}
		if len(w.Benchs) != 8 {
			t.Fatalf("Mix(%d) has %d benchmarks", n, len(w.Benchs))
		}
		// Deterministic: same n gives same composition.
		w2, _ := Mix(n, 8, 64, 1)
		for i := range w.Benchs {
			if w.Benchs[i].Name != w2.Benchs[i].Name {
				t.Fatalf("Mix(%d) not deterministic", n)
			}
		}
	}
	if _, err := Mix(0, 8, 64, 1); err == nil {
		t.Fatal("Mix(0) should error")
	}
	if _, err := Mix(39, 8, 64, 1); err == nil {
		t.Fatal("Mix(39) should error")
	}
}

func TestRateWorkload(t *testing.T) {
	w, err := Rate("lbm", 8, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Sources) != 8 || w.IsMix {
		t.Fatalf("rate workload malformed: %+v", w)
	}
	if _, err := Rate("bogus", 8, 64, 1); err == nil {
		t.Fatal("unknown rate workload did not error")
	}
}

func TestSingleWorkload(t *testing.T) {
	w, err := Single("gcc", 8, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Sources) != 1 {
		t.Fatalf("single workload has %d sources, want 1", len(w.Sources))
	}
}

func TestGenDeterminism(t *testing.T) {
	b, _ := ByName("soplex")
	a := NewGen(b, 2, 64, 7)
	c := NewGen(b, 2, 64, 7)
	var oa, oc Op
	for i := 0; i < 10000; i++ {
		a.Next(&oa)
		c.Next(&oc)
		if oa != oc {
			t.Fatalf("generators diverged at op %d: %+v vs %+v", i, oa, oc)
		}
	}
}

func TestCoreRegionsDisjoint(t *testing.T) {
	b, _ := ByName("mcf") // largest footprint
	gens := make([]*Gen, 8)
	for c := range gens {
		gens[c] = NewGen(b, c, 1, 1) // full scale: worst case
	}
	for c := 1; c < 8; c++ {
		loEnd := gens[c-1].base + gens[c-1].footLines
		if gens[c].base < loEnd {
			t.Fatalf("core %d region overlaps core %d (base %d < end %d)",
				c, c-1, gens[c].base, loEnd)
		}
	}
}

func TestAddressesWithinRegion(t *testing.T) {
	for _, name := range []string{"mcf", "libq", "xalanc"} {
		b, _ := ByName(name)
		g := NewGen(b, 3, 64, 5)
		lo, hi := g.base, g.base+g.footLines
		var op Op
		for i := 0; i < 50000; i++ {
			g.Next(&op)
			if op.Line < lo || op.Line >= hi {
				t.Fatalf("%s: address %d outside region [%d,%d)", name, op.Line, lo, hi)
			}
		}
	}
}

func TestMissFractionMatchesMPKI(t *testing.T) {
	// The far-access rate per kilo-instruction should approximate the
	// benchmark's MPKI (far accesses are the ones that reach the L3/L4).
	for _, name := range []string{"mcf", "libq", "wrf"} {
		b, _ := ByName(name)
		g := NewGen(b, 0, 64, 3)
		var op Op
		far := 0
		instr := uint64(0)
		const ops = 300000
		seen := map[uint64]bool{}
		for i := 0; i < ops; i++ {
			g.Next(&op)
			instr += uint64(op.NonMem) + 1
			if op.PC >= pcHot { // far-access PC pools
				far++
			}
			seen[op.Line] = true
		}
		gotMPKI := 1000 * float64(far) / float64(instr)
		if gotMPKI < b.MPKI*0.8 || gotMPKI > b.MPKI*1.25 {
			t.Errorf("%s: far-access KPKI = %.1f, want about %.1f", name, gotMPKI, b.MPKI)
		}
	}
}

func TestStoreFraction(t *testing.T) {
	b, _ := ByName("lbm")
	g := NewGen(b, 0, 64, 9)
	var op Op
	stores := 0
	const n = 100000
	for i := 0; i < n; i++ {
		g.Next(&op)
		if op.Store {
			stores++
		}
	}
	got := float64(stores) / n
	if got < b.StoreFrac-0.02 || got > b.StoreFrac+0.02 {
		t.Errorf("store fraction = %.3f, want about %.2f", got, b.StoreFrac)
	}
}

func TestFootprintScaling(t *testing.T) {
	b, _ := ByName("milc")
	full := NewGen(b, 0, 1, 1).FootprintLines()
	scaled := NewGen(b, 0, 8, 1).FootprintLines()
	if scaled != full/8 {
		t.Errorf("scale 8 footprint = %d, want %d", scaled, full/8)
	}
	// Footprint floor.
	tiny := NewGen(b, 0, 1<<30, 1).FootprintLines()
	if tiny < 1024 {
		t.Errorf("footprint fell below floor: %d", tiny)
	}
}

func TestPrewarm(t *testing.T) {
	b, _ := ByName("Gems")
	g := NewGen(b, 1, 64, 1)
	var lines []uint64
	g.Prewarm(5000, func(l uint64) { lines = append(lines, l) })
	if uint64(len(lines)) > 5000 {
		t.Fatalf("prewarm exceeded limit: %d", len(lines))
	}
	seen := map[uint64]bool{}
	for _, l := range lines {
		if l < g.base || l >= g.base+g.footLines {
			t.Fatalf("prewarm line %d outside footprint", l)
		}
		if seen[l] {
			t.Fatalf("prewarm visited %d twice", l)
		}
		seen[l] = true
	}
	// Hot set comes first.
	if g.hotLines > 0 && lines[0] != g.hotBase {
		t.Errorf("prewarm did not start with the hot set")
	}
}

func TestPrewarmProperty(t *testing.T) {
	b, _ := ByName("bzip2")
	if err := quick.Check(func(limit uint16) bool {
		g := NewGen(b, 0, 64, 2)
		count := uint64(0)
		g.Prewarm(uint64(limit), func(uint64) { count++ })
		want := uint64(limit)
		if max := g.footLines; want > max {
			want = max
		}
		return count == want
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRateNames(t *testing.T) {
	names := RateNames()
	if len(names) != 16 {
		t.Fatalf("%d rate names", len(names))
	}
	if names[0] != "mcf" {
		t.Errorf("first rate name = %s", names[0])
	}
}

func TestDescribe(t *testing.T) {
	d := Describe()
	for _, want := range []string{"mcf", "74.6", "High", "Medium", "xalanc"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe() missing %q", want)
		}
	}
}

func TestNonMemAveragesToAPKI(t *testing.T) {
	b, _ := ByName("cactus")
	g := NewGen(b, 0, 64, 4)
	var op Op
	var instr uint64
	const ops = 200000
	for i := 0; i < ops; i++ {
		g.Next(&op)
		instr += uint64(op.NonMem) + 1
	}
	apki := 1000 * float64(ops) / float64(instr)
	if apki < b.APKI*0.97 || apki > b.APKI*1.03 {
		t.Errorf("measured APKI = %.1f, want about %.0f", apki, b.APKI)
	}
}
