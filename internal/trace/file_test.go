package trace

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func TestTraceRoundTrip(t *testing.T) {
	b, _ := ByName("soplex")
	gen := NewGen(b, 0, 64, 7)
	var buf bytes.Buffer
	const n = 5000
	if err := WriteTrace(&buf, gen, n); err != nil {
		t.Fatal(err)
	}
	ft, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ft.Ops() != n {
		t.Fatalf("ops = %d, want %d", ft.Ops(), n)
	}
	// Replaying must reproduce the generator's stream exactly.
	ref := NewGen(b, 0, 64, 7)
	var a, c Op
	for i := 0; i < n; i++ {
		ref.Next(&a)
		ft.Next(&c)
		if a != c {
			t.Fatalf("op %d: recorded %+v, replayed %+v", i, a, c)
		}
	}
	// Wrap-around: op n equals op 0.
	ft.Next(&c)
	ft.Reset()
	var first Op
	ft.Next(&first)
	if c != first {
		t.Fatal("wrap-around did not restart the trace")
	}
}

func TestTraceRoundTripProperty(t *testing.T) {
	// Arbitrary op sequences survive the encoding.
	if err := quick.Check(func(raw []uint32, seed uint64) bool {
		if len(raw) == 0 {
			return true
		}
		src := &sliceSource{}
		for i, v := range raw {
			src.ops = append(src.ops, Op{
				NonMem: v % 1000,
				Line:   uint64(v) * 2654435761,
				PC:     uint64(v % 4096),
				Store:  i%3 == 0,
			})
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, src, uint64(len(raw))); err != nil {
			return false
		}
		ft, err := ReadTrace(&buf)
		if err != nil {
			return false
		}
		for i := range raw {
			var op Op
			ft.Next(&op)
			if op != src.ops[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

type sliceSource struct {
	ops []Op
	pos int
}

func (s *sliceSource) Next(op *Op) {
	*op = s.ops[s.pos%len(s.ops)]
	s.pos++
}

func TestTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader([]byte("not a trace file at all"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadTrace(bytes.NewReader([]byte("BEARTRC1"))); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestTraceFileIO(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.trc")
	b, _ := ByName("wrf")
	if err := SaveTraceFile(path, NewGen(b, 0, 64, 1), 1000); err != nil {
		t.Fatal(err)
	}
	ft, err := LoadTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if ft.Ops() != 1000 {
		t.Fatalf("ops = %d", ft.Ops())
	}
}

func TestFromFiles(t *testing.T) {
	dir := t.TempDir()
	var paths []string
	for c := 0; c < 3; c++ {
		b, _ := ByName("gcc")
		p := filepath.Join(dir, "core"+strings.Repeat("x", c)+".trc")
		if err := SaveTraceFile(p, NewGen(b, c, 64, 1), 500); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}
	w, err := FromFiles("gcc-files", paths)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Sources) != 3 {
		t.Fatalf("sources = %d", len(w.Sources))
	}
	if _, err := FromFiles("none", nil); err == nil {
		t.Fatal("empty path list accepted")
	}
}
