package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// Trace files let users capture synthetic streams or supply their own
// (e.g. converted SimPoint traces). The format is a compact varint stream:
//
//	header:  8-byte magic "BEARTRC1", uvarint op count
//	per op:  uvarint nonMem
//	         zigzag-varint line delta (vs previous op's line)
//	         uvarint pc
//	         1 byte flags (bit0 = store)
//
// Replaying a finite file wraps around, so any trace drives an arbitrarily
// long simulation (the wrap models a program's outer loop).

const fileMagic = "BEARTRC1"

// WriteTrace records n ops from src to w.
func WriteTrace(w io.Writer, src Source, n uint64) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(fileMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		k := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:k])
		return err
	}
	if err := writeUvarint(n); err != nil {
		return err
	}
	var op Op
	prevLine := uint64(0)
	for i := uint64(0); i < n; i++ {
		src.Next(&op)
		if err := writeUvarint(uint64(op.NonMem)); err != nil {
			return err
		}
		delta := int64(op.Line) - int64(prevLine)
		k := binary.PutVarint(buf[:], delta)
		if _, err := bw.Write(buf[:k]); err != nil {
			return err
		}
		prevLine = op.Line
		if err := writeUvarint(op.PC); err != nil {
			return err
		}
		flags := byte(0)
		if op.Store {
			flags |= 1
		}
		if err := bw.WriteByte(flags); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// FileTrace is a trace loaded fully into memory (traces are compact; a
// million ops is a few MB) and replayed cyclically.
type FileTrace struct {
	ops []Op
	pos int
}

// Ops returns the number of recorded operations.
func (f *FileTrace) Ops() int { return len(f.ops) }

// Next implements Source, wrapping at the end of the recording.
func (f *FileTrace) Next(op *Op) {
	*op = f.ops[f.pos]
	f.pos++
	if f.pos == len(f.ops) {
		f.pos = 0
	}
}

// Reset rewinds the replay cursor.
func (f *FileTrace) Reset() { f.pos = 0 }

// ReadTrace parses a trace stream written by WriteTrace.
func ReadTrace(r io.Reader) (*FileTrace, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != fileMagic {
		return nil, errors.New("trace: not a BEAR trace file")
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading op count: %w", err)
	}
	const maxOps = 1 << 28 // 256M ops ~ several GB; guards corrupt headers
	if n == 0 || n > maxOps {
		return nil, fmt.Errorf("trace: implausible op count %d", n)
	}
	f := &FileTrace{ops: make([]Op, 0, n)}
	prevLine := uint64(0)
	for i := uint64(0); i < n; i++ {
		nonMem, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: op %d nonMem: %w", i, err)
		}
		delta, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: op %d line delta: %w", i, err)
		}
		line := uint64(int64(prevLine) + delta)
		prevLine = line
		pc, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: op %d pc: %w", i, err)
		}
		flags, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: op %d flags: %w", i, err)
		}
		f.ops = append(f.ops, Op{
			NonMem: uint32(nonMem),
			Line:   line,
			PC:     pc,
			Store:  flags&1 != 0,
		})
	}
	return f, nil
}

// SaveTraceFile records n ops of src into path.
func SaveTraceFile(path string, src Source, n uint64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTrace(f, src, n); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadTraceFile reads a trace file from path.
func LoadTraceFile(path string) (*FileTrace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTrace(f)
}

// FromFiles builds a workload with one trace file per core.
func FromFiles(name string, paths []string) (Workload, error) {
	if len(paths) == 0 {
		return Workload{}, errors.New("trace: no trace files given")
	}
	w := Workload{Name: name}
	for _, p := range paths {
		ft, err := LoadTraceFile(p)
		if err != nil {
			return Workload{}, fmt.Errorf("trace: %s: %w", p, err)
		}
		w.Sources = append(w.Sources, ft)
		w.Benchs = append(w.Benchs, Benchmark{Name: name})
	}
	return w, nil
}
