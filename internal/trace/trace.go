// Package trace synthesises the paper's workloads. The original evaluation
// replays 1B-instruction SimPoint regions of SPEC CPU2006; those traces are
// proprietary, so each benchmark is substituted by a deterministic address
// stream generator parameterised to match Table 2 (L3 MPKI and footprint)
// and a locality profile chosen to reproduce the paper's qualitative
// per-workload behaviour:
//
//   - near reuse      — re-touches of recently used lines (absorbed by L1/L2)
//   - sequential walk — streaming over the footprint (row-buffer and
//     neighboring-tag locality; lbm/libquantum/bwaves)
//   - hot set         — a region with strong L4 reuse (fills are useful;
//     GemsFDTD/zeusmp are hurt by naive bypass because of this component)
//   - random          — pointer-chasing over the whole footprint (fills are
//     rarely reused; mcf/milc benefit from bypass)
//
// Store fraction drives dirty-line writeback traffic (omnetpp/gcc are
// writeback-heavy, which is where DCP wins).
package trace

import (
	"fmt"
	"sort"
	"strings"

	"bear/internal/config"
	"bear/internal/rng"
)

// Op is one trace record: NonMem non-memory instructions followed by one
// memory access to line Line (a 64 B-line address) by instruction PC.
type Op struct {
	NonMem uint32
	Line   uint64
	PC     uint64
	Store  bool
}

// Source produces an infinite instruction stream for one core.
type Source interface {
	Next(op *Op)
}

// Prewarmer is implemented by sources that can enumerate their steady-state
// cache residency for functional warming.
type Prewarmer interface {
	Prewarm(limit uint64, visit func(line uint64))
}

// Benchmark describes one synthetic SPEC-like program. MPKI and FootprintMB
// are the full-scale (1 GB cache) Table 2 values; FootprintMB is the total
// across the 8 rate-mode copies, as reported in the paper.
type Benchmark struct {
	Name        string
	MPKI        float64
	FootprintMB int

	// Locality profile.
	SeqFrac   float64 // of far accesses: sequential walk fraction
	HotFrac   float64 // of far accesses: hot-set fraction
	HotMB     int     // hot-set size per core, full scale
	StoreFrac float64

	// APKI is memory ops (line touches) per kilo-instruction.
	APKI float64
}

// HighIntensive reports the paper's High/Medium split. The paper states
// "MPKI greater than 12" but its Table 3 mix classes place sphinx3
// (MPKI 12.4) in the Medium group (MIX8 is "8M" and includes sphinx3), so
// the effective threshold sits above 12.4.
func (b Benchmark) HighIntensive() bool { return b.MPKI > 12.5 }

// Catalog lists the 16 Table 2 benchmarks in paper order.
var Catalog = []Benchmark{
	{Name: "mcf", MPKI: 74.6, FootprintMB: 10445, SeqFrac: 0.10, HotFrac: 0.45, HotMB: 96, StoreFrac: 0.25, APKI: 300},
	{Name: "lbm", MPKI: 32.7, FootprintMB: 3174, SeqFrac: 0.65, HotFrac: 0.25, HotMB: 48, StoreFrac: 0.45, APKI: 300},
	{Name: "soplex", MPKI: 27.1, FootprintMB: 1946, SeqFrac: 0.50, HotFrac: 0.30, HotMB: 48, StoreFrac: 0.30, APKI: 300},
	{Name: "milc", MPKI: 26.1, FootprintMB: 4608, SeqFrac: 0.45, HotFrac: 0.35, HotMB: 64, StoreFrac: 0.35, APKI: 300},
	{Name: "libq", MPKI: 25.5, FootprintMB: 256, SeqFrac: 0.95, HotFrac: 0.00, HotMB: 0, StoreFrac: 0.25, APKI: 300},
	{Name: "omnetpp", MPKI: 21.1, FootprintMB: 1126, SeqFrac: 0.20, HotFrac: 0.50, HotMB: 64, StoreFrac: 0.45, APKI: 300},
	{Name: "bwaves", MPKI: 18.7, FootprintMB: 1536, SeqFrac: 0.85, HotFrac: 0.10, HotMB: 32, StoreFrac: 0.30, APKI: 300},
	{Name: "gcc", MPKI: 18.6, FootprintMB: 680, SeqFrac: 0.30, HotFrac: 0.50, HotMB: 48, StoreFrac: 0.45, APKI: 300},
	{Name: "sphinx3", MPKI: 12.4, FootprintMB: 136, SeqFrac: 0.50, HotFrac: 0.40, HotMB: 16, StoreFrac: 0.10, APKI: 300},
	{Name: "Gems", MPKI: 9.9, FootprintMB: 5427, SeqFrac: 0.25, HotFrac: 0.60, HotMB: 96, StoreFrac: 0.35, APKI: 300},
	{Name: "leslie", MPKI: 7.6, FootprintMB: 616, SeqFrac: 0.70, HotFrac: 0.20, HotMB: 32, StoreFrac: 0.30, APKI: 300},
	{Name: "wrf", MPKI: 6.8, FootprintMB: 488, SeqFrac: 0.60, HotFrac: 0.30, HotMB: 32, StoreFrac: 0.30, APKI: 300},
	{Name: "cactus", MPKI: 5.5, FootprintMB: 1229, SeqFrac: 0.50, HotFrac: 0.30, HotMB: 48, StoreFrac: 0.30, APKI: 300},
	{Name: "zeusmp", MPKI: 4.8, FootprintMB: 1536, SeqFrac: 0.30, HotFrac: 0.60, HotMB: 96, StoreFrac: 0.30, APKI: 300},
	{Name: "bzip2", MPKI: 3.7, FootprintMB: 2458, SeqFrac: 0.40, HotFrac: 0.40, HotMB: 64, StoreFrac: 0.30, APKI: 300},
	{Name: "xalanc", MPKI: 2.3, FootprintMB: 1331, SeqFrac: 0.20, HotFrac: 0.50, HotMB: 32, StoreFrac: 0.30, APKI: 300},
}

// ByName returns the catalog entry for name.
func ByName(name string) (Benchmark, error) {
	for _, b := range Catalog {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("trace: unknown benchmark %q", name)
}

// detailedMixes is Table 3 of the paper.
var detailedMixes = [][]string{
	{"libq", "mcf", "soplex", "milc", "bwaves", "lbm", "omnetpp", "gcc"},        // MIX1 8H
	{"libq", "mcf", "soplex", "milc", "lbm", "omnetpp", "Gems", "sphinx3"},      // MIX2 6H+2M
	{"mcf", "soplex", "milc", "bwaves", "gcc", "lbm", "leslie", "cactus"},       // MIX3 6H+2M
	{"libq", "mcf", "soplex", "milc", "Gems", "leslie", "wrf", "zeusmp"},        // MIX4 4H+4M
	{"bwaves", "lbm", "omnetpp", "gcc", "cactus", "xalanc", "bzip2", "sphinx3"}, // MIX5 4H+4M
	{"libq", "gcc", "Gems", "leslie", "wrf", "zeusmp", "cactus", "xalanc"},      // MIX6 2H+6M
	{"mcf", "omnetpp", "Gems", "leslie", "wrf", "xalanc", "bzip2", "sphinx3"},   // MIX7 2H+6M
	{"Gems", "leslie", "wrf", "zeusmp", "cactus", "xalanc", "bzip2", "sphinx3"}, // MIX8 8M
}

// Workload is a named assignment of one Source per core.
type Workload struct {
	Name    string
	Benchs  []Benchmark // one per core
	Sources []Source
	IsMix   bool
}

const lineBytes = config.LineBytes

// coreRegionStride separates per-core address spaces, mirroring the paper's
// guarantee that two benchmarks never map to the same address. The stride is
// a prime far larger than any footprint, so regions never overlap and —
// unlike a power-of-two stride — never alias to the same sets of a
// direct-mapped cache whose set count has small odd factors.
const coreRegionStride = 2654435761

// Gen is the synthetic benchmark generator (one per core).
type Gen struct {
	b     Benchmark
	r     *rng.Source
	scale int

	base      uint64 // first line of this core's region
	footLines uint64
	hotBase   uint64
	hotLines  uint64
	seqCursor uint64

	missFrac float64
	gapPerOp float64 // 1000/APKI - 1, hoisted off the per-op path
	nonMemQ  float64 // fractional non-mem instructions carried over

	recent    [64]uint64
	recentLen int
	recentPos int
}

// NewGen builds a generator for benchmark b on the given core, with the
// footprint divided by scale (matching the scaled cache capacity).
func NewGen(b Benchmark, core int, scale int, seed uint64) *Gen {
	if scale < 1 {
		scale = 1
	}
	// Table 2 footprints are totals over 8 rate-mode copies.
	perCoreLines := uint64(b.FootprintMB) << 20 / 8 / lineBytes / uint64(scale)
	if perCoreLines < 1024 {
		perCoreLines = 1024
	}
	hotLines := uint64(b.HotMB) << 20 / lineBytes / uint64(scale)
	if hotLines > perCoreLines/2 {
		hotLines = perCoreLines / 2
	}
	if b.HotFrac > 0 && hotLines < 256 {
		hotLines = 256
	}
	g := &Gen{
		b:         b,
		r:         rng.New(seed ^ (uint64(core)+1)*0x9e3779b97f4a7c15),
		scale:     scale,
		base:      uint64(core) * coreRegionStride,
		footLines: perCoreLines,
		hotLines:  hotLines,
		missFrac:  b.MPKI / b.APKI,
		gapPerOp:  1000/b.APKI - 1,
	}
	// Hot region sits in the middle of the footprint.
	g.hotBase = g.base + perCoreLines/4
	g.seqCursor = g.base
	return g
}

// Bench returns the benchmark this generator models.
func (g *Gen) Bench() Benchmark { return g.b }

// Prewarm visits up to limit lines representing the benchmark's
// steady-state DRAM-cache residency: the hot set first (its reuse keeps it
// resident), then the leading footprint. The simulator installs these lines
// functionally before timing starts, standing in for the SimPoint
// functional-warming the paper's 1B-instruction runs perform implicitly.
func (g *Gen) Prewarm(limit uint64, visit func(line uint64)) {
	n := uint64(0)
	for i := uint64(0); i < g.hotLines && n < limit; i++ {
		visit(g.hotBase + i)
		n++
	}
	for i := uint64(0); i < g.footLines && n < limit; i++ {
		line := g.base + i
		if line >= g.hotBase && line < g.hotBase+g.hotLines {
			continue
		}
		visit(line)
		n++
	}
}

// FootprintLines returns the scaled per-core footprint in lines.
func (g *Gen) FootprintLines() uint64 { return g.footLines }

// Synthetic PC pools: MAP-I learns per-PC hit/miss bias, so each locality
// component uses a distinct pool.
const (
	pcNear = 0x1000
	pcHot  = 0x2000
	pcSeq  = 0x3000
	pcRand = 0x4000
)

// storeLine decides whether a line is a store target. Store-ness is a
// per-line property (programs write particular structures), so the dirty
// fraction of cache-resident data tracks the benchmark's store ratio
// instead of saturating towards 1 under repeated accesses.
func (g *Gen) storeLine(line uint64) bool {
	x := line * 0x9e3779b97f4a7c15
	x ^= x >> 29
	return float64(x&0xFFFF)/0x10000 < g.b.StoreFrac
}

// Next fills op with the next trace record.
func (g *Gen) Next(op *Op) {
	// Non-memory gap: APKI memory ops per 1000 instructions.
	g.nonMemQ += g.gapPerOp
	nm := uint32(g.nonMemQ)
	g.nonMemQ -= float64(nm)
	op.NonMem = nm

	if g.recentLen > 0 && !g.r.Bool(g.missFrac) {
		// Near reuse: hits the L1/L2 most of the time.
		op.Line = g.recent[g.r.Intn(g.recentLen)]
		op.PC = pcNear + uint64(g.r.Intn(8))*4
		op.Store = g.storeLine(op.Line)
		return
	}

	// Far access: chooses among hot / sequential / random components.
	x := g.r.Float64()
	switch {
	case x < g.b.HotFrac && g.hotLines > 0:
		op.Line = g.hotBase + g.r.Uint64n(g.hotLines)
		op.PC = pcHot + uint64(g.r.Intn(8))*4
	case x < g.b.HotFrac+g.b.SeqFrac:
		op.Line = g.seqCursor
		g.seqCursor++
		if g.seqCursor >= g.base+g.footLines {
			g.seqCursor = g.base
		}
		op.PC = pcSeq + uint64(g.r.Intn(8))*4
	default:
		op.Line = g.base + g.r.Uint64n(g.footLines)
		op.PC = pcRand + uint64(g.r.Intn(8))*4
	}
	op.Store = g.storeLine(op.Line)
	g.remember(op.Line)
}

func (g *Gen) remember(line uint64) {
	if g.recentLen < len(g.recent) {
		g.recent[g.recentLen] = line
		g.recentLen++
		return
	}
	g.recent[g.recentPos] = line
	g.recentPos = (g.recentPos + 1) % len(g.recent)
}

// Rate builds the rate-mode workload for benchmark name: all cores run
// identical copies in disjoint address regions.
func Rate(name string, cores, scale int, seed uint64) (Workload, error) {
	b, err := ByName(name)
	if err != nil {
		return Workload{}, err
	}
	w := Workload{Name: name}
	for c := 0; c < cores; c++ {
		w.Benchs = append(w.Benchs, b)
		w.Sources = append(w.Sources, NewGen(b, c, scale, seed))
	}
	return w, nil
}

// Mix builds mixed workload "MIXn". n in [1,8] follows Table 3; n in [9,38]
// are deterministically generated combinations of the 16 benchmarks (the
// paper evaluates 38 mixes but details only 8).
func Mix(n, cores, scale int, seed uint64) (Workload, error) {
	var names []string
	switch {
	case n >= 1 && n <= len(detailedMixes):
		names = detailedMixes[n-1]
	case n > len(detailedMixes) && n <= 38:
		names = generatedMix(n, cores)
	default:
		return Workload{}, fmt.Errorf("trace: mix index %d out of range [1,38]", n)
	}
	w := Workload{Name: fmt.Sprintf("MIX%d", n), IsMix: true}
	for c := 0; c < cores; c++ {
		b, err := ByName(names[c%len(names)])
		if err != nil {
			return Workload{}, err
		}
		w.Benchs = append(w.Benchs, b)
		w.Sources = append(w.Sources, NewGen(b, c, scale, seed))
	}
	return w, nil
}

// generatedMix deterministically samples `cores` benchmarks for mix n.
func generatedMix(n, cores int) []string {
	r := rng.New(uint64(n) * 0x517cc1b727220a95)
	perm := make([]int, len(Catalog))
	for i := range perm {
		perm[i] = i
	}
	for i := len(perm) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	out := make([]string, cores)
	for c := 0; c < cores; c++ {
		out[c] = Catalog[perm[c%len(perm)]].Name
	}
	return out
}

// MixClass summarises a mix as in Table 3, e.g. "6H+2M".
func MixClass(w Workload) string {
	h := 0
	for _, b := range w.Benchs {
		if b.HighIntensive() {
			h++
		}
	}
	m := len(w.Benchs) - h
	switch {
	case m == 0:
		return fmt.Sprintf("%dH", h)
	case h == 0:
		return fmt.Sprintf("%dM", m)
	default:
		return fmt.Sprintf("%dH+%dM", h, m)
	}
}

// RateNames returns the 16 rate-mode workload names in descending-MPKI
// (paper) order.
func RateNames() []string {
	out := make([]string, len(Catalog))
	for i, b := range Catalog {
		out[i] = b.Name
	}
	return out
}

// Single builds a workload with the benchmark on core 0 only (the remaining
// cores idle); used for the weighted-speedup single-program IPCs.
func Single(name string, cores, scale int, seed uint64) (Workload, error) {
	b, err := ByName(name)
	if err != nil {
		return Workload{}, err
	}
	w := Workload{Name: name + "-single"}
	w.Benchs = append(w.Benchs, b)
	w.Sources = append(w.Sources, NewGen(b, 0, scale, seed))
	return w, nil
}

// Describe renders the catalog as a table (used by the tab2 experiment).
func Describe() string {
	var sb strings.Builder
	rows := append([]Benchmark(nil), Catalog...)
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].MPKI > rows[j].MPKI })
	fmt.Fprintf(&sb, "%-10s %8s %12s %6s\n", "Name", "MPKI", "Footprint", "Class")
	for _, b := range rows {
		class := "Medium"
		if b.HighIntensive() {
			class = "High"
		}
		fmt.Fprintf(&sb, "%-10s %8.1f %9d MB %6s\n", b.Name, b.MPKI, b.FootprintMB, class)
	}
	return sb.String()
}
