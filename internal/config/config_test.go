package config

import "testing"

func TestDefaultMatchesTable1(t *testing.T) {
	s := Default(1)
	if s.Core.Count != 8 || s.Core.Width != 2 {
		t.Errorf("core config = %+v, want 8 cores x 2-wide", s.Core)
	}
	if s.L3.Bytes != 8<<20 || s.L3.Ways != 16 || s.L3.Latency != 24 {
		t.Errorf("L3 = %+v, want 8MB/16-way/24cyc", s.L3)
	}
	if s.CacheBytes != 1<<30 {
		t.Errorf("L4 capacity = %d, want 1GB", s.CacheBytes)
	}
	if s.L4.Channels != 4 || s.L4.Banks != 16 || s.L4.BytesPerCycle != 16 {
		t.Errorf("L4 DRAM = %+v", s.L4)
	}
	if s.Mem.Channels != 2 || s.Mem.Banks != 8 || s.Mem.BytesPerCycle != 4 {
		t.Errorf("main memory DRAM = %+v", s.Mem)
	}
	// The paper's 8x aggregate bandwidth ratio.
	if r := s.L4.TotalBandwidth() / s.Mem.TotalBandwidth(); r != 8 {
		t.Errorf("L4/Mem bandwidth ratio = %d, want 8", r)
	}
	for _, tm := range []uint64{s.L4.TCAS, s.L4.TRCD, s.L4.TRP} {
		if tm != 36 {
			t.Errorf("L4 timing = %d, want 36", tm)
		}
	}
	if s.L4.TRAS != 144 {
		t.Errorf("tRAS = %d, want 144", s.L4.TRAS)
	}
}

func TestScalingPreservesRatios(t *testing.T) {
	full := Default(1)
	for _, scale := range []int{2, 8, 64} {
		s := Default(scale)
		if got, want := s.CacheBytes, full.CacheBytes/int64(scale); got != want {
			t.Errorf("scale %d: capacity = %d, want %d", scale, got, want)
		}
		if got, want := s.L3.Bytes, full.L3.Bytes/scale; got != want {
			t.Errorf("scale %d: L3 = %d, want %d", scale, got, want)
		}
		// L3 : L4 ratio preserved.
		if got, want := s.CacheBytes/int64(s.L3.Bytes), full.CacheBytes/int64(full.L3.Bytes); got != want {
			t.Errorf("scale %d: L4/L3 ratio = %d, want %d", scale, got, want)
		}
	}
}

func TestScalingFloors(t *testing.T) {
	s := Default(1 << 20)
	if s.L3.Bytes < 128<<10 {
		t.Errorf("L3 fell below floor: %d", s.L3.Bytes)
	}
	if Default(0).CacheBytes != Default(1).CacheBytes {
		t.Error("scale 0 should clamp to 1")
	}
}

func TestScaledPrivateCachesBelowL3(t *testing.T) {
	for _, scale := range []int{16, 64, 128} {
		s := Default(scale)
		if s.L2.Bytes >= s.L3.Bytes {
			t.Errorf("scale %d: L2 (%d) >= L3 (%d)", scale, s.L2.Bytes, s.L3.Bytes)
		}
		if s.L1.Bytes >= s.L2.Bytes {
			t.Errorf("scale %d: L1 (%d) >= L2 (%d)", scale, s.L1.Bytes, s.L2.Bytes)
		}
	}
}

func TestWithDesign(t *testing.T) {
	s := Default(1).WithDesign(BEAR)
	if s.Bypass != BandwidthAware || !s.UseDCP || !s.UseNTC {
		t.Errorf("BEAR design did not enable all components: %+v", s)
	}
	s = s.WithDesign(Alloy)
	if s.Bypass != FillAlways || s.UseDCP || s.UseNTC {
		t.Errorf("Alloy design should reset policy knobs: %+v", s)
	}
}

func TestAlloySets(t *testing.T) {
	s := Default(1)
	// 1GB / 2KB rows = 512K rows, 28 TADs each.
	if got, want := s.AlloySets(), uint64(512<<10)*28; got != want {
		t.Errorf("AlloySets = %d, want %d", got, want)
	}
	// The TAD capacity must fit in the DRAM rows.
	if got := s.AlloySets() * 72; got > uint64(s.CacheBytes) {
		t.Errorf("TAD bytes %d exceed capacity %d", got, s.CacheBytes)
	}
}

func TestLHSets(t *testing.T) {
	s := Default(1)
	if got, want := s.LHSets(), uint64(512<<10); got != want {
		t.Errorf("LHSets = %d, want %d", got, want)
	}
	// 3 tag lines + 29 data lines = 32 lines = 2KB row exactly.
	if (3+29)*64 != s.L4.RowBytes {
		t.Error("Loh-Hill row layout does not fill a 2KB row")
	}
}

func TestCacheSets(t *testing.T) {
	c := Cache{Bytes: 8 << 20, Ways: 16, LineBytes: 64}
	if got := c.Sets(); got != 8192 {
		t.Errorf("Sets = %d, want 8192", got)
	}
}

func TestDesignStrings(t *testing.T) {
	for _, d := range []Design{NoL4, Alloy, BEAR, BWOpt, LohHill, MostlyClean, InclAlloy, TIS, Sector} {
		if d.String() == "" {
			t.Errorf("design %d has empty name", d)
		}
	}
	if BandwidthAware.String() != "BAB" || ProbBypass.String() != "PB" || FillAlways.String() != "Fill" {
		t.Error("bypass policy names wrong")
	}
}
