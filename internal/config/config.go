// Package config defines the simulated system configuration. The defaults
// reproduce Table 1 of the BEAR paper (ISCA 2015): an 8-core 3.2 GHz CMP with
// a 4-level hierarchy, a stacked-DRAM L4 with 8x the bandwidth of the DDR
// main memory, and identical DRAM core timings on both (per the HBM spec
// assumption in the paper).
package config

// Design selects the L4 DRAM-cache architecture.
type Design int

const (
	// NoL4 removes the DRAM cache entirely; L3 misses go to main memory.
	// This is the normalisation baseline for Figures 3 and 17.
	NoL4 Design = iota
	// Alloy is the direct-mapped Tag-And-Data cache of Qureshi & Loh
	// (MICRO 2012) with the MAP-I miss predictor. The paper's baseline.
	Alloy
	// BEAR is Alloy plus all three BEAR components (BAB + DCP + NTC).
	BEAR
	// BWOpt is the idealised Bandwidth-Optimized cache: every secondary
	// operation is performed logically without consuming bus bandwidth and
	// hits move exactly 64 B.
	BWOpt
	// LohHill is the 29-way tags-in-row design of Loh & Hill (MICRO 2011),
	// equipped with a MissMap as in Section 7 of the BEAR paper.
	LohHill
	// MostlyClean is the Sim et al. (MICRO 2012) design: Loh-Hill row
	// organisation with a perfect hit/miss predictor dispatching predicted
	// misses directly to memory.
	MostlyClean
	// InclAlloy is Alloy with the inclusion property enforced against the
	// on-chip hierarchy: writeback probes are unnecessary but fills may not
	// be bypassed and L4 evictions back-invalidate the on-chip caches.
	InclAlloy
	// TIS stores all tags in an idealised on-chip SRAM (64 MB, un-penalised)
	// in front of a 32-way data store in stacked DRAM.
	TIS
	// Sector is a sector/footprint-style cache: 4 KB sectors with per-line
	// valid/dirty bits and an idealised 6 MB SRAM tag store.
	Sector
	// Banshee is the page-grained design of Yu et al. (MICRO 2017):
	// whole-page (PageBytes) fills admitted by frequency-based replacement,
	// SRAM/TLB-resident tags with a tag buffer, and a dirty-probe flow for
	// writebacks that miss the buffer. Cross-paper comparison point for the
	// granularity axis.
	Banshee
	// TicToc is the DRAM-aware tag-check design of Young et al. (2019):
	// page-grained frames filled line-at-a-time, tags carried in the data
	// lines (hits need no separate probe) and an SRAM tag cache covering
	// miss tag checks. Cross-paper comparison point for the granularity
	// axis.
	TicToc
)

var designNames = map[Design]string{
	NoL4: "NoL4", Alloy: "Alloy", BEAR: "BEAR", BWOpt: "BW-Opt",
	LohHill: "LH", MostlyClean: "MC", InclAlloy: "Incl-Alloy",
	TIS: "TIS", Sector: "SC", Banshee: "Banshee", TicToc: "TicToc",
}

func (d Design) String() string { return designNames[d] }

// BypassPolicy selects the Miss-Fill policy for Alloy-family designs.
type BypassPolicy int

const (
	// FillAlways installs every missed line (conventional behaviour).
	FillAlways BypassPolicy = iota
	// ProbBypass bypasses a fixed fraction of fills at random (the naive
	// PB scheme of Section 4.1).
	ProbBypass
	// BandwidthAware is BAB: set-dueling between ProbBypass and FillAlways
	// with a bounded hit-rate loss (Section 4.2).
	BandwidthAware
	// DeadBlockBypass is a sampling-dead-block-predictor bypass (the prior
	// work of Section 9.2), provided for the abl-deadblock comparison.
	DeadBlockBypass
	// UpdateBypass is the dead-block bypass with Young & Qureshi-style
	// sampled update-bypass of replacement/secondary state: only sampled
	// sets pay the in-DRAM status-bit write and train the predictor
	// (the abl-upd comparison).
	UpdateBypass
)

func (b BypassPolicy) String() string {
	switch b {
	case ProbBypass:
		return "PB"
	case BandwidthAware:
		return "BAB"
	case DeadBlockBypass:
		return "DBP"
	case UpdateBypass:
		return "UpdBypass"
	default:
		return "Fill"
	}
}

// PredMode selects the L4 hit/miss predictor for Alloy-family designs.
type PredMode int

const (
	// PredMAPI is the MAP-I instruction-based predictor (the baseline).
	PredMAPI PredMode = iota
	// PredPerfect is an oracle predictor (ablation upper bound).
	PredPerfect
	// PredAlwaysHit always serialises memory behind the probe (no
	// predictor hardware; ablation lower bound).
	PredAlwaysHit
)

func (p PredMode) String() string {
	switch p {
	case PredPerfect:
		return "perfect"
	case PredAlwaysHit:
		return "always-hit"
	default:
		return "map-i"
	}
}

// DRAM describes one DRAM subsystem (the stacked cache or main memory).
// Timing fields are in CPU cycles.
type DRAM struct {
	Channels      int
	Banks         int    // banks per channel
	BytesPerCycle int    // data-bus bytes moved per CPU cycle per channel
	RowBytes      int    // row-buffer size
	TCAS          uint64 // column access
	TRCD          uint64 // row to column
	TRP           uint64 // precharge
	TRAS          uint64 // row active minimum
	TFAW          uint64 // four-activate window (0 disables the constraint)
	TREFI         uint64 // refresh interval per channel (0 disables refresh)
	TRFC          uint64 // refresh cycle time (banks unavailable)
	WriteQHi      int    // start draining writes at this depth
	WriteQLo      int    // stop draining at this depth
}

// TotalBandwidth returns aggregate bytes per CPU cycle.
func (d DRAM) TotalBandwidth() int { return d.Channels * d.BytesPerCycle }

// Cache describes one SRAM cache level.
type Cache struct {
	Bytes     int
	Ways      int
	LineBytes int
	Latency   uint64 // lookup latency in CPU cycles
}

// Sets returns the number of sets implied by the geometry.
func (c Cache) Sets() int { return c.Bytes / (c.Ways * c.LineBytes) }

// Core describes the processor model.
type Core struct {
	Count  int
	Width  int // retire width (instructions per cycle)
	Window int // max instructions in flight past the oldest incomplete load
	MSHRs  int // max outstanding load misses per core
}

// System is the full simulated machine plus the L4 policy knobs.
type System struct {
	Core   Core
	L1, L2 Cache
	L3     Cache

	Design Design

	// L4 geometry. CacheBytes is the DRAM-cache capacity.
	CacheBytes int64
	L4         DRAM
	Mem        DRAM

	// Policy knobs (meaningful for Alloy-family designs; BEAR turns all
	// three components on).
	Bypass     BypassPolicy
	BypassProb float64 // P for ProbBypass / the PB component of BAB
	UseDCP     bool
	UseNTC     bool

	// NTCEntriesPerBank sizes the Neighboring Tag Cache (8 in the paper).
	NTCEntriesPerBank int

	// UseTTC enables a temporal tag cache alongside (or instead of) the
	// NTC: it records the demand set's tag on every access (Section 9.4's
	// prior-work class; orthogonal to the NTC per the paper).
	UseTTC bool

	// Pred selects the miss predictor for Alloy-family designs.
	Pred PredMode

	// WBAllocate switches the DRAM cache to a writeback-allocate policy:
	// writeback misses install the line (Writeback Fill) instead of
	// forwarding it to memory. The paper's baseline is no-allocate
	// (Section 3.1); allocate is modelled for the Section 2.3 discussion.
	WBAllocate bool

	// DuelSatLimit is the BAB access-counter saturation threshold. The
	// paper uses 16-bit counters (65536); scaled runs default to 2048 —
	// small enough to re-decide several times within a short simulation,
	// large enough that sampling noise does not flap the mode bit at the
	// 1/16 threshold.
	DuelSatLimit uint32

	// LHUseDIP selects DIP instead of LRU insertion for the Loh-Hill
	// design's 29-way sets (paper footnote 3).
	LHUseDIP bool

	// SectorBytes is the sector size for Design == Sector (4 KB in paper).
	SectorBytes int
	// PageBytes is the allocation-block (page) size for the page-grained
	// Banshee and TicToc designs (4 KB, both papers). This is the
	// granularity knob: Layout.Gran.BlockLines = PageBytes / LineBytes.
	PageBytes int
	// TISUseDIP selects DIP instead of LRU insertion for the TIS design
	// (the lifted dipFill policy composed over sramTags; abl-dip sweeps it).
	TISUseDIP bool
	// AssocWays is the associativity of TIS / Sector / Loh-Hill designs.
	AssocWays int

	// WarmFrac is the fraction of each core's instruction budget executed
	// before statistics are reset (cache warm-up).
	WarmFrac float64

	Seed uint64
}

// LineBytes is the line size used at every level (64 B, per the paper).
const LineBytes = 64

// TADBytes is the size of an Alloy Tag-And-Data entry on the bus: 8 B tag +
// 64 B data, padded to five 16 B bursts.
const TADBytes = 80

// Default returns the paper's Table 1 system at the given scale divisor.
// scale == 1 is the full 1 GB configuration; scale == N divides the L4 and
// L3 capacities (and, by convention in internal/trace, workload footprints)
// by N, preserving every capacity ratio so hit rates and bloat factors are
// unchanged while runs complete quickly.
func Default(scale int) System {
	if scale < 1 {
		scale = 1
	}
	l3Bytes := 8 << 20 / scale
	if l3Bytes < 128<<10 {
		l3Bytes = 128 << 10
	}
	// Private caches shrink with scaled runs so that scaled workload
	// footprints still exceed them (preserving the L2-miss / L3-miss
	// structure of the full-scale machine); they stay well below the L3.
	l1Bytes, l2Bytes := 32<<10, 256<<10
	if scale > 1 {
		l1Bytes, l2Bytes = 16<<10, 64<<10
	}
	return System{
		Core: Core{Count: 8, Width: 2, Window: 128, MSHRs: 8},
		L1:   Cache{Bytes: l1Bytes, Ways: 8, LineBytes: LineBytes, Latency: 4},
		L2:   Cache{Bytes: l2Bytes, Ways: 8, LineBytes: LineBytes, Latency: 12},
		L3:   Cache{Bytes: l3Bytes, Ways: 16, LineBytes: LineBytes, Latency: 24},

		Design:     Alloy,
		CacheBytes: 1 << 30 / int64(scale),
		// Stacked DRAM: 4 channels, 128-bit bus at 1.6 GHz DDR = 16 B per
		// 3.2 GHz CPU cycle per channel.
		L4: DRAM{
			Channels: 4, Banks: 16, BytesPerCycle: 16, RowBytes: 2048,
			TCAS: 36, TRCD: 36, TRP: 36, TRAS: 144,
			TFAW: 96, TREFI: 24960, TRFC: 1120,
			WriteQHi: 32, WriteQLo: 16,
		},
		// DDR main memory: 2 channels, 64-bit bus at 800 MHz DDR = 4 B per
		// CPU cycle per channel. Aggregate ratio vs. L4 = 8x.
		Mem: DRAM{
			Channels: 2, Banks: 8, BytesPerCycle: 4, RowBytes: 2048,
			TCAS: 36, TRCD: 36, TRP: 36, TRAS: 144,
			TFAW: 96, TREFI: 24960, TRFC: 1120,
			WriteQHi: 32, WriteQLo: 16,
		},

		Bypass:            FillAlways,
		BypassProb:        0.9,
		DuelSatLimit:      2048,
		NTCEntriesPerBank: 8,
		SectorBytes:       4096,
		PageBytes:         4096,
		AssocWays:         32,
		WarmFrac:          0.5,
		Seed:              1,
	}
}

// WithDesign returns a copy of s configured for design d, applying the
// paper's per-design policy defaults (e.g. BEAR enables BAB+DCP+NTC).
func (s System) WithDesign(d Design) System {
	s.Design = d
	s.Bypass = FillAlways
	s.UseDCP = false
	s.UseNTC = false
	if d == BEAR {
		s.Bypass = BandwidthAware
		s.UseDCP = true
		s.UseNTC = true
	}
	return s
}

// AlloySets returns the number of direct-mapped TAD sets for an Alloy-family
// cache of the configured capacity: 28 TADs per 2 KB row.
func (s System) AlloySets() uint64 {
	rows := uint64(s.CacheBytes) / uint64(s.L4.RowBytes)
	return rows * 28
}

// LHSets returns the number of 29-way sets for a Loh-Hill cache: one set per
// 2 KB row (3 tag lines + 29 data lines).
func (s System) LHSets() uint64 {
	return uint64(s.CacheBytes) / uint64(s.L4.RowBytes)
}
