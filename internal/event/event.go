// Package event implements the discrete-event simulation kernel.
//
// The simulator is organised around a single Queue of timestamped callbacks.
// Components (cores, DRAM channels, caches) never step cycle by cycle;
// instead they schedule a callback for the cycle at which something
// interesting happens (a data burst finishes, a stalled core may resume).
// Events at equal timestamps run in scheduling order, which makes every
// simulation fully deterministic.
package event

import "container/heap"

// Func is a callback invoked when simulated time reaches its scheduled cycle.
// The argument is the current simulation time in CPU cycles.
type Func func(now uint64)

type item struct {
	at  uint64
	seq uint64
	fn  Func
}

type itemHeap []item

func (h itemHeap) Len() int { return len(h) }
func (h itemHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h itemHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *itemHeap) Push(x interface{}) { *h = append(*h, x.(item)) }
func (h *itemHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Queue is a deterministic discrete-event queue. The zero value is ready to
// use. Queue is not safe for concurrent use; the simulator is single-threaded
// by design.
type Queue struct {
	h   itemHeap
	seq uint64
	now uint64
}

// Now returns the current simulation time in CPU cycles.
func (q *Queue) Now() uint64 { return q.now }

// At schedules fn to run at cycle at. Scheduling in the past is a programming
// error and panics, because it would silently corrupt causality.
func (q *Queue) At(at uint64, fn Func) {
	if at < q.now {
		panic("event: scheduled in the past")
	}
	q.seq++
	heap.Push(&q.h, item{at: at, seq: q.seq, fn: fn})
}

// After schedules fn to run delay cycles from now.
func (q *Queue) After(delay uint64, fn Func) {
	q.At(q.now+delay, fn)
}

// Len reports the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// Step runs the earliest pending event and returns true, or returns false if
// the queue is empty.
func (q *Queue) Step() bool {
	if len(q.h) == 0 {
		return false
	}
	it := heap.Pop(&q.h).(item)
	q.now = it.at
	it.fn(q.now)
	return true
}

// Run executes events until the queue drains or until stop returns true.
// A nil stop runs to drain. It returns the final simulation time.
func (q *Queue) Run(stop func() bool) uint64 {
	for {
		if stop != nil && stop() {
			return q.now
		}
		if !q.Step() {
			return q.now
		}
	}
}

// RunUntil executes events with timestamps <= deadline (events scheduled at
// later cycles remain queued) and advances time to deadline if the queue ran
// dry earlier.
func (q *Queue) RunUntil(deadline uint64) {
	for len(q.h) > 0 && q.h[0].at <= deadline {
		q.Step()
	}
	if q.now < deadline {
		q.now = deadline
	}
}
