// Package event implements the discrete-event simulation kernel.
//
// The simulator is organised around a single Queue of timestamped callbacks.
// Components (cores, DRAM channels, caches) never step cycle by cycle;
// instead they schedule a callback for the cycle at which something
// interesting happens (a data burst finishes, a stalled core may resume).
// Events at equal timestamps run in scheduling order, which makes every
// simulation fully deterministic.
//
// The queue is two-level. Near-future events — the dominant enqueue→complete
// pattern, where a DRAM burst or core wakeup lands within a few thousand
// cycles of now — go into a calendar: a power-of-two ring of one-cycle
// buckets, each a FIFO list threaded through a reusable node slab, so both
// push and pop are O(1) with no comparisons. Far-future events (beyond the
// calendar horizon: refresh-window push-outs, watchdog-scale timers) spill
// into an inlined 4-ary heap that acts as a backstop; the pop path merges
// the two by comparing (cycle, scheduling order), so the execution order is
// exactly that of a single totally-ordered queue. An occupancy bitmap over
// the buckets lets the pop scan skip empty cycles a word at a time.
//
// Queues are reusable via Reset, so a worker pool running many simulations
// back to back keeps one grown node slab and backing array per worker.
package event

import "math/bits"

// Func is a callback invoked when simulated time reaches its scheduled cycle.
// The argument is the current simulation time in CPU cycles.
type Func func(now uint64)

// Calendar geometry. The bucket width is one cycle (2^0) and the wheel holds
// calBuckets of them, so an event scheduled at cycle at with at-now <
// calBuckets maps injectively to bucket at&calMask: while the event is
// pending, no other pending cycle shares its bucket. Events at or beyond the
// horizon spill into the heap. Both constants must stay powers of two so
// bucket indexing and the bitmap scan are masks, not divisions.
const (
	calBuckets = 1 << 13
	calMask    = calBuckets - 1
	calWords   = calBuckets / 64
)

// calNode is one calendar entry. Nodes live in a per-queue slab and are
// linked into per-bucket FIFO lists by slab index; index+1 is stored so the
// zero value means "none" and freshly grown head/tail arrays need no fill.
type calNode struct {
	at   uint64
	seq  uint64
	fn   Func
	next int32 // slab index + 1 of the next node in the bucket, 0 = none
}

type item struct {
	at  uint64
	seq uint64
	fn  Func
}

// less orders items by (time, scheduling order); seq breaks ties so that
// same-cycle events run FIFO and every run is deterministic.
func (a item) less(b item) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Queue is a deterministic discrete-event queue. The zero value is ready to
// use. Queue is not safe for concurrent use; each simulation is
// single-threaded by design (parallel sweeps run one Queue per simulation).
type Queue struct {
	// Calendar (near-future) level.
	nodes []calNode // node slab; grown once, reused via the freelist
	free  int32     // slab index + 1 of the freelist head, 0 = none
	heads []int32   // per-bucket FIFO head (slab index + 1), nil until first use
	tails []int32   // per-bucket FIFO tail (slab index + 1)
	occ   []uint64  // per-bucket occupancy bitmap, one bit per bucket
	calN  int       // events currently in the calendar
	scan  uint64    // lower bound on the earliest pending calendar cycle

	// Heap (far-future) backstop.
	h []item

	seq uint64
	now uint64 //bear:clock
}

// Now returns the current simulation time in CPU cycles.
func (q *Queue) Now() uint64 { return q.now }

// At schedules fn to run at cycle at. Scheduling in the past is a programming
// error and panics, because it would silently corrupt causality.
//
//bear:hotpath
//bear:clock at
func (q *Queue) At(at uint64, fn Func) {
	if at < q.now {
		panic("event: scheduled in the past")
	}
	q.seq++
	if at-q.now < calBuckets {
		q.pushCal(at, fn)
		return
	}
	q.h = append(q.h, item{at: at, seq: q.seq, fn: fn})
	q.up(len(q.h) - 1)
}

// After schedules fn to run delay cycles from now.
//
//bear:hotpath
func (q *Queue) After(delay uint64, fn Func) {
	q.At(q.now+delay, fn)
}

// pushCal appends an event to its cycle's bucket in O(1).
//
//bear:hotpath
//bear:clock at
func (q *Queue) pushCal(at uint64, fn Func) {
	if q.heads == nil {
		q.heads = make([]int32, calBuckets)
		q.tails = make([]int32, calBuckets)
		q.occ = make([]uint64, calWords)
	}
	ref := q.free
	if ref != 0 {
		q.free = q.nodes[ref-1].next
	} else {
		q.nodes = append(q.nodes, calNode{})
		ref = int32(len(q.nodes))
	}
	n := &q.nodes[ref-1]
	n.at, n.seq, n.fn, n.next = at, q.seq, fn, 0

	b := at & calMask
	if t := q.tails[b]; t != 0 {
		q.nodes[t-1].next = ref
	} else {
		q.heads[b] = ref
		q.occ[b>>6] |= 1 << (b & 63)
	}
	q.tails[b] = ref
	if q.calN == 0 || at < q.scan {
		q.scan = at
	}
	q.calN++
}

// nextCalCycle returns the earliest cycle with a pending calendar event. It
// must only be called with calN > 0. The scan starts at the cached lower
// bound and walks the occupancy bitmap a word at a time, then caches the
// answer — pops and time advance only move the bound forward, pushes behind
// it lower it, so the scan is amortised O(1) per event.
//
//bear:hotpath
func (q *Queue) nextCalCycle() uint64 {
	s := q.scan
	if s < q.now {
		s = q.now
	}
	b := s & calMask
	w := b >> 6
	word := q.occ[w] &^ (1<<(b&63) - 1)
	for {
		if word != 0 {
			bucket := w<<6 + uint64(bits.TrailingZeros64(word))
			c := s + ((bucket - b) & calMask)
			q.scan = c
			return c
		}
		w = (w + 1) & (calWords - 1)
		word = q.occ[w]
	}
}

// popCal removes and returns the head event of cycle c's bucket.
//
//bear:hotpath
func (q *Queue) popCal(c uint64) (fn Func) {
	b := c & calMask
	ref := q.heads[b]
	n := &q.nodes[ref-1]
	fn = n.fn
	q.heads[b] = n.next
	if n.next == 0 {
		q.tails[b] = 0
		q.occ[b>>6] &^= 1 << (b & 63)
	}
	n.fn = nil
	n.next = q.free
	q.free = ref
	q.calN--
	return fn
}

// Len reports the number of pending events.
func (q *Queue) Len() int { return q.calN + len(q.h) }

// Reset empties the queue and rewinds time to cycle 0, keeping the grown
// node slab and backing arrays so the next simulation pushes without
// reallocating. Pending callbacks are dropped and their references cleared.
func (q *Queue) Reset() {
	if q.calN > 0 {
		for w, word := range q.occ {
			for word != 0 {
				b := uint64(w)<<6 + uint64(bits.TrailingZeros64(word))
				word &^= 1 << (b & 63)
				q.heads[b] = 0
				q.tails[b] = 0
			}
			q.occ[w] = 0
		}
	}
	for i := range q.nodes {
		q.nodes[i] = calNode{}
	}
	q.nodes = q.nodes[:0]
	q.free = 0
	q.calN = 0
	q.scan = 0
	for i := range q.h {
		q.h[i] = item{}
	}
	q.h = q.h[:0]
	q.seq = 0
	q.now = 0
}

// up restores heap order from leaf i toward the root (4-ary: parent of i is
// (i-1)/4). The moving item is held in a register and written once.
func (q *Queue) up(i int) {
	it := q.h[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !it.less(q.h[p]) {
			break
		}
		q.h[i] = q.h[p]
		i = p
	}
	q.h[i] = it
}

// down sifts it from the root into a heap of len(q.h) items (the root slot
// is treated as vacant).
func (q *Queue) down(it item) {
	n := len(q.h)
	i := 0
	for {
		c := i<<2 + 1 // first child
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for j := c + 1; j < end; j++ {
			if q.h[j].less(q.h[m]) {
				m = j
			}
		}
		if !q.h[m].less(it) {
			break
		}
		q.h[i] = q.h[m]
		i = m
	}
	q.h[i] = it
}

// popHeap removes the heap's root event.
func (q *Queue) popHeap() (fn Func) {
	n := len(q.h)
	fn = q.h[0].fn
	last := q.h[n-1]
	q.h[n-1] = item{} // drop the callback reference
	q.h = q.h[:n-1]
	if n > 1 {
		q.down(last)
	}
	return fn
}

// peek returns the timestamp of the earliest pending event.
func (q *Queue) peek() (at uint64, ok bool) {
	switch {
	case q.calN == 0 && len(q.h) == 0:
		return 0, false
	case q.calN == 0:
		return q.h[0].at, true
	case len(q.h) == 0:
		return q.nextCalCycle(), true
	}
	c := q.nextCalCycle()
	if q.h[0].at < c {
		return q.h[0].at, true
	}
	return c, true
}

// Step runs the earliest pending event and returns true, or returns false if
// the queue is empty. The calendar and the heap are merged by (cycle,
// scheduling order), so a far-future event that has aged into the calendar's
// window still runs in exactly its scheduled position.
//
//bear:hotpath
func (q *Queue) Step() bool {
	var at uint64
	var fn Func
	switch {
	case q.calN == 0 && len(q.h) == 0:
		return false
	case len(q.h) == 0:
		at = q.nextCalCycle()
		fn = q.popCal(at)
	case q.calN == 0:
		at = q.h[0].at
		fn = q.popHeap()
	default:
		c := q.nextCalCycle()
		top := q.h[0]
		if top.at < c || (top.at == c && top.seq < q.nodes[q.heads[c&calMask]-1].seq) {
			at = top.at
			fn = q.popHeap()
		} else {
			at = c
			fn = q.popCal(c)
		}
	}
	q.now = at
	fn(at)
	return true
}

// Run executes events until the queue drains or until stop returns true.
// A nil stop runs to drain. It returns the final simulation time.
func (q *Queue) Run(stop func() bool) uint64 {
	for {
		if stop != nil && stop() {
			return q.now
		}
		if !q.Step() {
			return q.now
		}
	}
}

// RunUntil executes events with timestamps <= deadline (events scheduled at
// later cycles remain queued) and advances time to deadline if the queue ran
// dry earlier.
func (q *Queue) RunUntil(deadline uint64) {
	for {
		at, ok := q.peek()
		if !ok || at > deadline {
			break
		}
		q.Step()
	}
	if q.now < deadline {
		q.now = deadline
	}
}
