// Package event implements the discrete-event simulation kernel.
//
// The simulator is organised around a single Queue of timestamped callbacks.
// Components (cores, DRAM channels, caches) never step cycle by cycle;
// instead they schedule a callback for the cycle at which something
// interesting happens (a data burst finishes, a stalled core may resume).
// Events at equal timestamps run in scheduling order, which makes every
// simulation fully deterministic.
//
// The queue is an inlined 4-ary heap over a flat []item slice rather than
// container/heap: no interface boxing on push/pop (zero steady-state
// allocations once the backing array has grown) and a shallower tree, which
// matters because every simulated memory access pushes and pops several
// events. Queues are reusable via Reset, so a worker pool running many
// simulations back to back keeps one grown backing array per worker.
package event

// Func is a callback invoked when simulated time reaches its scheduled cycle.
// The argument is the current simulation time in CPU cycles.
type Func func(now uint64)

type item struct {
	at  uint64
	seq uint64
	fn  Func
}

// less orders items by (time, scheduling order); seq breaks ties so that
// same-cycle events run FIFO and every run is deterministic.
func (a item) less(b item) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Queue is a deterministic discrete-event queue. The zero value is ready to
// use. Queue is not safe for concurrent use; each simulation is
// single-threaded by design (parallel sweeps run one Queue per simulation).
type Queue struct {
	h   []item
	seq uint64
	now uint64
}

// Now returns the current simulation time in CPU cycles.
func (q *Queue) Now() uint64 { return q.now }

// At schedules fn to run at cycle at. Scheduling in the past is a programming
// error and panics, because it would silently corrupt causality.
//
//bear:hotpath
func (q *Queue) At(at uint64, fn Func) {
	if at < q.now {
		panic("event: scheduled in the past")
	}
	q.seq++
	q.h = append(q.h, item{at: at, seq: q.seq, fn: fn})
	q.up(len(q.h) - 1)
}

// After schedules fn to run delay cycles from now.
//
//bear:hotpath
func (q *Queue) After(delay uint64, fn Func) {
	q.At(q.now+delay, fn)
}

// Len reports the number of pending events.
func (q *Queue) Len() int { return len(q.h) }

// Reset empties the queue and rewinds time to cycle 0, keeping the grown
// backing array so the next simulation pushes without reallocating. Pending
// callbacks are dropped and their references cleared.
func (q *Queue) Reset() {
	for i := range q.h {
		q.h[i] = item{}
	}
	q.h = q.h[:0]
	q.seq = 0
	q.now = 0
}

// up restores heap order from leaf i toward the root (4-ary: parent of i is
// (i-1)/4). The moving item is held in a register and written once.
func (q *Queue) up(i int) {
	it := q.h[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !it.less(q.h[p]) {
			break
		}
		q.h[i] = q.h[p]
		i = p
	}
	q.h[i] = it
}

// down sifts it from the root into a heap of len(q.h) items (the root slot
// is treated as vacant).
func (q *Queue) down(it item) {
	n := len(q.h)
	i := 0
	for {
		c := i<<2 + 1 // first child
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for j := c + 1; j < end; j++ {
			if q.h[j].less(q.h[m]) {
				m = j
			}
		}
		if !q.h[m].less(it) {
			break
		}
		q.h[i] = q.h[m]
		i = m
	}
	q.h[i] = it
}

// Step runs the earliest pending event and returns true, or returns false if
// the queue is empty.
//
//bear:hotpath
func (q *Queue) Step() bool {
	n := len(q.h)
	if n == 0 {
		return false
	}
	it := q.h[0]
	last := q.h[n-1]
	q.h[n-1] = item{} // drop the callback reference
	q.h = q.h[:n-1]
	if n > 1 {
		q.down(last)
	}
	q.now = it.at
	it.fn(q.now)
	return true
}

// Run executes events until the queue drains or until stop returns true.
// A nil stop runs to drain. It returns the final simulation time.
func (q *Queue) Run(stop func() bool) uint64 {
	for {
		if stop != nil && stop() {
			return q.now
		}
		if !q.Step() {
			return q.now
		}
	}
}

// RunUntil executes events with timestamps <= deadline (events scheduled at
// later cycles remain queued) and advances time to deadline if the queue ran
// dry earlier.
func (q *Queue) RunUntil(deadline uint64) {
	for len(q.h) > 0 && q.h[0].at <= deadline {
		q.Step()
	}
	if q.now < deadline {
		q.now = deadline
	}
}
