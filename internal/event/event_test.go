package event

import (
	"testing"
	"testing/quick"
)

func TestOrdering(t *testing.T) {
	var q Queue
	var got []int
	q.At(30, func(uint64) { got = append(got, 3) })
	q.At(10, func(uint64) { got = append(got, 1) })
	q.At(20, func(uint64) { got = append(got, 2) })
	q.Run(nil)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events ran out of order: %v", got)
	}
	if q.Now() != 30 {
		t.Fatalf("final time = %d, want 30", q.Now())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		q.At(5, func(uint64) { got = append(got, i) })
	}
	q.Run(nil)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-cycle events not FIFO: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	var q Queue
	var trace []uint64
	q.At(1, func(now uint64) {
		trace = append(trace, now)
		q.At(now+5, func(now2 uint64) {
			trace = append(trace, now2)
		})
	})
	q.Run(nil)
	if len(trace) != 2 || trace[0] != 1 || trace[1] != 6 {
		t.Fatalf("nested scheduling trace = %v", trace)
	}
}

func TestAfter(t *testing.T) {
	var q Queue
	q.At(10, func(now uint64) {
		q.After(7, func(now2 uint64) {
			if now2 != 17 {
				t.Errorf("After fired at %d, want 17", now2)
			}
		})
	})
	q.Run(nil)
}

func TestPastSchedulingPanics(t *testing.T) {
	var q Queue
	q.At(10, func(uint64) {})
	q.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	q.At(5, func(uint64) {})
}

func TestStopPredicate(t *testing.T) {
	var q Queue
	count := 0
	for i := 1; i <= 10; i++ {
		q.At(uint64(i), func(uint64) { count++ })
	}
	q.Run(func() bool { return count >= 3 })
	if count != 3 {
		t.Fatalf("ran %d events, want 3", count)
	}
	if q.Len() != 7 {
		t.Fatalf("queue has %d events left, want 7", q.Len())
	}
}

func TestRunUntil(t *testing.T) {
	var q Queue
	var ran []uint64
	for _, at := range []uint64{5, 10, 15, 20} {
		at := at
		q.At(at, func(uint64) { ran = append(ran, at) })
	}
	q.RunUntil(12)
	if len(ran) != 2 {
		t.Fatalf("RunUntil(12) ran %v", ran)
	}
	if q.Now() != 12 {
		t.Fatalf("RunUntil left time at %d, want 12", q.Now())
	}
	q.RunUntil(100)
	if len(ran) != 4 || q.Now() != 100 {
		t.Fatalf("RunUntil(100): ran=%v now=%d", ran, q.Now())
	}
}

func TestReset(t *testing.T) {
	var q Queue
	ran := 0
	for i := 1; i <= 5; i++ {
		q.At(uint64(i), func(uint64) { ran++ })
	}
	q.Step()
	q.Reset()
	if q.Len() != 0 || q.Now() != 0 {
		t.Fatalf("after Reset: len=%d now=%d, want 0/0", q.Len(), q.Now())
	}
	// The queue must be fully reusable: time restarts at zero (scheduling
	// at cycle 0 is legal again) and FIFO tie-breaking starts over.
	var got []int
	q.At(0, func(uint64) { got = append(got, 0) })
	q.At(0, func(uint64) { got = append(got, 1) })
	q.Run(nil)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("reused queue ran %v, want [0 1]", got)
	}
	if ran != 1 {
		t.Fatalf("stale callbacks survived Reset: ran=%d", ran)
	}
}

func TestStepEmpty(t *testing.T) {
	var q Queue
	if q.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

// Property: for any schedule of events, execution order is sorted by
// (time, insertion order).
func TestOrderProperty(t *testing.T) {
	if err := quick.Check(func(times []uint16) bool {
		var q Queue
		type rec struct {
			at  uint64
			seq int
		}
		var got []rec
		for i, at := range times {
			at, i := uint64(at), i
			q.At(at, func(uint64) { got = append(got, rec{at, i}) })
		}
		q.Run(nil)
		if len(got) != len(times) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				return false
			}
			if got[i].at == got[i-1].at && got[i].seq < got[i-1].seq {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}
