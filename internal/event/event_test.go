package event

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestOrdering(t *testing.T) {
	var q Queue
	var got []int
	q.At(30, func(uint64) { got = append(got, 3) })
	q.At(10, func(uint64) { got = append(got, 1) })
	q.At(20, func(uint64) { got = append(got, 2) })
	q.Run(nil)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events ran out of order: %v", got)
	}
	if q.Now() != 30 {
		t.Fatalf("final time = %d, want 30", q.Now())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		q.At(5, func(uint64) { got = append(got, i) })
	}
	q.Run(nil)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-cycle events not FIFO: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	var q Queue
	var trace []uint64
	q.At(1, func(now uint64) {
		trace = append(trace, now)
		q.At(now+5, func(now2 uint64) {
			trace = append(trace, now2)
		})
	})
	q.Run(nil)
	if len(trace) != 2 || trace[0] != 1 || trace[1] != 6 {
		t.Fatalf("nested scheduling trace = %v", trace)
	}
}

func TestAfter(t *testing.T) {
	var q Queue
	q.At(10, func(now uint64) {
		q.After(7, func(now2 uint64) {
			if now2 != 17 {
				t.Errorf("After fired at %d, want 17", now2)
			}
		})
	})
	q.Run(nil)
}

func TestPastSchedulingPanics(t *testing.T) {
	var q Queue
	q.At(10, func(uint64) {})
	q.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	q.At(5, func(uint64) {})
}

func TestStopPredicate(t *testing.T) {
	var q Queue
	count := 0
	for i := 1; i <= 10; i++ {
		q.At(uint64(i), func(uint64) { count++ })
	}
	q.Run(func() bool { return count >= 3 })
	if count != 3 {
		t.Fatalf("ran %d events, want 3", count)
	}
	if q.Len() != 7 {
		t.Fatalf("queue has %d events left, want 7", q.Len())
	}
}

func TestRunUntil(t *testing.T) {
	var q Queue
	var ran []uint64
	for _, at := range []uint64{5, 10, 15, 20} {
		at := at
		q.At(at, func(uint64) { ran = append(ran, at) })
	}
	q.RunUntil(12)
	if len(ran) != 2 {
		t.Fatalf("RunUntil(12) ran %v", ran)
	}
	if q.Now() != 12 {
		t.Fatalf("RunUntil left time at %d, want 12", q.Now())
	}
	q.RunUntil(100)
	if len(ran) != 4 || q.Now() != 100 {
		t.Fatalf("RunUntil(100): ran=%v now=%d", ran, q.Now())
	}
}

func TestReset(t *testing.T) {
	var q Queue
	ran := 0
	for i := 1; i <= 5; i++ {
		q.At(uint64(i), func(uint64) { ran++ })
	}
	q.Step()
	q.Reset()
	if q.Len() != 0 || q.Now() != 0 {
		t.Fatalf("after Reset: len=%d now=%d, want 0/0", q.Len(), q.Now())
	}
	// The queue must be fully reusable: time restarts at zero (scheduling
	// at cycle 0 is legal again) and FIFO tie-breaking starts over.
	var got []int
	q.At(0, func(uint64) { got = append(got, 0) })
	q.At(0, func(uint64) { got = append(got, 1) })
	q.Run(nil)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("reused queue ran %v, want [0 1]", got)
	}
	if ran != 1 {
		t.Fatalf("stale callbacks survived Reset: ran=%d", ran)
	}
}

func TestStepEmpty(t *testing.T) {
	var q Queue
	if q.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

// refQueue is the pre-calendar reference implementation: a single 4-ary heap
// ordered by (time, insertion order). The equivalence tests replay random
// schedules through both implementations and demand identical pop order,
// which pins the calendar/heap merge to the exact semantics of a totally
// ordered queue — including same-cycle FIFO ties.
type refQueue struct {
	h   []item
	seq uint64
	now uint64
}

func (q *refQueue) push(at uint64, fn Func) {
	q.seq++
	q.h = append(q.h, item{at: at, seq: q.seq, fn: fn})
	i := len(q.h) - 1
	it := q.h[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !it.less(q.h[p]) {
			break
		}
		q.h[i] = q.h[p]
		i = p
	}
	q.h[i] = it
}

func (q *refQueue) step() bool {
	n := len(q.h)
	if n == 0 {
		return false
	}
	it := q.h[0]
	last := q.h[n-1]
	q.h = q.h[:n-1]
	if n > 1 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n-1 {
				break
			}
			end := c + 4
			if end > n-1 {
				end = n - 1
			}
			m := c
			for j := c + 1; j < end; j++ {
				if q.h[j].less(q.h[m]) {
					m = j
				}
			}
			if !q.h[m].less(last) {
				break
			}
			q.h[i] = q.h[m]
			i = m
		}
		q.h[i] = last
	}
	q.now = it.at
	it.fn(q.now)
	return true
}

// TestCalendarHeapEquivalence replays randomized schedules — pops
// interleaved with pushes whose delays straddle the calendar horizon, with
// deliberate same-cycle bursts — through the two-level queue and the
// reference heap, and requires the exact same (cycle, id) pop sequence.
func TestCalendarHeapEquivalence(t *testing.T) {
	x := uint64(12345)
	rnd := func(n uint64) uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x % n
	}
	for trial := 0; trial < 50; trial++ {
		var q Queue
		var ref refQueue
		type rec struct {
			at uint64
			id int
		}
		var got, want []rec
		id := 0
		push := func(delay uint64) {
			i := id
			id++
			q.At(q.Now()+delay, func(now uint64) { got = append(got, rec{now, i}) })
			ref.push(ref.now+delay, func(now uint64) { want = append(want, rec{now, i}) })
		}
		for i := 0; i < 64; i++ {
			push(rnd(3 * calBuckets)) // ~1/3 beyond the horizon
		}
		for q.Len() > 0 {
			// Pop one, then sometimes push a burst of same-cycle and
			// near/far-future events so ties and spills keep occurring as
			// time advances.
			q.Step()
			ref.step()
			if id < 4000 && rnd(4) == 0 {
				n := rnd(6)
				for j := uint64(0); j < n; j++ {
					switch rnd(4) {
					case 0:
						push(0) // same-cycle tie
					case 1:
						push(rnd(64))
					case 2:
						push(calBuckets - 1 + rnd(3)) // horizon boundary
					default:
						push(calBuckets * (1 + rnd(3)))
					}
				}
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: popped %d events, reference popped %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: pop %d = %+v, reference %+v", trial, i, got[i], want[i])
			}
		}
		if q.Now() != ref.now {
			t.Fatalf("trial %d: final time %d, reference %d", trial, q.Now(), ref.now)
		}
	}
}

// TestFarFutureBackstop pins the spill path: events beyond the calendar
// horizon run in scheduled order, including ties against calendar events at
// the same cycle scheduled later (the heap event was scheduled first, so it
// must pop first).
func TestFarFutureBackstop(t *testing.T) {
	var q Queue
	var got []int
	far := uint64(calBuckets + 7)
	q.At(far, func(uint64) { got = append(got, 0) }) // spills to the heap
	q.At(1, func(now uint64) {
		// Now far is within the horizon; this lands in the calendar at the
		// same cycle but with a later seq.
		q.At(far, func(uint64) { got = append(got, 1) })
	})
	q.At(2*calBuckets+5, func(uint64) { got = append(got, 2) })
	q.Run(nil)
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("backstop pop order = %v, want [0 1 2]", got)
	}
	if q.Now() != 2*calBuckets+5 {
		t.Fatalf("final time = %d", q.Now())
	}
}

// TestResetReusePooled exercises the sync.Pool reuse pattern the worker pool
// relies on: a queue that ran a schedule (including spilled events) is
// Reset, pooled, and must behave like new — time at zero, FIFO ties
// starting over, no stale callbacks — while keeping its grown slab.
func TestResetReusePooled(t *testing.T) {
	pool := sync.Pool{New: func() any { return &Queue{} }}
	q := pool.Get().(*Queue)
	stale := 0
	for i := 0; i < 200; i++ {
		q.At(uint64(i%17), func(uint64) { stale++ })
		q.At(uint64(calBuckets+i), func(uint64) { stale++ })
	}
	for i := 0; i < 50; i++ {
		q.Step()
	}
	q.Reset()
	pool.Put(q)

	q = pool.Get().(*Queue)
	if q.Len() != 0 || q.Now() != 0 {
		t.Fatalf("pooled queue not clean: len=%d now=%d", q.Len(), q.Now())
	}
	ran := stale
	var got []int
	q.At(0, func(uint64) { got = append(got, 0) })
	q.At(0, func(uint64) { got = append(got, 1) })
	q.At(calBuckets*2, func(uint64) { got = append(got, 2) })
	q.Run(nil)
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("reused queue ran %v, want [0 1 2]", got)
	}
	if stale != ran {
		t.Fatalf("stale callbacks survived Reset: %d extra", stale-ran)
	}
}

// Property: for any schedule of events, execution order is sorted by
// (time, insertion order).
func TestOrderProperty(t *testing.T) {
	if err := quick.Check(func(times []uint16) bool {
		var q Queue
		type rec struct {
			at  uint64
			seq int
		}
		var got []rec
		for i, at := range times {
			at, i := uint64(at), i
			q.At(at, func(uint64) { got = append(got, rec{at, i}) })
		}
		q.Run(nil)
		if len(got) != len(times) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				return false
			}
			if got[i].at == got[i-1].at && got[i].seq < got[i-1].seq {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}
