package event

import "testing"

// BenchmarkEventQueue measures the steady-state push/pop hot path the
// simulator lives in: a rolling window of pending events where every pop
// schedules a replacement a pseudo-random distance in the future. The
// callback is preallocated so the benchmark isolates queue cost from
// closure-capture cost at the call sites. Delays stay inside the calendar
// horizon, matching the simulator's dominant enqueue→complete pattern;
// BenchmarkEventQueueSpill covers the heap backstop.
func BenchmarkEventQueue(b *testing.B) {
	for _, window := range []int{16, 256, 4096} {
		b.Run(benchName(window), func(b *testing.B) {
			var q Queue
			fn := Func(func(uint64) {})
			next := newXorshift()
			for i := 0; i < window; i++ {
				q.At(next()%1024, fn)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q.Step()
				q.At(q.Now()+next()%1024, fn)
			}
		})
	}
}

// BenchmarkEventQueueSpill drives the far-future backstop: half the pushes
// land beyond the calendar horizon and must flow through the heap.
func BenchmarkEventQueueSpill(b *testing.B) {
	var q Queue
	fn := Func(func(uint64) {})
	next := newXorshift()
	for i := 0; i < 256; i++ {
		q.At(next()%(4*calBuckets), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Step()
		q.At(q.Now()+next()%(4*calBuckets), fn)
	}
}

// TestSteadyStateAllocFree pins the //bear:hotpath contract on the queue
// kernels: once the node slab and heap backing array have grown to the
// working size, At/Step allocate nothing — on the calendar fast path and
// through the spill path alike.
func TestSteadyStateAllocFree(t *testing.T) {
	var q Queue
	fn := Func(func(uint64) {})
	next := newXorshift()
	for i := 0; i < 1024; i++ {
		q.At(next()%(2*calBuckets), fn)
	}
	for i := 0; i < 4096; i++ { // grow everything to steady state
		q.Step()
		q.At(q.Now()+next()%(2*calBuckets), fn)
	}
	allocs := testing.AllocsPerRun(2048, func() {
		q.Step()
		q.At(q.Now()+next()%(2*calBuckets), fn)
	})
	if allocs != 0 {
		t.Fatalf("steady-state At/Step allocated %.2f times per op, want 0", allocs)
	}
}

// xorshift keeps delays deterministic without math/rand.
func newXorshift() func() uint64 {
	x := uint64(0x9e3779b97f4a7c15)
	return func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
}

func benchName(window int) string {
	switch window {
	case 16:
		return "window=16"
	case 256:
		return "window=256"
	default:
		return "window=4096"
	}
}
