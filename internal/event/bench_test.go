package event

import "testing"

// BenchmarkEventQueue measures the steady-state push/pop hot path the
// simulator lives in: a rolling window of pending events where every pop
// schedules a replacement a pseudo-random distance in the future. The
// callback is preallocated so the benchmark isolates queue cost from
// closure-capture cost at the call sites.
func BenchmarkEventQueue(b *testing.B) {
	for _, window := range []int{16, 256, 4096} {
		b.Run(benchName(window), func(b *testing.B) {
			var q Queue
			fn := Func(func(uint64) {})
			// xorshift keeps delays deterministic without math/rand.
			x := uint64(0x9e3779b97f4a7c15)
			next := func() uint64 {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				return x
			}
			for i := 0; i < window; i++ {
				q.At(next()%1024, fn)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				at := q.h[0].at
				q.Step()
				q.At(at+next()%1024, fn)
			}
		})
	}
}

func benchName(window int) string {
	switch window {
	case 16:
		return "window=16"
	case 256:
		return "window=256"
	default:
		return "window=4096"
	}
}
