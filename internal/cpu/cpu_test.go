package cpu

import (
	"testing"

	"bear/internal/config"
	"bear/internal/event"
	"bear/internal/trace"
)

// scriptSource replays a fixed op list, then repeats the last op forever.
type scriptSource struct {
	ops []trace.Op
	pos int
}

func (s *scriptSource) Next(op *trace.Op) {
	if s.pos < len(s.ops) {
		*op = s.ops[s.pos]
		s.pos++
		return
	}
	*op = s.ops[len(s.ops)-1]
}

// fakePort services loads with a fixed latency, tracking concurrency.
type fakePort struct {
	q       *event.Queue
	latency uint64
	sync    bool

	inFlight    int
	maxInFlight int
	loads       int
	stores      int
}

func (p *fakePort) Load(now uint64, core int, line, pc uint64, done event.Func) (uint64, bool) {
	p.loads++
	if p.sync {
		return now + p.latency, true
	}
	p.inFlight++
	if p.inFlight > p.maxInFlight {
		p.maxInFlight = p.inFlight
	}
	p.q.At(now+p.latency, func(t uint64) {
		p.inFlight--
		done(t)
	})
	return 0, false
}

func (p *fakePort) Store(now uint64, core int, line, pc uint64) { p.stores++ }

func cfg() config.Core { return config.Core{Count: 1, Width: 2, Window: 64, MSHRs: 4} }

func run(t *testing.T, src trace.Source, port MemPort, warm, meas uint64) (*Core, *event.Queue) {
	t.Helper()
	q := &event.Queue{}
	finished := false
	c := New(0, cfg(), q, src, port, warm, meas, nil, func(int, uint64) { finished = true })
	c.Start()
	q.Run(func() bool { return finished })
	if !c.Finished {
		t.Fatal("core did not finish")
	}
	return c, q
}

func loadOp(nonMem uint32) trace.Op { return trace.Op{NonMem: nonMem, Line: 1, PC: 4} }

func TestWidthBoundsIPC(t *testing.T) {
	// All loads hit instantly (latency 1): IPC should approach the width.
	src := &scriptSource{ops: []trace.Op{loadOp(3)}}
	q := &event.Queue{}
	port := &fakePort{q: q, latency: 1, sync: true}
	finished := false
	c := New(0, cfg(), q, src, port, 0, 10000, nil, func(int, uint64) { finished = true })
	c.Start()
	q.Run(func() bool { return finished })
	ipc := c.IPC()
	if ipc > 2.0 || ipc < 1.8 {
		t.Fatalf("IPC = %.2f, want close to width 2", ipc)
	}
}

func TestStallOnSlowLoads(t *testing.T) {
	src := &scriptSource{ops: []trace.Op{loadOp(0)}}
	q := &event.Queue{}
	port := &fakePort{q: q, latency: 500}
	finished := false
	c := New(0, cfg(), q, src, port, 0, 1000, nil, func(int, uint64) { finished = true })
	c.Start()
	q.Run(func() bool { return finished })
	// 1000 instructions of back-to-back 500-cycle loads with MSHRs=4 and
	// window 64: the core must be memory bound, far below width IPC.
	if ipc := c.IPC(); ipc > 0.5 {
		t.Fatalf("IPC = %.2f under 500-cycle loads, expected memory-bound", ipc)
	}
}

func TestMSHRLimitRespected(t *testing.T) {
	src := &scriptSource{ops: []trace.Op{loadOp(0)}}
	q := &event.Queue{}
	port := &fakePort{q: q, latency: 300}
	finished := false
	c := New(0, cfg(), q, src, port, 0, 2000, nil, func(int, uint64) { finished = true })
	c.Start()
	q.Run(func() bool { return finished })
	if port.maxInFlight > cfg().MSHRs {
		t.Fatalf("max in-flight loads = %d, exceeds MSHRs = %d", port.maxInFlight, cfg().MSHRs)
	}
	if port.maxInFlight < 2 {
		t.Fatalf("max in-flight = %d; the core exposed no MLP", port.maxInFlight)
	}
}

func TestWindowLimitsRunahead(t *testing.T) {
	// One very slow load followed by fast non-memory work: the core may
	// run ahead at most Window instructions.
	ops := []trace.Op{loadOp(0)}
	for i := 0; i < 100; i++ {
		ops = append(ops, trace.Op{NonMem: 200, Line: 2, PC: 8, Store: true})
	}
	src := &scriptSource{ops: ops}
	q := &event.Queue{}
	port := &fakePort{q: q, latency: 10000}
	finished := false
	c := New(0, cfg(), q, src, port, 0, 5000, nil, func(int, uint64) { finished = true })
	c.Start()
	q.RunUntil(5000)
	// At time 5000 the first load (latency 10000) is outstanding; the
	// core may not have retired more than Window + one op's worth.
	if c.Retired() > uint64(cfg().Window)+201 {
		t.Fatalf("retired %d instructions past a blocking load, window is %d",
			c.Retired(), cfg().Window)
	}
	q.Run(func() bool { return finished })
}

func TestStoresNonBlocking(t *testing.T) {
	ops := []trace.Op{{NonMem: 0, Line: 3, PC: 4, Store: true}}
	src := &scriptSource{ops: ops}
	q := &event.Queue{}
	port := &fakePort{q: q, latency: 100000}
	finished := false
	c := New(0, cfg(), q, src, port, 0, 1000, nil, func(int, uint64) { finished = true })
	c.Start()
	q.Run(func() bool { return finished })
	if c.FinishAt > 1200 {
		t.Fatalf("stores blocked the core: finished at %d", c.FinishAt)
	}
	if port.stores == 0 {
		t.Fatal("no stores issued")
	}
}

func TestWarmBoundary(t *testing.T) {
	src := &scriptSource{ops: []trace.Op{loadOp(4)}}
	q := &event.Queue{}
	port := &fakePort{q: q, latency: 1, sync: true}
	warmed := false
	finished := false
	c := New(0, cfg(), q, src, port, 500, 1000, func(int) { warmed = true },
		func(int, uint64) { finished = true })
	c.Start()
	q.Run(func() bool { return finished })
	if !warmed {
		t.Fatal("onWarm never fired")
	}
	if c.MarkTime == 0 || c.MarkTime >= c.FinishAt {
		t.Fatalf("MarkTime = %d, FinishAt = %d", c.MarkTime, c.FinishAt)
	}
	if got := c.MeasuredInstructions(); got != 1000 {
		t.Fatalf("measured instructions = %d, want 1000 (capped)", got)
	}
}

func TestRunsPastBudget(t *testing.T) {
	src := &scriptSource{ops: []trace.Op{loadOp(4)}}
	q := &event.Queue{}
	port := &fakePort{q: q, latency: 1, sync: true}
	finished := false
	c := New(0, cfg(), q, src, port, 0, 100, nil, func(int, uint64) { finished = true })
	c.Start()
	// Run beyond the finish; the core should keep loading the memory
	// system (rate-mode methodology).
	q.RunUntil(10000)
	if !c.Finished {
		t.Fatal("core did not report finish")
	}
	if c.Retired() <= 100 {
		t.Fatal("core stopped executing at its budget")
	}
	if got := c.MeasuredInstructions(); got != 100 {
		t.Fatalf("measured instructions = %d, want capped at 100", got)
	}
	_ = finished
}

func TestIPCBeforeFinishIsZero(t *testing.T) {
	src := &scriptSource{ops: []trace.Op{loadOp(4)}}
	q := &event.Queue{}
	port := &fakePort{q: q, latency: 1, sync: true}
	c := New(0, cfg(), q, src, port, 0, 1000, nil, nil)
	if c.IPC() != 0 {
		t.Fatal("IPC before finish should be 0")
	}
}

func TestMixedSyncAsyncLoads(t *testing.T) {
	// Alternate fast (sync) and slow (async) loads; the core must retire
	// everything and release MSHRs in completion order.
	q := &event.Queue{}
	slow := &fakePort{q: q, latency: 400}
	fast := &fakePort{q: q, latency: 2, sync: true}
	alt := &alternatingPort{a: slow, b: fast}
	src := &scriptSource{ops: []trace.Op{loadOp(1)}}
	finished := false
	c := New(0, cfg(), q, src, alt, 0, 3000, nil, func(int, uint64) { finished = true })
	c.Start()
	q.Run(func() bool { return finished })
	if !c.Finished {
		t.Fatal("core stuck with mixed load latencies")
	}
	if slow.loads == 0 || fast.loads == 0 {
		t.Fatal("alternation broken")
	}
}

type alternatingPort struct {
	a, b MemPort
	n    int
}

func (p *alternatingPort) Load(now uint64, core int, line, pc uint64, done event.Func) (uint64, bool) {
	p.n++
	if p.n%2 == 0 {
		return p.a.Load(now, core, line, pc, done)
	}
	return p.b.Load(now, core, line, pc, done)
}

func (p *alternatingPort) Store(now uint64, core int, line, pc uint64) {}

func TestQuantumYielding(t *testing.T) {
	// A core with cheap loads must still interleave with the event queue
	// rather than simulating arbitrarily far ahead: its local time can
	// exceed global time by at most the quantum plus one op.
	q := &event.Queue{}
	port := &fakePort{q: q, latency: 1, sync: true}
	src := &scriptSource{ops: []trace.Op{loadOp(10)}}
	c := New(0, cfg(), q, src, port, 0, 100000, nil, nil)
	c.Start()
	for i := 0; i < 50 && q.Len() > 0; i++ {
		q.Step()
		if c.time > q.Now()+quantum+16 {
			t.Fatalf("core ran %d cycles ahead of global time", c.time-q.Now())
		}
	}
}

func TestZeroNonMemOps(t *testing.T) {
	// Back-to-back memory ops (NonMem = 0) still consume cycles.
	q := &event.Queue{}
	port := &fakePort{q: q, latency: 1, sync: true}
	src := &scriptSource{ops: []trace.Op{loadOp(0)}}
	finished := false
	c := New(0, cfg(), q, src, port, 0, 1000, nil, func(int, uint64) { finished = true })
	c.Start()
	q.Run(func() bool { return finished })
	if c.FinishAt < 500 {
		t.Fatalf("1000 single-instruction ops finished in %d cycles (width 2)", c.FinishAt)
	}
}
