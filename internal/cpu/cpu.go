// Package cpu models the processor cores. Each core is a 2-wide
// interval-style model: instructions retire at the configured width, loads
// may overlap up to the MSHR limit, and the core may run ahead of its oldest
// incomplete load by at most the window size (an ROB approximation). Stores
// are non-blocking (posted into the hierarchy).
//
// The model is event-driven: a core simulates forward in short quanta and
// yields to the event queue, waking again when simulated time catches up or
// when a blocking load completes. This exposes memory-level parallelism —
// the property that makes DRAM-cache bandwidth, not just latency, determine
// performance — without per-cycle pipeline simulation.
//
// The per-instruction path is steady-state allocation-free: the core's wakeup
// callback is bound once at construction, load-completion callbacks are
// pooled tokens with pre-bound methods, and the outstanding-load window is a
// reusable ring buffer.
package cpu

import (
	"bear/internal/config"
	"bear/internal/event"
	"bear/internal/fault"
	"bear/internal/trace"
)

// MemPort is the cache hierarchy as seen by a core.
type MemPort interface {
	// Load issues a load for a line address. If the port can bound the
	// completion time immediately (an on-chip hit), it returns
	// (completeAt, true) and will not call done. Otherwise it returns
	// (0, false) and invokes done exactly once, later, from the event
	// queue.
	Load(now uint64, core int, line, pc uint64, done event.Func) (completeAt uint64, sync bool)
	// Store issues a posted store for a line address.
	Store(now uint64, core int, line, pc uint64)
}

// quantum bounds how far a core simulates ahead of global time before
// yielding to the event queue, keeping cross-core interleaving in the shared
// caches close to timestamp order.
const quantum = 32

type pendingLoad struct {
	idx        uint64 // instruction number of the load
	completeAt uint64 //bear:clock — valid when !pending
	pending    bool   // true while waiting for an async callback
}

// loadRing is a growable FIFO ring of pending loads. The window advances
// monotonically (push at tail, pop at head), so a head/length ring reuses
// its backing array forever instead of crawling a slice forward. Capacity
// is kept a power of two so indexing is a mask, not a division — At sits on
// the per-instruction path.
//
// popped counts lifetime PopFronts, giving every entry a stable absolute
// position (popped+i for the i-th outstanding load). Completion callbacks
// carry that position so they resolve their entry in O(1) instead of
// scanning the window.
type loadRing struct {
	buf    []pendingLoad
	head   int
	n      int
	popped uint64
}

// Len reports the number of outstanding loads.
func (r *loadRing) Len() int { return r.n }

// At returns the i-th outstanding load in issue order.
func (r *loadRing) At(i int) *pendingLoad { return &r.buf[(r.head+i)&(len(r.buf)-1)] }

// Push appends a load at the tail, growing the ring when full, and returns
// the entry's absolute position.
func (r *loadRing) Push(p pendingLoad) uint64 {
	if r.n == len(r.buf) {
		grown := make([]pendingLoad, max(4, 2*len(r.buf)))
		for i := 0; i < r.n; i++ {
			grown[i] = *r.At(i)
		}
		r.buf = grown
		r.head = 0
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = p
	r.n++
	return r.popped + uint64(r.n-1)
}

// PopFront removes the oldest outstanding load.
func (r *loadRing) PopFront() {
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	r.popped++
}

// timeHeap is a reusable min-heap of completion times for loads the port
// answered synchronously. Draining it as core time advances keeps the MSHR
// occupancy count exact without rescanning the outstanding window.
type timeHeap struct {
	h []uint64 //bear:clock — completion times, min-heap order
}

func (t *timeHeap) push(v uint64) {
	t.h = append(t.h, v)
	i := len(t.h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if t.h[p] <= v {
			break
		}
		t.h[i] = t.h[p]
		i = p
	}
	t.h[i] = v
}

// drainLE removes every entry <= limit and returns how many were removed.
func (t *timeHeap) drainLE(limit uint64) int {
	n := 0
	for len(t.h) > 0 && t.h[0] <= limit {
		last := len(t.h) - 1
		v := t.h[last]
		t.h = t.h[:last]
		if last > 0 {
			i := 0
			for {
				l := 2*i + 1
				if l >= last {
					break
				}
				if r := l + 1; r < last && t.h[r] < t.h[l] {
					l = r
				}
				if t.h[l] >= v {
					break
				}
				t.h[i] = t.h[l]
				i = l
			}
			t.h[i] = v
		}
		n++
	}
	return n
}

// doneToken is a pooled load-completion callback: fn is the pre-bound
// complete method, so issuing a load allocates nothing once the pool is
// warm. Tokens are released when their callback fires (async loads) or
// immediately (loads the port answered synchronously).
type doneToken struct {
	c    *Core
	idx  uint64
	pos  uint64 // absolute loadRing position of the load's entry
	fn   event.Func
	next *doneToken
}

// complete marks the load issued as instruction idx finished and resumes the
// core. The token's absolute ring position resolves the entry directly: a
// pending load is never popped (popCompleted stops at a pending head), so
// pos-popped is always a live offset and no window scan is needed.
//
//bear:hotpath
func (d *doneToken) complete(now uint64) {
	c := d.c
	p := c.outstanding.At(int(d.pos - c.outstanding.popped))
	if p.idx != d.idx || !p.pending {
		panic(fault.Invariantf("cpu", "core %d: completion token for instr %d resolved to instr %d (pending=%v)",
			c.ID, d.idx, p.idx, p.pending))
	}
	c.putToken(d)
	p.pending = false
	p.completeAt = now
	// run() will set c.time >= now, so this entry is no longer live; retire
	// its MSHR slot immediately.
	c.inflight--
	c.run(now)
}

// Core simulates one processor core.
type Core struct {
	ID  int
	cfg config.Core

	q    *event.Queue
	src  trace.Source
	port MemPort

	warmBudget  uint64
	measBudget  uint64
	budgetMark  uint64 // next retired count needing warm/finish handling
	retired     uint64
	time        uint64 // core-local time, >= q.Now() when running
	outstanding loadRing
	inflight    int      // live MSHR slots, kept exact incrementally
	syncDone    timeHeap // completion times of in-flight sync loads

	runFn  event.Func // pre-bound c.run, shared by every wakeup
	tokens *doneToken // pooled load-completion callbacks

	op      trace.Op
	opValid bool

	warmed   bool
	MarkTime uint64 // cycle at which the core crossed its warm boundary

	Finished bool
	FinishAt uint64
	halted   bool

	onWarm   func(core int)
	onFinish func(core int, now uint64)

	running bool

	// Stall diagnostics.
	StallCycles uint64
}

// New creates a core that will retire warm+meas instructions from src.
func New(id int, cfg config.Core, q *event.Queue, src trace.Source, port MemPort,
	warm, meas uint64, onWarm func(int), onFinish func(int, uint64)) *Core {
	c := &Core{
		ID: id, cfg: cfg, q: q, src: src, port: port,
		warmBudget: warm, measBudget: meas,
		onWarm: onWarm, onFinish: onFinish,
	}
	c.runFn = c.run
	c.updateMark()
	return c
}

// updateMark recomputes the next retired count at which the retire loop must
// take the warm/finish slow path; once both have fired the mark is parked
// beyond any reachable count.
func (c *Core) updateMark() {
	m := ^uint64(0)
	if !c.Finished {
		m = c.warmBudget + c.measBudget
	}
	if !c.warmed && c.warmBudget < m {
		m = c.warmBudget
	}
	c.budgetMark = m
}

// crossMark handles the warm and finish boundaries. It fires on exactly the
// iterations where the per-op checks it replaces would have fired: budgetMark
// is the smallest retired count at which either check could trigger.
func (c *Core) crossMark() {
	if !c.Finished && c.retired >= c.warmBudget+c.measBudget {
		c.finish()
	}
	if !c.warmed && c.retired >= c.warmBudget {
		c.warmed = true
		c.MarkTime = c.time
		if c.onWarm != nil {
			c.onWarm(c.ID)
		}
	}
	c.updateMark()
}

//bear:acquire
func (c *Core) getToken(idx uint64) *doneToken {
	d := c.tokens
	if d == nil {
		d = &doneToken{c: c}
		d.fn = d.complete
	} else {
		c.tokens = d.next
		d.next = nil
	}
	d.idx = idx
	return d
}

func (c *Core) putToken(d *doneToken) {
	d.next = c.tokens
	c.tokens = d
}

// Retired returns the instructions retired so far.
func (c *Core) Retired() uint64 { return c.retired }

// CheckMSHRs verifies the core's miss-status accounting, for the watchdog's
// -check mode: live MSHR slots must stay within [0, MSHRs] and every live
// slot must correspond to an entry still in the outstanding-load window.
func (c *Core) CheckMSHRs() error {
	if c.inflight < 0 || c.inflight > c.cfg.MSHRs {
		return fault.Invariantf("cpu", "core %d: %d MSHRs in flight outside [0, %d]",
			c.ID, c.inflight, c.cfg.MSHRs)
	}
	if c.inflight > c.outstanding.Len() {
		return fault.Invariantf("cpu", "core %d: %d MSHRs in flight but only %d outstanding loads",
			c.ID, c.inflight, c.outstanding.Len())
	}
	return nil
}

// MeasuredInstructions returns instructions retired after the warm boundary,
// capped at the measurement budget (cores keep executing past the budget to
// sustain load, but the extra instructions are not measured).
func (c *Core) MeasuredInstructions() uint64 {
	if !c.warmed {
		return 0
	}
	n := c.retired - c.warmBudget
	if n > c.measBudget {
		n = c.measBudget
	}
	return n
}

// IPC returns the measured-phase instructions per cycle (valid once
// finished).
func (c *Core) IPC() float64 {
	if !c.Finished || c.FinishAt <= c.MarkTime {
		return 0
	}
	return float64(c.MeasuredInstructions()) / float64(c.FinishAt-c.MarkTime)
}

// Start schedules the core's first execution slice.
func (c *Core) Start() {
	c.q.At(c.q.Now(), c.runFn)
}

// Halt stops the core from issuing further instructions: subsequent run
// invocations only release completed loads. A halted core schedules no new
// wakeups, so once its in-flight loads complete it contributes no more
// events. Tests halt every core after measurement to drain the event queue
// to empty (which would otherwise never happen — finished cores keep
// executing to sustain load on the shared memory system).
func (c *Core) Halt() { c.halted = true }

// run advances the core until it must wait for a load or yields its
// quantum. It is the single state machine for the core and is re-invoked by
// timer wakeups and load-completion callbacks.
//
// A core that exhausts its instruction budget keeps executing (its later
// instructions are not counted): rate-mode measurement ends when the
// slowest core completes its budget, and the fast cores must keep loading
// the shared memory system until then so contention stays realistic.
//
//bear:hotpath
func (c *Core) run(now uint64) {
	if c.running {
		return
	}
	c.running = true
	defer c.endRun()

	if c.time < now {
		c.time = now
	}
	for {
		c.popCompleted()
		if c.halted {
			return
		}

		if c.retired >= c.budgetMark {
			c.crossMark()
		}

		// Stall checks. A full MSHR file or exhausted window blocks issue
		// until the relevant load completes (MSHRs free on completion
		// regardless of order: async frees in the callback, sync frees as
		// core time passes the completion time recorded in syncDone).
		c.inflight -= c.syncDone.drainLE(c.time)
		if c.inflight >= c.cfg.MSHRs {
			c.waitForLoads(true)
			return
		}
		if c.outstanding.Len() > 0 && c.retired-c.outstanding.At(0).idx >= uint64(c.cfg.Window) {
			c.waitForLoads(false)
			return
		}

		if !c.opValid {
			c.src.Next(&c.op)
			c.opValid = true
		}
		op := c.op
		c.opValid = false

		// Charge front-end throughput for the non-memory instructions plus
		// the memory instruction itself.
		instrs := uint64(op.NonMem) + 1
		c.time += (instrs + uint64(c.cfg.Width) - 1) / uint64(c.cfg.Width)
		c.retired += instrs

		if op.Store {
			c.port.Store(c.time, c.ID, op.Line, op.PC)
		} else {
			idx := c.retired
			tok := c.getToken(idx)
			// The entry's absolute position is known before the push: done
			// fires strictly later (MemPort contract), after the push below.
			tok.pos = c.outstanding.popped + uint64(c.outstanding.n)
			completeAt, sync := c.port.Load(c.time, c.ID, op.Line, op.PC, tok.fn)
			if sync {
				// The port answered without keeping the callback.
				c.putToken(tok)
				if completeAt > c.time {
					c.outstanding.Push(pendingLoad{idx: idx, completeAt: completeAt})
					c.inflight++
					c.syncDone.push(completeAt)
				}
			} else {
				c.outstanding.Push(pendingLoad{idx: idx, pending: true})
				c.inflight++
			}
		}

		if c.time > now+quantum {
			// Yield; resume when global time catches up.
			c.q.At(c.time, c.runFn)
			return
		}
	}
}

// endRun clears the reentrancy guard when run unwinds. A method value
// deferred directly stays off the heap; the equivalent closure allocated
// once per run invocation.
func (c *Core) endRun() { c.running = false }

// popCompleted releases finished loads in program order.
func (c *Core) popCompleted() {
	for c.outstanding.Len() > 0 {
		p := c.outstanding.At(0)
		if p.pending || p.completeAt > c.time {
			break
		}
		c.outstanding.PopFront()
	}
}

// waitForLoads schedules the core's resumption: if any blocking entry has a
// known completion time it wakes then; async completions re-invoke run via
// their callbacks. anyLoad selects between MSHR stalls (any completion
// helps) and window stalls (only the oldest helps).
//
//bear:hotpath
func (c *Core) waitForLoads(anyLoad bool) {
	stallFrom := c.time
	var wake uint64
	haveWake := false
	if anyLoad {
		// The caller just drained syncDone to c.time, so the heap holds
		// exactly the completion times of non-pending outstanding loads that
		// are still in the future; its top is the earliest useful wakeup. No
		// window scan needed.
		if len(c.syncDone.h) > 0 {
			wake, haveWake = c.syncDone.h[0], true
		}
	} else if c.outstanding.Len() > 0 {
		p := c.outstanding.At(0)
		if !p.pending {
			wake, haveWake = p.completeAt, true
		}
	}
	if haveWake {
		c.StallCycles += wake - stallFrom
		c.q.At(wake, c.runFn) //bear:nolint timeflow — wake copies a clock-valued field (syncDone.h top or completeAt) on the haveWake paths; the unassigned path is excluded by haveWake, which the dataflow cannot correlate
	}
	// Otherwise a pending callback will resume us.
}

func (c *Core) finish() {
	c.Finished = true
	c.FinishAt = c.time
	if c.onFinish != nil {
		c.onFinish(c.ID, c.time)
	}
}
