// Package cpu models the processor cores. Each core is a 2-wide
// interval-style model: instructions retire at the configured width, loads
// may overlap up to the MSHR limit, and the core may run ahead of its oldest
// incomplete load by at most the window size (an ROB approximation). Stores
// are non-blocking (posted into the hierarchy).
//
// The model is event-driven: a core simulates forward in short quanta and
// yields to the event queue, waking again when simulated time catches up or
// when a blocking load completes. This exposes memory-level parallelism —
// the property that makes DRAM-cache bandwidth, not just latency, determine
// performance — without per-cycle pipeline simulation.
package cpu

import (
	"bear/internal/config"
	"bear/internal/event"
	"bear/internal/trace"
)

// MemPort is the cache hierarchy as seen by a core.
type MemPort interface {
	// Load issues a load for a line address. If the port can bound the
	// completion time immediately (an on-chip hit), it returns
	// (completeAt, true) and will not call done. Otherwise it returns
	// (0, false) and invokes done exactly once, later, from the event
	// queue.
	Load(now uint64, core int, line, pc uint64, done event.Func) (completeAt uint64, sync bool)
	// Store issues a posted store for a line address.
	Store(now uint64, core int, line, pc uint64)
}

// quantum bounds how far a core simulates ahead of global time before
// yielding to the event queue, keeping cross-core interleaving in the shared
// caches close to timestamp order.
const quantum = 32

type pendingLoad struct {
	idx        uint64 // instruction number of the load
	completeAt uint64 // valid when !pending
	pending    bool   // true while waiting for an async callback
}

// Core simulates one processor core.
type Core struct {
	ID  int
	cfg config.Core

	q    *event.Queue
	src  trace.Source
	port MemPort

	warmBudget  uint64
	measBudget  uint64
	retired     uint64
	time        uint64 // core-local time, >= q.Now() when running
	outstanding []pendingLoad
	inflight    int // outstanding entries still pending or not yet complete

	op      trace.Op
	opValid bool

	warmed   bool
	MarkTime uint64 // cycle at which the core crossed its warm boundary

	Finished bool
	FinishAt uint64

	onWarm   func(core int)
	onFinish func(core int, now uint64)

	running bool

	// Stall diagnostics.
	StallCycles uint64
}

// New creates a core that will retire warm+meas instructions from src.
func New(id int, cfg config.Core, q *event.Queue, src trace.Source, port MemPort,
	warm, meas uint64, onWarm func(int), onFinish func(int, uint64)) *Core {
	return &Core{
		ID: id, cfg: cfg, q: q, src: src, port: port,
		warmBudget: warm, measBudget: meas,
		onWarm: onWarm, onFinish: onFinish,
	}
}

// Retired returns the instructions retired so far.
func (c *Core) Retired() uint64 { return c.retired }

// MeasuredInstructions returns instructions retired after the warm boundary,
// capped at the measurement budget (cores keep executing past the budget to
// sustain load, but the extra instructions are not measured).
func (c *Core) MeasuredInstructions() uint64 {
	if !c.warmed {
		return 0
	}
	n := c.retired - c.warmBudget
	if n > c.measBudget {
		n = c.measBudget
	}
	return n
}

// IPC returns the measured-phase instructions per cycle (valid once
// finished).
func (c *Core) IPC() float64 {
	if !c.Finished || c.FinishAt <= c.MarkTime {
		return 0
	}
	return float64(c.MeasuredInstructions()) / float64(c.FinishAt-c.MarkTime)
}

// Start schedules the core's first execution slice.
func (c *Core) Start() {
	c.q.At(c.q.Now(), func(now uint64) { c.run(now) })
}

// run advances the core until it must wait for a load or yields its
// quantum. It is the single state machine for the core and is re-invoked by
// timer wakeups and load-completion callbacks.
//
// A core that exhausts its instruction budget keeps executing (its later
// instructions are not counted): rate-mode measurement ends when the
// slowest core completes its budget, and the fast cores must keep loading
// the shared memory system until then so contention stays realistic.
func (c *Core) run(now uint64) {
	if c.running {
		return
	}
	c.running = true
	defer func() { c.running = false }()

	if c.time < now {
		c.time = now
	}
	for {
		c.popCompleted()

		total := c.warmBudget + c.measBudget
		if !c.Finished && c.retired >= total {
			c.finish()
		}
		if !c.warmed && c.retired >= c.warmBudget {
			c.warmed = true
			c.MarkTime = c.time
			if c.onWarm != nil {
				c.onWarm(c.ID)
			}
		}

		// Stall checks. A full MSHR file or exhausted window blocks issue
		// until the relevant load completes.
		if c.inflight >= c.cfg.MSHRs {
			c.waitForLoads(true)
			return
		}
		if len(c.outstanding) > 0 && c.retired-c.outstanding[0].idx >= uint64(c.cfg.Window) {
			c.waitForLoads(false)
			return
		}

		if !c.opValid {
			c.src.Next(&c.op)
			c.opValid = true
		}
		op := c.op
		c.opValid = false

		// Charge front-end throughput for the non-memory instructions plus
		// the memory instruction itself.
		instrs := uint64(op.NonMem) + 1
		c.time += (instrs + uint64(c.cfg.Width) - 1) / uint64(c.cfg.Width)
		c.retired += instrs

		if op.Store {
			c.port.Store(c.time, c.ID, op.Line, op.PC)
		} else {
			idx := c.retired
			completeAt, sync := c.port.Load(c.time, c.ID, op.Line, op.PC, c.loadDone(idx))
			if sync && completeAt <= c.time {
				// Already satisfied; nothing outstanding.
			} else {
				c.outstanding = append(c.outstanding, pendingLoad{idx: idx, completeAt: completeAt, pending: !sync})
				c.inflight++
			}
		}

		if c.time > now+quantum {
			// Yield; resume when global time catches up.
			c.q.At(c.time, func(t uint64) { c.run(t) })
			return
		}
	}
}

// loadDone returns the completion callback for the load issued as
// instruction idx.
func (c *Core) loadDone(idx uint64) event.Func {
	return func(now uint64) {
		for i := range c.outstanding {
			if c.outstanding[i].idx == idx && c.outstanding[i].pending {
				c.outstanding[i].pending = false
				c.outstanding[i].completeAt = now
				break
			}
		}
		c.run(now)
	}
}

// popCompleted releases finished loads in program order and retires their
// MSHR slots (MSHRs free on completion regardless of order).
func (c *Core) popCompleted() {
	live := 0
	for _, p := range c.outstanding {
		if p.pending || p.completeAt > c.time {
			live++
		}
	}
	c.inflight = live
	for len(c.outstanding) > 0 {
		p := c.outstanding[0]
		if p.pending || p.completeAt > c.time {
			break
		}
		c.outstanding = c.outstanding[1:]
	}
}

// waitForLoads schedules the core's resumption: if any blocking entry has a
// known completion time it wakes then; async completions re-invoke run via
// their callbacks. anyLoad selects between MSHR stalls (any completion
// helps) and window stalls (only the oldest helps).
func (c *Core) waitForLoads(anyLoad bool) {
	stallFrom := c.time
	var wake uint64
	haveWake := false
	if anyLoad {
		for _, p := range c.outstanding {
			if !p.pending && p.completeAt > c.time {
				if !haveWake || p.completeAt < wake {
					wake, haveWake = p.completeAt, true
				}
			}
		}
	} else if len(c.outstanding) > 0 {
		p := c.outstanding[0]
		if !p.pending {
			wake, haveWake = p.completeAt, true
		}
	}
	if haveWake {
		c.StallCycles += wake - stallFrom
		c.q.At(wake, func(t uint64) { c.run(t) })
	}
	// Otherwise a pending callback will resume us.
}

func (c *Core) finish() {
	c.Finished = true
	c.FinishAt = c.time
	if c.onFinish != nil {
		c.onFinish(c.ID, c.time)
	}
}
