module bear

go 1.22
