package bear_test

// The benchmark harness: one testing.B benchmark per paper table/figure.
// Each benchmark regenerates its artifact through the experiment registry
// (internal/exp) at quick parameters, so `go test -bench=.` exercises every
// experiment end to end; run `cmd/bearbench -run <id>` for paper-sized
// parameters and readable output.

import (
	"fmt"
	"io"
	"runtime"
	"testing"

	"bear/internal/exp"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := exp.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	p := exp.Quick()
	for i := 0; i < b.N; i++ {
		// A fresh runner per iteration so the memo cache doesn't turn
		// subsequent iterations into no-ops.
		r := exp.NewRunner(p)
		if err := e.Run(p, io.Discard, r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunnerParallel measures the sweep engine itself: the tab4
// aggregate (32 simulations over two specs) on a serial runner versus one
// worker per CPU. On a multicore host the parallel case should approach a
// GOMAXPROCS-fold wall-clock win; output is byte-identical either way
// (see internal/exp TestDeterminismSerialVsParallel).
func BenchmarkRunnerParallel(b *testing.B) {
	e, err := exp.ByID("tab4")
	if err != nil {
		b.Fatal(err)
	}
	p := exp.Params{Scale: 1024, Warm: 20_000, Meas: 50_000, Mixes: 1, Seed: 1}
	for _, c := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {fmt.Sprintf("gomaxprocs=%d", runtime.GOMAXPROCS(0)), runtime.GOMAXPROCS(0)}} {
		workers := c.workers
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r := exp.NewRunner(p)
				r.Parallel = workers
				if err := e.Run(p, io.Discard, r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig3 regenerates Figure 3: Loh-Hill vs Alloy vs BW-Opt bloat
// factor, hit latency and speedup over a system without a DRAM cache.
func BenchmarkFig3(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig4 regenerates Figure 4: the Alloy cache's bandwidth breakdown
// against the BW-Opt ideal and the potential performance headroom.
func BenchmarkFig4(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5 regenerates Figure 5: naive probabilistic bypass at P=50%
// and P=90% (hit latency, hit rate, speedup per workload).
func BenchmarkFig5(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig7 regenerates Figure 7: Bandwidth-Aware Bypass speedups.
func BenchmarkFig7(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig9 regenerates Figure 9: DCP on top of BAB.
func BenchmarkFig9(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig11 regenerates Figure 11: NTC on top of BAB+DCP.
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkFig12 regenerates Figure 12: Alloy vs BEAR vs BW-Opt across all
// workloads with RATE/MIX/ALL geomeans.
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkFig13 regenerates Figure 13: the bloat-factor breakdown for each
// BEAR component stack.
func BenchmarkFig13(b *testing.B) { benchExperiment(b, "fig13") }

// BenchmarkFig14 regenerates Figure 14: bandwidth and capacity sensitivity.
func BenchmarkFig14(b *testing.B) { benchExperiment(b, "fig14") }

// BenchmarkFig15 regenerates Figure 15: bank-count sensitivity.
func BenchmarkFig15(b *testing.B) { benchExperiment(b, "fig15") }

// BenchmarkFig16 regenerates Figure 16: Tags-In-SRAM and Sector Cache
// against Alloy and BEAR.
func BenchmarkFig16(b *testing.B) { benchExperiment(b, "fig16") }

// BenchmarkFig17 regenerates Figure 17: all DRAM-cache designs normalized
// to a system without a DRAM cache.
func BenchmarkFig17(b *testing.B) { benchExperiment(b, "fig17") }

// BenchmarkTab2 regenerates Table 2: measured workload characteristics.
func BenchmarkTab2(b *testing.B) { benchExperiment(b, "tab2") }

// BenchmarkTab4 regenerates Table 4: hit rate and latency, Alloy vs BEAR.
func BenchmarkTab4(b *testing.B) { benchExperiment(b, "tab4") }

// BenchmarkTab5 regenerates Table 5: BEAR's storage overhead.
func BenchmarkTab5(b *testing.B) { benchExperiment(b, "tab5") }

// BenchmarkTab1 regenerates Table 1: the system configuration.
func BenchmarkTab1(b *testing.B) { benchExperiment(b, "tab1") }

// BenchmarkTab3 regenerates Table 3: the mixed-workload compositions.
func BenchmarkTab3(b *testing.B) { benchExperiment(b, "tab3") }

// BenchmarkAblBAB sweeps the bypass probability (Section 4.2 sensitivity).
func BenchmarkAblBAB(b *testing.B) { benchExperiment(b, "abl-bab") }

// BenchmarkAblNTC sweeps the NTC capacity.
func BenchmarkAblNTC(b *testing.B) { benchExperiment(b, "abl-ntc") }

// BenchmarkAblPred compares predictor qualities.
func BenchmarkAblPred(b *testing.B) { benchExperiment(b, "abl-pred") }

// BenchmarkAblWBAlloc compares writeback allocation policies.
func BenchmarkAblWBAlloc(b *testing.B) { benchExperiment(b, "abl-wballoc") }

// BenchmarkAblDeadBlock compares BAB with a dead-block-predictor bypass.
func BenchmarkAblDeadBlock(b *testing.B) { benchExperiment(b, "abl-deadblock") }

// BenchmarkAblTagCache compares spatial and temporal tag caching.
func BenchmarkAblTagCache(b *testing.B) { benchExperiment(b, "abl-tagcache") }

// BenchmarkAblDIP compares Loh-Hill insertion policies.
func BenchmarkAblDIP(b *testing.B) { benchExperiment(b, "abl-dip") }
