package bear_test

// End-to-end hot-path benchmarks: BenchmarkSimAlloy and BenchmarkSimBEAR run
// one complete simulation per iteration and report ns/instr and allocs/instr
// for the measured (steady-state) phase. Construction and warm-up run
// untimed — RunWarm grows the event queue, DRAM request freelists and
// transaction pools to their working sizes first — so allocs/instr is the
// true steady-state allocation rate, which the hot path keeps at zero.
//
// scripts/bench.sh runs these and snapshots the numbers into BENCH_<n>.json
// so the performance trajectory is tracked across PRs.

import (
	"runtime"
	"testing"

	"bear/internal/config"
	"bear/internal/hier"
	"bear/internal/trace"
)

// benchSim reports steady-state ns/instr and allocs/instr for one design.
func benchSim(b *testing.B, design config.Design) {
	b.Helper()
	const (
		scale = 256
		bench = "mcf"
		warm  = uint64(150_000)
		meas  = uint64(500_000)
	)
	sys := config.Default(scale).WithDesign(design)
	var instr, mallocs uint64
	var before, after runtime.MemStats
	b.ResetTimer()
	b.StopTimer()
	for i := 0; i < b.N; i++ {
		wl, err := trace.Rate(bench, sys.Core.Count, scale, 1)
		if err != nil {
			b.Fatal(err)
		}
		sim, err := hier.NewSim(sys, wl, warm, meas)
		if err != nil {
			b.Fatal(err)
		}
		sim.RunWarm()
		runtime.ReadMemStats(&before)
		b.StartTimer()
		res, err := sim.Run()
		b.StopTimer()
		runtime.ReadMemStats(&after)
		if err != nil {
			b.Fatal(err)
		}
		mallocs += after.Mallocs - before.Mallocs
		instr += res.Instructions
	}
	if instr == 0 {
		b.Fatal("no instructions measured")
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(instr), "ns/instr")
	b.ReportMetric(float64(mallocs)/float64(instr), "allocs/instr")
}

// BenchmarkSimAlloy measures the Alloy baseline (MAP-I predictor, no BEAR
// components): the common L4 hit/miss paths through dram, dramcache, hier
// and cpu.
func BenchmarkSimAlloy(b *testing.B) { benchSim(b, config.Alloy) }

// BenchmarkSimBEAR measures the full BEAR design (BAB + DCP + NTC), which
// additionally exercises the bypass, presence and tag-cache policy code on
// every access.
func BenchmarkSimBEAR(b *testing.B) { benchSim(b, config.BEAR) }

// The remaining compositions cover every other design the experiments run,
// so a regression in any design-specific path (sectored tags, inclusion
// back-invalidates, the no-L4 memory path, ...) shows up in the snapshot
// trajectory, not only in the two headline designs above.

// BenchmarkSimNoL4 measures the no-DRAM-cache floor: L3 misses go straight
// to main memory, so this isolates cpu + hier + dram with no L4 code at all.
func BenchmarkSimNoL4(b *testing.B) { benchSim(b, config.NoL4) }

// BenchmarkSimBWOpt measures the idealised bandwidth-optimized cache.
func BenchmarkSimBWOpt(b *testing.B) { benchSim(b, config.BWOpt) }

// BenchmarkSimLH measures the Loh-Hill tags-in-DRAM design.
func BenchmarkSimLH(b *testing.B) { benchSim(b, config.LohHill) }

// BenchmarkSimMC measures the Mostly-Clean write-policy design.
func BenchmarkSimMC(b *testing.B) { benchSim(b, config.MostlyClean) }

// BenchmarkSimInclAlloy measures Alloy with inclusion enforced, which adds
// back-invalidate traffic into the on-chip levels on every L4 eviction.
func BenchmarkSimInclAlloy(b *testing.B) { benchSim(b, config.InclAlloy) }

// BenchmarkSimTIS measures the tags-in-SRAM idealisation.
func BenchmarkSimTIS(b *testing.B) { benchSim(b, config.TIS) }

// BenchmarkSimSC measures the sectored cache design.
func BenchmarkSimSC(b *testing.B) { benchSim(b, config.Sector) }

// BenchmarkSimBanshee measures the page-grained Banshee design (pageTags
// with whole-page fills, FBR admission, tag-buffer writeback resolution).
func BenchmarkSimBanshee(b *testing.B) { benchSim(b, config.Banshee) }

// BenchmarkSimTicToc measures the page-grained TicToc design (demand-line
// fills into page frames, tag-cache-resolved tag checks).
func BenchmarkSimTicToc(b *testing.B) { benchSim(b, config.TicToc) }
