// Package bear is a simulation library reproducing "BEAR: Techniques for
// Mitigating Bandwidth Bloat in Gigascale DRAM Caches" (Chou, Jaleel,
// Qureshi — ISCA 2015).
//
// It models an 8-core system with a four-level cache hierarchy whose L4 is
// a gigascale stacked-DRAM cache, and implements the paper's designs: the
// Alloy-cache baseline with the MAP-I predictor, BEAR (Bandwidth-Aware
// Bypass + DRAM Cache Presence + Neighboring Tag Cache), the idealised
// Bandwidth-Optimized cache, Loh-Hill, Mostly-Clean, inclusive Alloy,
// Tags-In-SRAM and Sector Cache — over a banked, row-buffered DRAM timing
// model with USIMM-style scheduling.
//
// Quick start:
//
//	cfg := bear.DefaultConfig()
//	base, _ := bear.RunRate(cfg, "mcf")
//	cfg.Design = bear.BEAR
//	opt, _ := bear.RunRate(cfg, "mcf")
//	fmt.Printf("BEAR speedup %.3f, bloat %.2fx -> %.2fx\n",
//		bear.Speedup(opt, base), base.BloatFactor, opt.BloatFactor)
package bear

import (
	"fmt"

	"bear/internal/config"
	"bear/internal/core"
	"bear/internal/hier"
	"bear/internal/stats"
	"bear/internal/trace"
)

// Design selects the L4 DRAM-cache architecture.
type Design int

// The DRAM-cache designs evaluated by the paper.
const (
	// NoL4 removes the DRAM cache (normalisation baseline of Figs 3, 17).
	NoL4 Design = iota
	// Alloy is the direct-mapped TAD baseline with MAP-I.
	Alloy
	// BEAR is Alloy + BAB + DCP + NTC (the paper's proposal).
	BEAR
	// BWOpt is the idealised Bandwidth-Optimized cache (Bloat Factor 1).
	BWOpt
	// LohHill is the 29-way tags-in-row design with a MissMap.
	LohHill
	// MostlyClean is Loh-Hill with a perfect hit/miss dispatch predictor.
	MostlyClean
	// InclAlloy is Alloy with enforced inclusion (no WB probes, no bypass).
	InclAlloy
	// TagsInSRAM idealises a 64 MB on-chip tag store (Section 8).
	TagsInSRAM
	// SectorCache is the 4 KB-sector, 6 MB-tag-store design (Section 8).
	SectorCache
	// Banshee is the page-grained design with FBR admission and a
	// tag-buffer writeback flow (cross-paper comparison point).
	Banshee
	// TicToc is the page-grained demand-fill design with a tag cache
	// resolving in-array tag checks (cross-paper comparison point).
	TicToc
)

var designToInternal = map[Design]config.Design{
	NoL4: config.NoL4, Alloy: config.Alloy, BEAR: config.BEAR,
	BWOpt: config.BWOpt, LohHill: config.LohHill, MostlyClean: config.MostlyClean,
	InclAlloy: config.InclAlloy, TagsInSRAM: config.TIS, SectorCache: config.Sector,
	Banshee: config.Banshee, TicToc: config.TicToc,
}

func (d Design) String() string { return designToInternal[d].String() }

// Designs lists every available design.
func Designs() []Design {
	return []Design{NoL4, Alloy, BEAR, BWOpt, LohHill, MostlyClean, InclAlloy, TagsInSRAM, SectorCache, Banshee, TicToc}
}

// BypassPolicy selects the Miss-Fill policy for Alloy-family designs (BEAR
// configures BandwidthAware automatically).
type BypassPolicy int

// Fill policies.
const (
	// FillAlways installs every missed line.
	FillAlways BypassPolicy = iota
	// ProbBypass is the naive probabilistic bypass of Section 4.1.
	ProbBypass
	// BandwidthAware is BAB (Section 4.2).
	BandwidthAware
)

// Config controls a simulation. The zero value is not valid; start from
// DefaultConfig.
type Config struct {
	// Scale divides the paper's 1 GB cache, 8 MB L3 and all workload
	// footprints by this factor, preserving every capacity ratio so hit
	// rates and bloat factors match the full-scale machine while runs are
	// fast. Scale 1 is the paper's machine.
	Scale int

	Design Design

	// Bypass policy for Alloy-family designs; ignored for BEAR (which uses
	// BandwidthAware) and non-Alloy designs.
	Bypass     BypassPolicy
	BypassProb float64
	// UseDCP / UseNTC enable individual BEAR components on an Alloy
	// baseline (for the component-by-component Figures 7/9/11); BEAR sets
	// both.
	UseDCP bool
	UseNTC bool

	// Overrides for the sensitivity studies. Zero means "paper default".
	L4Channels int   // bandwidth study: 2/4/8 channels = 4x/8x/16x DDR
	L4Banks    int   // banks-per-channel study (Fig 15 uses total banks)
	CapacityMB int64 // full-scale capacity override (512/1024/2048 in Fig 14b)

	// WarmInstr/MeasInstr are per-core instruction budgets for the warm-up
	// and measured phases.
	WarmInstr uint64
	MeasInstr uint64

	Cores int
	Seed  uint64

	// Check enables the simulation watchdog's invariant mode: cheap
	// engine checks (transaction accounting, DRAM queue occupancy, MSHR
	// accounting) run at fixed event epochs, and a post-run drain proves
	// quiescence. Results are byte-identical with Check on or off; an
	// unsound run fails with a typed error instead of returning numbers.
	Check bool
}

// DefaultConfig returns a configuration that reproduces the paper's shapes
// in seconds per run: the Table 1 machine at 1/64 scale with a 3M-
// instruction budget per core.
func DefaultConfig() Config {
	return Config{
		Scale:      64,
		Design:     Alloy,
		Bypass:     FillAlways,
		BypassProb: 0.9,
		WarmInstr:  1_000_000,
		MeasInstr:  2_000_000,
		Cores:      8,
		Seed:       1,
	}
}

// internal converts the public Config to the internal system description.
func (c Config) internal() config.System {
	sys := config.Default(c.Scale)
	sys = sys.WithDesign(designToInternal[c.Design])
	if c.Design == Alloy || c.Design == InclAlloy {
		sys.Bypass = config.BypassPolicy(c.Bypass)
		sys.UseDCP = c.UseDCP
		sys.UseNTC = c.UseNTC
	}
	sys.BypassProb = c.BypassProb
	if sys.BypassProb == 0 {
		sys.BypassProb = 0.9
	}
	if c.L4Channels > 0 {
		sys.L4.Channels = c.L4Channels
	}
	if c.L4Banks > 0 {
		sys.L4.Banks = c.L4Banks
	}
	if c.CapacityMB > 0 {
		sys.CacheBytes = c.CapacityMB << 20 / int64(c.Scale)
	}
	if c.Cores > 0 {
		sys.Core.Count = c.Cores
	}
	sys.Seed = c.Seed
	return sys
}

// Breakdown is the per-category Bloat-Factor decomposition (Figure 13).
type Breakdown struct {
	Hit, MissProbe, MissFill  float64
	WBProbe, WBUpdate, WBFill float64
	VictimRead, ReplUpdate    float64
}

// Total returns the full Bloat Factor.
func (b Breakdown) Total() float64 {
	return b.Hit + b.MissProbe + b.MissFill + b.WBProbe + b.WBUpdate + b.WBFill + b.VictimRead + b.ReplUpdate
}

// Result reports one simulation's measured statistics.
type Result struct {
	Design   string
	Workload string

	Cycles       uint64
	Instructions uint64
	IPC          float64
	CoreIPC      []float64

	L3MPKI       float64
	L3MissRate   float64 // fraction of L3 accesses that missed
	L3Misses     uint64
	L3Writebacks uint64

	L4HitRate     float64
	L4HitLatency  float64 // cycles
	L4MissLatency float64
	L4AvgLatency  float64
	// 95th-percentile latencies (upper bounds from power-of-two buckets),
	// exposing queuing-tail behaviour.
	L4HitLatP95  uint64
	L4MissLatP95 uint64

	BloatFactor float64
	Breakdown   Breakdown

	// BEAR component diagnostics.
	Bypasses       uint64
	DCPProbesSaved uint64
	NTCProbesSaved uint64
	NTCParallelSq  uint64
	// MAP-I accuracy: correct / incorrect hit-miss predictions.
	PredHits, PredMisses uint64

	// Main-memory bus traffic (bytes).
	MemReadBytes, MemWriteBytes uint64
}

func resultFrom(r *stats.Run) *Result {
	l4 := &r.L4
	res := &Result{
		Design:       r.Design,
		Workload:     r.Workload,
		Cycles:       r.Cycles,
		Instructions: r.Instructions,
		IPC:          r.IPC(),
		CoreIPC:      r.CoreIPC,
		L3MPKI:       r.MPKI(),
		L3MissRate:   r.L3MissRate(),
		L3Misses:     r.L3Misses,
		L3Writebacks: r.L3Writebacks,

		L4HitRate:     l4.HitRate(),
		L4HitLatency:  l4.AvgHitLatency(),
		L4MissLatency: l4.AvgMissLatency(),
		L4AvgLatency:  l4.AvgLatency(),
		L4HitLatP95:   l4.HitHist.Percentile(0.95),
		L4MissLatP95:  l4.MissHist.Percentile(0.95),
		BloatFactor:   l4.BloatFactor(),
		Breakdown: Breakdown{
			Hit:        l4.CategoryFactor(stats.HitProbe),
			MissProbe:  l4.CategoryFactor(stats.MissProbe),
			MissFill:   l4.CategoryFactor(stats.MissFill),
			WBProbe:    l4.CategoryFactor(stats.WBProbe),
			WBUpdate:   l4.CategoryFactor(stats.WBUpdate),
			WBFill:     l4.CategoryFactor(stats.WBFill),
			VictimRead: l4.CategoryFactor(stats.VictimRead),
			ReplUpdate: l4.CategoryFactor(stats.ReplUpdate),
		},
		Bypasses:       l4.Bypasses,
		DCPProbesSaved: l4.DCPProbesSaved,
		NTCProbesSaved: l4.NTCProbesSaved,
		NTCParallelSq:  l4.NTCParallelSqsh,
		PredHits:       l4.PredHits,
		PredMisses:     l4.PredMisses,
		MemReadBytes:   r.MemReadBytes,
		MemWriteBytes:  r.MemWriteBytes,
	}
	return res
}

// Benchmarks returns the 16 Table 2 benchmark names.
func Benchmarks() []string { return trace.RateNames() }

// MixCount is the number of mixed workloads the paper evaluates.
const MixCount = 38

func (c Config) run(wl trace.Workload) (*Result, error) {
	sim, err := hier.NewSim(c.internal(), wl, c.WarmInstr, c.MeasInstr)
	if err != nil {
		return nil, err
	}
	sim.Watchdog.Check = c.Check
	r, err := sim.Run()
	if err != nil {
		return nil, err
	}
	return resultFrom(r), nil
}

// RunRate simulates the rate-mode workload of the named benchmark (all
// cores run copies in disjoint address regions).
func RunRate(cfg Config, benchmark string) (*Result, error) {
	wl, err := trace.Rate(benchmark, cfg.Cores, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return cfg.run(wl)
}

// RunMix simulates mixed workload n in [1, MixCount]; 1..8 follow Table 3.
func RunMix(cfg Config, n int) (*Result, error) {
	wl, err := trace.Mix(n, cfg.Cores, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return cfg.run(wl)
}

// MixComposition returns the benchmark running on each core of mixed
// workload n (1..8 follow Table 3 of the paper).
func MixComposition(n, cores int) []string {
	wl, err := trace.Mix(n, cores, 1, 1)
	if err != nil {
		return nil
	}
	out := make([]string, len(wl.Benchs))
	for i, b := range wl.Benchs {
		out[i] = b.Name
	}
	return out
}

// RunSingle simulates the named benchmark alone on one core (used for the
// weighted-speedup denominators of Equation 2).
func RunSingle(cfg Config, benchmark string) (*Result, error) {
	wl, err := trace.Single(benchmark, cfg.Cores, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return cfg.run(wl)
}

// RunTraceFiles simulates a workload replayed from recorded trace files
// (one file per core; see cmd/beartrace and the trace-file format in
// internal/trace). Footprints in the files must match cfg.Scale.
func RunTraceFiles(cfg Config, name string, paths []string) (*Result, error) {
	wl, err := trace.FromFiles(name, paths)
	if err != nil {
		return nil, err
	}
	return cfg.run(wl)
}

// Speedup returns baseline.Cycles / r.Cycles: the rate-mode normalised
// performance of r against a baseline run of the same workload.
func Speedup(r, baseline *Result) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(baseline.Cycles) / float64(r.Cycles)
}

// WeightedSpeedup evaluates Equation 2 for a mix result given each core's
// single-program IPC on the same memory system.
func WeightedSpeedup(r *Result, singleIPC []float64) float64 {
	var ws float64
	for i, ipc := range r.CoreIPC {
		if i < len(singleIPC) && singleIPC[i] > 0 {
			ws += ipc / singleIPC[i]
		}
	}
	return ws
}

// GeoMean returns the geometric mean of positive values.
func GeoMean(xs []float64) float64 { return stats.GeoMean(xs) }

// StorageOverhead reports Table 5 for the full-scale machine: BEAR's SRAM
// cost given the Table 1 LLC and DRAM-cache geometry.
func StorageOverhead() string {
	sys := config.Default(1)
	llcLines := int64(sys.L3.Bytes / sys.L3.LineBytes)
	o := core.ComputeOverhead(sys.Core.Count, llcLines, sys.L4.Channels*sys.L4.Banks)
	return o.String()
}

// Describe returns a human-readable summary of a result.
func Describe(r *Result) string {
	return fmt.Sprintf(
		"%s/%s: IPC=%.3f hitRate=%.1f%% hitLat=%.0f missLat=%.0f bloat=%.2fx",
		r.Workload, r.Design, r.IPC, 100*r.L4HitRate, r.L4HitLatency,
		r.L4MissLatency, r.BloatFactor)
}
